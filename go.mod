module safetypin

go 1.21
