// Package ecgroup wraps the NIST P-256 elliptic-curve group behind a small
// value-oriented API: scalars in Z_q (q the group order) and points with
// canonical compressed encodings.
//
// SafetyPin performs all of its public-key operations — hashed-ElGamal
// encryption of key shares (§A.4), Bloom-filter-encryption positions (§7.1),
// and the ECDSA-style fallback signatures — on P-256, matching the paper's
// implementation ("Other public-key operations use NIST P256 curve",
// Table 7).
package ecgroup
