package ecgroup

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var curve = elliptic.P256()

// ScalarSize is the byte length of a serialized scalar.
const ScalarSize = 32

// PointSize is the byte length of a compressed point encoding.
const PointSize = 33

// Scalar is an integer modulo the P-256 group order.
type Scalar struct {
	v *big.Int
}

// Point is a P-256 point, including the identity (point at infinity).
type Point struct {
	x, y *big.Int // nil, nil encodes the identity
}

// Order returns a copy of the group order q.
func Order() *big.Int { return new(big.Int).Set(curve.Params().N) }

// RandomScalar samples a uniform non-zero scalar from r.
func RandomScalar(r io.Reader) (Scalar, error) {
	for {
		k, err := rand.Int(r, curve.Params().N)
		if err != nil {
			return Scalar{}, fmt.Errorf("ecgroup: sampling scalar: %w", err)
		}
		if k.Sign() != 0 {
			return Scalar{k}, nil
		}
	}
}

// ScalarFromBytes decodes a canonical 32-byte big-endian scalar, rejecting
// values ≥ q.
func ScalarFromBytes(b []byte) (Scalar, error) {
	if len(b) != ScalarSize {
		return Scalar{}, fmt.Errorf("ecgroup: scalar must be %d bytes, got %d", ScalarSize, len(b))
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(curve.Params().N) >= 0 {
		return Scalar{}, errors.New("ecgroup: scalar not canonical")
	}
	return Scalar{v}, nil
}

// ScalarReduce reduces an arbitrary byte string mod q. Used for
// hash-to-scalar; a 48-byte input keeps the bias below 2^-128.
func ScalarReduce(b []byte) Scalar {
	v := new(big.Int).SetBytes(b)
	return Scalar{v.Mod(v, curve.Params().N)}
}

func (s Scalar) big() *big.Int {
	if s.v == nil {
		return big.NewInt(0)
	}
	return s.v
}

// Bytes returns the canonical 32-byte encoding.
func (s Scalar) Bytes() []byte {
	out := make([]byte, ScalarSize)
	s.big().FillBytes(out)
	return out
}

// IsZero reports whether s == 0.
func (s Scalar) IsZero() bool { return s.big().Sign() == 0 }

// Equal reports whether s == t.
func (s Scalar) Equal(t Scalar) bool { return s.big().Cmp(t.big()) == 0 }

// Add returns s + t mod q.
func (s Scalar) Add(t Scalar) Scalar {
	v := new(big.Int).Add(s.big(), t.big())
	return Scalar{v.Mod(v, curve.Params().N)}
}

// Mul returns s · t mod q.
func (s Scalar) Mul(t Scalar) Scalar {
	v := new(big.Int).Mul(s.big(), t.big())
	return Scalar{v.Mod(v, curve.Params().N)}
}

// Neg returns −s mod q.
func (s Scalar) Neg() Scalar {
	v := new(big.Int).Neg(s.big())
	return Scalar{v.Mod(v, curve.Params().N)}
}

// Inv returns s^-1 mod q; error on zero.
func (s Scalar) Inv() (Scalar, error) {
	if s.IsZero() {
		return Scalar{}, errors.New("ecgroup: inverse of zero scalar")
	}
	return Scalar{new(big.Int).ModInverse(s.big(), curve.Params().N)}, nil
}

// Identity returns the group identity element.
func Identity() Point { return Point{} }

// Generator returns the standard base point G.
func Generator() Point {
	p := curve.Params()
	return Point{new(big.Int).Set(p.Gx), new(big.Int).Set(p.Gy)}
}

// BaseMul returns s·G.
func BaseMul(s Scalar) Point {
	if s.IsZero() {
		return Identity()
	}
	x, y := curve.ScalarBaseMult(s.Bytes())
	return Point{x, y}
}

// Mul returns s·P.
func (p Point) Mul(s Scalar) Point {
	if p.IsIdentity() || s.IsZero() {
		return Identity()
	}
	x, y := curve.ScalarMult(p.x, p.y, s.Bytes())
	if x.Sign() == 0 && y.Sign() == 0 {
		return Identity()
	}
	return Point{x, y}
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	if p.IsIdentity() {
		return q
	}
	if q.IsIdentity() {
		return p
	}
	x, y := curve.Add(p.x, p.y, q.x, q.y)
	if x.Sign() == 0 && y.Sign() == 0 {
		return Identity()
	}
	return Point{x, y}
}

// Neg returns −p.
func (p Point) Neg() Point {
	if p.IsIdentity() {
		return p
	}
	y := new(big.Int).Sub(curve.Params().P, p.y)
	y.Mod(y, curve.Params().P)
	return Point{new(big.Int).Set(p.x), y}
}

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return p.Add(q.Neg()) }

// IsIdentity reports whether p is the point at infinity.
func (p Point) IsIdentity() bool { return p.x == nil }

// Equal reports whether p == q.
func (p Point) Equal(q Point) bool {
	if p.IsIdentity() || q.IsIdentity() {
		return p.IsIdentity() == q.IsIdentity()
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

// Bytes returns the canonical 33-byte encoding: SEC1 compressed form for
// ordinary points and 33 zero bytes for the identity.
func (p Point) Bytes() []byte {
	if p.IsIdentity() {
		return make([]byte, PointSize)
	}
	return elliptic.MarshalCompressed(curve, p.x, p.y)
}

// PointFromBytes decodes a canonical encoding, verifying curve membership.
func PointFromBytes(b []byte) (Point, error) {
	if len(b) != PointSize {
		return Point{}, fmt.Errorf("ecgroup: point must be %d bytes, got %d", PointSize, len(b))
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return Identity(), nil
	}
	x, y := elliptic.UnmarshalCompressed(curve, b)
	if x == nil {
		return Point{}, errors.New("ecgroup: invalid point encoding")
	}
	return Point{x, y}, nil
}

// KeyPair is an ElGamal-style keypair: sk uniform in Z_q, pk = sk·G.
type KeyPair struct {
	SK Scalar
	PK Point
}

// GenerateKeyPair samples a fresh keypair from r.
func GenerateKeyPair(r io.Reader) (KeyPair, error) {
	sk, err := RandomScalar(r)
	if err != nil {
		return KeyPair{}, err
	}
	return KeyPair{SK: sk, PK: BaseMul(sk)}, nil
}

// GenerateKeyPairs samples n keypairs in one batch: a single bulk entropy
// read of 48 bytes per key (reduced mod q, bias < 2^-128, no rejection
// loop) replaces n rejection-sampled rand.Int calls, and the base
// multiplications run on the crypto/ecdh fixed-base path, which is
// constant-time like ScalarBaseMult but skips the legacy curve layer's
// per-call conversions. The per-key GenerateKeyPair is retained as the
// differential oracle (baseMulECDH agrees with BaseMul point for point —
// ecgroup_test.go).
func GenerateKeyPairs(r io.Reader, n int) ([]KeyPair, error) {
	if n < 0 {
		return nil, fmt.Errorf("ecgroup: negative batch size %d", n)
	}
	buf := make([]byte, 48*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("ecgroup: sampling batch: %w", err)
	}
	out := make([]KeyPair, n)
	for i := range out {
		sk := ScalarReduce(buf[i*48 : (i+1)*48])
		for sk.IsZero() { // probability ~2^-256: resample
			var err error
			sk, err = RandomScalar(r)
			if err != nil {
				return nil, err
			}
		}
		pk, err := baseMulECDH(sk)
		if err != nil {
			return nil, fmt.Errorf("ecgroup: key %d: %w", i, err)
		}
		out[i] = KeyPair{SK: sk, PK: pk}
	}
	return out, nil
}

// baseMulECDH computes s·G through crypto/ecdh's nistec-backed fixed-base
// multiplication; s must be nonzero.
func baseMulECDH(s Scalar) (Point, error) {
	priv, err := ecdh.P256().NewPrivateKey(s.Bytes())
	if err != nil {
		return Point{}, err
	}
	b := priv.PublicKey().Bytes() // uncompressed SEC1: 0x04 ‖ X ‖ Y
	return Point{
		new(big.Int).SetBytes(b[1:33]),
		new(big.Int).SetBytes(b[33:65]),
	}, nil
}

// ToECDSA converts the keypair into a crypto/ecdsa private key so the same
// key material can sign (the HSMs' ECDSA fallback signatures).
func (kp KeyPair) ToECDSA() *ecdsa.PrivateKey {
	return &ecdsa.PrivateKey{
		PublicKey: ecdsa.PublicKey{Curve: curve, X: kp.PK.x, Y: kp.PK.y},
		D:         new(big.Int).Set(kp.SK.big()),
	}
}

// ECDSAPublic converts a point into an ECDSA public key for verification.
func (p Point) ECDSAPublic() (*ecdsa.PublicKey, error) {
	if p.IsIdentity() {
		return nil, errors.New("ecgroup: identity is not a valid ECDSA key")
	}
	return &ecdsa.PublicKey{Curve: curve, X: p.x, Y: p.y}, nil
}

// GobEncode implements gob encoding via the canonical point encoding, so
// protocol messages carrying points can cross process boundaries.
func (p Point) GobEncode() ([]byte, error) { return p.Bytes(), nil }

// GobDecode implements gob decoding with full curve-membership validation.
func (p *Point) GobDecode(b []byte) error {
	q, err := PointFromBytes(b)
	if err != nil {
		return err
	}
	*p = q
	return nil
}

// String implements fmt.Stringer for debugging.
func (p Point) String() string {
	if p.IsIdentity() {
		return "ec(∞)"
	}
	return fmt.Sprintf("ec(%x…)", p.Bytes()[:5])
}
