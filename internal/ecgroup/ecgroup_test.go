package ecgroup

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func testScalar(t *testing.T) Scalar {
	t.Helper()
	s, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeneratorOnCurve(t *testing.T) {
	g := Generator()
	if g.IsIdentity() {
		t.Fatal("generator is identity")
	}
	if _, err := PointFromBytes(g.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestScalarBaseMulMatchesMul(t *testing.T) {
	s := testScalar(t)
	if !BaseMul(s).Equal(Generator().Mul(s)) {
		t.Fatal("BaseMul != Generator().Mul")
	}
}

func TestGroupLaws(t *testing.T) {
	a, b := testScalar(t), testScalar(t)
	P, Q := BaseMul(a), BaseMul(b)
	if !P.Add(Q).Equal(Q.Add(P)) {
		t.Fatal("addition not commutative")
	}
	// (a+b)G == aG + bG
	if !BaseMul(a.Add(b)).Equal(P.Add(Q)) {
		t.Fatal("scalar addition homomorphism broken")
	}
	// a(bG) == (ab)G
	if !Q.Mul(a).Equal(BaseMul(a.Mul(b))) {
		t.Fatal("scalar multiplication associativity broken")
	}
}

func TestIdentityLaws(t *testing.T) {
	P := BaseMul(testScalar(t))
	if !P.Add(Identity()).Equal(P) {
		t.Fatal("P + 0 != P")
	}
	if !P.Sub(P).IsIdentity() {
		t.Fatal("P - P != 0")
	}
	if !Identity().Mul(testScalar(t)).IsIdentity() {
		t.Fatal("s*0 != 0")
	}
	if !P.Mul(Scalar{}).IsIdentity() {
		t.Fatal("0*P != 0")
	}
}

func TestNeg(t *testing.T) {
	P := BaseMul(testScalar(t))
	if !P.Add(P.Neg()).IsIdentity() {
		t.Fatal("P + (-P) != 0")
	}
	if !Identity().Neg().IsIdentity() {
		t.Fatal("-0 != 0")
	}
}

func TestPointSerializationRoundTrip(t *testing.T) {
	for i := 0; i < 16; i++ {
		P := BaseMul(testScalar(t))
		got, err := PointFromBytes(P.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(P) {
			t.Fatal("round-trip mismatch")
		}
	}
}

func TestIdentitySerialization(t *testing.T) {
	enc := Identity().Bytes()
	if len(enc) != PointSize {
		t.Fatalf("identity encoding length %d", len(enc))
	}
	got, err := PointFromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsIdentity() {
		t.Fatal("identity did not round-trip")
	}
}

func TestPointFromBytesRejectsGarbage(t *testing.T) {
	if _, err := PointFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected length rejection")
	}
	bad := make([]byte, PointSize)
	bad[0] = 0x02
	for i := 1; i < PointSize; i++ {
		bad[i] = 0xFF
	}
	if _, err := PointFromBytes(bad); err == nil {
		t.Fatal("expected off-curve rejection")
	}
}

func TestScalarSerialization(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		s := ScalarReduce(raw)
		got, err := ScalarFromBytes(s.Bytes())
		if err != nil {
			return false
		}
		return got.Equal(s)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestScalarFromBytesRejectsNonCanonical(t *testing.T) {
	enc := make([]byte, ScalarSize)
	Order().FillBytes(enc)
	if _, err := ScalarFromBytes(enc); err == nil {
		t.Fatal("expected rejection of scalar == q")
	}
}

func TestScalarInv(t *testing.T) {
	s := testScalar(t)
	inv, err := s.Inv()
	if err != nil {
		t.Fatal(err)
	}
	one := s.Mul(inv)
	if one.big().Cmp(ScalarReduce([]byte{1}).big()) != 0 {
		t.Fatal("s * s^-1 != 1")
	}
	if _, err := (Scalar{}).Inv(); err == nil {
		t.Fatal("expected error inverting zero")
	}
}

func TestDiffieHellmanAgreement(t *testing.T) {
	// The hashed-ElGamal KEM depends on commutativity: a·(bG) == b·(aG).
	a, b := testScalar(t), testScalar(t)
	if !BaseMul(b).Mul(a).Equal(BaseMul(a).Mul(b)) {
		t.Fatal("DH agreement failed")
	}
}

func TestECDSABridge(t *testing.T) {
	kp, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	priv := kp.ToECDSA()
	pub, err := kp.PK.ECDSAPublic()
	if err != nil {
		t.Fatal(err)
	}
	if priv.PublicKey.X.Cmp(pub.X) != 0 {
		t.Fatal("ECDSA bridge mismatched public keys")
	}
	if _, err := Identity().ECDSAPublic(); err == nil {
		t.Fatal("identity should not convert to ECDSA key")
	}
}

func TestMulByOrderIsIdentity(t *testing.T) {
	// q·G should be the identity. ScalarFromBytes rejects q, so build q-1
	// and add one more G.
	q := Order()
	qMinus1 := ScalarReduce(q.Sub(q, big.NewInt(1)).Bytes())
	P := BaseMul(qMinus1).Add(Generator())
	if !P.IsIdentity() {
		t.Fatal("(q-1)G + G != identity")
	}
}

func BenchmarkBaseMul(b *testing.B) {
	s, _ := RandomScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BaseMul(s)
	}
}

func BenchmarkPointMul(b *testing.B) {
	s, _ := RandomScalar(rand.Reader)
	P := BaseMul(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		P.Mul(s)
	}
}

// TestGenerateKeyPairsDifferential pins the batch path to the per-key
// oracle: pk = sk·G under BaseMul for every batch entry, and the ecdh
// fixed-base route agrees with the legacy ScalarBaseMult point for point.
func TestGenerateKeyPairsDifferential(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		kps, err := GenerateKeyPairs(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(kps) != n {
			t.Fatalf("GenerateKeyPairs(%d) returned %d keys", n, len(kps))
		}
		for i, kp := range kps {
			if kp.SK.IsZero() {
				t.Fatalf("batch %d key %d: zero scalar", n, i)
			}
			if want := BaseMul(kp.SK); !want.Equal(kp.PK) {
				t.Fatalf("batch %d key %d: pk != sk·G", n, i)
			}
		}
	}
	if _, err := GenerateKeyPairs(rand.Reader, -1); err == nil {
		t.Fatal("negative batch size must error")
	}
	// Edge scalars through the ecdh route directly.
	for _, v := range []int64{1, 2, 3, 0xffff} {
		s := Scalar{big.NewInt(v)}
		got, err := baseMulECDH(s)
		if err != nil {
			t.Fatal(err)
		}
		if want := BaseMul(s); !want.Equal(got) {
			t.Fatalf("baseMulECDH(%d) disagrees with BaseMul", v)
		}
	}
	qm1 := Scalar{new(big.Int).Sub(Order(), big.NewInt(1))}
	got, err := baseMulECDH(qm1)
	if err != nil {
		t.Fatal(err)
	}
	if want := BaseMul(qm1); !want.Equal(got) {
		t.Fatal("baseMulECDH(q-1) disagrees with BaseMul")
	}
}

func BenchmarkGenerateKeyPairs64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKeyPairs(rand.Reader, 64); err != nil {
			b.Fatal(err)
		}
	}
}
