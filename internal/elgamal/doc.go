// Package elgamal implements the hashed-ElGamal public-key encryption scheme
// of Appendix A.4: a Diffie-Hellman KEM on P-256 combined with an AES-GCM
// data-encapsulation mechanism.
//
// To encrypt message m to public key X = x·G, the encryptor samples r,
// computes the shared point X^r, derives a one-time symmetric key
// K = H(domain ‖ R ‖ X ‖ X^r ‖ ad), and outputs (R = r·G, AE.Enc(K, m, ad)).
// Decryption recomputes K from R^x.
//
// The paper's domain-separation rule (§A.4) prepends the client's username,
// the ciphertext salt, and the cluster's public keys to the hash input; the
// ad ("associated data") parameter carries exactly that string, and it is
// additionally authenticated by GCM, so a ciphertext produced for one
// (user, salt, cluster) context fails to decrypt in any other.
package elgamal
