package elgamal

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"safetypin/internal/ecgroup"
)

func keypair(t *testing.T) ecgroup.KeyPair {
	t.Helper()
	kp, err := ecgroup.GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestRoundTrip(t *testing.T) {
	kp := keypair(t)
	msg := []byte("the AES transport key share")
	ad := []byte("user=alice|salt=xyz")
	ct, err := Encrypt(kp.PK, msg, ad, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(kp.SK, kp.PK, ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round-trip mismatch")
	}
}

func TestRoundTripQuick(t *testing.T) {
	kp := keypair(t)
	err := quick.Check(func(msg, ad []byte) bool {
		ct, err := Encrypt(kp.PK, msg, ad, rand.Reader)
		if err != nil {
			return false
		}
		got, err := Decrypt(kp.SK, kp.PK, ct, ad)
		return err == nil && bytes.Equal(got, msg)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyFails(t *testing.T) {
	kp1, kp2 := keypair(t), keypair(t)
	ct, err := Encrypt(kp1.PK, []byte("secret"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(kp2.SK, kp2.PK, ct, nil); err == nil {
		t.Fatal("decryption with wrong key succeeded")
	}
}

func TestWrongADFails(t *testing.T) {
	// Domain separation: a ciphertext bound to user A must not decrypt in
	// user B's context even with the right key.
	kp := keypair(t)
	ct, err := Encrypt(kp.PK, []byte("secret"), []byte("user=alice"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(kp.SK, kp.PK, ct, []byte("user=bob")); err == nil {
		t.Fatal("decryption under wrong domain separation succeeded")
	}
}

func TestTamperedBoxFails(t *testing.T) {
	kp := keypair(t)
	ct, err := Encrypt(kp.PK, []byte("secret"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct.Box[0] ^= 1
	if _, err := Decrypt(kp.SK, kp.PK, ct, nil); err == nil {
		t.Fatal("tampered ciphertext decrypted")
	}
}

func TestTamperedNonceFails(t *testing.T) {
	kp := keypair(t)
	ct, err := Encrypt(kp.PK, []byte("secret"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := ecgroup.RandomScalar(rand.Reader)
	ct.R = ecgroup.BaseMul(r)
	if _, err := Decrypt(kp.SK, kp.PK, ct, nil); err == nil {
		t.Fatal("ciphertext with replaced nonce decrypted")
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	kp := keypair(t)
	a, _ := Encrypt(kp.PK, []byte("m"), nil, rand.Reader)
	b, _ := Encrypt(kp.PK, []byte("m"), nil, rand.Reader)
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestKeyPrivacyShape(t *testing.T) {
	// Key privacy (the property LHE relies on): a ciphertext must not
	// contain the recipient public key in the clear. Structural check: the
	// pk bytes do not appear in the serialized ciphertext.
	kp := keypair(t)
	ct, _ := Encrypt(kp.PK, []byte("m"), nil, rand.Reader)
	if bytes.Contains(ct.Bytes(), kp.PK.Bytes()) {
		t.Fatal("ciphertext embeds the recipient public key")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	kp := keypair(t)
	ct, err := Encrypt(kp.PK, []byte("hello hello"), []byte("ad"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := CiphertextFromBytes(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(kp.SK, kp.PK, parsed, []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello hello" {
		t.Fatal("serialized round-trip mismatch")
	}
}

func TestCiphertextFromBytesRejects(t *testing.T) {
	if _, err := CiphertextFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected rejection of short ciphertext")
	}
	bad := make([]byte, Overhead+4)
	for i := range bad {
		bad[i] = 0xFF
	}
	if _, err := CiphertextFromBytes(bad); err == nil {
		t.Fatal("expected rejection of invalid point")
	}
}

func TestEncryptToIdentityRejected(t *testing.T) {
	if _, err := Encrypt(ecgroup.Identity(), []byte("m"), nil, rand.Reader); err == nil {
		t.Fatal("expected refusal to encrypt to identity")
	}
}

func TestDecryptIdentityNonceRejected(t *testing.T) {
	kp := keypair(t)
	ct := Ciphertext{R: ecgroup.Identity(), Box: make([]byte, 32)}
	if _, err := Decrypt(kp.SK, kp.PK, ct, nil); err == nil {
		t.Fatal("expected rejection of identity nonce")
	}
}

func TestEmptyMessage(t *testing.T) {
	kp := keypair(t)
	ct, err := Encrypt(kp.PK, nil, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(kp.SK, kp.PK, ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty message round-trip produced data")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	kp, _ := ecgroup.GenerateKeyPair(rand.Reader)
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(kp.PK, msg, nil, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	kp, _ := ecgroup.GenerateKeyPair(rand.Reader)
	ct, _ := Encrypt(kp.PK, make([]byte, 64), nil, rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(kp.SK, kp.PK, ct, nil); err != nil {
			b.Fatal(err)
		}
	}
}
