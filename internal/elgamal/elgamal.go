package elgamal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"safetypin/internal/ecgroup"
)

// Overhead is the ciphertext expansion in bytes: one compressed point plus
// the GCM tag.
const Overhead = ecgroup.PointSize + 16

const kdfLabel = "safetypin/elgamal/kdf/v1"

// Ciphertext is a hashed-ElGamal ciphertext.
type Ciphertext struct {
	R   ecgroup.Point // ephemeral public nonce r·G
	Box []byte        // AES-GCM sealed payload
}

// Bytes serializes the ciphertext as R ‖ Box.
func (c Ciphertext) Bytes() []byte {
	out := make([]byte, 0, ecgroup.PointSize+len(c.Box))
	out = append(out, c.R.Bytes()...)
	out = append(out, c.Box...)
	return out
}

// CiphertextFromBytes parses a serialized ciphertext.
func CiphertextFromBytes(b []byte) (Ciphertext, error) {
	if len(b) < Overhead {
		return Ciphertext{}, fmt.Errorf("elgamal: ciphertext too short (%d bytes)", len(b))
	}
	r, err := ecgroup.PointFromBytes(b[:ecgroup.PointSize])
	if err != nil {
		return Ciphertext{}, fmt.Errorf("elgamal: parsing nonce point: %w", err)
	}
	box := make([]byte, len(b)-ecgroup.PointSize)
	copy(box, b[ecgroup.PointSize:])
	return Ciphertext{R: r, Box: box}, nil
}

// deriveKey computes the DEM key from the KEM transcript.
func deriveKey(r, pk, shared ecgroup.Point, ad []byte) []byte {
	h := sha256.New()
	h.Write([]byte(kdfLabel))
	h.Write(r.Bytes())
	h.Write(pk.Bytes())
	h.Write(shared.Bytes())
	adh := sha256.Sum256(ad)
	h.Write(adh[:])
	return h.Sum(nil)
}

// seal runs AES-256-GCM with a fixed zero nonce; the key is unique per
// encryption (fresh DH nonce), so nonce reuse cannot occur.
func aead(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

var zeroNonce = make([]byte, 12)

// Encrypt encrypts msg to pk under domain-separation string ad, drawing
// randomness from rng.
func Encrypt(pk ecgroup.Point, msg, ad []byte, rng io.Reader) (Ciphertext, error) {
	if pk.IsIdentity() {
		return Ciphertext{}, errors.New("elgamal: refusing to encrypt to identity key")
	}
	r, err := ecgroup.RandomScalar(rng)
	if err != nil {
		return Ciphertext{}, err
	}
	R := ecgroup.BaseMul(r)
	key := deriveKey(R, pk, pk.Mul(r), ad)
	g, err := aead(key)
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{R: R, Box: g.Seal(nil, zeroNonce, msg, ad)}, nil
}

// Decrypt decrypts ct with secret key sk under the same ad used at
// encryption time. Any mismatch — wrong key, wrong ad, tampered box —
// returns an error.
func Decrypt(sk ecgroup.Scalar, pk ecgroup.Point, ct Ciphertext, ad []byte) ([]byte, error) {
	if ct.R.IsIdentity() {
		return nil, errors.New("elgamal: ciphertext nonce is identity")
	}
	key := deriveKey(ct.R, pk, ct.R.Mul(sk), ad)
	g, err := aead(key)
	if err != nil {
		return nil, err
	}
	pt, err := g.Open(nil, zeroNonce, ct.Box, ad)
	if err != nil {
		return nil, fmt.Errorf("elgamal: decryption failed: %w", err)
	}
	return pt, nil
}
