package lhe

import (
	"fmt"
	"io"

	"safetypin/internal/ecgroup"
	"safetypin/internal/elgamal"
)

// ElGamalFleet is the client-side view of the fleet's plain hashed-ElGamal
// public keys. It implements Encryptor without forward secrecy; the
// production configuration uses the puncturable scheme in package bfe, which
// satisfies the same interfaces.
type ElGamalFleet struct {
	keys []ecgroup.Point
}

// NewElGamalFleet wraps the N HSM public keys.
func NewElGamalFleet(keys []ecgroup.Point) *ElGamalFleet {
	return &ElGamalFleet{keys: keys}
}

// EncryptTo implements Encryptor.
func (f *ElGamalFleet) EncryptTo(index int, msg, ad []byte, rng io.Reader) ([]byte, error) {
	if index < 0 || index >= len(f.keys) {
		return nil, fmt.Errorf("lhe: HSM index %d out of range [0,%d)", index, len(f.keys))
	}
	ct, err := elgamal.Encrypt(f.keys[index], msg, ad, rng)
	if err != nil {
		return nil, err
	}
	return ct.Bytes(), nil
}

// ElGamalDecrypter is the HSM-side decrypter for plain hashed ElGamal.
type ElGamalDecrypter struct {
	kp ecgroup.KeyPair
}

// NewElGamalDecrypter wraps an HSM keypair.
func NewElGamalDecrypter(kp ecgroup.KeyPair) *ElGamalDecrypter {
	return &ElGamalDecrypter{kp: kp}
}

// DecryptShare implements ShareDecrypter.
func (d *ElGamalDecrypter) DecryptShare(ct, ad []byte) ([]byte, error) {
	parsed, err := elgamal.CiphertextFromBytes(ct)
	if err != nil {
		return nil, err
	}
	return elgamal.Decrypt(d.kp.SK, d.kp.PK, parsed, ad)
}

var (
	_ Encryptor      = (*ElGamalFleet)(nil)
	_ ShareDecrypter = (*ElGamalDecrypter)(nil)
)
