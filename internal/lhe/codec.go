package lhe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Serialization of Ciphertext: a simple length-prefixed binary format.
//
//	u32 saltLen ‖ salt ‖ u32 nShares ‖ (u32 len ‖ share)* ‖ u32 sealedLen ‖ sealed

const maxFieldLen = 1 << 30 // sanity bound against corrupt length prefixes

func appendBytes(out, b []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	out = append(out, l[:]...)
	return append(out, b...)
}

func readBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errors.New("lhe: truncated length prefix")
	}
	n := binary.BigEndian.Uint32(b)
	if n > maxFieldLen || int(n) > len(b)-4 {
		return nil, nil, fmt.Errorf("lhe: field length %d exceeds buffer", n)
	}
	return b[4 : 4+n], b[4+n:], nil
}

// Bytes serializes the ciphertext.
func (c *Ciphertext) Bytes() []byte {
	out := appendBytes(nil, c.Salt)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(c.Shares)))
	out = append(out, l[:]...)
	for _, s := range c.Shares {
		out = appendBytes(out, s)
	}
	return appendBytes(out, c.Sealed)
}

// CiphertextFromBytes parses a serialized ciphertext.
func CiphertextFromBytes(b []byte) (*Ciphertext, error) {
	salt, rest, err := readBytes(b)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, errors.New("lhe: truncated share count")
	}
	n := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if n > 1<<16 {
		return nil, fmt.Errorf("lhe: implausible share count %d", n)
	}
	shares := make([][]byte, n)
	for i := range shares {
		shares[i], rest, err = readBytes(rest)
		if err != nil {
			return nil, fmt.Errorf("lhe: parsing share %d: %w", i, err)
		}
	}
	sealed, rest, err := readBytes(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lhe: %d trailing bytes after ciphertext", len(rest))
	}
	cp := &Ciphertext{Salt: clone(salt), Sealed: clone(sealed), Shares: shares}
	for i := range cp.Shares {
		cp.Shares[i] = clone(cp.Shares[i])
	}
	return cp, nil
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// Size returns the serialized length in bytes, used by the evaluation to
// report recovery-ciphertext sizes (§9.2 reports 16.5 KB at n = 40).
func (c *Ciphertext) Size() int { return len(c.Bytes()) }
