// Package lhe implements location-hiding encryption, the paper's central
// cryptographic primitive (Section 5, Figure 15).
//
// The encryptor holds the public keys of all N HSMs in the data center and a
// low-entropy PIN. Encryption:
//
//  1. sample a random transport key k and a random salt,
//  2. split k into t-of-n Shamir shares,
//  3. derive n cluster indices i_1..i_n ∈ [N] from Hash(salt, pin),
//  4. encrypt share j to the public key of HSM i_j with a key-private PKE,
//  5. seal the message under k with authenticated encryption.
//
// The ciphertext hides *which* n of the N HSMs can decrypt it: an attacker
// without the PIN must compromise an f_secret fraction of all HSMs to have
// non-trivial odds of covering t members of the hidden cluster (Theorem 10).
//
// The per-share PKE is pluggable so the same code path serves both plain
// hashed ElGamal and the puncturable Bloom-filter encryption of Section 7
// (which provides forward secrecy after recovery).
package lhe
