package lhe

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"safetypin/internal/aead"
	"safetypin/internal/prg"
	"safetypin/internal/shamir"
)

// selectLabel domain-separates the cluster-selection hash.
const selectLabel = "safetypin/lhe/select/v1"

// Params fixes an LHE instantiation.
type Params struct {
	N int // total HSMs in the data center
	n int // cluster size
	t int // recovery threshold, typically n/2
}

// NewParams validates and returns an LHE parameter set.
func NewParams(total, cluster, threshold int) (Params, error) {
	switch {
	case total < 1:
		return Params{}, fmt.Errorf("lhe: need at least one HSM, got %d", total)
	case cluster < 1 || cluster > total:
		return Params{}, fmt.Errorf("lhe: cluster size %d out of range [1,%d]", cluster, total)
	case threshold < 1 || threshold > cluster:
		return Params{}, fmt.Errorf("lhe: threshold %d out of range [1,%d]", threshold, cluster)
	}
	return Params{N: total, n: cluster, t: threshold}, nil
}

// PaperParams returns the paper's configuration for a data center of the
// given size: n = 40, t = n/2 (scaled down proportionally if total < 40).
func PaperParams(total int) (Params, error) {
	n := 40
	if n > total {
		n = total
	}
	t := n / 2
	if t < 1 {
		t = 1
	}
	return NewParams(total, n, t)
}

// Total returns N, the number of HSMs the ciphertexts are spread over.
func (p Params) Total() int { return p.N }

// ClusterSize returns n.
func (p Params) ClusterSize() int { return p.n }

// Threshold returns t.
func (p Params) Threshold() int { return p.t }

// Encryptor encrypts a share to the public key of the HSM at a given index.
// Implementations must be key-private: the ciphertext may not reveal the
// recipient index. ad is a domain-separation string authenticated alongside
// the share.
type Encryptor interface {
	EncryptTo(index int, msg, ad []byte, rng io.Reader) ([]byte, error)
}

// ShareDecrypter decrypts a share ciphertext produced by an Encryptor for
// this HSM. Implemented by the HSM side (plain ElGamal or puncturable BFE).
type ShareDecrypter interface {
	DecryptShare(ct, ad []byte) ([]byte, error)
}

// Ciphertext is a location-hiding recovery ciphertext: the public salt, the
// n key-share ciphertexts (in cluster order), and the sealed message.
// It corresponds to the tuple (salt, C_1..C_n, M) of Figure 15.
type Ciphertext struct {
	Salt   []byte
	Shares [][]byte
	Sealed []byte
}

// SaltSize is the length of the random public salt.
const SaltSize = 32

// Select deterministically maps (salt, pin) to the n distinct cluster
// indices in [N]. Both Backup and Recover call this; it is the only place
// the PIN enters the cryptosystem.
//
//spin:secret pin
func (p Params) Select(salt []byte, pin string) ([]int, error) {
	seed := sha256.New()
	seed.Write(salt)
	seed.Write([]byte{0})
	seed.Write([]byte(pin))
	return prg.Indices(selectLabel, seed.Sum(nil), p.n, p.N)
}

// shareAD builds the per-share domain-separation string of Appendix A.4:
// username, salt, share position, and recipient index. An HSM can rebuild it
// from the recovery request plus its own identity, and a ciphertext bound to
// one context fails everywhere else.
func shareAD(user string, salt []byte, sharePos, hsmIndex int) []byte {
	var buf bytes.Buffer
	buf.WriteString("safetypin/lhe/share/v1|")
	binary.Write(&buf, binary.BigEndian, uint32(len(user)))
	buf.WriteString(user)
	buf.Write(salt)
	binary.Write(&buf, binary.BigEndian, uint32(sharePos))
	binary.Write(&buf, binary.BigEndian, uint32(hsmIndex))
	return buf.Bytes()
}

// sealedAD binds the sealed message to the user and salt.
func sealedAD(user string, salt []byte) []byte {
	return append([]byte("safetypin/lhe/msg/v1|"+user+"|"), salt...)
}

// sharePlaintext prepends the username to a Shamir share, the paper's
// defence against user A replaying user B's share ciphertexts (§4.1).
func sharePlaintext(user string, s shamir.Share) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(len(user)))
	buf.WriteString(user)
	buf.Write(s.Bytes())
	return buf.Bytes()
}

// parseSharePlaintext inverts sharePlaintext and verifies the embedded
// username.
func parseSharePlaintext(b []byte, wantUser string) (shamir.Share, error) {
	if len(b) < 4 {
		return shamir.Share{}, errors.New("lhe: share plaintext too short")
	}
	ulen := int(binary.BigEndian.Uint32(b))
	if len(b) != 4+ulen+shamir.ShareSize {
		return shamir.Share{}, errors.New("lhe: malformed share plaintext")
	}
	user := string(b[4 : 4+ulen])
	if user != wantUser {
		return shamir.Share{}, fmt.Errorf("lhe: share bound to user %q, not %q", user, wantUser)
	}
	return shamir.ShareFromBytes(b[4+ulen:])
}

// Encrypt produces a recovery ciphertext for msg under (user, pin), spread
// over the N public keys held by enc. A fresh salt is drawn from rng.
//
//spin:secret pin
func (p Params) Encrypt(enc Encryptor, user, pin string, msg []byte, rng io.Reader) (*Ciphertext, error) {
	salt := make([]byte, SaltSize)
	if _, err := io.ReadFull(rng, salt); err != nil {
		return nil, fmt.Errorf("lhe: sampling salt: %w", err)
	}
	return p.EncryptWithSalt(enc, user, pin, salt, msg, rng)
}

// EncryptWithSalt is Encrypt with a caller-chosen salt. Clients reuse the
// salt across a series of backups (§8, "Multiple recovery ciphertexts") so
// that one puncture revokes all of their earlier ciphertexts at once.
//
//spin:secret pin
func (p Params) EncryptWithSalt(enc Encryptor, user, pin string, salt []byte, msg []byte, rng io.Reader) (*Ciphertext, error) {
	if len(salt) != SaltSize {
		return nil, fmt.Errorf("lhe: salt must be %d bytes, got %d", SaltSize, len(salt))
	}
	key := make([]byte, 16) // AES-128 transport key, as in the paper
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("lhe: sampling transport key: %w", err)
	}
	shares, err := shamir.SplitBytes(key, p.t, p.n, rng)
	if err != nil {
		return nil, err
	}
	cluster, err := p.Select(salt, pin)
	if err != nil {
		return nil, err
	}
	shareCts := make([][]byte, p.n)
	for j, hsmIdx := range cluster {
		pt := sharePlaintext(user, shares[j])
		ct, err := enc.EncryptTo(hsmIdx, pt, shareAD(user, salt, j, hsmIdx), rng)
		if err != nil {
			return nil, fmt.Errorf("lhe: encrypting share %d to HSM %d: %w", j, hsmIdx, err)
		}
		shareCts[j] = ct
	}
	sealed, err := aead.Seal(key, msg, sealedAD(user, salt))
	if err != nil {
		return nil, err
	}
	return &Ciphertext{Salt: salt, Shares: shareCts, Sealed: sealed}, nil
}

// DecryptedShare is the result of one HSM's Decrypt step: the share position
// within the cluster plus the recovered Shamir share.
type DecryptedShare struct {
	Pos   int
	Share shamir.Share
}

// DecryptShare is the HSM-side decryption of Figure 15: given this HSM's
// ShareDecrypter, the recovery context (user, salt), the share position j,
// and the HSM's own index, recover the Shamir share and verify its username
// binding.
func DecryptShare(dec ShareDecrypter, user string, salt []byte, sharePos, hsmIndex int, shareCt []byte) (DecryptedShare, error) {
	pt, err := dec.DecryptShare(shareCt, shareAD(user, salt, sharePos, hsmIndex))
	if err != nil {
		return DecryptedShare{}, fmt.Errorf("lhe: share decryption failed: %w", err)
	}
	s, err := parseSharePlaintext(pt, user)
	if err != nil {
		return DecryptedShare{}, err
	}
	return DecryptedShare{Pos: sharePos, Share: s}, nil
}

// Reconstruct recovers the backed-up message from at least t decrypted
// shares. It corresponds to Figure 15's Reconstruct plus the final AEAD
// open.
func (p Params) Reconstruct(user string, ct *Ciphertext, shares []DecryptedShare) ([]byte, error) {
	if len(shares) < p.t {
		return nil, fmt.Errorf("lhe: have %d shares, need %d", len(shares), p.t)
	}
	ss := make([]shamir.Share, 0, len(shares))
	for _, d := range shares {
		ss = append(ss, d.Share)
	}
	key, err := shamir.ReconstructBytes(ss, p.t)
	if err != nil {
		return nil, err
	}
	msg, err := aead.Open(key, ct.Sealed, sealedAD(user, ct.Salt))
	if err != nil {
		return nil, fmt.Errorf("lhe: opening sealed message (wrong PIN or corrupt shares?): %w", err)
	}
	return msg, nil
}
