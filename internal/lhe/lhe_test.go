package lhe

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"safetypin/internal/ecgroup"
)

// fleet builds N ElGamal keypairs plus the client-side fleet view.
func fleet(t testing.TB, n int) ([]ecgroup.KeyPair, *ElGamalFleet) {
	t.Helper()
	kps := make([]ecgroup.KeyPair, n)
	pks := make([]ecgroup.Point, n)
	for i := range kps {
		kp, err := ecgroup.GenerateKeyPair(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		kps[i] = kp
		pks[i] = kp.PK
	}
	return kps, NewElGamalFleet(pks)
}

// recoverAll plays the honest protocol: select the cluster from the PIN,
// decrypt every share at its HSM, reconstruct.
func recoverAll(t testing.TB, p Params, kps []ecgroup.KeyPair, user, pin string, ct *Ciphertext) ([]byte, error) {
	t.Helper()
	cluster, err := p.Select(ct.Salt, pin)
	if err != nil {
		return nil, err
	}
	var shares []DecryptedShare
	for j, hsmIdx := range cluster {
		dec := NewElGamalDecrypter(kps[hsmIdx])
		ds, err := DecryptShare(dec, user, ct.Salt, j, hsmIdx, ct.Shares[j])
		if err != nil {
			continue // wrong PIN selects wrong HSMs; their decrypts fail
		}
		shares = append(shares, ds)
	}
	return p.Reconstruct(user, ct, shares)
}

func mustParams(t testing.TB, total, cluster, threshold int) Params {
	t.Helper()
	p, err := NewParams(total, cluster, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBackupRecoverRoundTrip(t *testing.T) {
	p := mustParams(t, 24, 8, 4)
	kps, enc := fleet(t, 24)
	msg := []byte("disk image bytes")
	ct, err := p.Encrypt(enc, "alice", "123456", msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recoverAll(t, p, kps, "alice", "123456", ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round-trip mismatch")
	}
}

func TestWrongPINFails(t *testing.T) {
	p := mustParams(t, 24, 8, 4)
	kps, enc := fleet(t, 24)
	ct, err := p.Encrypt(enc, "alice", "123456", []byte("m"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recoverAll(t, p, kps, "alice", "654321", ct); err == nil {
		t.Fatal("recovery with wrong PIN succeeded")
	}
}

func TestWrongUserFails(t *testing.T) {
	// Mallory colluding with the provider replays Alice's ciphertext under
	// her own username: every share must refuse to decrypt.
	p := mustParams(t, 24, 8, 4)
	kps, enc := fleet(t, 24)
	ct, err := p.Encrypt(enc, "alice", "123456", []byte("m"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cluster, _ := p.Select(ct.Salt, "123456")
	for j, hsmIdx := range cluster {
		dec := NewElGamalDecrypter(kps[hsmIdx])
		if _, err := DecryptShare(dec, "mallory", ct.Salt, j, hsmIdx, ct.Shares[j]); err == nil {
			t.Fatal("share decrypted under wrong username")
		}
	}
}

func TestThresholdRecovery(t *testing.T) {
	// Only t of n shares are needed: drop the rest (fault tolerance).
	p := mustParams(t, 32, 10, 5)
	kps, enc := fleet(t, 32)
	msg := []byte("survives failures")
	ct, err := p.Encrypt(enc, "bob", "111111", msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cluster, _ := p.Select(ct.Salt, "111111")
	var shares []DecryptedShare
	for j := 3; j < 8; j++ { // arbitrary 5 of the 10
		hsmIdx := cluster[j]
		ds, err := DecryptShare(NewElGamalDecrypter(kps[hsmIdx]), "bob", ct.Salt, j, hsmIdx, ct.Shares[j])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, ds)
	}
	got, err := p.Reconstruct("bob", ct, shares)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("threshold recovery failed")
	}
}

func TestBelowThresholdFails(t *testing.T) {
	p := mustParams(t, 32, 10, 5)
	kps, enc := fleet(t, 32)
	ct, err := p.Encrypt(enc, "bob", "111111", []byte("m"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cluster, _ := p.Select(ct.Salt, "111111")
	var shares []DecryptedShare
	for j := 0; j < 4; j++ { // t-1 shares
		hsmIdx := cluster[j]
		ds, err := DecryptShare(NewElGamalDecrypter(kps[hsmIdx]), "bob", ct.Salt, j, hsmIdx, ct.Shares[j])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, ds)
	}
	if _, err := p.Reconstruct("bob", ct, shares); err == nil {
		t.Fatal("reconstruction below threshold succeeded")
	}
}

func TestSelectDeterministicAndPinSensitive(t *testing.T) {
	p := mustParams(t, 1000, 40, 20)
	salt := make([]byte, SaltSize)
	a, err := p.Select(salt, "123456")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Select(salt, "123456")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Select not deterministic")
		}
	}
	c, err := p.Select(salt, "123457")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("adjacent PINs produced the same cluster")
	}
}

func TestSelectSaltSensitive(t *testing.T) {
	p := mustParams(t, 1000, 40, 20)
	s1 := bytes.Repeat([]byte{1}, SaltSize)
	s2 := bytes.Repeat([]byte{2}, SaltSize)
	a, _ := p.Select(s1, "123456")
	b, _ := p.Select(s2, "123456")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different salts produced the same cluster")
	}
}

func TestCiphertextHidesCluster(t *testing.T) {
	// Key privacy at the system level: the serialized ciphertext must not
	// contain any fleet public key (which would reveal cluster identity).
	p := mustParams(t, 16, 6, 3)
	kps, enc := fleet(t, 16)
	ct, err := p.Encrypt(enc, "alice", "123456", []byte("m"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	raw := ct.Bytes()
	for i, kp := range kps {
		if bytes.Contains(raw, kp.PK.Bytes()) {
			t.Fatalf("ciphertext leaks public key of HSM %d", i)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	p := mustParams(t, 24, 8, 4)
	kps, enc := fleet(t, 24)
	msg := []byte("serialize me")
	ct, err := p.Encrypt(enc, "alice", "123456", msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := CiphertextFromBytes(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := recoverAll(t, p, kps, "alice", "123456", parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("serialized round-trip failed")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	p := mustParams(t, 8, 4, 2)
	_, enc := fleet(t, 8)
	ct, err := p.Encrypt(enc, "a", "1", []byte("m"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	raw := ct.Bytes()
	if _, err := CiphertextFromBytes(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated ciphertext parsed")
	}
	if _, err := CiphertextFromBytes(append(raw, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := CiphertextFromBytes(nil); err == nil {
		t.Fatal("empty buffer parsed")
	}
}

func TestCodecQuickNoPanics(t *testing.T) {
	// The parser must fail cleanly, never panic, on arbitrary input.
	err := quick.Check(func(raw []byte) bool {
		_, _ = CiphertextFromBytes(raw)
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	cases := []struct{ N, n, t int }{
		{0, 1, 1}, {10, 0, 0}, {10, 11, 5}, {10, 5, 0}, {10, 5, 6},
	}
	for _, c := range cases {
		if _, err := NewParams(c.N, c.n, c.t); err == nil {
			t.Fatalf("NewParams(%d,%d,%d) should fail", c.N, c.n, c.t)
		}
	}
}

func TestPaperParams(t *testing.T) {
	p, err := PaperParams(3100)
	if err != nil {
		t.Fatal(err)
	}
	if p.ClusterSize() != 40 || p.Threshold() != 20 {
		t.Fatalf("expected n=40 t=20, got n=%d t=%d", p.ClusterSize(), p.Threshold())
	}
	small, err := PaperParams(10)
	if err != nil {
		t.Fatal(err)
	}
	if small.ClusterSize() != 10 || small.Threshold() != 5 {
		t.Fatalf("scaled params wrong: %+v", small)
	}
}

func TestSaltReuseSameCluster(t *testing.T) {
	// §8: a client reuses its salt across backups so all its ciphertexts
	// live on the same cluster and one puncture revokes all of them.
	p := mustParams(t, 64, 8, 4)
	_, enc := fleet(t, 64)
	salt := bytes.Repeat([]byte{7}, SaltSize)
	ct1, err := p.EncryptWithSalt(enc, "alice", "123456", salt, []byte("m1"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := p.EncryptWithSalt(enc, "alice", "123456", salt, []byte("m2"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := p.Select(ct1.Salt, "123456")
	c2, _ := p.Select(ct2.Salt, "123456")
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("salt reuse produced different clusters")
		}
	}
}

func TestCiphertextSizeReported(t *testing.T) {
	// Sanity: at n=40 over ElGamal the ciphertext should be tens of KB at
	// most; the paper reports 16.5 KB for its encoding.
	p := mustParams(t, 100, 40, 20)
	_, enc := fleet(t, 100)
	ct, err := p.Encrypt(enc, "alice", "123456", []byte("msg"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sz := ct.Size()
	if sz < 40*64 || sz > 40*1024 {
		t.Fatalf("implausible ciphertext size %d", sz)
	}
}

func BenchmarkEncryptN40(b *testing.B) {
	p, _ := NewParams(100, 40, 20)
	_, enc := fleet(b, 100)
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encrypt(enc, "alice", "123456", msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoverN40(b *testing.B) {
	p, _ := NewParams(100, 40, 20)
	kps, enc := fleet(b, 100)
	ct, err := p.Encrypt(enc, "alice", "123456", make([]byte, 64), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recoverAll(b, p, kps, "alice", "123456", ct); err != nil {
			b.Fatal(err)
		}
	}
}
