package hsm

import (
	"context"
	"crypto/rand"
	"errors"
	"testing"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/ecgroup"
	"safetypin/internal/lhe"
	"safetypin/internal/meter"
	"safetypin/internal/protocol"
	"safetypin/internal/provider"
	"safetypin/internal/securestore"
)

var tctx = context.Background()

// rig is a minimal single-purpose harness: a few HSMs wired to a provider,
// plus helpers to run the log and build valid recovery requests.
type rig struct {
	cfg   Config
	prov  *provider.Provider
	hsms  []*HSM
	fleet *bfe.Fleet
	lhe   lhe.Params
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	logCfg := dlog.Config{
		NumChunks:     n,
		AuditsPerHSM:  n,
		MinSignerFrac: 0.5,
		Scheme:        aggsig.ECDSAConcat(),
	}
	cfg := Config{BFE: bfe.Params{M: 128, K: 4}, Log: logCfg, GuessLimit: 2}
	r := &rig{cfg: cfg, prov: provider.New(logCfg)}
	var pubs []*bfe.PublicKey
	var roster []aggsig.PublicKey
	for i := 0; i < n; i++ {
		h, err := New(i, cfg, r.prov.OracleFor(i), rand.Reader, meter.New())
		if err != nil {
			t.Fatal(err)
		}
		r.hsms = append(r.hsms, h)
		pubs = append(pubs, h.BFEPublicKey())
		roster = append(roster, h.AggSigPublicKey())
	}
	for _, h := range r.hsms {
		if err := h.InstallRoster(roster); err != nil {
			t.Fatal(err)
		}
		r.prov.Register(h)
	}
	r.fleet = bfe.NewFleet(pubs)
	cl, th := n/2, n/4
	if cl < 1 {
		cl = 1
	}
	if th < 1 {
		th = 1
	}
	params, err := lhe.NewParams(n, cl, th)
	if err != nil {
		t.Fatal(err)
	}
	r.lhe = params
	return r
}

func (r *rig) backupAndLog(t testing.TB, user, pin string) (*lhe.Ciphertext, []byte, []int, []byte, ecgroup.KeyPair, *protocol.RecoveryRequest) {
	t.Helper()
	ct, err := r.lhe.Encrypt(r.fleet, user, pin, []byte("payload"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blob := ct.Bytes()
	cluster, err := r.lhe.Select(ct.Salt, pin)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, protocol.CommitNonceSize)
	if _, err := rand.Read(nonce); err != nil {
		t.Fatal(err)
	}
	commit := protocol.Commitment(user, ct.Salt, protocol.HashCiphertext(blob), cluster, nonce)
	if err := r.prov.LogRecoveryAttempt(tctx, user, 0, commit); err != nil {
		t.Fatal(err)
	}
	if err := r.prov.RunEpoch(tctx); err != nil {
		t.Fatal(err)
	}
	trace, err := r.prov.FetchInclusionProof(tctx, user, 0, commit)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := ecgroup.GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	req := &protocol.RecoveryRequest{
		User:        user,
		Salt:        ct.Salt,
		Attempt:     0,
		SharePos:    0,
		Cluster:     cluster,
		CommitNonce: nonce,
		CtHash:      protocol.HashCiphertext(blob),
		ShareCt:     ct.Shares[0],
		LogTrace:    trace,
		ReplyPK:     kp.PK,
	}
	return ct, blob, cluster, nonce, kp, req
}

func TestHandleRecoverHappyPath(t *testing.T) {
	r := newRig(t, 8)
	_, _, cluster, _, _, req := r.backupAndLog(t, "alice", "123456")
	h := r.hsms[cluster[0]]
	before := h.Punctures()
	reply, err := h.HandleRecover(tctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if reply.HSMIndex != h.ID() || reply.SharePos != 0 || len(reply.Box) == 0 {
		t.Fatalf("malformed reply: %+v", reply)
	}
	if h.Punctures() != before+1 {
		t.Fatal("puncture not recorded")
	}
}

func TestHandleRecoverWrongHSM(t *testing.T) {
	r := newRig(t, 8)
	_, _, cluster, _, _, req := r.backupAndLog(t, "alice", "123456")
	// Send the position-0 request to an HSM that is not cluster[0].
	var other *HSM
	for _, h := range r.hsms {
		if h.ID() != cluster[0] {
			other = h
			break
		}
	}
	if _, err := other.HandleRecover(tctx, req); err == nil {
		t.Fatal("foreign HSM served the request")
	}
}

func TestHandleRecoverGuessLimit(t *testing.T) {
	r := newRig(t, 8)
	_, _, cluster, _, _, req := r.backupAndLog(t, "alice", "123456")
	req.Attempt = r.cfg.GuessLimit // one past the budget
	if _, err := r.hsms[cluster[0]].HandleRecover(tctx, req); !errors.Is(err, ErrGuessLimit) {
		t.Fatalf("want ErrGuessLimit, got %v", err)
	}
}

func TestHandleRecoverBadCommitmentOpening(t *testing.T) {
	r := newRig(t, 8)
	_, _, cluster, _, _, req := r.backupAndLog(t, "alice", "123456")
	req.CommitNonce = make([]byte, protocol.CommitNonceSize) // wrong nonce
	if _, err := r.hsms[cluster[0]].HandleRecover(tctx, req); err == nil {
		t.Fatal("wrong commitment opening accepted")
	}
}

func TestHandleRecoverUnloggedAttempt(t *testing.T) {
	r := newRig(t, 8)
	_, _, cluster, _, _, req := r.backupAndLog(t, "alice", "123456")
	req.Attempt = 1 // logged attempt was #0; #1 is unlogged
	if _, err := r.hsms[cluster[0]].HandleRecover(tctx, req); err == nil {
		t.Fatal("unlogged attempt accepted")
	}
}

func TestHandleRecoverBeforeRoster(t *testing.T) {
	h, err := New(0, Config{
		BFE: bfe.Params{M: 64, K: 4},
		Log: dlog.Config{Scheme: aggsig.ECDSAConcat()},
	}, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	kp, _ := ecgroup.GenerateKeyPair(rand.Reader)
	req := &protocol.RecoveryRequest{
		User: "a", Salt: []byte("s"), Cluster: []int{0},
		CommitNonce: make([]byte, protocol.CommitNonceSize),
		ShareCt:     []byte("x"), LogTrace: nil, ReplyPK: kp.PK,
	}
	if _, err := h.HandleRecover(tctx, req); err == nil {
		t.Fatal("request served before roster installation")
	}
}

func TestRotationLifecycle(t *testing.T) {
	r := newRig(t, 4)
	h := r.hsms[0]
	if h.KeyEpoch() != 0 {
		t.Fatal("fresh HSM should be at key epoch 0")
	}
	pk, err := h.RotateKey(securestore.NewMemOracle())
	if err != nil {
		t.Fatal(err)
	}
	if h.KeyEpoch() != 1 {
		t.Fatal("rotation did not bump epoch")
	}
	if pk == nil || len(pk.Points) != r.cfg.BFE.M {
		t.Fatal("rotated key malformed")
	}
	// The published key must be the one the HSM now uses.
	if !h.BFEPublicKey().Points[0].Equal(pk.Points[0]) {
		t.Fatal("published key differs from installed key")
	}
}

func TestSchemeExposed(t *testing.T) {
	r := newRig(t, 2)
	if r.hsms[0].Scheme().Name() != "ecdsa-concat" {
		t.Fatal("scheme accessor wrong")
	}
}

func TestLogDigestTracksFleet(t *testing.T) {
	r := newRig(t, 4)
	d0, err := r.hsms[0].LogDigest()
	if err != nil {
		t.Fatal(err)
	}
	r.backupAndLog(t, "alice", "123456") // runs one epoch
	d1, err := r.hsms[0].LogDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d0 == d1 {
		t.Fatal("digest did not advance with the epoch")
	}
	for _, h := range r.hsms[1:] {
		di, err := h.LogDigest()
		if err != nil {
			t.Fatal(err)
		}
		if di != d1 {
			t.Fatal("fleet digests diverged")
		}
	}
}

func TestGarbageCollectBudgetWiring(t *testing.T) {
	r := newRig(t, 2)
	for i := 0; i < dlog.DefaultGCBudget; i++ {
		if err := r.hsms[0].GarbageCollect(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.hsms[0].GarbageCollect(); err == nil {
		t.Fatal("GC budget not enforced through the HSM")
	}
}
