package hsm

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/elgamal"
	"safetypin/internal/lhe"
	"safetypin/internal/meter"
	"safetypin/internal/protocol"
	"safetypin/internal/securestore"
)

// Config fixes per-HSM parameters.
type Config struct {
	// BFE sizes the puncturable-encryption keys.
	BFE bfe.Params
	// Log is the distributed-log configuration (shared fleet-wide).
	Log dlog.Config
	// GuessLimit is the number of recovery attempts allowed per user
	// between log garbage collections (the paper discusses 1, or e.g. 5).
	GuessLimit int
}

func (c Config) withDefaults() Config {
	if c.GuessLimit < 1 {
		c.GuessLimit = 1
	}
	return c
}

// HSM is one simulated hardware security module.
//
// Locking is fine-grained so the three duties proceed concurrently under
// the provider's fan-out: log auditing synchronizes inside the dlog
// auditor, recovery share decryption serializes on keyMu (the puncturable
// key mutates its outsourced store on every puncture, and a real HSM is a
// serial device there anyway), and cheap state reads take stateMu.
type HSM struct {
	id  int
	cfg Config

	// keyMu serializes every use of the puncturable key: a decrypt and
	// its puncture must be atomic with respect to other recoveries, and
	// rotation swaps the key wholesale.
	keyMu  sync.Mutex
	bfeKey *bfe.PrivateKey //spin:guardedby keyMu

	// stateMu guards the cheap mutable state below.
	stateMu   sync.RWMutex
	bfePub    *bfe.PublicKey //spin:guardedby stateMu
	auditor   *dlog.Auditor  //spin:guardedby stateMu
	keyEpoch  int            //spin:guardedby stateMu
	punctures int64          //spin:guardedby stateMu

	signer aggsig.Signer
	oracle securestore.Oracle //spin:guardedby stateMu
	rng    io.Reader
	m      *meter.Meter
}

// New provisions an HSM: it generates its puncturable keypair (outsourcing
// the secret array to the provider-hosted oracle) and its signing key. The
// log auditor is attached later via InstallRoster, once all fleet public
// keys exist.
func New(id int, cfg Config, oracle securestore.Oracle, rng io.Reader, m *meter.Meter) (*HSM, error) {
	return NewWithSigner(id, cfg, oracle, rng, m, nil)
}

// NewWithSigner is New with a pre-generated signing key — the fleet
// provisioning path, where all signing keys come from one
// aggsig.KeyGenBatch (sharing the batch affine conversion) before the
// per-HSM work fans out. A nil signer makes the HSM generate its own.
func NewWithSigner(id int, cfg Config, oracle securestore.Oracle, rng io.Reader, m *meter.Meter, signer aggsig.Signer) (*HSM, error) {
	cfg = cfg.withDefaults()
	if rng == nil {
		rng = rand.Reader
	}
	sk, pk, err := bfe.KeyGenBatch(cfg.BFE, oracle, rng, m)
	if err != nil {
		return nil, fmt.Errorf("hsm %d: generating puncturable key: %w", id, err)
	}
	scheme := cfg.Log.Scheme
	if scheme == nil {
		scheme = aggsig.BLS()
		cfg.Log.Scheme = scheme
	}
	if signer == nil {
		signer, err = scheme.KeyGen(rng)
		if err != nil {
			return nil, fmt.Errorf("hsm %d: generating signing key: %w", id, err)
		}
	}
	return &HSM{
		id:     id,
		cfg:    cfg,
		bfeKey: sk,
		bfePub: pk,
		signer: signer,
		oracle: oracle,
		rng:    rng,
		m:      m,
	}, nil
}

// ID returns the HSM's fleet index.
func (h *HSM) ID() int { return h.id }

// BFEPublicKey returns the current puncturable-encryption public key.
func (h *HSM) BFEPublicKey() *bfe.PublicKey {
	h.stateMu.RLock()
	defer h.stateMu.RUnlock()
	return h.bfePub
}

// AggSigPublicKey returns the aggregate-signature public key.
func (h *HSM) AggSigPublicKey() aggsig.PublicKey { return h.signer.PublicKey() }

// Scheme returns the fleet's aggregate-signature scheme.
func (h *HSM) Scheme() aggsig.Scheme { return h.cfg.Log.Scheme }

// Meter returns the HSM's operation meter (nil-safe).
func (h *HSM) Meter() *meter.Meter { return h.m }

// InstallRoster attaches the distributed-log auditor once the fleet roster
// is known.
func (h *HSM) InstallRoster(roster []aggsig.PublicKey) error {
	return h.installRoster(roster, nil)
}

// InstallRosterShared is InstallRoster with a fleet-shared, pre-warmed
// roster cache (see dlog.NewAuditorShared): at fleet scale, per-auditor
// caches would copy the roster and rebuild the full aggregate key once
// per HSM.
func (h *HSM) InstallRosterShared(roster []aggsig.PublicKey, cache *aggsig.RosterCache) error {
	return h.installRoster(roster, cache)
}

func (h *HSM) installRoster(roster []aggsig.PublicKey, cache *aggsig.RosterCache) error {
	a, err := dlog.NewAuditorShared(h.cfg.Log, h.id, roster, h.signer, h.m, cache)
	if err != nil {
		return err
	}
	h.stateMu.Lock()
	h.auditor = a
	h.stateMu.Unlock()
	return nil
}

func (h *HSM) auditorOrErr() (*dlog.Auditor, error) {
	h.stateMu.RLock()
	defer h.stateMu.RUnlock()
	if h.auditor == nil {
		return nil, fmt.Errorf("hsm %d: roster not installed", h.id)
	}
	return h.auditor, nil
}

// --- distributed-log participant interface ---
//
// The context on each exchange models the transport link to the HSM: the
// state machine itself is sequential, but a cancelled context (provider
// deadline, client gone) makes the exchange fail fast instead of queueing
// more work at a device that nobody is waiting on.

// LogChooseChunks selects this HSM's audit assignment for an epoch.
func (h *HSM) LogChooseChunks(ctx context.Context, hdr dlog.EpochHeader) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, err := h.auditorOrErr()
	if err != nil {
		return nil, err
	}
	return a.ChooseChunks(hdr)
}

// LogHandleAudit audits an epoch package and returns this HSM's signature.
func (h *HSM) LogHandleAudit(ctx context.Context, pkg *dlog.AuditPackage) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, err := h.auditorOrErr()
	if err != nil {
		return nil, err
	}
	return a.HandleAudit(pkg)
}

// LogHandleCommit verifies the aggregate signature and advances the digest.
func (h *HSM) LogHandleCommit(ctx context.Context, cm *dlog.CommitMessage) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	a, err := h.auditorOrErr()
	if err != nil {
		return err
	}
	return a.HandleCommit(cm)
}

// LogDigest returns the HSM's current accepted log digest.
func (h *HSM) LogDigest() ([32]byte, error) {
	a, err := h.auditorOrErr()
	if err != nil {
		return [32]byte{}, err
	}
	return a.Digest(), nil
}

// GarbageCollect resets the HSM's log digest within its bounded budget.
func (h *HSM) GarbageCollect() error {
	a, err := h.auditorOrErr()
	if err != nil {
		return err
	}
	return a.GarbageCollect()
}

// --- recovery ---

// ErrGuessLimit is returned when a request's attempt number exceeds the
// per-user budget.
var ErrGuessLimit = errors.New("hsm: recovery attempt exceeds guess limit")

// HandleRecover executes steps Ï–Ð of Figure 3 for this HSM:
//
//  1. validate the request and this HSM's membership in the opened cluster,
//  2. enforce the per-user guess limit,
//  3. recompute the commitment and verify its log inclusion against the
//     HSM's own digest,
//  4. decrypt the share (verifying the embedded username),
//  5. puncture the key so this ciphertext is dead forever after,
//  6. seal the share to the client's ephemeral reply key.
//
// The context is checked before any state changes: a client that cancelled
// (it already holds a threshold of shares) is turned away before this HSM
// decrypts and punctures, so an abandoned request does not burn a share.
// Once the puncture begins the operation runs to completion — the key
// mutation is atomic with respect to cancellation.
func (h *HSM) HandleRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	a, err := h.auditorOrErr()
	if err != nil {
		return nil, err
	}
	if req.Cluster[req.SharePos] != h.id {
		return nil, fmt.Errorf("hsm %d: request names HSM %d at position %d",
			h.id, req.Cluster[req.SharePos], req.SharePos)
	}
	if req.Attempt >= h.cfg.GuessLimit {
		return nil, fmt.Errorf("%w: attempt %d, limit %d", ErrGuessLimit, req.Attempt, h.cfg.GuessLimit)
	}
	// Check the logged commitment: the client's recovery attempt — bound to
	// this exact ciphertext and cluster — must appear in the log the fleet
	// agreed on.
	commit := protocol.Commitment(req.User, req.Salt, req.CtHash, req.Cluster, req.CommitNonce)
	h.m.Add(meter.OpHMAC, 2)
	logID := protocol.LogID(req.User, req.Attempt)
	if !a.VerifyInclusion(logID, commit, req.LogTrace) {
		return nil, fmt.Errorf("hsm %d: recovery attempt not in log", h.id)
	}
	// Last cancellation point: past here the decrypt-and-puncture runs to
	// completion so the key store never ends up half-mutated.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Decrypt the share; the lhe layer verifies the username binding. The
	// decrypt and its puncture are one atomic key operation: a concurrent
	// recovery of the same ciphertext must see either the live key or the
	// punctured key, never the half-punctured store.
	h.keyMu.Lock()
	ds, err := lhe.DecryptShare(h.bfeKey, req.User, req.Salt, req.SharePos, h.id, req.ShareCt)
	if err != nil {
		h.keyMu.Unlock()
		return nil, fmt.Errorf("hsm %d: %w", h.id, err)
	}
	// Forward secrecy: puncture before replying. An attacker who seizes
	// this HSM after the reply leaves learns nothing about the ciphertext.
	if err := h.bfeKey.Puncture(req.ShareCt); err != nil {
		h.keyMu.Unlock()
		return nil, fmt.Errorf("hsm %d: puncturing: %w", h.id, err)
	}
	h.keyMu.Unlock()
	h.stateMu.Lock()
	h.punctures++
	h.stateMu.Unlock()
	// Seal the reply to the client's per-recovery key; the provider
	// escrows a copy for crash recovery (§8).
	h.m.Add(meter.OpECMul, 2)
	box, err := elgamal.Encrypt(req.ReplyPK, ds.Share.Bytes(),
		protocol.ReplyAD(req.User, req.Salt, req.SharePos), h.rng)
	if err != nil {
		return nil, err
	}
	return &protocol.RecoveryReply{HSMIndex: h.id, SharePos: req.SharePos, Box: box.Bytes()}, nil
}

// --- key rotation ---

// NeedsRotation reports whether the puncturable key is half spent.
func (h *HSM) NeedsRotation() bool {
	h.keyMu.Lock()
	defer h.keyMu.Unlock()
	return h.bfeKey.NeedsRotation()
}

// RotateKey generates a fresh puncturable keypair on a fresh oracle,
// destroying the old secret. Returns the new public key for distribution to
// clients. This is the 75-hour operation of §9.1; the meter records its
// full cost. In-flight recoveries against the old key finish first (keyMu
// is held across the swap).
func (h *HSM) RotateKey(freshOracle securestore.Oracle) (*bfe.PublicKey, error) {
	sk, pk, err := bfe.KeyGen(h.cfg.BFE, freshOracle, h.rng, h.m)
	if err != nil {
		return nil, fmt.Errorf("hsm %d: rotating key: %w", h.id, err)
	}
	h.keyMu.Lock()
	h.bfeKey = sk
	h.keyMu.Unlock()
	h.stateMu.Lock()
	h.bfePub = pk
	h.oracle = freshOracle
	h.keyEpoch++
	h.stateMu.Unlock()
	return pk, nil
}

// SwapOracle reattaches the HSM's outsourced securestore to a different
// oracle holding the same encrypted blocks. This is the recovery path
// after a provider restart: the provider rebuilds its hosted block
// stores from the journal and live HSMs repoint at the rebuilt copies.
// The root key never left the HSM, so a provider that serves back
// tampered blocks is still caught by the AEAD integrity check. In-flight
// recoveries drain first (keyMu is held across the swap).
func (h *HSM) SwapOracle(o securestore.Oracle) {
	h.keyMu.Lock()
	h.bfeKey.SwapOracle(o)
	h.keyMu.Unlock()
	h.stateMu.Lock()
	h.oracle = o
	h.stateMu.Unlock()
}

// KeyEpoch returns how many times this HSM has rotated its key.
func (h *HSM) KeyEpoch() int {
	h.stateMu.RLock()
	defer h.stateMu.RUnlock()
	return h.keyEpoch
}

// Punctures returns the number of recovery shares served (and punctured).
func (h *HSM) Punctures() int64 {
	h.stateMu.RLock()
	defer h.stateMu.RUnlock()
	return h.punctures
}

// Decrypter exposes the HSM's share decrypter for white-box tests only; the
// production path goes through HandleRecover.
func (h *HSM) Decrypter() lhe.ShareDecrypter {
	h.keyMu.Lock()
	defer h.keyMu.Unlock()
	return h.bfeKey
}
