// Package hsm models one SafetyPin hardware security module as a sealed
// state machine: all secret key material (the puncturable-encryption root
// key, the aggregate-signature signing key) lives behind the HSM's message
// interface, exactly as the SoloKey firmware's secrets live behind its USB
// interface.
//
// An HSM serves three duties:
//
//   - recovery (Figure 3 Ï–Ð): check the logged commitment, decrypt its
//     share of a recovery ciphertext, puncture its key, and return the share
//     sealed to the client's ephemeral key;
//   - log auditing (§6.2): verify its chunk assignment of each epoch update
//     and co-sign the new digest;
//   - key rotation (§9.1): regenerate its puncturable key once half of it
//     has been punctured.
//
// Every operation is metered so the evaluation can price it in SoloKey time.
package hsm
