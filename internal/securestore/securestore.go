package securestore

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"safetypin/internal/aead"
	"safetypin/internal/meter"
)

// Oracle is the untrusted external block store (the service provider). The
// HSM reads and writes ciphertext blocks at 64-bit addresses.
type Oracle interface {
	Get(addr uint64) ([]byte, error)
	Put(addr uint64, block []byte) error
}

// MemOracle is an in-memory Oracle for tests and in-process deployments.
// It is safe for concurrent use: the provider serves many HSMs' oracle
// traffic (and remote OracleGet/OraclePut RPCs) in parallel.
type MemOracle struct {
	mu     sync.RWMutex
	blocks map[uint64][]byte //spin:guardedby mu
}

// NewMemOracle returns an empty in-memory store.
func NewMemOracle() *MemOracle { return &MemOracle{blocks: make(map[uint64][]byte)} }

// Get implements Oracle.
func (o *MemOracle) Get(addr uint64) ([]byte, error) {
	o.mu.RLock()
	b, ok := o.blocks[addr]
	o.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("securestore: no block at address %d", addr)
	}
	return append([]byte(nil), b...), nil
}

// Put implements Oracle.
func (o *MemOracle) Put(addr uint64, block []byte) error {
	o.mu.Lock()
	o.blocks[addr] = append([]byte(nil), block...)
	o.mu.Unlock()
	return nil
}

// Len returns the number of stored blocks.
func (o *MemOracle) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.blocks)
}

// Blocks returns a copy of every stored block keyed by address — the
// provider's durability layer snapshots oracle contents through this.
func (o *MemOracle) Blocks() map[uint64][]byte {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make(map[uint64][]byte, len(o.blocks))
	for addr, b := range o.blocks {
		out[addr] = append([]byte(nil), b...)
	}
	return out
}

// Store is the HSM-side handle: the root key plus tree geometry. Only the
// root key is secret; everything else is public parameters.
type Store struct {
	oracle  Oracle
	rootKey []byte //spin:secret
	height  int    // leaves sit at depth height; 2^height leaves
	numData int    // caller-visible block count (may be < 2^height)
	meter   *meter.Meter
	rng     io.Reader
}

// deletedKey is the sentinel written in place of a child key that has been
// securely deleted. Real keys are uniformly random, so the all-zero value
// occurs with probability 2^-256.
var deletedKey = make([]byte, aead.KeySize)

// isDeleted reports whether key is the deletion sentinel. Path keys derive
// from the secret root key, so the scan is a single constant-time
// comparison, not an early-exit byte loop whose duration tracks the first
// nonzero byte.
//
//spin:secret key
func isDeleted(key []byte) bool {
	return subtle.ConstantTimeCompare(key, deletedKey) == 1
}

// nodeAD binds each ciphertext to its tree address, preventing the provider
// from swapping blocks between addresses.
func nodeAD(addr uint64) []byte {
	ad := make([]byte, 8+len("safetypin/securestore/v1"))
	copy(ad, "safetypin/securestore/v1")
	binary.BigEndian.PutUint64(ad[len(ad)-8:], addr)
	return ad
}

// ErrDeleted is returned when reading a securely deleted block.
var ErrDeleted = errors.New("securestore: block was securely deleted")

// Setup encrypts the data array into oracle and returns the HSM-side Store.
// The array size is padded to the next power of two internally. m may be
// nil.
//
// All 2^(h+1)−1 node keys are drawn with ONE bulk entropy read up front —
// the per-node aead.NewKey reads used to dominate tree construction at
// fleet-provisioning scale — consumed in the same recursion order, so the
// byte→key mapping (and every ciphertext under a deterministic rng) is
// unchanged. Post-setup operations (rekeying on Delete/Write) still read
// rng directly: they draw a handful of keys, not a tree's worth.
func Setup(oracle Oracle, data [][]byte, rng io.Reader, m *meter.Meter) (*Store, error) {
	if len(data) == 0 {
		return nil, errors.New("securestore: empty data array")
	}
	height := 0
	for 1<<height < len(data) {
		height++
	}
	s := &Store{oracle: oracle, height: height, numData: len(data), meter: m, rng: rng}
	numNodes := uint64(2)<<uint(height) - 1
	keyBuf := make([]byte, numNodes*aead.KeySize)
	if _, err := io.ReadFull(rng, keyBuf); err != nil {
		return nil, fmt.Errorf("securestore: sampling node keys: %w", err)
	}
	cursor := keyBuf
	rootKey, err := s.setupNode(1, 0, data, &cursor)
	if err != nil {
		return nil, err
	}
	// Copy the root out and scrub the bulk buffer: only the root key may
	// survive setup inside the HSM — every other node key exists solely
	// under its parent's encryption.
	s.rootKey = append([]byte(nil), rootKey...)
	for i := range keyBuf {
		keyBuf[i] = 0
	}
	return s, nil
}

// nextKey consumes the next node key from the bulk setup buffer.
func nextKey(keyBuf *[]byte) []byte {
	key := (*keyBuf)[:aead.KeySize:aead.KeySize]
	*keyBuf = (*keyBuf)[aead.KeySize:]
	return key
}

// setupNode recursively builds the subtree rooted at addr (depth levels from
// the root) and returns its key.
func (s *Store) setupNode(addr uint64, depth int, data [][]byte, keyBuf *[]byte) ([]byte, error) {
	var msg []byte
	if depth == s.height {
		// leaf for logical index addr - 2^height
		idx := int(addr - (1 << uint(s.height)))
		if idx < len(data) {
			msg = data[idx]
		} else {
			msg = []byte{} // padding leaf
		}
	} else {
		left, err := s.setupNode(2*addr, depth+1, data, keyBuf)
		if err != nil {
			return nil, err
		}
		right, err := s.setupNode(2*addr+1, depth+1, data, keyBuf)
		if err != nil {
			return nil, err
		}
		msg = append(left, right...)
	}
	key := nextKey(keyBuf)
	box, err := aead.Seal(key, msg, nodeAD(addr))
	if err != nil {
		return nil, err
	}
	s.meter.Add(meter.OpAES32, meter.AESChunks(len(msg)))
	if err := s.oracle.Put(addr, box); err != nil {
		return nil, fmt.Errorf("securestore: writing node %d: %w", addr, err)
	}
	s.countIO(len(box))
	return key, nil
}

func (s *Store) countIO(blockLen int) {
	s.meter.Add(meter.OpIORoundTrip, 1)
	s.meter.Add(meter.OpIOByte, int64(blockLen))
}

// SetOracle repoints the store at a different oracle holding the same
// encrypted blocks — used when a restarted provider rebuilds its hosted
// block stores from the journal and live HSMs must reattach to the new
// copies. The root key is unchanged: the store's contents are defined
// by (rootKey, oracle blocks), so the caller must hand over a faithful
// replica of the blocks this store last wrote.
func (s *Store) SetOracle(o Oracle) { s.oracle = o }

// Len returns the number of logical data blocks.
func (s *Store) Len() int { return s.numData }

// Height returns the tree height (path length of each operation).
func (s *Store) Height() int { return s.height }

// RootKey returns the HSM-internal root key; exposed so tests can model an
// attacker who captures the HSM state after a deletion.
func (s *Store) RootKey() []byte { return append([]byte(nil), s.rootKey...) }

// pathAddrs returns the node addresses from the root down to leaf i.
func (s *Store) pathAddrs(i int) []uint64 {
	leaf := uint64(1<<uint(s.height)) + uint64(i)
	path := make([]uint64, s.height+1)
	for d := s.height; d >= 0; d-- {
		path[d] = leaf >> uint(s.height-d)
	}
	return path
}

func (s *Store) checkIndex(i int) error {
	if i < 0 || i >= s.numData {
		return fmt.Errorf("securestore: index %d out of range [0,%d)", i, s.numData)
	}
	return nil
}

// readPath walks from the root to leaf i, returning the per-node keys and
// the decrypted leaf payload.
func (s *Store) readPath(i int) (keys [][]byte, leaf []byte, err error) {
	path := s.pathAddrs(i)
	keys = make([][]byte, len(path))
	keys[0] = s.rootKey
	for d, addr := range path {
		if isDeleted(keys[d]) {
			return nil, nil, ErrDeleted
		}
		box, err := s.oracle.Get(addr)
		if err != nil {
			return nil, nil, fmt.Errorf("securestore: reading node %d: %w", addr, err)
		}
		s.countIO(len(box))
		pt, err := aead.Open(keys[d], box, nodeAD(addr))
		if err != nil {
			return nil, nil, fmt.Errorf("securestore: integrity failure at node %d: %w", addr, err)
		}
		s.meter.Add(meter.OpAES32, meter.AESChunks(len(pt)))
		if d == s.height {
			return keys, pt, nil
		}
		if len(pt) != 2*aead.KeySize {
			return nil, nil, fmt.Errorf("securestore: malformed interior node %d", addr)
		}
		child := path[d+1]
		if child == 2*addr {
			keys[d+1] = pt[:aead.KeySize]
		} else {
			keys[d+1] = pt[aead.KeySize:]
		}
	}
	return keys, leaf, nil
}

// Read returns the current contents of block i. It returns ErrDeleted for
// deleted blocks and an integrity error if the provider tampered with any
// node on the path.
func (s *Store) Read(i int) ([]byte, error) {
	if err := s.checkIndex(i); err != nil {
		return nil, err
	}
	_, leaf, err := s.readPath(i)
	return leaf, err
}

// rekeyPath re-encrypts the path to leaf i bottom-up. newLeafKey is the
// key to record for the leaf in its parent (deletedKey to delete), and
// newLeafBox optionally replaces the leaf ciphertext (nil keeps it).
// It installs a fresh root key.
func (s *Store) rekeyPath(i int, keys [][]byte, newLeafKey []byte, newLeafBox []byte) error {
	path := s.pathAddrs(i)
	if newLeafBox != nil {
		if err := s.oracle.Put(path[s.height], newLeafBox); err != nil {
			return err
		}
		s.countIO(len(newLeafBox))
	}
	childKey := newLeafKey
	// Re-encrypt interior nodes from the leaf's parent to the root.
	for d := s.height - 1; d >= 0; d-- {
		addr := path[d]
		box, err := s.oracle.Get(addr)
		if err != nil {
			return fmt.Errorf("securestore: reading node %d during rekey: %w", addr, err)
		}
		s.countIO(len(box))
		pt, err := aead.Open(keys[d], box, nodeAD(addr))
		if err != nil {
			return fmt.Errorf("securestore: integrity failure at node %d: %w", addr, err)
		}
		s.meter.Add(meter.OpAES32, meter.AESChunks(len(pt)))
		if len(pt) != 2*aead.KeySize {
			return fmt.Errorf("securestore: malformed interior node %d", addr)
		}
		if path[d+1] == 2*addr {
			copy(pt[:aead.KeySize], childKey)
		} else {
			copy(pt[aead.KeySize:], childKey)
		}
		fresh, err := aead.NewKey(s.rng)
		if err != nil {
			return err
		}
		newBox, err := aead.Seal(fresh, pt, nodeAD(addr))
		if err != nil {
			return err
		}
		s.meter.Add(meter.OpAES32, meter.AESChunks(len(pt)))
		if err := s.oracle.Put(addr, newBox); err != nil {
			return fmt.Errorf("securestore: writing node %d: %w", addr, err)
		}
		s.countIO(len(newBox))
		childKey = fresh
	}
	s.rootKey = childKey
	return nil
}

// Delete securely deletes block i: its key is dropped from the tree and the
// path is re-keyed up to a fresh root key. After Delete returns, the old
// root key no longer exists inside the Store.
func (s *Store) Delete(i int) error {
	if err := s.checkIndex(i); err != nil {
		return err
	}
	keys, _, err := s.readPath(i)
	if err == ErrDeleted {
		return nil // idempotent: deleting twice is a no-op
	}
	if err != nil {
		return err
	}
	return s.rekeyPath(i, keys, deletedKey, nil)
}

// Write replaces the contents of block i (and re-keys its path, so the old
// contents are securely deleted as well). Writing to a deleted block
// revives it.
func (s *Store) Write(i int, data []byte) error {
	if err := s.checkIndex(i); err != nil {
		return err
	}
	// Walk as far as possible; a deleted block still needs its path keys,
	// which remain readable above the deletion point.
	keys, _, err := s.readPath(i)
	if err == ErrDeleted {
		keys, err = s.pathKeysStoppingAtDeleted(i)
	}
	if err != nil {
		return err
	}
	leafKey, err := aead.NewKey(s.rng)
	if err != nil {
		return err
	}
	leafBox, err := aead.Seal(leafKey, data, nodeAD(s.pathAddrs(i)[s.height]))
	if err != nil {
		return err
	}
	s.meter.Add(meter.OpAES32, meter.AESChunks(len(data)))
	return s.rekeyPath(i, keys, leafKey, leafBox)
}

// pathKeysStoppingAtDeleted rebuilds the interior path keys for Write on a
// deleted block: keys above the deletion point are read normally; the
// deleted child key and everything below are replaced with fresh keys, and
// the orphaned nodes below are re-created so the path is decryptable again.
func (s *Store) pathKeysStoppingAtDeleted(i int) ([][]byte, error) {
	path := s.pathAddrs(i)
	keys := make([][]byte, len(path))
	keys[0] = s.rootKey
	for d := 0; d < s.height; d++ {
		addr := path[d]
		if isDeleted(keys[d]) {
			// Rebuild this node: fresh key, children marked deleted.
			fresh, err := aead.NewKey(s.rng)
			if err != nil {
				return nil, err
			}
			keys[d] = fresh
			pt := append(append([]byte{}, deletedKey...), deletedKey...)
			box, err := aead.Seal(fresh, pt, nodeAD(addr))
			if err != nil {
				return nil, err
			}
			s.meter.Add(meter.OpAES32, meter.AESChunks(len(pt)))
			if err := s.oracle.Put(addr, box); err != nil {
				return nil, err
			}
			s.countIO(len(box))
			// Fix the parent pointer. rekeyPath will handle ancestors, but
			// the parent's stored child key must match `fresh` for the
			// final read-back; rekeyPath rewrites ancestors anyway, so we
			// thread the key through keys[d] only.
		}
		box, err := s.oracle.Get(addr)
		if err != nil {
			return nil, err
		}
		s.countIO(len(box))
		pt, err := aead.Open(keys[d], box, nodeAD(addr))
		if err != nil {
			return nil, fmt.Errorf("securestore: integrity failure at node %d: %w", addr, err)
		}
		s.meter.Add(meter.OpAES32, meter.AESChunks(len(pt)))
		if len(pt) != 2*aead.KeySize {
			return nil, fmt.Errorf("securestore: malformed interior node %d", addr)
		}
		if path[d+1] == 2*addr {
			keys[d+1] = pt[:aead.KeySize]
		} else {
			keys[d+1] = pt[aead.KeySize:]
		}
	}
	return keys, nil
}

// NumBlocksForHeight reports how many leaves a tree of the given height
// holds; exported for capacity planning in the cost model.
func NumBlocksForHeight(h int) int { return 1 << uint(h) }

// HeightForBlocks returns the minimal tree height for n blocks.
func HeightForBlocks(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
