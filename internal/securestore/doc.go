// Package securestore implements outsourced storage with secure deletion
// (Section 7.2, Appendix C), after Di Crescenzo et al.
//
// An HSM wants to keep a data array far larger than its internal memory —
// in SafetyPin, the multi-megabyte Bloom-filter-encryption secret key — on
// the untrusted service provider, while retaining the ability to *securely
// delete* individual blocks: after a delete, even an attacker who later
// extracts the HSM's entire internal state and holds every ciphertext the
// provider ever saw learns nothing about the deleted block.
//
// The construction is a binary tree of symmetric keys. Every node holds a
// fresh AES key; each node's ciphertext (stored at the provider) contains
// its children's keys, and each leaf's ciphertext contains the data block.
// The HSM stores only the root key. Deleting block i re-keys the path from
// leaf i to the root, dropping the deleted leaf's key and replacing the root
// key — O(log D) symmetric operations, versus re-encrypting the whole array
// (the ablation the paper reports as a 4423× slowdown).
package securestore
