package securestore

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"safetypin/internal/aead"
	"safetypin/internal/meter"
)

func blocks(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%0*d", size, i))
	}
	return out
}

func setup(t testing.TB, n int) (*Store, *MemOracle) {
	t.Helper()
	o := NewMemOracle()
	s, err := Setup(o, blocks(n, 16), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, o
}

func TestReadAll(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9, 31, 64} {
		s, _ := setup(t, n)
		want := blocks(n, 16)
		for i := 0; i < n; i++ {
			got, err := s.Read(i)
			if err != nil {
				t.Fatalf("n=%d Read(%d): %v", n, i, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("n=%d block %d mismatch", n, i)
			}
		}
	}
}

func TestIndexValidation(t *testing.T) {
	s, _ := setup(t, 8)
	if _, err := s.Read(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := s.Read(8); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := s.Delete(100); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
}

func TestDeleteMakesUnreadable(t *testing.T) {
	s, _ := setup(t, 16)
	if err := s.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(5); !errors.Is(err, ErrDeleted) {
		t.Fatalf("expected ErrDeleted, got %v", err)
	}
	// all other blocks still readable
	for i := 0; i < 16; i++ {
		if i == 5 {
			continue
		}
		if _, err := s.Read(i); err != nil {
			t.Fatalf("block %d unreadable after deleting 5: %v", i, err)
		}
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s, _ := setup(t, 8)
	if err := s.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(3); err != nil {
		t.Fatalf("second delete errored: %v", err)
	}
}

func TestDeleteAllBlocks(t *testing.T) {
	s, _ := setup(t, 8)
	for i := 0; i < 8; i++ {
		if err := s.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Read(i); !errors.Is(err, ErrDeleted) {
			t.Fatalf("block %d readable after delete", i)
		}
	}
}

func TestSecureDeletionAgainstStateCapture(t *testing.T) {
	// The core forward-secrecy property: an attacker who records every
	// ciphertext the provider ever stored *and* captures the HSM root key
	// after a deletion cannot decrypt the deleted block.
	o := NewMemOracle()
	s, err := Setup(o, blocks(16, 16), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker snapshots all provider-side ciphertexts before deletion.
	preDelete := make(map[uint64][]byte)
	for addr, b := range o.blocks {
		preDelete[addr] = append([]byte(nil), b...)
	}
	if err := s.Delete(7); err != nil {
		t.Fatal(err)
	}
	capturedRoot := s.RootKey() // post-deletion HSM compromise

	// Attack 1: use the captured root key on the current store.
	attacker := &Store{oracle: o, rootKey: capturedRoot, height: s.height, numData: s.numData, rng: rand.Reader}
	if _, err := attacker.Read(7); !errors.Is(err, ErrDeleted) {
		t.Fatalf("attacker read deleted block from live store: %v", err)
	}
	// Attack 2: use the captured root key on the pre-deletion snapshot
	// (rollback attack). The new root key must not decrypt old ciphertexts.
	oldOracle := &MemOracle{blocks: preDelete}
	rollback := &Store{oracle: oldOracle, rootKey: capturedRoot, height: s.height, numData: s.numData, rng: rand.Reader}
	if _, err := rollback.Read(7); err == nil {
		t.Fatal("rollback attack succeeded: old ciphertexts decrypted under new root key")
	}
}

func TestTamperDetected(t *testing.T) {
	s, o := setup(t, 16)
	// Flip a byte in every stored block in turn; every read that touches it
	// must fail with an integrity error, never return wrong data.
	want := blocks(16, 16)
	for addr := range o.blocks {
		orig := append([]byte(nil), o.blocks[addr]...)
		o.blocks[addr][len(orig)/2] ^= 1
		for i := 0; i < 16; i++ {
			got, err := s.Read(i)
			if err == nil && !bytes.Equal(got, want[i]) {
				t.Fatalf("tampered node %d: Read(%d) returned wrong data without error", addr, i)
			}
		}
		o.blocks[addr] = orig
	}
}

func TestBlockSwapDetected(t *testing.T) {
	s, o := setup(t, 4)
	// Swap two leaf ciphertexts: address binding must make reads fail.
	leafA := uint64(1<<uint(s.height)) + 0
	leafB := uint64(1<<uint(s.height)) + 1
	o.blocks[leafA], o.blocks[leafB] = o.blocks[leafB], o.blocks[leafA]
	if _, err := s.Read(0); err == nil {
		t.Fatal("swapped leaf ciphertext accepted")
	}
}

func TestWrite(t *testing.T) {
	s, _ := setup(t, 8)
	if err := s.Write(2, []byte("updated-content!")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "updated-content!" {
		t.Fatalf("got %q", got)
	}
	// others intact
	if _, err := s.Read(3); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRevivesDeleted(t *testing.T) {
	s, _ := setup(t, 8)
	if err := s.Delete(4); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(4, []byte("revived")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "revived" {
		t.Fatalf("got %q", got)
	}
}

func TestSingleBlockStore(t *testing.T) {
	o := NewMemOracle()
	s, err := Setup(o, [][]byte{[]byte("solo")}, rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "solo" {
		t.Fatal("single block mismatch")
	}
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(0); !errors.Is(err, ErrDeleted) {
		t.Fatal("single block not deleted")
	}
	if err := s.Write(0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	got, err = s.Read(0)
	if err != nil || string(got) != "back" {
		t.Fatalf("revive failed: %q %v", got, err)
	}
}

func TestEmptySetupRejected(t *testing.T) {
	if _, err := Setup(NewMemOracle(), nil, rand.Reader, nil); err == nil {
		t.Fatal("empty setup accepted")
	}
}

func TestMeterCountsLogarithmic(t *testing.T) {
	// Delete cost must scale with tree height, not array size: the whole
	// point of the scheme (Figure 9's 4423× claim).
	costOf := func(n int) int64 {
		o := NewMemOracle()
		m := meter.New()
		s, err := Setup(o, blocks(n, 32), rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		m.Reset()
		if err := s.Delete(n / 2); err != nil {
			t.Fatal(err)
		}
		return m.Get(meter.OpIORoundTrip)
	}
	small, large := costOf(16), costOf(1024)
	if large > small*3 {
		t.Fatalf("delete cost grew superlogarithmically: 16→%d ops, 1024→%d ops", small, large)
	}
	if large <= small {
		t.Fatalf("delete cost did not grow with height: %d vs %d", small, large)
	}
}

func TestHeightHelpers(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := HeightForBlocks(n); got != want {
			t.Fatalf("HeightForBlocks(%d) = %d, want %d", n, got, want)
		}
	}
	if NumBlocksForHeight(10) != 1024 {
		t.Fatal("NumBlocksForHeight broken")
	}
}

func TestOracleMissingBlock(t *testing.T) {
	s, o := setup(t, 8)
	for addr := range o.blocks {
		delete(o.blocks, addr)
		break
	}
	failures := 0
	for i := 0; i < 8; i++ {
		if _, err := s.Read(i); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no read failed despite missing provider block")
	}
}

func TestLargeStoreReadDelete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n := 4096
	o := NewMemOracle()
	s, err := Setup(o, blocks(n, aead.KeySize), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		if _, err := s.Read(i); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(i); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(i); !errors.Is(err, ErrDeleted) {
			t.Fatal("not deleted")
		}
	}
}

func BenchmarkRead4K(b *testing.B) {
	o := NewMemOracle()
	s, err := Setup(o, blocks(4096, 32), rand.Reader, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(i % 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteWriteCycle4K(b *testing.B) {
	o := NewMemOracle()
	s, err := Setup(o, blocks(4096, 32), rand.Reader, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % 4096
		if err := s.Delete(idx); err != nil {
			b.Fatal(err)
		}
		if err := s.Write(idx, []byte("refill-refill-refill-refill-....")); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIsDeletedConstantTime pins the sentinel semantics across the switch
// from an early-exit byte loop to subtle.ConstantTimeCompare: exactly the
// KeySize-zero sentinel reads as deleted; live keys (including ones that
// are zero everywhere but the last byte) and wrong-length slices do not.
func TestIsDeletedConstantTime(t *testing.T) {
	if !isDeleted(deletedKey) {
		t.Fatal("deletedKey sentinel not recognized")
	}
	if !isDeleted(make([]byte, aead.KeySize)) {
		t.Fatal("fresh all-zero key of KeySize not recognized as deleted")
	}
	lateBit := make([]byte, aead.KeySize)
	lateBit[aead.KeySize-1] = 1
	if isDeleted(lateBit) {
		t.Fatal("key with a single trailing nonzero byte read as deleted")
	}
	earlyBit := make([]byte, aead.KeySize)
	earlyBit[0] = 1
	if isDeleted(earlyBit) {
		t.Fatal("key with a single leading nonzero byte read as deleted")
	}
	if isDeleted(make([]byte, aead.KeySize-1)) || isDeleted(nil) {
		t.Fatal("wrong-length slice read as deleted")
	}
}
