package aead

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	key := MustNewKey()
	err := quick.Check(func(msg, ad []byte) bool {
		box, err := Seal(key, msg, ad)
		if err != nil {
			return false
		}
		got, err := Open(key, box, ad)
		return err == nil && bytes.Equal(got, msg)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAES128KeysAccepted(t *testing.T) {
	key := make([]byte, 16)
	box, err := Seal(key, []byte("m"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, box, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadKeyLengthRejected(t *testing.T) {
	if _, err := Seal(make([]byte, 15), []byte("m"), nil); err == nil {
		t.Fatal("expected key-length rejection")
	}
}

func TestWrongKeyFails(t *testing.T) {
	box, err := Seal(MustNewKey(), []byte("m"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(MustNewKey(), box, nil); err == nil {
		t.Fatal("wrong key opened box")
	}
}

func TestWrongADFails(t *testing.T) {
	key := MustNewKey()
	box, err := Seal(key, []byte("m"), []byte("ctx-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, box, []byte("ctx-b")); err == nil {
		t.Fatal("wrong ad opened box")
	}
}

func TestTamperFails(t *testing.T) {
	key := MustNewKey()
	box, err := Seal(key, []byte("message"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(box); i += 7 {
		mut := append([]byte{}, box...)
		mut[i] ^= 0x80
		if _, err := Open(key, mut, nil); err == nil {
			t.Fatalf("tampering byte %d went undetected", i)
		}
	}
}

func TestShortBoxRejected(t *testing.T) {
	if _, err := Open(MustNewKey(), make([]byte, Overhead-1), nil); err == nil {
		t.Fatal("short box accepted")
	}
}

func TestNoncesFresh(t *testing.T) {
	key := MustNewKey()
	a, _ := Seal(key, []byte("m"), nil)
	b, _ := Seal(key, []byte("m"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals produced identical boxes (nonce reuse)")
	}
}

func BenchmarkSeal1K(b *testing.B) {
	key := MustNewKey()
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := Seal(key, msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
