package aead

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// KeySize is the AES-256 key length used for all symmetric keys.
const KeySize = 32

// NonceSize is the GCM nonce length.
const NonceSize = 12

// Overhead is the ciphertext expansion: nonce plus GCM tag.
const Overhead = NonceSize + 16

// NewKey returns a fresh random key read from rng.
func NewKey(rng io.Reader) ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("aead: generating key: %w", err)
	}
	return key, nil
}

// MustNewKey is NewKey from crypto/rand, panicking on entropy failure.
func MustNewKey() []byte {
	key, err := NewKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	return key
}

//spin:secret key
func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize && len(key) != 16 {
		return nil, fmt.Errorf("aead: key must be 16 or %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Seal encrypts plaintext under key, binding ad, with a fresh random nonce
// prepended to the output.
//
//spin:secret key plaintext
func Seal(key, plaintext, ad []byte) ([]byte, error) {
	g, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("aead: generating nonce: %w", err)
	}
	return g.Seal(nonce, nonce, plaintext, ad), nil
}

// Open decrypts a box produced by Seal. It fails if the key or ad mismatch
// or the box was modified; the GCM tag check inside crypto/cipher is
// constant-time, so no comparison here touches secret bytes.
//
//spin:secret key
func Open(key, box, ad []byte) ([]byte, error) {
	g, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(box) < Overhead {
		return nil, errors.New("aead: box too short")
	}
	pt, err := g.Open(nil, box[:NonceSize], box[NonceSize:], ad)
	if err != nil {
		return nil, fmt.Errorf("aead: open failed: %w", err)
	}
	return pt, nil
}
