// Package aead is a thin wrapper around AES-GCM providing the authenticated
// encryption scheme (AEEncrypt, AEDecrypt) used throughout the paper: the
// data-encapsulation half of location-hiding encryption (Figure 15) and the
// node encryption of the outsourced-storage key tree (Appendix C).
//
// Every sealed box carries a fresh random nonce, so a single key may encrypt
// many messages.
package aead
