// Package bfe implements Bloom-filter encryption — the puncturable
// public-key encryption scheme SafetyPin uses for forward secrecy
// (Section 7) — in the paper's pairing-free variant: the public key is an
// array of M hashed-ElGamal public keys (one per Bloom-filter position) and
// the secret key is the matching array of M scalars.
//
// Encryption picks a random tag, derives K positions from it, and encrypts
// the message to each position's public key; any one unpunctured position
// decrypts. Puncturing a ciphertext *securely deletes* the K scalars at its
// positions, after which that ciphertext (and any other ciphertext whose
// positions are all deleted — the Bloom false-positive case, folded into the
// system's fault-tolerance budget f_live) can never be decrypted again, even
// by an attacker who captures the HSM afterwards.
//
// The M-scalar secret key is far larger than HSM memory, so it lives in the
// provider-hosted outsourced store of package securestore, which provides
// exactly the delete-and-forget semantics puncturing needs. The HSM itself
// holds only the store's root key.
package bfe
