package bfe

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"safetypin/internal/meter"
	"safetypin/internal/securestore"
)

var testParams = Params{M: 256, K: 8}

func keygen(t testing.TB) (*PrivateKey, *PublicKey) {
	t.Helper()
	sk, pk, err := KeyGen(testParams, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sk, pk
}

func TestRoundTrip(t *testing.T) {
	sk, pk := keygen(t)
	msg := []byte("key share")
	ad := []byte("user=alice")
	ct, err := pk.Encrypt(msg, ad, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round-trip mismatch")
	}
}

func TestPunctureKillsCiphertext(t *testing.T) {
	sk, pk := keygen(t)
	ct, err := pk.Encrypt([]byte("secret"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptAndPuncture(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "secret" {
		t.Fatal("decrypt-and-puncture returned wrong plaintext")
	}
	if _, err := sk.Decrypt(ct, nil); !errors.Is(err, ErrPunctured) {
		t.Fatalf("punctured ciphertext still decrypts: %v", err)
	}
}

func TestPunctureWithoutDecrypt(t *testing.T) {
	sk, pk := keygen(t)
	ct, err := pk.Encrypt([]byte("secret"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Puncture(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct, nil); err == nil {
		t.Fatal("punctured ciphertext decrypted")
	}
}

func TestOtherCiphertextsSurvivePuncture(t *testing.T) {
	sk, pk := keygen(t)
	var cts [][]byte
	for i := 0; i < 10; i++ {
		ct, err := pk.Encrypt([]byte{byte(i)}, nil, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		cts = append(cts, ct)
	}
	if _, err := sk.DecryptAndPuncture(cts[0], nil); err != nil {
		t.Fatal(err)
	}
	// With M=256, K=8 and one puncture (8 deletions), other ciphertexts
	// overwhelmingly still decrypt (each would need all 8 of its positions
	// deleted).
	survived := 0
	for i := 1; i < 10; i++ {
		if got, err := sk.Decrypt(cts[i], nil); err == nil && got[0] == byte(i) {
			survived++
		}
	}
	if survived < 8 {
		t.Fatalf("only %d/9 unrelated ciphertexts survived one puncture", survived)
	}
}

func TestForwardSecrecyAfterPuncture(t *testing.T) {
	// The attacker captures the HSM root key and the full provider store
	// after puncture: the punctured ciphertext must stay dead. Decryption
	// via the captured state is exactly sk.Decrypt, which reads the same
	// store, so ErrPunctured here witnesses the property end-to-end
	// (securestore tests cover rollback of old provider state).
	oracle := securestore.NewMemOracle()
	sk, pk, err := KeyGen(testParams, oracle, rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := pk.Encrypt([]byte("backup"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.DecryptAndPuncture(ct, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct, nil); !errors.Is(err, ErrPunctured) {
		t.Fatal("forward secrecy violated")
	}
}

func TestWrongADFails(t *testing.T) {
	sk, pk := keygen(t)
	ct, err := pk.Encrypt([]byte("m"), []byte("ctx-a"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct, []byte("ctx-b")); err == nil {
		t.Fatal("wrong ad decrypted")
	}
}

func TestWrongKeyFails(t *testing.T) {
	sk2, _, err := KeyGen(testParams, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pk1 := keygen(t)
	ct, err := pk1.Encrypt([]byte("m"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk2.Decrypt(ct, nil); err == nil {
		t.Fatal("wrong key decrypted")
	}
}

func TestCorruptCiphertextRejected(t *testing.T) {
	sk, pk := keygen(t)
	ct, err := pk.Encrypt([]byte("m"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct[:10], nil); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
	// Tampering the tag rebinds the ciphertext to different positions and
	// different piece ADs: every piece must fail.
	mut := append([]byte{}, ct...)
	mut[3] ^= 1
	if _, err := sk.Decrypt(mut, nil); err == nil {
		t.Fatal("ciphertext with tampered tag accepted")
	}
	// Tampering a single piece must NOT kill the ciphertext: any other
	// intact piece still decrypts (this is BFE's redundancy, which the
	// fault-tolerance analysis relies on).
	mut2 := append([]byte{}, ct...)
	mut2[TagSize+10] ^= 1
	if _, err := sk.Decrypt(mut2, nil); err != nil {
		t.Fatalf("single tampered piece killed the whole ciphertext: %v", err)
	}
	if _, err := sk.Decrypt(append(ct, 0), nil); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestRotationCounter(t *testing.T) {
	p := Params{M: 64, K: 8}
	sk, pk, err := KeyGen(p, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sk.NeedsRotation() {
		t.Fatal("fresh key needs rotation")
	}
	if got := p.MaxPunctures(); got != 4 {
		t.Fatalf("MaxPunctures = %d, want 4", got)
	}
	// Punctures delete at most K fresh positions each (fewer on overlap),
	// so rotation must trigger after at least MaxPunctures punctures and
	// within a small multiple of it.
	punctures := 0
	for !sk.NeedsRotation() {
		if punctures > 8*p.MaxPunctures() {
			t.Fatalf("rotation never triggered after %d punctures (count=%d)",
				punctures, sk.PuncturedCount())
		}
		ct, err := pk.Encrypt([]byte("m"), nil, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sk.DecryptAndPuncture(ct, nil); err != nil && !errors.Is(err, ErrPunctured) {
			t.Fatal(err)
		}
		punctures++
	}
	if punctures < p.MaxPunctures() {
		t.Fatalf("rotation triggered after only %d punctures", punctures)
	}
	if sk.PuncturedCount() < p.M/2 {
		t.Fatalf("rotation flagged at count %d < M/2", sk.PuncturedCount())
	}
}

func TestParamsForPunctures(t *testing.T) {
	p := ParamsForPunctures(1000, 16)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MaxPunctures() < 1000 {
		t.Fatalf("budget %d < requested 1000", p.MaxPunctures())
	}
	if p.K != 16 {
		t.Fatalf("K = %d", p.K)
	}
	// degenerate inputs still validate
	if err := ParamsForPunctures(0, 0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicKeySerialization(t *testing.T) {
	_, pk := keygen(t)
	parsed, err := PublicKeyFromBytes(pk.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.M != pk.M || parsed.K != pk.K || len(parsed.Points) != len(pk.Points) {
		t.Fatal("parsed params mismatch")
	}
	for i := range pk.Points {
		if !parsed.Points[i].Equal(pk.Points[i]) {
			t.Fatalf("point %d mismatch", i)
		}
	}
	if _, err := PublicKeyFromBytes(pk.Bytes()[:40]); err == nil {
		t.Fatal("truncated public key accepted")
	}
	if _, err := PublicKeyFromBytes(nil); err == nil {
		t.Fatal("empty public key accepted")
	}
}

func TestKeyGenSecretOnlyAndPublicKeyAt(t *testing.T) {
	p := Params{M: 64, K: 4}
	sk, err := KeyGenSecretOnly(p, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the public key position-by-position via PublicKeyAt and
	// round-trip a message through it.
	full := &PublicKey{Params: p}
	for i := 0; i < p.M; i++ {
		pt, err := sk.PublicKeyAt(i)
		if err != nil {
			t.Fatal(err)
		}
		full.Points = append(full.Points, pt)
	}
	ct, err := full.Encrypt([]byte("sparse"), nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptAndPuncture(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "sparse" {
		t.Fatal("sparse round-trip failed")
	}
}

func TestMeterChargesRotationCost(t *testing.T) {
	m := meter.New()
	p := Params{M: 128, K: 4}
	if _, _, err := KeyGen(p, securestore.NewMemOracle(), rand.Reader, m); err != nil {
		t.Fatal(err)
	}
	if got := m.Get(meter.OpECMul); got != 128 {
		t.Fatalf("KeyGen charged %d EC mults, want 128", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{{M: 0, K: 1}, {M: 10, K: 0}, {M: 10, K: 11}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %+v validated", p)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	_, pk := keygen(b)
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(msg, nil, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptAndPuncture(b *testing.B) {
	p := Params{M: 1 << 14, K: 8}
	sk, pk, err := KeyGen(p, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([][]byte, b.N)
	for i := range cts {
		ct, err := pk.Encrypt([]byte("m"), nil, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.DecryptAndPuncture(cts[i], nil); err != nil && !errors.Is(err, ErrPunctured) {
			b.Fatal(err)
		}
	}
}

func TestDeterministicTagSharedPuncture(t *testing.T) {
	// Two ciphertexts created with the same tag (a client's same-salt
	// backup series) die together on one puncture — the §8 semantics.
	sk, pk := keygen(t)
	tag := bytes.Repeat([]byte{9}, TagSize)
	ct1, err := pk.EncryptWithTag(tag, []byte("backup-1"), []byte("ad"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := pk.EncryptWithTag(tag, []byte("backup-2"), []byte("ad"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.DecryptAndPuncture(ct2, []byte("ad")); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct1, []byte("ad")); !errors.Is(err, ErrPunctured) {
		t.Fatalf("earlier same-tag ciphertext survived puncture: %v", err)
	}
}

func TestEncryptWithTagValidatesLength(t *testing.T) {
	_, pk := keygen(t)
	if _, err := pk.EncryptWithTag([]byte{1, 2}, []byte("m"), nil, rand.Reader); err == nil {
		t.Fatal("short tag accepted")
	}
}

func TestFleetTagStability(t *testing.T) {
	// Fleet encryptions with identical ad reuse positions (same tag), so
	// puncturing one kills the other; different ad gives independent tags.
	sk, pk, err := KeyGen(testParams, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet([]*PublicKey{pk})
	ad := []byte("user|salt|pos0|hsm0")
	ct1, err := f.EncryptTo(0, []byte("m1"), ad, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := f.EncryptTo(0, []byte("m2"), ad, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ctOther, err := f.EncryptTo(0, []byte("m3"), []byte("other-ad"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.DecryptAndPuncture(ct1, ad); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct2, ad); !errors.Is(err, ErrPunctured) {
		t.Fatal("same-ad ciphertext survived puncture")
	}
	if got, err := sk.Decrypt(ctOther, []byte("other-ad")); err != nil || string(got) != "m3" {
		t.Fatalf("unrelated-ad ciphertext damaged: %v", err)
	}
}

// TestKeyGenBatchDifferential pins the batch provisioning path to the
// per-point oracle structurally: same store geometry, pk[i] = sk[i]·G for
// every position, and full encrypt/decrypt/puncture behavior.
func TestKeyGenBatchDifferential(t *testing.T) {
	sk, pk, err := KeyGenBatch(testParams, securestore.NewMemOracle(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Points) != testParams.M {
		t.Fatalf("got %d public points, want %d", len(pk.Points), testParams.M)
	}
	// Every public point matches the stored secret scalar.
	for i := 0; i < testParams.M; i++ {
		got, err := sk.PublicKeyAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(pk.Points[i]) {
			t.Fatalf("position %d: pk != sk·G", i)
		}
	}
	// The keypair behaves exactly like a KeyGen pair end to end.
	msg := []byte("key share")
	ad := []byte("user=batch")
	ct, err := pk.Encrypt(msg, ad, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round-trip mismatch")
	}
	if err := sk.Puncture(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct, ad); err == nil {
		t.Fatal("decrypt after puncture must fail")
	}
}

func BenchmarkKeyGen1024(b *testing.B) {
	p := Params{M: 1024, K: 8}
	for i := 0; i < b.N; i++ {
		if _, _, err := KeyGen(p, securestore.NewMemOracle(), rand.Reader, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyGenBatch1024(b *testing.B) {
	p := Params{M: 1024, K: 8}
	for i := 0; i < b.N; i++ {
		if _, _, err := KeyGenBatch(p, securestore.NewMemOracle(), rand.Reader, nil); err != nil {
			b.Fatal(err)
		}
	}
}
