package bfe

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"safetypin/internal/ecgroup"
	"safetypin/internal/elgamal"
	"safetypin/internal/meter"
	"safetypin/internal/prg"
	"safetypin/internal/securestore"
)

// TagSize is the length of the random ciphertext tag.
const TagSize = 32

const positionLabel = "safetypin/bfe/positions/v1"

// Params fixes a Bloom-filter-encryption instantiation.
type Params struct {
	M int // number of filter positions (secret-key array length)
	K int // positions per ciphertext
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("bfe: M = %d must be positive", p.M)
	}
	if p.K < 1 || p.K > p.M {
		return fmt.Errorf("bfe: K = %d out of range [1,%d]", p.K, p.M)
	}
	return nil
}

// ParamsForPunctures sizes the filter so that after maxPunctures punctures
// at most half the positions are deleted (the paper's rotation point), at
// which point a fresh ciphertext fails to decrypt with probability at most
// 2^-failureBits.
func ParamsForPunctures(maxPunctures, failureBits int) Params {
	k := failureBits
	if k < 1 {
		k = 1
	}
	m := 2 * k * maxPunctures
	if m < k {
		m = k
	}
	return Params{M: m, K: k}
}

// MaxPunctures returns the puncture budget before rotation (half-full rule).
func (p Params) MaxPunctures() int { return p.M / (2 * p.K) }

// SecretKeyBytes returns the size of the outsourced secret-key array, the
// x-axis of Figure 9.
func (p Params) SecretKeyBytes() int { return p.M * ecgroup.ScalarSize }

// positions derives the K distinct filter positions for a tag.
func (p Params) positions(tag []byte) ([]int, error) {
	seed := make([]byte, 0, TagSize+8)
	seed = append(seed, tag...)
	var dims [8]byte
	binary.BigEndian.PutUint32(dims[:4], uint32(p.M))
	binary.BigEndian.PutUint32(dims[4:], uint32(p.K))
	seed = append(seed, dims[:]...)
	return prg.Indices(positionLabel, seed, p.K, p.M)
}

// PositionsForTag exposes the tag→positions mapping for harnesses that
// derive sparse public keys (see PrivateKey.PublicKeyAt).
func PositionsForTag(p Params, tag []byte) ([]int, error) {
	return p.positions(tag)
}

// pieceAD extends the caller's domain separation with the tag and the piece
// position, so ciphertext pieces cannot be replayed across positions.
func pieceAD(ad, tag []byte, piece, position int) []byte {
	out := make([]byte, 0, len(ad)+len(tag)+12+len("safetypin/bfe/piece/v1"))
	out = append(out, "safetypin/bfe/piece/v1"...)
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], uint32(piece))
	binary.BigEndian.PutUint32(n[4:], uint32(position))
	out = append(out, n[:]...)
	out = append(out, tag...)
	out = append(out, ad...)
	return out
}

// PublicKey is the client-side key: one P-256 point per filter position.
type PublicKey struct {
	Params
	Points []ecgroup.Point
}

// PrivateKey is the HSM-side key: the outsourced scalar array plus the
// puncture counter that drives key rotation.
type PrivateKey struct {
	Params
	store     *securestore.Store //spin:secret
	punctured int
	meter     *meter.Meter
}

// KeyGen generates a fresh keypair, outsourcing the secret array to oracle.
// m (which may be nil) is charged M point multiplications — the dominant
// cost of the paper's 75-hour on-HSM key rotation.
func KeyGen(p Params, oracle securestore.Oracle, rng io.Reader, m *meter.Meter) (*PrivateKey, *PublicKey, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	points := make([]ecgroup.Point, p.M)
	blocks := make([][]byte, p.M)
	for i := 0; i < p.M; i++ {
		kp, err := ecgroup.GenerateKeyPair(rng)
		if err != nil {
			return nil, nil, err
		}
		points[i] = kp.PK
		blocks[i] = kp.SK.Bytes()
	}
	m.Add(meter.OpECMul, int64(p.M))
	st, err := securestore.Setup(oracle, blocks, rng, m)
	if err != nil {
		return nil, nil, err
	}
	return &PrivateKey{Params: p, store: st, meter: m},
		&PublicKey{Params: p, Points: points}, nil
}

// KeyGenBatch is KeyGen on the fleet-provisioning fast path: all M secret
// blocks are sampled up front from one bulk entropy read and the M public
// points run through the batch fixed-base multiplication
// (ecgroup.GenerateKeyPairs) instead of M rejection-sampled per-point
// calls. The naive per-point KeyGen is retained as the differential
// oracle — both produce keys with pk[i] = sk[i]·G over identical store
// geometry (bfe_test.go checks one against the other structurally).
func KeyGenBatch(p Params, oracle securestore.Oracle, rng io.Reader, m *meter.Meter) (*PrivateKey, *PublicKey, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	kps, err := ecgroup.GenerateKeyPairs(rng, p.M)
	if err != nil {
		return nil, nil, err
	}
	points := make([]ecgroup.Point, p.M)
	blocks := make([][]byte, p.M)
	for i, kp := range kps {
		points[i] = kp.PK
		blocks[i] = kp.SK.Bytes()
	}
	m.Add(meter.OpECMul, int64(p.M))
	st, err := securestore.Setup(oracle, blocks, rng, m)
	if err != nil {
		return nil, nil, err
	}
	return &PrivateKey{Params: p, store: st, meter: m},
		&PublicKey{Params: p, Points: points}, nil
}

// KeyGenSecretOnly generates only the outsourced secret array, skipping the
// M point multiplications for the public key. The evaluation harness uses
// it to build paper-scale keys (tens of MB) quickly; PublicKeyAt derives
// individual public keys on demand.
func KeyGenSecretOnly(p Params, oracle securestore.Oracle, rng io.Reader, m *meter.Meter) (*PrivateKey, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	blocks := make([][]byte, p.M)
	for i := 0; i < p.M; i++ {
		s, err := ecgroup.RandomScalar(rng)
		if err != nil {
			return nil, err
		}
		blocks[i] = s.Bytes()
	}
	st, err := securestore.Setup(oracle, blocks, rng, m)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{Params: p, store: st, meter: m}, nil
}

// SwapOracle repoints the key's outsourced secret array at a different
// oracle holding the same blocks (see securestore.Store.SetOracle) —
// the reattach path after a provider restart rebuilds the hosted store.
func (sk *PrivateKey) SwapOracle(o securestore.Oracle) { sk.store.SetOracle(o) }

// PublicKeyAt derives the public key of a single position by reading its
// scalar (errors if that position was punctured).
func (sk *PrivateKey) PublicKeyAt(i int) (ecgroup.Point, error) {
	raw, err := sk.store.Read(i)
	if err != nil {
		return ecgroup.Point{}, err
	}
	s, err := ecgroup.ScalarFromBytes(raw)
	if err != nil {
		return ecgroup.Point{}, fmt.Errorf("bfe: stored scalar corrupt: %w", err)
	}
	return ecgroup.BaseMul(s), nil
}

// Encrypt encrypts msg under pk with domain separation ad and a fresh
// random tag.
func (pk *PublicKey) Encrypt(msg, ad []byte, rng io.Reader) ([]byte, error) {
	tag := make([]byte, TagSize)
	if _, err := io.ReadFull(rng, tag); err != nil {
		return nil, fmt.Errorf("bfe: sampling tag: %w", err)
	}
	return pk.EncryptWithTag(tag, msg, ad, rng)
}

// EncryptWithTag encrypts msg under pk using a caller-chosen tag. SafetyPin
// clients derive the tag deterministically from (user, salt, position), so
// every backup in a same-salt series lands on the same filter positions:
// one puncture then revokes the client's entire ciphertext history at that
// HSM (§8, "Multiple recovery ciphertexts").
func (pk *PublicKey) EncryptWithTag(tag, msg, ad []byte, rng io.Reader) ([]byte, error) {
	if len(tag) != TagSize {
		return nil, fmt.Errorf("bfe: tag must be %d bytes, got %d", TagSize, len(tag))
	}
	pos, err := pk.positions(tag)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), tag...)
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(pk.K))
	out = append(out, cnt[:]...)
	for j, position := range pos {
		c, err := elgamal.Encrypt(pk.Points[position], msg, pieceAD(ad, tag, j, position), rng)
		if err != nil {
			return nil, err
		}
		cb := c.Bytes()
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(cb)))
		out = append(out, l[:]...)
		out = append(out, cb...)
	}
	return out, nil
}

// parse splits a serialized ciphertext into its tag and pieces.
func (p Params) parse(ct []byte) (tag []byte, pieces [][]byte, err error) {
	if len(ct) < TagSize+4 {
		return nil, nil, errors.New("bfe: ciphertext too short")
	}
	tag = ct[:TagSize]
	n := binary.BigEndian.Uint32(ct[TagSize:])
	if int(n) != p.K {
		return nil, nil, fmt.Errorf("bfe: ciphertext has %d pieces, params say %d", n, p.K)
	}
	rest := ct[TagSize+4:]
	for i := 0; i < int(n); i++ {
		if len(rest) < 4 {
			return nil, nil, errors.New("bfe: truncated piece length")
		}
		l := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if int(l) > len(rest) {
			return nil, nil, errors.New("bfe: truncated piece")
		}
		pieces = append(pieces, rest[:l])
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, nil, errors.New("bfe: trailing bytes")
	}
	return tag, pieces, nil
}

// ErrPunctured is returned when every position of a ciphertext has been
// deleted.
var ErrPunctured = errors.New("bfe: ciphertext is punctured (all positions deleted)")

// decrypt attempts decryption, optionally puncturing in the same pass.
func (sk *PrivateKey) decrypt(ct, ad []byte, puncture bool) ([]byte, error) {
	tag, pieces, err := sk.parse(ct)
	if err != nil {
		return nil, err
	}
	pos, err := sk.positions(tag)
	if err != nil {
		return nil, err
	}
	var msg []byte
	found := false
	var lastErr error
	for j, position := range pos {
		raw, err := sk.store.Read(position)
		if errors.Is(err, securestore.ErrDeleted) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if !found {
			s, err := ecgroup.ScalarFromBytes(raw)
			if err != nil {
				return nil, fmt.Errorf("bfe: stored scalar corrupt: %w", err)
			}
			parsed, err := elgamal.CiphertextFromBytes(pieces[j])
			if err != nil {
				lastErr = err
			} else {
				sk.meter.Add(meter.OpElGamalDecrypt, 1)
				pt, err := elgamal.Decrypt(s, ecgroup.BaseMul(s), parsed, pieceAD(ad, tag, j, position))
				if err != nil {
					lastErr = err
				} else {
					msg = pt
					found = true
				}
			}
		}
		if puncture {
			if err := sk.store.Delete(position); err != nil {
				return nil, err
			}
			sk.punctured++
		}
		if found && !puncture {
			return msg, nil
		}
	}
	if !found {
		if lastErr != nil {
			return nil, fmt.Errorf("bfe: no piece decrypted: %w", lastErr)
		}
		return nil, ErrPunctured
	}
	return msg, nil
}

// Decrypt decrypts ct without puncturing.
func (sk *PrivateKey) Decrypt(ct, ad []byte) ([]byte, error) {
	return sk.decrypt(ct, ad, false)
}

// DecryptAndPuncture decrypts ct and then securely deletes all of its
// positions — the HSM's recovery-path operation (Figure 9). The returned
// plaintext is valid even though the ciphertext is now dead.
func (sk *PrivateKey) DecryptAndPuncture(ct, ad []byte) ([]byte, error) {
	return sk.decrypt(ct, ad, true)
}

// Puncture deletes ct's positions without decrypting.
func (sk *PrivateKey) Puncture(ct []byte) error {
	tag, _, err := sk.parse(ct)
	if err != nil {
		return err
	}
	pos, err := sk.positions(tag)
	if err != nil {
		return err
	}
	for _, position := range pos {
		if _, err := sk.store.Read(position); errors.Is(err, securestore.ErrDeleted) {
			continue // already gone; do not double-count
		} else if err != nil {
			return err
		}
		if err := sk.store.Delete(position); err != nil {
			return err
		}
		sk.punctured++
	}
	return nil
}

// PuncturedCount returns the number of filter positions deleted so far
// (positions shared by several punctured ciphertexts count once).
func (sk *PrivateKey) PuncturedCount() int { return sk.punctured }

// NeedsRotation reports whether half of the secret-key elements have been
// deleted — the paper's key-rotation trigger (§9.1).
func (sk *PrivateKey) NeedsRotation() bool { return sk.punctured >= sk.M/2 }

// DecryptShare implements lhe.ShareDecrypter (decrypt without puncture; the
// HSM punctures explicitly after its protocol checks pass).
func (sk *PrivateKey) DecryptShare(ct, ad []byte) ([]byte, error) {
	return sk.Decrypt(ct, ad)
}

// Fleet is the client-side view of all HSMs' BFE public keys; it implements
// lhe.Encryptor so location-hiding encryption can spread shares over
// puncturable keys.
type Fleet struct {
	keys []*PublicKey
}

// NewFleet wraps the fleet's public keys.
func NewFleet(keys []*PublicKey) *Fleet { return &Fleet{keys: keys} }

// Key returns the public key of one HSM.
func (f *Fleet) Key(i int) *PublicKey { return f.keys[i] }

// Replace swaps in a rotated public key for one HSM.
func (f *Fleet) Replace(i int, pk *PublicKey) { f.keys[i] = pk }

// EncryptTo implements lhe.Encryptor. The tag is derived from the share's
// domain-separation string, which is stable across a client's same-salt
// backup series (see EncryptWithTag).
func (f *Fleet) EncryptTo(index int, msg, ad []byte, rng io.Reader) ([]byte, error) {
	if index < 0 || index >= len(f.keys) {
		return nil, fmt.Errorf("bfe: HSM index %d out of range [0,%d)", index, len(f.keys))
	}
	tagH := sha256.New()
	tagH.Write([]byte("safetypin/bfe/tag/v1"))
	tagH.Write(ad)
	return f.keys[index].EncryptWithTag(tagH.Sum(nil), msg, ad, rng)
}

// Bytes serializes the public key.
func (pk *PublicKey) Bytes() []byte {
	out := make([]byte, 8, 8+len(pk.Points)*ecgroup.PointSize)
	binary.BigEndian.PutUint32(out[:4], uint32(pk.M))
	binary.BigEndian.PutUint32(out[4:], uint32(pk.K))
	for _, pt := range pk.Points {
		out = append(out, pt.Bytes()...)
	}
	return out
}

// PublicKeyFromBytes parses a serialized public key.
func PublicKeyFromBytes(b []byte) (*PublicKey, error) {
	if len(b) < 8 {
		return nil, errors.New("bfe: public key too short")
	}
	p := Params{M: int(binary.BigEndian.Uint32(b[:4])), K: int(binary.BigEndian.Uint32(b[4:8]))}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rest := b[8:]
	if len(rest) != p.M*ecgroup.PointSize {
		return nil, fmt.Errorf("bfe: expected %d point bytes, got %d", p.M*ecgroup.PointSize, len(rest))
	}
	pk := &PublicKey{Params: p, Points: make([]ecgroup.Point, p.M)}
	for i := 0; i < p.M; i++ {
		pt, err := ecgroup.PointFromBytes(rest[i*ecgroup.PointSize : (i+1)*ecgroup.PointSize])
		if err != nil {
			return nil, fmt.Errorf("bfe: point %d: %w", i, err)
		}
		pk.Points[i] = pt
	}
	return pk, nil
}
