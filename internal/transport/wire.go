package transport

// wire.go implements the versioned SafetyPin wire protocol (v2): a framed,
// context-aware RPC layer that replaces the bare net/rpc gob stream (v1)
// while keeping v1 frames parseable behind a compat shim (see Serve).
//
// # Handshake
//
// A v2 client opens with a 5-byte preamble: the 4-byte magic "SPRC"
// followed by one protocol-version byte. The server answers with a single
// byte — the accepted version, or 0 to reject. A v1 client (stdlib
// net/rpc) sends no preamble; its first bytes are a gob type descriptor,
// which cannot collide with the magic, so the server sniffs the first four
// bytes and routes the connection to the legacy net/rpc server instead.
//
// # Frames
//
// After the handshake both directions speak length-prefixed frames:
//
//	+------+------+----------+-----------+----------------+
//	| kind | msg  | id (u32) | len (u32) | payload (gob)  |
//	| 1 B  | 1 B  | 4 B BE   | 4 B BE    | len bytes      |
//	+------+------+----------+-----------+----------------+
//
// kind is the frame kind (call / reply / cancel); msg is the per-message
// type tag identifying the RPC (MsgStoreCiphertext, MsgRelayRecover, …);
// id correlates a call with its reply. Each payload is one standalone gob
// value, so frames are self-contained and byte-stable for golden tests.
//
// # Cancellation
//
// Every server-side handler runs under a context derived from the
// connection: closing the connection cancels every in-flight handler, and
// a cancel frame (kind 0x03, same id as the call) cancels one handler
// without disturbing the rest. Client-side, Conn.Call honours its
// context — on cancellation it sends the cancel frame, abandons the
// pending call, and returns ctx.Err() immediately.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// wireMagic opens every v2 connection; chosen so it can never be confused
// with the opening bytes of a v1 (gob) stream.
var wireMagic = [4]byte{'S', 'P', 'R', 'C'}

// Protocol versions. WireV1 is the legacy net/rpc gob stream (no preamble);
// WireV2 is the framed protocol in this file.
const (
	WireV1 byte = 1
	WireV2 byte = 2
)

// Frame kinds.
const (
	frameCall   byte = 0x01
	frameReply  byte = 0x02
	frameCancel byte = 0x03
)

// Per-message type tags: one byte per RPC, negotiated wire-wide at connect
// via the protocol version. Tags are append-only — never renumber.
const (
	// Provider service.
	MsgProviderConfig      byte = 0x10
	MsgOracleGet           byte = 0x11
	MsgOraclePut           byte = 0x12
	MsgRegister            byte = 0x13
	MsgStatus              byte = 0x14
	MsgInstallRosters      byte = 0x15
	MsgFetchFleet          byte = 0x16
	MsgStoreCiphertext     byte = 0x17
	MsgFetchCiphertext     byte = 0x18
	MsgAttemptCount        byte = 0x19
	MsgReserveAttempt      byte = 0x1a
	MsgLogRecoveryAttempt  byte = 0x1b
	MsgRunEpoch            byte = 0x1c
	MsgWaitForCommit       byte = 0x1d
	MsgFetchInclusionProof byte = 0x1e
	MsgRelayRecover        byte = 0x1f
	MsgFetchEscrow         byte = 0x20
	MsgClearEscrow         byte = 0x21
	MsgLogEntries          byte = 0x22
	MsgLogDigest           byte = 0x23

	// HSM service.
	MsgHSMRecover       byte = 0x30
	MsgHSMInstallRoster byte = 0x31
	MsgHSMChooseChunks  byte = 0x32
	MsgHSMHandleAudit   byte = 0x33
	MsgHSMHandleCommit  byte = 0x34
)

// wireHeaderLen is the fixed frame-header size.
const wireHeaderLen = 10

// maxFramePayload bounds a single frame (16 MiB) so a corrupt length
// prefix cannot allocate unboundedly.
const maxFramePayload = 16 << 20

// wireReply is the payload of every reply frame.
type wireReply struct {
	Err  string
	Body []byte // gob of the result value; nil on error
}

func encodeGob(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	return b.Bytes(), nil
}

func decodeGob(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	return nil
}

// appendFrame serializes one frame; exposed as a function (not a method on
// a conn) so golden tests can pin the exact byte layout.
func appendFrame(dst []byte, kind, msg byte, id uint32, payload []byte) []byte {
	var hdr [wireHeaderLen]byte
	hdr[0] = kind
	hdr[1] = msg
	binary.BigEndian.PutUint32(hdr[2:6], id)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func writeFrame(w io.Writer, kind, msg byte, id uint32, payload []byte) error {
	// Enforced on the send side too: an oversized payload must fail its
	// own call with a descriptive error, not poison the shared stream for
	// every multiplexed caller when the peer's readFrame rejects it (and
	// a >4 GiB payload would silently wrap the uint32 length).
	if len(payload) > maxFramePayload {
		return fmt.Errorf("transport: message 0x%02x payload %d bytes exceeds the %d-byte frame limit",
			msg, len(payload), maxFramePayload)
	}
	_, err := w.Write(appendFrame(nil, kind, msg, id, payload))
	return err
}

func readFrame(r io.Reader) (kind, msg byte, id uint32, payload []byte, err error) {
	var hdr [wireHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	kind, msg = hdr[0], hdr[1]
	id = binary.BigEndian.Uint32(hdr[2:6])
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > maxFramePayload {
		err = fmt.Errorf("transport: frame payload %d exceeds limit", n)
		return
	}
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return
}

// --- server side ---

// wireHandler serves one RPC: gob-encoded args in, gob-encoded result out.
type wireHandler func(ctx context.Context, args []byte) ([]byte, error)

// Registry maps message tags to handlers — the v2 server's dispatch table.
type Registry struct {
	handlers map[byte]wireHandler
}

// NewRegistry returns an empty dispatch table.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[byte]wireHandler)}
}

// handleWire registers a typed handler for a message tag.
func handleWire[A, R any](reg *Registry, msg byte, fn func(ctx context.Context, args *A) (*R, error)) {
	reg.handlers[msg] = func(ctx context.Context, raw []byte) ([]byte, error) {
		var args A
		if err := decodeGob(raw, &args); err != nil {
			return nil, err
		}
		out, err := fn(ctx, &args)
		if err != nil {
			return nil, err
		}
		return encodeGob(out)
	}
}

// serveWire runs the v2 framed protocol on one accepted connection whose
// preamble has already been consumed. Every handler runs under a context
// cancelled when the connection drops (a disconnected client aborts its
// in-flight work) or when a cancel frame names its call id.
func serveWire(conn net.Conn, reg *Registry) {
	defer conn.Close()
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	var wmu sync.Mutex // serializes reply writes from handler goroutines
	var imu sync.Mutex
	inflight := make(map[uint32]context.CancelFunc)
	for {
		kind, msg, id, payload, err := readFrame(conn)
		if err != nil {
			return // disconnect: deferred cancelAll aborts in-flight handlers
		}
		switch kind {
		case frameCall:
			h, ok := reg.handlers[msg]
			if !ok {
				wmu.Lock()
				replyErr(conn, msg, id, fmt.Errorf("transport: unknown message tag 0x%02x", msg))
				wmu.Unlock()
				continue
			}
			callCtx, cancel := context.WithCancel(ctx)
			imu.Lock()
			inflight[id] = cancel
			imu.Unlock()
			go func(msg byte, id uint32, payload []byte) {
				body, err := h(callCtx, payload)
				imu.Lock()
				delete(inflight, id)
				imu.Unlock()
				cancel()
				wmu.Lock()
				defer wmu.Unlock()
				if err != nil {
					replyErr(conn, msg, id, err)
					return
				}
				p, encErr := encodeGob(&wireReply{Body: body})
				if encErr != nil {
					replyErr(conn, msg, id, encErr)
					return
				}
				_ = writeFrame(conn, frameReply, msg, id, p)
			}(msg, id, payload)
		case frameCancel:
			imu.Lock()
			if cancel, ok := inflight[id]; ok {
				cancel()
			}
			imu.Unlock()
		default:
			return // protocol violation: drop the connection
		}
	}
}

func replyErr(w io.Writer, msg byte, id uint32, err error) {
	p, encErr := encodeGob(&wireReply{Err: err.Error()})
	if encErr != nil {
		return
	}
	_ = writeFrame(w, frameReply, msg, id, p)
}

// --- client side ---

// ErrConnClosed is returned for calls on a closed or failed connection.
var ErrConnClosed = errors.New("transport: connection closed")

// callResult is what a pending call receives: either the peer's reply or
// a transport-level failure (err set), delivered as an error *value* so
// sentinels like ErrConnClosed survive for errors.Is.
type callResult struct {
	rep wireReply
	err error
}

// Conn is a v2 client connection: concurrency-safe, one multiplexed TCP
// stream, per-call contexts.
type Conn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint32]chan callResult
	nextID  uint32
	err     error
}

// DialWire opens a v2 connection: dial, send the magic + version preamble,
// and check the server's accepted-version byte.
func DialWire(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	pre := append(append([]byte(nil), wireMagic[:]...), WireV2)
	if _, err := nc.Write(pre); err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	var accepted [1]byte
	if _, err := io.ReadFull(nc, accepted[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	if accepted[0] != WireV2 {
		nc.Close()
		return nil, fmt.Errorf("transport: server rejected protocol v%d (answered %d)", WireV2, accepted[0])
	}
	c := &Conn{nc: nc, pending: make(map[uint32]chan callResult)}
	go c.readLoop()
	return c, nil
}

func (c *Conn) readLoop() {
	for {
		kind, _, id, payload, err := readFrame(c.nc)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		if kind != frameReply {
			continue // servers only send replies; ignore anything else
		}
		var r wireReply
		if err := decodeGob(payload, &r); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- callResult{rep: r} // buffered
		}
		// Unknown id: a reply for a cancelled call; drop it.
	}
}

// fail poisons the connection and wakes every pending call with the
// error value itself, so in-flight callers see the same sentinel
// (ErrConnClosed) as later ones.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]chan callResult)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// Call performs one RPC. reply may be nil for calls without a result.
// Cancelling ctx sends a cancel frame for the in-flight call (aborting the
// server-side handler) and returns ctx.Err() without waiting for the
// server.
func (c *Conn) Call(ctx context.Context, msg byte, args, reply any) error {
	payload, err := encodeGob(args)
	if err != nil {
		return err
	}
	// Reject oversize payloads before touching connection state, so the
	// failure stays scoped to this call (the connection remains usable).
	if len(payload) > maxFramePayload {
		return fmt.Errorf("transport: message 0x%02x payload %d bytes exceeds the %d-byte frame limit",
			msg, len(payload), maxFramePayload)
	}
	ch := make(chan callResult, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeFrame(c.nc, frameCall, msg, id, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}

	select {
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		if r.rep.Err != "" {
			return wireError(r.rep.Err)
		}
		if reply == nil {
			return nil
		}
		return decodeGob(r.rep.Body, reply)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.wmu.Lock()
		_ = writeFrame(c.nc, frameCancel, msg, id, nil)
		c.wmu.Unlock()
		return ctx.Err()
	}
}

// Close tears down the connection; in-flight calls fail with ErrConnClosed
// and the server cancels their handlers.
func (c *Conn) Close() error {
	c.fail(ErrConnClosed)
	return c.nc.Close()
}

// wireError maps an error string received over the wire back to an error
// value, restoring the context sentinel errors so errors.Is works across
// the process boundary.
func wireError(s string) error {
	switch s {
	case context.Canceled.Error():
		return context.Canceled
	case context.DeadlineExceeded.Error():
		return context.DeadlineExceeded
	}
	return errors.New(s)
}
