package transport

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/rpc"

	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
)

// Serve starts a dual-protocol server on addr and returns the listener
// (close it to stop) plus the bound address. Each accepted connection is
// sniffed: v2 clients (magic preamble) get the framed context-aware
// protocol from wire; v1 clients get the net/rpc compat shim around
// legacy, registered under name. Either may be nil to serve one protocol
// only.
func Serve(name string, legacy any, wire *Registry, addr string) (net.Listener, string, error) {
	var srv *rpc.Server
	if legacy != nil {
		srv = rpc.NewServer()
		if err := srv.RegisterName(name, legacy); err != nil {
			return nil, "", err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go routeConn(conn, srv, wire)
		}
	}()
	return ln, ln.Addr().String(), nil
}

// routeConn sniffs one accepted connection and dispatches it to the
// protocol version the client speaks.
func routeConn(conn net.Conn, legacy *rpc.Server, wire *Registry) {
	var preamble [4]byte
	if _, err := io.ReadFull(conn, preamble[:]); err != nil {
		conn.Close()
		return
	}
	if preamble == wireMagic {
		var version [1]byte
		if _, err := io.ReadFull(conn, version[:]); err != nil {
			conn.Close()
			return
		}
		if wire == nil || version[0] != WireV2 {
			_, _ = conn.Write([]byte{0}) // reject: unsupported version
			conn.Close()
			return
		}
		if _, err := conn.Write([]byte{WireV2}); err != nil {
			conn.Close()
			return
		}
		serveWire(conn, wire)
		return
	}
	if legacy == nil {
		conn.Close()
		return
	}
	// v1: replay the sniffed bytes into the gob stream.
	legacy.ServeConn(replayConn{Conn: conn, r: io.MultiReader(bytes.NewReader(preamble[:]), conn)})
}

// replayConn prepends sniffed bytes back onto a connection's read side.
type replayConn struct {
	net.Conn
	r io.Reader
}

func (c replayConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// Dial connects a legacy (v1) net/rpc client; kept for compat tooling and
// the v1 shim tests. New code uses DialWire.
func Dial(addr string) (*rpc.Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return rpc.NewClient(conn), nil
}

// --- shared message types ---

// Nothing is a placeholder for empty args/replies.
type Nothing struct{}

// StoreCiphertextArgs carries a backup upload.
type StoreCiphertextArgs struct {
	User string
	CT   []byte
}

// UserArg names a user for single-argument RPCs.
type UserArg struct {
	User string
}

// IntReply carries a single integer result.
type IntReply struct {
	N int
}

// BytesReply carries a single opaque byte-string result.
type BytesReply struct {
	B []byte
}

// LogAttemptArgs carries a recovery-attempt insertion.
type LogAttemptArgs struct {
	User       string
	Attempt    int
	Commitment []byte
}

// InclusionArgs requests a log-inclusion proof.
type InclusionArgs struct {
	User       string
	Attempt    int
	Commitment []byte
}

// OracleArgs addresses one outsourced block of one HSM.
type OracleArgs struct {
	HSMID int
	Addr  uint64
	Block []byte // Put only
}

// RegisterArgs announces a freshly provisioned HSM daemon.
type RegisterArgs struct {
	ID        int
	Addr      string // where the HSM daemon's HSM service listens
	BFEPub    []byte
	AggSigPub []byte
}

// FleetConfig is the fleet-wide configuration the provider hands to HSM
// daemons at startup so all replicas agree on parameters.
type FleetConfig struct {
	NumHSMs       int
	ClusterSize   int
	Threshold     int
	BFEM          int
	BFEK          int
	LogChunks     int
	AuditsPerHSM  int
	MinSignerFrac float64
	GuessLimit    int
	SchemeName    string // "bls12381-multisig" or "ecdsa-concat"
	Deterministic bool

	// HashModeName selects the BLS message-to-G1 hash fleet-wide:
	// "rfc9380" (constant-time SSWU per RFC 9380, the default for new
	// deployments) or "legacy" (the pre-standard try-and-increment hash).
	// Every HSM daemon adopts the provider's value at provisioning, so
	// mixed fleets converge on one hash. The empty string — what a
	// provider predating this field serves — parses as "legacy", because
	// such a provider's fleet only ever signed with try-and-increment.
	HashModeName string

	// Provider-engine tuning (zero values → provider defaults): how long
	// the epoch scheduler gathers concurrent log insertions, the size
	// trigger that commits early, the audit fan-out pool width, and the
	// standing epoch timer cadence for daemons with no blocked waiters.
	EpochBatchMS    int
	EpochMaxBatch   int
	EpochWorkers    int
	EpochIntervalMS int
}

// FleetStatus reports registration progress.
type FleetStatus struct {
	Expected   int
	Registered []int
	RosterSent bool
}

// FleetMsg wraps the fleet public-key download.
type FleetMsg struct {
	Keys [][]byte
}

// RosterMsg wraps a signing-roster install.
type RosterMsg struct {
	Roster [][]byte
}

// ChunksMsg wraps an HSM's audit-chunk assignment.
type ChunksMsg struct {
	Chunks []int
}

// EpochHeaderMsg wraps an epoch header.
type EpochHeaderMsg struct {
	Hdr dlog.EpochHeader
}

// RecoverReplyMsg wraps a recovery reply (rpc needs a concrete pointer).
type RecoverReplyMsg struct {
	Reply protocol.RecoveryReply
}

// EscrowMsg wraps the escrowed-reply download.
type EscrowMsg struct {
	Replies []protocol.RecoveryReply
}

// TraceMsg wraps a log trace.
type TraceMsg struct {
	Trace logtree.Trace
}

// EntriesMsg wraps a committed-log snapshot.
type EntriesMsg struct {
	Entries []logtree.Entry
}

// DigestMsg wraps the provider's committed digest.
type DigestMsg struct {
	Digest logtree.Digest
}

// AuditPackageMsg wraps an epoch audit package.
type AuditPackageMsg struct {
	Pkg dlog.AuditPackage
}

// CommitMsg wraps an epoch commit.
type CommitMsg struct {
	CM dlog.CommitMessage
}
