// Package transport runs SafetyPin's entities as separate OS processes
// connected over TCP, standing in for the paper's USB fabric between the
// host and its SoloKeys (and the data-center network between clients and
// the provider).
//
// The wire protocol is stdlib net/rpc with gob encoding. Three roles:
//
//   - the provider daemon (cmd/providerd) hosts ProviderService: client
//     API, per-HSM outsourced block storage, HSM registration, and log
//     epochs;
//   - each HSM daemon (cmd/hsmd) hosts HSMService and stores its
//     outsourced key array *back at the provider* through RemoteOracle —
//     the HSM process holds only its root key, exactly like the hardware;
//   - the client CLI (cmd/safetypin) talks to the provider through
//     RemoteProvider, which implements the same client.ProviderAPI as the
//     in-process provider.
//
// Trust note: FetchFleet hands clients the HSM public keys through the
// provider. The paper (§2) is explicit that clients must obtain authentic
// HSM keys out of band (hardware attestation or the transparency log); a
// production deployment would pin them. The transport exposes the fleet
// digest so callers can compare against an out-of-band value.
package transport

import (
	"fmt"
	"net"
	"net/rpc"

	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
)

// Serve starts an RPC server for the given receiver on addr and returns the
// listener (close it to stop) plus the bound address.
func Serve(name string, rcvr any, addr string) (net.Listener, string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(name, rcvr); err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, ln.Addr().String(), nil
}

// Dial connects to an RPC endpoint.
func Dial(addr string) (*rpc.Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return rpc.NewClient(conn), nil
}

// --- shared message types ---

// Nothing is a placeholder for empty args/replies.
type Nothing struct{}

// StoreCiphertextArgs carries a backup upload.
type StoreCiphertextArgs struct {
	User string
	CT   []byte
}

// LogAttemptArgs carries a recovery-attempt insertion.
type LogAttemptArgs struct {
	User       string
	Attempt    int
	Commitment []byte
}

// InclusionArgs requests a log-inclusion proof.
type InclusionArgs struct {
	User       string
	Attempt    int
	Commitment []byte
}

// OracleArgs addresses one outsourced block of one HSM.
type OracleArgs struct {
	HSMID int
	Addr  uint64
	Block []byte // Put only
}

// RegisterArgs announces a freshly provisioned HSM daemon.
type RegisterArgs struct {
	ID        int
	Addr      string // where the HSM daemon's HSMService listens
	BFEPub    []byte
	AggSigPub []byte
}

// FleetConfig is the fleet-wide configuration the provider hands to HSM
// daemons at startup so all replicas agree on parameters.
type FleetConfig struct {
	NumHSMs       int
	ClusterSize   int
	Threshold     int
	BFEM          int
	BFEK          int
	LogChunks     int
	AuditsPerHSM  int
	MinSignerFrac float64
	GuessLimit    int
	SchemeName    string // "bls12381-multisig" or "ecdsa-concat"
	Deterministic bool

	// Provider-engine tuning (zero values → provider defaults): how long
	// the epoch scheduler gathers concurrent log insertions, the size
	// trigger that commits early, and the audit fan-out pool width.
	EpochBatchMS  int
	EpochMaxBatch int
	EpochWorkers  int
}

// FleetStatus reports registration progress.
type FleetStatus struct {
	Expected   int
	Registered []int
	RosterSent bool
}

// RecoverReplyMsg wraps a recovery reply (rpc needs a concrete pointer).
type RecoverReplyMsg struct {
	Reply protocol.RecoveryReply
}

// TraceMsg wraps a log trace.
type TraceMsg struct {
	Trace logtree.Trace
}

// AuditPackageMsg wraps an epoch audit package.
type AuditPackageMsg struct {
	Pkg dlog.AuditPackage
}

// CommitMsg wraps an epoch commit.
type CommitMsg struct {
	CM dlog.CommitMessage
}
