package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/hsm"
	"safetypin/internal/protocol"
	"safetypin/internal/provider"
	"safetypin/internal/securestore"
)

// RemoteOracle lets an HSM daemon keep its outsourced key array at the
// provider, block by block, over RPC — the paper's host-hosted storage.
// securestore.Oracle has no context parameter (block I/O is part of every
// HSM key operation, which must run to completion once started), so calls
// ride context.Background(). Like RemoteHSM on the provider side, a
// connection-level failure redials: the provider restarting from its
// journal must not strand every HSM's key array behind a dead socket.
type RemoteOracle struct {
	addr  string
	hsmID int
	mu    sync.Mutex
	c     *Conn
}

// DialOracle connects an HSM daemon's oracle to the provider.
func DialOracle(providerAddr string, hsmID int) (*RemoteOracle, error) {
	c, err := DialWire(providerAddr)
	if err != nil {
		return nil, err
	}
	return &RemoteOracle{addr: providerAddr, hsmID: hsmID, c: c}, nil
}

// call runs one oracle RPC, redialing once if the connection has died
// (provider restart). App-level errors pass through untouched.
func (o *RemoteOracle) call(msg byte, args OracleArgs, reply any) error {
	o.mu.Lock()
	c := o.c
	o.mu.Unlock()
	err := c.Call(context.Background(), msg, args, reply)
	if err == nil || !errors.Is(err, ErrConnClosed) {
		return err
	}
	nc, derr := DialWire(o.addr)
	if derr != nil {
		return err
	}
	o.mu.Lock()
	if o.c == c {
		o.c = nc
	} else {
		// A concurrent caller already replaced the connection.
		nc.Close()
		nc = o.c
	}
	o.mu.Unlock()
	return nc.Call(context.Background(), msg, args, reply)
}

// Get implements securestore.Oracle.
func (o *RemoteOracle) Get(addr uint64) ([]byte, error) {
	var out BytesReply
	err := o.call(MsgOracleGet, OracleArgs{HSMID: o.hsmID, Addr: addr}, &out)
	return out.B, err
}

// Put implements securestore.Oracle.
func (o *RemoteOracle) Put(addr uint64, block []byte) error {
	return o.call(MsgOraclePut, OracleArgs{HSMID: o.hsmID, Addr: addr, Block: block}, nil)
}

var _ securestore.Oracle = (*RemoteOracle)(nil)

// HSMDaemon wraps one HSM state machine for network service.
type HSMDaemon struct {
	H *hsm.HSM
}

// ProvisionHSM creates the HSM for a daemon: fetch the fleet config from
// the provider, generate keys (the secret array streams into the provider-
// hosted oracle over RPC), and return the daemon plus registration args.
func ProvisionHSM(providerAddr string, id int, listenAddr string) (*HSMDaemon, RegisterArgs, error) {
	ctx := context.Background()
	rp, err := DialProvider(providerAddr)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	cfg, err := rp.Config(ctx)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	// The provider's config is authoritative for the signature scheme and
	// the BLS hash mode: adopting both here is how a mixed fleet (new
	// binaries joining a pre-RFC deployment, or vice versa) negotiates a
	// common message hash for the distributed log.
	scheme, err := schemeByName(cfg.SchemeName, cfg.HashModeName)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	oracle, err := DialOracle(providerAddr, id)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	hcfg := hsm.Config{
		BFE: bfe.Params{M: cfg.BFEM, K: cfg.BFEK},
		Log: dlog.Config{
			NumChunks:     cfg.LogChunks,
			AuditsPerHSM:  cfg.AuditsPerHSM,
			MinSignerFrac: cfg.MinSignerFrac,
			Deterministic: cfg.Deterministic,
			Scheme:        scheme,
		},
		GuessLimit: cfg.GuessLimit,
	}
	h, err := hsm.New(id, hcfg, oracle, rand.Reader, nil)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	return &HSMDaemon{H: h}, RegisterArgs{
		ID:        id,
		Addr:      listenAddr,
		BFEPub:    h.BFEPublicKey().Bytes(),
		AggSigPub: h.AggSigPublicKey().Bytes(),
	}, nil
}

func (d *HSMDaemon) installRoster(raw [][]byte) error {
	scheme := d.H.Scheme()
	keys := make([]aggsig.PublicKey, len(raw))
	for i, b := range raw {
		pk, err := scheme.ParsePublicKey(b)
		if err != nil {
			return fmt.Errorf("transport: roster key %d: %w", i, err)
		}
		keys[i] = pk
	}
	return d.H.InstallRoster(keys)
}

// WireRegistry builds the HSM daemon's v2 dispatch table. The per-call
// context reaches the HSM state machine, so a provider that cancels (its
// own client vanished, or the epoch audit deadline passed) aborts the
// exchange before the device commits to irreversible work.
func (d *HSMDaemon) WireRegistry() *Registry {
	reg := NewRegistry()
	handleWire(reg, MsgHSMRecover, func(ctx context.Context, req *protocol.RecoveryRequest) (*RecoverReplyMsg, error) {
		reply, err := d.H.HandleRecover(ctx, req)
		if err != nil {
			return nil, err
		}
		return &RecoverReplyMsg{Reply: *reply}, nil
	})
	handleWire(reg, MsgHSMInstallRoster, func(ctx context.Context, a *RosterMsg) (*Nothing, error) {
		return &Nothing{}, d.installRoster(a.Roster)
	})
	handleWire(reg, MsgHSMChooseChunks, func(ctx context.Context, a *EpochHeaderMsg) (*ChunksMsg, error) {
		idx, err := d.H.LogChooseChunks(ctx, a.Hdr)
		if err != nil {
			return nil, err
		}
		return &ChunksMsg{Chunks: idx}, nil
	})
	handleWire(reg, MsgHSMHandleAudit, func(ctx context.Context, a *AuditPackageMsg) (*BytesReply, error) {
		sig, err := d.H.LogHandleAudit(ctx, &a.Pkg)
		if err != nil {
			return nil, err
		}
		return &BytesReply{B: sig}, nil
	})
	handleWire(reg, MsgHSMHandleCommit, func(ctx context.Context, a *CommitMsg) (*Nothing, error) {
		return &Nothing{}, d.H.LogHandleCommit(ctx, &a.CM)
	})
	return reg
}

// HSMService is the legacy (wire v1) net/rpc surface of an HSM daemon.
type HSMService struct {
	d *HSMDaemon
}

// Service returns the legacy net/rpc receiver.
func (d *HSMDaemon) Service() *HSMService { return &HSMService{d} }

// Recover serves the recovery protocol (Figure 3, steps Ï–Ð).
func (s *HSMService) Recover(req protocol.RecoveryRequest, out *RecoverReplyMsg) error {
	reply, err := s.d.H.HandleRecover(context.Background(), &req)
	if err != nil {
		return err
	}
	out.Reply = *reply
	return nil
}

// InstallRoster installs the fleet signing roster.
func (s *HSMService) InstallRoster(roster [][]byte, _ *Nothing) error {
	return s.d.installRoster(roster)
}

// LogChooseChunks returns this HSM's audit assignment.
func (s *HSMService) LogChooseChunks(hdr dlog.EpochHeader, out *[]int) error {
	idx, err := s.d.H.LogChooseChunks(context.Background(), hdr)
	if err != nil {
		return err
	}
	*out = idx
	return nil
}

// LogHandleAudit audits an epoch package.
func (s *HSMService) LogHandleAudit(pkg AuditPackageMsg, out *[]byte) error {
	sig, err := s.d.H.LogHandleAudit(context.Background(), &pkg.Pkg)
	if err != nil {
		return err
	}
	*out = sig
	return nil
}

// LogHandleCommit finalizes an epoch.
func (s *HSMService) LogHandleCommit(cm CommitMsg, _ *Nothing) error {
	return s.d.H.LogHandleCommit(context.Background(), &cm.CM)
}

// --- provider-side proxy (wire v2) ---

// RemoteHSM implements provider.HSMHandle over the v2 wire protocol: the
// provider's per-exchange contexts (audit timeouts, relayed client
// cancellations) cancel the matching daemon-side handler. Connection
// failures are marked transient (provider.MarkTransient) and the
// connection is redialed, so the provider's epoch-fan-out retry finds a
// live link on its next try instead of a permanently dead handle.
type RemoteHSM struct {
	id   int
	addr string
	mu   sync.Mutex
	c    *Conn
}

// NewRemoteHSM dials an HSM daemon.
func NewRemoteHSM(id int, addr string) (*RemoteHSM, error) {
	c, err := DialWire(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteHSM{id: id, addr: addr, c: c}, nil
}

// ID implements provider.HSMHandle.
func (r *RemoteHSM) ID() int { return r.id }

// call runs one wire call. A connection-level failure (the HSM daemon
// restarted, the link dropped) is classified transient and the
// connection replaced; app-level errors — an HSM rejecting an audit —
// pass through untouched and are never retried.
func (r *RemoteHSM) call(ctx context.Context, msg byte, args, reply any) error {
	r.mu.Lock()
	c := r.c
	r.mu.Unlock()
	err := c.Call(ctx, msg, args, reply)
	if err == nil || !errors.Is(err, ErrConnClosed) {
		return err
	}
	if nc, derr := DialWire(r.addr); derr == nil {
		r.mu.Lock()
		if r.c == c {
			r.c = nc
		} else {
			// A concurrent caller already replaced the connection.
			defer nc.Close()
		}
		r.mu.Unlock()
	}
	return provider.MarkTransient(err)
}

// LogChooseChunks implements provider.HSMHandle.
func (r *RemoteHSM) LogChooseChunks(ctx context.Context, hdr dlog.EpochHeader) ([]int, error) {
	var out ChunksMsg
	err := r.call(ctx, MsgHSMChooseChunks, EpochHeaderMsg{Hdr: hdr}, &out)
	return out.Chunks, err
}

// LogHandleAudit implements provider.HSMHandle.
func (r *RemoteHSM) LogHandleAudit(ctx context.Context, pkg *dlog.AuditPackage) ([]byte, error) {
	var out BytesReply
	err := r.call(ctx, MsgHSMHandleAudit, AuditPackageMsg{Pkg: *pkg}, &out)
	return out.B, err
}

// LogHandleCommit implements provider.HSMHandle.
func (r *RemoteHSM) LogHandleCommit(ctx context.Context, cm *dlog.CommitMessage) error {
	return r.call(ctx, MsgHSMHandleCommit, CommitMsg{CM: *cm}, nil)
}

// HandleRecover implements provider.HSMHandle.
func (r *RemoteHSM) HandleRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	var out RecoverReplyMsg
	if err := r.call(ctx, MsgHSMRecover, req, &out); err != nil {
		return nil, err
	}
	return &out.Reply, nil
}

// InstallRoster pushes the fleet roster.
func (r *RemoteHSM) InstallRoster(ctx context.Context, roster [][]byte) error {
	return r.call(ctx, MsgHSMInstallRoster, RosterMsg{Roster: roster}, nil)
}
