package transport

import (
	"crypto/rand"
	"fmt"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/hsm"
	"safetypin/internal/protocol"
	"safetypin/internal/securestore"
)

// RemoteOracle lets an HSM daemon keep its outsourced key array at the
// provider, block by block, over RPC — the paper's host-hosted storage.
type RemoteOracle struct {
	c     *rpcClient
	hsmID int
}

// DialOracle connects an HSM daemon's oracle to the provider.
func DialOracle(providerAddr string, hsmID int) (*RemoteOracle, error) {
	c, err := Dial(providerAddr)
	if err != nil {
		return nil, err
	}
	return &RemoteOracle{c: &rpcClient{c: c}, hsmID: hsmID}, nil
}

// Get implements securestore.Oracle.
func (o *RemoteOracle) Get(addr uint64) ([]byte, error) {
	var out []byte
	err := o.c.call("Provider.OracleGet", OracleArgs{HSMID: o.hsmID, Addr: addr}, &out)
	return out, err
}

// Put implements securestore.Oracle.
func (o *RemoteOracle) Put(addr uint64, block []byte) error {
	return o.c.call("Provider.OraclePut", OracleArgs{HSMID: o.hsmID, Addr: addr, Block: block}, &Nothing{})
}

var _ securestore.Oracle = (*RemoteOracle)(nil)

// HSMDaemon wraps one HSM state machine for network service.
type HSMDaemon struct {
	H *hsm.HSM
}

// ProvisionHSM creates the HSM for a daemon: fetch the fleet config from
// the provider, generate keys (the secret array streams into the provider-
// hosted oracle over RPC), and return the daemon plus registration args.
func ProvisionHSM(providerAddr string, id int, listenAddr string) (*HSMDaemon, RegisterArgs, error) {
	rp, err := DialProvider(providerAddr)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	cfg, err := rp.Config()
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	scheme, err := schemeByName(cfg.SchemeName)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	oracle, err := DialOracle(providerAddr, id)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	hcfg := hsm.Config{
		BFE: bfe.Params{M: cfg.BFEM, K: cfg.BFEK},
		Log: dlog.Config{
			NumChunks:     cfg.LogChunks,
			AuditsPerHSM:  cfg.AuditsPerHSM,
			MinSignerFrac: cfg.MinSignerFrac,
			Deterministic: cfg.Deterministic,
			Scheme:        scheme,
		},
		GuessLimit: cfg.GuessLimit,
	}
	h, err := hsm.New(id, hcfg, oracle, rand.Reader, nil)
	if err != nil {
		return nil, RegisterArgs{}, err
	}
	return &HSMDaemon{H: h}, RegisterArgs{
		ID:        id,
		Addr:      listenAddr,
		BFEPub:    h.BFEPublicKey().Bytes(),
		AggSigPub: h.AggSigPublicKey().Bytes(),
	}, nil
}

// HSMService is the RPC surface of an HSM daemon.
type HSMService struct {
	d *HSMDaemon
}

// Service returns the RPC receiver.
func (d *HSMDaemon) Service() *HSMService { return &HSMService{d} }

// Recover serves the recovery protocol (Figure 3, steps Ï–Ð).
func (s *HSMService) Recover(req protocol.RecoveryRequest, out *RecoverReplyMsg) error {
	reply, err := s.d.H.HandleRecover(&req)
	if err != nil {
		return err
	}
	out.Reply = *reply
	return nil
}

// InstallRoster installs the fleet signing roster.
func (s *HSMService) InstallRoster(roster [][]byte, _ *Nothing) error {
	return s.d.installRoster(roster)
}

func (d *HSMDaemon) installRoster(raw [][]byte) error {
	scheme := d.H.Scheme()
	keys := make([]aggsig.PublicKey, len(raw))
	for i, b := range raw {
		pk, err := scheme.ParsePublicKey(b)
		if err != nil {
			return fmt.Errorf("transport: roster key %d: %w", i, err)
		}
		keys[i] = pk
	}
	return d.H.InstallRoster(keys)
}

// LogChooseChunks returns this HSM's audit assignment.
func (s *HSMService) LogChooseChunks(hdr dlog.EpochHeader, out *[]int) error {
	idx, err := s.d.H.LogChooseChunks(hdr)
	if err != nil {
		return err
	}
	*out = idx
	return nil
}

// LogHandleAudit audits an epoch package.
func (s *HSMService) LogHandleAudit(pkg AuditPackageMsg, out *[]byte) error {
	sig, err := s.d.H.LogHandleAudit(&pkg.Pkg)
	if err != nil {
		return err
	}
	*out = sig
	return nil
}

// LogHandleCommit finalizes an epoch.
func (s *HSMService) LogHandleCommit(cm CommitMsg, _ *Nothing) error {
	return s.d.H.LogHandleCommit(&cm.CM)
}

// --- provider-side proxy ---

// RemoteHSM implements provider.HSMHandle over RPC.
type RemoteHSM struct {
	id int
	c  *rpcClient
}

// NewRemoteHSM dials an HSM daemon.
func NewRemoteHSM(id int, addr string) (*RemoteHSM, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteHSM{id: id, c: &rpcClient{c: c}}, nil
}

// ID implements provider.HSMHandle.
func (r *RemoteHSM) ID() int { return r.id }

// LogChooseChunks implements provider.HSMHandle.
func (r *RemoteHSM) LogChooseChunks(hdr dlog.EpochHeader) ([]int, error) {
	var out []int
	err := r.c.call("HSM.LogChooseChunks", hdr, &out)
	return out, err
}

// LogHandleAudit implements provider.HSMHandle.
func (r *RemoteHSM) LogHandleAudit(pkg *dlog.AuditPackage) ([]byte, error) {
	var out []byte
	err := r.c.call("HSM.LogHandleAudit", AuditPackageMsg{Pkg: *pkg}, &out)
	return out, err
}

// LogHandleCommit implements provider.HSMHandle.
func (r *RemoteHSM) LogHandleCommit(cm *dlog.CommitMessage) error {
	return r.c.call("HSM.LogHandleCommit", CommitMsg{CM: *cm}, &Nothing{})
}

// HandleRecover implements provider.HSMHandle.
func (r *RemoteHSM) HandleRecover(req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	var out RecoverReplyMsg
	if err := r.c.call("HSM.Recover", *req, &out); err != nil {
		return nil, err
	}
	return &out.Reply, nil
}

// InstallRoster pushes the fleet roster.
func (r *RemoteHSM) InstallRoster(roster [][]byte) error {
	return r.c.call("HSM.InstallRoster", roster, &Nothing{})
}
