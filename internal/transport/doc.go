// Package transport runs SafetyPin's entities as separate OS processes
// connected over TCP, standing in for the paper's USB fabric between the
// host and its SoloKeys (and the data-center network between clients and
// the provider).
//
// The wire protocol is versioned and negotiated at connect:
//
//   - v2 (current) is a framed, context-aware RPC layer (wire.go): a
//     4-byte magic + 1-byte version handshake, then length-prefixed
//     frames carrying per-message type tags and gob payloads. Deadlines
//     and cancellation propagate: a client that cancels a call sends a
//     cancel frame that aborts the matching server-side handler, and a
//     dropped connection aborts every in-flight handler on that
//     connection.
//   - v1 (legacy) is the stdlib net/rpc gob stream. The server sniffs the
//     first bytes of each accepted connection and routes v1 clients to a
//     net/rpc compat shim, so pre-v2 tooling keeps working; golden wire
//     tests pin both framings.
//
// Three roles:
//
//   - the provider daemon (cmd/providerd) hosts the provider service:
//     client API, per-HSM outsourced block storage, HSM registration, and
//     log epochs;
//   - each HSM daemon (cmd/hsmd) hosts the HSM service and stores its
//     outsourced key array *back at the provider* through RemoteOracle —
//     the HSM process holds only its root key, exactly like the hardware;
//   - the client CLI (cmd/safetypin) talks to the provider through
//     RemoteProvider, which implements the same role-scoped
//     client.Provider interface as the in-process provider.
//
// Trust note: FetchFleet hands clients the HSM public keys through the
// provider. The paper (§2) is explicit that clients must obtain authentic
// HSM keys out of band (hardware attestation or the transparency log); a
// production deployment would pin them. The transport exposes the fleet
// digest so callers can compare against an out-of-band value.
package transport
