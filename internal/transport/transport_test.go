package transport

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	"safetypin/internal/client"
	"safetypin/internal/dlog"
	"safetypin/internal/lhe"
)

var tctx = context.Background()

// testFleetConfig is a small, fast fleet for TCP tests. The cluster is half
// the fleet: with N == n location hiding degenerates (any PIN selects the
// same set), which the paper rules out by requiring N ≫ n.
func testFleetConfig(n int) FleetConfig {
	return FleetConfig{
		NumHSMs:       n,
		ClusterSize:   n / 2,
		Threshold:     n / 4,
		BFEM:          128,
		BFEK:          4,
		LogChunks:     n,
		AuditsPerHSM:  n,
		MinSignerFrac: 0.5,
		GuessLimit:    4,
		SchemeName:    "ecdsa-concat",
	}
}

// startFleet boots a provider daemon and n HSM daemons over loopback TCP
// (both wire versions served), returning the provider address and a
// shutdown func.
func startFleet(t testing.TB, n int) (string, func()) {
	return startFleetCfg(t, testFleetConfig(n))
}

func startFleetCfg(t testing.TB, cfg FleetConfig) (string, func()) {
	t.Helper()
	pd, err := NewProviderDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var listeners []net.Listener
	pln, paddr, err := Serve("Provider", pd.Service(), pd.WireRegistry(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	listeners = append(listeners, pln)

	for id := 0; id < cfg.NumHSMs; id++ {
		// Provision against the provider, then serve and register with the
		// live listen address (same order as cmd/hsmd).
		hd, reg, err := ProvisionHSM(paddr, id, "")
		if err != nil {
			t.Fatal(err)
		}
		hln, haddr, err := Serve("HSM", hd.Service(), hd.WireRegistry(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, hln)
		reg.Addr = haddr
		rp, err := DialProvider(paddr)
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.RegisterHSM(tctx, reg); err != nil {
			t.Fatal(err)
		}
		rp.Close()
	}
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if err := rp.InstallRosters(tctx); err != nil {
		t.Fatal(err)
	}
	return paddr, func() {
		pd.Close()
		for _, ln := range listeners {
			ln.Close()
		}
	}
}

// newRemoteClient builds a SafetyPin client over the TCP provider.
func newRemoteClient(t testing.TB, paddr, user, pin string) (*client.Client, *RemoteProvider) {
	t.Helper()
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rp.Config(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := rp.Fleet(tctx)
	if err != nil {
		t.Fatal(err)
	}
	params, err := lhe.NewParams(cfg.NumHSMs, cfg.ClusterSize, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(user, pin, params, fleet, rp)
	if err != nil {
		t.Fatal(err)
	}
	return c, rp
}

func TestTCPBackupRecover(t *testing.T) {
	paddr, shutdown := startFleet(t, 4)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "alice", "123456")
	defer rp.Close()
	msg := []byte("data over real sockets")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("TCP round-trip mismatch")
	}
}

func TestTCPConcurrentRecoveries(t *testing.T) {
	// Concurrent clients over real sockets: their log insertions batch
	// through the provider daemon's epoch scheduler (each WaitForCommit
	// call runs in its own handler goroutine) and their share fan-outs run
	// in parallel against the HSM daemons.
	paddr, shutdown := startFleet(t, 4)
	defer shutdown()
	const users = 3
	type device struct {
		c  *client.Client
		rp *RemoteProvider
	}
	devices := make([]device, users)
	for i := range devices {
		c, rp := newRemoteClient(t, paddr, fmt.Sprintf("tcp-user-%d", i), "123456")
		devices[i] = device{c, rp}
		defer rp.Close()
		if err := c.Backup(tctx, []byte(fmt.Sprintf("image-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	got := make([][]byte, users)
	errs := make([]error, users)
	for i := range devices {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = devices[i].c.Recover(tctx, "")
		}(i)
	}
	wg.Wait()
	for i := range devices {
		if errs[i] != nil {
			t.Fatalf("tcp-user-%d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("image-%d", i); string(got[i]) != want {
			t.Fatalf("tcp-user-%d: got %q want %q", i, got[i], want)
		}
	}
}

func TestTCPWrongPINFails(t *testing.T) {
	paddr, shutdown := startFleet(t, 8)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "bob", "123456")
	defer rp.Close()
	if err := c.Backup(tctx, []byte("m")); err != nil {
		t.Fatal(err)
	}
	// With a small test fleet the wrong-PIN cluster can coincide with the
	// real one at enough positions to reconstruct (the paper's bound
	// 3N/(n|P|) is vacuous at toy N). Skip the rare overlapping draws so
	// the test is deterministic about the property it checks.
	if clusterOverlap(t, rp, c, "123456", "000000") >= 2 {
		t.Skip("wrong-PIN cluster coincidentally overlaps at toy fleet size")
	}
	if _, err := c.Recover(tctx, "000000"); err == nil {
		t.Fatal("wrong PIN succeeded over TCP")
	}
}

// clusterOverlap counts positions where the clusters selected by two PINs
// agree for the user's current ciphertext.
func clusterOverlap(t *testing.T, rp *RemoteProvider, c *client.Client, pinA, pinB string) int {
	t.Helper()
	blob, err := rp.FetchCiphertext(tctx, c.User())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rp.Config(tctx)
	if err != nil {
		t.Fatal(err)
	}
	params, err := lhe.NewParams(cfg.NumHSMs, cfg.ClusterSize, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	a, err := params.Select(ct.Salt, pinA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := params.Select(ct.Salt, pinB)
	if err != nil {
		t.Fatal(err)
	}
	overlap := 0
	for i := range a {
		if a[i] == b[i] {
			overlap++
		}
	}
	return overlap
}

func TestTCPExternalAudit(t *testing.T) {
	paddr, shutdown := startFleet(t, 4)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "carol", "123456")
	defer rp.Close()
	if err := c.Backup(tctx, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(tctx, ""); err != nil {
		t.Fatal(err)
	}
	entries, err := rp.LogEntries(tctx)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := rp.LogDigest(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := dlog.Replay(entries, digest); err != nil {
		t.Fatal(err)
	}
}

func TestTCPStatusAndConfig(t *testing.T) {
	paddr, shutdown := startFleet(t, 2)
	defer shutdown()
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	st, err := rp.Status(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Expected != 2 || len(st.Registered) != 2 || !st.RosterSent {
		t.Fatalf("bad status: %+v", st)
	}
	cfg, err := rp.Config(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumHSMs != 2 {
		t.Fatal("bad config echo")
	}
}

func TestTCPResumeRecovery(t *testing.T) {
	// A session token minted over TCP resumes over a *different*
	// connection: the crashed device's escrowed shares replay and the
	// resumed session completes without reserving a second attempt.
	paddr, shutdown := startFleet(t, 8)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "dora", "123456")
	defer rp.Close()
	msg := []byte("resumable across sockets")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	// Collect a partial set of shares, then "crash" (drop the connection).
	if err := s.RequestShare(tctx, 0); err != nil {
		t.Fatal(err)
	}
	attemptsBefore, err := rp.AttemptCount(tctx, "dora")
	if err != nil {
		t.Fatal(err)
	}

	c2, rp2 := newRemoteClient(t, paddr, "dora", "123456")
	defer rp2.Close()
	s2, err := c2.ResumeRecovery(tctx, token)
	if err != nil {
		t.Fatal(err)
	}
	if s2.SharesHeld() < 1 {
		t.Fatal("escrowed share not replayed on resume")
	}
	s2.RequestAllShares(tctx)
	got, err := s2.Finish(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("resumed recovery returned wrong data")
	}
	attemptsAfter, err := rp2.AttemptCount(tctx, "dora")
	if err != nil {
		t.Fatal(err)
	}
	if attemptsAfter != attemptsBefore {
		t.Fatalf("resume consumed an attempt: %d → %d", attemptsBefore, attemptsAfter)
	}
}

// TestTCPHashModeNegotiation boots BLS fleets under each hash-mode config
// — explicit rfc9380, explicit legacy, and the absent field served by
// pre-RFC providers — and runs a full backup/recovery. The epoch only
// commits if every HSM daemon adopted the provider's hash for both signing
// and aggregate verification, so a completed recovery proves the fleet
// negotiated a common mode.
func TestTCPHashModeNegotiation(t *testing.T) {
	for _, hm := range []string{"rfc9380", "legacy", ""} {
		name := hm
		if name == "" {
			name = "absent-defaults-legacy"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testFleetConfig(4)
			cfg.SchemeName = "bls12381-multisig"
			cfg.HashModeName = hm
			paddr, shutdown := startFleetCfg(t, cfg)
			defer shutdown()
			c, rp := newRemoteClient(t, paddr, "hana", "2468")
			defer rp.Close()
			msg := []byte("negotiated-hash backup")
			if err := c.Backup(tctx, msg); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recover(tctx, "")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatal("round-trip mismatch")
			}
		})
	}
}

func TestSchemeByName(t *testing.T) {
	// The default hash for an explicit rfc9380 fleet config.
	sc, err := schemeByName("bls12381-multisig", "rfc9380")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "bls12381-multisig" {
		t.Fatalf("rfc9380 config built %q", sc.Name())
	}
	// An absent hash-mode field (pre-RFC provider) must negotiate the
	// legacy hash — those fleets' logs were signed with try-and-increment.
	sc, err = schemeByName("", "")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "bls12381-multisig/legacy-hash" {
		t.Fatalf("empty config built %q, want the legacy hash", sc.Name())
	}
	if _, err := schemeByName("bls12381-multisig", "legacy"); err != nil {
		t.Fatal(err)
	}
	if _, err := schemeByName("nonsense", ""); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := schemeByName("bls12381-multisig", "nonsense"); err == nil {
		t.Fatal("unknown hash mode accepted")
	}
}
