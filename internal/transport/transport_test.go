package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"safetypin/internal/client"
	"safetypin/internal/dlog"
	"safetypin/internal/lhe"
)

// testFleetConfig is a small, fast fleet for TCP tests. The cluster is half
// the fleet: with N == n location hiding degenerates (any PIN selects the
// same set), which the paper rules out by requiring N ≫ n.
func testFleetConfig(n int) FleetConfig {
	return FleetConfig{
		NumHSMs:       n,
		ClusterSize:   n / 2,
		Threshold:     n / 4,
		BFEM:          128,
		BFEK:          4,
		LogChunks:     n,
		AuditsPerHSM:  n,
		MinSignerFrac: 0.5,
		GuessLimit:    4,
		SchemeName:    "ecdsa-concat",
	}
}

// startFleet boots a provider daemon and n HSM daemons over loopback TCP,
// returning the provider address and a shutdown func.
func startFleet(t testing.TB, n int) (string, func()) {
	t.Helper()
	cfg := testFleetConfig(n)
	pd, err := NewProviderDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var listeners []net.Listener
	pln, paddr, err := Serve("Provider", pd.Service(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	listeners = append(listeners, pln)

	for id := 0; id < n; id++ {
		// Each HSM daemon listens first (so it can announce its address),
		// then provisions against the provider.
		hln, haddr, err := Serve("HSM", &lateBoundHSM{}, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// We can't register the service after the fact with net/rpc, so
		// instead provision first and serve on a fresh listener.
		hln.Close()
		hd, reg, err := ProvisionHSM(paddr, id, haddr)
		if err != nil {
			t.Fatal(err)
		}
		hln2, haddr2, err := Serve("HSM", hd.Service(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, hln2)
		reg.Addr = haddr2
		rp, err := DialProvider(paddr)
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.c.call("Provider.Register", reg, &Nothing{}); err != nil {
			t.Fatal(err)
		}
		rp.Close()
	}
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if err := rp.c.call("Provider.InstallRosters", Nothing{}, &Nothing{}); err != nil {
		t.Fatal(err)
	}
	return paddr, func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}
}

// lateBoundHSM is a throwaway receiver for the probe listener above.
type lateBoundHSM struct{}

// Ping satisfies net/rpc's "needs at least one method" requirement.
func (l *lateBoundHSM) Ping(_ Nothing, _ *Nothing) error { return nil }

// newRemoteClient builds a SafetyPin client over the TCP provider.
func newRemoteClient(t testing.TB, paddr, user, pin string) (*client.Client, *RemoteProvider) {
	t.Helper()
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rp.Config()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := rp.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	params, err := lhe.NewParams(cfg.NumHSMs, cfg.ClusterSize, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(user, pin, params, fleet, rp)
	if err != nil {
		t.Fatal(err)
	}
	return c, rp
}

func TestTCPBackupRecover(t *testing.T) {
	paddr, shutdown := startFleet(t, 4)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "alice", "123456")
	defer rp.Close()
	msg := []byte("data over real sockets")
	if err := c.Backup(msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover("")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("TCP round-trip mismatch")
	}
}

func TestTCPConcurrentRecoveries(t *testing.T) {
	// Concurrent clients over real sockets: their log insertions batch
	// through the provider daemon's epoch scheduler (net/rpc serves each
	// WaitForCommit on its own goroutine) and their share fan-outs run in
	// parallel against the HSM daemons.
	paddr, shutdown := startFleet(t, 4)
	defer shutdown()
	const users = 3
	type device struct {
		c  *client.Client
		rp *RemoteProvider
	}
	devices := make([]device, users)
	for i := range devices {
		c, rp := newRemoteClient(t, paddr, fmt.Sprintf("tcp-user-%d", i), "123456")
		devices[i] = device{c, rp}
		defer rp.Close()
		if err := c.Backup([]byte(fmt.Sprintf("image-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	got := make([][]byte, users)
	errs := make([]error, users)
	for i := range devices {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = devices[i].c.Recover("")
		}(i)
	}
	wg.Wait()
	for i := range devices {
		if errs[i] != nil {
			t.Fatalf("tcp-user-%d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("image-%d", i); string(got[i]) != want {
			t.Fatalf("tcp-user-%d: got %q want %q", i, got[i], want)
		}
	}
}

func TestTCPWrongPINFails(t *testing.T) {
	paddr, shutdown := startFleet(t, 8)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "bob", "123456")
	defer rp.Close()
	if err := c.Backup([]byte("m")); err != nil {
		t.Fatal(err)
	}
	// With a small test fleet the wrong-PIN cluster can coincide with the
	// real one at enough positions to reconstruct (the paper's bound
	// 3N/(n|P|) is vacuous at toy N). Skip the rare overlapping draws so
	// the test is deterministic about the property it checks.
	if clusterOverlap(t, rp, c, "123456", "000000") >= 2 {
		t.Skip("wrong-PIN cluster coincidentally overlaps at toy fleet size")
	}
	if _, err := c.Recover("000000"); err == nil {
		t.Fatal("wrong PIN succeeded over TCP")
	}
}

// clusterOverlap counts positions where the clusters selected by two PINs
// agree for the user's current ciphertext.
func clusterOverlap(t *testing.T, rp *RemoteProvider, c *client.Client, pinA, pinB string) int {
	t.Helper()
	blob, err := rp.FetchCiphertext(c.User())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rp.Config()
	if err != nil {
		t.Fatal(err)
	}
	params, err := lhe.NewParams(cfg.NumHSMs, cfg.ClusterSize, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	a, err := params.Select(ct.Salt, pinA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := params.Select(ct.Salt, pinB)
	if err != nil {
		t.Fatal(err)
	}
	overlap := 0
	for i := range a {
		if a[i] == b[i] {
			overlap++
		}
	}
	return overlap
}

func TestTCPExternalAudit(t *testing.T) {
	paddr, shutdown := startFleet(t, 4)
	defer shutdown()
	c, rp := newRemoteClient(t, paddr, "carol", "123456")
	defer rp.Close()
	if err := c.Backup([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(""); err != nil {
		t.Fatal(err)
	}
	entries, err := rp.LogEntries()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := rp.LogDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := dlog.Replay(entries, digest); err != nil {
		t.Fatal(err)
	}
}

func TestTCPStatusAndConfig(t *testing.T) {
	paddr, shutdown := startFleet(t, 2)
	defer shutdown()
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	var st FleetStatus
	if err := rp.c.call("Provider.Status", Nothing{}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Expected != 2 || len(st.Registered) != 2 || !st.RosterSent {
		t.Fatalf("bad status: %+v", st)
	}
	cfg, err := rp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumHSMs != 2 {
		t.Fatal("bad config echo")
	}
}

func TestSchemeByName(t *testing.T) {
	if _, err := schemeByName("bls12381-multisig"); err != nil {
		t.Fatal(err)
	}
	if _, err := schemeByName(""); err != nil {
		t.Fatal(err)
	}
	if _, err := schemeByName("nonsense"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
