package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/bls"
	"safetypin/internal/client"
	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/provider"
	"safetypin/internal/storage"
)

// ProviderDaemon hosts the untrusted data-center side as a network service.
type ProviderDaemon struct {
	mu       sync.Mutex
	cfg      FleetConfig
	scheme   aggsig.Scheme
	p        *provider.Provider
	fleetPKs [][]byte // BFE public keys by HSM id
	aggPKs   [][]byte
	hsmAddrs map[int]string
	remotes  map[int]*RemoteHSM
	rosterOK bool
}

// DaemonOption configures daemon-local machinery that is not part of the
// wire-negotiated FleetConfig — durable storage above all. Keeping these
// out of FleetConfig matters: FleetConfig rides the wire to HSM daemons
// and clients, and a provider's storage layout is nobody's business but
// its own.
type DaemonOption func(*daemonConfig)

type daemonConfig struct {
	storage       storage.Engine
	snapshotEvery int
	attemptLimit  int
}

// WithStorageEngine journals all provider state through eng, so the
// daemon survives a crash or restart with its log, attempt counters,
// escrow, hosted oracle blocks, and fleet roster intact.
func WithStorageEngine(eng storage.Engine) DaemonOption {
	return func(c *daemonConfig) { c.storage = eng }
}

// WithSnapshotEvery sets the journal compaction cadence in epoch commits
// (0 → provider default; negative disables periodic compaction).
func WithSnapshotEvery(n int) DaemonOption {
	return func(c *daemonConfig) { c.snapshotEvery = n }
}

// WithAttemptLimit makes the provider reject ReserveAttempt calls once a
// user has burned n guesses (provider.ErrAttemptLimit), mirroring the
// HSM-side guess limit at the front door. 0 → unlimited, the daemon's
// historical behavior.
func WithAttemptLimit(n int) DaemonOption {
	return func(c *daemonConfig) { c.attemptLimit = n }
}

// NewProviderDaemon builds the daemon state for a fleet of cfg.NumHSMs.
// With WithStorageEngine the provider state is first recovered from the
// journal, journaled HSM registrations are re-dialed (best effort — an
// HSM daemon that is still down re-registers on its own later), and the
// last committed epoch is re-delivered to HSMs that missed its fan-out.
func NewProviderDaemon(cfg FleetConfig, opts ...DaemonOption) (*ProviderDaemon, error) {
	var dc daemonConfig
	for _, o := range opts {
		o(&dc)
	}
	scheme, err := schemeByName(cfg.SchemeName, cfg.HashModeName)
	if err != nil {
		return nil, err
	}
	logCfg := dlog.Config{
		NumChunks:     cfg.LogChunks,
		AuditsPerHSM:  cfg.AuditsPerHSM,
		MinSignerFrac: cfg.MinSignerFrac,
		Deterministic: cfg.Deterministic,
		Scheme:        scheme,
	}
	engine := provider.EngineConfig{
		BatchWindow:   time.Duration(cfg.EpochBatchMS) * time.Millisecond,
		MaxBatch:      cfg.EpochMaxBatch,
		EpochWorkers:  cfg.EpochWorkers,
		EpochInterval: time.Duration(cfg.EpochIntervalMS) * time.Millisecond,
		Storage:       dc.storage,
		SnapshotEvery: dc.snapshotEvery,
		AttemptLimit:  dc.attemptLimit,
	}
	p, err := provider.Open(logCfg, engine)
	if err != nil {
		return nil, err
	}
	d := &ProviderDaemon{
		cfg:      cfg,
		scheme:   scheme,
		p:        p,
		fleetPKs: make([][]byte, cfg.NumHSMs),
		aggPKs:   make([][]byte, cfg.NumHSMs),
		hsmAddrs: make(map[int]string),
		remotes:  make(map[int]*RemoteHSM),
	}
	if dc.storage != nil {
		d.restoreRoster()
		// Catch up any HSM that missed the last epoch's commit fan-out
		// before the crash; HSMs already at the digest reject the
		// duplicate harmlessly.
		p.ResendLastCommit(context.Background())
	}
	return d, nil
}

// restoreRoster re-dials every journaled HSM registration. Failures are
// tolerated: an HSM daemon that is down re-registers itself when it
// comes back, through the same path as at first provisioning.
func (d *ProviderDaemon) restoreRoster() {
	for _, e := range d.p.RecoveredRoster() {
		if e.ID < 0 || e.ID >= d.cfg.NumHSMs {
			continue
		}
		remote, err := NewRemoteHSM(e.ID, e.Addr)
		if err != nil {
			continue
		}
		d.mu.Lock()
		d.fleetPKs[e.ID] = e.BFEPub
		d.aggPKs[e.ID] = e.AggPub
		d.hsmAddrs[e.ID] = e.Addr
		d.remotes[e.ID] = remote
		d.mu.Unlock()
		d.p.Register(remote)
	}
}

// Close stops the daemon's provider engine (standing epoch timer) and,
// with durable storage attached, snapshots and closes the engine.
func (d *ProviderDaemon) Close() error { return d.p.Close() }

// Shutdown is the graceful stop: commit whatever log insertions are
// still pending (so no client's acknowledged-but-uncommitted attempt is
// stranded), then Close. ctx bounds the final epoch; on expiry the
// pending batch is abandoned to the journal's pending-drop recovery path
// and Close proceeds anyway.
func (d *ProviderDaemon) Shutdown(ctx context.Context) error {
	if d.p.PendingLogLen() > 0 {
		// Best effort: a failed or timed-out flush falls through to Close,
		// whose journal recovery drops the never-acknowledged batch.
		_ = d.p.RunEpoch(ctx)
	}
	return d.Close()
}

// Provider exposes the daemon's provider for in-process administrative
// tooling and tests.
func (d *ProviderDaemon) Provider() *provider.Provider { return d.p }

// schemeByName builds the fleet's aggregate-signature scheme from the two
// wire-negotiated names: the scheme family and the BLS message-hash mode
// (bls.ParseHashMode treats the empty string as "legacy" so fleets
// provisioned by pre-RFC providers keep verifying their existing logs).
// The hash mode is validated even for non-BLS schemes, so a typoed
// -hash-mode fails at startup instead of lying dormant until the scheme
// is switched.
func schemeByName(name, hashMode string) (aggsig.Scheme, error) {
	mode, err := bls.ParseHashMode(hashMode)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	switch name {
	case "", "bls12381-multisig":
		return aggsig.BLSWithHashMode(mode), nil
	case "ecdsa-concat":
		return aggsig.ECDSAConcat(), nil
	default:
		return nil, fmt.Errorf("transport: unknown signature scheme %q", name)
	}
}

// --- daemon-side service logic (shared by both wire versions) ---

func (d *ProviderDaemon) register(args *RegisterArgs) error {
	if args.ID < 0 || args.ID >= d.cfg.NumHSMs {
		return fmt.Errorf("transport: HSM id %d outside fleet of %d", args.ID, d.cfg.NumHSMs)
	}
	remote, err := NewRemoteHSM(args.ID, args.Addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.fleetPKs[args.ID] = args.BFEPub
	d.aggPKs[args.ID] = args.AggSigPub
	d.hsmAddrs[args.ID] = args.Addr
	d.remotes[args.ID] = remote
	d.mu.Unlock()
	d.p.Register(remote)
	// Durable before the HSM's registration is acknowledged: a restarted
	// provider re-dials its fleet from the journaled roster.
	return d.p.JournalRoster(provider.RosterEntry{
		ID:     args.ID,
		Addr:   args.Addr,
		BFEPub: args.BFEPub,
		AggPub: args.AggSigPub,
	})
}

func (d *ProviderDaemon) status() FleetStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := FleetStatus{Expected: d.cfg.NumHSMs, RosterSent: d.rosterOK}
	for id := range d.remotes {
		st.Registered = append(st.Registered, id)
	}
	return st
}

func (d *ProviderDaemon) installRosters(ctx context.Context) error {
	d.mu.Lock()
	if len(d.remotes) != d.cfg.NumHSMs {
		n := len(d.remotes)
		d.mu.Unlock()
		return fmt.Errorf("transport: only %d of %d HSMs registered", n, d.cfg.NumHSMs)
	}
	roster := make([][]byte, d.cfg.NumHSMs)
	copy(roster, d.aggPKs)
	remotes := make([]*RemoteHSM, 0, len(d.remotes))
	for _, r := range d.remotes {
		remotes = append(remotes, r)
	}
	d.mu.Unlock()
	for _, r := range remotes {
		if err := r.InstallRoster(ctx, roster); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.rosterOK = true
	d.mu.Unlock()
	return nil
}

func (d *ProviderDaemon) fleetKeys() ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, pk := range d.fleetPKs {
		if pk == nil {
			return nil, fmt.Errorf("transport: HSM %d not yet registered", id)
		}
	}
	return append([][]byte(nil), d.fleetPKs...), nil
}

// --- v2 wire registry ---

// WireRegistry builds the daemon's v2 dispatch table. Handlers receive the
// per-call context: cancellation (a cancel frame, or the client
// disconnecting) aborts the underlying provider operation, including a
// blocked WaitForCommit and in-flight RelayRecover HSM exchanges.
func (d *ProviderDaemon) WireRegistry() *Registry {
	reg := NewRegistry()
	handleWire(reg, MsgProviderConfig, func(ctx context.Context, _ *Nothing) (*FleetConfig, error) {
		cfg := d.cfg
		return &cfg, nil
	})
	handleWire(reg, MsgOracleGet, func(ctx context.Context, a *OracleArgs) (*BytesReply, error) {
		b, err := d.p.OracleFor(a.HSMID).Get(a.Addr)
		if err != nil {
			return nil, err
		}
		return &BytesReply{B: b}, nil
	})
	handleWire(reg, MsgOraclePut, func(ctx context.Context, a *OracleArgs) (*Nothing, error) {
		return &Nothing{}, d.p.OracleFor(a.HSMID).Put(a.Addr, a.Block)
	})
	handleWire(reg, MsgRegister, func(ctx context.Context, a *RegisterArgs) (*Nothing, error) {
		return &Nothing{}, d.register(a)
	})
	handleWire(reg, MsgStatus, func(ctx context.Context, _ *Nothing) (*FleetStatus, error) {
		st := d.status()
		return &st, nil
	})
	handleWire(reg, MsgInstallRosters, func(ctx context.Context, _ *Nothing) (*Nothing, error) {
		return &Nothing{}, d.installRosters(ctx)
	})
	handleWire(reg, MsgFetchFleet, func(ctx context.Context, _ *Nothing) (*FleetMsg, error) {
		keys, err := d.fleetKeys()
		if err != nil {
			return nil, err
		}
		return &FleetMsg{Keys: keys}, nil
	})
	handleWire(reg, MsgStoreCiphertext, func(ctx context.Context, a *StoreCiphertextArgs) (*Nothing, error) {
		return &Nothing{}, d.p.StoreCiphertext(ctx, a.User, a.CT)
	})
	handleWire(reg, MsgFetchCiphertext, func(ctx context.Context, a *UserArg) (*BytesReply, error) {
		b, err := d.p.FetchCiphertext(ctx, a.User)
		if err != nil {
			return nil, err
		}
		return &BytesReply{B: b}, nil
	})
	handleWire(reg, MsgAttemptCount, func(ctx context.Context, a *UserArg) (*IntReply, error) {
		n, err := d.p.AttemptCount(ctx, a.User)
		if err != nil {
			return nil, err
		}
		return &IntReply{N: n}, nil
	})
	handleWire(reg, MsgReserveAttempt, func(ctx context.Context, a *UserArg) (*IntReply, error) {
		n, err := d.p.ReserveAttempt(ctx, a.User)
		if err != nil {
			return nil, err
		}
		return &IntReply{N: n}, nil
	})
	handleWire(reg, MsgLogRecoveryAttempt, func(ctx context.Context, a *LogAttemptArgs) (*Nothing, error) {
		return &Nothing{}, d.p.LogRecoveryAttempt(ctx, a.User, a.Attempt, a.Commitment)
	})
	handleWire(reg, MsgRunEpoch, func(ctx context.Context, _ *Nothing) (*Nothing, error) {
		return &Nothing{}, d.p.RunEpoch(ctx)
	})
	handleWire(reg, MsgWaitForCommit, func(ctx context.Context, _ *Nothing) (*Nothing, error) {
		return &Nothing{}, d.p.WaitForCommit(ctx)
	})
	handleWire(reg, MsgFetchInclusionProof, func(ctx context.Context, a *InclusionArgs) (*TraceMsg, error) {
		tr, err := d.p.FetchInclusionProof(ctx, a.User, a.Attempt, a.Commitment)
		if err != nil {
			return nil, err
		}
		return &TraceMsg{Trace: *tr}, nil
	})
	handleWire(reg, MsgRelayRecover, func(ctx context.Context, req *protocol.RecoveryRequest) (*RecoverReplyMsg, error) {
		reply, err := d.p.RelayRecover(ctx, req)
		if err != nil {
			return nil, err
		}
		return &RecoverReplyMsg{Reply: *reply}, nil
	})
	handleWire(reg, MsgFetchEscrow, func(ctx context.Context, a *UserArg) (*EscrowMsg, error) {
		replies, err := d.p.FetchEscrowedReplies(ctx, a.User)
		if err != nil {
			return nil, err
		}
		out := &EscrowMsg{}
		for _, r := range replies {
			out.Replies = append(out.Replies, *r)
		}
		return out, nil
	})
	handleWire(reg, MsgClearEscrow, func(ctx context.Context, a *UserArg) (*Nothing, error) {
		return &Nothing{}, d.p.ClearEscrow(ctx, a.User)
	})
	handleWire(reg, MsgLogEntries, func(ctx context.Context, _ *Nothing) (*EntriesMsg, error) {
		return &EntriesMsg{Entries: d.p.LogEntries()}, nil
	})
	handleWire(reg, MsgLogDigest, func(ctx context.Context, _ *Nothing) (*DigestMsg, error) {
		return &DigestMsg{Digest: d.p.LogDigest()}, nil
	})
	return reg
}

// --- v1 compat shim (legacy net/rpc surface) ---

// ProviderService is the legacy (wire v1) net/rpc surface of the provider
// daemon, kept so pre-v2 clients still parse: same method names and
// message shapes as before the protocol was versioned. Handlers run under
// context.Background() — v1 has no cancellation on the wire.
type ProviderService struct {
	d *ProviderDaemon
}

// Service returns the legacy net/rpc receiver.
func (d *ProviderDaemon) Service() *ProviderService { return &ProviderService{d} }

// Config hands the fleet configuration to HSM daemons.
func (s *ProviderService) Config(_ Nothing, out *FleetConfig) error {
	*out = s.d.cfg
	return nil
}

// OracleGet serves an HSM's outsourced block read.
func (s *ProviderService) OracleGet(args OracleArgs, out *[]byte) error {
	b, err := s.d.p.OracleFor(args.HSMID).Get(args.Addr)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// OraclePut serves an HSM's outsourced block write.
func (s *ProviderService) OraclePut(args OracleArgs, _ *Nothing) error {
	return s.d.p.OracleFor(args.HSMID).Put(args.Addr, args.Block)
}

// Register records a provisioned HSM daemon and connects back to it.
func (s *ProviderService) Register(args RegisterArgs, _ *Nothing) error {
	return s.d.register(&args)
}

// Status reports registration progress.
func (s *ProviderService) Status(_ Nothing, out *FleetStatus) error {
	*out = s.d.status()
	return nil
}

// InstallRosters pushes the complete signing roster to every registered HSM
// once the fleet is full.
func (s *ProviderService) InstallRosters(_ Nothing, _ *Nothing) error {
	return s.d.installRosters(context.Background())
}

// FetchFleet returns all HSM BFE public keys in fleet order. Clients should
// verify the digest out of band (§2).
func (s *ProviderService) FetchFleet(_ Nothing, out *[][]byte) error {
	keys, err := s.d.fleetKeys()
	if err != nil {
		return err
	}
	*out = keys
	return nil
}

// StoreCiphertext uploads a backup.
func (s *ProviderService) StoreCiphertext(args StoreCiphertextArgs, _ *Nothing) error {
	return s.d.p.StoreCiphertext(context.Background(), args.User, args.CT)
}

// FetchCiphertext downloads the latest backup.
func (s *ProviderService) FetchCiphertext(user string, out *[]byte) error {
	b, err := s.d.p.FetchCiphertext(context.Background(), user)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// AttemptCount returns the next free attempt number.
func (s *ProviderService) AttemptCount(user string, out *int) error {
	n, err := s.d.p.AttemptCount(context.Background(), user)
	if err != nil {
		return err
	}
	*out = n
	return nil
}

// ReserveAttempt atomically allocates the next attempt number for a user.
func (s *ProviderService) ReserveAttempt(user string, out *int) error {
	n, err := s.d.p.ReserveAttempt(context.Background(), user)
	if err != nil {
		return err
	}
	*out = n
	return nil
}

// LogRecoveryAttempt queues a recovery attempt for the next epoch.
func (s *ProviderService) LogRecoveryAttempt(args LogAttemptArgs, _ *Nothing) error {
	return s.d.p.LogRecoveryAttempt(context.Background(), args.User, args.Attempt, args.Commitment)
}

// RunEpoch forces one log-update epoch across the fleet.
func (s *ProviderService) RunEpoch(_ Nothing, _ *Nothing) error {
	return s.d.p.RunEpoch(context.Background())
}

// WaitForCommit blocks until the caller's pending log insertions commit
// through the epoch scheduler. net/rpc serves each call on its own
// goroutine, so concurrent clients share one batched epoch here exactly as
// they do in process.
func (s *ProviderService) WaitForCommit(_ Nothing, _ *Nothing) error {
	return s.d.p.WaitForCommit(context.Background())
}

// FetchInclusionProof serves a log-inclusion proof.
func (s *ProviderService) FetchInclusionProof(args InclusionArgs, out *TraceMsg) error {
	tr, err := s.d.p.FetchInclusionProof(context.Background(), args.User, args.Attempt, args.Commitment)
	if err != nil {
		return err
	}
	out.Trace = *tr
	return nil
}

// RelayRecover forwards a recovery request to its target HSM.
func (s *ProviderService) RelayRecover(req protocol.RecoveryRequest, out *RecoverReplyMsg) error {
	reply, err := s.d.p.RelayRecover(context.Background(), &req)
	if err != nil {
		return err
	}
	out.Reply = *reply
	return nil
}

// FetchEscrowedReplies returns the escrowed replies for a user.
func (s *ProviderService) FetchEscrowedReplies(user string, out *[]protocol.RecoveryReply) error {
	replies, err := s.d.p.FetchEscrowedReplies(context.Background(), user)
	if err != nil {
		return err
	}
	for _, r := range replies {
		*out = append(*out, *r)
	}
	return nil
}

// ClearEscrow drops a user's escrow.
func (s *ProviderService) ClearEscrow(user string, _ *Nothing) error {
	return s.d.p.ClearEscrow(context.Background(), user)
}

// LogEntries exposes the committed log for external auditors.
func (s *ProviderService) LogEntries(_ Nothing, out *[]logtree.Entry) error {
	*out = s.d.p.LogEntries()
	return nil
}

// LogDigest returns the provider's committed log digest.
func (s *ProviderService) LogDigest(_ Nothing, out *logtree.Digest) error {
	*out = s.d.p.LogDigest()
	return nil
}

// --- client-side proxy (wire v2) ---

// RemoteProvider implements the role-scoped client.Provider interface over
// the v2 wire protocol: every call carries its context, so client-side
// deadlines cancel the matching server-side handler.
type RemoteProvider struct {
	c *Conn
}

var _ client.Provider = (*RemoteProvider)(nil)

// DialProvider connects a client to a provider daemon (wire v2).
func DialProvider(addr string) (*RemoteProvider, error) {
	c, err := DialWire(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteProvider{c: c}, nil
}

// Fleet downloads and parses the fleet's BFE public keys.
func (r *RemoteProvider) Fleet(ctx context.Context) (*bfe.Fleet, error) {
	var raw FleetMsg
	if err := r.c.Call(ctx, MsgFetchFleet, Nothing{}, &raw); err != nil {
		return nil, err
	}
	keys := make([]*bfe.PublicKey, len(raw.Keys))
	for i, b := range raw.Keys {
		pk, err := bfe.PublicKeyFromBytes(b)
		if err != nil {
			return nil, fmt.Errorf("transport: fleet key %d: %w", i, err)
		}
		keys[i] = pk
	}
	return bfe.NewFleet(keys), nil
}

// Config fetches the fleet configuration.
func (r *RemoteProvider) Config(ctx context.Context) (FleetConfig, error) {
	var cfg FleetConfig
	err := r.c.Call(ctx, MsgProviderConfig, Nothing{}, &cfg)
	return cfg, err
}

// StoreCiphertext implements client.BackupStore.
func (r *RemoteProvider) StoreCiphertext(ctx context.Context, user string, ct []byte) error {
	return r.c.Call(ctx, MsgStoreCiphertext, StoreCiphertextArgs{User: user, CT: ct}, nil)
}

// FetchCiphertext implements client.BackupStore.
func (r *RemoteProvider) FetchCiphertext(ctx context.Context, user string) ([]byte, error) {
	var out BytesReply
	if err := r.c.Call(ctx, MsgFetchCiphertext, UserArg{User: user}, &out); err != nil {
		return nil, err
	}
	return out.B, nil
}

// AttemptCount implements client.LogService.
func (r *RemoteProvider) AttemptCount(ctx context.Context, user string) (int, error) {
	var out IntReply
	if err := r.c.Call(ctx, MsgAttemptCount, UserArg{User: user}, &out); err != nil {
		return 0, err
	}
	return out.N, nil
}

// ReserveAttempt implements client.LogService. A reservation mutates state
// the HSM guess limit charges against, so RPC failures surface instead of
// being mistaken for index 0.
func (r *RemoteProvider) ReserveAttempt(ctx context.Context, user string) (int, error) {
	var out IntReply
	if err := r.c.Call(ctx, MsgReserveAttempt, UserArg{User: user}, &out); err != nil {
		return 0, err
	}
	return out.N, nil
}

// LogRecoveryAttempt implements client.LogService.
func (r *RemoteProvider) LogRecoveryAttempt(ctx context.Context, user string, attempt int, commitment []byte) error {
	return r.c.Call(ctx, MsgLogRecoveryAttempt,
		LogAttemptArgs{User: user, Attempt: attempt, Commitment: commitment}, nil)
}

// RunEpoch forces an epoch over everything pending (administrative path;
// clients use WaitForCommit).
func (r *RemoteProvider) RunEpoch(ctx context.Context) error {
	return r.c.Call(ctx, MsgRunEpoch, Nothing{}, nil)
}

// WaitForCommit implements client.LogService. Cancelling ctx sends a
// cancel frame: the daemon unsubscribes the server-side waiter from its
// epoch round, so an abandoned wait leaks nothing on either end.
func (r *RemoteProvider) WaitForCommit(ctx context.Context) error {
	return r.c.Call(ctx, MsgWaitForCommit, Nothing{}, nil)
}

// FetchInclusionProof implements client.LogService.
func (r *RemoteProvider) FetchInclusionProof(ctx context.Context, user string, attempt int, commitment []byte) (*logtree.Trace, error) {
	var out TraceMsg
	if err := r.c.Call(ctx, MsgFetchInclusionProof,
		InclusionArgs{User: user, Attempt: attempt, Commitment: commitment}, &out); err != nil {
		return nil, err
	}
	return &out.Trace, nil
}

// RelayRecover implements client.RecoveryService. The context rides the
// wire: cancelling aborts the daemon-side relay and its in-flight HSM
// exchange.
func (r *RemoteProvider) RelayRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	var out RecoverReplyMsg
	if err := r.c.Call(ctx, MsgRelayRecover, req, &out); err != nil {
		return nil, err
	}
	return &out.Reply, nil
}

// FetchEscrowedReplies implements client.RecoveryService.
func (r *RemoteProvider) FetchEscrowedReplies(ctx context.Context, user string) ([]*protocol.RecoveryReply, error) {
	var out EscrowMsg
	if err := r.c.Call(ctx, MsgFetchEscrow, UserArg{User: user}, &out); err != nil {
		return nil, err
	}
	replies := make([]*protocol.RecoveryReply, len(out.Replies))
	for i := range out.Replies {
		replies[i] = &out.Replies[i]
	}
	return replies, nil
}

// ClearEscrow implements client.RecoveryService.
func (r *RemoteProvider) ClearEscrow(ctx context.Context, user string) error {
	return r.c.Call(ctx, MsgClearEscrow, UserArg{User: user}, nil)
}

// LogEntries fetches the public log (external auditor path).
func (r *RemoteProvider) LogEntries(ctx context.Context) ([]logtree.Entry, error) {
	var out EntriesMsg
	err := r.c.Call(ctx, MsgLogEntries, Nothing{}, &out)
	return out.Entries, err
}

// LogDigest fetches the provider's committed digest.
func (r *RemoteProvider) LogDigest(ctx context.Context) (logtree.Digest, error) {
	var out DigestMsg
	err := r.c.Call(ctx, MsgLogDigest, Nothing{}, &out)
	return out.Digest, err
}

// Status fetches fleet registration progress.
func (r *RemoteProvider) Status(ctx context.Context) (FleetStatus, error) {
	var st FleetStatus
	err := r.c.Call(ctx, MsgStatus, Nothing{}, &st)
	return st, err
}

// InstallRosters asks the provider to push the signing roster fleet-wide.
func (r *RemoteProvider) InstallRosters(ctx context.Context) error {
	return r.c.Call(ctx, MsgInstallRosters, Nothing{}, nil)
}

// RegisterHSM announces a provisioned HSM daemon (used by cmd/hsmd).
func (r *RemoteProvider) RegisterHSM(ctx context.Context, args RegisterArgs) error {
	return r.c.Call(ctx, MsgRegister, args, nil)
}

// Close tears down the connection.
func (r *RemoteProvider) Close() error { return r.c.Close() }
