package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/provider"
)

// ProviderDaemon hosts the untrusted data-center side as a network service.
type ProviderDaemon struct {
	mu       sync.Mutex
	cfg      FleetConfig
	scheme   aggsig.Scheme
	p        *provider.Provider
	fleetPKs [][]byte // BFE public keys by HSM id
	aggPKs   [][]byte
	hsmAddrs map[int]string
	remotes  map[int]*RemoteHSM
	rosterOK bool
}

// NewProviderDaemon builds the daemon state for a fleet of cfg.NumHSMs.
func NewProviderDaemon(cfg FleetConfig) (*ProviderDaemon, error) {
	scheme, err := schemeByName(cfg.SchemeName)
	if err != nil {
		return nil, err
	}
	logCfg := dlog.Config{
		NumChunks:     cfg.LogChunks,
		AuditsPerHSM:  cfg.AuditsPerHSM,
		MinSignerFrac: cfg.MinSignerFrac,
		Deterministic: cfg.Deterministic,
		Scheme:        scheme,
	}
	engine := provider.EngineConfig{
		BatchWindow:  time.Duration(cfg.EpochBatchMS) * time.Millisecond,
		MaxBatch:     cfg.EpochMaxBatch,
		EpochWorkers: cfg.EpochWorkers,
	}
	return &ProviderDaemon{
		cfg:      cfg,
		scheme:   scheme,
		p:        provider.NewWithEngine(logCfg, engine),
		fleetPKs: make([][]byte, cfg.NumHSMs),
		aggPKs:   make([][]byte, cfg.NumHSMs),
		hsmAddrs: make(map[int]string),
		remotes:  make(map[int]*RemoteHSM),
	}, nil
}

func schemeByName(name string) (aggsig.Scheme, error) {
	switch name {
	case "", "bls12381-multisig":
		return aggsig.BLS(), nil
	case "ecdsa-concat":
		return aggsig.ECDSAConcat(), nil
	default:
		return nil, fmt.Errorf("transport: unknown signature scheme %q", name)
	}
}

// ProviderService is the RPC surface of the provider daemon.
type ProviderService struct {
	d *ProviderDaemon
}

// Service returns the RPC receiver.
func (d *ProviderDaemon) Service() *ProviderService { return &ProviderService{d} }

// Config hands the fleet configuration to HSM daemons.
func (s *ProviderService) Config(_ Nothing, out *FleetConfig) error {
	*out = s.d.cfg
	return nil
}

// OracleGet serves an HSM's outsourced block read.
func (s *ProviderService) OracleGet(args OracleArgs, out *[]byte) error {
	b, err := s.d.p.OracleFor(args.HSMID).Get(args.Addr)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// OraclePut serves an HSM's outsourced block write.
func (s *ProviderService) OraclePut(args OracleArgs, _ *Nothing) error {
	return s.d.p.OracleFor(args.HSMID).Put(args.Addr, args.Block)
}

// Register records a provisioned HSM daemon and connects back to it.
func (s *ProviderService) Register(args RegisterArgs, _ *Nothing) error {
	d := s.d
	if args.ID < 0 || args.ID >= d.cfg.NumHSMs {
		return fmt.Errorf("transport: HSM id %d outside fleet of %d", args.ID, d.cfg.NumHSMs)
	}
	remote, err := NewRemoteHSM(args.ID, args.Addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.fleetPKs[args.ID] = args.BFEPub
	d.aggPKs[args.ID] = args.AggSigPub
	d.hsmAddrs[args.ID] = args.Addr
	d.remotes[args.ID] = remote
	d.mu.Unlock()
	d.p.Register(remote)
	return nil
}

// Status reports registration progress.
func (s *ProviderService) Status(_ Nothing, out *FleetStatus) error {
	d := s.d
	d.mu.Lock()
	defer d.mu.Unlock()
	st := FleetStatus{Expected: d.cfg.NumHSMs, RosterSent: d.rosterOK}
	for id := range d.remotes {
		st.Registered = append(st.Registered, id)
	}
	*out = st
	return nil
}

// InstallRosters pushes the complete signing roster to every registered HSM
// once the fleet is full.
func (s *ProviderService) InstallRosters(_ Nothing, _ *Nothing) error {
	d := s.d
	d.mu.Lock()
	if len(d.remotes) != d.cfg.NumHSMs {
		n := len(d.remotes)
		d.mu.Unlock()
		return fmt.Errorf("transport: only %d of %d HSMs registered", n, d.cfg.NumHSMs)
	}
	roster := make([][]byte, d.cfg.NumHSMs)
	copy(roster, d.aggPKs)
	remotes := make([]*RemoteHSM, 0, len(d.remotes))
	for _, r := range d.remotes {
		remotes = append(remotes, r)
	}
	d.mu.Unlock()
	for _, r := range remotes {
		if err := r.InstallRoster(roster); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.rosterOK = true
	d.mu.Unlock()
	return nil
}

// FetchFleet returns all HSM BFE public keys in fleet order. Clients should
// verify the digest out of band (§2).
func (s *ProviderService) FetchFleet(_ Nothing, out *[][]byte) error {
	d := s.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, pk := range d.fleetPKs {
		if pk == nil {
			return fmt.Errorf("transport: HSM %d not yet registered", id)
		}
	}
	*out = append([][]byte(nil), d.fleetPKs...)
	return nil
}

// StoreCiphertext uploads a backup.
func (s *ProviderService) StoreCiphertext(args StoreCiphertextArgs, _ *Nothing) error {
	return s.d.p.StoreCiphertext(args.User, args.CT)
}

// FetchCiphertext downloads the latest backup.
func (s *ProviderService) FetchCiphertext(user string, out *[]byte) error {
	b, err := s.d.p.FetchCiphertext(user)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// AttemptCount returns the next free attempt number.
func (s *ProviderService) AttemptCount(user string, out *int) error {
	*out = s.d.p.AttemptCount(user)
	return nil
}

// ReserveAttempt atomically allocates the next attempt number for a user.
func (s *ProviderService) ReserveAttempt(user string, out *int) error {
	n, err := s.d.p.ReserveAttempt(user)
	if err != nil {
		return err
	}
	*out = n
	return nil
}

// LogRecoveryAttempt queues a recovery attempt for the next epoch.
func (s *ProviderService) LogRecoveryAttempt(args LogAttemptArgs, _ *Nothing) error {
	return s.d.p.LogRecoveryAttempt(args.User, args.Attempt, args.Commitment)
}

// RunEpoch forces one log-update epoch across the fleet.
func (s *ProviderService) RunEpoch(_ Nothing, _ *Nothing) error {
	return s.d.p.RunEpoch()
}

// WaitForCommit blocks until the caller's pending log insertions commit
// through the epoch scheduler. net/rpc serves each call on its own
// goroutine, so concurrent clients share one batched epoch here exactly as
// they do in process.
func (s *ProviderService) WaitForCommit(_ Nothing, _ *Nothing) error {
	return s.d.p.WaitForCommit()
}

// FetchInclusionProof serves a log-inclusion proof.
func (s *ProviderService) FetchInclusionProof(args InclusionArgs, out *TraceMsg) error {
	tr, err := s.d.p.FetchInclusionProof(args.User, args.Attempt, args.Commitment)
	if err != nil {
		return err
	}
	out.Trace = *tr
	return nil
}

// RelayRecover forwards a recovery request to its target HSM.
func (s *ProviderService) RelayRecover(req protocol.RecoveryRequest, out *RecoverReplyMsg) error {
	reply, err := s.d.p.RelayRecover(&req)
	if err != nil {
		return err
	}
	out.Reply = *reply
	return nil
}

// FetchEscrowedReplies returns the escrowed replies for a user.
func (s *ProviderService) FetchEscrowedReplies(user string, out *[]protocol.RecoveryReply) error {
	for _, r := range s.d.p.FetchEscrowedReplies(user) {
		*out = append(*out, *r)
	}
	return nil
}

// ClearEscrow drops a user's escrow.
func (s *ProviderService) ClearEscrow(user string, _ *Nothing) error {
	s.d.p.ClearEscrow(user)
	return nil
}

// LogEntries exposes the committed log for external auditors.
func (s *ProviderService) LogEntries(_ Nothing, out *[]logtree.Entry) error {
	*out = s.d.p.LogEntries()
	return nil
}

// LogDigest returns the provider's committed log digest.
func (s *ProviderService) LogDigest(_ Nothing, out *logtree.Digest) error {
	*out = s.d.p.LogDigest()
	return nil
}

// --- client-side proxy ---

// RemoteProvider implements client.ProviderAPI over RPC.
type RemoteProvider struct {
	c *rpcClient
}

// DialProvider connects a client to a provider daemon.
func DialProvider(addr string) (*RemoteProvider, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteProvider{c: &rpcClient{c: c}}, nil
}

// Fleet downloads and parses the fleet's BFE public keys.
func (r *RemoteProvider) Fleet() (*bfe.Fleet, error) {
	var raw [][]byte
	if err := r.c.call("Provider.FetchFleet", Nothing{}, &raw); err != nil {
		return nil, err
	}
	keys := make([]*bfe.PublicKey, len(raw))
	for i, b := range raw {
		pk, err := bfe.PublicKeyFromBytes(b)
		if err != nil {
			return nil, fmt.Errorf("transport: fleet key %d: %w", i, err)
		}
		keys[i] = pk
	}
	return bfe.NewFleet(keys), nil
}

// Config fetches the fleet configuration.
func (r *RemoteProvider) Config() (FleetConfig, error) {
	var cfg FleetConfig
	err := r.c.call("Provider.Config", Nothing{}, &cfg)
	return cfg, err
}

// StoreCiphertext implements client.ProviderAPI.
func (r *RemoteProvider) StoreCiphertext(user string, ct []byte) error {
	return r.c.call("Provider.StoreCiphertext", StoreCiphertextArgs{User: user, CT: ct}, &Nothing{})
}

// FetchCiphertext implements client.ProviderAPI.
func (r *RemoteProvider) FetchCiphertext(user string) ([]byte, error) {
	var out []byte
	err := r.c.call("Provider.FetchCiphertext", user, &out)
	return out, err
}

// AttemptCount implements client.ProviderAPI.
func (r *RemoteProvider) AttemptCount(user string) int {
	var out int
	if err := r.c.call("Provider.AttemptCount", user, &out); err != nil {
		return 0
	}
	return out
}

// ReserveAttempt implements client.ProviderAPI. Unlike the read-only
// AttemptCount, a reservation mutates state the HSM guess limit charges
// against, so RPC failures surface instead of being mistaken for index 0.
func (r *RemoteProvider) ReserveAttempt(user string) (int, error) {
	var out int
	if err := r.c.call("Provider.ReserveAttempt", user, &out); err != nil {
		return 0, err
	}
	return out, nil
}

// LogRecoveryAttempt implements client.ProviderAPI.
func (r *RemoteProvider) LogRecoveryAttempt(user string, attempt int, commitment []byte) error {
	return r.c.call("Provider.LogRecoveryAttempt",
		LogAttemptArgs{User: user, Attempt: attempt, Commitment: commitment}, &Nothing{})
}

// RunEpoch forces an epoch over everything pending (administrative path;
// clients use WaitForCommit).
func (r *RemoteProvider) RunEpoch() error {
	return r.c.call("Provider.RunEpoch", Nothing{}, &Nothing{})
}

// WaitForCommit implements client.ProviderAPI.
func (r *RemoteProvider) WaitForCommit() error {
	return r.c.call("Provider.WaitForCommit", Nothing{}, &Nothing{})
}

// FetchInclusionProof implements client.ProviderAPI.
func (r *RemoteProvider) FetchInclusionProof(user string, attempt int, commitment []byte) (*logtree.Trace, error) {
	var out TraceMsg
	if err := r.c.call("Provider.FetchInclusionProof",
		InclusionArgs{User: user, Attempt: attempt, Commitment: commitment}, &out); err != nil {
		return nil, err
	}
	return &out.Trace, nil
}

// RelayRecover implements client.ProviderAPI.
func (r *RemoteProvider) RelayRecover(req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	var out RecoverReplyMsg
	if err := r.c.call("Provider.RelayRecover", *req, &out); err != nil {
		return nil, err
	}
	return &out.Reply, nil
}

// FetchEscrowedReplies implements client.ProviderAPI.
func (r *RemoteProvider) FetchEscrowedReplies(user string) []*protocol.RecoveryReply {
	var out []protocol.RecoveryReply
	if err := r.c.call("Provider.FetchEscrowedReplies", user, &out); err != nil {
		return nil
	}
	replies := make([]*protocol.RecoveryReply, len(out))
	for i := range out {
		replies[i] = &out[i]
	}
	return replies
}

// ClearEscrow implements client.ProviderAPI.
func (r *RemoteProvider) ClearEscrow(user string) {
	_ = r.c.call("Provider.ClearEscrow", user, &Nothing{})
}

// LogEntries fetches the public log (external auditor path).
func (r *RemoteProvider) LogEntries() ([]logtree.Entry, error) {
	var out []logtree.Entry
	err := r.c.call("Provider.LogEntries", Nothing{}, &out)
	return out, err
}

// LogDigest fetches the provider's committed digest.
func (r *RemoteProvider) LogDigest() (logtree.Digest, error) {
	var out logtree.Digest
	err := r.c.call("Provider.LogDigest", Nothing{}, &out)
	return out, err
}

// Status fetches fleet registration progress.
func (r *RemoteProvider) Status() (FleetStatus, error) {
	var st FleetStatus
	err := r.c.call("Provider.Status", Nothing{}, &st)
	return st, err
}

// InstallRosters asks the provider to push the signing roster fleet-wide.
func (r *RemoteProvider) InstallRosters() error {
	return r.c.call("Provider.InstallRosters", Nothing{}, &Nothing{})
}

// RegisterHSM announces a provisioned HSM daemon (used by cmd/hsmd).
func (r *RemoteProvider) RegisterHSM(args RegisterArgs) error {
	return r.c.call("Provider.Register", args, &Nothing{})
}

// Close tears down the connection.
func (r *RemoteProvider) Close() error { return r.c.close() }

// rpcClient serializes calls (net/rpc clients are concurrency-safe, but we
// also guard Close).
type rpcClient struct {
	mu sync.Mutex
	c  interface {
		Call(string, any, any) error
		Close() error
	}
}

func (r *rpcClient) call(method string, args, reply any) error {
	if r == nil || r.c == nil {
		return errors.New("transport: connection closed")
	}
	return r.c.Call(method, args, reply)
}

func (r *rpcClient) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c.Close()
}
