package transport

// wire_test.go pins the versioned wire protocol: golden bytes for the v2
// handshake and frame layout (so v2 can't silently drift), the v1 net/rpc
// compat shim (so pre-v2 clients keep parsing), and the cancellation
// semantics — a client-side deadline aborts the matching server-side
// handler, and a dropped connection aborts everything in flight.

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// --- golden framing ---

// TestWireGoldenHandshake pins the 5-byte v2 preamble and the server's
// accept byte.
func TestWireGoldenHandshake(t *testing.T) {
	pre := append(append([]byte(nil), wireMagic[:]...), WireV2)
	if got, want := hex.EncodeToString(pre), "5350524302"; got != want {
		t.Fatalf("v2 preamble drifted: %s want %s", got, want)
	}
	if WireV1 != 1 || WireV2 != 2 {
		t.Fatal("protocol version numbering drifted")
	}
}

// goldenFrames builds the representative v2 frames the golden test pins.
// Gob allocates type descriptors process-globally in first-use order, so
// byte-exact output requires a process that has encoded nothing else —
// TestWireGoldenFrames reruns itself in a clean child process for that.
func goldenFrames() []struct{ name, hex string } {
	mustEnc := func(v any) []byte {
		b, err := encodeGob(v)
		if err != nil {
			panic(err)
		}
		return b
	}
	return []struct{ name, hex string }{
		{"store-call", hex.EncodeToString(appendFrame(nil, frameCall, MsgStoreCiphertext, 7,
			mustEnc(StoreCiphertextArgs{User: "alice", CT: []byte{1, 2, 3}})))},
		{"fetch-call", hex.EncodeToString(appendFrame(nil, frameCall, MsgFetchCiphertext, 8,
			mustEnc(UserArg{User: "alice"})))},
		{"reply", hex.EncodeToString(appendFrame(nil, frameReply, MsgFetchCiphertext, 8,
			mustEnc(wireReply{Body: []byte{0xaa}})))},
		{"cancel", hex.EncodeToString(appendFrame(nil, frameCancel, MsgRelayRecover, 9, nil))},
	}
}

// wireGolden is the frozen v2 framing: header layout (kind | msg tag | id
// | length) and the standalone-gob payload encoding. If any of these
// bytes change, the protocol version must be bumped instead.
var wireGolden = map[string]string{
	"store-call": "01170000000700000041307f0301011353746f7265436970686572746578744172677301ff80000102010455736572010c0001024354010a0000000fff800105616c696365010301020300",
	"fetch-call": "0118000000080000002a1eff81030101075573657241726701ff82000101010455736572010c0000000aff820105616c69636500",
	"reply":      "0218000000080000003028ff8303010109776972655265706c7901ff840001020103457272010c000104426f6479010a00000006ff840201aa00",
	"cancel":     "031f0000000900000000",
}

// TestWireGoldenFrames pins the exact frame bytes against wireGolden. The
// byte comparison runs in a freshly forked child (clean gob state); the
// parent additionally checks the frames round-trip through readFrame.
func TestWireGoldenFrames(t *testing.T) {
	if os.Getenv("WIRE_GOLDEN_CHILD") == "1" {
		for _, f := range goldenFrames() {
			fmt.Printf("GOLDEN %s %s\n", f.name, f.hex)
		}
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWireGoldenFrames$", "-test.v")
	cmd.Env = append(os.Environ(), "WIRE_GOLDEN_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("golden child failed: %v\n%s", err, out)
	}
	seen := 0
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "GOLDEN" {
			continue
		}
		seen++
		name, got := fields[1], fields[2]
		if want, ok := wireGolden[name]; !ok || got != want {
			t.Errorf("%s frame drifted:\n got %s\nwant %s", name, got, want)
		}
	}
	if seen != len(wireGolden) {
		t.Fatalf("child emitted %d frames, want %d:\n%s", seen, len(wireGolden), out)
	}

	// In this (dirty) process the payload type ids may differ, but every
	// frame must still round-trip through the reader, and the golden
	// payloads must decode with a fresh decoder — self-contained frames.
	var stream bytes.Buffer
	for _, f := range goldenFrames() {
		raw, err := hex.DecodeString(f.hex)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(raw)
	}
	for _, f := range goldenFrames() {
		kind, msg, id, payload, err := readFrame(&stream)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if got := hex.EncodeToString(appendFrame(nil, kind, msg, id, payload)); got != f.hex {
			t.Fatalf("%s did not round-trip", f.name)
		}
	}
	var store StoreCiphertextArgs
	raw, _ := hex.DecodeString(wireGolden["store-call"])
	if err := decodeGob(raw[wireHeaderLen:], &store); err != nil {
		t.Fatalf("frozen v2 payload no longer parses: %v", err)
	}
	if store.User != "alice" || !bytes.Equal(store.CT, []byte{1, 2, 3}) {
		t.Fatalf("frozen v2 payload decoded wrong: %+v", store)
	}
}

// TestWireMessageTagsFrozen pins the tag assignments: tags are the wire
// contract, append-only.
func TestWireMessageTagsFrozen(t *testing.T) {
	frozen := map[string]byte{
		"ProviderConfig": 0x10, "OracleGet": 0x11, "OraclePut": 0x12,
		"Register": 0x13, "Status": 0x14, "InstallRosters": 0x15,
		"FetchFleet": 0x16, "StoreCiphertext": 0x17, "FetchCiphertext": 0x18,
		"AttemptCount": 0x19, "ReserveAttempt": 0x1a, "LogRecoveryAttempt": 0x1b,
		"RunEpoch": 0x1c, "WaitForCommit": 0x1d, "FetchInclusionProof": 0x1e,
		"RelayRecover": 0x1f, "FetchEscrow": 0x20, "ClearEscrow": 0x21,
		"LogEntries": 0x22, "LogDigest": 0x23,
		"HSMRecover": 0x30, "HSMInstallRoster": 0x31, "HSMChooseChunks": 0x32,
		"HSMHandleAudit": 0x33, "HSMHandleCommit": 0x34,
	}
	got := map[string]byte{
		"ProviderConfig": MsgProviderConfig, "OracleGet": MsgOracleGet, "OraclePut": MsgOraclePut,
		"Register": MsgRegister, "Status": MsgStatus, "InstallRosters": MsgInstallRosters,
		"FetchFleet": MsgFetchFleet, "StoreCiphertext": MsgStoreCiphertext, "FetchCiphertext": MsgFetchCiphertext,
		"AttemptCount": MsgAttemptCount, "ReserveAttempt": MsgReserveAttempt, "LogRecoveryAttempt": MsgLogRecoveryAttempt,
		"RunEpoch": MsgRunEpoch, "WaitForCommit": MsgWaitForCommit, "FetchInclusionProof": MsgFetchInclusionProof,
		"RelayRecover": MsgRelayRecover, "FetchEscrow": MsgFetchEscrow, "ClearEscrow": MsgClearEscrow,
		"LogEntries": MsgLogEntries, "LogDigest": MsgLogDigest,
		"HSMRecover": MsgHSMRecover, "HSMInstallRoster": MsgHSMInstallRoster, "HSMChooseChunks": MsgHSMChooseChunks,
		"HSMHandleAudit": MsgHSMHandleAudit, "HSMHandleCommit": MsgHSMHandleCommit,
	}
	for name, tag := range frozen {
		if got[name] != tag {
			t.Errorf("tag %s renumbered: 0x%02x want 0x%02x", name, got[name], tag)
		}
	}
}

// --- v1 compat shim ---

// TestWireV1CompatShim: a legacy net/rpc client (the pre-v2 wire format,
// no preamble) dials the same port a v2 fleet serves on and performs real
// calls through the sniffing shim.
func TestWireV1CompatShim(t *testing.T) {
	paddr, shutdown := startFleet(t, 2)
	defer shutdown()

	legacy, err := rpc.Dial("tcp", paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()

	// Store and fetch a ciphertext entirely over v1 frames.
	if err := legacy.Call("Provider.StoreCiphertext",
		StoreCiphertextArgs{User: "v1-user", CT: []byte("legacy bytes")}, &Nothing{}); err != nil {
		t.Fatal(err)
	}
	var blob []byte
	if err := legacy.Call("Provider.FetchCiphertext", "v1-user", &blob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, []byte("legacy bytes")) {
		t.Fatalf("v1 round trip corrupted: %q", blob)
	}
	var n int
	if err := legacy.Call("Provider.AttemptCount", "v1-user", &n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("v1 AttemptCount = %d", n)
	}

	// A v2 client on the same port sees the v1 client's writes: one state,
	// two framings.
	rp, err := DialProvider(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	got, err := rp.FetchCiphertext(tctx, "v1-user")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("v1 and v2 see different state")
	}
}

// TestWireRejectsUnknownVersion: a client offering a future version gets
// the reject byte, not a hang.
func TestWireRejectsUnknownVersion(t *testing.T) {
	reg := NewRegistry()
	ln, addr, err := Serve("X", nil, reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(append(append([]byte(nil), wireMagic[:]...), 99)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatalf("server accepted unknown version with %d", buf[0])
	}
}

// --- cancellation propagation ---

// testHungService builds a registry with one handler that blocks until its
// context fires, reporting the observed cancellation.
func testHungService(t *testing.T) (addr string, entered <-chan struct{}, aborted <-chan error, cleanup func()) {
	t.Helper()
	const msgHang = 0x7f
	enteredCh := make(chan struct{}, 8)
	abortedCh := make(chan error, 8)
	reg := NewRegistry()
	handleWire(reg, msgHang, func(ctx context.Context, _ *Nothing) (*Nothing, error) {
		enteredCh <- struct{}{}
		<-ctx.Done()
		abortedCh <- ctx.Err()
		return nil, ctx.Err()
	})
	ln, addr, err := Serve("X", nil, reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, enteredCh, abortedCh, func() { ln.Close() }
}

// TestWireClientDeadlineAbortsServerHandler: the satellite's transport
// acceptance — a client-side deadline on an in-flight call cancels the
// server-side handler via a cancel frame.
func TestWireClientDeadlineAbortsServerHandler(t *testing.T) {
	addr, entered, aborted, cleanup := testHungService(t)
	defer cleanup()
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Call(ctx, 0x7f, Nothing{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call returned %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not bound the call")
	}
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}
	select {
	case err := <-aborted:
		if err == nil {
			t.Fatal("handler context not cancelled")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server-side handler outlived the client deadline")
	}
	// The connection stays usable for later calls after a cancel: an
	// unknown-tag call gets an error reply rather than a dead stream.
	if err := c.Call(tctx, 0x70, Nothing{}, nil); err == nil {
		t.Fatal("unknown tag silently succeeded")
	}
}

// TestWireDisconnectAbortsServerHandlers: dropping the connection cancels
// every in-flight handler on it.
func TestWireDisconnectAbortsServerHandlers(t *testing.T) {
	addr, entered, aborted, cleanup := testHungService(t)
	defer cleanup()
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = c.Call(context.Background(), 0x7f, Nothing{}, nil)
	}()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}
	c.Close()
	select {
	case err := <-aborted:
		if err == nil {
			t.Fatal("handler context not cancelled")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server-side handler survived the disconnect")
	}
}

// TestWireOversizePayloadScopedToCall: a payload over the frame limit
// fails its own call with a descriptive error and leaves the multiplexed
// connection usable for everyone else.
func TestWireOversizePayloadScopedToCall(t *testing.T) {
	const msgEcho = 0x7d
	reg := NewRegistry()
	handleWire(reg, msgEcho, func(ctx context.Context, a *BytesReply) (*BytesReply, error) {
		return a, nil
	})
	ln, addr, err := Serve("X", nil, reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	huge := BytesReply{B: make([]byte, maxFramePayload+1)}
	err = c.Call(tctx, msgEcho, huge, nil)
	if err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversize payload returned %v", err)
	}
	// The connection is not poisoned: a normal call still round-trips.
	var out BytesReply
	if err := c.Call(tctx, msgEcho, BytesReply{B: []byte("ok")}, &out); err != nil {
		t.Fatalf("connection dead after oversize call: %v", err)
	}
	if !bytes.Equal(out.B, []byte("ok")) {
		t.Fatal("echo corrupted")
	}
}

// TestWireInFlightCallsSeeErrConnClosed: a Close (or peer drop) must
// surface to blocked callers as the ErrConnClosed sentinel — the same
// error later calls get — so errors.Is-based retry logic works for both.
func TestWireInFlightCallsSeeErrConnClosed(t *testing.T) {
	addr, entered, _, cleanup := testHungService(t)
	defer cleanup()
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	inflight := make(chan error, 1)
	go func() { inflight <- c.Call(context.Background(), 0x7f, Nothing{}, nil) }()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}
	c.Close()
	select {
	case err := <-inflight:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("in-flight call returned %v, not ErrConnClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call never unblocked after Close")
	}
	if err := c.Call(tctx, 0x7f, Nothing{}, nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-Close call returned %v, not ErrConnClosed", err)
	}
}

// TestWireContextErrorsCrossTheWire: a handler that dies with a context
// sentinel surfaces as the same sentinel at the caller (errors.Is works
// across the process boundary).
func TestWireContextErrorsCrossTheWire(t *testing.T) {
	const msgCancelled = 0x7e
	reg := NewRegistry()
	handleWire(reg, msgCancelled, func(ctx context.Context, _ *Nothing) (*Nothing, error) {
		return nil, context.Canceled
	})
	ln, addr, err := Serve("X", nil, reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call(tctx, msgCancelled, Nothing{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("sentinel lost in transit: %v", err)
	}
}
