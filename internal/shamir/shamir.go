package shamir

import (
	"errors"
	"fmt"
	"io"

	"safetypin/internal/ff"
)

// Share is one point (X, Y) on the sharing polynomial. X is the share index
// and must be non-zero; Y = f(X).
type Share struct {
	X int
	Y ff.Element //spin:secret
}

// ShareSize is the serialized size of a share: 4-byte big-endian X followed
// by the field element.
const ShareSize = 4 + ff.ElementSize

// Bytes serializes the share.
func (s Share) Bytes() []byte {
	out := make([]byte, ShareSize)
	out[0] = byte(s.X >> 24)
	out[1] = byte(s.X >> 16)
	out[2] = byte(s.X >> 8)
	out[3] = byte(s.X)
	copy(out[4:], s.Y.Bytes())
	return out
}

// ShareFromBytes parses a serialized share.
func ShareFromBytes(b []byte) (Share, error) {
	if len(b) != ShareSize {
		return Share{}, fmt.Errorf("shamir: share must be %d bytes, got %d", ShareSize, len(b))
	}
	x := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	y, err := ff.FromBytes(b[4:])
	if err != nil {
		return Share{}, fmt.Errorf("shamir: parsing share value: %w", err)
	}
	if x == 0 {
		return Share{}, errors.New("shamir: share index zero would reveal the secret")
	}
	return Share{X: x, Y: y}, nil
}

// Split shares secret into n shares such that any t reconstruct it. The
// polynomial's random coefficients are drawn from rng. Shares are issued at
// X = 1..n.
//
//spin:secret secret
func Split(secret ff.Element, t, n int, rng io.Reader) ([]Share, error) {
	if t < 1 {
		return nil, fmt.Errorf("shamir: threshold %d must be at least 1", t)
	}
	if t > n {
		return nil, fmt.Errorf("shamir: threshold %d exceeds share count %d", t, n)
	}
	// f(x) = secret + c1 x + ... + c_{t-1} x^{t-1}
	coeffs := make([]ff.Element, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		c, err := ff.Random(rng)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = Share{X: i, Y: eval(coeffs, ff.FromInt64(int64(i)))}
	}
	return shares, nil
}

// eval computes the polynomial with the given coefficients (low-degree first)
// at x via Horner's rule.
//
//spin:secret coeffs
func eval(coeffs []ff.Element, x ff.Element) ff.Element {
	acc := ff.Zero()
	for i := len(coeffs) - 1; i >= 0; i-- {
		//spinlint:ignore ctsecret ff is big.Int-backed and wholly variable-time; a CT 2^255-19 field is a ROADMAP residual
		acc = acc.Mul(x).Add(coeffs[i])
	}
	return acc
}

// Reconstruct recovers the secret from at least t shares by Lagrange
// interpolation at x = 0. Shares with duplicate X values are rejected: they
// either carry no extra information or witness corruption.
func Reconstruct(shares []Share, t int) (ff.Element, error) {
	if len(shares) < t {
		return ff.Element{}, fmt.Errorf("shamir: have %d shares, need %d", len(shares), t)
	}
	use := shares[:t]
	seen := make(map[int]bool, t)
	for _, s := range use {
		if s.X == 0 {
			return ff.Element{}, errors.New("shamir: share with index zero")
		}
		if seen[s.X] {
			return ff.Element{}, fmt.Errorf("shamir: duplicate share index %d", s.X)
		}
		seen[s.X] = true
	}
	// secret = Σ_j y_j · Π_{m≠j} x_m / (x_m − x_j)
	secret := ff.Zero()
	for j, sj := range use {
		num := ff.One()
		den := ff.One()
		xj := ff.FromInt64(int64(sj.X))
		for m, sm := range use {
			if m == j {
				continue
			}
			xm := ff.FromInt64(int64(sm.X))
			num = num.Mul(xm)
			den = den.Mul(xm.Sub(xj))
		}
		lj, err := num.Div(den)
		if err != nil {
			return ff.Element{}, fmt.Errorf("shamir: degenerate share set: %w", err)
		}
		//spinlint:ignore ctsecret ff is big.Int-backed and wholly variable-time; a CT 2^255-19 field is a ROADMAP residual
		secret = secret.Add(sj.Y.Mul(lj))
	}
	return secret, nil
}

// SplitBytes is a convenience wrapper that embeds a short secret (≤ 31
// bytes) into the field before splitting.
//
//spin:secret secret
func SplitBytes(secret []byte, t, n int, rng io.Reader) ([]Share, error) {
	e, err := ff.Embed(secret)
	if err != nil {
		return nil, err
	}
	return Split(e, t, n, rng)
}

// ReconstructBytes inverts SplitBytes.
func ReconstructBytes(shares []Share, t int) ([]byte, error) {
	e, err := Reconstruct(shares, t)
	if err != nil {
		return nil, err
	}
	return ff.Extract(e)
}
