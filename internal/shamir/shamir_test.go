package shamir

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"safetypin/internal/ff"
	"safetypin/internal/prg"
)

func TestSplitReconstructExact(t *testing.T) {
	secret := ff.MustRandom()
	shares, err := Split(secret, 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(shares[:3], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("reconstruction from first t shares failed")
	}
}

func TestReconstructAnySubset(t *testing.T) {
	secret := ff.MustRandom()
	shares, err := Split(secret, 3, 6, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// every 3-subset of 6 shares must reconstruct
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			for k := j + 1; k < 6; k++ {
				got, err := Reconstruct([]Share{shares[i], shares[j], shares[k]}, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(secret) {
					t.Fatalf("subset (%d,%d,%d) failed", i, j, k)
				}
			}
		}
	}
}

func TestThresholdMinusOneRevealsNothing(t *testing.T) {
	// With t-1 shares fixed, every candidate secret is consistent with some
	// polynomial: check that reconstructing with a forged t-th share can
	// produce an arbitrary target value, i.e. t-1 shares do not determine
	// the secret.
	secret := ff.MustRandom()
	shares, err := Split(secret, 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	partial := shares[:2]
	// Forge third shares and observe that outcomes vary (are not pinned to
	// the true secret).
	sawDifferent := false
	for i := 0; i < 8; i++ {
		forged := Share{X: 5, Y: ff.MustRandom()}
		got, err := Reconstruct(append(append([]Share{}, partial...), forged), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Fatal("t-1 shares appear to determine the secret")
	}
}

func TestThresholdOne(t *testing.T) {
	secret := ff.MustRandom()
	shares, err := Split(secret, 1, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		got, err := Reconstruct([]Share{s}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			t.Fatal("t=1 share should equal the secret")
		}
	}
}

func TestFullThreshold(t *testing.T) {
	secret := ff.MustRandom()
	shares, err := Split(secret, 5, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(shares, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("t=n reconstruction failed")
	}
	if _, err := Reconstruct(shares[:4], 5); err == nil {
		t.Fatal("expected error with too few shares")
	}
}

func TestParameterValidation(t *testing.T) {
	secret := ff.MustRandom()
	if _, err := Split(secret, 0, 5, rand.Reader); err == nil {
		t.Fatal("expected error for t=0")
	}
	if _, err := Split(secret, 6, 5, rand.Reader); err == nil {
		t.Fatal("expected error for t>n")
	}
}

func TestDuplicateShareRejected(t *testing.T) {
	secret := ff.MustRandom()
	shares, _ := Split(secret, 2, 3, rand.Reader)
	if _, err := Reconstruct([]Share{shares[0], shares[0]}, 2); err == nil {
		t.Fatal("expected duplicate-index rejection")
	}
}

func TestZeroIndexRejected(t *testing.T) {
	if _, err := Reconstruct([]Share{{X: 0, Y: ff.One()}, {X: 1, Y: ff.One()}}, 2); err == nil {
		t.Fatal("expected zero-index rejection")
	}
}

func TestShareSerializationRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []byte, x uint16) bool {
		s := Share{X: int(x) + 1, Y: ff.FromInt64(int64(len(raw)) + 7)}
		got, err := ShareFromBytes(s.Bytes())
		if err != nil {
			return false
		}
		return got.X == s.X && got.Y.Equal(s.Y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShareFromBytesRejects(t *testing.T) {
	if _, err := ShareFromBytes([]byte{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	z := Share{X: 0, Y: ff.One()}.Bytes()
	if _, err := ShareFromBytes(z); err == nil {
		t.Fatal("expected zero-index error")
	}
}

func TestSplitBytesRoundTrip(t *testing.T) {
	err := quick.Check(func(msg []byte, tRaw, extraRaw uint8) bool {
		if len(msg) > ff.MaxSecretLen {
			msg = msg[:ff.MaxSecretLen]
		}
		th := int(tRaw%8) + 1
		n := th + int(extraRaw%8)
		shares, err := SplitBytes(msg, th, n, rand.Reader)
		if err != nil {
			return false
		}
		got, err := ReconstructBytes(shares[n-th:], th)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWithPRG(t *testing.T) {
	// Using a deterministic rng must yield identical shares: needed nowhere
	// in the protocol but pins down that Split's randomness comes only from
	// rng (no hidden global state).
	secret := ff.FromInt64(12345)
	a, err := Split(secret, 3, 5, prg.New("shamir-test", []byte("seed")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(secret, 3, 5, prg.New("shamir-test", []byte("seed")))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].X != b[i].X || !a[i].Y.Equal(b[i].Y) {
			t.Fatal("Split not deterministic under deterministic rng")
		}
	}
}

func TestPaperParameters(t *testing.T) {
	// n = 40, t = 20: the paper's cluster configuration.
	secret := ff.MustRandom()
	shares, err := Split(secret, 20, 40, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a random f_live-style subset (keep exactly t).
	got, err := Reconstruct(shares[11:31], 20)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("paper-parameter reconstruction failed")
	}
}

func BenchmarkSplit20of40(b *testing.B) {
	secret := ff.MustRandom()
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, 20, 40, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct20of40(b *testing.B) {
	secret := ff.MustRandom()
	shares, _ := Split(secret, 20, 40, rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(shares[:20], 20); err != nil {
			b.Fatal(err)
		}
	}
}
