// Package shamir implements t-of-n Shamir secret sharing over the prime
// field of package ff.
//
// SafetyPin's location-hiding encryption (Figure 15) splits a fresh AES
// transport key into n shares with recovery threshold t = n/2 and encrypts
// one share to each HSM in the client's hidden cluster. Any t shares
// reconstruct the key; t−1 shares are information-theoretically independent
// of it.
package shamir
