// Package logtree implements the authenticated dictionary underlying
// SafetyPin's distributed log (§6.1, Appendix B.2).
//
// The service provider stores the full log — a list of identifier→value
// pairs in which each identifier appears at most once — while HSMs hold only
// a constant-size digest. The provider can produce:
//
//   - inclusion proofs: (id, val) is in the log with digest d,
//   - absence proofs: id is undefined in the log with digest d,
//   - extension proofs: digest d′ represents the log with digest d plus a
//     given batch of fresh insertions (the append-only property).
//
// Nissim–Naor build this from a Merkle binary search tree; we use the
// equivalent canonical structure that avoids rebalancing entirely: a
// path-compressed binary Merkle trie ("Patricia trie") keyed by H(id). The
// shape of the trie is a pure function of the key set, so an extension proof
// is simply the search path for the new key — the verifier re-executes the
// insertion on that path and obtains the unique new digest.
//
// Soundness rests on collision resistance of SHA-256 and on the audit
// protocol in package dlog: every accepted digest is reached from the empty
// digest through verified single-insertion steps, which keeps the committed
// trie canonical, and in a canonical trie the search path for an id is
// unique, so no provider can prove absence of a present id (or re-prove a
// different value for it).
package logtree
