package logtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func ids(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("user-%d", i))
	}
	return out
}

func val(i int) []byte { return []byte(fmt.Sprintf("commit-%d", i)) }

func buildTree(t testing.TB, n int) *Tree {
	t.Helper()
	tr := New()
	for i, id := range ids(n) {
		if err := tr.Insert(id, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestEmptyDigestStable(t *testing.T) {
	if New().Digest() != EmptyDigest() {
		t.Fatal("empty tree digest != EmptyDigest")
	}
}

func TestInsertAndGet(t *testing.T) {
	tr := buildTree(t, 100)
	for i, id := range ids(100) {
		got, ok := tr.Get(id)
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%s) = %q, %v", id, got, ok)
		}
	}
	if _, ok := tr.Get([]byte("nonexistent")); ok {
		t.Fatal("Get returned a value for an absent id")
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr := buildTree(t, 10)
	if err := tr.Insert([]byte("user-3"), []byte("other")); err == nil {
		t.Fatal("duplicate identifier accepted")
	}
}

func TestDigestOrderIndependent(t *testing.T) {
	// The trie is canonical: any insertion order yields the same digest.
	n := 50
	base := buildTree(t, n)
	perm := rand.New(rand.NewSource(42)).Perm(n)
	shuffled := New()
	for _, i := range perm {
		if err := shuffled.Insert(ids(n)[i], val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if base.Digest() != shuffled.Digest() {
		t.Fatal("digest depends on insertion order")
	}
}

func TestDigestChangesOnInsert(t *testing.T) {
	tr := New()
	seen := map[Digest]bool{tr.Digest(): true}
	for i, id := range ids(20) {
		if err := tr.Insert(id, val(i)); err != nil {
			t.Fatal(err)
		}
		d := tr.Digest()
		if seen[d] {
			t.Fatal("digest repeated after insertion")
		}
		seen[d] = true
	}
}

func TestInclusionProofs(t *testing.T) {
	tr := buildTree(t, 64)
	d := tr.Digest()
	for i, id := range ids(64) {
		p, err := tr.ProveIncludes(id, val(i))
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyIncludes(d, id, val(i), p) {
			t.Fatalf("inclusion proof for %s rejected", id)
		}
	}
}

func TestInclusionProofWrongValueRejected(t *testing.T) {
	tr := buildTree(t, 16)
	d := tr.Digest()
	p, err := tr.ProveIncludes([]byte("user-5"), val(5))
	if err != nil {
		t.Fatal(err)
	}
	if VerifyIncludes(d, []byte("user-5"), []byte("forged"), p) {
		t.Fatal("inclusion proof verified a forged value")
	}
	if VerifyIncludes(d, []byte("user-6"), val(5), p) {
		t.Fatal("inclusion proof verified under wrong id")
	}
}

func TestProveIncludesErrors(t *testing.T) {
	tr := buildTree(t, 4)
	if _, err := tr.ProveIncludes([]byte("ghost"), []byte("v")); err == nil {
		t.Fatal("proof produced for absent id")
	}
	if _, err := tr.ProveIncludes([]byte("user-1"), []byte("wrong")); err == nil {
		t.Fatal("proof produced for wrong value")
	}
}

func TestAbsenceProofs(t *testing.T) {
	tr := buildTree(t, 64)
	d := tr.Digest()
	for i := 0; i < 32; i++ {
		id := []byte(fmt.Sprintf("ghost-%d", i))
		p, err := tr.ProveAbsence(id)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyAbsence(d, id, p) {
			t.Fatalf("absence proof for %s rejected", id)
		}
	}
}

func TestAbsenceOfPresentIDImpossible(t *testing.T) {
	tr := buildTree(t, 64)
	d := tr.Digest()
	if _, err := tr.ProveAbsence([]byte("user-7")); err == nil {
		t.Fatal("prover produced absence proof for present id")
	}
	// A malicious prover replays some other id's trace as an absence proof:
	p, _ := tr.ProveAbsence([]byte("ghost"))
	if VerifyAbsence(d, []byte("user-7"), p) {
		t.Fatal("absence of a present id verified with a foreign trace")
	}
}

func TestAbsenceEmptyTree(t *testing.T) {
	tr := New()
	p, err := tr.ProveAbsence([]byte("anyone"))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyAbsence(tr.Digest(), []byte("anyone"), p) {
		t.Fatal("absence in empty tree rejected")
	}
}

func TestExtensionSingle(t *testing.T) {
	tr := buildTree(t, 20)
	dOld := tr.Digest()
	trace, err := tr.InsertWithProof([]byte("newcomer"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	dNew, err := ApplyExtension(dOld, []byte("newcomer"), []byte("v"), trace)
	if err != nil {
		t.Fatal(err)
	}
	if dNew != tr.Digest() {
		t.Fatal("extension verifier computed a different digest than the tree")
	}
}

func TestExtensionFromEmpty(t *testing.T) {
	tr := New()
	dOld := tr.Digest()
	trace, err := tr.InsertWithProof([]byte("first"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	dNew, err := ApplyExtension(dOld, []byte("first"), []byte("v"), trace)
	if err != nil {
		t.Fatal(err)
	}
	if dNew != tr.Digest() {
		t.Fatal("extension from empty tree mismatched")
	}
}

func TestExtensionBatch(t *testing.T) {
	tr := buildTree(t, 30)
	dOld := tr.Digest()
	var batch []Entry
	for i := 0; i < 25; i++ {
		batch = append(batch, Entry{ID: []byte(fmt.Sprintf("new-%d", i)), Val: val(i)})
	}
	proof, err := tr.ProveExtends(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyExtends(dOld, tr.Digest(), proof); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionRejectsValueMutation(t *testing.T) {
	// The append-only property: the provider cannot redefine an existing
	// identifier. Any extension "proof" claiming to must fail.
	tr := buildTree(t, 30)
	dOld := tr.Digest()
	// Forge: take a genuine absence trace for a fresh id but claim it
	// inserts over an existing one.
	fresh := tr.Clone()
	trace, err := fresh.InsertWithProof([]byte("fresh"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyExtension(dOld, []byte("user-3"), []byte("mutated"), trace); err == nil {
		t.Fatal("extension rewrote an existing identifier")
	}
}

func TestExtensionRejectsWrongTarget(t *testing.T) {
	tr := buildTree(t, 10)
	dOld := tr.Digest()
	var batch []Entry
	for i := 0; i < 5; i++ {
		batch = append(batch, Entry{ID: []byte(fmt.Sprintf("n-%d", i)), Val: val(i)})
	}
	proof, err := tr.ProveExtends(batch)
	if err != nil {
		t.Fatal(err)
	}
	var bogus Digest
	bogus[0] = 0xFF
	if err := VerifyExtends(dOld, bogus, proof); err == nil {
		t.Fatal("extension proof verified against a bogus target digest")
	}
	if err := VerifyExtends(bogus, tr.Digest(), proof); err == nil {
		t.Fatal("extension proof verified against a bogus source digest")
	}
}

func TestExtensionRejectsDroppedEntry(t *testing.T) {
	// Dropping an entry from the middle of a batch must invalidate it.
	tr := buildTree(t, 10)
	dOld := tr.Digest()
	var batch []Entry
	for i := 0; i < 6; i++ {
		batch = append(batch, Entry{ID: []byte(fmt.Sprintf("n-%d", i)), Val: val(i)})
	}
	proof, err := tr.ProveExtends(batch)
	if err != nil {
		t.Fatal(err)
	}
	dropped := &ExtensionProof{Inserts: append(append([]InsertStep{}, proof.Inserts[:2]...), proof.Inserts[3:]...)}
	if err := VerifyExtends(dOld, tr.Digest(), dropped); err == nil {
		t.Fatal("extension proof with dropped entry verified")
	}
}

func TestTraceTamperRejected(t *testing.T) {
	tr := buildTree(t, 32)
	d := tr.Digest()
	p, _ := tr.ProveIncludes([]byte("user-9"), val(9))
	if len(p.Steps) == 0 {
		t.Skip("degenerate tree shape")
	}
	p.Steps[0].Sibling[3] ^= 1
	if VerifyIncludes(d, []byte("user-9"), val(9), p) {
		t.Fatal("tampered trace accepted")
	}
}

func TestTraceStepOrderEnforced(t *testing.T) {
	tr := buildTree(t, 32)
	d := tr.Digest()
	id := []byte("ghost")
	p, _ := tr.ProveAbsence(id)
	if len(p.Steps) < 2 {
		t.Skip("trace too short to scramble")
	}
	p.Steps[0], p.Steps[1] = p.Steps[1], p.Steps[0]
	if VerifyAbsence(d, id, p) {
		t.Fatal("trace with non-canonical step order accepted")
	}
}

func TestNilAndEmptyTraces(t *testing.T) {
	d := EmptyDigest()
	if VerifyIncludes(d, []byte("x"), []byte("y"), nil) {
		t.Fatal("nil inclusion trace accepted")
	}
	if VerifyAbsence(d, []byte("x"), nil) {
		t.Fatal("nil absence trace accepted")
	}
	if err := VerifyExtends(d, d, nil); err == nil {
		t.Fatal("nil extension proof accepted")
	}
	if VerifyIncludes(d, []byte("x"), []byte("y"), &Trace{Empty: true}) {
		t.Fatal("empty-tree inclusion accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := buildTree(t, 10)
	c := tr.Clone()
	if c.Digest() != tr.Digest() {
		t.Fatal("clone digest differs")
	}
	if err := c.Insert([]byte("only-in-clone"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if c.Digest() == tr.Digest() {
		t.Fatal("clone insertion affected original digest comparison")
	}
	if _, ok := tr.Get([]byte("only-in-clone")); ok {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestQuickInsertLookupDigest(t *testing.T) {
	// Property: for random key/value sets, (a) all inserted pairs prove
	// inclusion, (b) random absent keys prove absence, (c) replaying the
	// entries reproduces the digest.
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(keys [][]byte, probe []byte) bool {
		tr := New()
		inserted := map[string]bool{}
		for i, k := range keys {
			if inserted[string(k)] {
				continue
			}
			if err := tr.Insert(k, val(i)); err != nil {
				return false
			}
			inserted[string(k)] = true
		}
		d := tr.Digest()
		for i, k := range keys {
			if !inserted[string(k)] {
				continue
			}
			_ = i
			v, ok := tr.Get(k)
			if !ok {
				return false
			}
			p, err := tr.ProveIncludes(k, v)
			if err != nil || !VerifyIncludes(d, k, v, p) {
				return false
			}
		}
		if !inserted[string(probe)] {
			p, err := tr.ProveAbsence(probe)
			if err != nil || !VerifyAbsence(d, probe, p) {
				return false
			}
		}
		// replay check (the external-auditor path)
		replay := New()
		for _, e := range tr.Entries() {
			if err := replay.Insert(e.ID, e.Val); err != nil {
				return false
			}
		}
		return replay.Digest() == d
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := buildTree(t, 20000)
	d := tr.Digest()
	p, err := tr.ProveIncludes([]byte("user-19999"), val(19999))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyIncludes(d, []byte("user-19999"), val(19999), p) {
		t.Fatal("large-tree inclusion failed")
	}
	// Path length should be O(log n), far below the 256-bit bound.
	if len(p.Steps) > 64 {
		t.Fatalf("path length %d suspiciously long for 20K entries", len(p.Steps))
	}
}

func BenchmarkInsert10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := New()
		for j := 0; j < 10000; j++ {
			if err := tr.Insert([]byte(fmt.Sprintf("u-%d", j)), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkProveVerifyInclusion(b *testing.B) {
	tr := buildTree(b, 100000)
	d := tr.Digest()
	all := ids(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := all[i%100000]
		p, err := tr.ProveIncludes(id, val(i%100000))
		if err != nil {
			b.Fatal(err)
		}
		if !VerifyIncludes(d, id, val(i%100000), p) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkExtensionStep(b *testing.B) {
	tr := buildTree(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := []byte(fmt.Sprintf("bench-%d", i))
		dOld := tr.Digest()
		trace, err := tr.InsertWithProof(id, []byte("v"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ApplyExtension(dOld, id, []byte("v"), trace); err != nil {
			b.Fatal(err)
		}
	}
}
