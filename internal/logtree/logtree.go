package logtree

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Digest is the constant-size commitment to a log.
type Digest [sha256.Size]byte

// KeyHash is the hashed identifier that keys the trie.
type KeyHash [sha256.Size]byte

// Entry is one identifier→value pair.
type Entry struct {
	ID  []byte
	Val []byte
}

// domain-separation tags
var (
	tagEmpty  = []byte("safetypin/logtree/empty/v1")
	tagLeaf   = []byte{0x00}
	tagBranch = []byte{0x01}
	tagKey    = []byte("safetypin/logtree/key/v1")
	tagVal    = []byte("safetypin/logtree/val/v1")
)

// EmptyDigest returns the digest of the empty log.
func EmptyDigest() Digest { return sha256.Sum256(tagEmpty) }

// HashID maps an identifier to its trie key.
func HashID(id []byte) KeyHash {
	h := sha256.New()
	h.Write(tagKey)
	h.Write(id)
	var out KeyHash
	h.Sum(out[:0])
	return out
}

// HashVal commits to a value.
func HashVal(val []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(tagVal)
	h.Write(val)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// bit returns bit i (MSB-first) of k.
func bit(k KeyHash, i int) byte {
	return (k[i/8] >> (7 - uint(i)%8)) & 1
}

// firstDiffBit returns the index of the first differing bit, or -1 if equal.
func firstDiffBit(a, b KeyHash) int {
	for i := 0; i < len(a); i++ {
		if x := a[i] ^ b[i]; x != 0 {
			off := 0
			for x&0x80 == 0 {
				x <<= 1
				off++
			}
			return i*8 + off
		}
	}
	return -1
}

func leafHash(key KeyHash, valHash [sha256.Size]byte) Digest {
	h := sha256.New()
	h.Write(tagLeaf)
	h.Write(key[:])
	h.Write(valHash[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

func branchHash(bitPos int, left, right Digest) Digest {
	h := sha256.New()
	h.Write(tagBranch)
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(bitPos))
	h.Write(b[:])
	h.Write(left[:])
	h.Write(right[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

// node is either a leaf (children nil) or a branch at bit position bitPos.
type node struct {
	// branch fields
	bitPos      int
	left, right *node
	// leaf fields
	key     KeyHash
	valHash [sha256.Size]byte
	// cached hash
	hash Digest
}

func (n *node) isLeaf() bool { return n.left == nil }

func (n *node) rehash() {
	if n.isLeaf() {
		n.hash = leafHash(n.key, n.valHash)
	} else {
		n.hash = branchHash(n.bitPos, n.left.hash, n.right.hash)
	}
}

// Tree is the provider-side log: the full entry list plus the Merkle trie.
type Tree struct {
	root    *node
	entries []Entry
	index   map[KeyHash]int // key → position in entries
}

// New returns an empty log.
func New() *Tree {
	return &Tree{index: make(map[KeyHash]int)}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return len(t.entries) }

// Entries returns the log contents in insertion order. External auditors
// replay this list to re-derive the digest (§6.3). The returned slice
// aliases internal storage and must not be modified.
func (t *Tree) Entries() []Entry { return t.entries }

// Digest returns the current log digest.
func (t *Tree) Digest() Digest {
	if t.root == nil {
		return EmptyDigest()
	}
	return t.root.hash
}

// Get returns the value stored for id.
func (t *Tree) Get(id []byte) ([]byte, bool) {
	i, ok := t.index[HashID(id)]
	if !ok {
		return nil, false
	}
	return t.entries[i].Val, true
}

// lookupLeaf walks the trie by key bits and returns the reached leaf and the
// search path (branches from root downward). Returns nil leaf for an empty
// tree.
func (t *Tree) lookupLeaf(key KeyHash) (*node, []*node) {
	if t.root == nil {
		return nil, nil
	}
	var path []*node
	cur := t.root
	for !cur.isLeaf() {
		path = append(path, cur)
		if bit(key, cur.bitPos) == 0 {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur, path
}

// ErrDuplicate is returned when inserting an identifier that already exists.
var ErrDuplicate = errors.New("logtree: identifier already defined")

// Insert adds (id, val) to the log, returning ErrDuplicate if the
// identifier is already present.
func (t *Tree) Insert(id, val []byte) error {
	_, err := t.InsertWithProof(id, val)
	return err
}

// InsertWithProof inserts (id, val) and returns the absence trace of id in
// the pre-insertion tree — exactly the extension proof for this single
// insertion (§B.2's ProveExtends, one entry at a time).
func (t *Tree) InsertWithProof(id, val []byte) (*Trace, error) {
	key := HashID(id)
	if _, dup := t.index[key]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, string(id))
	}
	trace := t.trace(key)

	vh := HashVal(val)
	newLeaf := &node{key: key, valHash: vh}
	newLeaf.rehash()

	if t.root == nil {
		t.root = newLeaf
	} else {
		leaf, path := t.lookupLeaf(key)
		d := firstDiffBit(key, leaf.key)
		if d < 0 {
			return nil, fmt.Errorf("logtree: hash collision on id %q", string(id))
		}
		// Find the attachment point: the first node on the path whose
		// branch bit exceeds d (the new branch goes above it); if none, the
		// reached leaf is the sibling.
		attachAt := len(path) // index into path of first branch with bitPos > d
		for i, b := range path {
			if b.bitPos > d {
				attachAt = i
				break
			}
		}
		var sibling *node
		if attachAt == len(path) {
			sibling = leaf
		} else {
			sibling = path[attachAt]
		}
		nb := &node{bitPos: d}
		if bit(key, d) == 0 {
			nb.left, nb.right = newLeaf, sibling
		} else {
			nb.left, nb.right = sibling, newLeaf
		}
		nb.rehash()
		if attachAt == 0 {
			t.root = nb
		} else {
			parent := path[attachAt-1]
			if bit(key, parent.bitPos) == 0 {
				parent.left = nb
			} else {
				parent.right = nb
			}
			for i := attachAt - 1; i >= 0; i-- {
				path[i].rehash()
			}
		}
	}
	t.index[key] = len(t.entries)
	t.entries = append(t.entries, Entry{ID: append([]byte(nil), id...), Val: append([]byte(nil), val...)})
	return trace, nil
}

// Trace is a verifiable search path for an identifier: the branch steps from
// the root down to the reached leaf. The same structure serves as an
// inclusion proof (the leaf matches the id) and an absence proof (it does
// not), and drives extension verification.
type Trace struct {
	Empty bool // tree was empty: no steps, no leaf
	// Steps from root downward. Direction at each step is implied by the
	// queried key's bit at BitPos.
	Steps []TraceStep
	// The leaf reached by the search.
	LeafKey     KeyHash
	LeafValHash [sha256.Size]byte
}

// TraceStep is one branch on the search path.
type TraceStep struct {
	BitPos  int
	Sibling Digest // hash of the child not taken
}

// trace builds the search path for key in the current tree.
func (t *Tree) trace(key KeyHash) *Trace {
	if t.root == nil {
		return &Trace{Empty: true}
	}
	leaf, path := t.lookupLeaf(key)
	tr := &Trace{LeafKey: leaf.key, LeafValHash: leaf.valHash}
	for _, b := range path {
		var sib Digest
		if bit(key, b.bitPos) == 0 {
			sib = b.right.hash
		} else {
			sib = b.left.hash
		}
		tr.Steps = append(tr.Steps, TraceStep{BitPos: b.bitPos, Sibling: sib})
	}
	return tr
}

// ProveIncludes returns an inclusion proof for (id, val), or an error if the
// pair is not in the log.
func (t *Tree) ProveIncludes(id, val []byte) (*Trace, error) {
	key := HashID(id)
	i, ok := t.index[key]
	if !ok || !bytes.Equal(t.entries[i].Val, val) {
		return nil, errors.New("logtree: pair not in log")
	}
	return t.trace(key), nil
}

// ProveAbsence returns an absence proof for id, or an error if present.
func (t *Tree) ProveAbsence(id []byte) (*Trace, error) {
	key := HashID(id)
	if _, ok := t.index[key]; ok {
		return nil, errors.New("logtree: identifier is present")
	}
	return t.trace(key), nil
}

// foldTrace checks the structural validity of a trace for key and returns
// the root digest it implies. Validity: branch bits strictly increase
// downward, and the fold of leaf + siblings reproduces a single root.
func foldTrace(key KeyHash, tr *Trace) (Digest, error) {
	if tr == nil {
		return Digest{}, errors.New("logtree: nil trace")
	}
	if tr.Empty {
		if len(tr.Steps) != 0 {
			return Digest{}, errors.New("logtree: empty trace with steps")
		}
		return EmptyDigest(), nil
	}
	prev := -1
	for _, s := range tr.Steps {
		if s.BitPos <= prev || s.BitPos >= 8*sha256.Size {
			return Digest{}, fmt.Errorf("logtree: non-canonical step order at bit %d", s.BitPos)
		}
		prev = s.BitPos
	}
	h := leafHash(tr.LeafKey, tr.LeafValHash)
	for i := len(tr.Steps) - 1; i >= 0; i-- {
		s := tr.Steps[i]
		if bit(key, s.BitPos) == 0 {
			h = branchHash(s.BitPos, h, s.Sibling)
		} else {
			h = branchHash(s.BitPos, s.Sibling, h)
		}
	}
	return h, nil
}

// leafConsistent reports whether the reached leaf could legitimately lie on
// the search path for key: the leaf's key must agree with the queried key on
// every bit position tested along the path.
func leafConsistent(key KeyHash, tr *Trace) bool {
	for _, s := range tr.Steps {
		if bit(key, s.BitPos) != bit(tr.LeafKey, s.BitPos) {
			return false
		}
	}
	return true
}

// VerifyIncludes checks an inclusion proof for (id, val) against digest d.
func VerifyIncludes(d Digest, id, val []byte, tr *Trace) bool {
	key := HashID(id)
	if tr == nil || tr.Empty {
		return false
	}
	if tr.LeafKey != key || tr.LeafValHash != HashVal(val) {
		return false
	}
	root, err := foldTrace(key, tr)
	return err == nil && root == d
}

// VerifyAbsence checks an absence proof for id against digest d.
func VerifyAbsence(d Digest, id []byte, tr *Trace) bool {
	key := HashID(id)
	if tr == nil {
		return false
	}
	if !tr.Empty {
		if tr.LeafKey == key {
			return false // the search reached id's own leaf: it is present
		}
		if !leafConsistent(key, tr) {
			return false // not the canonical search path for key
		}
	}
	root, err := foldTrace(key, tr)
	return err == nil && root == d
}

// ApplyExtension verifies that tr proves id absent from the log with digest
// d, then computes and returns the unique digest of that log with (id, val)
// inserted. This is the verifier side of a single-insertion extension proof
// (DoesExtend for one entry).
func ApplyExtension(d Digest, id, val []byte, tr *Trace) (Digest, error) {
	key := HashID(id)
	if !VerifyAbsence(d, id, tr) {
		return Digest{}, errors.New("logtree: invalid absence proof for extension")
	}
	newLeaf := leafHash(key, HashVal(val))
	if tr.Empty {
		return newLeaf, nil
	}
	dBit := firstDiffBit(key, tr.LeafKey)
	if dBit < 0 {
		return Digest{}, errors.New("logtree: extension for already-present key")
	}
	// Fold the sub-path strictly below the new branch (steps with BitPos >
	// dBit) to get the sibling subtree's hash.
	split := len(tr.Steps)
	for i, s := range tr.Steps {
		if s.BitPos > dBit {
			split = i
			break
		}
	}
	sub := leafHash(tr.LeafKey, tr.LeafValHash)
	for i := len(tr.Steps) - 1; i >= split; i-- {
		s := tr.Steps[i]
		if bit(key, s.BitPos) == 0 {
			sub = branchHash(s.BitPos, sub, s.Sibling)
		} else {
			sub = branchHash(s.BitPos, s.Sibling, sub)
		}
	}
	var h Digest
	if bit(key, dBit) == 0 {
		h = branchHash(dBit, newLeaf, sub)
	} else {
		h = branchHash(dBit, sub, newLeaf)
	}
	for i := split - 1; i >= 0; i-- {
		s := tr.Steps[i]
		if bit(key, s.BitPos) == 0 {
			h = branchHash(s.BitPos, h, s.Sibling)
		} else {
			h = branchHash(s.BitPos, s.Sibling, h)
		}
	}
	return h, nil
}

// ExtensionProof proves that a sequence of insertions transforms one digest
// into another: one Trace per inserted entry, each against the intermediate
// tree.
type ExtensionProof struct {
	Inserts []InsertStep
}

// InsertStep is one logged insertion with its absence trace.
type InsertStep struct {
	ID, Val []byte
	Trace   *Trace
}

// ProveExtends inserts the batch into the tree and returns the extension
// proof from the pre-batch digest to the post-batch digest.
func (t *Tree) ProveExtends(batch []Entry) (*ExtensionProof, error) {
	p := &ExtensionProof{}
	for _, e := range batch {
		tr, err := t.InsertWithProof(e.ID, e.Val)
		if err != nil {
			return nil, err
		}
		p.Inserts = append(p.Inserts, InsertStep{ID: e.ID, Val: e.Val, Trace: tr})
	}
	return p, nil
}

// VerifyExtends checks that applying the proof's insertions to digest dOld
// yields digest dNew (DoesExtend of §6.1).
func VerifyExtends(dOld, dNew Digest, p *ExtensionProof) error {
	if p == nil {
		return errors.New("logtree: nil extension proof")
	}
	d := dOld
	for i, step := range p.Inserts {
		next, err := ApplyExtension(d, step.ID, step.Val, step.Trace)
		if err != nil {
			return fmt.Errorf("logtree: extension step %d: %w", i, err)
		}
		d = next
	}
	if d != dNew {
		return errors.New("logtree: extension proof does not reach claimed digest")
	}
	return nil
}

// Clone returns an independent deep copy of the log. The provider uses this
// to stage epoch updates without mutating the served state, and auditors use
// it to replay histories.
func (t *Tree) Clone() *Tree {
	c := New()
	for _, e := range t.entries {
		if err := c.Insert(e.ID, e.Val); err != nil {
			panic("logtree: clone of well-formed tree failed: " + err.Error())
		}
	}
	return c
}
