package baseline

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"safetypin/internal/meter"
)

func cluster(t testing.TB, limit int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterSize, limit, rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBackupRecover(t *testing.T) {
	c := cluster(t, 10)
	key := []byte("0123456789abcdef")
	ct, err := Backup(c.PublicKey(), "alice", "123456", key, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover("alice", "123456", ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("wrong key")
	}
}

func TestWrongPINRejected(t *testing.T) {
	c := cluster(t, 10)
	ct, err := Backup(c.PublicKey(), "alice", "123456", []byte("k"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover("alice", "654321", ct); !errors.Is(err, ErrWrongPIN) {
		t.Fatalf("want ErrWrongPIN, got %v", err)
	}
}

func TestAttemptLimitPerHSM(t *testing.T) {
	c := cluster(t, 3)
	ct, err := Backup(c.PublicKey(), "alice", "123456", []byte("k"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	h := c.HSMs()[0]
	for i := 0; i < 3; i++ {
		if _, err := h.Recover("alice", "000000", ct); !errors.Is(err, ErrWrongPIN) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	// Budget spent: even the correct PIN is refused at this HSM.
	if _, err := h.Recover("alice", "123456", ct); !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("want ErrAttemptsExhausted, got %v", err)
	}
	// The structural weakness vs SafetyPin: the guess budget is per-HSM,
	// so the other cluster members still answer — 5× the nominal budget.
	if _, err := c.HSMs()[1].Recover("alice", "123456", ct); err != nil {
		t.Fatalf("second HSM should still serve: %v", err)
	}
}

func TestAnySingleHSMSuffices(t *testing.T) {
	c := cluster(t, 10)
	ct, err := Backup(c.PublicKey(), "bob", "111111", []byte("key"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range c.HSMs() {
		got, err := h.Recover("bob", "111111", ct)
		if err != nil || string(got) != "key" {
			t.Fatalf("HSM %d failed solo recovery: %v", i, err)
		}
	}
}

func TestUserBinding(t *testing.T) {
	c := cluster(t, 10)
	ct, err := Backup(c.PublicKey(), "alice", "123456", []byte("k"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover("mallory", "123456", ct); err == nil {
		t.Fatal("cross-user replay succeeded in baseline")
	}
}

func TestMetering(t *testing.T) {
	ms := []*meter.Meter{meter.New()}
	c, err := NewCluster(1, 10, rand.Reader, ms)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Backup(c.PublicKey(), "alice", "123456", []byte("k"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover("alice", "123456", ct); err != nil {
		t.Fatal(err)
	}
	if ms[0].Get(meter.OpElGamalDecrypt) != 1 {
		t.Fatal("baseline recovery should cost exactly one ElGamal decryption")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 1, rand.Reader, nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func BenchmarkBaselineRecover(b *testing.B) {
	c, err := NewCluster(ClusterSize, 1<<30, rand.Reader, nil)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := Backup(c.PublicKey(), "alice", "123456", []byte("0123456789abcdef"), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Recover("alice", "123456", ct); err != nil {
			b.Fatal(err)
		}
	}
}
