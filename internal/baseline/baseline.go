package baseline

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"safetypin/internal/ecgroup"
	"safetypin/internal/elgamal"
	"safetypin/internal/meter"
)

// ClusterSize is the fixed replication factor used by deployed systems.
const ClusterSize = 5

// DefaultAttemptLimit mirrors the ~10-guess budgets of deployed systems.
const DefaultAttemptLimit = 10

// HSM is one baseline hardware security module. All HSMs in a cluster share
// the cluster keypair (any one can serve a recovery), which is exactly the
// single-point-of-failure property SafetyPin removes.
type HSM struct {
	mu       sync.Mutex
	id       int
	kp       ecgroup.KeyPair
	limit    int
	attempts map[[32]byte]int
	m        *meter.Meter
}

// Cluster is a fixed five-HSM backup cluster.
type Cluster struct {
	hsms []*HSM
	pk   ecgroup.Point
}

// NewCluster provisions a cluster with a shared keypair.
func NewCluster(size, attemptLimit int, rng io.Reader, ms []*meter.Meter) (*Cluster, error) {
	if size < 1 {
		return nil, errors.New("baseline: cluster needs at least one HSM")
	}
	if attemptLimit < 1 {
		attemptLimit = DefaultAttemptLimit
	}
	if rng == nil {
		rng = rand.Reader
	}
	kp, err := ecgroup.GenerateKeyPair(rng)
	if err != nil {
		return nil, err
	}
	c := &Cluster{pk: kp.PK}
	for i := 0; i < size; i++ {
		var m *meter.Meter
		if i < len(ms) {
			m = ms[i]
		}
		c.hsms = append(c.hsms, &HSM{
			id:       i,
			kp:       kp,
			limit:    attemptLimit,
			attempts: make(map[[32]byte]int),
			m:        m,
		})
	}
	return c, nil
}

// PublicKey returns the cluster encryption key.
func (c *Cluster) PublicKey() ecgroup.Point { return c.pk }

// HSMs returns the cluster members.
func (c *Cluster) HSMs() []*HSM { return c.hsms }

// hashPIN computes the salted PIN hash stored inside the ciphertext.
func hashPIN(user, pin string) []byte {
	h := sha256.New()
	h.Write([]byte("baseline/pinhash/v1|"))
	h.Write([]byte(user))
	h.Write([]byte{0})
	h.Write([]byte(pin))
	return h.Sum(nil)
}

// Backup encrypts (PIN hash ‖ recovery key) to the cluster key. It runs
// entirely on the client.
func Backup(clusterPK ecgroup.Point, user, pin string, recoveryKey []byte, rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pt := append(hashPIN(user, pin), recoveryKey...)
	ct, err := elgamal.Encrypt(clusterPK, pt, []byte("baseline/backup/v1|"+user), rng)
	if err != nil {
		return nil, err
	}
	return ct.Bytes(), nil
}

// ErrAttemptsExhausted is returned once a ciphertext's guess budget is
// spent.
var ErrAttemptsExhausted = errors.New("baseline: attempt limit reached for this ciphertext")

// ErrWrongPIN is returned for an incorrect PIN hash.
var ErrWrongPIN = errors.New("baseline: PIN hash mismatch")

// Recover is one HSM's recovery operation: decrypt, compare the client's
// claimed PIN hash, throttle attempts per ciphertext, and release the key.
func (h *HSM) Recover(user, pin string, ctBytes []byte) ([]byte, error) {
	ctID := sha256.Sum256(ctBytes)
	h.mu.Lock()
	if h.attempts[ctID] >= h.limit {
		h.mu.Unlock()
		return nil, ErrAttemptsExhausted
	}
	h.attempts[ctID]++
	h.mu.Unlock()

	ct, err := elgamal.CiphertextFromBytes(ctBytes)
	if err != nil {
		return nil, err
	}
	h.m.Add(meter.OpElGamalDecrypt, 1)
	h.m.Add(meter.OpIORoundTrip, 2)
	h.m.Add(meter.OpIOByte, int64(len(ctBytes)+64))
	pt, err := elgamal.Decrypt(h.kp.SK, h.kp.PK, ct, []byte("baseline/backup/v1|"+user))
	if err != nil {
		return nil, fmt.Errorf("baseline: hsm %d: %w", h.id, err)
	}
	if len(pt) < sha256.Size {
		return nil, errors.New("baseline: malformed plaintext")
	}
	h.m.Add(meter.OpHMAC, 1)
	if !bytes.Equal(pt[:sha256.Size], hashPIN(user, pin)) {
		return nil, ErrWrongPIN
	}
	return append([]byte(nil), pt[sha256.Size:]...), nil
}

// Attempts reports how many guesses this HSM has seen for a ciphertext.
func (h *HSM) Attempts(ctBytes []byte) int {
	ctID := sha256.Sum256(ctBytes)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.attempts[ctID]
}

// Recover runs the client-side baseline recovery: try cluster members until
// one answers (any single HSM suffices — the fault-tolerance story of
// deployed systems, and their security weakness).
func (c *Cluster) Recover(user, pin string, ctBytes []byte) ([]byte, error) {
	var lastErr error
	for _, h := range c.hsms {
		key, err := h.Recover(user, pin, ctBytes)
		if err == nil {
			return key, nil
		}
		lastErr = err
		if errors.Is(err, ErrWrongPIN) {
			return nil, err // guessing again at another HSM would double-spend
		}
	}
	return nil, lastErr
}
