// Package baseline implements the encrypted-backup design the paper
// evaluates against (§9.2), modeled on Google's Cloud Key Vault and Apple's
// iCloud Keychain: the client picks a *fixed* cluster of five HSMs, encrypts
// its recovery key together with a salted hash of its PIN under the
// cluster's public key, and any single cluster HSM decrypts, checks the PIN
// hash, enforces a per-ciphertext attempt limit, and returns the key.
//
// The contrast with SafetyPin is the point of Figure 10 and the security
// discussion: here each cluster HSM is a single point of failure for every
// user assigned to it — compromise one device (or its vendor) and millions
// of backups fall — whereas SafetyPin requires compromising a constant
// fraction of the whole fleet.
package baseline
