package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the digest length.
const HashSize = sha256.Size

// Hash is a Merkle node hash.
type Hash = [HashSize]byte

// Domain-separation prefixes prevent leaf/node confusion attacks.
var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// LeafHash hashes a leaf payload.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write(leafPrefix)
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash hashes an interior node.
func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write(nodePrefix)
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// Tree is an immutable Merkle tree over a list of leaves.
type Tree struct {
	levels [][]Hash // levels[0] = leaf hashes, last level = [root]
	n      int
}

// New builds a tree over the given leaves. At least one leaf is required.
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("merkle: empty leaf set")
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = LeafHash(l)
	}
	t := &Tree{n: len(leaves)}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				// odd node is promoted unchanged
				next = append(next, level[i])
			}
		}
		level = next
		t.levels = append(t.levels, level)
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

// ProofStep is one level of an inclusion proof.
type ProofStep struct {
	Sibling Hash
	Right   bool // sibling sits to the right of the running hash
}

// Proof is a Merkle inclusion proof for one leaf.
type Proof struct {
	Index int
	Steps []ProofStep
}

// Prove returns the inclusion proof for leaf index i.
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("merkle: index %d out of range [0,%d)", i, t.n)
	}
	p := &Proof{Index: i}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		if idx%2 == 0 {
			if idx+1 < len(level) {
				p.Steps = append(p.Steps, ProofStep{Sibling: level[idx+1], Right: true})
			}
			// else: promoted, no step
		} else {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[idx-1], Right: false})
		}
		idx /= 2
	}
	return p, nil
}

// Verify checks that leaf data sits at exactly index p.Index of an n-leaf
// tree with the given root. Binding the index matters: an HSM that audits
// chunk i must not accept chunk j's data in its place.
func Verify(root Hash, n int, data []byte, p *Proof) bool {
	if p == nil || p.Index < 0 || p.Index >= n {
		return false
	}
	h := LeafHash(data)
	idx, size := p.Index, n
	step := 0
	for size > 1 {
		if idx%2 == 0 && idx+1 == size {
			// lonely rightmost node is promoted; no sibling at this level
		} else {
			if step >= len(p.Steps) {
				return false
			}
			s := p.Steps[step]
			wantRight := idx%2 == 0
			if s.Right != wantRight {
				return false
			}
			if s.Right {
				h = nodeHash(h, s.Sibling)
			} else {
				h = nodeHash(s.Sibling, h)
			}
			step++
		}
		idx /= 2
		size = (size + 1) / 2
	}
	return step == len(p.Steps) && h == root
}
