package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestEmptyRejected(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestSingleLeaf(t *testing.T) {
	tr, err := New(leaves(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(tr.Root(), 1, []byte("leaf-0"), p) {
		t.Fatal("single-leaf proof failed")
	}
}

func TestAllSizesAllIndices(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tr, err := New(ls)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatal(err)
			}
			if !Verify(tr.Root(), n, ls[i], p) {
				t.Fatalf("n=%d i=%d proof rejected", n, i)
			}
		}
	}
}

func TestWrongLeafRejected(t *testing.T) {
	tr, _ := New(leaves(10))
	p, _ := tr.Prove(3)
	if Verify(tr.Root(), 10, []byte("leaf-4"), p) {
		t.Fatal("proof for leaf 3 verified leaf 4's data")
	}
}

func TestWrongRootRejected(t *testing.T) {
	tr, _ := New(leaves(10))
	other, _ := New(leaves(11))
	p, _ := tr.Prove(3)
	if Verify(other.Root(), 11, []byte("leaf-3"), p) {
		t.Fatal("proof verified under wrong root")
	}
}

func TestTamperedProofRejected(t *testing.T) {
	tr, _ := New(leaves(16))
	p, _ := tr.Prove(7)
	p.Steps[1].Sibling[0] ^= 1
	if Verify(tr.Root(), 16, []byte("leaf-7"), p) {
		t.Fatal("tampered proof accepted")
	}
}

func TestNilProofRejected(t *testing.T) {
	tr, _ := New(leaves(4))
	if Verify(tr.Root(), 4, []byte("leaf-0"), nil) {
		t.Fatal("nil proof accepted")
	}
}

func TestProveOutOfRange(t *testing.T) {
	tr, _ := New(leaves(4))
	if _, err := tr.Prove(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tr.Prove(4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRootDependsOnOrder(t *testing.T) {
	a, _ := New([][]byte{[]byte("x"), []byte("y")})
	b, _ := New([][]byte{[]byte("y"), []byte("x")})
	if a.Root() == b.Root() {
		t.Fatal("leaf order does not affect root")
	}
}

func TestLeafNodeDomainSeparation(t *testing.T) {
	// A leaf whose content equals an interior node's children must not
	// collide with that node.
	x, y := LeafHash([]byte("x")), LeafHash([]byte("y"))
	payload := append(append([]byte{}, x[:]...), y[:]...)
	if LeafHash(payload) == nodeHash(x, y) {
		t.Fatal("leaf/node domain separation broken")
	}
}

func TestQuickRandomTrees(t *testing.T) {
	err := quick.Check(func(data [][]byte, idxRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		tr, err := New(data)
		if err != nil {
			return false
		}
		i := int(idxRaw) % len(data)
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		return Verify(tr.Root(), len(data), data[i], p)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild1K(b *testing.B) {
	ls := leaves(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveVerify1K(b *testing.B) {
	ls := leaves(1024)
	tr, _ := New(ls)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tr.Prove(i % 1024)
		if err != nil {
			b.Fatal(err)
		}
		if !Verify(tr.Root(), 1024, ls[i%1024], p) {
			b.Fatal("verify failed")
		}
	}
}
