// Package merkle implements a binary Merkle tree commitment over a list of
// byte strings with logarithmic inclusion proofs.
//
// The distributed log protocol (Figure 5) uses it in two places: the service
// provider commits to the sequence of per-chunk intermediate digests and
// extension proofs with a Merkle root R, and HSMs verify that the chunks
// they audit are the ones committed under R.
package merkle
