package aggsig

// Differential property tests for RosterCache: the subtract-missing-
// signers quorum key must be byte-identical to the from-scratch
// AggregateKeys MSM for every signer subset, across roster generations,
// and the cached path must amortize — the acceptance bar is ≥5× over the
// full-MSM path at n=1024 with ≤8 missing signers (BenchmarkQuorumKey*).

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"
)

// rosterKeys generates n BLS roster keys.
func rosterKeys(tb testing.TB, sc Scheme, n int) []PublicKey {
	tb.Helper()
	pks := make([]PublicKey, n)
	for i := range pks {
		s, err := sc.KeyGen(rand.Reader)
		if err != nil {
			tb.Fatal(err)
		}
		pks[i] = s.PublicKey()
	}
	return pks
}

// signersWithout returns 0..n−1 minus the given missing set.
func signersWithout(n int, missing map[int]bool) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !missing[i] {
			out = append(out, i)
		}
	}
	return out
}

func assertQuorumMatchesNaive(t *testing.T, c *RosterCache, signers []int) {
	t.Helper()
	fast, err := c.QuorumKey(signers)
	if err != nil {
		t.Fatalf("QuorumKey(%d signers): %v", len(signers), err)
	}
	naive, err := c.QuorumKeyNaive(signers)
	if err != nil {
		t.Fatalf("QuorumKeyNaive(%d signers): %v", len(signers), err)
	}
	if string(fast.Bytes()) != string(naive.Bytes()) {
		t.Fatalf("quorum key for %d signers: subtracted key differs from full MSM", len(signers))
	}
}

func TestQuorumKeyDifferential(t *testing.T) {
	sc := BLS()
	const n = 24
	c := NewRosterCache(sc)
	if c == nil {
		t.Fatal("BLS scheme should support a roster cache")
	}
	c.SetRoster(rosterKeys(t, sc, n))

	// None missing: the quorum key IS the cached full aggregate.
	assertQuorumMatchesNaive(t, c, signersWithout(n, nil))
	full, fullBytes, err := c.FullAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if string(full.Bytes()) != string(fullBytes) {
		t.Fatal("cached serialized form differs from the cached point")
	}
	qk, err := c.QuorumKey(signersWithout(n, nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(qk.Bytes()) != string(fullBytes) {
		t.Fatal("complete signer set should return the full aggregate")
	}

	// Single missing, threshold boundary (half missing, the subtract/
	// direct crossover on both sides), and all-but-one missing.
	for _, m := range []int{1, n/2 - 1, n / 2, n/2 + 1, n - 1} {
		missing := map[int]bool{}
		for i := 0; i < m; i++ {
			missing[i] = true
		}
		assertQuorumMatchesNaive(t, c, signersWithout(n, missing))
	}

	// All missing: an empty signer set is an error on both paths.
	if _, err := c.QuorumKey(nil); err == nil {
		t.Fatal("empty signer set accepted by QuorumKey")
	}
	if _, err := c.QuorumKeyNaive(nil); err == nil {
		t.Fatal("empty signer set accepted by QuorumKeyNaive")
	}

	// Random missing sets, repeated epochs against the same cached
	// aggregate (the steady-state the cache exists for).
	rng := mrand.New(mrand.NewSource(7))
	for epoch := 0; epoch < 20; epoch++ {
		missing := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				missing[i] = true
			}
		}
		if len(missing) == n {
			delete(missing, 0)
		}
		assertQuorumMatchesNaive(t, c, signersWithout(n, missing))
	}

	// Bad signer sets are rejected.
	for _, bad := range [][]int{{-1}, {n}, {0, 0}} {
		if _, err := c.QuorumKey(bad); err == nil {
			t.Fatalf("bad signer set %v accepted", bad)
		}
	}
}

func TestRosterCacheGenerationInvalidation(t *testing.T) {
	sc := BLS()
	c := NewRosterCache(sc)
	keys := rosterKeys(t, sc, 6)
	c.SetRoster(keys[:5])
	gen := c.Generation()
	_, before, err := c.FullAggregate()
	if err != nil {
		t.Fatal(err)
	}

	// A registration landing after the aggregate is built must bump the
	// generation and invalidate: the next aggregate includes the new key.
	c.AppendKey(keys[5])
	if c.Generation() <= gen {
		t.Fatal("AppendKey did not bump the roster generation")
	}
	_, after, err := c.FullAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) == string(after) {
		t.Fatal("aggregate not invalidated by mid-stream registration")
	}
	fresh := NewRosterCache(sc)
	fresh.SetRoster(keys)
	_, want, err := fresh.FullAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(want) {
		t.Fatal("rebuilt aggregate differs from from-scratch aggregation")
	}

	// SetRoster also bumps, and quorum keys follow the new roster.
	genBefore := c.Generation()
	c.SetRoster(keys[:4])
	if c.Generation() <= genBefore {
		t.Fatal("SetRoster did not bump the roster generation")
	}
	assertQuorumMatchesNaive(t, c, []int{0, 1, 2})
}

func TestRosterCacheNonAggregatingScheme(t *testing.T) {
	if c := NewRosterCache(ECDSAConcat()); c != nil {
		t.Fatal("ECDSA-concat cannot subtract keys; cache must be nil")
	}
}

// benchRoster is shared by the quorum-key benchmarks: 1024 keys is the
// ISSUE's acceptance shape, with 8 missing signers.
func benchQuorum(b *testing.B, n, missing int) (*RosterCache, []int) {
	b.Helper()
	sc := BLS()
	c := NewRosterCache(sc)
	c.SetRoster(rosterKeys(b, sc, n))
	m := map[int]bool{}
	for i := 0; i < missing; i++ {
		m[i*7%n] = true
	}
	signers := signersWithout(n, m)
	// Pre-build the full aggregate: the steady state being measured is
	// the per-epoch cost, not the once-per-generation build.
	if _, _, err := c.FullAggregate(); err != nil {
		b.Fatal(err)
	}
	return c, signers
}

// BenchmarkQuorumKeyCached1024 is the per-epoch cost with the cache: 8
// missing signers from a 1024-HSM roster, subtracted from the cached full
// aggregate.
func BenchmarkQuorumKeyCached1024(b *testing.B) {
	c, signers := benchQuorum(b, 1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.QuorumKey(signers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuorumKeyFullMSM1024 is the retained from-scratch path: the
// O(n) MSM every epoch used to pay.
func BenchmarkQuorumKeyFullMSM1024(b *testing.B) {
	c, signers := benchQuorum(b, 1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.QuorumKeyNaive(signers); err != nil {
			b.Fatal(err)
		}
	}
}
