package aggsig

import (
	"crypto/rand"
	"encoding/hex"
	"testing"

	"safetypin/internal/bls"
	"safetypin/internal/meter"
)

func schemes() []Scheme {
	return []Scheme{BLS(), BLSWithHashMode(bls.HashLegacy), ECDSAConcat()}
}

func TestAggregateRoundTripBothSchemes(t *testing.T) {
	for _, sc := range schemes() {
		t.Run(sc.Name(), func(t *testing.T) {
			msg := []byte("epoch tuple (d, d', R)")
			var sigs [][]byte
			var pks []PublicKey
			for i := 0; i < 5; i++ {
				signer, err := sc.KeyGen(rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				sig, err := signer.Sign(msg)
				if err != nil {
					t.Fatal(err)
				}
				sigs = append(sigs, sig)
				pks = append(pks, signer.PublicKey())
			}
			agg, err := sc.Aggregate(sigs)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := sc.VerifyAggregate(pks, msg, agg)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("aggregate rejected")
			}
		})
	}
}

func TestAggregateWrongMessageRejected(t *testing.T) {
	for _, sc := range schemes() {
		t.Run(sc.Name(), func(t *testing.T) {
			var sigs [][]byte
			var pks []PublicKey
			for i := 0; i < 3; i++ {
				signer, err := sc.KeyGen(rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				sig, err := signer.Sign([]byte("honest tuple"))
				if err != nil {
					t.Fatal(err)
				}
				sigs = append(sigs, sig)
				pks = append(pks, signer.PublicKey())
			}
			agg, err := sc.Aggregate(sigs)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := sc.VerifyAggregate(pks, []byte("forged tuple"), agg)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("aggregate verified under wrong message")
			}
		})
	}
}

func TestMissingSignerRejected(t *testing.T) {
	for _, sc := range schemes() {
		t.Run(sc.Name(), func(t *testing.T) {
			msg := []byte("tuple")
			var sigs [][]byte
			var pks []PublicKey
			for i := 0; i < 3; i++ {
				signer, err := sc.KeyGen(rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				sig, err := signer.Sign(msg)
				if err != nil {
					t.Fatal(err)
				}
				sigs = append(sigs, sig)
				pks = append(pks, signer.PublicKey())
			}
			agg, err := sc.Aggregate(sigs[:2])
			if err != nil {
				t.Fatal(err)
			}
			ok, err := sc.VerifyAggregate(pks, msg, agg)
			if err != nil && sc.Name() == "bls12381-multisig" {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("aggregate missing one signer verified against full key set")
			}
		})
	}
}

func TestPublicKeySerialization(t *testing.T) {
	for _, sc := range schemes() {
		t.Run(sc.Name(), func(t *testing.T) {
			signer, err := sc.KeyGen(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			raw := signer.PublicKey().Bytes()
			parsed, err := sc.ParsePublicKey(raw)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("m")
			sig, err := signer.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := sc.Aggregate([][]byte{sig})
			if err != nil {
				t.Fatal(err)
			}
			ok, err := sc.VerifyAggregate([]PublicKey{parsed}, msg, agg)
			if err != nil || !ok {
				t.Fatalf("parsed key failed verification: %v", err)
			}
			if _, err := sc.ParsePublicKey([]byte{1, 2, 3}); err == nil {
				t.Fatal("garbage public key parsed")
			}
		})
	}
}

// Golden encodings of the BLS public key g2^7: the seed's unversioned
// 193-byte uncompressed format and the version-1 compressed wire format
// (0x01 ‖ zcash 96-byte G2). Both must parse to the same key forever.
const (
	goldenLegacyPK = "04049cd1dbb2d2c3581e54c088135fef36505a6823d61b859437bfc79b617030" +
		"dc8b40e32bad1fa85b9c0f368af6d38d3c0d0273f6bf31ed37c3b8d68083ec3d" +
		"8e20b5f2cc170fa24b9b5be35b34ed013f9a921f1cad1644d4bdb14674247234" +
		"c808b7ae4dbf802c17a6648842922c9467e460a71c88d393ee7af356da123a2f" +
		"3619e80c3bdcc8e2b1da52f8cd9913ccdd05ecf93654b7a1885695aaeeb7caf4" +
		"1b0239dc45e1022be55d37111af2aecef87799638bec572de86a7437898efa70" +
		"20"
	goldenCompressedPK = "018d0273f6bf31ed37c3b8d68083ec3d8e20b5f2cc170fa24b9b5be35b34ed01" +
		"3f9a921f1cad1644d4bdb14674247234c8049cd1dbb2d2c3581e54c088135fef" +
		"36505a6823d61b859437bfc79b617030dc8b40e32bad1fa85b9c0f368af6d38d" +
		"3c"
)

func TestBLSPublicKeyWireFormats(t *testing.T) {
	legacy, err := hex.DecodeString(goldenLegacyPK)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := hex.DecodeString(goldenCompressedPK)
	if err != nil {
		t.Fatal(err)
	}
	// Seed compatibility: the unversioned uncompressed encoding still
	// parses...
	fromLegacy, err := BLS().ParsePublicKey(legacy)
	if err != nil {
		t.Fatalf("legacy uncompressed key rejected: %v", err)
	}
	// ...and re-serializes to the versioned compressed wire format.
	if got := hex.EncodeToString(fromLegacy.Bytes()); got != goldenCompressedPK {
		t.Fatalf("legacy key re-serialization:\n got %s\nwant %s", got, goldenCompressedPK)
	}
	fromCompressed, err := BLS().ParsePublicKey(compressed)
	if err != nil {
		t.Fatalf("compressed key rejected: %v", err)
	}
	if hex.EncodeToString(fromCompressed.Bytes()) != goldenCompressedPK {
		t.Fatal("compressed key did not round trip")
	}
	// The compressed format roughly halves roster bytes.
	if len(compressed)*2 >= len(legacy)+2 {
		t.Fatalf("compressed key (%d bytes) is not about half of legacy (%d bytes)",
			len(compressed), len(legacy))
	}
	// Unknown version bytes fail closed.
	bad := append([]byte(nil), compressed...)
	bad[0] = 0x7f
	if _, err := BLS().ParsePublicKey(bad); err == nil {
		t.Fatal("unknown version byte accepted")
	}
}

func TestEmptyAggregateRejected(t *testing.T) {
	for _, sc := range schemes() {
		if _, err := sc.Aggregate(nil); err == nil {
			t.Fatalf("%s: empty aggregate accepted", sc.Name())
		}
	}
}

func TestMeterCosts(t *testing.T) {
	// BLS verification cost must be independent of the signer count;
	// ECDSA-concat must be linear. This is the ablation of §6.2.
	mBLS10 := meter.New()
	BLS().MeterVerify(mBLS10, 10)
	mBLS1000 := meter.New()
	BLS().MeterVerify(mBLS1000, 1000)
	for _, op := range []meter.Op{meter.OpMillerLoop, meter.OpFinalExp} {
		if mBLS10.Get(op) != mBLS1000.Get(op) {
			t.Fatalf("BLS verify %s cost depends on signer count", op)
		}
	}
	// The multi-pairing shape: two Miller loops share one final
	// exponentiation (cheaper than the 2 full pairings charged before).
	if mBLS10.Get(meter.OpMillerLoop) != 2 || mBLS10.Get(meter.OpFinalExp) != 1 {
		t.Fatal("BLS verify should meter as 2 Miller loops + 1 final exp")
	}
	// Roster aggregation and wire-parse costs are metered explicitly:
	// n−1 batch-affine G2 additions plus one subgroup check per verify.
	if mBLS10.Get(meter.OpG2Add) != 9 || mBLS1000.Get(meter.OpG2Add) != 999 {
		t.Fatal("BLS verify should meter n−1 roster additions")
	}
	if mBLS10.Get(meter.OpSubgroupCheck) != 1 {
		t.Fatal("BLS verify should meter the signature-parse subgroup check")
	}
	mE := meter.New()
	ECDSAConcat().MeterVerify(mE, 1000)
	if mE.Get(meter.OpECDSAVerify) != 1000 {
		t.Fatal("ECDSA-concat verify cost not linear")
	}
}

func TestBLSKeyAggregator(t *testing.T) {
	sc := BLS()
	agg, ok := sc.(KeyAggregator)
	if !ok {
		t.Fatal("BLS scheme should implement KeyAggregator")
	}
	msg := []byte("epoch tuple")
	var sigs [][]byte
	var pks []PublicKey
	for i := 0; i < 7; i++ {
		signer, err := sc.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := signer.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sig)
		pks = append(pks, signer.PublicKey())
	}
	apk, err := agg.AggregateKeys(pks)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-aggregated key verifies the aggregate signature on its own.
	aggSig, err := sc.Aggregate(sigs)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := sc.VerifyAggregate([]PublicKey{apk}, msg, aggSig)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatal("pre-aggregated roster key rejected the aggregate signature")
	}
	if _, err := agg.AggregateKeys(nil); err == nil {
		t.Fatal("empty roster aggregation accepted")
	}
}

func TestBLSRosterBytes(t *testing.T) {
	sc := BLS()
	rs, ok := sc.(RosterSerializer)
	if !ok {
		t.Fatal("BLS scheme should implement RosterSerializer")
	}
	var pks []PublicKey
	for i := 0; i < 5; i++ {
		signer, err := sc.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pks = append(pks, signer.PublicKey())
	}
	encs, err := rs.RosterBytes(pks)
	if err != nil {
		t.Fatal(err)
	}
	for i, enc := range encs {
		// Batch serialization must match the per-key wire encoding and
		// round-trip through the standard parser.
		if string(enc) != string(pks[i].Bytes()) {
			t.Fatalf("roster encoding %d differs from per-key Bytes()", i)
		}
		back, err := sc.ParsePublicKey(enc)
		if err != nil {
			t.Fatal(err)
		}
		if string(back.Bytes()) != string(enc) {
			t.Fatalf("roster encoding %d did not round-trip", i)
		}
	}
	if _, ok := ECDSAConcat().(RosterSerializer); ok {
		t.Fatal("ECDSA scheme unexpectedly batch-serializes")
	}
}

func TestVerifyAggregateRandomizedDifferential(t *testing.T) {
	// Randomized accept/reject semantics of the rewritten BLS backend,
	// checked against the seed implementation's documented behavior: a
	// complete signer set verifies, and every perturbation (missing
	// signer, extra signer, corrupted aggregate, wrong message) fails.
	// Byte-level agreement of signatures and keys with the pre-rewrite
	// code is pinned separately in bls.TestSeedByteCompatibility.
	sc := BLS()
	for round := 0; round < 3; round++ {
		msg := make([]byte, 32)
		if _, err := rand.Read(msg); err != nil {
			t.Fatal(err)
		}
		n := 3 + round
		var sigs [][]byte
		var pks []PublicKey
		for i := 0; i < n; i++ {
			signer, err := sc.KeyGen(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			sig, err := signer.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			sigs = append(sigs, sig)
			pks = append(pks, signer.PublicKey())
		}
		agg, err := sc.Aggregate(sigs)
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := sc.VerifyAggregate(pks, msg, agg); err != nil || !ok {
			t.Fatalf("round %d: complete signer set rejected (%v)", round, err)
		}
		if ok, _ := sc.VerifyAggregate(pks[:n-1], msg, agg); ok {
			t.Fatalf("round %d: aggregate verified with a key missing", round)
		}
		partial, err := sc.Aggregate(sigs[:n-1])
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := sc.VerifyAggregate(pks, msg, partial); ok {
			t.Fatalf("round %d: partial aggregate verified against full set", round)
		}
		if ok, _ := sc.VerifyAggregate(pks, append([]byte("x"), msg...), agg); ok {
			t.Fatalf("round %d: wrong message verified", round)
		}
	}
}

func TestCrossSchemeKeysRejected(t *testing.T) {
	blsSigner, err := BLS().KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := blsSigner.Sign([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := BLS().Aggregate([][]byte{sig})
	if err != nil {
		t.Fatal(err)
	}
	eSigner, err := ECDSAConcat().KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BLS().VerifyAggregate([]PublicKey{eSigner.PublicKey()}, []byte("m"), agg); err == nil {
		t.Fatal("ECDSA key accepted by BLS verifier")
	}
}

func BenchmarkBLSAggregateVerify16(b *testing.B) {
	benchVerify(b, BLS(), 16)
}

func BenchmarkECDSAConcatVerify16(b *testing.B) {
	benchVerify(b, ECDSAConcat(), 16)
}

func benchVerify(b *testing.B, sc Scheme, n int) {
	msg := []byte("tuple")
	var sigs [][]byte
	var pks []PublicKey
	for i := 0; i < n; i++ {
		signer, err := sc.KeyGen(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		sig, err := signer.Sign(msg)
		if err != nil {
			b.Fatal(err)
		}
		sigs = append(sigs, sig)
		pks = append(pks, signer.PublicKey())
	}
	agg, err := sc.Aggregate(sigs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := sc.VerifyAggregate(pks, msg, agg)
		if err != nil || !ok {
			b.Fatal("verify failed")
		}
	}
}
