package aggsig

import (
	"crypto/ecdsa"
	cryptoRand "crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"safetypin/internal/bls"
	"safetypin/internal/ecgroup"
	"safetypin/internal/meter"
)

// PublicKey is an opaque verification key.
type PublicKey interface {
	Bytes() []byte
}

// Signer is the HSM-side signing handle.
type Signer interface {
	Sign(msg []byte) ([]byte, error)
	PublicKey() PublicKey
}

// KeyAggregator is implemented by schemes whose public keys combine into a
// single aggregate verification key (the per-epoch roster aggregation). A
// provider can pre-aggregate a stable roster once instead of letting every
// verification re-sum it.
type KeyAggregator interface {
	// AggregateKeys combines the roster into one verification key.
	AggregateKeys(pks []PublicKey) (PublicKey, error)
}

// KeySubtractor is implemented by schemes whose aggregate keys form a
// group: removing signers from an aggregate costs O(removed) operations
// instead of re-aggregating the remaining set. RosterCache builds
// per-epoch quorum keys this way — epoch commits carry near-complete
// signer sets, so the missing side is the cheap one.
type KeySubtractor interface {
	// SubtractKeys removes the missing keys from the full aggregate,
	// returning exactly the key AggregateKeys would produce over the
	// remaining set (byte-identical serialization).
	SubtractKeys(full PublicKey, missing []PublicKey) (PublicKey, error)
}

// AggregateKeyVerifier is implemented by schemes that can verify an
// aggregate signature against a pre-computed aggregate verification key,
// skipping the per-verification roster aggregation that VerifyAggregate
// performs internally.
type AggregateKeyVerifier interface {
	// VerifyWithKey checks aggSig over msg against the aggregate key apk
	// (as produced by AggregateKeys, SubtractKeys, or RosterCache).
	VerifyWithKey(apk PublicKey, msg, aggSig []byte) (bool, error)
}

// RosterSerializer is implemented by schemes that can serialize a whole
// roster more cheaply than one key at a time (the BLS backend shares one
// field inversion across all compressions).
type RosterSerializer interface {
	// RosterBytes serializes every public key in wire format.
	RosterBytes(pks []PublicKey) ([][]byte, error)
}

// BatchKeyGenerator is implemented by schemes that can create many signers
// more cheaply than n KeyGen calls (the BLS backend converts all public
// keys to affine with one shared Montgomery batch inversion). Fleet
// provisioning generates every HSM's roster identity through this.
type BatchKeyGenerator interface {
	// KeyGenBatch creates n signers.
	KeyGenBatch(rng io.Reader, n int) ([]Signer, error)
}

// KeyGenBatch creates n signers under s, through the scheme's batch path
// when it has one and by n KeyGen calls otherwise.
func KeyGenBatch(s Scheme, rng io.Reader, n int) ([]Signer, error) {
	if bg, ok := s.(BatchKeyGenerator); ok {
		return bg.KeyGenBatch(rng, n)
	}
	out := make([]Signer, n)
	for i := range out {
		signer, err := s.KeyGen(rng)
		if err != nil {
			return nil, err
		}
		out[i] = signer
	}
	return out, nil
}

// Scheme bundles key generation, aggregation, and verification.
type Scheme interface {
	// Name identifies the scheme in benchmarks and logs.
	Name() string
	// KeyGen creates a signer.
	KeyGen(rng io.Reader) (Signer, error)
	// ParsePublicKey decodes a serialized public key.
	ParsePublicKey(b []byte) (PublicKey, error)
	// Aggregate combines signatures produced over the same msg by the
	// signers whose public keys will be passed, in the same order, to
	// VerifyAggregate.
	Aggregate(sigs [][]byte) ([]byte, error)
	// VerifyAggregate checks the aggregate signature over msg against the
	// ordered signer set.
	VerifyAggregate(pks []PublicKey, msg, aggSig []byte) (bool, error)
	// MeterVerify charges one aggregate verification (with the given signer
	// count) to m, using the device-op vocabulary of package meter.
	MeterVerify(m *meter.Meter, numSigners int)
	// MeterSign charges one signing operation to m.
	MeterSign(m *meter.Meter)
}

// --- BLS multisignature backend ---

// BLS returns the BLS12-381 multisignature scheme with the default
// (RFC 9380 constant-time SSWU) message hash.
func BLS() Scheme { return blsScheme{mode: bls.HashRFC9380} }

// BLSWithHashMode returns the BLS scheme hashing messages with an explicit
// mode. bls.HashLegacy selects the pre-standard try-and-increment hash for
// wire compatibility with logs signed by existing deployments; every signer
// and verifier in a fleet must use the same mode, which the transport
// negotiates through the fleet-config handshake.
func BLSWithHashMode(mode bls.HashMode) Scheme { return blsScheme{mode: mode} }

type blsScheme struct{ mode bls.HashMode }

type blsSigner struct {
	sk   *bls.SecretKey //spin:secret
	pk   *bls.PublicKey
	mode bls.HashMode
}

type blsPub struct{ pk *bls.PublicKey }

// blsPubVersion prefixes the compressed wire encoding of BLS public keys.
// Version 1 is the IETF/zcash 96-byte compressed G2 format, which roughly
// halves roster bytes versus the seed's 193-byte uncompressed encoding;
// the unversioned uncompressed format still parses for compatibility with
// rosters serialized by older deployments.
const blsPubVersion = 0x01

func (s blsScheme) Name() string {
	if s.mode == bls.HashLegacy {
		return "bls12381-multisig/legacy-hash"
	}
	return "bls12381-multisig"
}

func (s blsScheme) KeyGen(rng io.Reader) (Signer, error) {
	sk, pk, err := bls.GenerateKey(rng)
	if err != nil {
		return nil, err
	}
	return &blsSigner{sk: sk, pk: pk, mode: s.mode}, nil
}

// KeyGenBatch creates n signers with one shared batch inversion across all
// the public-key affine conversions (bls.GenerateKeyBatch); every secret
// scalar still runs the constant-time comb individually.
func (s blsScheme) KeyGenBatch(rng io.Reader, n int) ([]Signer, error) {
	sks, pks, err := bls.GenerateKeyBatch(rng, n)
	if err != nil {
		return nil, err
	}
	out := make([]Signer, n)
	for i := range out {
		out[i] = &blsSigner{sk: sks[i], pk: pks[i], mode: s.mode}
	}
	return out, nil
}

func (s *blsSigner) Sign(msg []byte) ([]byte, error) {
	return s.sk.SignWithMode(s.mode, msg).Bytes(), nil
}

func (s *blsSigner) PublicKey() PublicKey { return blsPub{s.pk} }

func (p blsPub) Bytes() []byte {
	return append([]byte{blsPubVersion}, p.pk.BytesCompressed()...)
}

func (blsScheme) ParsePublicKey(b []byte) (PublicKey, error) {
	var pk *bls.PublicKey
	var err error
	switch {
	case len(b) == 1+bls.G2CompressedSize && b[0] == blsPubVersion:
		pk, err = bls.PublicKeyFromCompressedBytes(b[1:])
	case len(b) == bls.G2Size:
		// Legacy unversioned uncompressed encoding (seed format).
		pk, err = bls.PublicKeyFromBytes(b)
	default:
		return nil, fmt.Errorf("aggsig: unrecognized BLS public key encoding (%d bytes)", len(b))
	}
	if err != nil {
		return nil, err
	}
	return blsPub{pk}, nil
}

func (blsScheme) Aggregate(sigs [][]byte) ([]byte, error) {
	parsed := make([]*bls.Signature, len(sigs))
	for i, raw := range sigs {
		s, err := bls.SignatureFromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("aggsig: signature %d: %w", i, err)
		}
		parsed[i] = s
	}
	agg, err := bls.AggregateSignatures(parsed)
	if err != nil {
		return nil, err
	}
	return agg.Bytes(), nil
}

// blsRoster converts an aggsig roster to the underlying BLS keys.
func blsRoster(pks []PublicKey) ([]*bls.PublicKey, error) {
	keys := make([]*bls.PublicKey, len(pks))
	for i, pk := range pks {
		bp, ok := pk.(blsPub)
		if !ok {
			return nil, fmt.Errorf("aggsig: key %d is not a BLS key", i)
		}
		keys[i] = bp.pk
	}
	return keys, nil
}

// AggregateKeys sums the roster into the aggregate verification key via
// the batch-affine Pippenger layer (bls.AggregatePublicKeys).
func (blsScheme) AggregateKeys(pks []PublicKey) (PublicKey, error) {
	if len(pks) == 0 {
		return nil, errors.New("aggsig: empty signer set")
	}
	keys, err := blsRoster(pks)
	if err != nil {
		return nil, err
	}
	apk, err := bls.AggregatePublicKeys(keys)
	if err != nil {
		return nil, err
	}
	return blsPub{apk}, nil
}

// SubtractKeys removes missing signers from the full-roster aggregate:
// O(missing) G2 additions against AggregateKeys' O(n) MSM.
func (blsScheme) SubtractKeys(full PublicKey, missing []PublicKey) (PublicKey, error) {
	fp, ok := full.(blsPub)
	if !ok {
		return nil, errors.New("aggsig: aggregate is not a BLS key")
	}
	keys, err := blsRoster(missing)
	if err != nil {
		return nil, err
	}
	apk, err := bls.SubtractPublicKeys(fp.pk, keys)
	if err != nil {
		return nil, err
	}
	return blsPub{apk}, nil
}

// VerifyWithKey checks an aggregate signature against a pre-aggregated
// verification key — the cached-quorum-key fast path of RosterCache.
func (s blsScheme) VerifyWithKey(apk PublicKey, msg, aggSig []byte) (bool, error) {
	bp, ok := apk.(blsPub)
	if !ok {
		return false, errors.New("aggsig: aggregate is not a BLS key")
	}
	sig, err := bls.SignatureFromBytes(aggSig)
	if err != nil {
		return false, err
	}
	return bp.pk.VerifyWithMode(s.mode, msg, sig)
}

// RosterBytes serializes the roster with one shared field inversion across
// all the compressed encodings.
func (blsScheme) RosterBytes(pks []PublicKey) ([][]byte, error) {
	keys, err := blsRoster(pks)
	if err != nil {
		return nil, err
	}
	raw, err := bls.PublicKeysBatchCompressed(keys)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(raw))
	for i, b := range raw {
		out[i] = append([]byte{blsPubVersion}, b...)
	}
	return out, nil
}

func (s blsScheme) VerifyAggregate(pks []PublicKey, msg, aggSig []byte) (bool, error) {
	apkAny, err := s.AggregateKeys(pks)
	if err != nil {
		return false, err
	}
	apk := apkAny.(blsPub).pk
	sig, err := bls.SignatureFromBytes(aggSig)
	if err != nil {
		return false, err
	}
	return apk.VerifyWithMode(s.mode, msg, sig)
}

func (blsScheme) MeterVerify(m *meter.Meter, numSigners int) {
	// Verification is one multi-pairing of two pairs — 2 Miller loops
	// sharing a single final exponentiation (bls.PairingCheck),
	// independent of numSigners — plus the roster aggregation (n−1
	// batch-affine G2 additions) and the endomorphism subgroup check
	// that parses the aggregate signature off the wire.
	m.Add(meter.OpMillerLoop, 2)
	m.Add(meter.OpFinalExp, 1)
	m.Add(meter.OpG2Add, int64(numSigners)-1)
	m.Add(meter.OpSubgroupCheck, 1)
}

func (blsScheme) MeterSign(m *meter.Meter) {
	m.Add(meter.OpBLSSign, 1)
}

// --- ECDSA concatenation backend (ablation) ---

// ECDSAConcat returns the trivial "aggregate" scheme: signatures are
// concatenated and verified one by one. Same interface, linear cost.
func ECDSAConcat() Scheme { return ecdsaScheme{} }

type ecdsaScheme struct{}

type ecdsaSigner struct {
	kp ecgroup.KeyPair
}

type ecdsaPub struct{ p ecgroup.Point }

func (ecdsaScheme) Name() string { return "ecdsa-concat" }

func (ecdsaScheme) KeyGen(rng io.Reader) (Signer, error) {
	kp, err := ecgroup.GenerateKeyPair(rng)
	if err != nil {
		return nil, err
	}
	return &ecdsaSigner{kp: kp}, nil
}

// ecdsaSigSize is the fixed encoding: r ‖ s, 32 bytes each.
const ecdsaSigSize = 64

func (s *ecdsaSigner) Sign(msg []byte) ([]byte, error) {
	h := sha256.Sum256(msg)
	r, sv, err := ecdsa.Sign(randReader{}, s.kp.ToECDSA(), h[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, ecdsaSigSize)
	r.FillBytes(out[:32])
	sv.FillBytes(out[32:])
	return out, nil
}

func (s *ecdsaSigner) PublicKey() PublicKey { return ecdsaPub{s.kp.PK} }

func (p ecdsaPub) Bytes() []byte { return p.p.Bytes() }

func (ecdsaScheme) ParsePublicKey(b []byte) (PublicKey, error) {
	pt, err := ecgroup.PointFromBytes(b)
	if err != nil {
		return nil, err
	}
	return ecdsaPub{pt}, nil
}

func (ecdsaScheme) Aggregate(sigs [][]byte) ([]byte, error) {
	if len(sigs) == 0 {
		return nil, errors.New("aggsig: nothing to aggregate")
	}
	out := make([]byte, 0, len(sigs)*ecdsaSigSize)
	for i, s := range sigs {
		if len(s) != ecdsaSigSize {
			return nil, fmt.Errorf("aggsig: signature %d has length %d", i, len(s))
		}
		out = append(out, s...)
	}
	return out, nil
}

func (ecdsaScheme) VerifyAggregate(pks []PublicKey, msg, aggSig []byte) (bool, error) {
	if len(aggSig) != len(pks)*ecdsaSigSize {
		return false, nil
	}
	h := sha256.Sum256(msg)
	for i, pk := range pks {
		ep, ok := pk.(ecdsaPub)
		if !ok {
			return false, fmt.Errorf("aggsig: key %d is not an ECDSA key", i)
		}
		pub, err := ep.p.ECDSAPublic()
		if err != nil {
			return false, err
		}
		raw := aggSig[i*ecdsaSigSize : (i+1)*ecdsaSigSize]
		r := new(big.Int).SetBytes(raw[:32])
		s := new(big.Int).SetBytes(raw[32:])
		if !ecdsa.Verify(pub, h[:], r, s) {
			return false, nil
		}
	}
	return true, nil
}

func (ecdsaScheme) MeterVerify(m *meter.Meter, numSigners int) {
	m.Add(meter.OpECDSAVerify, int64(numSigners))
}

func (ecdsaScheme) MeterSign(m *meter.Meter) {
	m.Add(meter.OpECDSASign, 1)
}

// randReader adapts crypto/rand for ecdsa.Sign without importing it at each
// call site.
type randReader struct{}

func (randReader) Read(p []byte) (int, error) { return readRand(p) }

func readRand(p []byte) (int, error) { return cryptoRand.Read(p) }
