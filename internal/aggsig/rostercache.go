package aggsig

import (
	"errors"
	"fmt"
	"sync"
)

// RosterCache caches the full-roster aggregate verification key — the
// point and its serialized form — keyed by a roster generation counter,
// and derives per-epoch quorum keys incrementally. Every epoch commit
// used to re-run the O(n) AggregateKeys MSM over a signer set that barely
// changes between epochs; with the cache, an epoch whose commit carries m
// missing signers costs O(m) group subtractions against the cached full
// aggregate (built once per roster generation, amortized across every
// subsequent epoch).
//
// Invalidation is by generation: every roster mutation (SetRoster,
// AppendKey) bumps the counter, and the cached aggregate is only served
// while its build generation matches. A registration that lands after the
// aggregate was built therefore forces a rebuild on next use — the
// mid-stream-registration rule the provider's journaled roster relies on
// (see provider.RosterAggregate).
//
// The subtracted quorum key is the exact group element a from-scratch
// aggregation of the signer subset produces, so serializations are
// byte-identical; QuorumKeyNaive retains the from-scratch path as the
// differential oracle.
type RosterCache struct {
	mu     sync.Mutex
	scheme Scheme
	agg    KeyAggregator
	sub    KeySubtractor

	gen    uint64
	roster []PublicKey

	// Cached full aggregate, valid only while builtGen == gen.
	full      PublicKey
	fullBytes []byte
	builtGen  uint64
}

// NewRosterCache returns a cache for scheme, or nil when the scheme does
// not support key aggregation and subtraction (callers fall back to
// Scheme.VerifyAggregate).
func NewRosterCache(scheme Scheme) *RosterCache {
	agg, okAgg := scheme.(KeyAggregator)
	sub, okSub := scheme.(KeySubtractor)
	if !okAgg || !okSub {
		return nil
	}
	return &RosterCache{scheme: scheme, agg: agg, sub: sub}
}

// SetRoster replaces the roster, bumping the generation and invalidating
// the cached aggregate.
func (c *RosterCache) SetRoster(pks []PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roster = append([]PublicKey(nil), pks...)
	c.bumpLocked()
}

// AppendKey registers one more roster member, bumping the generation and
// invalidating the cached aggregate.
func (c *RosterCache) AppendKey(pk PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roster = append(c.roster, pk)
	c.bumpLocked()
}

// bumpLocked advances the generation and drops the cached aggregate.
// Caller holds mu.
func (c *RosterCache) bumpLocked() {
	c.gen++
	c.full = nil
	c.fullBytes = nil
}

// Generation returns the roster generation counter: it changes on every
// roster mutation, so equal generations imply an identical roster view.
func (c *RosterCache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Size returns the roster size.
func (c *RosterCache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.roster)
}

// FullAggregate returns the aggregate over the whole roster plus its
// serialized form, building it at most once per generation.
func (c *RosterCache) FullAggregate() (PublicKey, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.buildLocked(); err != nil {
		return nil, nil, err
	}
	return c.full, c.fullBytes, nil
}

// buildLocked (re)builds the cached full aggregate if the generation
// moved since it was last built. Caller holds mu.
func (c *RosterCache) buildLocked() error {
	if c.full != nil && c.builtGen == c.gen {
		return nil
	}
	if len(c.roster) == 0 {
		return errors.New("aggsig: empty roster")
	}
	full, err := c.agg.AggregateKeys(c.roster)
	if err != nil {
		return err
	}
	c.full = full
	c.fullBytes = full.Bytes()
	c.builtGen = c.gen
	return nil
}

// missingFrom validates the signer index set and returns the roster
// members NOT in it. Caller holds mu.
func (c *RosterCache) missingFrom(signers []int) ([]PublicKey, error) {
	present := make([]bool, len(c.roster))
	for _, s := range signers {
		if s < 0 || s >= len(c.roster) {
			return nil, fmt.Errorf("aggsig: signer index %d out of roster range %d", s, len(c.roster))
		}
		if present[s] {
			return nil, fmt.Errorf("aggsig: duplicate signer index %d", s)
		}
		present[s] = true
	}
	missing := make([]PublicKey, 0, len(c.roster)-len(signers))
	for i, ok := range present {
		if !ok {
			missing = append(missing, c.roster[i])
		}
	}
	return missing, nil
}

// QuorumKey returns the aggregate verification key of the roster subset
// given by signer indices. When few signers are missing — the per-epoch
// common case — it subtracts them from the cached full aggregate; when
// most are missing it falls back to aggregating the subset directly,
// which is cheaper than subtracting more than half the roster. Both paths
// return the identical group element.
func (c *RosterCache) QuorumKey(signers []int) (PublicKey, error) {
	if len(signers) == 0 {
		return nil, errors.New("aggsig: empty signer set")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	missing, err := c.missingFrom(signers)
	if err != nil {
		return nil, err
	}
	if len(missing) > len(c.roster)/2 {
		return c.quorumKeyDirectLocked(signers)
	}
	if err := c.buildLocked(); err != nil {
		return nil, err
	}
	if len(missing) == 0 {
		return c.full, nil
	}
	return c.sub.SubtractKeys(c.full, missing)
}

// QuorumKeyNaive aggregates the signer subset from scratch (the full-MSM
// path): the differential oracle and benchmark baseline for QuorumKey.
func (c *RosterCache) QuorumKeyNaive(signers []int) (PublicKey, error) {
	if len(signers) == 0 {
		return nil, errors.New("aggsig: empty signer set")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.missingFrom(signers); err != nil {
		return nil, err
	}
	return c.quorumKeyDirectLocked(signers)
}

// quorumKeyDirectLocked runs AggregateKeys over the signer subset.
// Indices must already be validated; caller holds mu.
func (c *RosterCache) quorumKeyDirectLocked(signers []int) (PublicKey, error) {
	pks := make([]PublicKey, len(signers))
	for i, s := range signers {
		pks[i] = c.roster[s]
	}
	return c.agg.AggregateKeys(pks)
}
