// Package aggsig abstracts the aggregate-signature scheme HSMs use to
// co-sign log updates (§6.2). The production scheme is BLS multisignatures
// (package bls): the provider adds all online HSMs' signatures into one
// constant-size signature that every HSM verifies with two pairings,
// independent of the fleet size.
//
// A second backend — plain ECDSA with concatenation — exists as the ablation
// the paper's scalability argument is measured against: verification work
// grows linearly in the number of signers, which is exactly what the BLS
// choice avoids. Both backends satisfy the same interface so the distributed
// log can run (and be benchmarked) over either.
package aggsig
