package aggsig

// hashmode_test.go pins the relationship between the two BLS hash modes:
// each verifies its own signatures, neither verifies the other's, and the
// legacy mode's bytes are frozen against a golden produced before the RFC
// hash existed (the compat flag must stay byte-stable forever).

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"safetypin/internal/bls"
)

// goldRNG reproduces the deterministic stream used to generate the golden
// signature below (SHA-256 counter mode, same construction as the bls
// seed-compat tests).
type goldRNG struct {
	seed []byte
	ctr  uint64
	buf  []byte
}

func (d *goldRNG) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		h := sha256.New()
		h.Write(d.seed)
		var c [8]byte
		for i := 0; i < 8; i++ {
			c[i] = byte(d.ctr >> (8 * uint(i)))
		}
		h.Write(c[:])
		d.ctr++
		d.buf = append(d.buf, h.Sum(nil)...)
	}
	copy(p, d.buf[:len(p)])
	d.buf = d.buf[len(p):]
	return len(p), nil
}

func TestBLSHashModeDifferential(t *testing.T) {
	msg := []byte("epoch tuple (d, d', R)")
	rfc := BLS()
	legacy := BLSWithHashMode(bls.HashLegacy)

	// One keypair per mode from identical deterministic streams: key
	// generation is hash-independent, so the public keys must coincide
	// while the signatures must not.
	sRFC, err := rfc.KeyGen(&goldRNG{seed: []byte("aggsig-hashmode-diff")})
	if err != nil {
		t.Fatal(err)
	}
	sLegacy, err := legacy.KeyGen(&goldRNG{seed: []byte("aggsig-hashmode-diff")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sRFC.PublicKey().Bytes(), sLegacy.PublicKey().Bytes()) {
		t.Fatal("hash mode changed key generation — it must only change message hashing")
	}

	sigRFC, err := sRFC.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	sigLegacy, err := sLegacy.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sigRFC, sigLegacy) {
		t.Fatal("RFC and legacy modes produced identical signatures")
	}

	pks := []PublicKey{sRFC.PublicKey()}
	aggRFC, err := rfc.Aggregate([][]byte{sigRFC})
	if err != nil {
		t.Fatal(err)
	}
	aggLegacy, err := legacy.Aggregate([][]byte{sigLegacy})
	if err != nil {
		t.Fatal(err)
	}
	// Same-mode verifies; cross-mode must not.
	if ok, err := rfc.VerifyAggregate(pks, msg, aggRFC); err != nil || !ok {
		t.Fatal("RFC-mode aggregate rejected by RFC-mode verifier")
	}
	if ok, err := legacy.VerifyAggregate(pks, msg, aggLegacy); err != nil || !ok {
		t.Fatal("legacy-mode aggregate rejected by legacy-mode verifier")
	}
	if ok, _ := rfc.VerifyAggregate(pks, msg, aggLegacy); ok {
		t.Fatal("legacy signature verified under the RFC hash")
	}
	if ok, _ := legacy.VerifyAggregate(pks, msg, aggRFC); ok {
		t.Fatal("RFC signature verified under the legacy hash")
	}

	// Golden pin: the legacy signature bytes are frozen — they are what
	// pre-RFC deployments wrote into their logs.
	const legacyGolden = "040b4fc8575a70ac1769eee99479beb19bd29ea4e0cb17ce1611ec401aab7524d23b09ea2c4674c259432e924def47794c19f2f50bc49bbe2c8e8aa95dafb3fce5c5d67dfb766d735a72fc410d08ab3a9677118595d47046de68313da337650505"
	if got := hex.EncodeToString(sigLegacy); got != legacyGolden {
		t.Fatalf("legacy-mode signature drifted from golden:\n got %s\nwant %s", got, legacyGolden)
	}
}

func TestBLSSchemeNames(t *testing.T) {
	if BLS().Name() != "bls12381-multisig" {
		t.Fatal("default BLS scheme name drifted")
	}
	if BLSWithHashMode(bls.HashLegacy).Name() != "bls12381-multisig/legacy-hash" {
		t.Fatal("legacy BLS scheme name drifted")
	}
	if BLSWithHashMode(bls.HashRFC9380).Name() != BLS().Name() {
		t.Fatal("explicit RFC mode must name the default scheme")
	}
}
