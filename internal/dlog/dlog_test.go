package dlog

import (
	"crypto/rand"
	"fmt"
	"testing"

	"safetypin/internal/aggsig"
	"safetypin/internal/logtree"
	"safetypin/internal/meter"
)

// fixture builds a provider plus fleet of auditors sharing a roster.
type fixture struct {
	cfg      Config
	provider *Provider
	auditors []*Auditor
}

func newFixture(t testing.TB, cfg Config, fleet int) *fixture {
	t.Helper()
	cfg = cfg.withDefaults()
	signers := make([]aggsig.Signer, fleet)
	roster := make([]aggsig.PublicKey, fleet)
	for i := 0; i < fleet; i++ {
		s, err := cfg.Scheme.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		signers[i] = s
		roster[i] = s.PublicKey()
	}
	f := &fixture{cfg: cfg, provider: NewProvider(cfg)}
	for i := 0; i < fleet; i++ {
		a, err := NewAuditor(cfg, i, roster, signers[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		f.auditors = append(f.auditors, a)
	}
	return f
}

// runEpoch drives one full epoch through every live auditor.
func (f *fixture) runEpoch(t testing.TB, live []int) error {
	t.Helper()
	hdr, err := f.provider.BuildEpoch()
	if err != nil {
		return err
	}
	var sigs [][]byte
	var signers []int
	for _, id := range live {
		a := f.auditors[id]
		chunks, err := a.ChooseChunks(hdr)
		if err != nil {
			return err
		}
		pkg, err := f.provider.AuditPackageFor(chunks)
		if err != nil {
			return err
		}
		sig, err := a.HandleAudit(pkg)
		if err != nil {
			return err
		}
		sigs = append(sigs, sig)
		signers = append(signers, id)
	}
	cm, err := f.provider.Commit(sigs, signers)
	if err != nil {
		return err
	}
	for _, id := range live {
		if err := f.auditors[id].HandleCommit(cm); err != nil {
			return err
		}
	}
	return nil
}

func testCfg() Config {
	return Config{
		NumChunks:     4,
		AuditsPerHSM:  4, // small fleet: audit everything for certainty
		MinSignerFrac: 0.5,
		Scheme:        aggsig.ECDSAConcat(), // fast scheme for most tests
	}
}

func allLive(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestEpochHappyPath(t *testing.T) {
	f := newFixture(t, testCfg(), 4)
	for i := 0; i < 10; i++ {
		if err := f.provider.Append([]byte(fmt.Sprintf("user-%d", i)), []byte("h")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.runEpoch(t, allLive(4)); err != nil {
		t.Fatal(err)
	}
	for _, a := range f.auditors {
		if a.Digest() != f.provider.Digest() {
			t.Fatal("auditor digest diverged from provider")
		}
	}
}

func TestInclusionAfterEpoch(t *testing.T) {
	f := newFixture(t, testCfg(), 4)
	if err := f.provider.Append([]byte("alice"), []byte("commitment")); err != nil {
		t.Fatal(err)
	}
	if err := f.runEpoch(t, allLive(4)); err != nil {
		t.Fatal(err)
	}
	trace, err := f.provider.ProveInclusion([]byte("alice"), []byte("commitment"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range f.auditors {
		if !a.VerifyInclusion([]byte("alice"), []byte("commitment"), trace) {
			t.Fatal("HSM rejected valid inclusion proof")
		}
		if a.VerifyInclusion([]byte("alice"), []byte("forged"), trace) {
			t.Fatal("HSM accepted forged value")
		}
	}
}

func TestMultipleEpochs(t *testing.T) {
	f := newFixture(t, testCfg(), 4)
	for e := 0; e < 5; e++ {
		for i := 0; i < 6; i++ {
			if err := f.provider.Append([]byte(fmt.Sprintf("e%d-u%d", e, i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.runEpoch(t, allLive(4)); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	// everything from every epoch provable
	trace, err := f.provider.ProveInclusion([]byte("e2-u3"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if !f.auditors[0].VerifyInclusion([]byte("e2-u3"), []byte("v"), trace) {
		t.Fatal("old-epoch entry not provable")
	}
}

func TestDuplicateAppendRejected(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	if err := f.provider.Append([]byte("u"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Append([]byte("u"), []byte("v2")); err == nil {
		t.Fatal("duplicate pending append accepted")
	}
	if err := f.runEpoch(t, allLive(2)); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Append([]byte("u"), []byte("v2")); err == nil {
		t.Fatal("duplicate committed append accepted")
	}
}

func TestMaliciousProviderCannotMutate(t *testing.T) {
	// A provider that swaps in a different tree (mutating an entry) cannot
	// produce a passing audit: the extension chain from the old digest
	// cannot exist, so staged headers either fail to build or fail audits.
	f := newFixture(t, testCfg(), 4)
	if err := f.provider.Append([]byte("victim"), []byte("honest-value")); err != nil {
		t.Fatal(err)
	}
	if err := f.runEpoch(t, allLive(4)); err != nil {
		t.Fatal(err)
	}
	// The attack: provider rebuilds its log with a mutated value and tries
	// to push an epoch from that state.
	evil := NewProvider(f.cfg)
	if err := evil.Append([]byte("victim"), []byte("evil-value")); err != nil {
		t.Fatal(err)
	}
	if err := evil.Append([]byte("new-user"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hdr, err := evil.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	a := f.auditors[0]
	chunks, err := a.ChooseChunks(hdr)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := evil.AuditPackageFor(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.HandleAudit(pkg); err == nil {
		t.Fatal("auditor signed an epoch rooted at a forged digest")
	}
}

func TestForgedCommitRejected(t *testing.T) {
	f := newFixture(t, testCfg(), 4)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hdr, err := f.provider.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// Provider skips auditing and fabricates a commit with garbage sig.
	cm := &CommitMessage{Header: hdr, AggSig: make([]byte, 64), Signers: []int{0, 1}}
	if err := f.auditors[0].HandleCommit(cm); err == nil {
		t.Fatal("forged commit accepted")
	}
}

func TestQuorumEnforced(t *testing.T) {
	cfg := testCfg()
	cfg.MinSignerFrac = 0.75
	f := newFixture(t, cfg, 4)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hdr, err := f.provider.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// Only one auditor signs — below the 3-of-4 quorum.
	a := f.auditors[0]
	chunks, _ := a.ChooseChunks(hdr)
	pkg, err := f.provider.AuditPackageFor(chunks)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := a.HandleAudit(pkg)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := f.provider.Commit([][]byte{sig}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.auditors[1].HandleCommit(cm); err == nil {
		t.Fatal("commit below quorum accepted")
	}
}

func TestFailStopHSMsDoNotBlockProgress(t *testing.T) {
	// With MinSignerFrac = 0.5, the epoch commits with half the fleet.
	f := newFixture(t, testCfg(), 4)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := f.runEpoch(t, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// The failed HSMs (2, 3) can still catch up by processing the commit?
	// They refused nothing; their digest is just stale. A fresh epoch with
	// all four requires them to resync — here we just assert the live ones
	// advanced.
	if f.auditors[0].Digest() == logtree.EmptyDigest() {
		t.Fatal("live auditor did not advance")
	}
	if f.auditors[2].Digest() != logtree.EmptyDigest() {
		t.Fatal("dead auditor advanced")
	}
}

func TestDeterministicAuditTakeover(t *testing.T) {
	// B.3: chunk duty is a public function of (root, hsmID), so anyone can
	// compute which chunks a failed HSM should have audited.
	cfg := testCfg()
	cfg.Deterministic = true
	cfg.NumChunks = 8
	cfg.AuditsPerHSM = 3
	f := newFixture(t, cfg, 4)
	for i := 0; i < 16; i++ {
		if err := f.provider.Append([]byte(fmt.Sprintf("u%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	hdr, err := f.provider.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// Auditor 1's duty is recomputable by anyone:
	duty, err := DeterministicChunks(hdr.Root, 1, hdr.NumChunks, 3)
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := f.auditors[1].ChooseChunks(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(duty) != fmt.Sprint(chosen) {
		t.Fatalf("deterministic duty mismatch: %v vs %v", duty, chosen)
	}
	// And the package for that duty passes audit.
	pkg, err := f.provider.AuditPackageFor(chosen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.auditors[1].HandleAudit(pkg); err != nil {
		t.Fatal(err)
	}
}

func TestAuditRejectsWrongChunkSet(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hdr, err := f.provider.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	a := f.auditors[0]
	if _, err := a.ChooseChunks(hdr); err != nil {
		t.Fatal(err)
	}
	// Provider sends evidence for fewer chunks than chosen.
	pkg, err := f.provider.AuditPackageFor([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.HandleAudit(pkg); err == nil {
		t.Fatal("short audit package accepted")
	}
}

func TestAuditWithoutChoiceRejected(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hdr, err := f.provider.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	_ = hdr
	pkg, err := f.provider.AuditPackageFor([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.auditors[0].HandleAudit(pkg); err == nil {
		t.Fatal("audit without recorded choice accepted")
	}
}

func TestEmptyEpochRejected(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	if _, err := f.provider.BuildEpoch(); err == nil {
		t.Fatal("empty epoch staged")
	}
}

func TestAbortKeepsPending(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.provider.BuildEpoch(); err != nil {
		t.Fatal(err)
	}
	f.provider.Abort()
	if f.provider.PendingLen() != 1 {
		t.Fatal("abort dropped pending entries")
	}
	if err := f.runEpoch(t, allLive(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.provider.Get([]byte("u")); !ok {
		t.Fatal("entry lost after abort+retry")
	}
}

func TestGarbageCollectionBudget(t *testing.T) {
	cfg := testCfg()
	cfg.GCBudget = 2
	f := newFixture(t, cfg, 1)
	a := f.auditors[0]
	if err := a.GarbageCollect(); err != nil {
		t.Fatal(err)
	}
	if err := a.GarbageCollect(); err != nil {
		t.Fatal(err)
	}
	if err := a.GarbageCollect(); err == nil {
		t.Fatal("GC beyond budget allowed")
	}
	if a.GCRemaining() != 0 {
		t.Fatal("budget accounting wrong")
	}
}

func TestGCEnablesFreshEpoch(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	if err := f.provider.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := f.runEpoch(t, allLive(2)); err != nil {
		t.Fatal(err)
	}
	f.provider.GarbageCollect()
	for _, a := range f.auditors {
		if err := a.GarbageCollect(); err != nil {
			t.Fatal(err)
		}
	}
	// Same identifier is insertable again after GC (PIN attempt reset).
	if err := f.provider.Append([]byte("u"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := f.runEpoch(t, allLive(2)); err != nil {
		t.Fatal(err)
	}
}

func TestExternalReplay(t *testing.T) {
	f := newFixture(t, testCfg(), 2)
	for i := 0; i < 8; i++ {
		if err := f.provider.Append([]byte(fmt.Sprintf("u%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.runEpoch(t, allLive(2)); err != nil {
		t.Fatal(err)
	}
	old := f.provider.Entries()
	if err := Replay(old, f.provider.Digest()); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		if err := f.provider.Append([]byte(fmt.Sprintf("u%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.runEpoch(t, allLive(2)); err != nil {
		t.Fatal(err)
	}
	if err := CheckExtendsSnapshot(old, f.provider.Entries()); err != nil {
		t.Fatal(err)
	}
	// Mutated snapshot detected.
	mutated := append([]logtree.Entry(nil), f.provider.Entries()...)
	mutated[0].Val = []byte("evil")
	if err := CheckExtendsSnapshot(old, mutated); err == nil {
		t.Fatal("external auditor missed mutation")
	}
}

func TestBLSBackendEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("BLS pairing is slow in short mode")
	}
	cfg := testCfg()
	cfg.Scheme = aggsig.BLS()
	f := newFixture(t, cfg, 3)
	for i := 0; i < 5; i++ {
		if err := f.provider.Append([]byte(fmt.Sprintf("u%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.runEpoch(t, allLive(3)); err != nil {
		t.Fatal(err)
	}
	for _, a := range f.auditors {
		if a.Digest() != f.provider.Digest() {
			t.Fatal("BLS epoch diverged")
		}
	}
}

// TestHandleCommitQuorumKeyDifferential runs BLS epochs with missing
// signers through two auditors — one on the cached subtract-missing
// quorum-key path, one forced onto the retained VerifyAggregate MSM — and
// requires identical accept/reject decisions, including on a forged
// signer set.
func TestHandleCommitQuorumKeyDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("BLS pairing is slow in short mode")
	}
	cfg := testCfg()
	cfg.Scheme = aggsig.BLS()
	cfg.MinSignerFrac = 0.4
	f := newFixture(t, cfg, 5)
	if f.auditors[0].rcache == nil {
		t.Fatal("BLS auditor should carry a roster cache")
	}
	// Auditor 1 becomes the differential oracle: no cache, naive path.
	f.auditors[1].rcache, f.auditors[1].verifier = nil, nil

	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("e%d-u%d", epoch, i)
			if err := f.provider.Append([]byte(id), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		// HSMs 3 and 4 are missing from the signer set each epoch.
		live := []int{0, 1, 2}
		hdr, err := f.provider.BuildEpoch()
		if err != nil {
			t.Fatal(err)
		}
		var sigs [][]byte
		for _, id := range live {
			a := f.auditors[id]
			chunks, err := a.ChooseChunks(hdr)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := f.provider.AuditPackageFor(chunks)
			if err != nil {
				t.Fatal(err)
			}
			sig, err := a.HandleAudit(pkg)
			if err != nil {
				t.Fatal(err)
			}
			sigs = append(sigs, sig)
		}
		cm, err := f.provider.Commit(sigs, live)
		if err != nil {
			t.Fatal(err)
		}
		// A forged signer set (claiming the missing HSM 3 signed) must be
		// rejected by both paths before either advances its digest.
		forged := *cm
		forged.Signers = []int{0, 1, 3}
		if err := f.auditors[0].HandleCommit(&forged); err == nil {
			t.Fatal("cached path accepted forged signer set")
		}
		if err := f.auditors[1].HandleCommit(&forged); err == nil {
			t.Fatal("naive path accepted forged signer set")
		}
		for _, id := range live {
			if err := f.auditors[id].HandleCommit(cm); err != nil {
				t.Fatalf("auditor %d epoch %d: %v", id, epoch, err)
			}
		}
		if f.auditors[0].Digest() != f.auditors[1].Digest() {
			t.Fatal("cached and naive auditors diverged")
		}
	}
}

func TestMeterRecordsAuditWork(t *testing.T) {
	cfg := testCfg()
	m := meter.New()
	signers := make([]aggsig.Signer, 2)
	roster := make([]aggsig.PublicKey, 2)
	for i := range signers {
		s, err := cfg.withDefaults().Scheme.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		signers[i] = s
		roster[i] = s.PublicKey()
	}
	p := NewProvider(cfg)
	a, err := NewAuditor(cfg, 0, roster, signers[0], m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append([]byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	hdr, err := p.BuildEpoch()
	if err != nil {
		t.Fatal(err)
	}
	chunks, _ := a.ChooseChunks(hdr)
	pkg, err := p.AuditPackageFor(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.HandleAudit(pkg); err != nil {
		t.Fatal(err)
	}
	if m.Get(meter.OpHMAC) == 0 {
		t.Fatal("audit hashing not metered")
	}
	if m.Get(meter.OpECDSASign) != 1 {
		t.Fatal("signing not metered")
	}
}

func BenchmarkEpoch100Inserts(b *testing.B) {
	cfg := testCfg()
	cfg.NumChunks = 8
	cfg.AuditsPerHSM = 2
	f := newFixture(b, cfg, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			if err := f.provider.Append([]byte(fmt.Sprintf("b%d-u%d", i, j)), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := f.runEpoch(b, allLive(4)); err != nil {
			b.Fatal(err)
		}
	}
}
