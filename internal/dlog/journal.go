package dlog

import (
	"fmt"

	"safetypin/internal/logtree"
)

// journal.go is the durability seam between the distributed log and the
// provider's storage engine (internal/storage). The log itself stays
// storage-agnostic: the provider installs two hooks that are invoked
// under the log's own mutex, which guarantees the journal observes
// insertions and commits in exactly the order they mutate log state —
// the invariant replay depends on, because an epoch-commit record
// consumes the first NumEntries pending insertions by position.

// SetJournal installs the journal hooks. onAppend runs after an
// insertion passes duplicate checks but before it is queued; a hook
// error rejects the insertion, so nothing enters the pending batch that
// the journal has not recorded. onCommit runs after the aggregate
// signature is assembled but before the committed tree is swapped in; a
// hook error fails the commit and leaves the staged epoch in place.
// Both hooks run with the log mutex held: they must not call back into
// the log.
func (p *Provider) SetJournal(
	onAppend func(id, val []byte) error,
	onCommit func(msg *CommitMessage, numEntries int) error,
) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onAppend = onAppend
	p.onCommit = onCommit
}

// Epoch returns the last committed epoch number.
func (p *Provider) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// PendingEntries returns a copy of the queued-but-uncommitted batch.
func (p *Provider) PendingEntries() []logtree.Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]logtree.Entry(nil), p.pending...)
}

// SnapshotState returns an atomic copy of everything a storage snapshot
// must capture: the committed entries in insertion order (replaying
// them in order rebuilds the identical digest), the pending batch, the
// epoch counter, and the committed digest for replay verification.
func (p *Provider) SnapshotState() (committed, pending []logtree.Entry, epoch uint64, digest logtree.Digest) {
	p.mu.Lock()
	defer p.mu.Unlock()
	committed = append([]logtree.Entry(nil), p.tree.Entries()...)
	pending = append([]logtree.Entry(nil), p.pending...)
	return committed, pending, p.epoch, p.tree.Digest()
}

// RestoreAppend queues an insertion during journal replay, bypassing
// the journal hooks. Duplicates are ignored — a snapshot and the WAL
// tail may overlap, and replay must be idempotent.
func (p *Provider) RestoreAppend(id, val []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tree.Get(id); ok {
		return nil
	}
	for _, e := range p.pending {
		if string(e.ID) == string(id) {
			return nil
		}
	}
	p.pending = append(p.pending, logtree.Entry{
		ID:  append([]byte(nil), id...),
		Val: append([]byte(nil), val...),
	})
	return nil
}

// RestoreCommitted inserts an already-committed entry directly into the
// committed tree during snapshot replay. Duplicates are ignored.
func (p *Provider) RestoreCommitted(id, val []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tree.Get(id); ok {
		return nil
	}
	return p.tree.Insert(id, val)
}

// SetEpoch force-sets the committed epoch counter during snapshot
// replay. It never moves the counter backwards.
func (p *Provider) SetEpoch(epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch > p.epoch {
		p.epoch = epoch
	}
}

// RestoreCommit re-applies a journaled epoch commit during replay:
// consume the first numEntries pending insertions into the committed
// tree and advance the epoch counter, verifying the resulting digest
// against the journaled one. Commits at or below the current epoch are
// skipped (snapshot/WAL overlap); a gap or digest mismatch means the
// journal is inconsistent and recovery must fail loudly rather than
// serve a log HSMs will reject.
func (p *Provider) RestoreCommit(numEntries int, epoch uint64, want logtree.Digest) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch <= p.epoch {
		return nil
	}
	if epoch != p.epoch+1 {
		return fmt.Errorf("dlog: replay epoch gap: have %d, journal commits %d", p.epoch, epoch)
	}
	if numEntries > len(p.pending) {
		return fmt.Errorf("dlog: replay epoch %d consumes %d entries, only %d pending",
			epoch, numEntries, len(p.pending))
	}
	next := p.tree.Clone()
	for _, e := range p.pending[:numEntries] {
		if err := next.Insert(e.ID, e.Val); err != nil {
			return fmt.Errorf("dlog: replay epoch %d: %w", epoch, err)
		}
	}
	if got := next.Digest(); got != want {
		return fmt.Errorf("dlog: replay epoch %d digest mismatch", epoch)
	}
	p.tree = next
	p.pending = p.pending[numEntries:]
	p.epoch = epoch
	return nil
}

// DropPendingN discards the first n pending insertions (replay of a
// journaled pending-drop). It returns how many were actually dropped.
func (p *Provider) DropPendingN(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > len(p.pending) {
		n = len(p.pending)
	}
	p.pending = p.pending[n:]
	return n
}

// DropPending discards every pending insertion — recovery's final step,
// because an uncommitted insertion was never acknowledged to its client
// (WaitForCommit had not returned) and replaying it into a half-built
// epoch would strand it. Returns the number dropped so the caller can
// journal a PendingDropRecord.
func (p *Provider) DropPending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.pending)
	p.pending = nil
	p.staged = nil
	return n
}
