// Package dlog implements SafetyPin's distributed append-only log
// (Section 6): the service provider stores the full log, HSMs store only a
// digest, and every epoch the provider proves — to randomly chosen auditors,
// in O(λ/N)-per-HSM work — that the new digest extends the old one.
//
// One epoch proceeds as in Figure 5:
//
//  1. The provider batches client insertions, splits them into numChunks
//     chunks, applies them chunk by chunk, and records per-chunk
//     (d_{i-1}, d_i, π_i) extension records.
//  2. It commits the record sequence under a Merkle root R.
//  3. Each HSM audits a subset of chunks: extension proofs verify, records
//     sit under R at the claimed index, adjacent records chain together,
//     chunk 0 starts at the HSM's current digest, and the last chunk ends at
//     the claimed new digest. If all checks pass the HSM signs (d, d′, R).
//  4. The provider aggregates the signatures; each HSM accepts d′ once the
//     aggregate verifies under a sufficient quorum of the fleet's keys.
//
// Chunk selection is either private-random (each HSM samples its own
// indices) or deterministic from PRF(R, hsmID) (Appendix B.3), which lets
// surviving HSMs recompute — and take over — a failed HSM's audit duty.
//
// Provided at least one honest HSM audits every chunk (overwhelmingly likely
// once (1−2·f_secret)·N·C ≫ N·ln N, the paper's analysis), a provider that
// mutates or drops an existing log entry cannot gather a valid quorum: the
// forged chunk's extension proof cannot exist, so honest auditors refuse to
// sign.
package dlog
