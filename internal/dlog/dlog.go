package dlog

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"safetypin/internal/aggsig"
	"safetypin/internal/logtree"
	"safetypin/internal/merkle"
	"safetypin/internal/meter"
	"safetypin/internal/prg"
)

// Config fixes the log-protocol parameters shared by the provider and all
// HSMs.
type Config struct {
	// NumChunks is the number of audit chunks per epoch (the paper uses one
	// per HSM).
	NumChunks int
	// AuditsPerHSM is C, the number of chunks each HSM audits (the paper
	// uses λ = 128 at scale; small fleets should audit everything).
	AuditsPerHSM int
	// MinSignerFrac is the fraction of the fleet whose signatures an HSM
	// requires before accepting a new digest (1 − f_live in the paper).
	MinSignerFrac float64
	// Deterministic selects Appendix B.3's PRF-based chunk assignment.
	Deterministic bool
	// Scheme is the aggregate-signature scheme; defaults to BLS.
	Scheme aggsig.Scheme
	// GCBudget bounds how many times the provider may garbage-collect the
	// log (§6.2); 0 means use DefaultGCBudget.
	GCBudget int
}

// DefaultGCBudget is the expected number of garbage collections over two
// years at the paper's monthly cadence.
const DefaultGCBudget = 24

// withDefaults normalizes a config.
func (c Config) withDefaults() Config {
	if c.Scheme == nil {
		c.Scheme = aggsig.BLS()
	}
	if c.NumChunks < 1 {
		c.NumChunks = 1
	}
	if c.AuditsPerHSM < 1 {
		c.AuditsPerHSM = 1
	}
	if c.AuditsPerHSM > c.NumChunks {
		c.AuditsPerHSM = c.NumChunks
	}
	if c.MinSignerFrac <= 0 || c.MinSignerFrac > 1 {
		c.MinSignerFrac = 0.75
	}
	if c.GCBudget == 0 {
		c.GCBudget = DefaultGCBudget
	}
	return c
}

// EpochHeader describes one proposed log update. HSMs sign its encoding.
type EpochHeader struct {
	Epoch     uint64
	OldDigest logtree.Digest
	NewDigest logtree.Digest
	Root      merkle.Hash
	NumChunks int
	NumEntry  int
}

// SigningBytes is the canonical byte string HSMs sign.
func (h EpochHeader) SigningBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString("safetypin/dlog/epoch/v1|")
	binary.Write(&buf, binary.BigEndian, h.Epoch)
	buf.Write(h.OldDigest[:])
	buf.Write(h.NewDigest[:])
	buf.Write(h.Root[:])
	binary.Write(&buf, binary.BigEndian, uint32(h.NumChunks))
	binary.Write(&buf, binary.BigEndian, uint32(h.NumEntry))
	return buf.Bytes()
}

// hash returns a key for pending-audit bookkeeping.
func (h EpochHeader) hash() [32]byte { return sha256.Sum256(h.SigningBytes()) }

// ChunkRecord is the provider's commitment for one audit chunk.
type ChunkRecord struct {
	Index int
	DPrev logtree.Digest
	DNext logtree.Digest
	Proof *logtree.ExtensionProof
}

func encodeRecord(r ChunkRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("dlog: encoding chunk record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRecord(b []byte) (ChunkRecord, error) {
	var r ChunkRecord
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return ChunkRecord{}, fmt.Errorf("dlog: decoding chunk record: %w", err)
	}
	return r, nil
}

// ChunkEvidence is one committed record plus its Merkle inclusion proof.
type ChunkEvidence struct {
	LeafBytes []byte
	Proof     *merkle.Proof
}

// AuditPackage is everything one HSM needs to audit its chunk assignment.
type AuditPackage struct {
	Header EpochHeader
	// Chunks holds the records for the HSM's chosen indices, in order.
	Chunks []ChunkEvidence
	// Neighbors holds, for each chosen index i > 0, the record of chunk
	// i−1 (so the auditor can check digest adjacency). Entries for chosen
	// index 0 are nil.
	Neighbors []ChunkEvidence
}

// CommitMessage finalizes an epoch: the aggregate signature plus the roster
// indices of the HSMs that signed.
type CommitMessage struct {
	Header  EpochHeader
	AggSig  []byte
	Signers []int
}

// --- Provider side ---

// Provider maintains the full log and drives epoch updates.
type Provider struct {
	mu      sync.Mutex
	cfg     Config
	tree    *logtree.Tree
	pending []logtree.Entry
	epoch   uint64

	// staged epoch state
	staged *stagedEpoch

	// journal hooks (see journal.go); invoked under mu so the journal
	// order matches the state-mutation order exactly.
	onAppend func(id, val []byte) error
	onCommit func(msg *CommitMessage, numEntries int) error
}

type stagedEpoch struct {
	header     EpochHeader
	leafBytes  [][]byte
	mtree      *merkle.Tree
	nextTree   *logtree.Tree
	numEntries int
}

// NewProvider returns a provider with an empty log.
func NewProvider(cfg Config) *Provider {
	return &Provider{cfg: cfg.withDefaults(), tree: logtree.New()}
}

// Digest returns the digest of the last committed log.
func (p *Provider) Digest() logtree.Digest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree.Digest()
}

// Append queues an insertion for the next epoch. It fails fast on
// identifiers already in the committed log or the pending batch.
func (p *Provider) Append(id, val []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tree.Get(id); ok {
		return fmt.Errorf("dlog: %w: %q", logtree.ErrDuplicate, string(id))
	}
	for _, e := range p.pending {
		if bytes.Equal(e.ID, id) {
			return fmt.Errorf("dlog: %w (pending): %q", logtree.ErrDuplicate, string(id))
		}
	}
	if p.onAppend != nil {
		if err := p.onAppend(id, val); err != nil {
			return fmt.Errorf("dlog: journaling insertion: %w", err)
		}
	}
	p.pending = append(p.pending, logtree.Entry{
		ID:  append([]byte(nil), id...),
		Val: append([]byte(nil), val...),
	})
	return nil
}

// PendingLen returns the number of queued insertions.
func (p *Provider) PendingLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// ErrNoPending is returned by BuildEpoch when no insertions are queued;
// epoch schedulers treat it as "everything already committed".
var ErrNoPending = errors.New("dlog: no pending insertions")

// BuildEpoch stages the pending batch into chunked extension records and
// returns the epoch header. It fails with ErrNoPending if nothing is
// pending.
func (p *Provider) BuildEpoch() (EpochHeader, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pending) == 0 {
		return EpochHeader{}, ErrNoPending
	}
	staging := p.tree.Clone()
	oldDigest := staging.Digest()
	numChunks := p.cfg.NumChunks
	batch := p.pending
	records := make([]ChunkRecord, 0, numChunks)
	leaves := make([][]byte, 0, numChunks)
	for i := 0; i < numChunks; i++ {
		lo := i * len(batch) / numChunks
		hi := (i + 1) * len(batch) / numChunks
		dPrev := staging.Digest()
		proof, err := staging.ProveExtends(batch[lo:hi])
		if err != nil {
			return EpochHeader{}, err
		}
		rec := ChunkRecord{Index: i, DPrev: dPrev, DNext: staging.Digest(), Proof: proof}
		leaf, err := encodeRecord(rec)
		if err != nil {
			return EpochHeader{}, err
		}
		records = append(records, rec)
		leaves = append(leaves, leaf)
	}
	mtree, err := merkle.New(leaves)
	if err != nil {
		return EpochHeader{}, err
	}
	hdr := EpochHeader{
		Epoch:     p.epoch + 1,
		OldDigest: oldDigest,
		NewDigest: staging.Digest(),
		Root:      mtree.Root(),
		NumChunks: numChunks,
		NumEntry:  len(batch),
	}
	p.staged = &stagedEpoch{
		header:     hdr,
		leafBytes:  leaves,
		mtree:      mtree,
		nextTree:   staging,
		numEntries: len(batch),
	}
	return hdr, nil
}

// AuditPackageFor assembles the evidence for one HSM's chunk choice against
// the currently staged epoch.
func (p *Provider) AuditPackageFor(chunks []int) (*AuditPackage, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.staged == nil {
		return nil, errors.New("dlog: no staged epoch")
	}
	pkg := &AuditPackage{Header: p.staged.header}
	for _, idx := range chunks {
		if idx < 0 || idx >= len(p.staged.leafBytes) {
			return nil, fmt.Errorf("dlog: chunk index %d out of range", idx)
		}
		ev, err := p.evidence(idx)
		if err != nil {
			return nil, err
		}
		pkg.Chunks = append(pkg.Chunks, ev)
		if idx > 0 {
			nb, err := p.evidence(idx - 1)
			if err != nil {
				return nil, err
			}
			pkg.Neighbors = append(pkg.Neighbors, nb)
		} else {
			pkg.Neighbors = append(pkg.Neighbors, ChunkEvidence{})
		}
	}
	return pkg, nil
}

// evidence builds the committed-leaf evidence for one chunk. Caller holds
// the lock.
func (p *Provider) evidence(idx int) (ChunkEvidence, error) {
	proof, err := p.staged.mtree.Prove(idx)
	if err != nil {
		return ChunkEvidence{}, err
	}
	return ChunkEvidence{LeafBytes: p.staged.leafBytes[idx], Proof: proof}, nil
}

// Commit finalizes the staged epoch after signature collection, swapping in
// the new tree.
func (p *Provider) Commit(sigs [][]byte, signers []int) (*CommitMessage, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.staged == nil {
		return nil, errors.New("dlog: no staged epoch")
	}
	agg, err := p.cfg.Scheme.Aggregate(sigs)
	if err != nil {
		return nil, err
	}
	msg := &CommitMessage{Header: p.staged.header, AggSig: agg, Signers: signers}
	if p.onCommit != nil {
		// Journal before the swap: if the journal rejects the record
		// the staged epoch stays intact and nothing was mutated, so
		// the scheduler can abort or retry.
		if err := p.onCommit(msg, p.staged.numEntries); err != nil {
			return nil, fmt.Errorf("dlog: journaling epoch commit: %w", err)
		}
	}
	p.tree = p.staged.nextTree
	p.pending = p.pending[p.staged.numEntries:]
	p.epoch = p.staged.header.Epoch
	p.staged = nil
	return msg, nil
}

// Abort discards the staged epoch (e.g. after signature collection failed);
// pending insertions stay queued for a retry.
func (p *Provider) Abort() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.staged = nil
}

// ProveInclusion serves a client's request for a log-inclusion proof
// against the committed log.
func (p *Provider) ProveInclusion(id, val []byte) (*logtree.Trace, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree.ProveIncludes(id, val)
}

// Get returns the committed value for id.
func (p *Provider) Get(id []byte) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree.Get(id)
}

// Entries returns a snapshot of the committed log for external auditors.
func (p *Provider) Entries() []logtree.Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]logtree.Entry(nil), p.tree.Entries()...)
}

// GarbageCollect resets the committed log to empty (§6.2). The caller must
// separately instruct HSMs, which enforce their GC budget.
func (p *Provider) GarbageCollect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tree = logtree.New()
	p.pending = nil
	p.staged = nil
}

// --- HSM (auditor) side ---

// Auditor is the HSM-side log state: the digest, the fleet roster, and the
// signing key.
type Auditor struct {
	mu       sync.Mutex
	cfg      Config
	id       int
	digest   logtree.Digest
	roster   []aggsig.PublicKey
	signer   aggsig.Signer
	gcLeft   int
	pending  map[[32]byte][]int // headerHash → chosen chunks (random mode)
	meter    *meter.Meter
	minSigns int

	// rcache caches the full-roster aggregate key so each epoch's quorum
	// key costs O(missing signers) instead of an O(n) MSM; nil (with a
	// nil verifier) when the scheme cannot subtract keys, in which case
	// HandleCommit falls back to VerifyAggregate. The naive path is also
	// the differential oracle (TestHandleCommitQuorumKeyDifferential).
	rcache   *aggsig.RosterCache
	verifier aggsig.AggregateKeyVerifier
}

// NewAuditor creates the log state for HSM id out of fleetSize members.
// roster must hold every member's aggregate-signature public key in fleet
// order.
func NewAuditor(cfg Config, id int, roster []aggsig.PublicKey, signer aggsig.Signer, m *meter.Meter) (*Auditor, error) {
	return newAuditor(cfg, id, roster, signer, m, nil)
}

// NewAuditorShared is NewAuditor with a fleet-shared roster cache. With
// per-auditor caches an n-HSM fleet holds n copies of the roster and
// rebuilds the same full-roster aggregate n times on its first epoch
// commit; a single pre-warmed cache (RosterCache is mutex-guarded and
// safe to share) amortizes both, which is what makes 10k-HSM fleets
// start in reasonable time. cache must be built over cfg.Scheme and
// already hold this roster; nil falls back to a private cache.
func NewAuditorShared(cfg Config, id int, roster []aggsig.PublicKey, signer aggsig.Signer, m *meter.Meter, cache *aggsig.RosterCache) (*Auditor, error) {
	return newAuditor(cfg, id, roster, signer, m, cache)
}

func newAuditor(cfg Config, id int, roster []aggsig.PublicKey, signer aggsig.Signer, m *meter.Meter, cache *aggsig.RosterCache) (*Auditor, error) {
	cfg = cfg.withDefaults()
	if id < 0 || id >= len(roster) {
		return nil, fmt.Errorf("dlog: auditor id %d out of roster range %d", id, len(roster))
	}
	minSigns := int(cfg.MinSignerFrac * float64(len(roster)))
	if minSigns < 1 {
		minSigns = 1
	}
	a := &Auditor{
		cfg:      cfg,
		id:       id,
		digest:   logtree.EmptyDigest(),
		roster:   roster,
		signer:   signer,
		gcLeft:   cfg.GCBudget,
		pending:  make(map[[32]byte][]int),
		meter:    m,
		minSigns: minSigns,
	}
	if v, ok := cfg.Scheme.(aggsig.AggregateKeyVerifier); ok {
		if cache != nil {
			a.rcache, a.verifier = cache, v
		} else if c := aggsig.NewRosterCache(cfg.Scheme); c != nil {
			c.SetRoster(roster)
			a.rcache, a.verifier = c, v
		}
	}
	return a, nil
}

// Digest returns the auditor's current accepted digest.
func (a *Auditor) Digest() logtree.Digest {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.digest
}

// ChooseChunks selects the chunks this HSM will audit for the given header
// and remembers the choice. In deterministic mode (B.3) the choice is
// PRF(root, id); otherwise it is sampled privately at random.
func (a *Auditor) ChooseChunks(h EpochHeader) ([]int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.cfg.AuditsPerHSM
	if c > h.NumChunks {
		c = h.NumChunks
	}
	var idx []int
	var err error
	if a.cfg.Deterministic {
		idx, err = DeterministicChunks(h.Root, a.id, h.NumChunks, c)
	} else {
		var seed [32]byte
		if _, rerr := rand.Read(seed[:]); rerr != nil {
			return nil, rerr
		}
		idx, err = prg.Indices("safetypin/dlog/audit-random/v1", seed[:], c, h.NumChunks)
	}
	if err != nil {
		return nil, err
	}
	a.pending[h.hash()] = idx
	return idx, nil
}

// DeterministicChunks is the Appendix B.3 assignment: any party can compute
// which chunks HSM hsmID must audit for a given Merkle root, enabling
// takeover of failed HSMs' duties.
func DeterministicChunks(root merkle.Hash, hsmID, numChunks, count int) ([]int, error) {
	if count > numChunks {
		count = numChunks
	}
	seed := make([]byte, 0, len(root)+8)
	seed = append(seed, root[:]...)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(hsmID))
	seed = append(seed, idb[:]...)
	return prg.Indices("safetypin/dlog/audit-det/v1", seed, count, numChunks)
}

// errAudit annotates audit failures with the auditor identity.
func (a *Auditor) errAudit(format string, args ...any) error {
	return fmt.Errorf("dlog: auditor %d: %s", a.id, fmt.Sprintf(format, args...))
}

// HandleAudit verifies an audit package against this HSM's chunk choice and
// current digest, returning this HSM's signature over the header.
func (a *Auditor) HandleAudit(pkg *AuditPackage) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := pkg.Header
	if h.OldDigest != a.digest {
		return nil, a.errAudit("header old digest does not match mine")
	}
	if h.NumChunks < 1 {
		return nil, a.errAudit("no chunks")
	}
	want, ok := a.pending[h.hash()]
	if a.cfg.Deterministic {
		var err error
		c := a.cfg.AuditsPerHSM
		want, err = DeterministicChunks(h.Root, a.id, h.NumChunks, c)
		if err != nil {
			return nil, err
		}
	} else if !ok {
		return nil, a.errAudit("no recorded chunk choice for this header")
	}
	if len(pkg.Chunks) != len(want) || len(pkg.Neighbors) != len(want) {
		return nil, a.errAudit("package covers %d chunks, want %d", len(pkg.Chunks), len(want))
	}
	for j, idx := range want {
		rec, err := a.verifyEvidence(h, pkg.Chunks[j], idx)
		if err != nil {
			return nil, err
		}
		// Extension proof: DNext really extends DPrev by the chunk's batch.
		a.meter.Add(meter.OpHMAC, int64(len(rec.Proof.Inserts))*8)
		if err := logtree.VerifyExtends(rec.DPrev, rec.DNext, rec.Proof); err != nil {
			return nil, a.errAudit("chunk %d extension invalid: %v", idx, err)
		}
		// Anchoring and adjacency.
		if idx == 0 {
			if rec.DPrev != a.digest {
				return nil, a.errAudit("chunk 0 does not start at my digest")
			}
		} else {
			prev, err := a.verifyEvidence(h, pkg.Neighbors[j], idx-1)
			if err != nil {
				return nil, err
			}
			if rec.DPrev != prev.DNext {
				return nil, a.errAudit("chunk %d does not chain from chunk %d", idx, idx-1)
			}
		}
		if idx == h.NumChunks-1 && rec.DNext != h.NewDigest {
			return nil, a.errAudit("last chunk does not end at header digest")
		}
	}
	delete(a.pending, h.hash())
	a.cfg.Scheme.MeterSign(a.meter)
	return a.signer.Sign(h.SigningBytes())
}

// verifyEvidence checks a committed leaf against the header root and
// returns the decoded record.
func (a *Auditor) verifyEvidence(h EpochHeader, ev ChunkEvidence, wantIdx int) (ChunkRecord, error) {
	if ev.Proof == nil {
		return ChunkRecord{}, a.errAudit("missing evidence for chunk %d", wantIdx)
	}
	if ev.Proof.Index != wantIdx {
		return ChunkRecord{}, a.errAudit("evidence index %d, want %d", ev.Proof.Index, wantIdx)
	}
	a.meter.Add(meter.OpHMAC, int64(len(ev.Proof.Steps))+1)
	if !merkle.Verify(h.Root, h.NumChunks, ev.LeafBytes, ev.Proof) {
		return ChunkRecord{}, a.errAudit("evidence for chunk %d not under root", wantIdx)
	}
	rec, err := decodeRecord(ev.LeafBytes)
	if err != nil {
		return ChunkRecord{}, err
	}
	if rec.Index != wantIdx {
		return ChunkRecord{}, a.errAudit("record index %d, want %d", rec.Index, wantIdx)
	}
	return rec, nil
}

// HandleCommit verifies the aggregate signature and advances the digest.
func (a *Auditor) HandleCommit(cm *CommitMessage) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cm.Header.OldDigest != a.digest {
		return a.errAudit("commit old digest does not match mine")
	}
	if len(cm.Signers) < a.minSigns {
		return a.errAudit("only %d signers, need %d", len(cm.Signers), a.minSigns)
	}
	seen := make(map[int]bool, len(cm.Signers))
	pks := make([]aggsig.PublicKey, 0, len(cm.Signers))
	for _, s := range cm.Signers {
		if s < 0 || s >= len(a.roster) || seen[s] {
			return a.errAudit("bad signer index %d", s)
		}
		seen[s] = true
		pks = append(pks, a.roster[s])
	}
	a.cfg.Scheme.MeterVerify(a.meter, len(pks))
	ok, err := a.verifyQuorum(pks, cm)
	if err != nil {
		return fmt.Errorf("dlog: auditor %d: verifying aggregate: %w", a.id, err)
	}
	if !ok {
		return a.errAudit("aggregate signature invalid")
	}
	a.digest = cm.Header.NewDigest
	return nil
}

// verifyQuorum checks the commit's aggregate signature. With a roster
// cache the quorum key is the cached full-roster aggregate minus the
// missing signers (O(missing) instead of the O(n) MSM inside
// VerifyAggregate); schemes without key subtraction take the retained
// aggregate-and-verify path. Caller holds mu and has validated Signers.
func (a *Auditor) verifyQuorum(pks []aggsig.PublicKey, cm *CommitMessage) (bool, error) {
	msg := cm.Header.SigningBytes()
	if a.rcache != nil {
		apk, err := a.rcache.QuorumKey(cm.Signers)
		if err != nil {
			return false, err
		}
		return a.verifier.VerifyWithKey(apk, msg, cm.AggSig)
	}
	return a.cfg.Scheme.VerifyAggregate(pks, msg, cm.AggSig)
}

// VerifyInclusion checks a client's log-inclusion proof against the
// auditor's current digest (the check each HSM performs before releasing a
// decryption share, step Ð of Figure 3).
func (a *Auditor) VerifyInclusion(id, val []byte, tr *logtree.Trace) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.meter.Add(meter.OpHMAC, int64(len(tr.Steps))+1)
	return logtree.VerifyIncludes(a.digest, id, val, tr)
}

// GarbageCollect resets the digest to the empty log, enforcing the bounded
// GC budget (§6.2).
func (a *Auditor) GarbageCollect() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.gcLeft <= 0 {
		return a.errAudit("garbage-collection budget exhausted")
	}
	a.gcLeft--
	a.digest = logtree.EmptyDigest()
	return nil
}

// SyncDigestForTest installs a digest obtained out of band. Provisioning a
// brand-new HSM into a running fleet requires a trust-anchored digest
// handoff (the paper's group-membership extension, §6); the experiment
// harness uses this to fast-forward freshly created auditors past bulk
// setup epochs it does not measure.
func (a *Auditor) SyncDigestForTest(d logtree.Digest) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.digest = d
	return nil
}

// GCRemaining reports the remaining garbage collections.
func (a *Auditor) GCRemaining() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gcLeft
}

// --- external auditor (§6.3) ---

// Replay rebuilds a log from its entries and checks it reaches the claimed
// digest; any third party can run this against published log snapshots.
func Replay(entries []logtree.Entry, want logtree.Digest) error {
	t := logtree.New()
	for i, e := range entries {
		if err := t.Insert(e.ID, e.Val); err != nil {
			return fmt.Errorf("dlog: replay entry %d: %w", i, err)
		}
	}
	if t.Digest() != want {
		return errors.New("dlog: replayed digest does not match")
	}
	return nil
}

// CheckExtendsSnapshot verifies that newEntries extends oldEntries as a
// plain prefix with no duplicate identifiers — the external-auditor check
// of §6.3.
func CheckExtendsSnapshot(oldEntries, newEntries []logtree.Entry) error {
	if len(newEntries) < len(oldEntries) {
		return errors.New("dlog: new log shorter than old log")
	}
	for i := range oldEntries {
		if !bytes.Equal(oldEntries[i].ID, newEntries[i].ID) || !bytes.Equal(oldEntries[i].Val, newEntries[i].Val) {
			return fmt.Errorf("dlog: entry %d mutated", i)
		}
	}
	seen := make(map[string]bool, len(newEntries))
	for i, e := range newEntries {
		if seen[string(e.ID)] {
			return fmt.Errorf("dlog: duplicate identifier at entry %d", i)
		}
		seen[string(e.ID)] = true
	}
	return nil
}
