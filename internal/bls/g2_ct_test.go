package bls

// g2_ct_test.go proves the constant-time keygen comb bit-identical to
// the vartime fixed-base walk, and the batch fixed-base APIs identical
// to the single-point paths, across the edge scalars the fixups and the
// exception-freeness argument cover: 0, 1, r−1, r, ≥ r, negatives,
// repeated scalars, and batch sizes 0/1/odd.

import (
	"bytes"
	crand "crypto/rand"
	"math/big"
	"math/rand"
	"testing"
)

// g2EdgeScalars is the boundary set shared by the differential tests: the
// masked-fixup cases (0, tiny digits), window boundaries, r−1, and the
// out-of-range pre-reduction contract (r, > r, negative).
func g2EdgeScalars() []*big.Int {
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(15),
		big.NewInt(16),
		big.NewInt(17),
		big.NewInt(255),
		new(big.Int).Sub(Order(), big.NewInt(1)), // r − 1 = −1 mod r
		new(big.Int).Sub(Order(), big.NewInt(2)),
		Order(),                                  // reduces to 0
		new(big.Int).Add(Order(), big.NewInt(5)), // ≥ r
		new(big.Int).Mul(Order(), big.NewInt(3)),
		new(big.Int).Neg(big.NewInt(7)),
		new(big.Int).Lsh(big.NewInt(1), 200),       // long zero-window tail
		new(big.Int).SetBit(big.NewInt(3), 252, 1), // leading digit + gap
	}
}

func TestG2MulGenSecretDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5afe2))
	scalars := g2EdgeScalars()
	for i := 0; i < 40; i++ {
		scalars = append(scalars, new(big.Int).Rand(rng, Order()))
	}
	for _, k := range scalars {
		want := G2MulGen(k)
		got := G2MulGenSecret(k)
		if !want.Equal(got) {
			t.Fatalf("G2MulGenSecret(%v) disagrees with G2MulGen", k)
		}
		// Bit-identical serialization, not just group equality.
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("G2MulGenSecret(%v) serialization differs from G2MulGen", k)
		}
	}
}

func TestMulGenBatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5afe3))
	base := g2EdgeScalars()
	// Repeated scalars exercise the shared-inversion path on equal
	// z-coordinates.
	base = append(base, base[7], base[7])
	for i := 0; i < 20; i++ {
		base = append(base, new(big.Int).Rand(rng, Order()))
	}
	// Batch sizes 0, 1, and odd.
	for _, n := range []int{0, 1, 3, 7, len(base)} {
		ks := base[:n]
		g1s := G1MulGenBatch(ks)
		g2s := G2MulGenBatch(ks)
		if len(g1s) != n || len(g2s) != n {
			t.Fatalf("batch size %d: got %d/%d results", n, len(g1s), len(g2s))
		}
		for i, k := range ks {
			if want := G1MulGen(k); !want.Equal(g1s[i]) {
				t.Fatalf("G1MulGenBatch[%d] (k=%v) disagrees with G1MulGen", i, k)
			}
			if want := G2MulGen(k); !want.Equal(g2s[i]) {
				t.Fatalf("G2MulGenBatch[%d] (k=%v) disagrees with G2MulGen", i, k)
			}
			if !bytes.Equal(G1MulGen(k).Bytes(), g1s[i].Bytes()) {
				t.Fatalf("G1MulGenBatch[%d] serialization differs", i)
			}
			if !bytes.Equal(G2MulGen(k).Bytes(), g2s[i].Bytes()) {
				t.Fatalf("G2MulGenBatch[%d] serialization differs", i)
			}
		}
	}
}

// TestMulGenBatchNormalized asserts the batch contract: every non-infinity
// result comes back in affine (Z = 1) form, so downstream serialization
// pays no further inversions.
func TestMulGenBatchNormalized(t *testing.T) {
	ks := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(12345)}
	for i, p := range G1MulGenBatch(ks) {
		if i == 0 {
			if !p.IsInfinity() {
				t.Fatalf("zero scalar must map to infinity")
			}
			continue
		}
		if !p.z.isOne() {
			t.Fatalf("G1MulGenBatch[%d] not normalized", i)
		}
	}
	for i, p := range G2MulGenBatch(ks) {
		if i == 0 {
			if !p.IsInfinity() {
				t.Fatalf("zero scalar must map to infinity")
			}
			continue
		}
		if !p.z.isOne() {
			t.Fatalf("G2MulGenBatch[%d] not normalized", i)
		}
	}
}

func TestGenerateKeyBatch(t *testing.T) {
	sks, pks, err := GenerateKeyBatch(crand.Reader, 17) // odd batch size
	if err != nil {
		t.Fatal(err)
	}
	if len(sks) != 17 || len(pks) != 17 {
		t.Fatalf("got %d/%d keys", len(sks), len(pks))
	}
	for i := range sks {
		// Public key matches the vartime oracle on the same scalar and is
		// already normalized.
		if want := G2MulGen(sks[i].s); !want.Equal(pks[i].p) {
			t.Fatalf("key %d: public key disagrees with G2MulGen(sk)", i)
		}
		if !pks[i].p.z.isOne() {
			t.Fatalf("key %d: public key not batch-normalized", i)
		}
		// The pair signs and verifies like any GenerateKey pair.
		sig := sks[i].Sign([]byte("batch-keygen"))
		ok, err := pks[i].Verify([]byte("batch-keygen"), sig)
		if err != nil || !ok {
			t.Fatalf("key %d: sign/verify failed: ok=%v err=%v", i, ok, err)
		}
	}
	// Degenerate sizes.
	if sks, pks, err := GenerateKeyBatch(crand.Reader, 0); err != nil || len(sks) != 0 || len(pks) != 0 {
		t.Fatalf("empty batch: %d/%d keys, err=%v", len(sks), len(pks), err)
	}
	if _, _, err := GenerateKeyBatch(crand.Reader, -1); err == nil {
		t.Fatal("negative batch size must error")
	}
}

// FuzzG2MulGenSecret cross-checks the CT comb against the vartime walk
// and the generic double-and-add oracle on arbitrary scalar bytes.
func FuzzG2MulGenSecret(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1})
	f.Add(Order().Bytes())
	f.Add(new(big.Int).Sub(Order(), big.NewInt(1)).Bytes())
	f.Add(new(big.Int).Lsh(big.NewInt(1), 255).Bytes())
	f.Fuzz(func(t *testing.T, kb []byte) {
		if len(kb) > 40 {
			kb = kb[:40]
		}
		k := new(big.Int).SetBytes(kb)
		want := G2MulGen(k)
		got := G2MulGenSecret(k)
		if !want.Equal(got) {
			t.Fatalf("comb disagrees with vartime walk on k=%v", k)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("comb serialization differs on k=%v", k)
		}
	})
}

// FuzzMulGenBatch cross-checks the batch walk + shared inversion against
// the single-point path on arbitrary small batches.
func FuzzMulGenBatch(f *testing.F) {
	f.Add([]byte{0, 1, 2}, uint8(3))
	f.Add(Order().Bytes(), uint8(1))
	f.Fuzz(func(t *testing.T, seed []byte, n uint8) {
		ks := make([]*big.Int, int(n)%9)
		for i := range ks {
			lo := (i * 7) % (len(seed) + 1)
			ks[i] = new(big.Int).SetBytes(seed[lo:])
		}
		for i, p := range G2MulGenBatch(ks) {
			if want := G2MulGen(ks[i]); !want.Equal(p) {
				t.Fatalf("batch[%d] disagrees on k=%v", i, ks[i])
			}
		}
		for i, p := range G1MulGenBatch(ks) {
			if want := G1MulGen(ks[i]); !want.Equal(p) {
				t.Fatalf("g1 batch[%d] disagrees on k=%v", i, ks[i])
			}
		}
	})
}

func BenchmarkG2MulGenSecret(b *testing.B) {
	k := new(big.Int).Sub(Order(), big.NewInt(12345))
	G2MulGenSecret(k) // warm the table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		G2MulGenSecret(k)
	}
}

func BenchmarkKeyGenBatch(b *testing.B) {
	rng := crand.Reader
	_, _, _ = GenerateKeyBatch(rng, 1) // warm the table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GenerateKeyBatch(rng, 64); err != nil {
			b.Fatal(err)
		}
	}
}
