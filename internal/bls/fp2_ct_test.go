package bls

// fp2_ct_test.go proves the masked Fp2 kernels bit-identical to the fast
// fp2.go arithmetic on random and boundary operands (0, 1, p−1 in either
// coordinate), the same differential contract fp_ct_test.go pins for the
// base field.

import (
	"math/big"
	"testing"
)

func fp2CTBoundary() []fe2 {
	var pm1, one fe
	feFromBig(&pm1, new(big.Int).Sub(pMod, big.NewInt(1)))
	feFromBig(&one, big.NewInt(1))
	return []fe2{
		{},
		{c0: one},
		{c1: one},
		{c0: pm1, c1: pm1},
		{c0: one, c1: pm1},
	}
}

func TestFp2CTKernelsDifferential(t *testing.T) {
	cases := fp2CTBoundary()
	for i := 0; i < 50; i++ {
		cases = append(cases, randFe2(t))
	}
	for i := range cases {
		for j := range cases {
			x, y := cases[i], cases[j]
			var want, got fe2
			want.add(&x, &y)
			fe2AddCT(&got, &x, &y)
			if want != got {
				t.Fatalf("fe2AddCT(%d,%d) differs", i, j)
			}
			want.sub(&x, &y)
			fe2SubCT(&got, &x, &y)
			if want != got {
				t.Fatalf("fe2SubCT(%d,%d) differs", i, j)
			}
			want.mul(&x, &y)
			fe2MulCT(&got, &x, &y)
			if want != got {
				t.Fatalf("fe2MulCT(%d,%d) differs", i, j)
			}
		}
		x := cases[i]
		var want, got fe2
		want.double(&x)
		fe2DoubleCT(&got, &x)
		if want != got {
			t.Fatalf("fe2DoubleCT(%d) differs", i)
		}
		want.square(&x)
		fe2SquareCT(&got, &x)
		if want != got {
			t.Fatalf("fe2SquareCT(%d) differs", i)
		}
		if zero := (fe2{}); fe2IsZeroMask(&x) != 1 && x == zero {
			t.Fatalf("fe2IsZeroMask missed zero at %d", i)
		}
	}
	var z fe2
	if fe2IsZeroMask(&z) != 1 {
		t.Fatal("fe2IsZeroMask(0) != 1")
	}
	one := fe2{}
	one.setOne()
	if fe2IsZeroMask(&one) != 0 {
		t.Fatal("fe2IsZeroMask(1) != 0")
	}
	// fe2CMov keeps/overwrites by cond.
	a, b := fp2CTBoundary()[3], fp2CTBoundary()[1]
	got := a
	fe2CMov(&got, &b, 0)
	if got != a {
		t.Fatal("fe2CMov(cond=0) modified dst")
	}
	fe2CMov(&got, &b, 1)
	if got != b {
		t.Fatal("fe2CMov(cond=1) did not copy src")
	}
}
