package bls

// fp6.go implements Fp6 = Fp2[v]/(v³ − ξ) with interpolated (Karatsuba-
// style, 6 fe2-mul) multiplication, CH-SQR3 squaring (2 muls + 3 squares),
// and the sparse products mulBy01/mulBy1 that the Miller loop's line
// multiplications reduce to.

type fe6 struct{ b0, b1, b2 fe2 }

func (z *fe6) set(x *fe6) { *z = *x }
func (z *fe6) setZero()   { *z = fe6{} }
func (z *fe6) setOne() {
	z.b0.setOne()
	z.b1.setZero()
	z.b2.setZero()
}
func (x *fe6) isZero() bool { return x.b0.isZero() && x.b1.isZero() && x.b2.isZero() }
func (x *fe6) isOne() bool  { return x.b0.isOne() && x.b1.isZero() && x.b2.isZero() }

func (x *fe6) equal(y *fe6) bool {
	return x.b0.equal(&y.b0) && x.b1.equal(&y.b1) && x.b2.equal(&y.b2)
}

func (z *fe6) add(x, y *fe6) {
	z.b0.add(&x.b0, &y.b0)
	z.b1.add(&x.b1, &y.b1)
	z.b2.add(&x.b2, &y.b2)
}

func (z *fe6) double(x *fe6) { z.add(x, x) }

func (z *fe6) sub(x, y *fe6) {
	z.b0.sub(&x.b0, &y.b0)
	z.b1.sub(&x.b1, &y.b1)
	z.b2.sub(&x.b2, &y.b2)
}

func (z *fe6) neg(x *fe6) {
	z.b0.neg(&x.b0)
	z.b1.neg(&x.b1)
	z.b2.neg(&x.b2)
}

// mul sets z = x·y (Karatsuba interpolation, 6 fe2 multiplications).
func (z *fe6) mul(x, y *fe6) {
	var t0, t1, t2, s0, s1, c0, c1, c2 fe2
	t0.mul(&x.b0, &y.b0)
	t1.mul(&x.b1, &y.b1)
	t2.mul(&x.b2, &y.b2)

	// c0 = t0 + ξ((b1+b2)(y1+y2) − t1 − t2)
	s0.add(&x.b1, &x.b2)
	s1.add(&y.b1, &y.b2)
	c0.mul(&s0, &s1)
	c0.sub(&c0, &t1)
	c0.sub(&c0, &t2)
	c0.mulByNonResidue(&c0)
	c0.add(&c0, &t0)

	// c1 = (b0+b1)(y0+y1) − t0 − t1 + ξ t2
	s0.add(&x.b0, &x.b1)
	s1.add(&y.b0, &y.b1)
	c1.mul(&s0, &s1)
	c1.sub(&c1, &t0)
	c1.sub(&c1, &t1)
	s0.mulByNonResidue(&t2)
	c1.add(&c1, &s0)

	// c2 = (b0+b2)(y0+y2) − t0 − t2 + t1
	s0.add(&x.b0, &x.b2)
	s1.add(&y.b0, &y.b2)
	c2.mul(&s0, &s1)
	c2.sub(&c2, &t0)
	c2.sub(&c2, &t2)
	c2.add(&c2, &t1)

	z.b0, z.b1, z.b2 = c0, c1, c2
}

// square sets z = x² by CH-SQR3: s0 = b0², s1 = 2b0b1, s2 = (b0−b1+b2)²,
// s3 = 2b1b2, s4 = b2²; 2 fe2 muls + 3 fe2 squares vs mul's 6 muls.
func (z *fe6) square(x *fe6) {
	var s0, s1, s2, s3, s4, t fe2
	s0.square(&x.b0)
	s1.mul(&x.b0, &x.b1)
	s1.double(&s1)
	t.sub(&x.b0, &x.b1)
	t.add(&t, &x.b2)
	s2.square(&t)
	s3.mul(&x.b1, &x.b2)
	s3.double(&s3)
	s4.square(&x.b2)

	// c0 = s0 + ξ s3; c1 = s1 + ξ s4; c2 = s1 + s2 + s3 − s0 − s4
	t.mulByNonResidue(&s3)
	z.b0.add(&s0, &t)
	t.mulByNonResidue(&s4)
	var c1 fe2
	c1.add(&s1, &t)
	var c2 fe2
	c2.add(&s1, &s2)
	c2.add(&c2, &s3)
	c2.sub(&c2, &s0)
	c2.sub(&c2, &s4)
	z.b1, z.b2 = c1, c2
}

// mulByNonResidue sets z = v·x: (b0 + b1 v + b2 v²)·v = ξ b2 + b0 v + b1 v².
func (z *fe6) mulByNonResidue(x *fe6) {
	var t fe2
	t.mulByNonResidue(&x.b2)
	z.b2 = x.b1
	z.b1 = x.b0
	z.b0 = t
}

// mulBy01 sets z = x·(c0 + c1·v) — the sparse product line multiplications
// need (5 fe2 muls instead of 6).
func (z *fe6) mulBy01(x *fe6, c0, c1 *fe2) {
	var a, b, t, u0, u1, u2 fe2
	a.mul(&x.b0, c0)
	b.mul(&x.b1, c1)

	// z0 = a + ξ((b1+b2)c1 − b)
	t.add(&x.b1, &x.b2)
	u0.mul(&t, c1)
	u0.sub(&u0, &b)
	u0.mulByNonResidue(&u0)
	u0.add(&u0, &a)

	// z1 = (b0+b1)(c0+c1) − a − b
	t.add(&x.b0, &x.b1)
	u1.add(c0, c1)
	u1.mul(&u1, &t)
	u1.sub(&u1, &a)
	u1.sub(&u1, &b)

	// z2 = (b0+b2)c0 − a + b
	t.add(&x.b0, &x.b2)
	u2.mul(&t, c0)
	u2.sub(&u2, &a)
	u2.add(&u2, &b)

	z.b0, z.b1, z.b2 = u0, u1, u2
}

// mulBy1 sets z = x·(c1·v) (3 fe2 muls).
func (z *fe6) mulBy1(x *fe6, c1 *fe2) {
	var t0, t1, t2 fe2
	t0.mul(&x.b2, c1)
	t0.mulByNonResidue(&t0)
	t1.mul(&x.b0, c1)
	t2.mul(&x.b1, c1)
	z.b0, z.b1, z.b2 = t0, t1, t2
}

// inv sets z = x⁻¹ via the norm-map formula (one fe2 inversion).
func (z *fe6) inv(x *fe6) {
	var c0, c1, c2, t0, t1 fe2
	// c0 = b0² − ξ b1 b2
	c0.square(&x.b0)
	t0.mul(&x.b1, &x.b2)
	t0.mulByNonResidue(&t0)
	c0.sub(&c0, &t0)
	// c1 = ξ b2² − b0 b1
	c1.square(&x.b2)
	c1.mulByNonResidue(&c1)
	t0.mul(&x.b0, &x.b1)
	c1.sub(&c1, &t0)
	// c2 = b1² − b0 b2
	c2.square(&x.b1)
	t0.mul(&x.b0, &x.b2)
	c2.sub(&c2, &t0)
	// t = b0 c0 + ξ(b2 c1 + b1 c2)
	t0.mul(&x.b2, &c1)
	t1.mul(&x.b1, &c2)
	t0.add(&t0, &t1)
	t0.mulByNonResidue(&t0)
	t1.mul(&x.b0, &c0)
	t0.add(&t0, &t1)
	t0.inv(&t0)
	z.b0.mul(&c0, &t0)
	z.b1.mul(&c1, &t0)
	z.b2.mul(&c2, &t0)
}
