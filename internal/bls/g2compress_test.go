package bls

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"testing"
)

// The standard compressed encoding of the G2 generator (the BLS public key
// of secret key 1, as pinned by the IETF BLS signature draft and every
// zcash-format library).
const g2GeneratorCompressedHex = "93e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049" +
	"334cf11213945d57e5ac7d055d042b7e024aa2b2f08f0a91260805272dc51051" +
	"c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"

func TestG2CompressedGeneratorKAT(t *testing.T) {
	got := hex.EncodeToString(G2Generator().BytesCompressed())
	if got != g2GeneratorCompressedHex {
		t.Fatalf("generator compressed encoding:\n got %s\nwant %s", got, g2GeneratorCompressedHex)
	}
	raw, _ := hex.DecodeString(g2GeneratorCompressedHex)
	p, err := G2FromCompressedBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(G2Generator()) {
		t.Fatal("decompressed generator mismatch")
	}
}

func TestG2CompressedRoundTrip(t *testing.T) {
	for _, k := range []int64{1, 2, 3, 7, 1000003, 987654321} {
		p := G2Generator().Mul(big.NewInt(k))
		for _, q := range []G2{p, p.Neg()} {
			enc := q.BytesCompressed()
			if len(enc) != G2CompressedSize {
				t.Fatalf("encoding is %d bytes", len(enc))
			}
			back, err := G2FromCompressedBytes(enc)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if !back.Equal(q) {
				t.Fatalf("k=%d: round trip mismatch", k)
			}
			// Compressed and uncompressed encodings describe the same point.
			legacy, err := G2FromBytes(q.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if !legacy.Equal(back) {
				t.Fatalf("k=%d: compressed and legacy decode disagree", k)
			}
		}
	}
}

func TestG2CompressedInfinity(t *testing.T) {
	enc := g2Infinity().BytesCompressed()
	if enc[0] != g2FlagCompressed|g2FlagInfinity {
		t.Fatalf("infinity flag byte %#x", enc[0])
	}
	for _, b := range enc[1:] {
		if b != 0 {
			t.Fatal("infinity encoding not canonical")
		}
	}
	p, err := G2FromCompressedBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsInfinity() {
		t.Fatal("infinity did not round trip")
	}
}

func TestG2CompressedRejectsMalformed(t *testing.T) {
	good := G2Generator().BytesCompressed()

	short := good[:G2CompressedSize-1]
	if _, err := G2FromCompressedBytes(short); err == nil {
		t.Fatal("short encoding accepted")
	}

	noFlag := append([]byte(nil), good...)
	noFlag[0] &^= g2FlagCompressed
	if _, err := G2FromCompressedBytes(noFlag); err == nil {
		t.Fatal("missing compression flag accepted")
	}

	// An x coordinate off the curve: x = 1 + 0·u gives x³ + 4(1+u) with no
	// square root on the twist for this x.
	offCurve := make([]byte, G2CompressedSize)
	offCurve[0] = g2FlagCompressed
	offCurve[G2CompressedSize-1] = 1 // x.c0 = 1, x.c1 = 0
	if _, err := G2FromCompressedBytes(offCurve); err == nil {
		t.Fatal("off-curve x accepted")
	}

	dirtyInf := make([]byte, G2CompressedSize)
	dirtyInf[0] = g2FlagCompressed | g2FlagInfinity
	dirtyInf[50] = 7
	if _, err := G2FromCompressedBytes(dirtyInf); err == nil {
		t.Fatal("non-canonical infinity accepted")
	}

	signedInf := make([]byte, G2CompressedSize)
	signedInf[0] = g2FlagCompressed | g2FlagInfinity | g2FlagLargestY
	if _, err := G2FromCompressedBytes(signedInf); err == nil {
		t.Fatal("infinity with sign flag accepted")
	}
}

func TestG2CompressedSignFlagSelectsRoot(t *testing.T) {
	p := G2Generator().Mul(big.NewInt(5))
	enc := p.BytesCompressed()
	flipped := append([]byte(nil), enc...)
	flipped[0] ^= g2FlagLargestY
	q, err := G2FromCompressedBytes(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(p.Neg()) {
		t.Fatal("flipping the sign flag did not negate the point")
	}
	if bytes.Equal(q.BytesCompressed(), enc) {
		t.Fatal("negated point re-encodes with the same sign flag")
	}
}
