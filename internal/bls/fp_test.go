package bls

// Tower tests: algebraic laws for the new fe2/fe6/fe12 types, differential
// checks against the independent legacy math/big tower, and verification of
// the Frobenius/cyclotomic shortcuts against their defining exponentiations.

import (
	"math/big"
	"testing"
)

func randFe2(t testing.TB) fe2 {
	var z fe2
	feFromBig(&z.c0, randFeBig(t))
	feFromBig(&z.c1, randFeBig(t))
	return z
}

func randFe6(t testing.TB) fe6 {
	return fe6{randFe2(t), randFe2(t), randFe2(t)}
}

func randFe12(t testing.TB) fe12 {
	return fe12{randFe6(t), randFe6(t)}
}

// randCyclotomic produces an element of the cyclotomic subgroup by pushing
// a random element through the easy part of the final exponentiation.
func randCyclotomic(t testing.TB) fe12 {
	f := randFe12(t)
	var c, i, m, m2 fe12
	c.conj(&f)
	i.inv(&f)
	m.mul(&c, &i)
	m2.frobeniusSquare(&m)
	m.mul(&m, &m2)
	return m
}

func TestFe2Differential(t *testing.T) {
	for i := 0; i < 32; i++ {
		a, b := randFe2(t), randFe2(t)
		la, lb := fe2ToLegacy(&a), fe2ToLegacy(&b)
		var z fe2
		z.mul(&a, &b)
		if !fe2ToLegacy(&z).equalL(la.mulL(lb)) {
			t.Fatal("fe2 mul mismatch")
		}
		z.square(&a)
		if !fe2ToLegacy(&z).equalL(la.squareL()) {
			t.Fatal("fe2 square mismatch")
		}
		z.mulByNonResidue(&a)
		if !fe2ToLegacy(&z).equalL(la.mulByXi()) {
			t.Fatal("fe2 mulByNonResidue mismatch")
		}
		if a.isZero() {
			continue
		}
		z.inv(&a)
		if !fe2ToLegacy(&z).equalL(la.invL()) {
			t.Fatal("fe2 inv mismatch")
		}
	}
}

func TestFe6Differential(t *testing.T) {
	for i := 0; i < 16; i++ {
		a, b := randFe6(t), randFe6(t)
		la, lb := fe6ToLegacy(&a), fe6ToLegacy(&b)
		var z fe6
		z.mul(&a, &b)
		if !fe6ToLegacy(&z).equalL(la.mulL(lb)) {
			t.Fatal("fe6 mul mismatch")
		}
		z.square(&a)
		if !fe6ToLegacy(&z).equalL(la.squareL()) {
			t.Fatal("fe6 square mismatch")
		}
		z.mulByNonResidue(&a)
		if !fe6ToLegacy(&z).equalL(la.mulByV()) {
			t.Fatal("fe6 mulByNonResidue mismatch")
		}
		if a.isZero() {
			continue
		}
		z.inv(&a)
		if !fe6ToLegacy(&z).equalL(la.invL()) {
			t.Fatal("fe6 inv mismatch")
		}
	}
}

func TestFe6SparseMul(t *testing.T) {
	for i := 0; i < 16; i++ {
		a := randFe6(t)
		c0, c1 := randFe2(t), randFe2(t)
		sparse := fe6{b0: c0, b1: c1}
		var want, got fe6
		want.mul(&a, &sparse)
		got.mulBy01(&a, &c0, &c1)
		if !got.equal(&want) {
			t.Fatal("mulBy01 mismatch")
		}
		sparse = fe6{b1: c1}
		want.mul(&a, &sparse)
		got.mulBy1(&a, &c1)
		if !got.equal(&want) {
			t.Fatal("mulBy1 mismatch")
		}
	}
}

func TestFe12Differential(t *testing.T) {
	for i := 0; i < 8; i++ {
		a, b := randFe12(t), randFe12(t)
		la, lb := fe12ToLegacy(&a), fe12ToLegacy(&b)
		var z fe12
		z.mul(&a, &b)
		if !fe12ToLegacy(&z).equalL(la.mulL(lb)) {
			t.Fatal("fe12 mul mismatch")
		}
		z.square(&a)
		if !fe12ToLegacy(&z).equalL(la.squareL()) {
			t.Fatal("fe12 square mismatch (the old tower's missing dedicated formula)")
		}
		z.inv(&a)
		if !fe12ToLegacy(&z).equalL(la.invL()) {
			t.Fatal("fe12 inv mismatch")
		}
		z.conj(&a)
		if !fe12ToLegacy(&z).equalL(la.conjL()) {
			t.Fatal("fe12 conj mismatch")
		}
	}
}

func TestFe12SquareIsDedicated(t *testing.T) {
	// square must agree with mul(x, x) — and with the legacy oracle — for
	// the dedicated complex-squaring formula to be sound.
	for i := 0; i < 8; i++ {
		a := randFe12(t)
		var s, m fe12
		s.square(&a)
		m.mul(&a, &a)
		if !s.equal(&m) {
			t.Fatal("fe12 square != mul(x, x)")
		}
	}
}

func TestFe12MulBy014(t *testing.T) {
	for i := 0; i < 16; i++ {
		a := randFe12(t)
		c0, c1, c4 := randFe2(t), randFe2(t), randFe2(t)
		sparse := fe12{
			a0: fe6{b0: c0, b1: c1},
			a1: fe6{b1: c4},
		}
		var want fe12
		want.mul(&a, &sparse)
		got := a
		got.mulBy014(&c0, &c1, &c4)
		if !got.equal(&want) {
			t.Fatal("mulBy014 mismatch")
		}
	}
}

func TestFrobeniusMatchesExponentiation(t *testing.T) {
	a := randFe12(t)
	la := fe12ToLegacy(&a)
	var z fe12
	z.frobenius(&a)
	if !fe12ToLegacy(&z).equalL(la.expL(pMod)) {
		t.Fatal("frobenius != x^p")
	}
	z.frobeniusSquare(&a)
	if !fe12ToLegacy(&z).equalL(la.expL(pSquared)) {
		t.Fatal("frobeniusSquare != x^{p²}")
	}
	z.conj(&a)
	p6 := new(big.Int).Exp(pMod, big.NewInt(6), nil)
	if !fe12ToLegacy(&z).equalL(la.expL(p6)) {
		t.Fatal("conj != x^{p⁶}")
	}
}

func TestCyclotomicSquare(t *testing.T) {
	for i := 0; i < 4; i++ {
		m := randCyclotomic(t)
		var want, got fe12
		want.square(&m)
		got.cyclotomicSquare(&m)
		if !got.equal(&want) {
			t.Fatal("cyclotomic square mismatch in cyclotomic subgroup")
		}
	}
}

func TestExpByX(t *testing.T) {
	m := randCyclotomic(t)
	var got fe12
	got.expByX(&m)
	// x is negative: m^x = (m^{|x|})⁻¹.
	want := fe12ToLegacy(&m).expL(blsXAbs).invL()
	if !fe12ToLegacy(&got).equalL(want) {
		t.Fatal("expByX mismatch")
	}
}

func TestHardPartDecomposition(t *testing.T) {
	// The Hayashida–Hayasaka–Teruya chain computes the exponent
	// (x−1)²(x+p)(x²+p²−1) + 3; check it equals 3·(p⁴−p²+1)/r exactly.
	x := new(big.Int).Neg(blsXAbs)
	xm1 := new(big.Int).Sub(x, big.NewInt(1))
	e := new(big.Int).Mul(xm1, xm1)
	e.Mul(e, new(big.Int).Add(x, pMod))
	t2 := new(big.Int).Mul(x, x)
	t2.Add(t2, pSquared)
	t2.Sub(t2, big.NewInt(1))
	e.Mul(e, t2)
	e.Add(e, big.NewInt(3))
	want := new(big.Int).Mul(hardExp, big.NewInt(3))
	if e.Cmp(want) != 0 {
		t.Fatal("hard-part exponent decomposition does not equal 3·(p⁴−p²+1)/r")
	}
}

func TestFe12FieldLaws(t *testing.T) {
	for i := 0; i < 3; i++ {
		a, b := randFe12(t), randFe12(t)
		var ab, ba fe12
		ab.mul(&a, &b)
		ba.mul(&b, &a)
		if !ab.equal(&ba) {
			t.Fatal("fe12 mul not commutative")
		}
		var ai, one fe12
		ai.inv(&a)
		one.mul(&a, &ai)
		if !one.isOne() {
			t.Fatal("fe12 inverse broken")
		}
		var id fe12
		id.setOne()
		var aid fe12
		aid.mul(&a, &id)
		if !aid.equal(&a) {
			t.Fatal("fe12 identity broken")
		}
	}
}

func TestFe2NonResidue(t *testing.T) {
	// u² = −1
	var u, u2, minus1 fe2
	u.c1 = feR
	u2.square(&u)
	feNeg(&minus1.c0, &feR)
	if !u2.equal(&minus1) {
		t.Fatal("u² != -1")
	}
}

func TestFe6VCubed(t *testing.T) {
	// v³ = ξ: shifting three times by v equals scaling every slot by ξ.
	a := randFe6(t)
	var byV fe6
	byV.mulByNonResidue(&a)
	byV.mulByNonResidue(&byV)
	byV.mulByNonResidue(&byV)
	var want fe6
	want.b0.mulByNonResidue(&a.b0)
	want.b1.mulByNonResidue(&a.b1)
	want.b2.mulByNonResidue(&a.b2)
	if !byV.equal(&want) {
		t.Fatal("v³ != ξ")
	}
}

func TestHardExpWellFormed(t *testing.T) {
	// (p⁴ − p² + 1) = hardExp · r exactly.
	p2 := new(big.Int).Mul(pMod, pMod)
	p4 := new(big.Int).Mul(p2, p2)
	e := new(big.Int).Sub(p4, p2)
	e.Add(e, big.NewInt(1))
	if new(big.Int).Mul(hardExp, rOrder).Cmp(e) != 0 {
		t.Fatal("hardExp · r != p⁴ − p² + 1")
	}
}
