package bls

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randFp(t testing.TB) *big.Int {
	t.Helper()
	v, err := rand.Int(rand.Reader, pMod)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func randFp2(t testing.TB) fp2 { return fp2{randFp(t), randFp(t)} }

func randFp6(t testing.TB) fp6 { return fp6{randFp2(t), randFp2(t), randFp2(t)} }

func randFp12(t testing.TB) fp12 { return fp12{randFp6(t), randFp6(t)} }

func TestFpInverse(t *testing.T) {
	for i := 0; i < 8; i++ {
		a := randFp(t)
		if a.Sign() == 0 {
			continue
		}
		if fpMul(a, fpInv(a)).Cmp(big.NewInt(1)) != 0 {
			t.Fatal("fp inverse broken")
		}
	}
}

func TestFp2FieldLaws(t *testing.T) {
	for i := 0; i < 8; i++ {
		a, b, c := randFp2(t), randFp2(t), randFp2(t)
		if !a.mul(b).equal(b.mul(a)) {
			t.Fatal("fp2 mul not commutative")
		}
		if !a.mul(b.mul(c)).equal(a.mul(b).mul(c)) {
			t.Fatal("fp2 mul not associative")
		}
		if !a.mul(b.add(c)).equal(a.mul(b).add(a.mul(c))) {
			t.Fatal("fp2 not distributive")
		}
		if a.isZero() {
			continue
		}
		if !a.mul(a.inv()).equal(fp2One()) {
			t.Fatal("fp2 inverse broken")
		}
	}
}

func TestFp2NonResidue(t *testing.T) {
	// u² = −1
	u := fp2{new(big.Int), big.NewInt(1)}
	minus1 := fp2{fpNeg(big.NewInt(1)), new(big.Int)}
	if !u.mul(u).equal(minus1) {
		t.Fatal("u² != -1")
	}
	// mulByXi is multiplication by 1+u
	xi := fp2{big.NewInt(1), big.NewInt(1)}
	a := randFp2(t)
	if !a.mulByXi().equal(a.mul(xi)) {
		t.Fatal("mulByXi mismatch")
	}
}

func TestFp6FieldLaws(t *testing.T) {
	for i := 0; i < 4; i++ {
		a, b, c := randFp6(t), randFp6(t), randFp6(t)
		if !a.mul(b).equal(b.mul(a)) {
			t.Fatal("fp6 mul not commutative")
		}
		if !a.mul(b.mul(c)).equal(a.mul(b).mul(c)) {
			t.Fatal("fp6 mul not associative")
		}
		if !a.mul(b.add(c)).equal(a.mul(b).add(a.mul(c))) {
			t.Fatal("fp6 not distributive")
		}
		if a.isZero() {
			continue
		}
		if !a.mul(a.inv()).equal(fp6One()) {
			t.Fatal("fp6 inverse broken")
		}
	}
}

func TestFp6VCubed(t *testing.T) {
	// v³ = ξ: multiplying three times by v equals multiplying by ξ embedded.
	a := randFp6(t)
	byV3 := a.mulByV().mulByV().mulByV()
	xiEmbedded := fp6{a.b0.mulByXi(), a.b1.mulByXi(), a.b2.mulByXi()}
	if !byV3.equal(xiEmbedded) {
		t.Fatal("v³ != ξ")
	}
}

func TestFp12FieldLaws(t *testing.T) {
	for i := 0; i < 3; i++ {
		a, b := randFp12(t), randFp12(t)
		if !a.mul(b).equal(b.mul(a)) {
			t.Fatal("fp12 mul not commutative")
		}
		if !a.mul(a.inv()).isOne() {
			t.Fatal("fp12 inverse broken")
		}
		if !a.mul(fp12One()).equal(a) {
			t.Fatal("fp12 identity broken")
		}
	}
}

func TestFp12WSquaredIsV(t *testing.T) {
	w := fp12W()
	w2 := w.mul(w)
	// w² should be v: the fp6 element (0, 1, 0) in the a0 slot.
	want := fp12{fp6{fp2Zero(), fp2One(), fp2Zero()}, fp6Zero()}
	if !w2.equal(want) {
		t.Fatal("w² != v")
	}
}

func TestFp12ExpHomomorphism(t *testing.T) {
	a := randFp12(t)
	e1, e2 := big.NewInt(12345), big.NewInt(67890)
	sum := new(big.Int).Add(e1, e2)
	if !a.exp(e1).mul(a.exp(e2)).equal(a.exp(sum)) {
		t.Fatal("a^e1 · a^e2 != a^(e1+e2)")
	}
}

func TestConjIsFrobenius6(t *testing.T) {
	// conj(a) must equal a^{p⁶} — the identity the final exponentiation
	// relies on.
	a := randFp12(t)
	p6 := new(big.Int).Exp(pMod, big.NewInt(6), nil)
	if !a.conj().equal(a.exp(p6)) {
		t.Fatal("conj != Frobenius^6")
	}
}

func TestHardExpWellFormed(t *testing.T) {
	// (p⁴ − p² + 1) = hardExp · r exactly (checked at init; re-check here).
	p2 := new(big.Int).Mul(pMod, pMod)
	p4 := new(big.Int).Mul(p2, p2)
	e := new(big.Int).Sub(p4, p2)
	e.Add(e, big.NewInt(1))
	if new(big.Int).Mul(hardExp, rOrder).Cmp(e) != 0 {
		t.Fatal("hardExp · r != p⁴ − p² + 1")
	}
}

func TestFpInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fpInv(new(big.Int))
}
