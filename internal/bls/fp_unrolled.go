package bls

// fp_unrolled.go holds the straight-line Fp multiplication and squaring
// that replaced the looped CIOS/SOS kernels (feMulLoop/feSquareLoop, kept
// in fp_limb.go as differential oracles). Unrolling the 6-limb loops into
// explicit carry chains lets the compiler schedule the MULX/ADCX/ADOX-style
// add-carry pairs instead of reloading loop state every iteration; this
// kernel sits under every pairing, MSM, and subgroup check, so the win
// moves every absolute number in the benchmark trajectory.
//
// feMul uses the "no-carry" CIOS variant: because the top word of p
// (0x1a0111ea397fe69a < 2^61) leaves three spare bits, each of the six
// interleaved Montgomery rounds keeps its running state in exactly six
// words plus two carry words — no seventh accumulator limb and no final
// carry ripple. The variant is standard for moduli whose top word is
// below 2^63−1 (gnark-crypto's generic mul, the kilic generated code).
// The bound argument for this repo's wider contract (x may be any 384-bit
// value, y < p, as feFromBytes and feReduceWide require) is:
//
//	t' = (t + x_i·y + m·p) / 2^64  <  t/2^64 + 2p
//
// so from t = 0 every round stays below 2p+1 < 2^382.3; the top word of
// each round's state is under 2^62.3, and the closing madd3 of a round —
// m·p₅ + carries with p₅ < 2^61 — cannot overflow its 128-bit result.
// The final state is < 2p, reduced by one conditional subtraction exactly
// like the loop version.

import "math/bits"

// q0..q5 are the limbs of p as constants, so the unrolled chains fold them
// into immediates instead of loading pLimbs each use. checkUnrolledConsts
// (fp_unrolled_test.go) pins them against pLimbs.
const (
	q0 = 0xb9feffffffffaaab
	q1 = 0x1eabfffeb153ffff
	q2 = 0x6730d2a0f6b0f624
	q3 = 0x64774b84f38512bf
	q4 = 0x4b1ba7b6434bacd7
	q5 = 0x1a0111ea397fe69a
)

// madd0 returns the high word of a·b + c.
func madd0(a, b, c uint64) (hi uint64) {
	var carry uint64
	hi, lo := bits.Mul64(a, b)
	_, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd1 returns a·b + c as (hi, lo).
func madd1(a, b, c uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd2 returns a·b + c + d as (hi, lo).
func madd2(a, b, c, d uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd3 returns a·b + c + d + e·2^64 as (hi, lo).
func madd3(a, b, c, d, e uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return
}

// feMul sets z = x·y·R⁻¹ mod p (unrolled no-carry CIOS Montgomery
// multiplication). x may be any 384-bit value; y must be < p; the result
// is fully reduced. Differential oracle: feMulLoop.
func feMul(z, x, y *fe) {
	var t0, t1, t2, t3, t4, t5 uint64
	var c0, c1, c2 uint64

	{ // round 0
		v := x[0]
		c1, c0 = bits.Mul64(v, y[0])
		m := c0 * montInv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd1(v, y[1], c1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd1(v, y[2], c1)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd1(v, y[3], c1)
		c2, t2 = madd2(m, q3, c2, c0)
		c1, c0 = madd1(v, y[4], c1)
		c2, t3 = madd2(m, q4, c2, c0)
		c1, c0 = madd1(v, y[5], c1)
		t5, t4 = madd3(m, q5, c0, c2, c1)
	}
	{ // round 1
		v := x[1]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * montInv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		c2, t2 = madd2(m, q3, c2, c0)
		c1, c0 = madd2(v, y[4], c1, t4)
		c2, t3 = madd2(m, q4, c2, c0)
		c1, c0 = madd2(v, y[5], c1, t5)
		t5, t4 = madd3(m, q5, c0, c2, c1)
	}
	{ // round 2
		v := x[2]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * montInv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		c2, t2 = madd2(m, q3, c2, c0)
		c1, c0 = madd2(v, y[4], c1, t4)
		c2, t3 = madd2(m, q4, c2, c0)
		c1, c0 = madd2(v, y[5], c1, t5)
		t5, t4 = madd3(m, q5, c0, c2, c1)
	}
	{ // round 3
		v := x[3]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * montInv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		c2, t2 = madd2(m, q3, c2, c0)
		c1, c0 = madd2(v, y[4], c1, t4)
		c2, t3 = madd2(m, q4, c2, c0)
		c1, c0 = madd2(v, y[5], c1, t5)
		t5, t4 = madd3(m, q5, c0, c2, c1)
	}
	{ // round 4
		v := x[4]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * montInv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		c2, t2 = madd2(m, q3, c2, c0)
		c1, c0 = madd2(v, y[4], c1, t4)
		c2, t3 = madd2(m, q4, c2, c0)
		c1, c0 = madd2(v, y[5], c1, t5)
		t5, t4 = madd3(m, q5, c0, c2, c1)
	}
	{ // round 5
		v := x[5]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * montInv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		c2, t2 = madd2(m, q3, c2, c0)
		c1, c0 = madd2(v, y[4], c1, t4)
		c2, t3 = madd2(m, q4, c2, c0)
		c1, c0 = madd2(v, y[5], c1, t5)
		t5, t4 = madd3(m, q5, c0, c2, c1)
	}

	// Result < 2p: one conditional subtraction.
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t0, q0, 0)
	r[1], b = bits.Sub64(t1, q1, b)
	r[2], b = bits.Sub64(t2, q2, b)
	r[3], b = bits.Sub64(t3, q3, b)
	r[4], b = bits.Sub64(t4, q4, b)
	r[5], b = bits.Sub64(t5, q5, b)
	if b == 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	}
}

// feSquare sets z = x² (unrolled SOS squaring: 15 cross products computed
// once and doubled by a one-bit shift, 6 diagonal squares folded in, then
// a 6-round Montgomery reduction of the 12-word square with a deferred
// one-bit carry instead of the loop version's ripple). x must be < p; the
// result is fully reduced. Differential oracle: feSquareLoop.
func feSquare(z, x *fe) {
	var t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11 uint64
	var c, cr uint64

	// Off-diagonal partial products t[i+j] += x[i]·x[j], i < j.
	c, t1 = bits.Mul64(x[0], x[1])
	c, t2 = madd1(x[0], x[2], c)
	c, t3 = madd1(x[0], x[3], c)
	c, t4 = madd1(x[0], x[4], c)
	c, t5 = madd1(x[0], x[5], c)
	t6 = c

	c, t3 = madd1(x[1], x[2], t3)
	c, t4 = madd2(x[1], x[3], c, t4)
	c, t5 = madd2(x[1], x[4], c, t5)
	c, t6 = madd2(x[1], x[5], c, t6)
	t7 = c

	c, t5 = madd1(x[2], x[3], t5)
	c, t6 = madd2(x[2], x[4], c, t6)
	c, t7 = madd2(x[2], x[5], c, t7)
	t8 = c

	c, t7 = madd1(x[3], x[4], t7)
	c, t8 = madd2(x[3], x[5], c, t8)
	t9 = c

	c, t9 = madd1(x[4], x[5], t9)
	t10 = c

	// Double the cross products (x < 2^381, so the shift fits 12 words).
	t11 = t10 >> 63
	t10 = t10<<1 | t9>>63
	t9 = t9<<1 | t8>>63
	t8 = t8<<1 | t7>>63
	t7 = t7<<1 | t6>>63
	t6 = t6<<1 | t5>>63
	t5 = t5<<1 | t4>>63
	t4 = t4<<1 | t3>>63
	t3 = t3<<1 | t2>>63
	t2 = t2<<1 | t1>>63
	t1 = t1 << 1

	// Fold in the diagonal squares x[i]² at t[2i], t[2i+1].
	var hi, lo uint64
	hi, t0 = bits.Mul64(x[0], x[0])
	t1, c = bits.Add64(t1, hi, 0)
	hi, lo = bits.Mul64(x[1], x[1])
	t2, cr = bits.Add64(t2, lo, c)
	hi += cr
	t3, c = bits.Add64(t3, hi, 0)
	hi, lo = bits.Mul64(x[2], x[2])
	t4, cr = bits.Add64(t4, lo, c)
	hi += cr
	t5, c = bits.Add64(t5, hi, 0)
	hi, lo = bits.Mul64(x[3], x[3])
	t6, cr = bits.Add64(t6, lo, c)
	hi += cr
	t7, c = bits.Add64(t7, hi, 0)
	hi, lo = bits.Mul64(x[4], x[4])
	t8, cr = bits.Add64(t8, lo, c)
	hi += cr
	t9, c = bits.Add64(t9, hi, 0)
	hi, lo = bits.Mul64(x[5], x[5])
	t10, cr = bits.Add64(t10, lo, c)
	hi += cr
	t11, _ = bits.Add64(t11, hi, 0) // x² < p² < 2^762: no carry out

	// Montgomery reduction of the 12-word square, six unrolled rounds.
	// Round i folds out t[i]; its one-bit carry out of t[i+6] belongs at
	// position i+7, which is exactly where round i+1's closing addition
	// lands — so the carry rides the cr flag into the next round instead
	// of rippling through t[i+7..11] as the loop version does. The final
	// round's carry would sit at position 12; the bound in feSquareLoop's
	// comment (running value < 2^766) shows it is always zero.
	cr = 0
	{ // round 0
		m := t0 * montInv
		c = madd0(m, q0, t0)
		c, t1 = madd2(m, q1, c, t1)
		c, t2 = madd2(m, q2, c, t2)
		c, t3 = madd2(m, q3, c, t3)
		c, t4 = madd2(m, q4, c, t4)
		c, t5 = madd2(m, q5, c, t5)
		t6, cr = bits.Add64(t6, c, 0)
	}
	{ // round 1
		m := t1 * montInv
		c = madd0(m, q0, t1)
		c, t2 = madd2(m, q1, c, t2)
		c, t3 = madd2(m, q2, c, t3)
		c, t4 = madd2(m, q3, c, t4)
		c, t5 = madd2(m, q4, c, t5)
		c, t6 = madd2(m, q5, c, t6)
		t7, cr = bits.Add64(t7, c, cr)
	}
	{ // round 2
		m := t2 * montInv
		c = madd0(m, q0, t2)
		c, t3 = madd2(m, q1, c, t3)
		c, t4 = madd2(m, q2, c, t4)
		c, t5 = madd2(m, q3, c, t5)
		c, t6 = madd2(m, q4, c, t6)
		c, t7 = madd2(m, q5, c, t7)
		t8, cr = bits.Add64(t8, c, cr)
	}
	{ // round 3
		m := t3 * montInv
		c = madd0(m, q0, t3)
		c, t4 = madd2(m, q1, c, t4)
		c, t5 = madd2(m, q2, c, t5)
		c, t6 = madd2(m, q3, c, t6)
		c, t7 = madd2(m, q4, c, t7)
		c, t8 = madd2(m, q5, c, t8)
		t9, cr = bits.Add64(t9, c, cr)
	}
	{ // round 4
		m := t4 * montInv
		c = madd0(m, q0, t4)
		c, t5 = madd2(m, q1, c, t5)
		c, t6 = madd2(m, q2, c, t6)
		c, t7 = madd2(m, q3, c, t7)
		c, t8 = madd2(m, q4, c, t8)
		c, t9 = madd2(m, q5, c, t9)
		t10, cr = bits.Add64(t10, c, cr)
	}
	{ // round 5
		m := t5 * montInv
		c = madd0(m, q0, t5)
		c, t6 = madd2(m, q1, c, t6)
		c, t7 = madd2(m, q2, c, t7)
		c, t8 = madd2(m, q3, c, t8)
		c, t9 = madd2(m, q4, c, t9)
		c, t10 = madd2(m, q5, c, t10)
		t11, _ = bits.Add64(t11, c, cr)
	}

	// Result t[6..11] < 2p: one conditional subtraction.
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t6, q0, 0)
	r[1], b = bits.Sub64(t7, q1, b)
	r[2], b = bits.Sub64(t8, q2, b)
	r[3], b = bits.Sub64(t9, q3, b)
	r[4], b = bits.Sub64(t10, q4, b)
	r[5], b = bits.Sub64(t11, q5, b)
	if b == 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t6, t7, t8, t9, t10, t11
	}
}
