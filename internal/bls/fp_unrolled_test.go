package bls

// Differential and fuzz coverage for the unrolled straight-line feMul /
// feSquare (fp_unrolled.go) against the retained loop kernels
// (feMulLoop/feSquareLoop in fp_limb.go). The loop versions are the
// oracle: they were themselves differentially tested against math/big, so
// limb-for-limb agreement here chains the unrolled code back to the
// reference arithmetic.

import (
	"crypto/rand"
	"encoding/binary"
	"math/bits"
	"testing"
)

func TestUnrolledModulusConsts(t *testing.T) {
	if (fe{q0, q1, q2, q3, q4, q5}) != pLimbs {
		t.Fatal("fp_unrolled.go q-constants drifted from pLimbs")
	}
	if q5 >= 1<<61 {
		t.Fatal("no-carry CIOS precondition violated: top modulus word too large")
	}
}

// feEdgeCases returns raw limb vectors exercising the carry chains: 0, 1,
// p−1, p, p+1, 2^384−1, all-ones limbs, single high bits, and the
// Montgomery constants. Values ≥ p are legal for feMul's x operand only.
func feEdgeCases() []fe {
	pm1 := pLimbs
	pm1[0]--
	pp1 := pLimbs
	pp1[0]++
	return []fe{
		{},
		{1},
		pm1,
		pLimbs,
		pp1,
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
		{0, 0, 0, 0, 0, 1 << 63},
		{1 << 63, 0, 0, 0, 0, 0},
		feR,
		feR2,
	}
}

func feLess(x, y *fe) bool {
	var borrow uint64
	for i := 0; i < 6; i++ {
		_, borrow = bits.Sub64(x[i], y[i], borrow)
	}
	return borrow != 0
}

func TestFeMulUnrolledMatchesLoopEdges(t *testing.T) {
	edges := feEdgeCases()
	for _, x := range edges {
		for _, y := range edges {
			if !feLess(&y, &pLimbs) {
				continue // y must be < p (the shared contract)
			}
			var got, want fe
			feMul(&got, &x, &y)
			feMulLoop(&want, &x, &y)
			if got != want {
				t.Fatalf("feMul(%x, %x): unrolled %x, loop %x", x, y, got, want)
			}
		}
		if feLess(&x, &pLimbs) {
			var got, want fe
			feSquare(&got, &x)
			feSquareLoop(&want, &x)
			if got != want {
				t.Fatalf("feSquare(%x): unrolled %x, loop %x", x, got, want)
			}
		}
	}
}

func TestFeMulUnrolledMatchesLoopRandom(t *testing.T) {
	var buf [96]byte
	for i := 0; i < 2000; i++ {
		if _, err := rand.Read(buf[:]); err != nil {
			t.Fatal(err)
		}
		var x, y fe
		for j := 0; j < 6; j++ {
			x[j] = binary.LittleEndian.Uint64(buf[j*8:])
			y[j] = binary.LittleEndian.Uint64(buf[48+j*8:])
		}
		// x stays arbitrary 384-bit; y is brought under p.
		for !feLess(&y, &pLimbs) {
			y[5] >>= 1
		}
		var got, want fe
		feMul(&got, &x, &y)
		feMulLoop(&want, &x, &y)
		if got != want {
			t.Fatalf("feMul(%x, %x): unrolled %x, loop %x", x, y, got, want)
		}
		feSquare(&got, &y)
		feSquareLoop(&want, &y)
		if got != want {
			t.Fatalf("feSquare(%x): unrolled %x, loop %x", y, got, want)
		}
	}
}

// decodeFuzzFe splits 96 fuzz bytes into (x, y) limb vectors with y
// reduced below p; x is left raw so the fuzzer explores the ≥ p range the
// feFromBytes/feReduceWide callers rely on.
func decodeFuzzFe(data []byte) (x, y fe, ok bool) {
	if len(data) < 96 {
		return x, y, false
	}
	for j := 0; j < 6; j++ {
		x[j] = binary.LittleEndian.Uint64(data[j*8:])
		y[j] = binary.LittleEndian.Uint64(data[48+j*8:])
	}
	for !feLess(&y, &pLimbs) {
		y[5] >>= 1
	}
	return x, y, true
}

func FuzzFeMulUnrolled(f *testing.F) {
	var seed [96]byte
	f.Add(seed[:])
	for i, e := range feEdgeCases() {
		var buf [96]byte
		for j := 0; j < 6; j++ {
			binary.LittleEndian.PutUint64(buf[j*8:], e[j])
			binary.LittleEndian.PutUint64(buf[48+j*8:], feEdgeCases()[len(feEdgeCases())-1-i][j])
		}
		f.Add(buf[:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		x, y, ok := decodeFuzzFe(data)
		if !ok {
			return
		}
		var got, want fe
		feMul(&got, &x, &y)
		feMulLoop(&want, &x, &y)
		if got != want {
			t.Fatalf("feMul(%x, %x): unrolled %x, loop %x", x, y, got, want)
		}
	})
}

func FuzzFeSquareUnrolled(f *testing.F) {
	var seed [96]byte
	f.Add(seed[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		_, y, ok := decodeFuzzFe(data)
		if !ok {
			return
		}
		var got, want fe
		feSquare(&got, &y)
		feSquareLoop(&want, &y)
		if got != want {
			t.Fatalf("feSquare(%x): unrolled %x, loop %x", y, got, want)
		}
	})
}
