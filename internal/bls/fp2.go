package bls

// fp2.go implements Fp2 = Fp[u]/(u² + 1) over the limb-based Montgomery
// field: Karatsuba multiplication (3 base muls), complex squaring (2 base
// muls), and multiplication by the Fp6 non-residue ξ = 1 + u with two
// additions. All methods write through the receiver and are alias-safe.

type fe2 struct{ c0, c1 fe }

func (z *fe2) set(x *fe2)   { *z = *x }
func (z *fe2) setZero()     { *z = fe2{} }
func (z *fe2) setOne()      { z.c0 = feR; z.c1 = fe{} }
func (x *fe2) isZero() bool { return x.c0.isZero() && x.c1.isZero() }
func (x *fe2) isOne() bool  { return x.c0.isOne() && x.c1.isZero() }

func (x *fe2) equal(y *fe2) bool { return x.c0 == y.c0 && x.c1 == y.c1 }

func (z *fe2) add(x, y *fe2) {
	feAdd(&z.c0, &x.c0, &y.c0)
	feAdd(&z.c1, &x.c1, &y.c1)
}

func (z *fe2) double(x *fe2) { z.add(x, x) }

func (z *fe2) sub(x, y *fe2) {
	feSub(&z.c0, &x.c0, &y.c0)
	feSub(&z.c1, &x.c1, &y.c1)
}

func (z *fe2) neg(x *fe2) {
	feNeg(&z.c0, &x.c0)
	feNeg(&z.c1, &x.c1)
}

// conj sets z = x̄ = c0 − c1·u, which is also the Frobenius map x^p since
// p ≡ 3 (mod 4).
func (z *fe2) conj(x *fe2) {
	z.c0 = x.c0
	feNeg(&z.c1, &x.c1)
}

// mul sets z = x·y by Karatsuba: 3 base-field multiplications.
func (z *fe2) mul(x, y *fe2) {
	var t0, t1, t2, t3 fe
	feMul(&t0, &x.c0, &y.c0)
	feMul(&t1, &x.c1, &y.c1)
	feAdd(&t2, &x.c0, &x.c1)
	feAdd(&t3, &y.c0, &y.c1)
	feSub(&z.c0, &t0, &t1)
	feMul(&t2, &t2, &t3)
	feSub(&t2, &t2, &t0)
	feSub(&z.c1, &t2, &t1)
}

// square sets z = x² by complex squaring: (c0+c1)(c0−c1) + 2c0c1·u — 2 base
// multiplications instead of mul's 3.
func (z *fe2) square(x *fe2) {
	var t0, t1, t2 fe
	feAdd(&t0, &x.c0, &x.c1)
	feSub(&t1, &x.c0, &x.c1)
	feDouble(&t2, &x.c0)
	feMul(&z.c0, &t0, &t1)
	feMul(&z.c1, &t2, &x.c1)
}

// mulByFe scales both coordinates by a base-field element.
func (z *fe2) mulByFe(x *fe2, s *fe) {
	feMul(&z.c0, &x.c0, s)
	feMul(&z.c1, &x.c1, s)
}

// mulByNonResidue sets z = ξ·x with ξ = 1 + u:
// (c0 − c1) + (c0 + c1)·u.
func (z *fe2) mulByNonResidue(x *fe2) {
	var t0 fe
	feSub(&t0, &x.c0, &x.c1)
	feAdd(&z.c1, &x.c0, &x.c1)
	z.c0 = t0
}

// inv sets z = x⁻¹ = x̄ / (c0² + c1²); z = 0 for x = 0.
func (z *fe2) inv(x *fe2) {
	var t0, t1 fe
	feSquare(&t0, &x.c0)
	feSquare(&t1, &x.c1)
	feAdd(&t0, &t0, &t1)
	feInv(&t0, &t0)
	feMul(&z.c0, &x.c0, &t0)
	feMul(&t1, &x.c1, &t0)
	feNeg(&z.c1, &t1)
}

// exp sets z = x^e for a little-endian limb exponent (Frobenius-constant
// derivation at init; not a hot path).
func (z *fe2) exp(x *fe2, e []uint64) {
	var out fe2
	out.setOne()
	base := *x
	for i := len(e) - 1; i >= 0; i-- {
		for b := 63; b >= 0; b-- {
			out.square(&out)
			if e[i]>>uint(b)&1 == 1 {
				out.mul(&out, &base)
			}
		}
	}
	*z = out
}
