// Package bls implements the BLS12-381 pairing-friendly curve and BLS
// multisignatures with proof-of-possession — the aggregate signature scheme
// the distributed-log protocol uses so that each HSM can check one
// constant-size signature instead of N individual ones (§6.2, [16], [14]).
//
// The implementation is built for a simulator: field arithmetic uses
// math/big (not constant time), points are affine, and the Miller loop runs
// over the full Fp12 embedding of G2 rather than a sparse twisted
// representation. That trades a constant factor of speed for a much smaller
// trusted surface; correctness is pinned down by algebraic property tests
// (bilinearity, group laws) rather than external vectors.
package bls

import "math/big"

// Field and curve constants for BLS12-381.
var (
	// pMod is the base-field modulus.
	pMod = mustBig("1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab")
	// rOrder is the order of the pairing groups (the scalar field).
	rOrder = mustBig("73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001")
	// blsXAbs is |x|, the absolute value of the curve parameter; x is
	// negative for BLS12-381.
	blsXAbs = mustBig("d201000000010000")

	// g1CofactorH is the G1 cofactor used to clear torsion when hashing.
	g1CofactorH = mustBig("396c8c005555e1568c00aaab0000aaab")

	big3 = big.NewInt(3)
	big4 = big.NewInt(4)

	// sqrtExp = (p+1)/4, valid because p ≡ 3 (mod 4).
	sqrtExp = new(big.Int).Rsh(new(big.Int).Add(pMod, big.NewInt(1)), 2)

	// pSquared = p², used for the Frobenius-free easy final exponentiation.
	pSquared = new(big.Int).Mul(pMod, pMod)

	// hardExp = (p⁴ − p² + 1)/r, the hard part of the final exponentiation.
	hardExp = func() *big.Int {
		p2 := new(big.Int).Mul(pMod, pMod)
		p4 := new(big.Int).Mul(p2, p2)
		e := new(big.Int).Sub(p4, p2)
		e.Add(e, big.NewInt(1))
		q, m := new(big.Int).DivMod(e, rOrder, new(big.Int))
		if m.Sign() != 0 {
			panic("bls: r does not divide p^4 - p^2 + 1")
		}
		return q
	}()
)

func mustBig(hex string) *big.Int {
	v, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("bls: bad constant " + hex)
	}
	return v
}

// --- Fp ---

func fpAdd(a, b *big.Int) *big.Int {
	v := new(big.Int).Add(a, b)
	if v.Cmp(pMod) >= 0 {
		v.Sub(v, pMod)
	}
	return v
}

func fpSub(a, b *big.Int) *big.Int {
	v := new(big.Int).Sub(a, b)
	if v.Sign() < 0 {
		v.Add(v, pMod)
	}
	return v
}

func fpMul(a, b *big.Int) *big.Int {
	v := new(big.Int).Mul(a, b)
	return v.Mod(v, pMod)
}

func fpNeg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(pMod, a)
}

func fpInv(a *big.Int) *big.Int {
	v := new(big.Int).ModInverse(a, pMod)
	if v == nil {
		// Only reachable for a ≡ 0, which valid subgroup points never
		// produce; a loud panic beats a nil-pointer crash downstream.
		panic("bls: inverse of zero field element")
	}
	return v
}

func fpFromInt(x int64) *big.Int {
	v := big.NewInt(x)
	return v.Mod(v, pMod)
}

// --- Fp2 = Fp[u]/(u² + 1) ---

type fp2 struct{ c0, c1 *big.Int }

func fp2Zero() fp2 { return fp2{new(big.Int), new(big.Int)} }
func fp2One() fp2  { return fp2{big.NewInt(1), new(big.Int)} }

func (a fp2) isZero() bool { return a.c0.Sign() == 0 && a.c1.Sign() == 0 }

func (a fp2) equal(b fp2) bool { return a.c0.Cmp(b.c0) == 0 && a.c1.Cmp(b.c1) == 0 }

func (a fp2) add(b fp2) fp2 { return fp2{fpAdd(a.c0, b.c0), fpAdd(a.c1, b.c1)} }
func (a fp2) sub(b fp2) fp2 { return fp2{fpSub(a.c0, b.c0), fpSub(a.c1, b.c1)} }
func (a fp2) neg() fp2      { return fp2{fpNeg(a.c0), fpNeg(a.c1)} }

func (a fp2) mul(b fp2) fp2 {
	// (a0 + a1 u)(b0 + b1 u) = (a0b0 − a1b1) + (a0b1 + a1b0) u
	t0 := fpMul(a.c0, b.c0)
	t1 := fpMul(a.c1, b.c1)
	c0 := fpSub(t0, t1)
	c1 := fpSub(fpSub(fpMul(fpAdd(a.c0, a.c1), fpAdd(b.c0, b.c1)), t0), t1)
	return fp2{c0, c1}
}

func (a fp2) square() fp2 { return a.mul(a) }

// mulByXi multiplies by ξ = 1 + u, the Fp6 non-residue.
func (a fp2) mulByXi() fp2 {
	return fp2{fpSub(a.c0, a.c1), fpAdd(a.c0, a.c1)}
}

func (a fp2) inv() fp2 {
	// 1/(a0 + a1 u) = (a0 − a1 u)/(a0² + a1²)
	d := fpAdd(fpMul(a.c0, a.c0), fpMul(a.c1, a.c1))
	di := fpInv(d)
	return fp2{fpMul(a.c0, di), fpMul(fpNeg(a.c1), di)}
}

// --- Fp6 = Fp2[v]/(v³ − ξ) ---

type fp6 struct{ b0, b1, b2 fp2 }

func fp6Zero() fp6 { return fp6{fp2Zero(), fp2Zero(), fp2Zero()} }
func fp6One() fp6  { return fp6{fp2One(), fp2Zero(), fp2Zero()} }

func (a fp6) isZero() bool { return a.b0.isZero() && a.b1.isZero() && a.b2.isZero() }

func (a fp6) equal(b fp6) bool {
	return a.b0.equal(b.b0) && a.b1.equal(b.b1) && a.b2.equal(b.b2)
}

func (a fp6) add(b fp6) fp6 { return fp6{a.b0.add(b.b0), a.b1.add(b.b1), a.b2.add(b.b2)} }
func (a fp6) sub(b fp6) fp6 { return fp6{a.b0.sub(b.b0), a.b1.sub(b.b1), a.b2.sub(b.b2)} }
func (a fp6) neg() fp6      { return fp6{a.b0.neg(), a.b1.neg(), a.b2.neg()} }

func (a fp6) mul(b fp6) fp6 {
	t0 := a.b0.mul(b.b0)
	t1 := a.b1.mul(b.b1)
	t2 := a.b2.mul(b.b2)
	c0 := a.b1.add(a.b2).mul(b.b1.add(b.b2)).sub(t1).sub(t2).mulByXi().add(t0)
	c1 := a.b0.add(a.b1).mul(b.b0.add(b.b1)).sub(t0).sub(t1).add(t2.mulByXi())
	c2 := a.b0.add(a.b2).mul(b.b0.add(b.b2)).sub(t0).sub(t2).add(t1)
	return fp6{c0, c1, c2}
}

func (a fp6) square() fp6 { return a.mul(a) }

// mulByV multiplies by v: (b0 + b1 v + b2 v²)·v = ξ b2 + b0 v + b1 v².
func (a fp6) mulByV() fp6 { return fp6{a.b2.mulByXi(), a.b0, a.b1} }

func (a fp6) inv() fp6 {
	c0 := a.b0.square().sub(a.b1.mul(a.b2).mulByXi())
	c1 := a.b2.square().mulByXi().sub(a.b0.mul(a.b1))
	c2 := a.b1.square().sub(a.b0.mul(a.b2))
	t := a.b0.mul(c0).add(a.b2.mul(c1).mulByXi()).add(a.b1.mul(c2).mulByXi())
	ti := t.inv()
	return fp6{c0.mul(ti), c1.mul(ti), c2.mul(ti)}
}

// --- Fp12 = Fp6[w]/(w² − v) ---

type fp12 struct{ a0, a1 fp6 }

func fp12One() fp12 { return fp12{fp6One(), fp6Zero()} }

func (a fp12) equal(b fp12) bool { return a.a0.equal(b.a0) && a.a1.equal(b.a1) }

func (a fp12) isOne() bool { return a.equal(fp12One()) }

func (a fp12) mul(b fp12) fp12 {
	t0 := a.a0.mul(b.a0)
	t1 := a.a1.mul(b.a1)
	c0 := t0.add(t1.mulByV())
	c1 := a.a0.add(a.a1).mul(b.a0.add(b.a1)).sub(t0).sub(t1)
	return fp12{c0, c1}
}

func (a fp12) square() fp12 { return a.mul(a) }

// conj returns the conjugate a0 − a1 w, which equals a^{p⁶}.
func (a fp12) conj() fp12 { return fp12{a.a0, a.a1.neg()} }

func (a fp12) inv() fp12 {
	t := a.a0.square().sub(a.a1.square().mulByV()).inv()
	return fp12{a.a0.mul(t), a.a1.neg().mul(t)}
}

// exp raises a to a non-negative exponent by square-and-multiply.
func (a fp12) exp(e *big.Int) fp12 {
	out := fp12One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		out = out.square()
		if e.Bit(i) == 1 {
			out = out.mul(a)
		}
	}
	return out
}

// fp12Scalar embeds an Fp element into Fp12.
func fp12Scalar(x *big.Int) fp12 {
	out := fp12{fp6Zero(), fp6Zero()}
	out.a0.b0.c0 = new(big.Int).Set(x)
	return out
}

// fp12FromFp2 embeds an Fp2 element into Fp12 (the b0 slot of a0).
func fp12FromFp2(x fp2) fp12 {
	out := fp12{fp6Zero(), fp6Zero()}
	out.a0.b0 = fp2{new(big.Int).Set(x.c0), new(big.Int).Set(x.c1)}
	return out
}

// fp12W returns the tower generator w.
func fp12W() fp12 {
	out := fp12{fp6Zero(), fp6One()}
	return out
}
