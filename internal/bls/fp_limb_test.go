package bls

// Differential tests: the limb-based Montgomery field against math/big on
// random inputs. math/big is the reference oracle here — it never runs in
// production paths.

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randFeBig(t testing.TB) *big.Int {
	t.Helper()
	v, err := rand.Int(rand.Reader, pMod)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func feFromBig(z *fe, v *big.Int) {
	var buf [48]byte
	v.FillBytes(buf[:])
	feFromBytes(z, buf[:])
}

func feToBig(z *fe) *big.Int {
	var buf [48]byte
	feToBytes(buf[:], z)
	return new(big.Int).SetBytes(buf[:])
}

func TestFeRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		want := randFeBig(t)
		var z fe
		feFromBig(&z, want)
		if got := feToBig(&z); got.Cmp(want) != 0 {
			t.Fatalf("round trip: got %x want %x", got, want)
		}
	}
	var one fe
	feFromUint64(&one, 1)
	if !one.isOne() || feToBig(&one).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("Montgomery one broken")
	}
}

func TestFeArithmeticDifferential(t *testing.T) {
	mod := func(v *big.Int) *big.Int { return v.Mod(v, pMod) }
	for i := 0; i < 256; i++ {
		a, b := randFeBig(t), randFeBig(t)
		var fa, fb, fz fe
		feFromBig(&fa, a)
		feFromBig(&fb, b)

		feAdd(&fz, &fa, &fb)
		if feToBig(&fz).Cmp(mod(new(big.Int).Add(a, b))) != 0 {
			t.Fatalf("add mismatch at %d", i)
		}
		feSub(&fz, &fa, &fb)
		if feToBig(&fz).Cmp(mod(new(big.Int).Sub(a, b))) != 0 {
			t.Fatalf("sub mismatch at %d", i)
		}
		feMul(&fz, &fa, &fb)
		if feToBig(&fz).Cmp(mod(new(big.Int).Mul(a, b))) != 0 {
			t.Fatalf("mul mismatch at %d", i)
		}
		feSquare(&fz, &fa)
		if feToBig(&fz).Cmp(mod(new(big.Int).Mul(a, a))) != 0 {
			t.Fatalf("square mismatch at %d", i)
		}
		feNeg(&fz, &fa)
		if feToBig(&fz).Cmp(mod(new(big.Int).Neg(a))) != 0 {
			t.Fatalf("neg mismatch at %d", i)
		}
		feDouble(&fz, &fa)
		if feToBig(&fz).Cmp(mod(new(big.Int).Lsh(a, 1))) != 0 {
			t.Fatalf("double mismatch at %d", i)
		}
	}
}

// TestFeSquareMatchesMul pins the dedicated symmetric squaring against
// feMul(z, x, x) on random and boundary inputs (0, 1, 2, p−1, p−2, R, R²):
// the two must agree limb for limb since both fully reduce.
func TestFeSquareMatchesMul(t *testing.T) {
	cases := []fe{{}, feRawOne, {2}, feR, feR2}
	var pm1, pm2 fe
	feFromBig(&pm1, new(big.Int).Sub(pMod, big.NewInt(1)))
	feFromBig(&pm2, new(big.Int).Sub(pMod, big.NewInt(2)))
	cases = append(cases, pm1, pm2)
	for i := 0; i < 256; i++ {
		var x fe
		feFromBig(&x, randFeBig(t))
		cases = append(cases, x)
	}
	for i, x := range cases {
		var sq, mu fe
		feSquare(&sq, &x)
		feMul(&mu, &x, &x)
		if sq != mu {
			t.Fatalf("case %d: feSquare %x != feMul %x", i, sq, mu)
		}
	}
}

func TestFeInvDifferential(t *testing.T) {
	for i := 0; i < 32; i++ {
		a := randFeBig(t)
		if a.Sign() == 0 {
			continue
		}
		var fa, fz fe
		feFromBig(&fa, a)
		feInv(&fz, &fa)
		want := new(big.Int).ModInverse(a, pMod)
		if feToBig(&fz).Cmp(want) != 0 {
			t.Fatalf("inv mismatch at %d", i)
		}
		// a · a⁻¹ = 1
		feMul(&fz, &fz, &fa)
		if !fz.isOne() {
			t.Fatal("a·a⁻¹ != 1")
		}
	}
}

func TestFeSqrtDifferential(t *testing.T) {
	sqrtExpBig := new(big.Int).Rsh(new(big.Int).Add(pMod, big.NewInt(1)), 2)
	hits := 0
	for i := 0; i < 32; i++ {
		a := randFeBig(t)
		var fa, fz fe
		feFromBig(&fa, a)
		ok := feSqrt(&fz, &fa)
		y := new(big.Int).Exp(a, sqrtExpBig, pMod)
		wantOK := new(big.Int).Mod(new(big.Int).Mul(y, y), pMod).Cmp(a) == 0
		if ok != wantOK {
			t.Fatalf("sqrt residue disagreement at %d", i)
		}
		if ok {
			hits++
			if feToBig(&fz).Cmp(y) != 0 {
				t.Fatalf("sqrt value mismatch at %d", i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no quadratic residues in 32 samples (astronomically unlikely)")
	}
}

func TestFeExpMatchesBig(t *testing.T) {
	a := randFeBig(t)
	var fa, fz fe
	feFromBig(&fa, a)
	feExp(&fz, &fa, pMinus1Over6[:])
	e := new(big.Int).Div(new(big.Int).Sub(pMod, big.NewInt(1)), big.NewInt(6))
	if feToBig(&fz).Cmp(new(big.Int).Exp(a, e, pMod)) != 0 {
		t.Fatal("feExp mismatch vs big.Int")
	}
}

func TestFeWideReduction(t *testing.T) {
	for i := 0; i < 64; i++ {
		var wide [64]byte
		if _, err := rand.Read(wide[:]); err != nil {
			t.Fatal(err)
		}
		var fz fe
		feReduceWide(&fz, wide[:])
		want := new(big.Int).Mod(new(big.Int).SetBytes(wide[:]), pMod)
		if feToBig(&fz).Cmp(want) != 0 {
			t.Fatalf("wide reduction mismatch at %d", i)
		}
	}
}

func TestFeValidBytes(t *testing.T) {
	var buf [48]byte
	pMod.FillBytes(buf[:])
	if feValidBytes(buf[:]) {
		t.Fatal("p accepted as < p")
	}
	new(big.Int).Sub(pMod, big.NewInt(1)).FillBytes(buf[:])
	if !feValidBytes(buf[:]) {
		t.Fatal("p-1 rejected")
	}
}

func TestDerivedExponents(t *testing.T) {
	toBig := func(l []uint64) *big.Int {
		v := new(big.Int)
		for i := len(l) - 1; i >= 0; i-- {
			v.Lsh(v, 64)
			v.Or(v, new(big.Int).SetUint64(l[i]))
		}
		return v
	}
	if toBig(pMinus2Limbs[:]).Cmp(new(big.Int).Sub(pMod, big.NewInt(2))) != 0 {
		t.Fatal("p-2 wrong")
	}
	if toBig(pPlus1Over4Limbs[:]).Cmp(new(big.Int).Rsh(new(big.Int).Add(pMod, big.NewInt(1)), 2)) != 0 {
		t.Fatal("(p+1)/4 wrong")
	}
	if toBig(pMinus1Over6[:]).Cmp(new(big.Int).Div(new(big.Int).Sub(pMod, big.NewInt(1)), big.NewInt(6))) != 0 {
		t.Fatal("(p-1)/6 wrong")
	}
	psq := new(big.Int).Mul(pMod, pMod)
	if toBig(pSqMinus1Over6[:]).Cmp(new(big.Int).Div(new(big.Int).Sub(psq, big.NewInt(1)), big.NewInt(6))) != 0 {
		t.Fatal("(p²-1)/6 wrong")
	}
}
