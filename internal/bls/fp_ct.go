package bls

// fp_ct.go is the constant-time twin of the field kernels in fp_limb.go.
// The fast kernels end in a data-dependent conditional subtraction
// (`if borrow == 0 { take reduced } else { take raw }`) — fine for public
// log digests, a timing side channel when the operands derive from
// secrets. The *CT variants below replace every such branch with a
// masked select built on feCMov: same inputs, bit-identical outputs
// (fp_ct_test.go proves this differentially), no secret-dependent
// instruction or memory access. Secret-scalar paths (G1.MulSecret,
// behind SecretKey.Sign) run exclusively on these kernels.

import "math/bits"

// ct64Eq returns 1 iff a == b, without branching.
func ct64Eq(a, b uint64) uint64 { return 1 ^ ctNonzero64(a^b) }

// feReduceCT sets z = t − p if t ≥ p, else z = t, by masked select
// (the constant-time form of feReduce). Aliasing z == t is allowed.
func feReduceCT(z, t *fe) {
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t[0], pLimbs[0], 0)
	r[1], b = bits.Sub64(t[1], pLimbs[1], b)
	r[2], b = bits.Sub64(t[2], pLimbs[2], b)
	r[3], b = bits.Sub64(t[3], pLimbs[3], b)
	r[4], b = bits.Sub64(t[4], pLimbs[4], b)
	r[5], b = bits.Sub64(t[5], pLimbs[5], b)
	m := ctMask(b) // all-ones ⇔ t < p ⇔ keep t
	for i := range z {
		z[i] = r[i] ^ (m & (r[i] ^ t[i]))
	}
}

// feAddCT sets z = x + y mod p with a masked final reduction.
func feAddCT(z, x, y *fe) {
	var t fe
	var c uint64
	t[0], c = bits.Add64(x[0], y[0], 0)
	t[1], c = bits.Add64(x[1], y[1], c)
	t[2], c = bits.Add64(x[2], y[2], c)
	t[3], c = bits.Add64(x[3], y[3], c)
	t[4], c = bits.Add64(x[4], y[4], c)
	t[5], _ = bits.Add64(x[5], y[5], c) // x+y < 2p < 2^384: no carry out
	feReduceCT(z, &t)
}

// feDoubleCT sets z = 2x mod p.
func feDoubleCT(z, x *fe) { feAddCT(z, x, x) }

// feSubCT sets z = x − y mod p: the borrow of the raw subtraction becomes
// a mask and the add-back of p always executes (against p&mask), instead
// of the borrow-dependent branch in feSub.
func feSubCT(z, x, y *fe) {
	var t fe
	var b uint64
	t[0], b = bits.Sub64(x[0], y[0], 0)
	t[1], b = bits.Sub64(x[1], y[1], b)
	t[2], b = bits.Sub64(x[2], y[2], b)
	t[3], b = bits.Sub64(x[3], y[3], b)
	t[4], b = bits.Sub64(x[4], y[4], b)
	t[5], b = bits.Sub64(x[5], y[5], b)
	m := ctMask(b)
	var c uint64
	t[0], c = bits.Add64(t[0], pLimbs[0]&m, 0)
	t[1], c = bits.Add64(t[1], pLimbs[1]&m, c)
	t[2], c = bits.Add64(t[2], pLimbs[2]&m, c)
	t[3], c = bits.Add64(t[3], pLimbs[3]&m, c)
	t[4], c = bits.Add64(t[4], pLimbs[4]&m, c)
	t[5], _ = bits.Add64(t[5], pLimbs[5]&m, c)
	*z = t
}

// feMulCT is the looped CIOS Montgomery multiplication of feMulLoop with
// the final conditional subtraction replaced by a masked select. Same
// contract: x may be any 384-bit value, y must be < p, the result is
// fully reduced.
func feMulCT(z, x, y *fe) {
	var t [8]uint64
	for i := 0; i < 6; i++ {
		// t += x · y[i]
		var c uint64
		for j := 0; j < 6; j++ {
			hi, lo := bits.Mul64(x[j], y[i])
			var cr uint64
			lo, cr = bits.Add64(lo, t[j], 0)
			hi += cr
			lo, cr = bits.Add64(lo, c, 0)
			hi += cr
			t[j] = lo
			c = hi
		}
		var cr uint64
		t[6], cr = bits.Add64(t[6], c, 0)
		t[7] = cr

		// Montgomery reduction step: fold out t[0].
		m := t[0] * montInv
		hi, lo := bits.Mul64(m, pLimbs[0])
		_, cr = bits.Add64(lo, t[0], 0)
		c = hi + cr
		for j := 1; j < 6; j++ {
			hi, lo := bits.Mul64(m, pLimbs[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j-1] = lo
			c = hi
		}
		t[5], cr = bits.Add64(t[6], c, 0)
		t[6] = t[7] + cr
	}
	// Result < 2p: one masked final subtraction.
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t[0], pLimbs[0], 0)
	r[1], b = bits.Sub64(t[1], pLimbs[1], b)
	r[2], b = bits.Sub64(t[2], pLimbs[2], b)
	r[3], b = bits.Sub64(t[3], pLimbs[3], b)
	r[4], b = bits.Sub64(t[4], pLimbs[4], b)
	r[5], b = bits.Sub64(t[5], pLimbs[5], b)
	_, b = bits.Sub64(t[6], 0, b)
	m := ctMask(b) // all-ones ⇔ value < p ⇔ keep t
	for i := range z {
		z[i] = r[i] ^ (m & (r[i] ^ t[i]))
	}
}

// feSquareCT sets z = x² on the constant-time multiplication path. It
// forgoes the symmetric-squaring shortcut of feSquare — secret-path
// doublings pay ~15% per square for a branch-free kernel.
func feSquareCT(z, x *fe) { feMulCT(z, x, x) }
