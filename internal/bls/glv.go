package bls

// glv.go implements Gallant–Lambert–Vanstone scalar multiplication on G1
// using the BLS12-381 cube-root endomorphism φ(x, y) = (β·x, y), where β is
// a primitive cube root of unity in Fp. On the order-r subgroup φ acts as
// multiplication by λ = z² − 1 (z the curve parameter), because
// λ² + λ + 1 = z⁴ − z² + 1 = r ≡ 0 (mod r). A 255-bit scalar k therefore
// splits as k ≡ k₁ + k₂·λ (mod r) with |k₁|, |k₂| ≲ √r ≈ 2¹²⁸ — Babai
// rounding against the lattice basis (z²−1, −1), (1, z²), whose determinant
// is exactly r — and k·P = k₁·P + k₂·φ(P) runs two half-length wNAF scalars
// over one shared doubling chain: half the doublings of plain
// double-and-add.
//
// The same endomorphism gives the fast subgroup membership test used by
// G1FromBytes: a curve point P is in the order-r subgroup iff
// [z²]φ(P) = −P (El Housni–Guillevic–Piellard, eprint 2022/352, after
// Scott), because z²·λ ≡ −1 (mod r); the z² multiplication runs as two
// 64-bit |z| NAF multiplications, replacing the naive full 255-bit
// r-multiplication.

import (
	"math/big"
	"sync"
)

var (
	glvOnce sync.Once
	// glvBeta is the cube root of unity with φ = [λ]: φ(x,y) = (β·x, y).
	glvBeta fe
	// glvLambda = z² − 1, the eigenvalue of φ on G1.
	glvLambda *big.Int
	// glvZ2 = z² (positive; z itself is negative).
	glvZ2 *big.Int
)

// zNAFDigits is the plain NAF of |z| = blsX, shared by the [|z|]
// multiplications inside both endomorphism subgroup checks. |z| has
// Hamming weight 6, so a width-2 NAF needs no odd-multiple table.
var zNAFDigits = wnafDigits([]uint64{blsX}, 2, false)

// glvInit derives β, λ, and the lattice constants. β is taken from the
// already-derived Frobenius constant ξ^{(p²−1)/6}: its square frobC2[2] =
// ξ^{(p²−1)/3} is a primitive cube root of unity. Which of the two
// primitive roots pairs with the eigenvalue λ (the other pairs with
// λ² = −z²) is decided empirically against the naive double-and-add
// oracle on the generator — a one-time half-length multiplication.
func glvInit() {
	glvOnce.Do(func() {
		glvZ2 = new(big.Int).SetUint64(blsX)
		glvZ2.Mul(glvZ2, glvZ2)
		glvLambda = new(big.Int).Sub(glvZ2, big.NewInt(1))

		cand := frobC2[2]
		if cand.equal(&feR) {
			panic("bls: ξ^{(p²−1)/3} degenerated to 1")
		}
		g := G1Generator()
		lg := g.mulRaw(glvLambda)
		phi := g
		feMul(&phi.x, &g.x, &cand)
		if !phi.Equal(lg) {
			feMul(&cand, &cand, &frobC2[2]) // the other primitive root, β²
			phi = g
			feMul(&phi.x, &g.x, &cand)
			if !phi.Equal(lg) {
				panic("bls: neither cube root of unity matches the GLV eigenvalue")
			}
		}
		glvBeta = cand
	})
}

// g1Phi applies the endomorphism φ(x, y) = (β·x, y). In Jacobian
// coordinates the affine x is X/Z², so scaling X alone suffices. Callers
// must run glvInit first.
func g1Phi(p G1) G1 {
	feMul(&p.x, &p.x, &glvBeta)
	return p
}

// roundDiv returns round(a/b) for a ≥ 0, b > 0 (round half up).
func roundDiv(a, b *big.Int) *big.Int {
	num := new(big.Int).Lsh(a, 1)
	num.Add(num, b)
	return num.Div(num, new(big.Int).Lsh(b, 1))
}

// roundDivSigned returns a nearest integer to a/b for signed a, b ≠ 0
// (ties resolved away from or toward zero depending on signs — any
// rounding within one of the true quotient keeps the remainder below |b|).
func roundDivSigned(a, b *big.Int) *big.Int {
	q := roundDiv(new(big.Int).Abs(a), new(big.Int).Abs(b))
	if (a.Sign() < 0) != (b.Sign() < 0) {
		q.Neg(q)
	}
	return q
}

// glvSplit decomposes k ∈ [0, r) as k ≡ k₁ + k₂·λ (mod r) with
// |k₁|, |k₂| ≤ ~2¹²⁸, by Babai rounding against the lattice basis
// v₁ = (z²−1, −1), v₂ = (1, z²):
//
//	c₁ = round(k·z²/r), c₂ = round(k/r)
//	(k₁, k₂) = (k, 0) − c₁·v₁ − c₂·v₂
//	        = (k − c₁(z²−1) − c₂, c₁ − c₂·z²)
//
// Recombination: k₁ + k₂λ = k − c₂(1 + z²λ) = k − c₂·r ≡ k (mod r).
func glvSplit(k *big.Int) (k1, k2 *big.Int) {
	c1 := roundDiv(new(big.Int).Mul(k, glvZ2), rOrder)
	c2 := roundDiv(k, rOrder)
	k1 = new(big.Int).Mul(c1, glvLambda)
	k1.Sub(k, k1)
	k1.Sub(k1, c2)
	k2 = new(big.Int).Mul(c2, glvZ2)
	k2.Sub(c1, k2)
	return k1, k2
}

// g1OddMultiples returns {P, 3P, 5P, …, (2n−1)P} in Jacobian coordinates.
func g1OddMultiples(p G1, n int) []G1 {
	tbl := make([]G1, n)
	tbl[0] = p
	twoP := p.double()
	for i := 1; i < n; i++ {
		tbl[i] = tbl[i-1].Add(twoP)
	}
	return tbl
}

// g1TableAdd adds the odd multiple d·P (d odd, possibly negative) from tbl
// into acc.
func g1TableAdd(acc G1, tbl []G1, d int8) G1 {
	if d > 0 {
		return acc.Add(tbl[(d-1)/2])
	}
	return acc.Add(tbl[(-d-1)/2].Neg())
}

// glvWindow is the wNAF width for the two 128-bit GLV half-scalars: an
// 8-entry odd-multiple table per base, one addition every ~6 doublings.
const glvWindow = 5

// mulGLV computes k·p for k ∈ [0, r) via the GLV split, two width-5 wNAF
// digit strings, and one shared doubling chain. p must lie in the order-r
// subgroup (every exported constructor guarantees this); callers with
// arbitrary curve points use mulRaw.
func (p G1) mulGLV(k *big.Int) G1 {
	if p.IsInfinity() || k.Sign() == 0 {
		return g1Infinity()
	}
	glvInit()
	k1, k2 := glvSplit(k)
	d1 := wnafBig(k1, glvWindow)
	d2 := wnafBig(k2, glvWindow)
	tbl := g1OddMultiples(p, 1<<(glvWindow-2))
	phiTbl := make([]G1, len(tbl))
	for i := range tbl {
		phiTbl[i] = g1Phi(tbl[i])
	}
	n := len(d1)
	if len(d2) > n {
		n = len(d2)
	}
	acc := g1Infinity()
	for i := n - 1; i >= 0; i-- {
		acc = acc.double()
		if i < len(d1) && d1[i] != 0 {
			acc = g1TableAdd(acc, tbl, d1[i])
		}
		if i < len(d2) && d2[i] != 0 {
			acc = g1TableAdd(acc, phiTbl, d2[i])
		}
	}
	return acc
}

// mulZAbs multiplies by the positive 64-bit constant |z| using its
// precomputed NAF — the inner step of both subgroup checks.
func (p G1) mulZAbs() G1 {
	acc := g1Infinity()
	for i := len(zNAFDigits) - 1; i >= 0; i-- {
		acc = acc.double()
		switch zNAFDigits[i] {
		case 1:
			acc = acc.Add(p)
		case -1:
			acc = acc.Add(p.Neg())
		}
	}
	return acc
}

// inSubgroupEndo reports order-r subgroup membership for a point already
// known to be on the curve: [z²]φ(P) == −P, run as two 64-bit |z| NAF
// multiplications (z² = |z|²) instead of a 255-bit r-multiplication.
func (p G1) inSubgroupEndo() bool {
	if p.IsInfinity() {
		return true
	}
	glvInit()
	q := g1Phi(p).mulZAbs().mulZAbs()
	return q.Equal(p.Neg())
}
