package bls

// msm.go implements the multi-point machinery: Montgomery-trick batch
// inversion, batch Jacobian→affine normalization (one shared inversion for
// any number of points), batch-affine summation trees, and the Pippenger
// bucket-method multi-exponentiations G1MultiExp/G2MultiExp.
//
// The summation trees are what bls.AggregatePublicKeys and
// bls.AggregateSignatures run on: summing n points pairwise in affine
// coordinates costs 1 squaring + 2 multiplications + a 3-multiplication
// share of one inversion per addition — under half the field work of a
// general Jacobian addition — because each round of n/2 independent
// additions shares a single field inversion across all its slope
// denominators. The bucket MSMs batch-normalize their inputs once and run
// every bucket accumulation as a mixed addition.

import (
	"errors"
	"math/big"
	"math/bits"
)

// --- batch inversion ---

// feBatchInv inverts every nonzero element of vals in place with
// Montgomery's trick: 3(n−1) multiplications and a single feInv. Zero
// elements stay zero (matching feInv's 0 ↦ 0 convention).
func feBatchInv(vals []fe) {
	n := len(vals)
	if n == 0 {
		return
	}
	prefix := make([]fe, n)
	acc := feR // 1
	for i := range vals {
		prefix[i] = acc
		if !vals[i].isZero() {
			feMul(&acc, &acc, &vals[i])
		}
	}
	var inv fe
	feInv(&inv, &acc)
	for i := n - 1; i >= 0; i-- {
		if vals[i].isZero() {
			continue
		}
		var t fe
		feMul(&t, &inv, &prefix[i])
		feMul(&inv, &inv, &vals[i])
		vals[i] = t
	}
}

// fe2BatchInv inverts every nonzero element of vals in place. The batch
// runs over the Fp norms (x⁻¹ = x̄/(c0² + c1²)), so the whole slice costs
// one base-field inversion plus 7 base multiplications per element.
func fe2BatchInv(vals []fe2) {
	n := len(vals)
	if n == 0 {
		return
	}
	norms := make([]fe, n)
	for i := range vals {
		var t0, t1 fe
		feSquare(&t0, &vals[i].c0)
		feSquare(&t1, &vals[i].c1)
		feAdd(&norms[i], &t0, &t1)
	}
	feBatchInv(norms)
	for i := range vals {
		var t fe2
		t.conj(&vals[i])
		t.mulByFe(&t, &norms[i])
		vals[i] = t
	}
}

// --- batch normalization ---

// g1NormalizeBatch rewrites every finite point to Z = 1 (affine
// coordinates in place) using one shared inversion — the helper behind
// table precomputation, MSM input preparation, and batch serialization.
func g1NormalizeBatch(ps []G1) {
	zs := make([]fe, len(ps))
	for i := range ps {
		zs[i] = ps[i].z // zero (infinity) passes through feBatchInv as zero
	}
	feBatchInv(zs)
	for i := range ps {
		if ps[i].IsInfinity() || ps[i].z.equal(&feR) {
			continue
		}
		var zi2, zi3 fe
		feSquare(&zi2, &zs[i])
		feMul(&zi3, &zi2, &zs[i])
		feMul(&ps[i].x, &ps[i].x, &zi2)
		feMul(&ps[i].y, &ps[i].y, &zi3)
		ps[i].z = feR
	}
}

// g2NormalizeBatch is g1NormalizeBatch on the twist.
func g2NormalizeBatch(ps []G2) {
	zs := make([]fe2, len(ps))
	for i := range ps {
		zs[i] = ps[i].z
	}
	fe2BatchInv(zs)
	var one fe2
	one.setOne()
	for i := range ps {
		if ps[i].IsInfinity() || ps[i].z.isOne() {
			continue
		}
		var zi2, zi3 fe2
		zi2.square(&zs[i])
		zi3.mul(&zi2, &zs[i])
		ps[i].x.mul(&ps[i].x, &zi2)
		ps[i].y.mul(&ps[i].y, &zi3)
		ps[i].z = one
	}
}

// --- batch-affine summation ---

// g2SumTail is the round-size threshold below which the pairwise tree
// hands off to chained mixed additions: with only a handful of additions
// left per round, the per-round feInv dominates the batch's savings.
const g2SumTail = 16

// g2Sum returns Σ ps[i]. Points are batch-normalized once (a no-op for
// deserialized rosters, which are already affine), then summed as a
// pairwise tree: each round performs ⌊n/2⌋ independent affine additions
// whose slope denominators share one batched inversion, run over the Fp
// norms so the whole round costs one feInv. Exceptional cases (equal x:
// doubling via the same batch, or cancellation to infinity) are handled
// inside the round. Rounds below g2SumTail finish with Jacobian mixed
// additions.
func g2Sum(ps []G2) G2 {
	xs, ys := make([]fe2, 0, len(ps)), make([]fe2, 0, len(ps))
	var pending []G2 // non-affine inputs, normalized in one batch
	for i := range ps {
		switch {
		case ps[i].IsInfinity():
		case ps[i].z.isOne():
			xs = append(xs, ps[i].x)
			ys = append(ys, ps[i].y)
		default:
			pending = append(pending, ps[i])
		}
	}
	if len(pending) > 0 {
		g2NormalizeBatch(pending)
		for _, p := range pending {
			xs = append(xs, p.x)
			ys = append(ys, p.y)
		}
	}
	n := len(xs)
	// Shared per-round scratch: slope denominators, their Fp norms, and
	// the prefix products of the batched norm inversion.
	dens := make([]fe2, n/2)
	norms := make([]fe, n/2)
	prefix := make([]fe, n/2)
	dead := make([]bool, n/2)
	for n > g2SumTail {
		half := n / 2
		for i := 0; i < half; i++ {
			a, b := 2*i, 2*i+1
			den := &dens[i]
			den.sub(&xs[b], &xs[a])
			dead[i] = false
			if den.isZero() {
				if ys[a].equal(&ys[b]) && !ys[a].isZero() {
					den.double(&ys[a]) // tangent: denominator 2y
				} else {
					dead[i] = true // P + (−P) = ∞ (or a 2-torsion double)
				}
			}
		}
		// Batched inversion of the denominators through their norms:
		// den⁻¹ = conj(den)·N(den)⁻¹ with all N(den)⁻¹ from one feInv.
		// Fused inline rather than calling fe2BatchInv: the generic
		// helper takes two extra passes and an allocation per round,
		// which is measurable at this call frequency (a tree round runs
		// once per level for every aggregation).
		acc := feR
		for i := 0; i < half; i++ {
			var t0, t1 fe
			feSquare(&t0, &dens[i].c0)
			feSquare(&t1, &dens[i].c1)
			feAdd(&norms[i], &t0, &t1)
			prefix[i] = acc
			if !dead[i] {
				feMul(&acc, &acc, &norms[i])
			}
		}
		var inv fe
		feInv(&inv, &acc)
		for i := half - 1; i >= 0; i-- {
			if dead[i] {
				continue
			}
			var t fe
			feMul(&t, &inv, &prefix[i])
			feMul(&inv, &inv, &norms[i])
			norms[i] = t // N(den)⁻¹
		}
		w := 0
		for i := 0; i < half; i++ {
			if dead[i] {
				continue
			}
			a, b := 2*i, 2*i+1
			var lam, x3, y3, t fe2
			if xs[a].equal(&xs[b]) {
				// λ = 3x²/(2y)
				lam.square(&xs[a])
				t.double(&lam)
				lam.add(&lam, &t)
			} else {
				lam.sub(&ys[b], &ys[a])
			}
			t.conj(&dens[i])
			lam.mul(&lam, &t)
			lam.mulByFe(&lam, &norms[i]) // λ = num·conj(den)·N(den)⁻¹
			x3.square(&lam)
			x3.sub(&x3, &xs[a])
			x3.sub(&x3, &xs[b])
			y3.sub(&xs[a], &x3)
			y3.mul(&y3, &lam)
			y3.sub(&y3, &ys[a])
			xs[w], ys[w] = x3, y3
			w++
		}
		if n%2 == 1 {
			xs[w], ys[w] = xs[n-1], ys[n-1]
			w++
		}
		n = w
	}
	acc := g2Infinity()
	for i := 0; i < n; i++ {
		acc = acc.addMixed(&xs[i], &ys[i])
	}
	return acc
}

// g1Sum is g2Sum on G1; the denominators live in Fp, so the batch inverts
// them directly.
func g1Sum(ps []G1) G1 {
	xs, ys := make([]fe, 0, len(ps)), make([]fe, 0, len(ps))
	var pending []G1
	for i := range ps {
		switch {
		case ps[i].IsInfinity():
		case ps[i].z.equal(&feR):
			xs = append(xs, ps[i].x)
			ys = append(ys, ps[i].y)
		default:
			pending = append(pending, ps[i])
		}
	}
	if len(pending) > 0 {
		g1NormalizeBatch(pending)
		for _, p := range pending {
			xs = append(xs, p.x)
			ys = append(ys, p.y)
		}
	}
	n := len(xs)
	dens := make([]fe, n/2)
	prefix := make([]fe, n/2)
	dead := make([]bool, n/2)
	for n > g2SumTail {
		half := n / 2
		for i := 0; i < half; i++ {
			a, b := 2*i, 2*i+1
			feSub(&dens[i], &xs[b], &xs[a])
			dead[i] = false
			if dens[i].isZero() {
				if ys[a].equal(&ys[b]) && !ys[a].isZero() {
					feDouble(&dens[i], &ys[a])
				} else {
					dead[i] = true
				}
			}
		}
		acc := feR
		for i := 0; i < half; i++ {
			prefix[i] = acc
			if !dead[i] {
				feMul(&acc, &acc, &dens[i])
			}
		}
		var inv fe
		feInv(&inv, &acc)
		for i := half - 1; i >= 0; i-- {
			if dead[i] {
				continue
			}
			var t fe
			feMul(&t, &inv, &prefix[i])
			feMul(&inv, &inv, &dens[i])
			dens[i] = t
		}
		w := 0
		for i := 0; i < half; i++ {
			if dead[i] {
				continue
			}
			a, b := 2*i, 2*i+1
			var lam, x3, y3, t fe
			if xs[a].equal(&xs[b]) {
				feSquare(&lam, &xs[a])
				feDouble(&t, &lam)
				feAdd(&lam, &lam, &t)
			} else {
				feSub(&lam, &ys[b], &ys[a])
			}
			feMul(&lam, &lam, &dens[i])
			feSquare(&x3, &lam)
			feSub(&x3, &x3, &xs[a])
			feSub(&x3, &x3, &xs[b])
			feSub(&y3, &xs[a], &x3)
			feMul(&y3, &y3, &lam)
			feSub(&y3, &y3, &ys[a])
			xs[w], ys[w] = x3, y3
			w++
		}
		if n%2 == 1 {
			xs[w], ys[w] = xs[n-1], ys[n-1]
			w++
		}
		n = w
	}
	acc := g1Infinity()
	for i := 0; i < n; i++ {
		acc = acc.addMixed(&xs[i], &ys[i])
	}
	return acc
}

// --- Pippenger bucket MSM ---

// msmWindow picks the bucket window width c for n points: the work is
// roughly ⌈255/c⌉·(n + 2^c) additions, minimized near c ≈ log2(n) − 3.
func msmWindow(n int) uint {
	c := bits.Len(uint(n)) - 3
	switch {
	case c < 3:
		return 3
	case c > 12:
		return 12
	default:
		return uint(c)
	}
}

// msmDigits splits a scalar (reduced mod r, little-endian limbs) into
// unsigned c-bit window digits.
func msmDigits(k *big.Int, c uint) []uint32 {
	limbs := scalarToLimbs256(k)
	num := (255 + int(c) - 1) / int(c)
	out := make([]uint32, num)
	mask := uint64(1)<<c - 1
	for j := 0; j < num; j++ {
		bit := uint(j) * c
		limb := bit / 64
		off := bit % 64
		v := limbs[limb] >> off
		if off+c > 64 && limb+1 < 4 {
			v |= limbs[limb+1] << (64 - off)
		}
		out[j] = uint32(v & mask)
	}
	return out
}

// G1MultiExp computes Σ kᵢ·Pᵢ (scalars reduced mod r) with the Pippenger
// bucket method: inputs are batch-normalized to affine with one shared
// inversion and every bucket accumulation is a mixed addition. Points must
// lie in the order-r subgroup.
func G1MultiExp(ps []G1, ks []*big.Int) (G1, error) {
	if len(ps) != len(ks) {
		return G1{}, errors.New("bls: mismatched multi-exp lengths")
	}
	pts := make([]G1, 0, len(ps))
	scs := make([]*big.Int, 0, len(ks))
	for i := range ps {
		k := new(big.Int).Mod(ks[i], rOrder)
		if ps[i].IsInfinity() || k.Sign() == 0 {
			continue
		}
		pts = append(pts, ps[i])
		scs = append(scs, k)
	}
	n := len(pts)
	if n == 0 {
		return g1Infinity(), nil
	}
	if n < 4 {
		acc := pts[0].mulGLV(scs[0])
		for i := 1; i < n; i++ {
			acc = acc.Add(pts[i].mulGLV(scs[i]))
		}
		return acc, nil
	}
	g1NormalizeBatch(pts)
	c := msmWindow(n)
	digits := make([][]uint32, n)
	for i, k := range scs {
		digits[i] = msmDigits(k, c)
	}
	numWindows := len(digits[0])
	buckets := make([]G1, 1<<c-1)
	acc := g1Infinity()
	for j := numWindows - 1; j >= 0; j-- {
		if !acc.IsInfinity() {
			for s := uint(0); s < c; s++ {
				acc = acc.double()
			}
		}
		for i := range buckets {
			buckets[i] = g1Infinity()
		}
		used := false
		for i := 0; i < n; i++ {
			d := digits[i][j]
			if d == 0 {
				continue
			}
			buckets[d-1] = buckets[d-1].addMixed(&pts[i].x, &pts[i].y)
			used = true
		}
		if !used {
			continue
		}
		running, sum := g1Infinity(), g1Infinity()
		for i := len(buckets) - 1; i >= 0; i-- {
			running = running.Add(buckets[i])
			sum = sum.Add(running)
		}
		acc = acc.Add(sum)
	}
	return acc, nil
}

// G2MultiExp is G1MultiExp on the twist.
func G2MultiExp(ps []G2, ks []*big.Int) (G2, error) {
	if len(ps) != len(ks) {
		return G2{}, errors.New("bls: mismatched multi-exp lengths")
	}
	pts := make([]G2, 0, len(ps))
	scs := make([]*big.Int, 0, len(ks))
	for i := range ps {
		k := new(big.Int).Mod(ks[i], rOrder)
		if ps[i].IsInfinity() || k.Sign() == 0 {
			continue
		}
		pts = append(pts, ps[i])
		scs = append(scs, k)
	}
	n := len(pts)
	if n == 0 {
		return g2Infinity(), nil
	}
	if n < 4 {
		acc := pts[0].mulPsi(scs[0])
		for i := 1; i < n; i++ {
			acc = acc.Add(pts[i].mulPsi(scs[i]))
		}
		return acc, nil
	}
	g2NormalizeBatch(pts)
	c := msmWindow(n)
	digits := make([][]uint32, n)
	for i, k := range scs {
		digits[i] = msmDigits(k, c)
	}
	numWindows := len(digits[0])
	buckets := make([]G2, 1<<c-1)
	acc := g2Infinity()
	for j := numWindows - 1; j >= 0; j-- {
		if !acc.IsInfinity() {
			for s := uint(0); s < c; s++ {
				acc = acc.double()
			}
		}
		for i := range buckets {
			buckets[i] = g2Infinity()
		}
		used := false
		for i := 0; i < n; i++ {
			d := digits[i][j]
			if d == 0 {
				continue
			}
			buckets[d-1] = buckets[d-1].addMixed(&pts[i].x, &pts[i].y)
			used = true
		}
		if !used {
			continue
		}
		running, sum := g2Infinity(), g2Infinity()
		for i := len(buckets) - 1; i >= 0; i-- {
			running = running.Add(buckets[i])
			sum = sum.Add(running)
		}
		acc = acc.Add(sum)
	}
	return acc, nil
}
