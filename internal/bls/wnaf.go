package bls

// wnaf.go implements the width-w non-adjacent-form recoding shared by every
// scalar-multiplication path in this package: GLV half-scalars on G1, the
// four ψ-decomposition quarter-scalars on G2, and the fixed |z| scalar of
// the endomorphism subgroup checks. A width-w NAF writes a scalar as
// Σ dᵢ·2ⁱ with every nonzero digit odd and |dᵢ| < 2^{w−1}, so a w-window
// multiplication needs only the odd multiples {1,3,…,2^{w−1}−1}·P and
// averages one addition every w+1 doublings — signed digits are free on an
// elliptic curve because negation is.

import "math/big"

// wnafDigits recodes the little-endian limb scalar k (treated as |k|) into
// width-w NAF digits, least significant first, flipping every digit when
// neg is set. w must be in [2, 7] so digits fit int8. k is not modified.
func wnafDigits(k []uint64, w uint, neg bool) []int8 {
	if w < 2 || w > 7 {
		panic("bls: wnaf width out of range")
	}
	// One spare limb: the "round up" branch adds up to 2^{w−1} to the
	// running value, which can carry past the top limb of k.
	buf := make([]uint64, len(k)+1)
	copy(buf, k)
	mask := uint64(1)<<w - 1
	half := uint64(1) << (w - 1)
	out := make([]int8, 0, 64*len(k)+1)
	for !limbsIsZero(buf) {
		var d int8
		if buf[0]&1 == 1 {
			v := buf[0] & mask
			if v >= half {
				// Centered digit v − 2^w < 0: add its magnitude back.
				d = int8(int64(v) - (int64(1) << w))
				limbsAddSmall(buf, uint64(-int64(d)))
			} else {
				d = int8(v)
				limbsSubSmall(buf, v)
			}
		}
		out = append(out, d)
		limbsShr1(buf)
	}
	if neg {
		for i := range out {
			out[i] = -out[i]
		}
	}
	return out
}

// wnafBig recodes a signed big.Int scalar.
func wnafBig(k *big.Int, w uint) []int8 {
	return wnafDigits(bigToLimbs(k), w, k.Sign() < 0)
}

// bigToLimbs returns |k| as little-endian limbs (at least one limb). It
// goes through the byte encoding rather than k.Bits() so the limb width
// does not depend on the platform's big.Word size.
func bigToLimbs(k *big.Int) []uint64 {
	b := new(big.Int).Abs(k).Bytes() // big-endian
	n := (len(b) + 7) / 8
	out := make([]uint64, n+1) // never empty, even for k = 0
	for i := 0; i < n; i++ {
		end := len(b) - 8*i
		start := end - 8
		if start < 0 {
			start = 0
		}
		var v uint64
		for _, by := range b[start:end] {
			v = v<<8 | uint64(by)
		}
		out[i] = v
	}
	return out
}

// scalarToLimbs256 writes a scalar in [0, r) into fixed little-endian
// limbs, independent of the platform word size.
func scalarToLimbs256(k *big.Int) [4]uint64 {
	var buf [32]byte
	k.FillBytes(buf[:])
	var limbs [4]uint64
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			limbs[i] = limbs[i]<<8 | uint64(buf[(3-i)*8+j])
		}
	}
	return limbs
}

func limbsIsZero(x []uint64) bool {
	var acc uint64
	for _, v := range x {
		acc |= v
	}
	return acc == 0
}

// limbsSubSmall subtracts a single-limb value in place (no final borrow by
// construction: v comes from the low limb).
func limbsSubSmall(x []uint64, v uint64) {
	var borrow uint64 = v
	for i := 0; i < len(x) && borrow != 0; i++ {
		old := x[i]
		x[i] = old - borrow
		if old >= borrow {
			borrow = 0
		} else {
			borrow = 1
		}
	}
}

// limbsAddSmall adds a single-limb value in place.
func limbsAddSmall(x []uint64, v uint64) {
	var carry uint64 = v
	for i := 0; i < len(x) && carry != 0; i++ {
		old := x[i]
		x[i] = old + carry
		if x[i] < old {
			carry = 1
		} else {
			carry = 0
		}
	}
}

// limbsShr1 shifts right by one bit in place.
func limbsShr1(x []uint64) {
	for i := 0; i < len(x); i++ {
		x[i] >>= 1
		if i+1 < len(x) {
			x[i] |= x[i+1] << 63
		}
	}
}
