package bls

import (
	"crypto/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	sk, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("log update: d -> d'")
	sig := sk.Sign(msg)
	ok, err := pk.Verify(msg, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	sk, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sig := sk.Sign([]byte("msg-a"))
	ok, err := pk.Verify([]byte("msg-b"), sig)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("signature verified under wrong message")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	sk, _, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, pk2, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sig := sk.Sign([]byte("msg"))
	ok, err := pk2.Verify([]byte("msg"), sig)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("signature verified under wrong key")
	}
}

func TestAggregate(t *testing.T) {
	msg := []byte("the shared log-update tuple")
	const n = 4
	var sigs []*Signature
	var pks []*PublicKey
	for i := 0; i < n; i++ {
		sk, pk, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sk.Sign(msg))
		pks = append(pks, pk)
	}
	agg, err := AggregateSignatures(sigs)
	if err != nil {
		t.Fatal(err)
	}
	apk, err := AggregatePublicKeys(pks)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := apk.Verify(msg, agg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("aggregate signature rejected")
	}
}

func TestAggregateMissingSignerFails(t *testing.T) {
	msg := []byte("tuple")
	var sigs []*Signature
	var pks []*PublicKey
	for i := 0; i < 3; i++ {
		sk, pk, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sk.Sign(msg))
		pks = append(pks, pk)
	}
	// Aggregate only two signatures but all three keys.
	agg, err := AggregateSignatures(sigs[:2])
	if err != nil {
		t.Fatal(err)
	}
	apk, err := AggregatePublicKeys(pks)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := apk.Verify(msg, agg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("aggregate missing a signer verified")
	}
}

func TestProofOfPossession(t *testing.T) {
	sk, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pop := sk.ProvePossession(pk)
	ok, err := VerifyPossession(pk, pop)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid PoP rejected")
	}
	// A PoP for a different key must not transfer.
	_, pk2, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = VerifyPossession(pk2, pop)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("PoP verified for foreign key")
	}
}

func TestSignatureSerialization(t *testing.T) {
	sk, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sig := sk.Sign([]byte("m"))
	parsed, err := SignatureFromBytes(sig.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pk.Verify([]byte("m"), parsed)
	if err != nil || !ok {
		t.Fatal("serialized signature failed to verify")
	}
	pkParsed, err := PublicKeyFromBytes(pk.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !pkParsed.Equal(pk) {
		t.Fatal("public key round-trip failed")
	}
}

func TestNilAndInfinityRejected(t *testing.T) {
	_, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := pk.Verify([]byte("m"), nil); ok {
		t.Fatal("nil signature verified")
	}
	if ok, _ := pk.Verify([]byte("m"), &Signature{p: g1Infinity()}); ok {
		t.Fatal("infinity signature verified")
	}
	if _, err := AggregateSignatures(nil); err == nil {
		t.Fatal("empty aggregation accepted")
	}
	if _, err := AggregatePublicKeys(nil); err == nil {
		t.Fatal("empty key aggregation accepted")
	}
}

func BenchmarkSign(b *testing.B) {
	sk, _, err := GenerateKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("log tuple")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	sk, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("log tuple")
	sig := sk.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := pk.Verify(msg, sig)
		if err != nil || !ok {
			b.Fatal("verify failed")
		}
	}
}
