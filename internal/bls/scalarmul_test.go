package bls

// Property and differential tests for the endomorphism scalar-mul layer:
// wNAF recoding round-trips, GLV/ψ decompositions recombine to k·P against
// the retained naive double-and-add oracle (mulRaw), and the endomorphisms
// act as their claimed eigenvalues on the order-r subgroups.

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// edgeScalars are the scalar-mult corner cases every path must agree on.
func edgeScalars() []*big.Int {
	z2 := new(big.Int).SetUint64(blsX)
	z2.Mul(z2, z2)
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		new(big.Int).SetUint64(blsX),
		z2,
		new(big.Int).Sub(z2, big.NewInt(1)), // λ
		new(big.Int).Sub(rOrder, big.NewInt(1)),
		new(big.Int).Sub(rOrder, new(big.Int).SetUint64(blsX)),
		new(big.Int).Rsh(rOrder, 1),
	}
}

func randScalar(t testing.TB) *big.Int {
	k, err := rand.Int(rand.Reader, rOrder)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestWnafRoundTrip(t *testing.T) {
	for _, w := range []uint{2, 4, 5, 7} {
		for i := 0; i < 64; i++ {
			k := randScalar(t)
			if i%2 == 1 {
				k.Neg(k)
			}
			digits := wnafBig(k, w)
			// Reconstruct Σ dᵢ2ⁱ.
			got := new(big.Int)
			for i := len(digits) - 1; i >= 0; i-- {
				got.Lsh(got, 1)
				got.Add(got, big.NewInt(int64(digits[i])))
			}
			if got.Cmp(k) != 0 {
				t.Fatalf("w=%d: wNAF reconstructed %v, want %v", w, got, k)
			}
			half := int8(1) << (w - 1)
			for _, d := range digits {
				if d == 0 {
					continue
				}
				if d%2 == 0 || d >= half || d <= -half {
					t.Fatalf("w=%d: digit %d out of odd window", w, d)
				}
			}
		}
	}
}

func TestGLVSplitRecombines(t *testing.T) {
	glvInit()
	bound := new(big.Int).Lsh(big.NewInt(1), 129)
	ks := append(edgeScalars(), nil)
	for i := 0; i < 64; i++ {
		ks = append(ks, randScalar(t))
	}
	for _, k := range ks {
		if k == nil {
			continue
		}
		k1, k2 := glvSplit(k)
		if new(big.Int).Abs(k1).Cmp(bound) > 0 || new(big.Int).Abs(k2).Cmp(bound) > 0 {
			t.Fatalf("GLV halves too large: |k1|=%d bits |k2|=%d bits", k1.BitLen(), k2.BitLen())
		}
		got := new(big.Int).Mul(k2, glvLambda)
		got.Add(got, k1)
		got.Mod(got, rOrder)
		if got.Cmp(new(big.Int).Mod(k, rOrder)) != 0 {
			t.Fatalf("k1 + k2·λ = %v, want %v", got, k)
		}
	}
}

func TestPsiSplitRecombines(t *testing.T) {
	psiSplitInit()
	bound := new(big.Int).Lsh(big.NewInt(1), 66)
	for i := 0; i < 64; i++ {
		k := randScalar(t)
		if i < len(edgeScalars()) {
			k = edgeScalars()[i]
		}
		parts := psiSplit(k)
		got := new(big.Int)
		zpow := big.NewInt(1)
		for _, a := range parts {
			if new(big.Int).Abs(a).Cmp(bound) > 0 {
				t.Fatalf("ψ quarter-scalar too large: %d bits", a.BitLen())
			}
			got.Add(got, new(big.Int).Mul(a, zpow))
			zpow = new(big.Int).Mul(zpow, psiZ)
		}
		got.Mod(got, rOrder)
		if got.Cmp(new(big.Int).Mod(k, rOrder)) != 0 {
			t.Fatalf("Σ aᵢzⁱ = %v, want %v", got, k)
		}
	}
}

func TestG1PhiEigenvalue(t *testing.T) {
	glvInit()
	for i := 0; i < 8; i++ {
		p := G1Generator().Mul(randScalar(t))
		if !g1Phi(p).Equal(p.mulRaw(glvLambda)) {
			t.Fatal("φ(P) != [λ]P on G1")
		}
	}
}

func TestG2PsiEigenvalue(t *testing.T) {
	// ψ acts as multiplication by z ≡ p (mod r) on G2.
	zModR := new(big.Int).Mod(new(big.Int).Neg(new(big.Int).SetUint64(blsX)), rOrder)
	for i := 0; i < 8; i++ {
		p := G2Generator().Mul(randScalar(t))
		if !g2Psi(p).Equal(p.mulRaw(zModR)) {
			t.Fatal("ψ(P) != [z]P on G2")
		}
		if !g2Psi(p).OnCurve() {
			t.Fatal("ψ(P) left the twist")
		}
	}
}

func TestG1MulGLVMatchesNaive(t *testing.T) {
	g := G1Generator()
	p := g.mulRaw(big.NewInt(98765)) // a non-generator base
	for _, k := range edgeScalars() {
		if !p.mulGLV(new(big.Int).Mod(k, rOrder)).Equal(p.mulRaw(new(big.Int).Mod(k, rOrder))) {
			t.Fatalf("GLV mismatch at edge scalar %v", k)
		}
	}
	for i := 0; i < 48; i++ {
		k := randScalar(t)
		if !p.mulGLV(k).Equal(p.mulRaw(k)) {
			t.Fatalf("GLV mismatch at random scalar %v", k)
		}
	}
	if !g1Infinity().mulGLV(big.NewInt(7)).IsInfinity() {
		t.Fatal("GLV of infinity not infinity")
	}
}

func TestG2MulPsiMatchesNaive(t *testing.T) {
	p := G2Generator().mulRaw(big.NewInt(43210))
	for _, k := range edgeScalars() {
		if !p.mulPsi(new(big.Int).Mod(k, rOrder)).Equal(p.mulRaw(new(big.Int).Mod(k, rOrder))) {
			t.Fatalf("ψ-mul mismatch at edge scalar %v", k)
		}
	}
	for i := 0; i < 48; i++ {
		k := randScalar(t)
		if !p.mulPsi(k).Equal(p.mulRaw(k)) {
			t.Fatalf("ψ-mul mismatch at random scalar %v", k)
		}
	}
	if !g2Infinity().mulPsi(big.NewInt(7)).IsInfinity() {
		t.Fatal("ψ-mul of infinity not infinity")
	}
}

func TestMulZAbsMatchesNaive(t *testing.T) {
	z := new(big.Int).SetUint64(blsX)
	p1 := G1Generator().Mul(randScalar(t))
	if !p1.mulZAbs().Equal(p1.mulRaw(z)) {
		t.Fatal("G1 [|z|] NAF multiplication wrong")
	}
	p2 := G2Generator().Mul(randScalar(t))
	if !p2.mulZAbs().Equal(p2.mulRaw(z)) {
		t.Fatal("G2 [|z|] NAF multiplication wrong")
	}
}

func TestG1AddMixedMatchesAdd(t *testing.T) {
	p := G1Generator().Mul(randScalar(t))
	q := G1Generator().Mul(randScalar(t))
	qx, qy, _ := q.affine()
	if !p.addMixed(&qx, &qy).Equal(p.Add(q)) {
		t.Fatal("G1 mixed add mismatch")
	}
	// Edge cases: acc at infinity, doubling, inverse pair.
	if !g1Infinity().addMixed(&qx, &qy).Equal(q) {
		t.Fatal("∞ + q mismatch")
	}
	if !q.addMixed(&qx, &qy).Equal(q.double()) {
		t.Fatal("mixed doubling mismatch")
	}
	nq := q.Neg()
	if !nq.addMixed(&qx, &qy).IsInfinity() {
		t.Fatal("q + (−q) not infinity")
	}
}

func TestG2AddMixedMatchesAdd(t *testing.T) {
	p := G2Generator().Mul(randScalar(t))
	q := G2Generator().Mul(randScalar(t))
	qx, qy, _ := q.affine()
	if !p.addMixed(&qx, &qy).Equal(p.Add(q)) {
		t.Fatal("G2 mixed add mismatch")
	}
	if !g2Infinity().addMixed(&qx, &qy).Equal(q) {
		t.Fatal("∞ + q mismatch")
	}
	if !q.addMixed(&qx, &qy).Equal(q.double()) {
		t.Fatal("mixed doubling mismatch")
	}
	nq := q.Neg()
	if !nq.addMixed(&qx, &qy).IsInfinity() {
		t.Fatal("q + (−q) not infinity")
	}
}

func BenchmarkG1MulGLV(b *testing.B) {
	p := G1Generator().Mul(randScalar(b))
	k := randScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.mulGLV(k)
	}
}

func BenchmarkG1MulNaive(b *testing.B) {
	p := G1Generator().Mul(randScalar(b))
	k := randScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.mulRaw(k)
	}
}

func BenchmarkG2MulPsi(b *testing.B) {
	p := G2Generator().Mul(randScalar(b))
	k := randScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.mulPsi(k)
	}
}

func BenchmarkG2MulNaive(b *testing.B) {
	p := G2Generator().Mul(randScalar(b))
	k := randScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.mulRaw(k)
	}
}
