package bls

// hash2curve.go implements RFC 9380 hash-to-curve for G1 — the suite
// BLS12381G1_XMD:SHA-256_SSWU_RO_ — and the HashMode switch that keeps the
// pre-standard try-and-increment hash available for wire compatibility.
//
// The RFC pipeline is
//
//	u[0], u[1] = hash_to_field(msg, 2)        (expand_message_xmd, SHA-256)
//	Q0 = iso_map(map_to_curve_simple_swu(u[0]))
//	Q1 = iso_map(map_to_curve_simple_swu(u[1]))
//	P  = clear_cofactor(Q0 + Q1)
//
// where map_to_curve_simple_swu lands on the 11-isogenous curve E' (sswu.go)
// and iso_map is the degree-11 rational map back to E (isogeny.go). Unlike
// try-and-increment, every step executes the same instruction sequence for
// every input: field-element selection is CMOV-based, negation is masked,
// and there is no rejection loop, so the hash runs in time independent of
// the message being hashed.
//
// The residual caveats, tracked in ROADMAP.md's constant-time audit item:
// feExp/feInv run public-exponent square-and-multiply (constant time with
// respect to the *base*, which is all that is required here), and the final
// Jacobian Add of Q0+Q1 takes its exceptional branches only on the
// negligible-probability event Q0 = ±Q1.

import (
	"crypto/sha256"
	"fmt"
	"math/big"
)

// HashMode selects the message-to-G1 hash construction. The zero value is
// the RFC 9380 standard hash; deployments with logs signed by pre-RFC
// binaries pin HashLegacy until the fleet is migrated.
type HashMode uint8

const (
	// HashRFC9380 is hash_to_curve from RFC 9380 with the suite
	// BLS12381G1_XMD:SHA-256_SSWU_RO_: constant-time simplified SWU onto
	// an 11-isogenous curve plus the isogeny map back. The default.
	HashRFC9380 HashMode = iota
	// HashLegacy is the pre-standard try-and-increment hash this repo
	// shipped with: variable-time, non-standard, but byte-identical to
	// every signature in logs written by existing deployments.
	HashLegacy
)

// Mode names as they appear on daemon flags and in the fleet-config wire
// handshake.
const (
	hashModeRFCName    = "rfc9380"
	hashModeLegacyName = "legacy"
)

// String returns the wire/flag name of the mode.
func (m HashMode) String() string {
	switch m {
	case HashRFC9380:
		return hashModeRFCName
	case HashLegacy:
		return hashModeLegacyName
	default:
		return fmt.Sprintf("hashmode(%d)", uint8(m))
	}
}

// ParseHashMode maps a wire/flag name to a HashMode. The empty string is
// accepted as HashLegacy: a fleet config that predates the RFC hash comes
// from a deployment whose every signature used try-and-increment, so the
// absent field must negotiate the hash those peers actually speak.
func ParseHashMode(s string) (HashMode, error) {
	switch s {
	case hashModeRFCName:
		return HashRFC9380, nil
	case "", hashModeLegacyName:
		return HashLegacy, nil
	default:
		return 0, fmt.Errorf("bls: unknown hash mode %q (want %q or %q)", s, hashModeRFCName, hashModeLegacyName)
	}
}

// SuiteG1 is the RFC 9380 suite ID implemented by HashRFC9380; callers
// building domain-separation tags should include it, per RFC 9380 §3.1.
const SuiteG1 = "BLS12381G1_XMD:SHA-256_SSWU_RO_"

// HashToG1 maps a message (under a domain-separation tag) onto the order-r
// subgroup of G1 using the selected construction. In RFC mode the domain
// string is used verbatim as the RFC 9380 DST; in legacy mode it feeds the
// seed implementation's ad-hoc domain framing.
func HashToG1(mode HashMode, domain string, msg []byte) G1 {
	if mode == HashLegacy {
		return hashToG1Legacy(domain, msg)
	}
	return hashToG1RFC(domain, msg)
}

// hashToG1RFC is hash_to_curve for BLS12381G1_XMD:SHA-256_SSWU_RO_.
func hashToG1RFC(dst string, msg []byte) G1 {
	var u [2]fe
	hashToFieldFp(u[:], msg, dst)
	x0, y0 := mapToCurveSSWU(&u[0])
	x1, y1 := mapToCurveSSWU(&u[1])
	ix0, iy0 := isoMapG1(&x0, &y0)
	ix1, iy1 := isoMapG1(&x1, &y1)
	r := g1FromAffine(ix0, iy0).Add(g1FromAffine(ix1, iy1))
	return clearCofactorG1(r)
}

// g1HEff is the RFC 9380 §8.8.1 effective cofactor 1 − z (z the BLS12-381
// parameter): multiplying by it clears the G1 torsion at a fraction of the
// cost of the full cofactor h.
var g1HEff = new(big.Int).SetUint64(0xd201000000010001)

// clearCofactorG1 sends any point of E(Fp) into the order-r subgroup.
func clearCofactorG1(p G1) G1 { return p.mulRaw(g1HEff) }

// --- RFC 9380 §5.2 hash_to_field and §5.3.1 expand_message_xmd ---

// l2cBytes is L = ceil((ceil(log2(p)) + k) / 8) for p 381-bit and k = 128:
// each field element is derived from 64 uniform bytes so the bias from the
// mod-p reduction is ≤ 2^-128.
const l2cBytes = 64

// hashToFieldFp fills out with len(out) field elements derived from msg
// under dst (hash_to_field with m = 1).
func hashToFieldFp(out []fe, msg []byte, dst string) {
	uniform := expandMessageXMD(msg, dst, len(out)*l2cBytes)
	for i := range out {
		feReduceWide(&out[i], uniform[i*l2cBytes:(i+1)*l2cBytes])
	}
}

// sha256Block is the input block size r_in_bytes of the expander hash.
const sha256Block = 64

// expandMessageXMD is expand_message_xmd with SHA-256 (RFC 9380 §5.3.1):
// a domain-separated, length-bound expansion of msg to lenInBytes uniform
// bytes. DSTs longer than 255 bytes are replaced by their tagged hash per
// §5.3.3. lenInBytes is bounded by the RFC's 255-block limit; this package
// only asks for 128 bytes.
func expandMessageXMD(msg []byte, dst string, lenInBytes int) []byte {
	dstBytes := []byte(dst)
	if len(dstBytes) > 255 {
		h := sha256.New()
		h.Write([]byte("H2C-OVERSIZE-DST-"))
		h.Write(dstBytes)
		dstBytes = h.Sum(nil)
	}
	ell := (lenInBytes + sha256.Size - 1) / sha256.Size
	if lenInBytes <= 0 || lenInBytes > 65535 || ell > 255 {
		panic("bls: expand_message_xmd length out of range")
	}
	dstPrime := append(dstBytes, byte(len(dstBytes)))

	// b_0 = H(Z_pad || msg || l_i_b_str || 0x00 || DST_prime)
	h := sha256.New()
	var zPad [sha256Block]byte
	h.Write(zPad[:])
	h.Write(msg)
	h.Write([]byte{byte(lenInBytes >> 8), byte(lenInBytes), 0})
	h.Write(dstPrime)
	b0 := h.Sum(nil)

	// b_1 = H(b_0 || 0x01 || DST_prime)
	h.Reset()
	h.Write(b0)
	h.Write([]byte{1})
	h.Write(dstPrime)
	bi := h.Sum(nil)

	out := make([]byte, 0, ell*sha256.Size)
	out = append(out, bi...)
	for i := 2; i <= ell; i++ {
		// b_i = H(strxor(b_0, b_{i-1}) || i || DST_prime)
		var x [sha256.Size]byte
		for j := range x {
			x[j] = b0[j] ^ bi[j]
		}
		h.Reset()
		h.Write(x[:])
		h.Write([]byte{byte(i)})
		h.Write(dstPrime)
		bi = h.Sum(nil)
		out = append(out, bi...)
	}
	return out[:lenInBytes]
}
