package bls

// scalarmul_ct.go is the constant-time G1 scalar multiplication behind
// SecretKey.Sign: a 4-bit fixed-window walk over the scalar where every
// field operation is a masked fp_ct.go kernel, the window entry is
// fetched by scanning the whole table with feCMov (no secret-indexed
// load), and the two reachable exceptional cases — accumulator still at
// infinity, window digit zero — are resolved by masked selects instead
// of branches. The point is public (a hashed message); only the scalar
// is secret, so the window table itself is built with the fast
// variable-time arithmetic.
//
// The branch-free Jacobian formulas are exception-free here because the
// scalar is reduced mod r and the base point has odd prime order r: the
// running prefix of consumed windows never collides with ±digit (the
// doubling/cancellation cases of madd-2007-bl), and y = 0 points do not
// exist on the curve. scalarmul_ct_test.go drives the boundary scalars
// (0, 1, small digits, r−1, leading-zero windows) differentially
// against the GLV path.

import "math/big"

// g1CMov sets dst = src when cond = 1 and leaves dst unchanged when
// cond = 0.
func g1CMov(dst, src *G1, cond uint64) {
	feCMov(&dst.x, &src.x, cond)
	feCMov(&dst.y, &src.y, cond)
	feCMov(&dst.z, &src.z, cond)
}

// g1DoubleCT returns 2p with branch-free dbl-2009-l formulas: an
// infinity input (Z = 0) yields Z3 = 2YZ = 0, so the identity is
// preserved without the early return of double().
func (p G1) g1DoubleCT() G1 {
	var a, b, c, d, e, f fe
	feSquareCT(&a, &p.x)
	feSquareCT(&b, &p.y)
	feSquareCT(&c, &b)
	feAddCT(&d, &p.x, &b)
	feSquareCT(&d, &d)
	feSubCT(&d, &d, &a)
	feSubCT(&d, &d, &c)
	feDoubleCT(&d, &d)
	feDoubleCT(&e, &a)
	feAddCT(&e, &e, &a)
	feSquareCT(&f, &e)
	var out G1
	feSubCT(&out.x, &f, &d)
	feSubCT(&out.x, &out.x, &d)
	feSubCT(&out.y, &d, &out.x)
	feMulCT(&out.y, &out.y, &e)
	feDoubleCT(&c, &c)
	feDoubleCT(&c, &c)
	feDoubleCT(&c, &c)
	feSubCT(&out.y, &out.y, &c)
	feMulCT(&out.z, &p.y, &p.z)
	feDoubleCT(&out.z, &out.z)
	return out
}

// g1AddMixedCT returns p + (qx, qy) with branch-free madd-2007-bl
// formulas plus masked fixups for the reachable exceptions: qValid = 0
// (the window digit was zero) returns p, and p at infinity returns the
// affine point. Callers must guarantee the doubling/cancellation cases
// cannot occur (see the file comment).
func g1AddMixedCT(p *G1, qx, qy *fe, qValid uint64) G1 {
	var z1z1, u2, s2, h, r fe
	feSquareCT(&z1z1, &p.z)
	feMulCT(&u2, qx, &z1z1)
	feMulCT(&s2, qy, &p.z)
	feMulCT(&s2, &s2, &z1z1)
	feSubCT(&h, &u2, &p.x)
	feSubCT(&r, &s2, &p.y)
	var hh, i, j, v fe
	feSquareCT(&hh, &h)
	feDoubleCT(&i, &hh)
	feDoubleCT(&i, &i)
	feMulCT(&j, &h, &i)
	feDoubleCT(&r, &r)
	feMulCT(&v, &p.x, &i)
	var out G1
	feSquareCT(&out.x, &r)
	feSubCT(&out.x, &out.x, &j)
	feSubCT(&out.x, &out.x, &v)
	feSubCT(&out.x, &out.x, &v)
	feSubCT(&out.y, &v, &out.x)
	feMulCT(&out.y, &out.y, &r)
	var t fe
	feMulCT(&t, &p.y, &j)
	feDoubleCT(&t, &t)
	feSubCT(&out.y, &out.y, &t)
	feAddCT(&out.z, &p.z, &h)
	feSquareCT(&out.z, &out.z)
	feSubCT(&out.z, &out.z, &z1z1)
	feSubCT(&out.z, &out.z, &hh)
	// p at infinity: the sum is q itself (as a Z = 1 Jacobian point).
	qJac := G1{x: *qx, y: *qy, z: feR}
	g1CMov(&out, &qJac, feIsZeroMask(&p.z))
	// Digit zero: the sum is p (covers the both-infinite case too).
	g1CMov(&out, p, 1^qValid)
	return out
}

// MulSecret returns k·p for p in the order-r subgroup without any
// k-dependent branch or memory access; use it whenever the scalar is
// secret (signing, possession proofs). k is expected in [0, r) — the
// scalars SecretKey carries — and out-of-range values are reduced with
// variable-time arithmetic before the constant-time walk.
//
//spin:secret k
func (p G1) MulSecret(k *big.Int) G1 {
	if p.IsInfinity() {
		return p
	}
	//spinlint:ignore ctsecret range guard reads only the public sign/bit-length bound of k
	if k.Sign() < 0 || k.Cmp(rOrder) >= 0 {
		//spinlint:ignore ctsecret out-of-range scalars are API misuse, reduced vartime by contract
		k = new(big.Int).Mod(k, rOrder)
	}
	var kb [32]byte
	//spinlint:ignore ctsecret FillBytes pads to a fixed 32-byte width; timing tracks the public limb count
	k.FillBytes(kb[:])

	// Window table d·P, d = 1..15, in affine form. The point is public:
	// the fast variable-time Add/affine are fine here.
	var tax, tay [15]fe
	jac := p
	for d := 0; d < 15; d++ {
		tax[d], tay[d], _ = jac.affine()
		jac = jac.Add(p)
	}

	acc := g1Infinity()
	for w := 0; w < 64; w++ {
		if w != 0 { // public loop counter, not a secret branch
			acc = acc.g1DoubleCT()
			acc = acc.g1DoubleCT()
			acc = acc.g1DoubleCT()
			acc = acc.g1DoubleCT()
		}
		digit := uint64(kb[w>>1])
		if w&1 == 0 {
			digit >>= 4
		} else {
			digit &= 0x0f
		}
		// Constant-time table scan: touch every entry, keep the match.
		var qx, qy fe
		for d := uint64(1); d <= 15; d++ {
			m := ct64Eq(digit, d)
			feCMov(&qx, &tax[d-1], m)
			feCMov(&qy, &tay[d-1], m)
		}
		acc = g1AddMixedCT(&acc, &qx, &qy, ctNonzero64(digit))
	}
	return acc
}
