package bls

// scalarmul_ct_test.go drives G1.MulSecret differentially against the
// GLV path across the exceptional-case boundary: zero and tiny scalars
// (the accumulator-at-infinity and digit-zero fixups), scalars with long
// runs of zero windows, r−1, and random scalars.

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestG1MulSecretDifferential(t *testing.T) {
	g := G1Generator()
	h := hashToG1Legacy("mulsecret-test", []byte("base"))
	rng := rand.New(rand.NewSource(0x5afe))

	scalars := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(15),
		big.NewInt(16),
		big.NewInt(17),
		big.NewInt(255),
		new(big.Int).Sub(Order(), big.NewInt(1)), // r − 1 = −1 mod r
		new(big.Int).Sub(Order(), big.NewInt(2)),
		new(big.Int).Lsh(big.NewInt(1), 200),       // long zero-window tail
		new(big.Int).SetBit(big.NewInt(3), 252, 1), // leading digit + gap
	}
	for i := 0; i < 40; i++ {
		k := new(big.Int).Rand(rng, Order())
		scalars = append(scalars, k)
	}

	for _, p := range []G1{g, h} {
		for _, k := range scalars {
			want := p.Mul(k)
			got := p.MulSecret(k)
			if !want.Equal(got) {
				t.Fatalf("MulSecret(%v) disagrees with Mul: want %x got %x", k, want.Bytes(), got.Bytes())
			}
		}
	}
}

// TestG1MulSecretOutOfRange covers the vartime pre-reduction contract
// for negative and ≥ r scalars.
func TestG1MulSecretOutOfRange(t *testing.T) {
	g := G1Generator()
	cases := []*big.Int{
		new(big.Int).Neg(big.NewInt(7)),
		Order(),
		new(big.Int).Add(Order(), big.NewInt(5)),
		new(big.Int).Mul(Order(), big.NewInt(3)),
	}
	for _, k := range cases {
		want := g.Mul(k)
		got := g.MulSecret(k)
		if !want.Equal(got) {
			t.Fatalf("MulSecret(%v) out-of-range: want %x got %x", k, want.Bytes(), got.Bytes())
		}
	}
}

// TestG1MulSecretInfinity checks the identity base point short-circuit.
func TestG1MulSecretInfinity(t *testing.T) {
	inf := g1Infinity()
	if got := inf.MulSecret(big.NewInt(42)); !got.IsInfinity() {
		t.Fatalf("MulSecret on infinity returned a finite point")
	}
}

// TestSignUsesConstantTimePath pins the signature bytes across the
// Mul → MulSecret routing change: same key, same message, same bytes.
func TestSignUsesConstantTimePath(t *testing.T) {
	g := hashToG1Legacy("sign-ct", []byte("msg"))
	k := new(big.Int).SetInt64(0x1234_5678_9abc)
	if !g.Mul(k).Equal(g.MulSecret(k)) {
		t.Fatal("CT and vartime scalar multiplication disagree on the signing shape")
	}
}

func BenchmarkG1MulSecret(b *testing.B) {
	g := G1Generator()
	rng := rand.New(rand.NewSource(9))
	k := new(big.Int).Rand(rng, Order())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MulSecret(k)
	}
}
