package bls

// legacy_test.go preserves the original simulator-grade pairing engine —
// math/big field arithmetic, generic-Fp12 tower, untwist-based Miller loop,
// square-and-multiply final exponentiation — as a test-only differential
// oracle. It shares no code with the limb/tower production implementation,
// so agreement between the two on random inputs is strong evidence of
// correctness for both.

import "math/big"

var (
	// blsXAbs is |x|, the absolute value of the curve parameter.
	blsXAbs = mustBig("d201000000010000")

	big3 = big.NewInt(3)
	big4 = big.NewInt(4)

	// sqrtExp = (p+1)/4, valid because p ≡ 3 (mod 4).
	sqrtExp = new(big.Int).Rsh(new(big.Int).Add(pMod, big.NewInt(1)), 2)

	// pSquared = p², used for the Frobenius-free easy final exponentiation.
	pSquared = new(big.Int).Mul(pMod, pMod)

	// hardExp = (p⁴ − p² + 1)/r, the hard part of the final exponentiation.
	hardExp = func() *big.Int {
		p2 := new(big.Int).Mul(pMod, pMod)
		p4 := new(big.Int).Mul(p2, p2)
		e := new(big.Int).Sub(p4, p2)
		e.Add(e, big.NewInt(1))
		q, m := new(big.Int).DivMod(e, rOrder, new(big.Int))
		if m.Sign() != 0 {
			panic("bls: r does not divide p^4 - p^2 + 1")
		}
		return q
	}()
)

// --- legacy Fp ---

func fpAdd(a, b *big.Int) *big.Int {
	v := new(big.Int).Add(a, b)
	if v.Cmp(pMod) >= 0 {
		v.Sub(v, pMod)
	}
	return v
}

func fpSub(a, b *big.Int) *big.Int {
	v := new(big.Int).Sub(a, b)
	if v.Sign() < 0 {
		v.Add(v, pMod)
	}
	return v
}

func fpMul(a, b *big.Int) *big.Int {
	v := new(big.Int).Mul(a, b)
	return v.Mod(v, pMod)
}

func fpNeg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(pMod, a)
}

func fpInv(a *big.Int) *big.Int {
	v := new(big.Int).ModInverse(a, pMod)
	if v == nil {
		panic("bls: inverse of zero field element")
	}
	return v
}

func fpFromInt(x int64) *big.Int {
	v := big.NewInt(x)
	return v.Mod(v, pMod)
}

// --- legacy Fp2 = Fp[u]/(u² + 1) ---

type fp2 struct{ c0, c1 *big.Int }

func fp2Zero() fp2 { return fp2{new(big.Int), new(big.Int)} }
func fp2One() fp2  { return fp2{big.NewInt(1), new(big.Int)} }

func (a fp2) isZero() bool { return a.c0.Sign() == 0 && a.c1.Sign() == 0 }

func (a fp2) equalL(b fp2) bool { return a.c0.Cmp(b.c0) == 0 && a.c1.Cmp(b.c1) == 0 }

func (a fp2) addL(b fp2) fp2 { return fp2{fpAdd(a.c0, b.c0), fpAdd(a.c1, b.c1)} }
func (a fp2) subL(b fp2) fp2 { return fp2{fpSub(a.c0, b.c0), fpSub(a.c1, b.c1)} }
func (a fp2) negL() fp2      { return fp2{fpNeg(a.c0), fpNeg(a.c1)} }

func (a fp2) mulL(b fp2) fp2 {
	t0 := fpMul(a.c0, b.c0)
	t1 := fpMul(a.c1, b.c1)
	c0 := fpSub(t0, t1)
	c1 := fpSub(fpSub(fpMul(fpAdd(a.c0, a.c1), fpAdd(b.c0, b.c1)), t0), t1)
	return fp2{c0, c1}
}

func (a fp2) squareL() fp2 { return a.mulL(a) }

// mulByXi multiplies by ξ = 1 + u, the Fp6 non-residue.
func (a fp2) mulByXi() fp2 {
	return fp2{fpSub(a.c0, a.c1), fpAdd(a.c0, a.c1)}
}

func (a fp2) invL() fp2 {
	d := fpAdd(fpMul(a.c0, a.c0), fpMul(a.c1, a.c1))
	di := fpInv(d)
	return fp2{fpMul(a.c0, di), fpMul(fpNeg(a.c1), di)}
}

// --- legacy Fp6 = Fp2[v]/(v³ − ξ) ---

type fp6 struct{ b0, b1, b2 fp2 }

func fp6Zero() fp6 { return fp6{fp2Zero(), fp2Zero(), fp2Zero()} }
func fp6One() fp6  { return fp6{fp2One(), fp2Zero(), fp2Zero()} }

func (a fp6) isZero() bool { return a.b0.isZero() && a.b1.isZero() && a.b2.isZero() }

func (a fp6) equalL(b fp6) bool {
	return a.b0.equalL(b.b0) && a.b1.equalL(b.b1) && a.b2.equalL(b.b2)
}

func (a fp6) addL(b fp6) fp6 { return fp6{a.b0.addL(b.b0), a.b1.addL(b.b1), a.b2.addL(b.b2)} }
func (a fp6) subL(b fp6) fp6 { return fp6{a.b0.subL(b.b0), a.b1.subL(b.b1), a.b2.subL(b.b2)} }

func (a fp6) mulL(b fp6) fp6 {
	t0 := a.b0.mulL(b.b0)
	t1 := a.b1.mulL(b.b1)
	t2 := a.b2.mulL(b.b2)
	c0 := a.b1.addL(a.b2).mulL(b.b1.addL(b.b2)).subL(t1).subL(t2).mulByXi().addL(t0)
	c1 := a.b0.addL(a.b1).mulL(b.b0.addL(b.b1)).subL(t0).subL(t1).addL(t2.mulByXi())
	c2 := a.b0.addL(a.b2).mulL(b.b0.addL(b.b2)).subL(t0).subL(t2).addL(t1)
	return fp6{c0, c1, c2}
}

func (a fp6) squareL() fp6 { return a.mulL(a) }

// mulByV multiplies by v: (b0 + b1 v + b2 v²)·v = ξ b2 + b0 v + b1 v².
func (a fp6) mulByV() fp6 { return fp6{a.b2.mulByXi(), a.b0, a.b1} }

func (a fp6) invL() fp6 {
	c0 := a.b0.squareL().subL(a.b1.mulL(a.b2).mulByXi())
	c1 := a.b2.squareL().mulByXi().subL(a.b0.mulL(a.b1))
	c2 := a.b1.squareL().subL(a.b0.mulL(a.b2))
	t := a.b0.mulL(c0).addL(a.b2.mulL(c1).mulByXi()).addL(a.b1.mulL(c2).mulByXi())
	ti := t.invL()
	return fp6{c0.mulL(ti), c1.mulL(ti), c2.mulL(ti)}
}

// --- legacy Fp12 = Fp6[w]/(w² − v) ---

type fp12 struct{ a0, a1 fp6 }

func fp12One() fp12 { return fp12{fp6One(), fp6Zero()} }

func (a fp12) equalL(b fp12) bool { return a.a0.equalL(b.a0) && a.a1.equalL(b.a1) }

func (a fp12) isOneL() bool { return a.equalL(fp12One()) }

func (a fp12) mulL(b fp12) fp12 {
	t0 := a.a0.mulL(b.a0)
	t1 := a.a1.mulL(b.a1)
	c0 := t0.addL(t1.mulByV())
	c1 := a.a0.addL(a.a1).mulL(b.a0.addL(b.a1)).subL(t0).subL(t1)
	return fp12{c0, c1}
}

func (a fp12) squareL() fp12 { return a.mulL(a) }

func (a fp12) addL(b fp12) fp12 { return fp12{a.a0.addL(b.a0), a.a1.addL(b.a1)} }
func (a fp12) subL(b fp12) fp12 { return fp12{a.a0.subL(b.a0), a.a1.subL(b.a1)} }

// conjL returns the conjugate a0 − a1 w, which equals a^{p⁶}.
func (a fp12) conjL() fp12 { return fp12{a.a0, fp6Zero().subL(a.a1)} }

func (a fp12) invL() fp12 {
	t := a.a0.squareL().subL(a.a1.squareL().mulByV()).invL()
	return fp12{a.a0.mulL(t), fp6Zero().subL(a.a1).mulL(t)}
}

// expL raises a to a non-negative exponent by square-and-multiply.
func (a fp12) expL(e *big.Int) fp12 {
	out := fp12One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		out = out.squareL()
		if e.Bit(i) == 1 {
			out = out.mulL(a)
		}
	}
	return out
}

func fp12Scalar(x *big.Int) fp12 {
	out := fp12{fp6Zero(), fp6Zero()}
	out.a0.b0.c0 = new(big.Int).Set(x)
	return out
}

func fp12FromFp2(x fp2) fp12 {
	out := fp12{fp6Zero(), fp6Zero()}
	out.a0.b0 = fp2{new(big.Int).Set(x.c0), new(big.Int).Set(x.c1)}
	return out
}

func fp12W() fp12 {
	return fp12{fp6Zero(), fp6One()}
}

// --- legacy pairing (untwist + textbook Miller loop) ---

// bigG1 / bigG2 are affine points with math/big coordinates.
type bigG1 struct {
	x, y *big.Int
	inf  bool
}

type bigG2 struct {
	x, y fp2
	inf  bool
}

// toBigG1 / toBigG2 convert production points into the legacy
// representation.
func toBigG1(p G1) bigG1 {
	ax, ay, inf := p.affine()
	if inf {
		return bigG1{inf: true}
	}
	return bigG1{x: feToBig(&ax), y: feToBig(&ay)}
}

func toBigG2(p G2) bigG2 {
	ax, ay, inf := p.affine()
	if inf {
		return bigG2{inf: true}
	}
	return bigG2{
		x: fp2{feToBig(&ax.c0), feToBig(&ax.c1)},
		y: fp2{feToBig(&ay.c0), feToBig(&ay.c1)},
	}
}

type g1Fp12 struct {
	x, y fp12
	inf  bool
}

// untwist maps a twist point into E(Fp12): (x, y) → (x/w², y/w³).
func untwist(q bigG2) g1Fp12 {
	if q.inf {
		return g1Fp12{inf: true}
	}
	w := fp12W()
	wInv := w.invL()
	w2Inv := wInv.mulL(wInv)
	w3Inv := w2Inv.mulL(wInv)
	return g1Fp12{
		x: fp12FromFp2(q.x).mulL(w2Inv),
		y: fp12FromFp2(q.y).mulL(w3Inv),
	}
}

func embedG1(p bigG1) g1Fp12 {
	if p.inf {
		return g1Fp12{inf: true}
	}
	return g1Fp12{x: fp12Scalar(p.x), y: fp12Scalar(p.y)}
}

func lineDouble(t, p g1Fp12) (g1Fp12, fp12) {
	three := fp12Scalar(fpFromInt(3))
	two := fp12Scalar(fpFromInt(2))
	lambda := three.mulL(t.x.squareL()).mulL(two.mulL(t.y).invL())
	x3 := lambda.squareL().subL(t.x).subL(t.x)
	y3 := lambda.mulL(t.x.subL(x3)).subL(t.y)
	l := p.y.subL(t.y).subL(lambda.mulL(p.x.subL(t.x)))
	return g1Fp12{x: x3, y: y3}, l
}

func lineAdd(t, q, p g1Fp12) (g1Fp12, fp12) {
	if t.x.equalL(q.x) {
		if t.y.equalL(q.y) {
			return lineDouble(t, p)
		}
		return g1Fp12{inf: true}, p.x.subL(t.x)
	}
	lambda := q.y.subL(t.y).mulL(q.x.subL(t.x).invL())
	x3 := lambda.squareL().subL(t.x).subL(q.x)
	y3 := lambda.mulL(t.x.subL(x3)).subL(t.y)
	l := p.y.subL(t.y).subL(lambda.mulL(p.x.subL(t.x)))
	return g1Fp12{x: x3, y: y3}, l
}

func legacyMiller(p bigG1, q bigG2) fp12 {
	if p.inf || q.inf {
		return fp12One()
	}
	pe := embedG1(p)
	qe := untwist(q)
	f := fp12One()
	t := qe
	for i := blsXAbs.BitLen() - 2; i >= 0; i-- {
		var l fp12
		t, l = lineDouble(t, pe)
		f = f.squareL().mulL(l)
		if blsXAbs.Bit(i) == 1 {
			t, l = lineAdd(t, qe, pe)
			f = f.mulL(l)
		}
	}
	return f.conjL()
}

func legacyFinalExp(f fp12) fp12 {
	f1 := f.conjL().mulL(f.invL())
	f2 := f1.expL(pSquared).mulL(f1)
	return f2.expL(hardExp)
}

// legacyPair computes the textbook reduced pairing f^{(p⁴−p²+1)/r}.
func legacyPair(p G1, q G2) fp12 {
	return legacyFinalExp(legacyMiller(toBigG1(p), toBigG2(q)))
}

// legacyPairingCheck mirrors the seed PairingCheck: multiply Miller-loop
// outputs, one legacy final exponentiation.
func legacyPairingCheck(ps []G1, qs []G2) bool {
	acc := fp12One()
	for i := range ps {
		acc = acc.mulL(legacyMiller(toBigG1(ps[i]), toBigG2(qs[i])))
	}
	return legacyFinalExp(acc).isOneL()
}

// --- bridges between the towers (test-only) ---

// toFe2Big / fe12 conversions let differential tests compare towers.
func fe2FromLegacy(z *fe2, a fp2) {
	feFromBig(&z.c0, a.c0)
	feFromBig(&z.c1, a.c1)
}

func fe6FromLegacy(z *fe6, a fp6) {
	fe2FromLegacy(&z.b0, a.b0)
	fe2FromLegacy(&z.b1, a.b1)
	fe2FromLegacy(&z.b2, a.b2)
}

func fe12FromLegacy(z *fe12, a fp12) {
	fe6FromLegacy(&z.a0, a.a0)
	fe6FromLegacy(&z.a1, a.a1)
}

func fe2ToLegacy(a *fe2) fp2 {
	return fp2{feToBig(&a.c0), feToBig(&a.c1)}
}

func fe6ToLegacy(a *fe6) fp6 {
	return fp6{fe2ToLegacy(&a.b0), fe2ToLegacy(&a.b1), fe2ToLegacy(&a.b2)}
}

func fe12ToLegacy(a *fe12) fp12 {
	return fp12{fe6ToLegacy(&a.a0), fe6ToLegacy(&a.a1)}
}
