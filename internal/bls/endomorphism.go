package bls

// endomorphism.go implements the ψ (untwist–Frobenius–twist) endomorphism
// on the BLS12-381 twist and the 4-way GLS scalar decomposition built on
// it. With the tower Fp12 = Fp6[w]/(w² − v), Fp6 = Fp2[v]/(v³ − ξ), the
// twist E → E' is (X, Y) ↦ (X·w², Y·w³), so conjugating by the twist turns
// the p-power Frobenius into
//
//	ψ(x, y) = (ξ^{−(p−1)/3}·x̄, ξ^{−(p−1)/2}·ȳ)
//
// (x̄ the Fp2 conjugate), two Fp2 multiplications per application. On the
// order-r subgroup G2, ψ acts as multiplication by z (the curve parameter):
// p ≡ t − 1 ≡ z (mod r) for BLS curves. That yields:
//
//   - a 4-way decomposition k ≡ a₀ + a₁z + a₂z² + a₃z³ (mod r) with
//     |aᵢ| ≲ 2⁶⁵, evaluated as Σ aᵢ·ψⁱ(P) over one ~66-bit doubling chain
//     (vs 255 doublings for double-and-add);
//   - the subgroup membership test ψ(P) = [z]P used by G2FromBytes /
//     G2FromCompressedBytes, a 64-bit |z| multiplication instead of the
//     naive 255-bit r-multiplication (proven complete for BLS12-381 in
//     eprint 2022/352).

import (
	"math/big"
	"sync"
)

var (
	psiOnce sync.Once
	// psiCx = ξ^{−(p−1)/3}, psiCy = ξ^{−(p−1)/2}: the twist conjugation
	// coefficients, derived by inverting the Frobenius constants frobC1.
	psiCx, psiCy fe2
)

func psiInit() {
	psiOnce.Do(func() {
		psiCx.inv(&frobC1[2]) // frobC1[2] = ξ^{(p−1)/3}
		psiCy.inv(&frobC1[3]) // frobC1[3] = ξ^{(p−1)/2}
	})
}

// g2Psi applies ψ to a Jacobian twist point. Conjugation is a field
// automorphism, so (c_x·X̄, c_y·Ȳ, Z̄) represents ψ of the affine point
// (X/Z², Y/Z³): the Z̄-denominators produced by conjugating X and Y are
// exactly the conjugated Z's powers.
func g2Psi(p G2) G2 {
	psiInit()
	var out G2
	out.x.conj(&p.x)
	out.x.mul(&out.x, &psiCx)
	out.y.conj(&p.y)
	out.y.mul(&out.y, &psiCy)
	out.z.conj(&p.z)
	return out
}

// psiSplitInit guards the big.Int constants of the 4-way split.
var (
	psiSplitOnce sync.Once
	// psiZ is the (negative) curve parameter z = −0xd201000000010000.
	psiZ *big.Int
	// psiZ2m1 = z² − 1.
	psiZ2m1 *big.Int
)

func psiSplitInit() {
	psiSplitOnce.Do(func() {
		psiZ = new(big.Int).Neg(new(big.Int).SetUint64(blsX))
		psiZ2m1 = new(big.Int).Mul(psiZ, psiZ)
		psiZ2m1.Sub(psiZ2m1, big.NewInt(1))
	})
}

// psiSplit decomposes k ∈ [0, r) as k ≡ a₀ + a₁z + a₂z² + a₃z³ (mod r)
// with |aᵢ| ≲ 2⁶⁵. Two stages:
//
//  1. Babai rounding against the basis (1, z²−1), (z², −1) of the lattice
//     {(a, b) : a + b·z² ≡ 0 (mod r)} (determinant −r, using that
//     μ = z² satisfies μ² − μ + 1 = r ≡ 0): k ≡ a + b·z² with
//     |a|, |b| ≲ 2¹²⁸.
//  2. Exact signed division of each half by z: a = a₁·z + a₀ with
//     |a₀| ≤ |z|/2 + 1, |a₁| ≤ |a|/|z| + 1.
//
// The identity k = a₀ + a₁z + (b₀ + b₁z)z² + c₁·r holds over the integers,
// so recombination is exact mod r for any point with ψ = [z].
func psiSplit(k *big.Int) [4]*big.Int {
	psiSplitInit()
	z2 := new(big.Int).Mul(psiZ, psiZ)
	c1 := roundDiv(k, rOrder)
	c2 := roundDiv(new(big.Int).Mul(k, psiZ2m1), rOrder)
	// (a, b) = (k, 0) − c₁·(1, z²−1) − c₂·(z², −1)
	a := new(big.Int).Mul(c2, z2)
	a.Sub(k, a)
	a.Sub(a, c1)
	b := new(big.Int).Mul(c1, psiZ2m1)
	b.Neg(b)
	b.Add(b, c2)

	a1 := roundDivSigned(a, psiZ)
	a0 := new(big.Int).Mul(a1, psiZ)
	a0.Sub(a, a0)
	b1 := roundDivSigned(b, psiZ)
	b0 := new(big.Int).Mul(b1, psiZ)
	b0.Sub(b, b0)
	return [4]*big.Int{a0, a1, b0, b1}
}

// g2OddMultiples returns {P, 3P, 5P, …, (2n−1)P}.
func g2OddMultiples(p G2, n int) []G2 {
	tbl := make([]G2, n)
	tbl[0] = p
	twoP := p.double()
	for i := 1; i < n; i++ {
		tbl[i] = tbl[i-1].Add(twoP)
	}
	return tbl
}

// g2TableAdd adds the odd multiple d·P (d odd, possibly negative) into acc.
func g2TableAdd(acc G2, tbl []G2, d int8) G2 {
	if d > 0 {
		return acc.Add(tbl[(d-1)/2])
	}
	return acc.Add(tbl[(-d-1)/2].Neg())
}

// psiWindow is the wNAF width for the four ~65-bit quarter-scalars: a
// 4-entry odd-multiple table per ψ-power.
const psiWindow = 4

// mulPsi computes k·p for k ∈ [0, r) via the 4-way ψ decomposition: four
// width-4 wNAF digit strings over one shared ~66-bit doubling chain. p must
// lie in the order-r subgroup of the twist (ψ = [z] holds only there);
// callers with arbitrary twist points use mulRaw.
func (p G2) mulPsi(k *big.Int) G2 {
	if p.IsInfinity() || k.Sign() == 0 {
		return g2Infinity()
	}
	scalars := psiSplit(k)
	var digits [4][]int8
	n := 0
	for i, s := range scalars {
		digits[i] = wnafBig(s, psiWindow)
		if len(digits[i]) > n {
			n = len(digits[i])
		}
	}
	var tables [4][]G2
	tables[0] = g2OddMultiples(p, 1<<(psiWindow-2))
	for j := 1; j < 4; j++ {
		tables[j] = make([]G2, len(tables[0]))
		for i := range tables[j] {
			tables[j][i] = g2Psi(tables[j-1][i])
		}
	}
	acc := g2Infinity()
	for i := n - 1; i >= 0; i-- {
		acc = acc.double()
		for j := 0; j < 4; j++ {
			if i < len(digits[j]) && digits[j][i] != 0 {
				acc = g2TableAdd(acc, tables[j], digits[j][i])
			}
		}
	}
	return acc
}

// mulZAbs multiplies by |z| using the shared precomputed NAF.
func (p G2) mulZAbs() G2 {
	acc := g2Infinity()
	for i := len(zNAFDigits) - 1; i >= 0; i-- {
		acc = acc.double()
		switch zNAFDigits[i] {
		case 1:
			acc = acc.Add(p)
		case -1:
			acc = acc.Add(p.Neg())
		}
	}
	return acc
}

// inSubgroupPsi reports order-r subgroup membership for a point already
// known to be on the twist: ψ(P) == [z]P, i.e. ψ(P) == −[|z|]P since z is
// negative.
func (p G2) inSubgroupPsi() bool {
	if p.IsInfinity() {
		return true
	}
	return g2Psi(p).Equal(p.mulZAbs().Neg())
}
