package bls

import (
	"crypto/rand"
	"encoding/hex"
	"math/big"
	"testing"
)

func TestGeneratorsOnCurve(t *testing.T) {
	if !G1Generator().OnCurve() {
		t.Fatal("G1 generator off curve")
	}
	if !G2Generator().OnCurve() {
		t.Fatal("G2 generator off curve")
	}
}

func TestGeneratorsInSubgroup(t *testing.T) {
	if !G1Generator().InSubgroup() {
		t.Fatal("G1 generator not in subgroup (r·G != ∞)")
	}
	if !G2Generator().InSubgroup() {
		t.Fatal("G2 generator not in subgroup")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	a, _ := rand.Int(rand.Reader, rOrder)
	b, _ := rand.Int(rand.Reader, rOrder)
	P, Q := g.Mul(a), g.Mul(b)
	if !P.Add(Q).Equal(Q.Add(P)) {
		t.Fatal("G1 addition not commutative")
	}
	sum := new(big.Int).Add(a, b)
	if !g.Mul(sum).Equal(P.Add(Q)) {
		t.Fatal("G1 scalar homomorphism broken")
	}
	if !P.Add(P.Neg()).IsInfinity() {
		t.Fatal("P + (-P) != ∞")
	}
	if !P.Add(g1Infinity()).Equal(P) {
		t.Fatal("P + ∞ != P")
	}
	if !P.OnCurve() {
		t.Fatal("scalar multiple off curve")
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	a, _ := rand.Int(rand.Reader, rOrder)
	b, _ := rand.Int(rand.Reader, rOrder)
	P, Q := g.Mul(a), g.Mul(b)
	if !P.Add(Q).Equal(Q.Add(P)) {
		t.Fatal("G2 addition not commutative")
	}
	sum := new(big.Int).Add(a, b)
	if !g.Mul(sum).Equal(P.Add(Q)) {
		t.Fatal("G2 scalar homomorphism broken")
	}
	if !P.Add(P.Neg()).IsInfinity() {
		t.Fatal("P + (-P) != ∞")
	}
	if !P.OnCurve() {
		t.Fatal("scalar multiple off curve")
	}
}

func TestG1DoubleMatchesAdd(t *testing.T) {
	g := G1Generator()
	if !g.Add(g).Equal(g.Mul(big.NewInt(2))) {
		t.Fatal("2G mismatch")
	}
	if !g.Add(g).Add(g).Equal(g.Mul(big.NewInt(3))) {
		t.Fatal("3G mismatch")
	}
}

func TestHashToG1(t *testing.T) {
	for _, mode := range []HashMode{HashRFC9380, HashLegacy} {
		t.Run(mode.String(), func(t *testing.T) {
			p := HashToG1(mode, "test", []byte("message"))
			if !p.InSubgroup() {
				t.Fatal("hashed point not in subgroup")
			}
			q := HashToG1(mode, "test", []byte("message"))
			if !p.Equal(q) {
				t.Fatal("hash-to-curve not deterministic")
			}
			r := HashToG1(mode, "test", []byte("other"))
			if p.Equal(r) {
				t.Fatal("different messages hash to same point")
			}
			s := HashToG1(mode, "other-domain", []byte("message"))
			if p.Equal(s) {
				t.Fatal("different domains hash to same point")
			}
		})
	}
	// The two constructions must be domain-separated from each other.
	if HashToG1(HashRFC9380, "test", []byte("message")).Equal(
		HashToG1(HashLegacy, "test", []byte("message"))) {
		t.Fatal("RFC and legacy hashes collided")
	}
}

func TestG1Serialization(t *testing.T) {
	p := G1Generator().Mul(big.NewInt(987654321))
	got, err := G1FromBytes(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("G1 round-trip failed")
	}
	inf, err := G1FromBytes(g1Infinity().Bytes())
	if err != nil || !inf.IsInfinity() {
		t.Fatal("G1 infinity round-trip failed")
	}
	if _, err := G1FromBytes(make([]byte, 5)); err == nil {
		t.Fatal("short encoding accepted")
	}
	bad := p.Bytes()
	bad[10] ^= 1
	if _, err := G1FromBytes(bad); err == nil {
		t.Fatal("off-curve point accepted")
	}
}

func TestG2Serialization(t *testing.T) {
	p := G2Generator().Mul(big.NewInt(123456789))
	got, err := G2FromBytes(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("G2 round-trip failed")
	}
	inf, err := G2FromBytes(g2Infinity().Bytes())
	if err != nil || !inf.IsInfinity() {
		t.Fatal("G2 infinity round-trip failed")
	}
	bad := p.Bytes()
	bad[20] ^= 1
	if _, err := G2FromBytes(bad); err == nil {
		t.Fatal("corrupted G2 point accepted")
	}
}

func TestSubgroupRejection(t *testing.T) {
	// A point on the curve but outside the r-order subgroup must be
	// rejected by deserialization. Construct one by finding an x whose
	// curve point has full cofactor order: hash points *before* cofactor
	// clearing are overwhelmingly outside the subgroup.
	x := big.NewInt(5)
	for {
		rhs := fpAdd(fpMul(fpMul(x, x), x), big4)
		y := new(big.Int).Exp(rhs, sqrtExp, pMod)
		if fpMul(y, y).Cmp(rhs) == 0 {
			var fx, fy fe
			feFromBig(&fx, x)
			feFromBig(&fy, y)
			p := g1FromAffine(fx, fy)
			if p.OnCurve() && !p.InSubgroup() {
				if _, err := G1FromBytes(p.Bytes()); err == nil {
					t.Fatal("non-subgroup point accepted")
				}
				return
			}
		}
		x.Add(x, big.NewInt(1))
	}
}

func TestGeneratorVectors(t *testing.T) {
	// The serialized generators must match the published BLS12-381
	// uncompressed affine coordinates (draft-irtf-cfrg-pairing-friendly
	// curves, §4.2.1) byte for byte.
	g1 := G1Generator().Bytes()
	wantG1 := "04" +
		"17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb" +
		"08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"
	if got := hex.EncodeToString(g1); got != wantG1 {
		t.Fatalf("G1 generator drifted:\n got %s\nwant %s", got, wantG1)
	}
	g2 := G2Generator().Bytes()
	wantG2 := "04" +
		"024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8" +
		"13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e" +
		"0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801" +
		"0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"
	if got := hex.EncodeToString(g2); got != wantG2 {
		t.Fatalf("G2 generator drifted:\n got %s\nwant %s", got, wantG2)
	}
}

func TestProjectiveAffineConsistency(t *testing.T) {
	// Points reached through different addition chains have different Z
	// coordinates but must compare and serialize identically.
	g := G1Generator()
	a := g.Add(g).Add(g)      // ((G+G)+G)
	b := g.Mul(big.NewInt(3)) // 3·G
	if !a.Equal(b) {
		t.Fatal("projective Equal broken across chains")
	}
	if string(a.Bytes()) != string(b.Bytes()) {
		t.Fatal("affine serialization differs across chains")
	}
	h := G2Generator()
	c := h.Add(h).Add(h)
	d := h.Mul(big.NewInt(3))
	if !c.Equal(d) || string(c.Bytes()) != string(d.Bytes()) {
		t.Fatal("G2 projective consistency broken")
	}
}
