package bls

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestGeneratorsOnCurve(t *testing.T) {
	if !G1Generator().OnCurve() {
		t.Fatal("G1 generator off curve")
	}
	if !G2Generator().OnCurve() {
		t.Fatal("G2 generator off curve")
	}
}

func TestGeneratorsInSubgroup(t *testing.T) {
	if !G1Generator().InSubgroup() {
		t.Fatal("G1 generator not in subgroup (r·G != ∞)")
	}
	if !G2Generator().InSubgroup() {
		t.Fatal("G2 generator not in subgroup")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	a, _ := rand.Int(rand.Reader, rOrder)
	b, _ := rand.Int(rand.Reader, rOrder)
	P, Q := g.Mul(a), g.Mul(b)
	if !P.Add(Q).Equal(Q.Add(P)) {
		t.Fatal("G1 addition not commutative")
	}
	sum := new(big.Int).Add(a, b)
	if !g.Mul(sum).Equal(P.Add(Q)) {
		t.Fatal("G1 scalar homomorphism broken")
	}
	if !P.Add(P.Neg()).IsInfinity() {
		t.Fatal("P + (-P) != ∞")
	}
	if !P.Add(g1Infinity()).Equal(P) {
		t.Fatal("P + ∞ != P")
	}
	if !P.OnCurve() {
		t.Fatal("scalar multiple off curve")
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	a, _ := rand.Int(rand.Reader, rOrder)
	b, _ := rand.Int(rand.Reader, rOrder)
	P, Q := g.Mul(a), g.Mul(b)
	if !P.Add(Q).Equal(Q.Add(P)) {
		t.Fatal("G2 addition not commutative")
	}
	sum := new(big.Int).Add(a, b)
	if !g.Mul(sum).Equal(P.Add(Q)) {
		t.Fatal("G2 scalar homomorphism broken")
	}
	if !P.Add(P.Neg()).IsInfinity() {
		t.Fatal("P + (-P) != ∞")
	}
	if !P.OnCurve() {
		t.Fatal("scalar multiple off curve")
	}
}

func TestG1DoubleMatchesAdd(t *testing.T) {
	g := G1Generator()
	if !g.Add(g).Equal(g.Mul(big.NewInt(2))) {
		t.Fatal("2G mismatch")
	}
	if !g.Add(g).Add(g).Equal(g.Mul(big.NewInt(3))) {
		t.Fatal("3G mismatch")
	}
}

func TestHashToG1(t *testing.T) {
	p := HashToG1("test", []byte("message"))
	if !p.InSubgroup() {
		t.Fatal("hashed point not in subgroup")
	}
	q := HashToG1("test", []byte("message"))
	if !p.Equal(q) {
		t.Fatal("hash-to-curve not deterministic")
	}
	r := HashToG1("test", []byte("other"))
	if p.Equal(r) {
		t.Fatal("different messages hash to same point")
	}
	s := HashToG1("other-domain", []byte("message"))
	if p.Equal(s) {
		t.Fatal("different domains hash to same point")
	}
}

func TestG1Serialization(t *testing.T) {
	p := G1Generator().Mul(big.NewInt(987654321))
	got, err := G1FromBytes(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("G1 round-trip failed")
	}
	inf, err := G1FromBytes(g1Infinity().Bytes())
	if err != nil || !inf.IsInfinity() {
		t.Fatal("G1 infinity round-trip failed")
	}
	if _, err := G1FromBytes(make([]byte, 5)); err == nil {
		t.Fatal("short encoding accepted")
	}
	bad := p.Bytes()
	bad[10] ^= 1
	if _, err := G1FromBytes(bad); err == nil {
		t.Fatal("off-curve point accepted")
	}
}

func TestG2Serialization(t *testing.T) {
	p := G2Generator().Mul(big.NewInt(123456789))
	got, err := G2FromBytes(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("G2 round-trip failed")
	}
	inf, err := G2FromBytes(g2Infinity().Bytes())
	if err != nil || !inf.IsInfinity() {
		t.Fatal("G2 infinity round-trip failed")
	}
	bad := p.Bytes()
	bad[20] ^= 1
	if _, err := G2FromBytes(bad); err == nil {
		t.Fatal("corrupted G2 point accepted")
	}
}

func TestSubgroupRejection(t *testing.T) {
	// A point on the curve but outside the r-order subgroup must be
	// rejected by deserialization. Construct one by finding an x whose
	// curve point has full cofactor order: hash points *before* cofactor
	// clearing are overwhelmingly outside the subgroup.
	x := big.NewInt(5)
	for {
		rhs := fpAdd(fpMul(fpMul(x, x), x), big4)
		y := new(big.Int).Exp(rhs, sqrtExp, pMod)
		if fpMul(y, y).Cmp(rhs) == 0 {
			p := G1{x: x, y: y}
			if p.OnCurve() && !p.InSubgroup() {
				if _, err := G1FromBytes(p.Bytes()); err == nil {
					t.Fatal("non-subgroup point accepted")
				}
				return
			}
		}
		x.Add(x, big.NewInt(1))
	}
}
