package bls

// g2_ct.go is the constant-time G2 fixed-base comb behind key generation:
// the scalar is cut into the same 64 four-bit windows as the vartime
// G2MulGen walk (fixedbase.go), the window entry is fetched by scanning
// all 15 precomputed table points with fe2CMov (no secret-indexed load),
// and every field operation is a masked fp2_ct.go kernel. Because the
// table stores digit·2^{4w}·G there are no doublings at all — the comb is
// 64 complete mixed additions, which also makes it ~2× faster than a
// doubling CT window walk of MulSecret's shape would be on G2.
//
// The branch-free mixed addition is exception-free on this path. After
// windows 0..w−1 the accumulator holds a·G with a = k mod 2^{4w} and the
// incoming term is d·2^{4w}·G, d ∈ [1,15], with s = a + d·2^{4w} ≤ k < r.
// Cancellation (acc = −q) needs s ≡ 0 (mod r) with 0 < s < r: impossible.
// Doubling (acc = q) needs a ≡ d·2^{4w} (mod r); writing d·2^{4w} = a + jr
// for some j ≥ 0, j = 0 forces a ≥ 2^{4w} > a, and j ≥ 1 forces
// s = 2·d·2^{4w} − jr ≥ r, contradicting s < r. The two reachable
// exceptions — accumulator still at infinity, window digit zero — are
// resolved by masked selects, exactly as in g1AddMixedCT.

import "math/big"

// g2CMov sets dst = src when cond = 1 and leaves dst unchanged when
// cond = 0.
func g2CMov(dst, src *G2, cond uint64) {
	fe2CMov(&dst.x, &src.x, cond)
	fe2CMov(&dst.y, &src.y, cond)
	fe2CMov(&dst.z, &src.z, cond)
}

// g2AddMixedCT returns p + (qx, qy) with branch-free madd-2007-bl
// formulas plus masked fixups for the reachable exceptions: qValid = 0
// (the window digit was zero) returns p, and p at infinity returns the
// affine point. Callers must guarantee the doubling/cancellation cases
// cannot occur (see the file comment).
func g2AddMixedCT(p *G2, qx, qy *fe2, qValid uint64) G2 {
	var z1z1, u2, s2, h, r fe2
	fe2SquareCT(&z1z1, &p.z)
	fe2MulCT(&u2, qx, &z1z1)
	fe2MulCT(&s2, qy, &p.z)
	fe2MulCT(&s2, &s2, &z1z1)
	fe2SubCT(&h, &u2, &p.x)
	fe2SubCT(&r, &s2, &p.y)
	var hh, i, j, v fe2
	fe2SquareCT(&hh, &h)
	fe2DoubleCT(&i, &hh)
	fe2DoubleCT(&i, &i)
	fe2MulCT(&j, &h, &i)
	fe2DoubleCT(&r, &r)
	fe2MulCT(&v, &p.x, &i)
	var out G2
	fe2SquareCT(&out.x, &r)
	fe2SubCT(&out.x, &out.x, &j)
	fe2SubCT(&out.x, &out.x, &v)
	fe2SubCT(&out.x, &out.x, &v)
	fe2SubCT(&out.y, &v, &out.x)
	fe2MulCT(&out.y, &out.y, &r)
	var t fe2
	fe2MulCT(&t, &p.y, &j)
	fe2DoubleCT(&t, &t)
	fe2SubCT(&out.y, &out.y, &t)
	fe2AddCT(&out.z, &p.z, &h)
	fe2SquareCT(&out.z, &out.z)
	fe2SubCT(&out.z, &out.z, &z1z1)
	fe2SubCT(&out.z, &out.z, &hh)
	// p at infinity: the sum is q itself (as a Z = 1 Jacobian point).
	qJac := g2FromAffine(*qx, *qy)
	g2CMov(&out, &qJac, fe2IsZeroMask(&p.z))
	// Digit zero: the sum is p (covers the both-infinite case too).
	g2CMov(&out, p, 1^qValid)
	return out
}

// G2MulGenSecret returns k·G for the G2 generator without any k-dependent
// branch or memory access — the key-generation path, where k is the
// freshly sampled signing key. k is expected in [0, r) and out-of-range
// values are reduced with variable-time arithmetic before the
// constant-time comb. Differentially bit-identical to the vartime
// G2MulGen walk (g2_ct_test.go).
//
//spin:secret k
func G2MulGenSecret(k *big.Int) G2 {
	g2GenTableInit()
	//spinlint:ignore ctsecret range guard reads only the public sign/bit-length bound of k
	if k.Sign() < 0 || k.Cmp(rOrder) >= 0 {
		//spinlint:ignore ctsecret out-of-range scalars are API misuse, reduced vartime by contract
		k = new(big.Int).Mod(k, rOrder)
	}
	var kb [32]byte
	//spinlint:ignore ctsecret FillBytes pads to a fixed 32-byte width; timing tracks the public limb count
	k.FillBytes(kb[:])

	acc := g2Infinity()
	for w := 0; w < fixedWindows; w++ {
		// Window w covers scalar bits [4w, 4w+4): the little-endian walk
		// of G2MulGen, read from the fixed-width big-endian buffer. The
		// window parity is a public loop invariant, not a secret branch.
		digit := uint64(kb[31-(w>>1)])
		if w&1 == 0 {
			digit &= 0x0f
		} else {
			digit >>= 4
		}
		// Constant-time table scan: touch every entry, keep the match.
		var qx, qy fe2
		for d := uint64(1); d <= 15; d++ {
			m := ct64Eq(digit, d)
			fe2CMov(&qx, &g2GenTable[w][d-1].x, m)
			fe2CMov(&qy, &g2GenTable[w][d-1].y, m)
		}
		acc = g2AddMixedCT(&acc, &qx, &qy, ctNonzero64(digit))
	}
	return acc
}
