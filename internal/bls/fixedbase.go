package bls

// fixedbase.go implements fixed-base scalar multiplication for the G1 and
// G2 generators with precomputed window tables: the 255-bit scalar is cut
// into 64 four-bit windows and the table stores j·2^{4i}·G for every
// window i and digit j, so a generator multiplication is at most 64 mixed
// additions and no doublings at all. Key generation (G2) and any
// generator-side G1 multiplication hit these paths; variable-base
// multiplications (signing hashes, arbitrary points) use the GLV/ψ routes.
//
// Tables are built lazily on first use and normalized to affine with one
// shared batch inversion (msm.go). Memory: 64 windows × 15 entries:
// G1 960 points × 96 B = 90 KiB, G2 960 points × 192 B = 180 KiB.

import (
	"math/big"
	"sync"
)

// fixedWindow is the window width in bits; 64 windows of 15 odd digits
// cover a 256-bit scalar.
const fixedWindow = 4

const fixedWindows = (256 + fixedWindow - 1) / fixedWindow

var (
	g1GenTableOnce sync.Once
	g1GenTable     [][]G1 // [window][digit−1] = digit·2^{4·window}·G
	g2GenTableOnce sync.Once
	g2GenTable     [][]G2
)

func g1GenTableInit() {
	g1GenTableOnce.Do(func() {
		flat := make([]G1, 0, fixedWindows*15)
		base := G1Generator()
		for w := 0; w < fixedWindows; w++ {
			entry := base
			for j := 1; j <= 15; j++ {
				flat = append(flat, entry)
				if j < 15 {
					entry = entry.Add(base)
				}
			}
			base = entry.Add(base) // 16·(2^{4w}·G) = 2^{4(w+1)}·G
		}
		g1NormalizeBatch(flat)
		g1GenTable = make([][]G1, fixedWindows)
		for w := 0; w < fixedWindows; w++ {
			g1GenTable[w] = flat[w*15 : (w+1)*15]
		}
	})
}

func g2GenTableInit() {
	g2GenTableOnce.Do(func() {
		flat := make([]G2, 0, fixedWindows*15)
		base := G2Generator()
		for w := 0; w < fixedWindows; w++ {
			entry := base
			for j := 1; j <= 15; j++ {
				flat = append(flat, entry)
				if j < 15 {
					entry = entry.Add(base)
				}
			}
			base = entry.Add(base)
		}
		g2NormalizeBatch(flat)
		g2GenTable = make([][]G2, fixedWindows)
		for w := 0; w < fixedWindows; w++ {
			g2GenTable[w] = flat[w*15 : (w+1)*15]
		}
	})
}

// g1GenWalk is the table walk shared by the single-scalar and batch
// entry points; callers must have run g1GenTableInit.
func g1GenWalk(limbs [4]uint64) G1 {
	acc := g1Infinity()
	for w := 0; w < fixedWindows; w++ {
		d := limbs[w/16] >> (uint(w%16) * fixedWindow) & 0xf
		if d != 0 {
			e := &g1GenTable[w][d-1]
			acc = acc.addMixed(&e.x, &e.y)
		}
	}
	return acc
}

func g2GenWalk(limbs [4]uint64) G2 {
	acc := g2Infinity()
	for w := 0; w < fixedWindows; w++ {
		d := limbs[w/16] >> (uint(w%16) * fixedWindow) & 0xf
		if d != 0 {
			e := &g2GenTable[w][d-1]
			acc = acc.addMixed(&e.x, &e.y)
		}
	}
	return acc
}

// G1MulGen returns k·G for the G1 generator (k reduced mod r): a pure
// table walk of at most 64 mixed additions.
//
//spin:vartime
func G1MulGen(k *big.Int) G1 {
	g1GenTableInit()
	return g1GenWalk(scalarToLimbs256(new(big.Int).Mod(k, rOrder)))
}

// G2MulGen returns k·G for the G2 generator (k reduced mod r) — the
// public-scalar generator path and the differential oracle for the
// constant-time keygen comb (g2_ct.go).
//
//spin:vartime
func G2MulGen(k *big.Int) G2 {
	g2GenTableInit()
	return g2GenWalk(scalarToLimbs256(new(big.Int).Mod(k, rOrder)))
}

// G1MulGenBatch returns ks[i]·G for every scalar, walking the shared
// window table per scalar and converting the whole batch to affine
// (Z = 1) with ONE shared Montgomery batch inversion — where n calls to
// G1MulGen followed by per-point affine() would pay n field inversions.
// Zero scalars yield infinity entries, which the normalization skips.
//
//spin:vartime
func G1MulGenBatch(ks []*big.Int) []G1 {
	g1GenTableInit()
	out := make([]G1, len(ks))
	tmp := new(big.Int)
	for i, k := range ks {
		out[i] = g1GenWalk(scalarToLimbs256(tmp.Mod(k, rOrder)))
	}
	g1NormalizeBatch(out)
	return out
}

// G2MulGenBatch is G1MulGenBatch on the G2 generator table — the batch
// public-key path for fleet provisioning with public scalars.
//
//spin:vartime
func G2MulGenBatch(ks []*big.Int) []G2 {
	g2GenTableInit()
	out := make([]G2, len(ks))
	tmp := new(big.Int)
	for i, k := range ks {
		out[i] = g2GenWalk(scalarToLimbs256(tmp.Mod(k, rOrder)))
	}
	g2NormalizeBatch(out)
	return out
}
