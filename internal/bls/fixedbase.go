package bls

// fixedbase.go implements fixed-base scalar multiplication for the G1 and
// G2 generators with precomputed window tables: the 255-bit scalar is cut
// into 64 four-bit windows and the table stores j·2^{4i}·G for every
// window i and digit j, so a generator multiplication is at most 64 mixed
// additions and no doublings at all. Key generation (G2) and any
// generator-side G1 multiplication hit these paths; variable-base
// multiplications (signing hashes, arbitrary points) use the GLV/ψ routes.
//
// Tables are built lazily on first use and normalized to affine with one
// shared batch inversion (msm.go). Memory: 64 windows × 15 entries:
// G1 960 points × 96 B = 90 KiB, G2 960 points × 192 B = 180 KiB.

import (
	"math/big"
	"sync"
)

// fixedWindow is the window width in bits; 64 windows of 15 odd digits
// cover a 256-bit scalar.
const fixedWindow = 4

const fixedWindows = (256 + fixedWindow - 1) / fixedWindow

var (
	g1GenTableOnce sync.Once
	g1GenTable     [][]G1 // [window][digit−1] = digit·2^{4·window}·G
	g2GenTableOnce sync.Once
	g2GenTable     [][]G2
)

func g1GenTableInit() {
	g1GenTableOnce.Do(func() {
		flat := make([]G1, 0, fixedWindows*15)
		base := G1Generator()
		for w := 0; w < fixedWindows; w++ {
			entry := base
			for j := 1; j <= 15; j++ {
				flat = append(flat, entry)
				if j < 15 {
					entry = entry.Add(base)
				}
			}
			base = entry.Add(base) // 16·(2^{4w}·G) = 2^{4(w+1)}·G
		}
		g1NormalizeBatch(flat)
		g1GenTable = make([][]G1, fixedWindows)
		for w := 0; w < fixedWindows; w++ {
			g1GenTable[w] = flat[w*15 : (w+1)*15]
		}
	})
}

func g2GenTableInit() {
	g2GenTableOnce.Do(func() {
		flat := make([]G2, 0, fixedWindows*15)
		base := G2Generator()
		for w := 0; w < fixedWindows; w++ {
			entry := base
			for j := 1; j <= 15; j++ {
				flat = append(flat, entry)
				if j < 15 {
					entry = entry.Add(base)
				}
			}
			base = entry.Add(base)
		}
		g2NormalizeBatch(flat)
		g2GenTable = make([][]G2, fixedWindows)
		for w := 0; w < fixedWindows; w++ {
			g2GenTable[w] = flat[w*15 : (w+1)*15]
		}
	})
}

// G1MulGen returns k·G for the G1 generator (k reduced mod r): a pure
// table walk of at most 64 mixed additions.
//
//spin:vartime
func G1MulGen(k *big.Int) G1 {
	g1GenTableInit()
	limbs := scalarToLimbs256(new(big.Int).Mod(k, rOrder))
	acc := g1Infinity()
	for w := 0; w < fixedWindows; w++ {
		d := limbs[w/16] >> (uint(w%16) * fixedWindow) & 0xf
		if d != 0 {
			e := &g1GenTable[w][d-1]
			acc = acc.addMixed(&e.x, &e.y)
		}
	}
	return acc
}

// G2MulGen returns k·G for the G2 generator (k reduced mod r) — the key
// generation path.
//
//spin:vartime
func G2MulGen(k *big.Int) G2 {
	g2GenTableInit()
	limbs := scalarToLimbs256(new(big.Int).Mod(k, rOrder))
	acc := g2Infinity()
	for w := 0; w < fixedWindows; w++ {
		d := limbs[w/16] >> (uint(w%16) * fixedWindow) & 0xf
		if d != 0 {
			e := &g2GenTable[w][d-1]
			acc = acc.addMixed(&e.x, &e.y)
		}
	}
	return acc
}
