package bls

// fp_ct_test.go proves the masked constant-time kernels byte-identical
// to the fast variable-time ones, with the reduction boundary cases
// (both sides of every conditional subtraction) driven explicitly.

import (
	"math/rand"
	"testing"
)

// ctRandFe returns a uniformly random reduced field element by
// rejection sampling.
func ctRandFe(rng *rand.Rand) fe {
	for {
		var z fe
		for i := range z {
			z[i] = rng.Uint64()
		}
		z[5] &= (1 << 61) - 1 // top limb of p is 61 bits
		var t fe
		feReduceCT(&t, &z)
		if t == z { // z < p
			return z
		}
	}
}

// ctEdgeCases are reduction-boundary operands: 0, 1, p−1 (so x+y and
// x−y exercise both sides of every conditional subtraction), plus the
// high-limbed Montgomery constants.
func ctEdgeCases() []fe {
	var zero, one, pm1 fe
	feFromUint64(&one, 1)
	feNeg(&pm1, &one) // p − 1
	return []fe{zero, one, pm1, feR, feR2}
}

func TestFeAddSubReduceCTDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc7))
	cases := ctEdgeCases()
	for i := 0; i < 2000; i++ {
		cases = append(cases, ctRandFe(rng))
	}
	for i, x := range cases {
		y := cases[(i*7+3)%len(cases)]
		var want, got fe

		feAdd(&want, &x, &y)
		feAddCT(&got, &x, &y)
		if want != got {
			t.Fatalf("feAddCT mismatch: x=%x y=%x want=%x got=%x", x, y, want, got)
		}

		feSub(&want, &x, &y)
		feSubCT(&got, &x, &y)
		if want != got {
			t.Fatalf("feSubCT mismatch: x=%x y=%x want=%x got=%x", x, y, want, got)
		}

		feDouble(&want, &x)
		feDoubleCT(&got, &x)
		if want != got {
			t.Fatalf("feDoubleCT mismatch: x=%x want=%x got=%x", x, want, got)
		}

		t2 := x
		feReduce(&want, &t2)
		t2 = x
		feReduceCT(&got, &t2)
		if want != got {
			t.Fatalf("feReduceCT mismatch: t=%x want=%x got=%x", x, want, got)
		}
	}
}

// TestFeReduceCTAboveP drives feReduceCT on unreduced inputs in [p, 2p)
// where the subtraction branch must be taken.
func TestFeReduceCTAboveP(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd9))
	for i := 0; i < 2000; i++ {
		x := ctRandFe(rng)
		// t = x + p (no overflow: x < p, 2p < 2^384).
		var carry uint64
		var tv fe
		for j := range tv {
			var c uint64
			tv[j], c = addCarry(x[j], pLimbs[j], carry)
			carry = c
		}
		var want, got fe
		tw := tv
		feReduce(&want, &tw)
		tw = tv
		feReduceCT(&got, &tw)
		if want != got || got != x {
			t.Fatalf("feReduceCT above p: x=%x want=%x got=%x", x, want, got)
		}
	}
}

func addCarry(a, b, c uint64) (uint64, uint64) {
	s := a + b
	c1 := uint64(0)
	if s < a {
		c1 = 1
	}
	s2 := s + c
	if s2 < s {
		c1 = 1
	}
	return s2, c1
}

func TestFeMulSquareCTDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xe3))
	cases := ctEdgeCases()
	for i := 0; i < 1000; i++ {
		cases = append(cases, ctRandFe(rng))
	}
	for i, x := range cases {
		y := cases[(i*11+5)%len(cases)]
		var want, got fe

		feMul(&want, &x, &y)
		feMulCT(&got, &x, &y)
		if want != got {
			t.Fatalf("feMulCT mismatch: x=%x y=%x want=%x got=%x", x, y, want, got)
		}

		feSquare(&want, &x)
		feSquareCT(&got, &x)
		if want != got {
			t.Fatalf("feSquareCT mismatch: x=%x want=%x got=%x", x, want, got)
		}
	}
}

func TestCt64Eq(t *testing.T) {
	cases := []struct {
		a, b uint64
		want uint64
	}{
		{0, 0, 1}, {1, 0, 0}, {0, 1, 0}, {15, 15, 1},
		{^uint64(0), ^uint64(0), 1}, {^uint64(0), 0, 0}, {1 << 63, 1 << 63, 1},
	}
	for _, c := range cases {
		if got := ct64Eq(c.a, c.b); got != c.want {
			t.Errorf("ct64Eq(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkFeAddCT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := ctRandFe(rng), ctRandFe(rng)
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feAddCT(&z, &x, &y)
	}
}

func BenchmarkFeSubCT(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := ctRandFe(rng), ctRandFe(rng)
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feSubCT(&z, &x, &y)
	}
}

func BenchmarkFeMulCT(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := ctRandFe(rng), ctRandFe(rng)
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feMulCT(&z, &x, &y)
	}
}

func BenchmarkFeSquareCT(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := ctRandFe(rng)
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feSquareCT(&z, &x)
	}
}
