package bls

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
)

// Curve arithmetic for BLS12-381 over the limb-based Montgomery field.
// Points are held in Jacobian projective coordinates (x/z², y/z³), so Add
// and double cost a handful of field multiplications instead of the
// per-step ModInverse the old affine chord-and-tangent code paid; the one
// inversion happens when a point is serialized or compared. z = 0 encodes
// the point at infinity, so the zero value of G1/G2 is the identity.

// Group-order and cofactor constants. math/big appears here only for the
// scalar (exponent) side of the API — never for base-field arithmetic.
var (
	// rOrder is the order of the pairing groups (the scalar field).
	rOrder = mustBig("73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001")
	// g1CofactorH is the G1 cofactor used to clear torsion when hashing.
	g1CofactorH = mustBig("396c8c005555e1568c00aaab0000aaab")
	// pMod is the base-field modulus as a big.Int, kept for tests and
	// documentation; production field math runs on limbs (fp_limb.go).
	pMod = mustBig("1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab")
)

func mustBig(h string) *big.Int {
	v, ok := new(big.Int).SetString(h, 16)
	if !ok {
		panic("bls: bad constant " + h)
	}
	return v
}

// mustFe parses a 96-hex-digit field element into Montgomery form.
func mustFe(h string) fe {
	b, err := hex.DecodeString(h)
	if err != nil || len(b) != fpSize {
		panic("bls: bad fe constant " + h)
	}
	if !feValidBytes(b) {
		panic("bls: fe constant out of range " + h)
	}
	var z fe
	feFromBytes(&z, b)
	return z
}

// Curve coefficients: b = 4 on G1, b' = 4(1+u) on the twist.
var (
	feB  = func() fe { var z fe; feFromUint64(&z, 4); return z }()
	fe2B = func() fe2 {
		var z fe2
		feFromUint64(&z.c0, 4)
		feFromUint64(&z.c1, 4)
		return z
	}()
)

// G1 is a point on E(Fp): y² = x³ + 4, in Jacobian coordinates. The zero
// value is the point at infinity.
type G1 struct {
	x, y, z fe
}

// G2 is a point on the twist E'(Fp2): y² = x³ + 4(u+1), in Jacobian
// coordinates. The zero value is the point at infinity.
type G2 struct {
	x, y, z fe2
}

func g1Infinity() G1 { return G1{} }
func g2Infinity() G2 { return G2{} }

// g1FromAffine builds a point from affine Montgomery coordinates.
func g1FromAffine(x, y fe) G1 {
	return G1{x: x, y: y, z: feR}
}

func g2FromAffine(x, y fe2) G2 {
	var one fe2
	one.setOne()
	return G2{x: x, y: y, z: one}
}

// G1Generator returns the standard G1 base point.
func G1Generator() G1 {
	return g1FromAffine(
		mustFe("17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"),
		mustFe("08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"),
	)
}

// G2Generator returns the standard G2 base point.
func G2Generator() G2 {
	return g2FromAffine(
		fe2{
			c0: mustFe("024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"),
			c1: mustFe("13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e"),
		},
		fe2{
			c0: mustFe("0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801"),
			c1: mustFe("0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"),
		},
	)
}

// Order returns a copy of the group order r.
func Order() *big.Int { return new(big.Int).Set(rOrder) }

// --- G1 arithmetic ---

// IsInfinity reports whether the point is the identity.
func (p G1) IsInfinity() bool { return p.z.isZero() }

// affine returns the affine coordinates; inf reports the identity.
func (p G1) affine() (ax, ay fe, inf bool) {
	if p.IsInfinity() {
		return fe{}, fe{}, true
	}
	var zi, zi2, zi3 fe
	feInv(&zi, &p.z)
	feSquare(&zi2, &zi)
	feMul(&zi3, &zi2, &zi)
	feMul(&ax, &p.x, &zi2)
	feMul(&ay, &p.y, &zi3)
	return ax, ay, false
}

// OnCurve reports whether the point satisfies y² = x³ + 4.
func (p G1) OnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	ax, ay, _ := p.affine()
	var lhs, rhs fe
	feSquare(&lhs, &ay)
	feSquare(&rhs, &ax)
	feMul(&rhs, &rhs, &ax)
	feAdd(&rhs, &rhs, &feB)
	return lhs.equal(&rhs)
}

// Equal reports point equality (cross-multiplied, no inversion).
func (p G1) Equal(q G1) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() == q.IsInfinity()
	}
	var z1z1, z2z2, a, b fe
	feSquare(&z1z1, &p.z)
	feSquare(&z2z2, &q.z)
	feMul(&a, &p.x, &z2z2)
	feMul(&b, &q.x, &z1z1)
	if !a.equal(&b) {
		return false
	}
	feMul(&z2z2, &z2z2, &q.z)
	feMul(&z1z1, &z1z1, &p.z)
	feMul(&a, &p.y, &z2z2)
	feMul(&b, &q.y, &z1z1)
	return a.equal(&b)
}

// Neg returns −p.
func (p G1) Neg() G1 {
	if p.IsInfinity() {
		return p
	}
	out := p
	feNeg(&out.y, &p.y)
	return out
}

// double returns 2p ("dbl-2009-l" for a = 0).
func (p G1) double() G1 {
	if p.IsInfinity() || p.y.isZero() {
		return g1Infinity()
	}
	var a, b, c, d, e, f fe
	feSquare(&a, &p.x) // A = X²
	feSquare(&b, &p.y) // B = Y²
	feSquare(&c, &b)   // C = B²
	feAdd(&d, &p.x, &b)
	feSquare(&d, &d)
	feSub(&d, &d, &a)
	feSub(&d, &d, &c)
	feDouble(&d, &d) // D = 2((X+B)²−A−C)
	feDouble(&e, &a)
	feAdd(&e, &e, &a) // E = 3A
	feSquare(&f, &e)  // F = E²
	var out G1
	feSub(&out.x, &f, &d)
	feSub(&out.x, &out.x, &d) // X3 = F − 2D
	feSub(&out.y, &d, &out.x)
	feMul(&out.y, &out.y, &e)
	feDouble(&c, &c)
	feDouble(&c, &c)
	feDouble(&c, &c)          // 8C
	feSub(&out.y, &out.y, &c) // Y3 = E(D−X3) − 8C
	feMul(&out.z, &p.y, &p.z)
	feDouble(&out.z, &out.z) // Z3 = 2YZ
	return out
}

// Add returns p + q (general Jacobian addition).
func (p G1) Add(q G1) G1 {
	if p.IsInfinity() {
		return q
	}
	if q.IsInfinity() {
		return p
	}
	var z1z1, z2z2, u1, u2, s1, s2 fe
	feSquare(&z1z1, &p.z)
	feSquare(&z2z2, &q.z)
	feMul(&u1, &p.x, &z2z2)
	feMul(&u2, &q.x, &z1z1)
	feMul(&s1, &z2z2, &q.z)
	feMul(&s1, &s1, &p.y)
	feMul(&s2, &z1z1, &p.z)
	feMul(&s2, &s2, &q.y)
	if u1.equal(&u2) {
		if s1.equal(&s2) {
			return p.double()
		}
		return g1Infinity()
	}
	var h, i, j, r, v fe
	feSub(&h, &u2, &u1)
	feDouble(&i, &h)
	feSquare(&i, &i) // I = (2H)²
	feMul(&j, &h, &i)
	feSub(&r, &s2, &s1)
	feDouble(&r, &r)
	feMul(&v, &u1, &i)
	var out G1
	feSquare(&out.x, &r)
	feSub(&out.x, &out.x, &j)
	feSub(&out.x, &out.x, &v)
	feSub(&out.x, &out.x, &v) // X3 = r² − J − 2V
	feSub(&out.y, &v, &out.x)
	feMul(&out.y, &out.y, &r)
	feMul(&s1, &s1, &j)
	feDouble(&s1, &s1)
	feSub(&out.y, &out.y, &s1) // Y3 = r(V−X3) − 2S1·J
	feAdd(&out.z, &p.z, &q.z)
	feSquare(&out.z, &out.z)
	feSub(&out.z, &out.z, &z1z1)
	feSub(&out.z, &out.z, &z2z2)
	feMul(&out.z, &out.z, &h) // Z3 = ((Z1+Z2)²−Z1Z1−Z2Z2)·H
	return out
}

// Mul returns k·p for k ≥ 0 (k is reduced mod r).
func (p G1) Mul(k *big.Int) G1 {
	return p.mulRaw(new(big.Int).Mod(k, rOrder))
}

// mulRaw multiplies by an arbitrary non-negative integer without reducing
// mod r (cofactor clearing uses factors outside r's range).
func (p G1) mulRaw(k *big.Int) G1 {
	out := g1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.double()
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// InSubgroup reports whether p lies in the order-r subgroup.
func (p G1) InSubgroup() bool {
	return p.OnCurve() && p.mulRaw(rOrder).IsInfinity()
}

// --- G2 arithmetic ---

// IsInfinity reports whether the point is the identity.
func (p G2) IsInfinity() bool { return p.z.isZero() }

func (p G2) affine() (ax, ay fe2, inf bool) {
	if p.IsInfinity() {
		return fe2{}, fe2{}, true
	}
	var zi, zi2, zi3 fe2
	zi.inv(&p.z)
	zi2.square(&zi)
	zi3.mul(&zi2, &zi)
	ax.mul(&p.x, &zi2)
	ay.mul(&p.y, &zi3)
	return ax, ay, false
}

// OnCurve reports whether the point satisfies y² = x³ + 4(u+1).
func (p G2) OnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	ax, ay, _ := p.affine()
	var lhs, rhs fe2
	lhs.square(&ay)
	rhs.square(&ax)
	rhs.mul(&rhs, &ax)
	rhs.add(&rhs, &fe2B)
	return lhs.equal(&rhs)
}

// Equal reports point equality.
func (p G2) Equal(q G2) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() == q.IsInfinity()
	}
	var z1z1, z2z2, a, b fe2
	z1z1.square(&p.z)
	z2z2.square(&q.z)
	a.mul(&p.x, &z2z2)
	b.mul(&q.x, &z1z1)
	if !a.equal(&b) {
		return false
	}
	z2z2.mul(&z2z2, &q.z)
	z1z1.mul(&z1z1, &p.z)
	a.mul(&p.y, &z2z2)
	b.mul(&q.y, &z1z1)
	return a.equal(&b)
}

// Neg returns −p.
func (p G2) Neg() G2 {
	if p.IsInfinity() {
		return p
	}
	out := p
	out.y.neg(&p.y)
	return out
}

func (p G2) double() G2 {
	if p.IsInfinity() || p.y.isZero() {
		return g2Infinity()
	}
	var a, b, c, d, e, f fe2
	a.square(&p.x)
	b.square(&p.y)
	c.square(&b)
	d.add(&p.x, &b)
	d.square(&d)
	d.sub(&d, &a)
	d.sub(&d, &c)
	d.double(&d)
	e.double(&a)
	e.add(&e, &a)
	f.square(&e)
	var out G2
	out.x.sub(&f, &d)
	out.x.sub(&out.x, &d)
	out.y.sub(&d, &out.x)
	out.y.mul(&out.y, &e)
	c.double(&c)
	c.double(&c)
	c.double(&c)
	out.y.sub(&out.y, &c)
	out.z.mul(&p.y, &p.z)
	out.z.double(&out.z)
	return out
}

// Add returns p + q.
func (p G2) Add(q G2) G2 {
	if p.IsInfinity() {
		return q
	}
	if q.IsInfinity() {
		return p
	}
	var z1z1, z2z2, u1, u2, s1, s2 fe2
	z1z1.square(&p.z)
	z2z2.square(&q.z)
	u1.mul(&p.x, &z2z2)
	u2.mul(&q.x, &z1z1)
	s1.mul(&z2z2, &q.z)
	s1.mul(&s1, &p.y)
	s2.mul(&z1z1, &p.z)
	s2.mul(&s2, &q.y)
	if u1.equal(&u2) {
		if s1.equal(&s2) {
			return p.double()
		}
		return g2Infinity()
	}
	var h, i, j, r, v fe2
	h.sub(&u2, &u1)
	i.double(&h)
	i.square(&i)
	j.mul(&h, &i)
	r.sub(&s2, &s1)
	r.double(&r)
	v.mul(&u1, &i)
	var out G2
	out.x.square(&r)
	out.x.sub(&out.x, &j)
	out.x.sub(&out.x, &v)
	out.x.sub(&out.x, &v)
	out.y.sub(&v, &out.x)
	out.y.mul(&out.y, &r)
	s1.mul(&s1, &j)
	s1.double(&s1)
	out.y.sub(&out.y, &s1)
	out.z.add(&p.z, &q.z)
	out.z.square(&out.z)
	out.z.sub(&out.z, &z1z1)
	out.z.sub(&out.z, &z2z2)
	out.z.mul(&out.z, &h)
	return out
}

// Mul returns k·p for k reduced mod r.
func (p G2) Mul(k *big.Int) G2 {
	return p.mulRaw(new(big.Int).Mod(k, rOrder))
}

func (p G2) mulRaw(k *big.Int) G2 {
	out := g2Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.double()
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// InSubgroup reports whether p lies in the order-r subgroup of the twist.
func (p G2) InSubgroup() bool {
	return p.OnCurve() && p.mulRaw(rOrder).IsInfinity()
}

// --- hashing to G1 (legacy construction) ---

// hashToG1Legacy maps a message (with domain-separation tag) onto the
// order-r subgroup of G1 using try-and-increment plus cofactor clearing —
// the pre-RFC construction this repo shipped with. The construction (and
// hence every hashed point and signature byte) is identical to the
// original math/big implementation, pinned by seed_compat_test.go; logs
// signed by existing deployments verify only under this hash, so it stays
// reachable through HashToG1(HashLegacy, …). Not constant time; new
// deployments use the RFC 9380 pipeline in hash2curve.go.
func hashToG1Legacy(domain string, msg []byte) G1 {
	for ctr := uint32(0); ; ctr++ {
		h := sha256.New()
		h.Write([]byte("BLS12381-H2G1|"))
		h.Write([]byte(domain))
		h.Write([]byte{0})
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(msg)
		d1 := h.Sum(nil)
		h.Reset()
		h.Write([]byte("ext|"))
		h.Write(d1)
		d2 := h.Sum(nil)
		// 64 bytes → x mod p with negligible bias.
		var x fe
		feReduceWide(&x, append(d1, d2...))
		var rhs, y fe
		feSquare(&rhs, &x)
		feMul(&rhs, &rhs, &x)
		feAdd(&rhs, &rhs, &feB)
		if !feSqrt(&y, &rhs) {
			continue // not a quadratic residue; try next counter
		}
		if d1[0]&1 == 1 {
			feNeg(&y, &y)
		}
		p := g1FromAffine(x, y).mulRaw(g1CofactorH)
		if p.IsInfinity() {
			continue
		}
		return p
	}
}

// --- encodings ---

const fpSize = 48

// G1Size is the encoded size of a G1 point.
const G1Size = 1 + 2*fpSize

// G2Size is the encoded size of a G2 point.
const G2Size = 1 + 4*fpSize

// Bytes encodes the point (0x00 = infinity, 0x04 ‖ x ‖ y otherwise).
func (p G1) Bytes() []byte {
	out := make([]byte, G1Size)
	ax, ay, inf := p.affine()
	if inf {
		return out
	}
	out[0] = 0x04
	feToBytes(out[1:1+fpSize], &ax)
	feToBytes(out[1+fpSize:], &ay)
	return out
}

// G1FromBytes decodes a point, enforcing curve and subgroup membership.
func G1FromBytes(b []byte) (G1, error) {
	if len(b) != G1Size {
		return G1{}, fmt.Errorf("bls: G1 encoding must be %d bytes, got %d", G1Size, len(b))
	}
	if b[0] == 0 {
		return g1Infinity(), nil
	}
	if b[0] != 0x04 {
		return G1{}, errors.New("bls: bad G1 tag byte")
	}
	if !feValidBytes(b[1:1+fpSize]) || !feValidBytes(b[1+fpSize:]) {
		return G1{}, errors.New("bls: G1 coordinate out of range")
	}
	var x, y fe
	feFromBytes(&x, b[1:1+fpSize])
	feFromBytes(&y, b[1+fpSize:])
	p := g1FromAffine(x, y)
	if !p.InSubgroup() {
		return G1{}, errors.New("bls: G1 point not in subgroup")
	}
	return p, nil
}

// Bytes encodes the point (0x00 = infinity, 0x04 ‖ x0 ‖ x1 ‖ y0 ‖ y1).
func (p G2) Bytes() []byte {
	out := make([]byte, G2Size)
	ax, ay, inf := p.affine()
	if inf {
		return out
	}
	out[0] = 0x04
	feToBytes(out[1:1+fpSize], &ax.c0)
	feToBytes(out[1+fpSize:1+2*fpSize], &ax.c1)
	feToBytes(out[1+2*fpSize:1+3*fpSize], &ay.c0)
	feToBytes(out[1+3*fpSize:], &ay.c1)
	return out
}

// G2FromBytes decodes a point, enforcing curve and subgroup membership.
func G2FromBytes(b []byte) (G2, error) {
	if len(b) != G2Size {
		return G2{}, fmt.Errorf("bls: G2 encoding must be %d bytes, got %d", G2Size, len(b))
	}
	if b[0] == 0 {
		return g2Infinity(), nil
	}
	if b[0] != 0x04 {
		return G2{}, errors.New("bls: bad G2 tag byte")
	}
	var coords [4]fe
	for i := range coords {
		raw := b[1+i*fpSize : 1+(i+1)*fpSize]
		if !feValidBytes(raw) {
			return G2{}, errors.New("bls: G2 coordinate out of range")
		}
		feFromBytes(&coords[i], raw)
	}
	p := g2FromAffine(fe2{c0: coords[0], c1: coords[1]}, fe2{c0: coords[2], c1: coords[3]})
	if !p.InSubgroup() {
		return G2{}, errors.New("bls: G2 point not in subgroup")
	}
	return p, nil
}
