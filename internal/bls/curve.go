package bls

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// G1 is a point on E(Fp): y² = x³ + 4, in affine coordinates. The zero value
// is the point at infinity.
type G1 struct {
	x, y *big.Int
	inf  bool
}

// G2 is a point on the twist E'(Fp2): y² = x³ + 4(u+1). The zero value is
// the point at infinity.
type G2 struct {
	x, y fp2
	inf  bool
}

// g1Infinity and g2Infinity constructors.
func g1Infinity() G1 { return G1{inf: true} }
func g2Infinity() G2 { return G2{inf: true} }

// G1Generator returns the standard G1 base point.
func G1Generator() G1 {
	return G1{
		x: mustBig("17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"),
		y: mustBig("08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"),
	}
}

// G2Generator returns the standard G2 base point.
func G2Generator() G2 {
	return G2{
		x: fp2{
			mustBig("024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"),
			mustBig("13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e"),
		},
		y: fp2{
			mustBig("0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801"),
			mustBig("0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"),
		},
	}
}

// Order returns a copy of the group order r.
func Order() *big.Int { return new(big.Int).Set(rOrder) }

// --- G1 arithmetic ---

// IsInfinity reports whether the point is the identity.
func (p G1) IsInfinity() bool { return p.inf }

// OnCurve reports whether the point satisfies y² = x³ + 4.
func (p G1) OnCurve() bool {
	if p.inf {
		return true
	}
	lhs := fpMul(p.y, p.y)
	rhs := fpAdd(fpMul(fpMul(p.x, p.x), p.x), big4)
	return lhs.Cmp(rhs) == 0
}

// Equal reports point equality.
func (p G1) Equal(q G1) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

// Neg returns −p.
func (p G1) Neg() G1 {
	if p.inf {
		return p
	}
	return G1{x: new(big.Int).Set(p.x), y: fpNeg(p.y)}
}

// Add returns p + q.
func (p G1) Add(q G1) G1 {
	if p.inf {
		return q
	}
	if q.inf {
		return p
	}
	if p.x.Cmp(q.x) == 0 {
		if fpAdd(p.y, q.y).Sign() == 0 {
			return g1Infinity()
		}
		return p.double()
	}
	lambda := fpMul(fpSub(q.y, p.y), fpInv(fpSub(q.x, p.x)))
	return p.chord(q, lambda)
}

func (p G1) double() G1 {
	if p.inf || p.y.Sign() == 0 {
		return g1Infinity()
	}
	lambda := fpMul(fpMul(big3, fpMul(p.x, p.x)), fpInv(fpAdd(p.y, p.y)))
	return p.chord(p, lambda)
}

func (p G1) chord(q G1, lambda *big.Int) G1 {
	x3 := fpSub(fpSub(fpMul(lambda, lambda), p.x), q.x)
	y3 := fpSub(fpMul(lambda, fpSub(p.x, x3)), p.y)
	return G1{x: x3, y: y3}
}

// Mul returns k·p for k ≥ 0 (k is reduced mod r).
func (p G1) Mul(k *big.Int) G1 {
	k = new(big.Int).Mod(k, rOrder)
	out := g1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// mulRaw multiplies by an arbitrary non-negative integer without reducing
// mod r (needed for cofactor clearing, where the factor exceeds r's range
// semantics).
func (p G1) mulRaw(k *big.Int) G1 {
	out := g1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// InSubgroup reports whether p lies in the order-r subgroup.
func (p G1) InSubgroup() bool {
	return p.OnCurve() && p.mulRaw(rOrder).IsInfinity()
}

// --- G2 arithmetic ---

// IsInfinity reports whether the point is the identity.
func (p G2) IsInfinity() bool { return p.inf }

// OnCurve reports whether the point satisfies y² = x³ + 4(u+1).
func (p G2) OnCurve() bool {
	if p.inf {
		return true
	}
	lhs := p.y.square()
	b := fp2{big4, big4} // 4 + 4u = 4(1+u) = 4ξ
	rhs := p.x.square().mul(p.x).add(b)
	return lhs.equal(rhs)
}

// Equal reports point equality.
func (p G2) Equal(q G2) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.equal(q.x) && p.y.equal(q.y)
}

// Neg returns −p.
func (p G2) Neg() G2 {
	if p.inf {
		return p
	}
	return G2{x: p.x, y: p.y.neg()}
}

// Add returns p + q.
func (p G2) Add(q G2) G2 {
	if p.inf {
		return q
	}
	if q.inf {
		return p
	}
	if p.x.equal(q.x) {
		if p.y.add(q.y).isZero() {
			return g2Infinity()
		}
		return p.double()
	}
	lambda := q.y.sub(p.y).mul(q.x.sub(p.x).inv())
	return p.chord(q, lambda)
}

func (p G2) double() G2 {
	if p.inf || p.y.isZero() {
		return g2Infinity()
	}
	three := fp2{big.NewInt(3), new(big.Int)}
	lambda := three.mul(p.x.square()).mul(p.y.add(p.y).inv())
	return p.chord(p, lambda)
}

func (p G2) chord(q G2, lambda fp2) G2 {
	x3 := lambda.square().sub(p.x).sub(q.x)
	y3 := lambda.mul(p.x.sub(x3)).sub(p.y)
	return G2{x: x3, y: y3}
}

// Mul returns k·p for k reduced mod r.
func (p G2) Mul(k *big.Int) G2 {
	k = new(big.Int).Mod(k, rOrder)
	out := g2Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

func (p G2) mulRaw(k *big.Int) G2 {
	out := g2Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// InSubgroup reports whether p lies in the order-r subgroup of the twist.
func (p G2) InSubgroup() bool {
	return p.OnCurve() && p.mulRaw(rOrder).IsInfinity()
}

// --- hashing to G1 ---

// HashToG1 maps a message (with domain-separation tag) onto the order-r
// subgroup of G1 using try-and-increment plus cofactor clearing. Not
// constant time — acceptable for this simulator, as hash inputs (log
// digests) are public.
func HashToG1(domain string, msg []byte) G1 {
	for ctr := uint32(0); ; ctr++ {
		h := sha256.New()
		h.Write([]byte("BLS12381-H2G1|"))
		h.Write([]byte(domain))
		h.Write([]byte{0})
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(msg)
		d1 := h.Sum(nil)
		h.Reset()
		h.Write([]byte("ext|"))
		h.Write(d1)
		d2 := h.Sum(nil)
		// 64 bytes → x mod p with negligible bias.
		x := new(big.Int).SetBytes(append(d1, d2...))
		x.Mod(x, pMod)
		rhs := fpAdd(fpMul(fpMul(x, x), x), big4)
		y := new(big.Int).Exp(rhs, sqrtExp, pMod)
		if fpMul(y, y).Cmp(rhs) != 0 {
			continue // not a quadratic residue; try next counter
		}
		if d1[0]&1 == 1 {
			y = fpNeg(y)
		}
		p := G1{x: x, y: y}.mulRaw(g1CofactorH)
		if p.IsInfinity() {
			continue
		}
		return p
	}
}

// --- encodings ---

const fpSize = 48

// G1Size is the encoded size of a G1 point.
const G1Size = 1 + 2*fpSize

// G2Size is the encoded size of a G2 point.
const G2Size = 1 + 4*fpSize

// Bytes encodes the point (0x00 = infinity, 0x04 ‖ x ‖ y otherwise).
func (p G1) Bytes() []byte {
	out := make([]byte, G1Size)
	if p.inf {
		return out
	}
	out[0] = 0x04
	p.x.FillBytes(out[1 : 1+fpSize])
	p.y.FillBytes(out[1+fpSize:])
	return out
}

// G1FromBytes decodes a point, enforcing curve and subgroup membership.
func G1FromBytes(b []byte) (G1, error) {
	if len(b) != G1Size {
		return G1{}, fmt.Errorf("bls: G1 encoding must be %d bytes, got %d", G1Size, len(b))
	}
	if b[0] == 0 {
		return g1Infinity(), nil
	}
	if b[0] != 0x04 {
		return G1{}, errors.New("bls: bad G1 tag byte")
	}
	p := G1{x: new(big.Int).SetBytes(b[1 : 1+fpSize]), y: new(big.Int).SetBytes(b[1+fpSize:])}
	if p.x.Cmp(pMod) >= 0 || p.y.Cmp(pMod) >= 0 {
		return G1{}, errors.New("bls: G1 coordinate out of range")
	}
	if !p.InSubgroup() {
		return G1{}, errors.New("bls: G1 point not in subgroup")
	}
	return p, nil
}

// Bytes encodes the point (0x00 = infinity, 0x04 ‖ x0 ‖ x1 ‖ y0 ‖ y1).
func (p G2) Bytes() []byte {
	out := make([]byte, G2Size)
	if p.inf {
		return out
	}
	out[0] = 0x04
	p.x.c0.FillBytes(out[1 : 1+fpSize])
	p.x.c1.FillBytes(out[1+fpSize : 1+2*fpSize])
	p.y.c0.FillBytes(out[1+2*fpSize : 1+3*fpSize])
	p.y.c1.FillBytes(out[1+3*fpSize:])
	return out
}

// G2FromBytes decodes a point, enforcing curve and subgroup membership.
func G2FromBytes(b []byte) (G2, error) {
	if len(b) != G2Size {
		return G2{}, fmt.Errorf("bls: G2 encoding must be %d bytes, got %d", G2Size, len(b))
	}
	if b[0] == 0 {
		return g2Infinity(), nil
	}
	if b[0] != 0x04 {
		return G2{}, errors.New("bls: bad G2 tag byte")
	}
	coords := make([]*big.Int, 4)
	for i := range coords {
		coords[i] = new(big.Int).SetBytes(b[1+i*fpSize : 1+(i+1)*fpSize])
		if coords[i].Cmp(pMod) >= 0 {
			return G2{}, errors.New("bls: G2 coordinate out of range")
		}
	}
	p := G2{x: fp2{coords[0], coords[1]}, y: fp2{coords[2], coords[3]}}
	if !p.InSubgroup() {
		return G2{}, errors.New("bls: G2 point not in subgroup")
	}
	return p, nil
}
