package bls

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
)

// Curve arithmetic for BLS12-381 over the limb-based Montgomery field.
// Points are held in Jacobian projective coordinates (x/z², y/z³), so Add
// and double cost a handful of field multiplications instead of the
// per-step ModInverse the old affine chord-and-tangent code paid; the one
// inversion happens when a point is serialized or compared. z = 0 encodes
// the point at infinity, so the zero value of G1/G2 is the identity.

// Group-order and cofactor constants. math/big appears here only for the
// scalar (exponent) side of the API — never for base-field arithmetic.
var (
	// rOrder is the order of the pairing groups (the scalar field).
	rOrder = mustBig("73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001")
	// g1CofactorH is the G1 cofactor used to clear torsion when hashing.
	g1CofactorH = mustBig("396c8c005555e1568c00aaab0000aaab")
	// pMod is the base-field modulus as a big.Int, kept for tests and
	// documentation; production field math runs on limbs (fp_limb.go).
	pMod = mustBig("1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab")
)

func mustBig(h string) *big.Int {
	v, ok := new(big.Int).SetString(h, 16)
	if !ok {
		panic("bls: bad constant " + h)
	}
	return v
}

// mustFe parses a 96-hex-digit field element into Montgomery form.
func mustFe(h string) fe {
	b, err := hex.DecodeString(h)
	if err != nil || len(b) != fpSize {
		panic("bls: bad fe constant " + h)
	}
	if !feValidBytes(b) {
		panic("bls: fe constant out of range " + h)
	}
	var z fe
	feFromBytes(&z, b)
	return z
}

// Curve coefficients: b = 4 on G1, b' = 4(1+u) on the twist.
var (
	feB  = func() fe { var z fe; feFromUint64(&z, 4); return z }()
	fe2B = func() fe2 {
		var z fe2
		feFromUint64(&z.c0, 4)
		feFromUint64(&z.c1, 4)
		return z
	}()
)

// G1 is a point on E(Fp): y² = x³ + 4, in Jacobian coordinates. The zero
// value is the point at infinity.
type G1 struct {
	x, y, z fe
}

// G2 is a point on the twist E'(Fp2): y² = x³ + 4(u+1), in Jacobian
// coordinates. The zero value is the point at infinity.
type G2 struct {
	x, y, z fe2
}

func g1Infinity() G1 { return G1{} }
func g2Infinity() G2 { return G2{} }

// g1FromAffine builds a point from affine Montgomery coordinates.
func g1FromAffine(x, y fe) G1 {
	return G1{x: x, y: y, z: feR}
}

func g2FromAffine(x, y fe2) G2 {
	var one fe2
	one.setOne()
	return G2{x: x, y: y, z: one}
}

// G1Generator returns the standard G1 base point.
func G1Generator() G1 {
	return g1FromAffine(
		mustFe("17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"),
		mustFe("08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"),
	)
}

// G2Generator returns the standard G2 base point.
func G2Generator() G2 {
	return g2FromAffine(
		fe2{
			c0: mustFe("024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"),
			c1: mustFe("13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e"),
		},
		fe2{
			c0: mustFe("0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801"),
			c1: mustFe("0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"),
		},
	)
}

// Order returns a copy of the group order r.
func Order() *big.Int { return new(big.Int).Set(rOrder) }

// --- G1 arithmetic ---

// IsInfinity reports whether the point is the identity.
func (p G1) IsInfinity() bool { return p.z.isZero() }

// affine returns the affine coordinates; inf reports the identity. Points
// built by g1FromAffine (deserialization, batch normalization) keep Z = 1
// and skip the inversion.
func (p G1) affine() (ax, ay fe, inf bool) {
	if p.IsInfinity() {
		return fe{}, fe{}, true
	}
	if p.z.equal(&feR) {
		return p.x, p.y, false
	}
	var zi, zi2, zi3 fe
	feInv(&zi, &p.z)
	feSquare(&zi2, &zi)
	feMul(&zi3, &zi2, &zi)
	feMul(&ax, &p.x, &zi2)
	feMul(&ay, &p.y, &zi3)
	return ax, ay, false
}

// OnCurve reports whether the point satisfies y² = x³ + 4, checked
// projectively (Y² = X³ + 4Z⁶) — no inversion.
func (p G1) OnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	var lhs, rhs, z2, z6 fe
	feSquare(&lhs, &p.y)
	feSquare(&rhs, &p.x)
	feMul(&rhs, &rhs, &p.x)
	feSquare(&z2, &p.z)
	feSquare(&z6, &z2)
	feMul(&z6, &z6, &z2)
	feMul(&z6, &z6, &feB)
	feAdd(&rhs, &rhs, &z6)
	return lhs.equal(&rhs)
}

// Equal reports point equality (cross-multiplied, no inversion).
func (p G1) Equal(q G1) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() == q.IsInfinity()
	}
	var z1z1, z2z2, a, b fe
	feSquare(&z1z1, &p.z)
	feSquare(&z2z2, &q.z)
	feMul(&a, &p.x, &z2z2)
	feMul(&b, &q.x, &z1z1)
	if !a.equal(&b) {
		return false
	}
	feMul(&z2z2, &z2z2, &q.z)
	feMul(&z1z1, &z1z1, &p.z)
	feMul(&a, &p.y, &z2z2)
	feMul(&b, &q.y, &z1z1)
	return a.equal(&b)
}

// Neg returns −p.
func (p G1) Neg() G1 {
	if p.IsInfinity() {
		return p
	}
	out := p
	feNeg(&out.y, &p.y)
	return out
}

// double returns 2p ("dbl-2009-l" for a = 0).
func (p G1) double() G1 {
	if p.IsInfinity() || p.y.isZero() {
		return g1Infinity()
	}
	var a, b, c, d, e, f fe
	feSquare(&a, &p.x) // A = X²
	feSquare(&b, &p.y) // B = Y²
	feSquare(&c, &b)   // C = B²
	feAdd(&d, &p.x, &b)
	feSquare(&d, &d)
	feSub(&d, &d, &a)
	feSub(&d, &d, &c)
	feDouble(&d, &d) // D = 2((X+B)²−A−C)
	feDouble(&e, &a)
	feAdd(&e, &e, &a) // E = 3A
	feSquare(&f, &e)  // F = E²
	var out G1
	feSub(&out.x, &f, &d)
	feSub(&out.x, &out.x, &d) // X3 = F − 2D
	feSub(&out.y, &d, &out.x)
	feMul(&out.y, &out.y, &e)
	feDouble(&c, &c)
	feDouble(&c, &c)
	feDouble(&c, &c)          // 8C
	feSub(&out.y, &out.y, &c) // Y3 = E(D−X3) − 8C
	feMul(&out.z, &p.y, &p.z)
	feDouble(&out.z, &out.z) // Z3 = 2YZ
	return out
}

// Add returns p + q (general Jacobian addition).
func (p G1) Add(q G1) G1 {
	if p.IsInfinity() {
		return q
	}
	if q.IsInfinity() {
		return p
	}
	var z1z1, z2z2, u1, u2, s1, s2 fe
	feSquare(&z1z1, &p.z)
	feSquare(&z2z2, &q.z)
	feMul(&u1, &p.x, &z2z2)
	feMul(&u2, &q.x, &z1z1)
	feMul(&s1, &z2z2, &q.z)
	feMul(&s1, &s1, &p.y)
	feMul(&s2, &z1z1, &p.z)
	feMul(&s2, &s2, &q.y)
	if u1.equal(&u2) {
		if s1.equal(&s2) {
			return p.double()
		}
		return g1Infinity()
	}
	var h, i, j, r, v fe
	feSub(&h, &u2, &u1)
	feDouble(&i, &h)
	feSquare(&i, &i) // I = (2H)²
	feMul(&j, &h, &i)
	feSub(&r, &s2, &s1)
	feDouble(&r, &r)
	feMul(&v, &u1, &i)
	var out G1
	feSquare(&out.x, &r)
	feSub(&out.x, &out.x, &j)
	feSub(&out.x, &out.x, &v)
	feSub(&out.x, &out.x, &v) // X3 = r² − J − 2V
	feSub(&out.y, &v, &out.x)
	feMul(&out.y, &out.y, &r)
	feMul(&s1, &s1, &j)
	feDouble(&s1, &s1)
	feSub(&out.y, &out.y, &s1) // Y3 = r(V−X3) − 2S1·J
	feAdd(&out.z, &p.z, &q.z)
	feSquare(&out.z, &out.z)
	feSub(&out.z, &out.z, &z1z1)
	feSub(&out.z, &out.z, &z2z2)
	feMul(&out.z, &out.z, &h) // Z3 = ((Z1+Z2)²−Z1Z1−Z2Z2)·H
	return out
}

// addMixed returns p + (qx, qy) where q is a non-infinity affine point
// ("madd-2007-bl", 7M + 4S vs the general add's 11M + 5S) — the inner
// addition of every table, bucket, and fixed-base path.
func (p G1) addMixed(qx, qy *fe) G1 {
	if p.IsInfinity() {
		return g1FromAffine(*qx, *qy)
	}
	var z1z1, u2, s2, h, r fe
	feSquare(&z1z1, &p.z)
	feMul(&u2, qx, &z1z1)
	feMul(&s2, qy, &p.z)
	feMul(&s2, &s2, &z1z1)
	feSub(&h, &u2, &p.x)
	feSub(&r, &s2, &p.y)
	if h.isZero() {
		if r.isZero() {
			return p.double()
		}
		return g1Infinity()
	}
	var hh, i, j, v fe
	feSquare(&hh, &h)
	feDouble(&i, &hh)
	feDouble(&i, &i) // I = 4HH
	feMul(&j, &h, &i)
	feDouble(&r, &r) // r = 2(S2 − Y1)
	feMul(&v, &p.x, &i)
	var out G1
	feSquare(&out.x, &r)
	feSub(&out.x, &out.x, &j)
	feSub(&out.x, &out.x, &v)
	feSub(&out.x, &out.x, &v) // X3 = r² − J − 2V
	feSub(&out.y, &v, &out.x)
	feMul(&out.y, &out.y, &r)
	var t fe
	feMul(&t, &p.y, &j)
	feDouble(&t, &t)
	feSub(&out.y, &out.y, &t) // Y3 = r(V − X3) − 2Y1·J
	feAdd(&out.z, &p.z, &h)
	feSquare(&out.z, &out.z)
	feSub(&out.z, &out.z, &z1z1)
	feSub(&out.z, &out.z, &hh) // Z3 = (Z1 + H)² − Z1Z1 − HH
	return out
}

// Mul returns k·p for p in the order-r subgroup (k is reduced mod r),
// using the GLV endomorphism split (glv.go). Every exported constructor
// only produces subgroup points; code handling arbitrary curve points
// (cofactor clearing) uses mulRaw, which this package retains as the
// differential oracle. Variable-time in k: secret scalars use MulSecret.
//
//spin:vartime
func (p G1) Mul(k *big.Int) G1 {
	return p.mulGLV(new(big.Int).Mod(k, rOrder))
}

// mulRaw multiplies by an arbitrary non-negative integer without reducing
// mod r (cofactor clearing uses factors outside r's range).
func (p G1) mulRaw(k *big.Int) G1 {
	out := g1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.double()
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// InSubgroup reports whether p lies in the order-r subgroup, via the GLV
// endomorphism test [z²]φ(P) = −P (glv.go) — two 64-bit multiplications
// instead of the naive 255-bit r-multiplication retained in
// inSubgroupNaive.
func (p G1) InSubgroup() bool {
	return p.OnCurve() && p.inSubgroupEndo()
}

// inSubgroupNaive is the retained full-r-multiplication membership test,
// the differential oracle for inSubgroupEndo.
func (p G1) inSubgroupNaive() bool {
	return p.OnCurve() && p.mulRaw(rOrder).IsInfinity()
}

// --- G2 arithmetic ---

// IsInfinity reports whether the point is the identity.
func (p G2) IsInfinity() bool { return p.z.isZero() }

func (p G2) affine() (ax, ay fe2, inf bool) {
	if p.IsInfinity() {
		return fe2{}, fe2{}, true
	}
	if p.z.isOne() {
		return p.x, p.y, false
	}
	var zi, zi2, zi3 fe2
	zi.inv(&p.z)
	zi2.square(&zi)
	zi3.mul(&zi2, &zi)
	ax.mul(&p.x, &zi2)
	ay.mul(&p.y, &zi3)
	return ax, ay, false
}

// OnCurve reports whether the point satisfies y² = x³ + 4(u+1), checked
// projectively (Y² = X³ + 4(u+1)Z⁶) — no inversion.
func (p G2) OnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	var lhs, rhs, z2, z6 fe2
	lhs.square(&p.y)
	rhs.square(&p.x)
	rhs.mul(&rhs, &p.x)
	z2.square(&p.z)
	z6.square(&z2)
	z6.mul(&z6, &z2)
	z6.mul(&z6, &fe2B)
	rhs.add(&rhs, &z6)
	return lhs.equal(&rhs)
}

// Equal reports point equality.
func (p G2) Equal(q G2) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() == q.IsInfinity()
	}
	var z1z1, z2z2, a, b fe2
	z1z1.square(&p.z)
	z2z2.square(&q.z)
	a.mul(&p.x, &z2z2)
	b.mul(&q.x, &z1z1)
	if !a.equal(&b) {
		return false
	}
	z2z2.mul(&z2z2, &q.z)
	z1z1.mul(&z1z1, &p.z)
	a.mul(&p.y, &z2z2)
	b.mul(&q.y, &z1z1)
	return a.equal(&b)
}

// Neg returns −p.
func (p G2) Neg() G2 {
	if p.IsInfinity() {
		return p
	}
	out := p
	out.y.neg(&p.y)
	return out
}

func (p G2) double() G2 {
	if p.IsInfinity() || p.y.isZero() {
		return g2Infinity()
	}
	var a, b, c, d, e, f fe2
	a.square(&p.x)
	b.square(&p.y)
	c.square(&b)
	d.add(&p.x, &b)
	d.square(&d)
	d.sub(&d, &a)
	d.sub(&d, &c)
	d.double(&d)
	e.double(&a)
	e.add(&e, &a)
	f.square(&e)
	var out G2
	out.x.sub(&f, &d)
	out.x.sub(&out.x, &d)
	out.y.sub(&d, &out.x)
	out.y.mul(&out.y, &e)
	c.double(&c)
	c.double(&c)
	c.double(&c)
	out.y.sub(&out.y, &c)
	out.z.mul(&p.y, &p.z)
	out.z.double(&out.z)
	return out
}

// Add returns p + q.
func (p G2) Add(q G2) G2 {
	if p.IsInfinity() {
		return q
	}
	if q.IsInfinity() {
		return p
	}
	var z1z1, z2z2, u1, u2, s1, s2 fe2
	z1z1.square(&p.z)
	z2z2.square(&q.z)
	u1.mul(&p.x, &z2z2)
	u2.mul(&q.x, &z1z1)
	s1.mul(&z2z2, &q.z)
	s1.mul(&s1, &p.y)
	s2.mul(&z1z1, &p.z)
	s2.mul(&s2, &q.y)
	if u1.equal(&u2) {
		if s1.equal(&s2) {
			return p.double()
		}
		return g2Infinity()
	}
	var h, i, j, r, v fe2
	h.sub(&u2, &u1)
	i.double(&h)
	i.square(&i)
	j.mul(&h, &i)
	r.sub(&s2, &s1)
	r.double(&r)
	v.mul(&u1, &i)
	var out G2
	out.x.square(&r)
	out.x.sub(&out.x, &j)
	out.x.sub(&out.x, &v)
	out.x.sub(&out.x, &v)
	out.y.sub(&v, &out.x)
	out.y.mul(&out.y, &r)
	s1.mul(&s1, &j)
	s1.double(&s1)
	out.y.sub(&out.y, &s1)
	out.z.add(&p.z, &q.z)
	out.z.square(&out.z)
	out.z.sub(&out.z, &z1z1)
	out.z.sub(&out.z, &z2z2)
	out.z.mul(&out.z, &h)
	return out
}

// addMixed returns p + (qx, qy) where q is a non-infinity affine twist
// point (madd-2007-bl over Fp2).
func (p G2) addMixed(qx, qy *fe2) G2 {
	if p.IsInfinity() {
		return g2FromAffine(*qx, *qy)
	}
	var z1z1, u2, s2, h, r fe2
	z1z1.square(&p.z)
	u2.mul(qx, &z1z1)
	s2.mul(qy, &p.z)
	s2.mul(&s2, &z1z1)
	h.sub(&u2, &p.x)
	r.sub(&s2, &p.y)
	if h.isZero() {
		if r.isZero() {
			return p.double()
		}
		return g2Infinity()
	}
	var hh, i, j, v fe2
	hh.square(&h)
	i.double(&hh)
	i.double(&i)
	j.mul(&h, &i)
	r.double(&r)
	v.mul(&p.x, &i)
	var out G2
	out.x.square(&r)
	out.x.sub(&out.x, &j)
	out.x.sub(&out.x, &v)
	out.x.sub(&out.x, &v)
	out.y.sub(&v, &out.x)
	out.y.mul(&out.y, &r)
	var t fe2
	t.mul(&p.y, &j)
	t.double(&t)
	out.y.sub(&out.y, &t)
	out.z.add(&p.z, &h)
	out.z.square(&out.z)
	out.z.sub(&out.z, &z1z1)
	out.z.sub(&out.z, &hh)
	return out
}

// Mul returns k·p for p in the order-r subgroup of the twist (k reduced
// mod r), using the 4-way ψ decomposition (endomorphism.go). Code handling
// arbitrary twist points uses mulRaw, retained as the differential oracle.
// Variable-time in k.
//
//spin:vartime
func (p G2) Mul(k *big.Int) G2 {
	return p.mulPsi(new(big.Int).Mod(k, rOrder))
}

func (p G2) mulRaw(k *big.Int) G2 {
	out := g2Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.double()
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// InSubgroup reports whether p lies in the order-r subgroup of the twist,
// via the ψ endomorphism test ψ(P) = [z]P (endomorphism.go) — one 64-bit
// multiplication instead of the naive 255-bit r-multiplication retained in
// inSubgroupNaive.
func (p G2) InSubgroup() bool {
	return p.OnCurve() && p.inSubgroupPsi()
}

// inSubgroupNaive is the retained full-r-multiplication membership test,
// the differential oracle for inSubgroupPsi.
func (p G2) inSubgroupNaive() bool {
	return p.OnCurve() && p.mulRaw(rOrder).IsInfinity()
}

// --- hashing to G1 (legacy construction) ---

// hashToG1Legacy maps a message (with domain-separation tag) onto the
// order-r subgroup of G1 using try-and-increment plus cofactor clearing —
// the pre-RFC construction this repo shipped with. The construction (and
// hence every hashed point and signature byte) is identical to the
// original math/big implementation, pinned by seed_compat_test.go; logs
// signed by existing deployments verify only under this hash, so it stays
// reachable through HashToG1(HashLegacy, …). Not constant time; new
// deployments use the RFC 9380 pipeline in hash2curve.go.
func hashToG1Legacy(domain string, msg []byte) G1 {
	for ctr := uint32(0); ; ctr++ {
		h := sha256.New()
		h.Write([]byte("BLS12381-H2G1|"))
		h.Write([]byte(domain))
		h.Write([]byte{0})
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(msg)
		d1 := h.Sum(nil)
		h.Reset()
		h.Write([]byte("ext|"))
		h.Write(d1)
		d2 := h.Sum(nil)
		// 64 bytes → x mod p with negligible bias.
		var x fe
		feReduceWide(&x, append(d1, d2...))
		var rhs, y fe
		feSquare(&rhs, &x)
		feMul(&rhs, &rhs, &x)
		feAdd(&rhs, &rhs, &feB)
		if !feSqrt(&y, &rhs) {
			continue // not a quadratic residue; try next counter
		}
		if d1[0]&1 == 1 {
			feNeg(&y, &y)
		}
		p := g1FromAffine(x, y).mulRaw(g1CofactorH)
		if p.IsInfinity() {
			continue
		}
		return p
	}
}

// --- encodings ---

const fpSize = 48

// G1Size is the encoded size of a G1 point.
const G1Size = 1 + 2*fpSize

// G2Size is the encoded size of a G2 point.
const G2Size = 1 + 4*fpSize

// Bytes encodes the point (0x00 = infinity, 0x04 ‖ x ‖ y otherwise).
func (p G1) Bytes() []byte {
	out := make([]byte, G1Size)
	ax, ay, inf := p.affine()
	if inf {
		return out
	}
	out[0] = 0x04
	feToBytes(out[1:1+fpSize], &ax)
	feToBytes(out[1+fpSize:], &ay)
	return out
}

// G1FromBytes decodes a point, enforcing curve and subgroup membership.
func G1FromBytes(b []byte) (G1, error) {
	if len(b) != G1Size {
		return G1{}, fmt.Errorf("bls: G1 encoding must be %d bytes, got %d", G1Size, len(b))
	}
	if b[0] == 0 {
		return g1Infinity(), nil
	}
	if b[0] != 0x04 {
		return G1{}, errors.New("bls: bad G1 tag byte")
	}
	if !feValidBytes(b[1:1+fpSize]) || !feValidBytes(b[1+fpSize:]) {
		return G1{}, errors.New("bls: G1 coordinate out of range")
	}
	var x, y fe
	feFromBytes(&x, b[1:1+fpSize])
	feFromBytes(&y, b[1+fpSize:])
	p := g1FromAffine(x, y)
	if !p.InSubgroup() {
		return G1{}, errors.New("bls: G1 point not in subgroup")
	}
	return p, nil
}

// Bytes encodes the point (0x00 = infinity, 0x04 ‖ x0 ‖ x1 ‖ y0 ‖ y1).
func (p G2) Bytes() []byte {
	out := make([]byte, G2Size)
	ax, ay, inf := p.affine()
	if inf {
		return out
	}
	out[0] = 0x04
	feToBytes(out[1:1+fpSize], &ax.c0)
	feToBytes(out[1+fpSize:1+2*fpSize], &ax.c1)
	feToBytes(out[1+2*fpSize:1+3*fpSize], &ay.c0)
	feToBytes(out[1+3*fpSize:], &ay.c1)
	return out
}

// G2FromBytes decodes a point, enforcing curve and subgroup membership
// (the ψ endomorphism check).
func G2FromBytes(b []byte) (G2, error) {
	p, err := g2DecodeUncompressed(b)
	if err != nil {
		return G2{}, err
	}
	if !p.InSubgroup() {
		return G2{}, errors.New("bls: G2 point not in subgroup")
	}
	return p, nil
}

// g2DecodeUncompressed parses the coordinate encoding without any curve or
// subgroup validation — split out so benchmarks can price the membership
// test separately.
func g2DecodeUncompressed(b []byte) (G2, error) {
	if len(b) != G2Size {
		return G2{}, fmt.Errorf("bls: G2 encoding must be %d bytes, got %d", G2Size, len(b))
	}
	if b[0] == 0 {
		return g2Infinity(), nil
	}
	if b[0] != 0x04 {
		return G2{}, errors.New("bls: bad G2 tag byte")
	}
	var coords [4]fe
	for i := range coords {
		raw := b[1+i*fpSize : 1+(i+1)*fpSize]
		if !feValidBytes(raw) {
			return G2{}, errors.New("bls: G2 coordinate out of range")
		}
		feFromBytes(&coords[i], raw)
	}
	return g2FromAffine(fe2{c0: coords[0], c1: coords[1]}, fe2{c0: coords[2], c1: coords[3]}), nil
}
