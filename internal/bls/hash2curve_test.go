package bls

// hash2curve_test.go verifies the RFC 9380 pipeline three ways:
//
//  1. KATs against the RFC's own appendix vectors: expand_message_xmd
//     (Appendix K.1, SHA-256 expander) and the full
//     BLS12381G1_XMD:SHA-256_SSWU_RO_ suite (Appendix J.9.1).
//  2. Internal consistency: SSWU outputs satisfy E''s equation, the
//     isogeny image satisfies E's, and cofactor clearing lands in the
//     order-r subgroup — a wrong curve parameter or isogeny coefficient
//     fails these on random inputs independently of the KATs.
//  3. Differential checks: hash_to_field against a math/big oracle, and
//     the legacy mode pinned to its seed golden bytes.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/big"
	"strings"
	"testing"
)

// --- expand_message_xmd (RFC 9380 Appendix K.1) ---

const expanderDST = "QUUX-V01-CS02-with-expander-SHA256-128"

var xmdVectors = []struct {
	msg string
	n   int
	out string
}{
	{"", 0x20, "68a985b87eb6b46952128911f2a4412bbc302a9d759667f87f7a21d803f07235"},
	{"abc", 0x20, "d8ccab23b5985ccea865c6c97b6e5b8350e794e603b4b97902f53a8a0d605615"},
	{"abcdef0123456789", 0x20, "eff31487c770a893cfb36f912fbfcbff40d5661771ca4b2cb4eafe524333f5c1"},
	{"q128_" + strings.Repeat("q", 128), 0x20, "b23a1d2b4d97b2ef7785562a7e8bac7eed54ed6e97e29aa51bfe3f12ddad1ff9"},
	{"a512_" + strings.Repeat("a", 512), 0x20, "4623227bcc01293b8c130bf771da8c298dede7383243dc0993d2d94823958c4c"},
	{"", 0x80, "af84c27ccfd45d41914fdff5df25293e221afc53d8ad2ac06d5e3e29485dadbe" +
		"e0d121587713a3e0dd4d5e69e93eb7cd4f5df4cd103e188cf60cb02edc3edf18" +
		"eda8576c412b18ffb658e3dd6ec849469b979d444cf7b26911a08e63cf31f9dc" +
		"c541708d3491184472c2c29bb749d4286b004ceb5ee6b9a7fa5b646c993f0ced"},
}

func TestExpandMessageXMDVectors(t *testing.T) {
	for _, v := range xmdVectors {
		got := expandMessageXMD([]byte(v.msg), expanderDST, v.n)
		if hex.EncodeToString(got) != v.out {
			t.Errorf("expand_message_xmd(%q, %d):\n got %x\nwant %s", v.msg, v.n, got, v.out)
		}
	}
}

func TestExpandMessageXMDOversizeDST(t *testing.T) {
	// A >255-byte DST must be replaced by H("H2C-OVERSIZE-DST-" || DST)
	// and produce the same output as expanding under that reduced tag.
	long := strings.Repeat("x", 300)
	h := sha256.New()
	h.Write([]byte("H2C-OVERSIZE-DST-"))
	h.Write([]byte(long))
	reduced := h.Sum(nil)
	got := expandMessageXMD([]byte("msg"), long, 0x20)
	want := expandMessageXMD([]byte("msg"), string(reduced), 0x20)
	if !bytes.Equal(got, want) {
		t.Fatal("oversize DST not reduced per RFC 9380 §5.3.3")
	}
}

// --- hash_to_field differential against math/big ---

func TestHashToFieldMatchesBigInt(t *testing.T) {
	const dst = "safetypin-hash-to-field-test"
	for _, msg := range []string{"", "a", "the shared log-update tuple"} {
		var got [2]fe
		hashToFieldFp(got[:], []byte(msg), dst)
		uniform := expandMessageXMD([]byte(msg), dst, 2*l2cBytes)
		for i := 0; i < 2; i++ {
			want := new(big.Int).SetBytes(uniform[i*l2cBytes : (i+1)*l2cBytes])
			want.Mod(want, pMod)
			var buf [fpSize]byte
			feToBytes(buf[:], &got[i])
			if new(big.Int).SetBytes(buf[:]).Cmp(want) != 0 {
				t.Fatalf("hash_to_field(%q)[%d] disagrees with big.Int oracle", msg, i)
			}
		}
	}
}

// --- map_to_curve internal consistency ---

// onIsoCurve reports whether (x, y) satisfies E': y² = x³ + A'x + B'.
func onIsoCurve(x, y *fe) bool {
	var lhs, rhs, ax fe
	feSquare(&lhs, y)
	feSquare(&rhs, x)
	feMul(&rhs, &rhs, x)
	feMul(&ax, &sswuA, x)
	feAdd(&rhs, &rhs, &ax)
	feAdd(&rhs, &rhs, &sswuB)
	return lhs.equal(&rhs)
}

func TestSSWUAndIsogenyConsistency(t *testing.T) {
	// Random-ish field elements via the expander itself.
	var us [8]fe
	hashToFieldFp(us[:], []byte("sswu-consistency"), "safetypin-test")
	for i := range us {
		x, y := mapToCurveSSWU(&us[i])
		if !onIsoCurve(&x, &y) {
			t.Fatalf("SSWU output %d not on the 11-isogenous curve E'", i)
		}
		// sgn0(y) must match sgn0(u) per the RFC sign fix-up.
		if feSgn0(&us[i]) != feSgn0(&y) {
			t.Fatalf("SSWU output %d has wrong sign", i)
		}
		ix, iy := isoMapG1(&x, &y)
		p := g1FromAffine(ix, iy)
		if !p.OnCurve() {
			t.Fatalf("isogeny image %d not on E — isogeny coefficients corrupt", i)
		}
		cleared := clearCofactorG1(p)
		if cleared.IsInfinity() || !cleared.InSubgroup() {
			t.Fatalf("cofactor-cleared point %d not in the order-r subgroup", i)
		}
	}
}

func TestSSWUExceptionalCase(t *testing.T) {
	// u = 0 drives tv2 to 0, exercising the CMOV(Z, −tv2, …) branchless
	// exceptional path; the result must still be a valid E' point.
	var zero fe
	x, y := mapToCurveSSWU(&zero)
	if !onIsoCurve(&x, &y) {
		t.Fatal("SSWU(0) not on E'")
	}
	if !hashToG1RFC("dst", nil).InSubgroup() {
		t.Fatal("hash of empty message broken")
	}
}

// --- full-suite KATs (RFC 9380 Appendix J.9.1) ---

// rfcDST is the RFC's own test DST for BLS12381G1_XMD:SHA-256_SSWU_RO_.
const rfcDST = "QUUX-V01-CS02-with-BLS12381G1_XMD:SHA-256_SSWU_RO_"

var hashToCurveVectors = []struct {
	msg    string
	px, py string
}{
	{
		"",
		"052926add2207b76ca4fa57a8734416c8dc95e24501772c814278700eed6d1e4e8cf62d9c09db0fac349612b759e79a1",
		"08ba738453bfed09cb546dbb0783dbb3a5f1f566ed67bb6be0e8c67e2e81a4cc68ee29813bb7994998f3eae0c9c6a265",
	},
	{
		"abc",
		"03567bc5ef9c690c2ab2ecdf6a96ef1c139cc0b2f284dca0a9a7943388a49a3aee664ba5379a7655d3c68900be2f6903",
		"0b9c15f3fe6e5cf4211f346271d7b01c8f3b28be689c8429c85b67af215533311f0b8dfaaa154fa6b88176c229f2885d",
	},
	{
		"abcdef0123456789",
		"11e0b079dea29a68f0383ee94fed1b940995272407e3bb916bbf268c263ddd57a6a27200a784cbc248e84f357ce82d98",
		"03a87ae2caf14e8ee52e51fa2ed8eefe80f02457004ba4d486d6aa1f517c0889501dc7413753f9599b099ebcbbd2d709",
	},
	{
		"q128_" + strings.Repeat("q", 128),
		"15f68eaa693b95ccb85215dc65fa81038d69629f70aeee0d0f677cf22285e7bf58d7cb86eefe8f2e9bc3f8cb84fac488",
		"1807a1d50c29f430b8cafc4f8638dfeeadf51211e1602a5f184443076715f91bb90a48ba1e370edce6ae1062f5e6dd38",
	},
	{
		"a512_" + strings.Repeat("a", 512),
		"082aabae8b7dedb0e78aeb619ad3bfd9277a2f77ba7fad20ef6aabdc6c31d19ba5a6d12283553294c1825c4b3ca2dcfe",
		"05b84ae5a942248eea39e1d91030458c40153f3b654ab7872d779ad1e942856a20c438e8d99bc8abfbf74729ce1f7ac8",
	},
}

func TestHashToCurveRFCVectors(t *testing.T) {
	for _, v := range hashToCurveVectors {
		p := HashToG1(HashRFC9380, rfcDST, []byte(v.msg))
		ax, ay, inf := p.affine()
		if inf {
			t.Fatalf("msg %q hashed to infinity", v.msg)
		}
		var xb, yb [fpSize]byte
		feToBytes(xb[:], &ax)
		feToBytes(yb[:], &ay)
		if hex.EncodeToString(xb[:]) != v.px || hex.EncodeToString(yb[:]) != v.py {
			t.Errorf("hash_to_curve(%.16q…):\n got x %x\nwant x %s\n got y %x\nwant y %s",
				v.msg, xb, v.px, yb, v.py)
		}
		if !p.InSubgroup() {
			t.Errorf("msg %q: KAT point not in subgroup", v.msg)
		}
	}
}

// --- legacy golden and cross-mode behavior ---

// TestLegacyHashGolden pins the legacy try-and-increment output so the
// compat mode stays byte-stable independently of the seed-compat suite.
func TestLegacyHashGolden(t *testing.T) {
	got := hex.EncodeToString(HashToG1(HashLegacy, "kat-domain", []byte("kat-message")).Bytes())
	const want = "04192ba3356717a19206e7f81011d8bbbfe7a4162a1ff5737e34089af781b21521aad60b3e2338c211f51f867382c8ca5d057e0753859d6245c2f16654ee886695bb6a47b13bc72375526230592c4df7919a712be14fceb31e476313b9e4c2eae0"
	if got != want {
		t.Fatalf("legacy hash drifted:\n got %s\nwant %s", got, want)
	}
}

func TestSignVerifyModes(t *testing.T) {
	sk, pk, err := GenerateKey(newTestRNG())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("epoch digest")
	for _, mode := range []HashMode{HashRFC9380, HashLegacy} {
		sig := sk.SignWithMode(mode, msg)
		if ok, err := pk.VerifyWithMode(mode, msg, sig); err != nil || !ok {
			t.Fatalf("mode %v: valid signature rejected", mode)
		}
		other := HashLegacy
		if mode == HashLegacy {
			other = HashRFC9380
		}
		if ok, _ := pk.VerifyWithMode(other, msg, sig); ok {
			t.Fatalf("signature in mode %v verified under mode %v", mode, other)
		}
		pop := sk.ProvePossessionWithMode(mode, pk)
		if ok, err := VerifyPossessionWithMode(mode, pk, pop); err != nil || !ok {
			t.Fatalf("mode %v: valid possession proof rejected", mode)
		}
		if ok, _ := VerifyPossessionWithMode(other, pk, pop); ok {
			t.Fatalf("possession proof in mode %v verified under mode %v", mode, other)
		}
	}
}

func TestParseHashMode(t *testing.T) {
	cases := []struct {
		in   string
		want HashMode
		ok   bool
	}{
		{"rfc9380", HashRFC9380, true},
		{"legacy", HashLegacy, true},
		{"", HashLegacy, true}, // absent field in an old fleet config
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParseHashMode(c.in)
		if (err == nil) != c.ok || (err == nil && got != c.want) {
			t.Errorf("ParseHashMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if HashRFC9380.String() != "rfc9380" || HashLegacy.String() != "legacy" {
		t.Fatal("mode names drifted from the wire vocabulary")
	}
}

// --- constant-time helper sanity ---

func TestCTHelpers(t *testing.T) {
	var a, b fe
	feFromUint64(&a, 7)
	feFromUint64(&b, 9)
	if feEqMask(&a, &b) != 0 || feEqMask(&a, &a) != 1 {
		t.Fatal("feEqMask broken")
	}
	var z fe
	if feIsZeroMask(&z) != 1 || feIsZeroMask(&a) != 0 {
		t.Fatal("feIsZeroMask broken")
	}
	c := a
	feCMov(&c, &b, 0)
	if !c.equal(&a) {
		t.Fatal("feCMov moved on cond=0")
	}
	feCMov(&c, &b, 1)
	if !c.equal(&b) {
		t.Fatal("feCMov did not move on cond=1")
	}
	// feNegCT agrees with feNeg, including at zero.
	var n1, n2 fe
	feNeg(&n1, &a)
	feNegCT(&n2, &a)
	if !n1.equal(&n2) {
		t.Fatal("feNegCT disagrees with feNeg")
	}
	feNegCT(&n2, &z)
	if !n2.isZero() {
		t.Fatal("feNegCT(0) not canonical zero")
	}
	// feCNeg: cond=0 copies, cond=1 negates.
	feCNeg(&c, &a, 0)
	if !c.equal(&a) {
		t.Fatal("feCNeg negated on cond=0")
	}
	feCNeg(&c, &a, 1)
	if !c.equal(&n1) {
		t.Fatal("feCNeg did not negate on cond=1")
	}
	// sqrtRatio3mod4 against known squares: u = 4, v = 1 → y = ±2.
	var four, one, two fe
	feFromUint64(&four, 4)
	one = feR
	feFromUint64(&two, 2)
	y, isQR := sqrtRatio3mod4(&four, &one)
	if isQR != 1 {
		t.Fatal("4 not recognized as a square")
	}
	var ysq fe
	feSquare(&ysq, &y)
	if !ysq.equal(&four) {
		t.Fatal("sqrtRatio returned a non-root")
	}
}

// newTestRNG returns the deterministic stream used by the seed-compat
// tests, reused here so mode tests are reproducible.
func newTestRNG() *detRNG { return &detRNG{seed: []byte("hash2curve-mode-test")} }

func BenchmarkHashToG1RFC9380(b *testing.B) {
	msg := []byte("the shared log-update tuple")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashToG1(HashRFC9380, sigDomainRFC, msg)
	}
}

func BenchmarkHashToG1Legacy(b *testing.B) {
	msg := []byte("the shared log-update tuple")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashToG1(HashLegacy, sigDomainLegacy, msg)
	}
}
