package bls

import "errors"

// The pairing is the optimal-ate pairing e: G1 × G2 → GT ⊂ Fp12*. For
// clarity (and to avoid the notoriously error-prone sparse-line algebra of
// twisted coordinates) we untwist G2 points into E(Fp12) once per pairing
// and run a textbook Miller loop with generic Fp12 arithmetic. The final
// exponentiation splits into the Frobenius-free easy part
// f^{(p⁶−1)(p²+1)} — using conj(f) = f^{p⁶} and a plain exponentiation by
// p² — and the hard part f^{(p⁴−p²+1)/r} as one big exponentiation.

// g1Fp12 is a G1 or untwisted G2 point with coordinates in Fp12.
type g1Fp12 struct {
	x, y fp12
	inf  bool
}

// untwist maps a twist point into E(Fp12): (x, y) → (x/w², y/w³), which
// satisfies y² = x³ + 4 because w⁶ = ξ.
func untwist(q G2) g1Fp12 {
	if q.inf {
		return g1Fp12{inf: true}
	}
	w := fp12W()
	wInv := w.inv()
	w2Inv := wInv.mul(wInv)
	w3Inv := w2Inv.mul(wInv)
	return g1Fp12{
		x: fp12FromFp2(q.x).mul(w2Inv),
		y: fp12FromFp2(q.y).mul(w3Inv),
	}
}

// embedG1 lifts a G1 point into Fp12 coordinates.
func embedG1(p G1) g1Fp12 {
	if p.inf {
		return g1Fp12{inf: true}
	}
	return g1Fp12{x: fp12Scalar(p.x), y: fp12Scalar(p.y)}
}

// lineDouble evaluates the tangent line at t through p and returns (2t,
// line value).
func lineDouble(t, p g1Fp12) (g1Fp12, fp12) {
	three := fp12Scalar(fpFromInt(3))
	two := fp12Scalar(fpFromInt(2))
	lambda := three.mul(t.x.square()).mul(two.mul(t.y).inv())
	x3 := lambda.square().sub2(t.x).sub2(t.x)
	y3 := lambda.mul(t.x.sub2(x3)).sub2(t.y)
	// line: l(P) = (yP − yT) − λ(xP − xT)
	l := p.y.sub2(t.y).sub2(lambda.mul(p.x.sub2(t.x)))
	return g1Fp12{x: x3, y: y3}, l
}

// lineAdd evaluates the chord through t and q at p and returns (t+q, line
// value).
func lineAdd(t, q, p g1Fp12) (g1Fp12, fp12, error) {
	if t.x.equal(q.x) {
		if t.y.equal(q.y) {
			r, l := lineDouble(t, p)
			return r, l, nil
		}
		// vertical line: l(P) = xP − xT
		return g1Fp12{inf: true}, p.x.sub2(t.x), nil
	}
	lambda := q.y.sub2(t.y).mul(q.x.sub2(t.x).inv())
	x3 := lambda.square().sub2(t.x).sub2(q.x)
	y3 := lambda.mul(t.x.sub2(x3)).sub2(t.y)
	l := p.y.sub2(t.y).sub2(lambda.mul(p.x.sub2(t.x)))
	return g1Fp12{x: x3, y: y3}, l, nil
}

// sub2 is fp12 subtraction (named to avoid clashing with field helpers).
func (a fp12) sub2(b fp12) fp12 { return fp12{a.a0.sub(b.a0), a.a1.sub(b.a1)} }

// miller runs the Miller loop over |x| and conjugates at the end (x < 0).
func miller(p G1, q G2) (fp12, error) {
	if p.IsInfinity() || q.IsInfinity() {
		return fp12One(), nil
	}
	pe := embedG1(p)
	qe := untwist(q)
	f := fp12One()
	t := qe
	for i := blsXAbs.BitLen() - 2; i >= 0; i-- {
		var l fp12
		t, l = lineDouble(t, pe)
		f = f.square().mul(l)
		if blsXAbs.Bit(i) == 1 {
			var err error
			t, l, err = lineAdd(t, qe, pe)
			if err != nil {
				return fp12{}, err
			}
			f = f.mul(l)
		}
	}
	// x is negative: replace f by its conjugate (valid up to final
	// exponentiation, since conj(f) = f^{p⁶} and (p⁶+1)(p¹²−1)/r is a
	// multiple of p¹²−1).
	return f.conj(), nil
}

// finalExp maps a Miller-loop output into the order-r subgroup GT.
func finalExp(f fp12) fp12 {
	// easy part: f^{(p⁶−1)(p²+1)}
	f1 := f.conj().mul(f.inv())    // f^{p⁶−1}
	f2 := f1.exp(pSquared).mul(f1) // f1^{p²+1}
	// hard part: ^(p⁴−p²+1)/r
	return f2.exp(hardExp)
}

// Pair computes the pairing e(p, q). Inputs must be valid curve points;
// infinity maps to the identity of GT.
func Pair(p G1, q G2) (fp12, error) {
	f, err := miller(p, q)
	if err != nil {
		return fp12{}, err
	}
	return finalExp(f), nil
}

// GT is an element of the pairing target group, comparable with Equal.
type GT struct{ v fp12 }

// PairGT is Pair returning an exported handle.
func PairGT(p G1, q G2) (GT, error) {
	v, err := Pair(p, q)
	return GT{v}, err
}

// Equal reports GT equality.
func (a GT) Equal(b GT) bool { return a.v.equal(b.v) }

// IsOne reports whether a is the identity.
func (a GT) IsOne() bool { return a.v.isOne() }

// PairingCheck reports whether Π e(p_i, q_i) = 1. BLS verification calls it
// with ((−σ, G2), (H(m), pk)).
func PairingCheck(ps []G1, qs []G2) (bool, error) {
	if len(ps) != len(qs) {
		return false, errors.New("bls: mismatched pairing vector lengths")
	}
	acc := fp12One()
	for i := range ps {
		f, err := miller(ps[i], qs[i])
		if err != nil {
			return false, err
		}
		acc = acc.mul(f)
	}
	return finalExp(acc).isOne(), nil
}
