package bls

import "errors"

// The pairing is the optimal-ate pairing e: G1 × G2 → GT ⊂ Fp12*. The
// Miller loop runs directly on the twist in homogeneous projective
// coordinates (Costello–Lange–Naehrig, eprint 2010/526): each step emits a
// line as three Fp2 coefficients and folds it into the accumulator with one
// sparse mulBy014 — no untwisting into generic Fp12 points. The final
// exponentiation does the easy part with a conjugate, one inversion and a
// Frobenius, and the hard part with the Hayashida–Hayasaka–Teruya
// decomposition (eprint 2020/875) over cyclotomic squarings — it computes
// f^{3·(p⁴−p²+1)/r}, a fixed third power of the "textbook" reduced pairing,
// which is an equally valid pairing (gcd(3, r) = 1) and the standard trick
// for a division-free hard part.
//
// millerLoop is shared across pairs: PairingCheck runs one squaring chain
// and one final exponentiation regardless of how many pairs it multiplies,
// so BLS aggregate verification costs 2 Miller loops + 1 final exp.

// g2Proj is a twist point in homogeneous projective coordinates (x = X/Z,
// y = Y/Z), the representation the Miller-loop formulas want.
type g2Proj struct{ x, y, z fe2 }

// twoInv is 1/2 in Montgomery form.
var twoInv = func() fe {
	initFieldConstants() // feInv needs the p−2 exponent table
	var two, inv fe
	feFromUint64(&two, 2)
	feInv(&inv, &two)
	return inv
}()

// mulBy3B sets z = 3b'·x = 12(1+u)·x.
func mulBy3B(z, x *fe2) {
	var t fe2
	t.mulByNonResidue(x) // (1+u)x
	t.double(&t)
	t.double(&t) // 4(1+u)x
	z.double(&t)
	z.add(z, &t) // 12(1+u)x
}

// doublingStep sets r = 2r and emits the tangent-line coefficients
// (constant, ·xP, ·yP); see the derivation in the package comment above:
// ℓ = (3b'Z² − Y²) + 3X²·xP·w² − 2YZ·yP·w³ up to an Fp2 scaling the easy
// final exponentiation kills.
func doublingStep(coeff *[3]fe2, r *g2Proj) {
	var t0, t1, t2, t3, t4, t5, t6 fe2
	t0.mul(&r.x, &r.y)
	t0.mulByFe(&t0, &twoInv) // XY/2
	t1.square(&r.y)          // Y²
	t2.square(&r.z)          // Z²
	mulBy3B(&t3, &t2)        // 3b'Z²
	t4.double(&t3)
	t4.add(&t4, &t3) // 9b'Z²
	t5.add(&t1, &t4)
	t5.mulByFe(&t5, &twoInv) // (Y²+9b'Z²)/2
	t6.add(&r.y, &r.z)
	t6.square(&t6)
	t6.sub(&t6, &t1)
	t6.sub(&t6, &t2) // 2YZ

	coeff[0].sub(&t3, &t1) // 3b'Z² − Y²
	coeff[1].square(&r.x)
	var three fe2
	three.double(&coeff[1])
	coeff[1].add(&three, &coeff[1]) // 3X²
	coeff[2].neg(&t6)               // −2YZ

	// X' = XY/2·(Y² − 9b'Z²); Y' = ((Y²+9b'Z²)/2)² − 27b'²Z⁴; Z' = 2Y³Z.
	var x3, y3, z3 fe2
	x3.sub(&t1, &t4)
	x3.mul(&x3, &t0)
	y3.square(&t5)
	t3.square(&t3)
	t4.double(&t3)
	t4.add(&t4, &t3) // 3(3b'Z²)²
	y3.sub(&y3, &t4)
	z3.mul(&t1, &t6)
	r.x, r.y, r.z = x3, y3, z3
}

// additionStep sets r = r + q (q affine) and emits the chord-line
// coefficients: with θ = Y − qy·Z and λ = X − qx·Z,
// ℓ = (θ·qx − λ·qy) − θ·xP·w² + λ·yP·w³ up to scaling.
func additionStep(coeff *[3]fe2, r *g2Proj, qx, qy *fe2) {
	var theta, lambda fe2
	theta.mul(qy, &r.z)
	theta.sub(&r.y, &theta)
	lambda.mul(qx, &r.z)
	lambda.sub(&r.x, &lambda)

	var a, b, c, d, e, g fe2
	a.square(&theta)   // θ²
	b.square(&lambda)  // λ²
	c.mul(&lambda, &b) // λ³
	d.mul(&r.z, &a)    // Zθ²
	e.mul(&r.x, &b)    // Xλ²
	g.add(&c, &d)
	g.sub(&g, &e)
	g.sub(&g, &e) // G = λ³ + Zθ² − 2Xλ²

	var x3, y3, z3 fe2
	x3.mul(&lambda, &g)
	y3.sub(&e, &g)
	y3.mul(&y3, &theta)
	var t fe2
	t.mul(&r.y, &c)
	y3.sub(&y3, &t) // Y' = θ(Xλ² − G) − Yλ³
	z3.mul(&r.z, &c)

	coeff[0].mul(&theta, qx)
	t.mul(&lambda, qy)
	coeff[0].sub(&coeff[0], &t) // θqx − λqy
	coeff[1].neg(&theta)
	coeff[2] = lambda
	r.x, r.y, r.z = x3, y3, z3
}

// ell folds a line evaluation at the affine G1 point (px, py) into f.
func ell(f *fe12, coeff *[3]fe2, px, py *fe) {
	var c1, c4 fe2
	c1.mulByFe(&coeff[1], px)
	c4.mulByFe(&coeff[2], py)
	f.mulBy014(&coeff[0], &c1, &c4)
}

// millerLoop computes Π_i f_{x,Q_i}(P_i) over the shared |x| squaring
// chain, seeding a fresh projective accumulator per pair from the affine
// twist points (so prepared inputs stay reusable across calls). Callers
// must pre-filter infinity points.
func millerLoop(pxs, pys []fe, qaffs [][2]fe2) fe12 {
	var f fe12
	f.setOne()
	n := len(qaffs)
	rs := make([]g2Proj, n)
	var one fe2
	one.setOne()
	for j := range qaffs {
		rs[j] = g2Proj{x: qaffs[j][0], y: qaffs[j][1], z: one}
	}
	var coeff [3]fe2
	for i := blsXBitLen - 2; i >= 0; i-- {
		f.square(&f)
		for j := 0; j < n; j++ {
			doublingStep(&coeff, &rs[j])
			ell(&f, &coeff, &pxs[j], &pys[j])
		}
		if blsX>>uint(i)&1 == 1 {
			for j := 0; j < n; j++ {
				additionStep(&coeff, &rs[j], &qaffs[j][0], &qaffs[j][1])
				ell(&f, &coeff, &pxs[j], &pys[j])
			}
		}
	}
	// x is negative: conjugate (valid up to final exponentiation).
	f.conj(&f)
	return f
}

// preparePairs converts pairs to affine Miller-loop inputs, dropping any
// pair with a point at infinity (its factor is 1).
func preparePairs(ps []G1, qs []G2) (pxs, pys []fe, qaffs [][2]fe2) {
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		px, py, _ := ps[i].affine()
		qx, qy, _ := qs[i].affine()
		pxs = append(pxs, px)
		pys = append(pys, py)
		qaffs = append(qaffs, [2]fe2{qx, qy})
	}
	return
}

// finalExp maps a Miller-loop output into the order-r subgroup GT:
// easy part f^{(p⁶−1)(p²+1)}, then the hard part f^{3(p⁴−p²+1)/r} via the
// Hayashida–Hayasaka–Teruya chain (x−1)²(x+p)(x²+p²−1) + 3 with
// cyclotomic squarings inside each x-exponentiation.
func finalExp(f fe12) fe12 {
	// easy part
	var t0, t1, m fe12
	t0.conj(&f) // f^{p⁶}
	t1.inv(&f)
	m.mul(&t0, &t1) // f^{p⁶−1}
	t0.frobeniusSquare(&m)
	m.mul(&m, &t0) // f^{(p⁶−1)(p²+1)} — now in the cyclotomic subgroup

	// hard part
	var a, b, c fe12
	a.cyclotomicSquare(&m) // m²
	b.expByX(&m)           // m^x
	c.conj(&m)             // m^{−1}
	b.mul(&b, &c)          // m^{x−1}
	c.expByX(&b)           // m^{x(x−1)}
	b.conj(&b)             // m^{−(x−1)}
	b.mul(&b, &c)          // m^{(x−1)²}
	c.expByX(&b)           // m^{x(x−1)²}
	b.frobenius(&b)        // m^{p(x−1)²}
	b.mul(&b, &c)          // m^{(x−1)²(x+p)}
	m.mul(&m, &a)          // m³
	a.expByX(&b)           // m^{(x−1)²(x+p)x}
	c.expByX(&a)           // m^{(x−1)²(x+p)x²}
	a.frobeniusSquare(&b)  // m^{(x−1)²(x+p)p²}
	b.conj(&b)             // m^{−(x−1)²(x+p)}
	b.mul(&b, &c)          // m^{(x−1)²(x+p)(x²−1)}
	b.mul(&b, &a)          // m^{(x−1)²(x+p)(x²+p²−1)}
	m.mul(&m, &b)          // m^{3 + (x−1)²(x+p)(x²+p²−1)} = f^{3·(p⁴−p²+1)/r}
	return m
}

// Pair computes the pairing e(p, q). Inputs must be valid curve points;
// infinity maps to the identity of GT.
func Pair(p G1, q G2) (fe12, error) {
	pxs, pys, qaffs := preparePairs([]G1{p}, []G2{q})
	if len(qaffs) == 0 {
		var one fe12
		one.setOne()
		return one, nil
	}
	return finalExp(millerLoop(pxs, pys, qaffs)), nil
}

// GT is an element of the pairing target group, comparable with Equal.
type GT struct{ v fe12 }

// PairGT is Pair returning an exported handle.
func PairGT(p G1, q G2) (GT, error) {
	v, err := Pair(p, q)
	return GT{v}, err
}

// Equal reports GT equality.
func (a GT) Equal(b GT) bool { return a.v.equal(&b.v) }

// IsOne reports whether a is the identity.
func (a GT) IsOne() bool { return a.v.isOne() }

// GTSize is the encoded size of a GT element.
const GTSize = 12 * fpSize

// Bytes encodes the element as the 12 Fp coefficients (a0.b0.c0 … a1.b2.c1,
// each 48 big-endian bytes) — the known-answer-test format.
func (a GT) Bytes() []byte {
	out := make([]byte, 0, GTSize)
	for _, f6 := range []*fe6{&a.v.a0, &a.v.a1} {
		for _, f2 := range []*fe2{&f6.b0, &f6.b1, &f6.b2} {
			for _, c := range []*fe{&f2.c0, &f2.c1} {
				var buf [fpSize]byte
				feToBytes(buf[:], c)
				out = append(out, buf[:]...)
			}
		}
	}
	return out
}

// PairingCheck reports whether Π e(p_i, q_i) = 1. All Miller loops share
// one squaring chain and exactly one final exponentiation runs regardless
// of len(ps) — BLS verification calls it with ((−σ, G2), (H(m), pk)).
func PairingCheck(ps []G1, qs []G2) (bool, error) {
	if len(ps) != len(qs) {
		return false, errors.New("bls: mismatched pairing vector lengths")
	}
	pxs, pys, qaffs := preparePairs(ps, qs)
	if len(qaffs) == 0 {
		return true, nil
	}
	out := finalExp(millerLoop(pxs, pys, qaffs))
	return out.isOne(), nil
}
