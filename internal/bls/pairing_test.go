package bls

import (
	"crypto/rand"
	"encoding/hex"
	"math/big"
	"testing"
)

// The production pairing computes f^{3·(p⁴−p²+1)/r}; the legacy oracle
// computes f^{(p⁴−p²+1)/r}. They relate by a cube.
func legacyCubed(p G1, q G2) fp12 {
	e := legacyPair(p, q)
	return e.mulL(e).mulL(e)
}

func TestPairingMatchesLegacyOracle(t *testing.T) {
	// Differential test against the completely independent math/big
	// untwist-based engine, on random scalar multiples of the generators.
	for i := 0; i < 2; i++ {
		a, _ := rand.Int(rand.Reader, rOrder)
		b, _ := rand.Int(rand.Reader, rOrder)
		P := G1Generator().Mul(a)
		Q := G2Generator().Mul(b)
		got, err := Pair(P, Q)
		if err != nil {
			t.Fatal(err)
		}
		if !fe12ToLegacy(&got).equalL(legacyCubed(P, Q)) {
			t.Fatal("pairing disagrees with legacy oracle (up to the fixed cube)")
		}
	}
}

func TestPairingKnownAnswer(t *testing.T) {
	// Pinned serialization of e(G1, G2): regenerating it must be
	// byte-identical across refactors. The value was cross-checked against
	// the legacy math/big engine (TestPairingMatchesLegacyOracle).
	e, err := PairGT(G1Generator(), G2Generator())
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(e.Bytes())
	if got != pairingKAT {
		t.Fatalf("e(G1, G2) drifted:\n got %s\nwant %s", got, pairingKAT)
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	e, err := Pair(G1Generator(), G2Generator())
	if err != nil {
		t.Fatal(err)
	}
	if e.isOne() {
		t.Fatal("e(G1, G2) = 1: degenerate pairing")
	}
	// GT has order r: e^r == 1.
	if !fe12ToLegacy(&e).expL(rOrder).isOneL() {
		t.Fatal("pairing output not of order dividing r")
	}
}

func TestBilinearity(t *testing.T) {
	// e(aP, bQ) == e(P, Q)^{ab}: the defining property. A wrong Miller
	// loop, line evaluation, or final exponentiation virtually cannot pass.
	a := big.NewInt(7)
	b := big.NewInt(11)
	P, Q := G1Generator(), G2Generator()
	lhs, err := Pair(P.Mul(a), Q.Mul(b))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Pair(P, Q)
	if err != nil {
		t.Fatal(err)
	}
	ab := new(big.Int).Mul(a, b)
	if !fe12ToLegacy(&lhs).equalL(fe12ToLegacy(&base).expL(ab)) {
		t.Fatal("bilinearity failed: e(aP,bQ) != e(P,Q)^{ab}")
	}
}

func TestBilinearityRandomScalars(t *testing.T) {
	a, _ := rand.Int(rand.Reader, rOrder)
	b, _ := rand.Int(rand.Reader, rOrder)
	P, Q := G1Generator(), G2Generator()
	lhs, err := Pair(P.Mul(a), Q.Mul(b))
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Pair(P.Mul(new(big.Int).Mul(a, b)), Q)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.equal(&rhs) {
		t.Fatal("e(aP, bQ) != e(abP, Q)")
	}
}

func TestPairingLinearLeft(t *testing.T) {
	// e(P1 + P2, Q) == e(P1, Q) · e(P2, Q): exactly the law aggregate
	// signature verification relies on.
	P1 := G1Generator().Mul(big.NewInt(3))
	P2 := G1Generator().Mul(big.NewInt(5))
	Q := G2Generator()
	lhs, err := Pair(P1.Add(P2), Q)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Pair(P1, Q)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Pair(P2, Q)
	if err != nil {
		t.Fatal(err)
	}
	var prod fe12
	prod.mul(&e1, &e2)
	if !lhs.equal(&prod) {
		t.Fatal("left linearity failed")
	}
}

func TestPairingInfinity(t *testing.T) {
	e, err := Pair(g1Infinity(), G2Generator())
	if err != nil {
		t.Fatal(err)
	}
	if !e.isOne() {
		t.Fatal("e(∞, Q) != 1")
	}
	e, err = Pair(G1Generator(), g2Infinity())
	if err != nil {
		t.Fatal(err)
	}
	if !e.isOne() {
		t.Fatal("e(P, ∞) != 1")
	}
}

func TestPairingCheck(t *testing.T) {
	// e(−P, Q)·e(P, Q) == 1
	P, Q := G1Generator(), G2Generator()
	ok, err := PairingCheck([]G1{P.Neg(), P}, []G2{Q, Q})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("trivial pairing check failed")
	}
	ok, err = PairingCheck([]G1{P, P}, []G2{Q, Q})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("e(P,Q)² = 1 should not hold")
	}
	if _, err := PairingCheck([]G1{P}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestPairingCheckMatchesLegacy(t *testing.T) {
	// Randomized differential test of the multi-pairing against the seed
	// semantics: accept/reject decisions must be identical, including
	// vectors that should verify (σ = s·H, pk = s·G2) and ones that must
	// not (independent random scalars).
	for i := 0; i < 2; i++ {
		s, _ := rand.Int(rand.Reader, rOrder)
		H := HashToG1(HashRFC9380, "diff-test", []byte{byte(i)})
		sig := H.Mul(s)
		pk := G2Generator().Mul(s)
		ps := []G1{sig.Neg(), H}
		qs := []G2{G2Generator(), pk}
		got, err := PairingCheck(ps, qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := legacyPairingCheck(ps, qs); got != want {
			t.Fatalf("valid vector: got %v legacy %v", got, want)
		}
		if !got {
			t.Fatal("well-formed BLS relation rejected")
		}
		// Corrupt the signature: both engines must reject.
		bad := sig.Add(G1Generator())
		ps = []G1{bad.Neg(), H}
		got, err = PairingCheck(ps, qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := legacyPairingCheck(ps, qs); got != want {
			t.Fatalf("corrupt vector: got %v legacy %v", got, want)
		}
		if got {
			t.Fatal("corrupted BLS relation accepted")
		}
	}
}

func TestMultiPairingSharesFinalExp(t *testing.T) {
	// The multi-pairing must equal the product of individual pairings
	// (one shared final exponentiation cannot change the verdict), and
	// must accept vectors whose product is 1 across many pairs.
	const n = 5
	ps := make([]G1, 0, 2*n)
	qs := make([]G2, 0, 2*n)
	for i := 0; i < n; i++ {
		k := big.NewInt(int64(3*i + 2))
		P := G1Generator().Mul(k)
		Q := G2Generator().Mul(big.NewInt(int64(i + 1)))
		ps = append(ps, P, P.Neg())
		qs = append(qs, Q, Q)
	}
	ok, err := PairingCheck(ps, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("product of cancelling pairs should be 1")
	}
	// And the accumulated Miller-loop product matches multiplying the
	// individually final-exponentiated pairings.
	var prod fe12
	prod.setOne()
	for i := range ps {
		e, err := Pair(ps[i], qs[i])
		if err != nil {
			t.Fatal(err)
		}
		prod.mul(&prod, &e)
	}
	if !prod.isOne() {
		t.Fatal("individual pairings disagree with multi-pairing verdict")
	}
}

func BenchmarkPairing(b *testing.B) {
	P, Q := G1Generator(), G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pair(P, Q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMillerLoop(b *testing.B) {
	pxs, pys, qaffs := preparePairs([]G1{G1Generator()}, []G2{G2Generator()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		millerLoop(pxs, pys, qaffs)
	}
}

func BenchmarkFinalExp(b *testing.B) {
	pxs, pys, qaffs := preparePairs([]G1{G1Generator()}, []G2{G2Generator()})
	f := millerLoop(pxs, pys, qaffs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExp(f)
	}
}

func BenchmarkPairingCheck2(b *testing.B) {
	// The BLS-verification shape: 2 pairs, one final exponentiation.
	P, Q := G1Generator(), G2Generator()
	ps := []G1{P.Neg(), P}
	qs := []G2{Q, Q}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := PairingCheck(ps, qs)
		if err != nil || !ok {
			b.Fatal("check failed")
		}
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	k, _ := rand.Int(rand.Reader, rOrder)
	g := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Mul(k)
	}
}
