package bls

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestUntwistLandsOnCurve(t *testing.T) {
	// untwisted G2 points must satisfy y² = x³ + 4 in Fp12.
	q := untwist(G2Generator())
	four := fp12Scalar(fpFromInt(4))
	lhs := q.y.mul(q.y)
	rhs := q.x.mul(q.x).mul(q.x).add2(four)
	if !lhs.equal(rhs) {
		t.Fatal("untwisted generator off curve in Fp12")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	e, err := Pair(G1Generator(), G2Generator())
	if err != nil {
		t.Fatal(err)
	}
	if e.isOne() {
		t.Fatal("e(G1, G2) = 1: degenerate pairing")
	}
	// GT has order r: e^r == 1.
	if !e.exp(rOrder).isOne() {
		t.Fatal("pairing output not of order dividing r")
	}
}

func TestBilinearity(t *testing.T) {
	// e(aP, bQ) == e(P, Q)^{ab}: the defining property. A wrong Miller
	// loop, untwist, or final exponentiation virtually cannot pass this.
	a := big.NewInt(7)
	b := big.NewInt(11)
	P, Q := G1Generator(), G2Generator()
	lhs, err := Pair(P.Mul(a), Q.Mul(b))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Pair(P, Q)
	if err != nil {
		t.Fatal(err)
	}
	ab := new(big.Int).Mul(a, b)
	if !lhs.equal(base.exp(ab)) {
		t.Fatal("bilinearity failed: e(aP,bQ) != e(P,Q)^{ab}")
	}
}

func TestBilinearityRandomScalars(t *testing.T) {
	a, _ := rand.Int(rand.Reader, rOrder)
	b, _ := rand.Int(rand.Reader, rOrder)
	P, Q := G1Generator(), G2Generator()
	lhs, err := Pair(P.Mul(a), Q.Mul(b))
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Pair(P.Mul(new(big.Int).Mul(a, b)), Q)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.equal(rhs) {
		t.Fatal("e(aP, bQ) != e(abP, Q)")
	}
}

func TestPairingLinearLeft(t *testing.T) {
	// e(P1 + P2, Q) == e(P1, Q) · e(P2, Q): exactly the law aggregate
	// signature verification relies on.
	P1 := G1Generator().Mul(big.NewInt(3))
	P2 := G1Generator().Mul(big.NewInt(5))
	Q := G2Generator()
	lhs, err := Pair(P1.Add(P2), Q)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Pair(P1, Q)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Pair(P2, Q)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.equal(e1.mul(e2)) {
		t.Fatal("left linearity failed")
	}
}

func TestPairingInfinity(t *testing.T) {
	e, err := Pair(g1Infinity(), G2Generator())
	if err != nil {
		t.Fatal(err)
	}
	if !e.isOne() {
		t.Fatal("e(∞, Q) != 1")
	}
	e, err = Pair(G1Generator(), g2Infinity())
	if err != nil {
		t.Fatal(err)
	}
	if !e.isOne() {
		t.Fatal("e(P, ∞) != 1")
	}
}

func TestPairingCheck(t *testing.T) {
	// e(−P, Q)·e(P, Q) == 1
	P, Q := G1Generator(), G2Generator()
	ok, err := PairingCheck([]G1{P.Neg(), P}, []G2{Q, Q})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("trivial pairing check failed")
	}
	ok, err = PairingCheck([]G1{P, P}, []G2{Q, Q})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("e(P,Q)² = 1 should not hold")
	}
	if _, err := PairingCheck([]G1{P}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

// add2 is a test-local alias for fp12 addition (production code only needs
// sub2/mul).
func (a fp12) add2(b fp12) fp12 { return fp12{a.a0.add(b.a0), a.a1.add(b.a1)} }

func BenchmarkPairing(b *testing.B) {
	P, Q := G1Generator(), G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pair(P, Q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	k, _ := rand.Int(rand.Reader, rOrder)
	g := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Mul(k)
	}
}
