package bls

// Differential tests for the fixed-base generator tables against the
// variable-base and naive paths.

import (
	"math/big"
	"testing"
)

func TestG1MulGenMatchesNaive(t *testing.T) {
	g := G1Generator()
	for _, k := range edgeScalars() {
		if !G1MulGen(k).Equal(g.mulRaw(new(big.Int).Mod(k, rOrder))) {
			t.Fatalf("G1MulGen mismatch at edge scalar %v", k)
		}
	}
	for i := 0; i < 32; i++ {
		k := randScalar(t)
		if !G1MulGen(k).Equal(g.mulRaw(k)) {
			t.Fatalf("G1MulGen mismatch at random scalar %v", k)
		}
	}
}

func TestG2MulGenMatchesNaive(t *testing.T) {
	g := G2Generator()
	for _, k := range edgeScalars() {
		if !G2MulGen(k).Equal(g.mulRaw(new(big.Int).Mod(k, rOrder))) {
			t.Fatalf("G2MulGen mismatch at edge scalar %v", k)
		}
	}
	for i := 0; i < 32; i++ {
		k := randScalar(t)
		if !G2MulGen(k).Equal(g.mulRaw(k)) {
			t.Fatalf("G2MulGen mismatch at random scalar %v", k)
		}
	}
}

func BenchmarkG1MulGen(b *testing.B) {
	G1MulGen(big.NewInt(1)) // build tables outside the timing loop
	k := randScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = G1MulGen(k)
	}
}

func BenchmarkG2MulGen(b *testing.B) {
	G2MulGen(big.NewInt(1))
	k := randScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = G2MulGen(k)
	}
}
