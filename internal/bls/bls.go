package bls

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// BLS multisignatures with public-key aggregation [14]: signatures are G1
// points, public keys are G2 points. All HSMs sign the same message (the
// log-update tuple), the service provider adds the signatures together, and
// every HSM verifies the single aggregate against the sum of the public
// keys. Rogue-key attacks are prevented by proofs of possession, checked
// once when a public key is registered.

// Domain-separation tags. The v1 tags feed the legacy try-and-increment
// framing and are frozen (existing logs verify against them); the v2 tags
// are RFC 9380 DSTs and include the suite ID per §3.1.
const (
	sigDomainLegacy = "safetypin/bls/sig/v1"
	popDomainLegacy = "safetypin/bls/pop/v1"
	sigDomainRFC    = "safetypin/bls/sig/v2/" + SuiteG1
	popDomainRFC    = "safetypin/bls/pop/v2/" + SuiteG1
)

func sigDomain(mode HashMode) string {
	if mode == HashLegacy {
		return sigDomainLegacy
	}
	return sigDomainRFC
}

func popDomain(mode HashMode) string {
	if mode == HashLegacy {
		return popDomainLegacy
	}
	return popDomainRFC
}

// SecretKey is a BLS signing key.
type SecretKey struct {
	s *big.Int //spin:secret
}

// PublicKey is a BLS verification key.
type PublicKey struct {
	p G2
}

// Signature is a BLS signature (or aggregate of signatures).
type Signature struct {
	p G1
}

// GenerateKey samples a keypair from rng.
func GenerateKey(rng io.Reader) (*SecretKey, *PublicKey, error) {
	s, err := sampleScalar(rng)
	if err != nil {
		return nil, nil, err
	}
	// Constant-time fixed-base comb (g2_ct.go): no doublings, no
	// scalar-dependent branch or memory access.
	return &SecretKey{s: s}, &PublicKey{p: G2MulGenSecret(s)}, nil
}

// sampleScalar rejection-samples a nonzero scalar in [1, r).
func sampleScalar(rng io.Reader) (*big.Int, error) {
	for {
		s, err := rand.Int(rng, rOrder) //spin:secret
		if err != nil {
			return nil, fmt.Errorf("bls: sampling key: %w", err)
		}
		//spinlint:ignore ctsecret rejecting the zero scalar leaks one bit of a key that is then discarded
		if s.Sign() == 0 {
			continue
		}
		return s, nil
	}
}

// GenerateKeyBatch samples n keypairs at once: every secret scalar runs
// the constant-time comb individually, but the resulting public keys are
// converted to affine with ONE shared Montgomery batch inversion
// (g2NormalizeBatch) instead of n per-point inversions at serialization
// time — the fleet-provisioning path, where n is the fleet size.
func GenerateKeyBatch(rng io.Reader, n int) ([]*SecretKey, []*PublicKey, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("bls: negative batch size %d", n)
	}
	sks := make([]*SecretKey, n)
	ps := make([]G2, n)
	for i := range sks {
		s, err := sampleScalar(rng)
		if err != nil {
			return nil, nil, err
		}
		sks[i] = &SecretKey{s: s}
		ps[i] = G2MulGenSecret(s)
	}
	g2NormalizeBatch(ps)
	pks := make([]*PublicKey, n)
	for i := range pks {
		pks[i] = &PublicKey{p: ps[i]}
	}
	return sks, pks, nil
}

// Sign signs msg under the default (RFC 9380) hash.
func (sk *SecretKey) Sign(msg []byte) *Signature {
	return sk.SignWithMode(HashRFC9380, msg)
}

// SignWithMode signs msg hashing with the given mode. Signer and verifier
// must agree on the mode — the fleet negotiates it in its configuration
// handshake.
func (sk *SecretKey) SignWithMode(mode HashMode, msg []byte) *Signature {
	// The hashed point is public; the scalar is the long-lived signing key,
	// so the multiplication runs on the constant-time window walk
	// (scalarmul_ct.go), not the GLV/wNAF path.
	return &Signature{p: HashToG1(mode, sigDomain(mode), msg).MulSecret(sk.s)}
}

// Verify checks a (possibly aggregate) signature on msg under pk (possibly
// an aggregate public key), hashing with the default (RFC 9380) mode.
func (pk *PublicKey) Verify(msg []byte, sig *Signature) (bool, error) {
	return pk.VerifyWithMode(HashRFC9380, msg, sig)
}

// VerifyWithMode checks a signature produced by SignWithMode(mode, …).
func (pk *PublicKey) VerifyWithMode(mode HashMode, msg []byte, sig *Signature) (bool, error) {
	if sig == nil || sig.p.IsInfinity() || pk.p.IsInfinity() {
		return false, nil
	}
	// e(σ, G2) == e(H(m), pk)  ⇔  e(−σ, G2)·e(H(m), pk) == 1
	return PairingCheck(
		[]G1{sig.p.Neg(), HashToG1(mode, sigDomain(mode), msg)},
		[]G2{G2Generator(), pk.p},
	)
}

// ProvePossession returns a proof of possession for the keypair, which
// registrars verify to block rogue-key aggregation attacks (default mode).
func (sk *SecretKey) ProvePossession(pk *PublicKey) *Signature {
	return sk.ProvePossessionWithMode(HashRFC9380, pk)
}

// ProvePossessionWithMode is ProvePossession under an explicit hash mode.
func (sk *SecretKey) ProvePossessionWithMode(mode HashMode, pk *PublicKey) *Signature {
	return &Signature{p: HashToG1(mode, popDomain(mode), pk.Bytes()).MulSecret(sk.s)}
}

// VerifyPossession checks a proof of possession for pk (default mode).
func VerifyPossession(pk *PublicKey, pop *Signature) (bool, error) {
	return VerifyPossessionWithMode(HashRFC9380, pk, pop)
}

// VerifyPossessionWithMode checks a proof of possession under an explicit
// hash mode.
func VerifyPossessionWithMode(mode HashMode, pk *PublicKey, pop *Signature) (bool, error) {
	if pop == nil || pop.p.IsInfinity() || pk.p.IsInfinity() {
		return false, nil
	}
	return PairingCheck(
		[]G1{pop.p.Neg(), HashToG1(mode, popDomain(mode), pk.Bytes())},
		[]G2{G2Generator(), pk.p},
	)
}

// AggregateSignatures sums signatures on the same message into one, via
// the batch-affine summation tree (msm.go): each round of pairwise
// additions shares a single field inversion.
func AggregateSignatures(sigs []*Signature) (*Signature, error) {
	if len(sigs) == 0 {
		return nil, errors.New("bls: nothing to aggregate")
	}
	ps := make([]G1, len(sigs))
	for i, s := range sigs {
		if s == nil {
			return nil, fmt.Errorf("bls: nil signature at %d", i)
		}
		ps[i] = s.p
	}
	return &Signature{p: g1Sum(ps)}, nil
}

// AggregatePublicKeys sums public keys into the aggregate verification
// key, via the batch-affine summation tree (msm.go) — the per-epoch roster
// aggregation that used to be a chain of full Jacobian additions.
func AggregatePublicKeys(pks []*PublicKey) (*PublicKey, error) {
	if len(pks) == 0 {
		return nil, errors.New("bls: nothing to aggregate")
	}
	ps := make([]G2, len(pks))
	for i, pk := range pks {
		if pk == nil {
			return nil, fmt.Errorf("bls: nil public key at %d", i)
		}
		ps[i] = pk.p
	}
	return &PublicKey{p: g2Sum(ps)}, nil
}

// SubtractPublicKeys returns agg − (missing₀ + … + missingₙ₋₁): the
// incremental path for per-epoch quorum keys. Epoch commits carry
// near-complete signer sets, so subtracting the few absent signers from a
// cached full-roster aggregate costs O(missing) group operations where
// re-aggregating the quorum from scratch costs an O(n) MSM. The result is
// the exact group element the full aggregation would produce (point
// addition is exact), so serializations are byte-identical — asserted by
// the differential tests in aggsig.
func SubtractPublicKeys(agg *PublicKey, missing []*PublicKey) (*PublicKey, error) {
	if agg == nil {
		return nil, errors.New("bls: nil aggregate")
	}
	if len(missing) == 0 {
		return &PublicKey{p: agg.p}, nil
	}
	ps := make([]G2, len(missing))
	for i, pk := range missing {
		if pk == nil {
			return nil, fmt.Errorf("bls: nil public key at %d", i)
		}
		ps[i] = pk.p
	}
	return &PublicKey{p: agg.p.Add(g2Sum(ps).Neg())}, nil
}

// AddPublicKeys returns agg + pk — the O(1) cache update when a single
// key joins an already-aggregated roster.
func AddPublicKeys(agg, pk *PublicKey) (*PublicKey, error) {
	if agg == nil || pk == nil {
		return nil, errors.New("bls: nil public key")
	}
	return &PublicKey{p: agg.p.Add(pk.p)}, nil
}

// aggregatePublicKeysNaive is the retained point-by-point summation, the
// differential oracle (and benchmark baseline) for the batch-affine path.
func aggregatePublicKeysNaive(pks []*PublicKey) *PublicKey {
	acc := g2Infinity()
	for _, pk := range pks {
		acc = acc.Add(pk.p)
	}
	return &PublicKey{p: acc}
}

// Bytes serializes the public key in the legacy uncompressed format (the
// proof-of-possession domain hashes this encoding, so it is frozen).
func (pk *PublicKey) Bytes() []byte { return pk.p.Bytes() }

// BytesCompressed serializes the public key in the IETF/zcash 96-byte
// compressed format — the wire encoding for rosters.
func (pk *PublicKey) BytesCompressed() []byte { return pk.p.BytesCompressed() }

// PublicKeysBatchCompressed serializes a whole roster in the compressed
// format with one shared field inversion (G2BatchBytesCompressed).
func PublicKeysBatchCompressed(pks []*PublicKey) ([][]byte, error) {
	ps := make([]G2, len(pks))
	for i, pk := range pks {
		if pk == nil {
			return nil, fmt.Errorf("bls: nil public key at %d", i)
		}
		ps[i] = pk.p
	}
	return G2BatchBytesCompressed(ps), nil
}

// PublicKeyFromBytes decodes and validates an uncompressed public key.
func PublicKeyFromBytes(b []byte) (*PublicKey, error) {
	p, err := G2FromBytes(b)
	if err != nil {
		return nil, err
	}
	return &PublicKey{p: p}, nil
}

// PublicKeyFromCompressedBytes decodes and validates a compressed public
// key.
func PublicKeyFromCompressedBytes(b []byte) (*PublicKey, error) {
	p, err := G2FromCompressedBytes(b)
	if err != nil {
		return nil, err
	}
	return &PublicKey{p: p}, nil
}

// Bytes serializes the signature.
func (s *Signature) Bytes() []byte { return s.p.Bytes() }

// SignatureFromBytes decodes and validates a signature.
func SignatureFromBytes(b []byte) (*Signature, error) {
	p, err := G1FromBytes(b)
	if err != nil {
		return nil, err
	}
	return &Signature{p: p}, nil
}

// Equal reports public-key equality.
func (pk *PublicKey) Equal(other *PublicKey) bool {
	return other != nil && pk.p.Equal(other.p)
}
