package bls

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// BLS multisignatures with public-key aggregation [14]: signatures are G1
// points, public keys are G2 points. All HSMs sign the same message (the
// log-update tuple), the service provider adds the signatures together, and
// every HSM verifies the single aggregate against the sum of the public
// keys. Rogue-key attacks are prevented by proofs of possession, checked
// once when a public key is registered.

const (
	sigDomain = "safetypin/bls/sig/v1"
	popDomain = "safetypin/bls/pop/v1"
)

// SecretKey is a BLS signing key.
type SecretKey struct {
	s *big.Int
}

// PublicKey is a BLS verification key.
type PublicKey struct {
	p G2
}

// Signature is a BLS signature (or aggregate of signatures).
type Signature struct {
	p G1
}

// GenerateKey samples a keypair from rng.
func GenerateKey(rng io.Reader) (*SecretKey, *PublicKey, error) {
	for {
		s, err := rand.Int(rng, rOrder)
		if err != nil {
			return nil, nil, fmt.Errorf("bls: sampling key: %w", err)
		}
		if s.Sign() == 0 {
			continue
		}
		return &SecretKey{s: s}, &PublicKey{p: G2Generator().Mul(s)}, nil
	}
}

// Sign signs msg.
func (sk *SecretKey) Sign(msg []byte) *Signature {
	return &Signature{p: HashToG1(sigDomain, msg).Mul(sk.s)}
}

// Verify checks a (possibly aggregate) signature on msg under pk (possibly
// an aggregate public key).
func (pk *PublicKey) Verify(msg []byte, sig *Signature) (bool, error) {
	if sig == nil || sig.p.IsInfinity() || pk.p.IsInfinity() {
		return false, nil
	}
	// e(σ, G2) == e(H(m), pk)  ⇔  e(−σ, G2)·e(H(m), pk) == 1
	return PairingCheck(
		[]G1{sig.p.Neg(), HashToG1(sigDomain, msg)},
		[]G2{G2Generator(), pk.p},
	)
}

// ProvePossession returns a proof of possession for the keypair, which
// registrars verify to block rogue-key aggregation attacks.
func (sk *SecretKey) ProvePossession(pk *PublicKey) *Signature {
	return &Signature{p: HashToG1(popDomain, pk.Bytes()).Mul(sk.s)}
}

// VerifyPossession checks a proof of possession for pk.
func VerifyPossession(pk *PublicKey, pop *Signature) (bool, error) {
	if pop == nil || pop.p.IsInfinity() || pk.p.IsInfinity() {
		return false, nil
	}
	return PairingCheck(
		[]G1{pop.p.Neg(), HashToG1(popDomain, pk.Bytes())},
		[]G2{G2Generator(), pk.p},
	)
}

// AggregateSignatures sums signatures on the same message into one.
func AggregateSignatures(sigs []*Signature) (*Signature, error) {
	if len(sigs) == 0 {
		return nil, errors.New("bls: nothing to aggregate")
	}
	acc := g1Infinity()
	for i, s := range sigs {
		if s == nil {
			return nil, fmt.Errorf("bls: nil signature at %d", i)
		}
		acc = acc.Add(s.p)
	}
	return &Signature{p: acc}, nil
}

// AggregatePublicKeys sums public keys into the aggregate verification key.
func AggregatePublicKeys(pks []*PublicKey) (*PublicKey, error) {
	if len(pks) == 0 {
		return nil, errors.New("bls: nothing to aggregate")
	}
	acc := g2Infinity()
	for i, pk := range pks {
		if pk == nil {
			return nil, fmt.Errorf("bls: nil public key at %d", i)
		}
		acc = acc.Add(pk.p)
	}
	return &PublicKey{p: acc}, nil
}

// Bytes serializes the public key in the legacy uncompressed format (the
// proof-of-possession domain hashes this encoding, so it is frozen).
func (pk *PublicKey) Bytes() []byte { return pk.p.Bytes() }

// BytesCompressed serializes the public key in the IETF/zcash 96-byte
// compressed format — the wire encoding for rosters.
func (pk *PublicKey) BytesCompressed() []byte { return pk.p.BytesCompressed() }

// PublicKeyFromBytes decodes and validates an uncompressed public key.
func PublicKeyFromBytes(b []byte) (*PublicKey, error) {
	p, err := G2FromBytes(b)
	if err != nil {
		return nil, err
	}
	return &PublicKey{p: p}, nil
}

// PublicKeyFromCompressedBytes decodes and validates a compressed public
// key.
func PublicKeyFromCompressedBytes(b []byte) (*PublicKey, error) {
	p, err := G2FromCompressedBytes(b)
	if err != nil {
		return nil, err
	}
	return &PublicKey{p: p}, nil
}

// Bytes serializes the signature.
func (s *Signature) Bytes() []byte { return s.p.Bytes() }

// SignatureFromBytes decodes and validates a signature.
func SignatureFromBytes(b []byte) (*Signature, error) {
	p, err := G1FromBytes(b)
	if err != nil {
		return nil, err
	}
	return &Signature{p: p}, nil
}

// Equal reports public-key equality.
func (pk *PublicKey) Equal(other *PublicKey) bool {
	return other != nil && pk.p.Equal(other.p)
}
