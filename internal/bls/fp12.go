package bls

// fp12.go implements Fp12 = Fp6[w]/(w² − v): Karatsuba multiplication,
// complex squaring (2 fe6 muls — the dedicated formula the old tower was
// missing), Granger–Scott cyclotomic squaring for the final exponentiation,
// Frobenius maps via precomputed coefficients, and the sparse mulBy014 the
// Miller loop multiplies line evaluations with.
//
// Frobenius coefficients are derived at package init from first principles
// with the limb field itself (ξ^{k(p−1)/6} and ξ^{k(p²−1)/6}) rather than
// being pasted in as opaque hex.

type fe12 struct{ a0, a1 fe6 }

// frobC1[k] = ξ^{k(p−1)/6} ∈ Fp2: the coefficient the w^k basis slot picks
// up under the Frobenius map x ↦ x^p.
var frobC1 [6]fe2

// frobC2[k] = ξ^{k(p²−1)/6} ∈ Fp: the (real) coefficient for x ↦ x^{p²}.
var frobC2 [6]fe

func init() {
	initFieldConstants() // file-order independent (see fp_limb.go)
	var xi fe2
	xi.c0 = feR // ξ = 1 + u
	xi.c1 = feR

	var g fe2
	g.exp(&xi, pMinus1Over6[:])
	frobC1[0].setOne()
	for k := 1; k < 6; k++ {
		frobC1[k].mul(&frobC1[k-1], &g)
	}

	var g2 fe2
	g2.exp(&xi, pSqMinus1Over6[:])
	if !g2.c1.isZero() {
		panic("bls: ξ^{(p²-1)/6} not in Fp")
	}
	frobC2[0] = feR
	for k := 1; k < 6; k++ {
		feMul(&frobC2[k], &frobC2[k-1], &g2.c0)
	}
}

func (z *fe12) set(x *fe12) { *z = *x }
func (z *fe12) setOne() {
	z.a0.setOne()
	z.a1.setZero()
}
func (x *fe12) isOne() bool { return x.a0.isOne() && x.a1.isZero() }

func (x *fe12) equal(y *fe12) bool { return x.a0.equal(&y.a0) && x.a1.equal(&y.a1) }

// mul sets z = x·y (Karatsuba over Fp6: 3 fe6 muls).
func (z *fe12) mul(x, y *fe12) {
	var t0, t1, t2, t3 fe6
	t0.mul(&x.a0, &y.a0)
	t1.mul(&x.a1, &y.a1)
	t2.add(&x.a0, &x.a1)
	t3.add(&y.a0, &y.a1)
	t2.mul(&t2, &t3)
	t2.sub(&t2, &t0)
	t2.sub(&t2, &t1)
	t1.mulByNonResidue(&t1)
	z.a0.add(&t0, &t1)
	z.a1 = t2
}

// square sets z = x² by complex squaring over Fp6 (2 fe6 muls): with
// γ = v, c0 = (a0+a1)(a0+γa1) − a0a1 − γa0a1 and c1 = 2a0a1.
func (z *fe12) square(x *fe12) {
	var t0, t1, t2 fe6
	t0.mul(&x.a0, &x.a1) // a0·a1
	t1.add(&x.a0, &x.a1)
	t2.mulByNonResidue(&x.a1)
	t2.add(&t2, &x.a0)
	t1.mul(&t1, &t2) // (a0+a1)(a0+γa1)
	t1.sub(&t1, &t0)
	t2.mulByNonResidue(&t0)
	z.a0.sub(&t1, &t2)
	z.a1.double(&t0)
}

// conj sets z = a0 − a1·w, which equals x^{p⁶} (and the inverse for
// cyclotomic-subgroup elements).
func (z *fe12) conj(x *fe12) {
	z.a0 = x.a0
	z.a1.neg(&x.a1)
}

// inv sets z = x⁻¹ via the norm map (one fe6 inversion).
func (z *fe12) inv(x *fe12) {
	var t0, t1 fe6
	t0.square(&x.a0)
	t1.square(&x.a1)
	t1.mulByNonResidue(&t1)
	t0.sub(&t0, &t1)
	t0.inv(&t0)
	z.a0.mul(&x.a0, &t0)
	t0.mul(&x.a1, &t0)
	z.a1.neg(&t0)
}

// mulBy014 multiplies z in place by the sparse element with Fp2
// coefficients c0 (slot 1), c1 (slot v), c4 (slot v·w) — the shape of a
// Miller-loop line evaluation. Costs 13 fe2 muls (5+3+5 across the sparse
// fe6 products) instead of a full mul's 18.
func (z *fe12) mulBy014(c0, c1, c4 *fe2) {
	var a, b fe6
	a.mulBy01(&z.a0, c0, c1)
	b.mulBy1(&z.a1, c4)
	var d fe2
	d.add(c1, c4)
	var t fe6
	t.add(&z.a1, &z.a0)
	t.mulBy01(&t, c0, &d)
	t.sub(&t, &a)
	z.a1.sub(&t, &b)
	b.mulByNonResidue(&b)
	z.a0.add(&a, &b)
}

// frobenius sets z = x^p: conjugate every Fp2 coefficient and scale the w^k
// basis slot by frobC1[k] (k = 2i+j for coefficient a_j.b_i).
func (z *fe12) frobenius(x *fe12) {
	z.a0.b0.conj(&x.a0.b0)
	z.a0.b1.conj(&x.a0.b1)
	z.a0.b1.mul(&z.a0.b1, &frobC1[2])
	z.a0.b2.conj(&x.a0.b2)
	z.a0.b2.mul(&z.a0.b2, &frobC1[4])
	z.a1.b0.conj(&x.a1.b0)
	z.a1.b0.mul(&z.a1.b0, &frobC1[1])
	z.a1.b1.conj(&x.a1.b1)
	z.a1.b1.mul(&z.a1.b1, &frobC1[3])
	z.a1.b2.conj(&x.a1.b2)
	z.a1.b2.mul(&z.a1.b2, &frobC1[5])
}

// frobeniusSquare sets z = x^{p²}: scale slot k by the real constant
// frobC2[k] (conjugation applied twice cancels).
func (z *fe12) frobeniusSquare(x *fe12) {
	z.a0.b0 = x.a0.b0
	z.a0.b1.mulByFe(&x.a0.b1, &frobC2[2])
	z.a0.b2.mulByFe(&x.a0.b2, &frobC2[4])
	z.a1.b0.mulByFe(&x.a1.b0, &frobC2[1])
	z.a1.b1.mulByFe(&x.a1.b1, &frobC2[3])
	z.a1.b2.mulByFe(&x.a1.b2, &frobC2[5])
}

// fp4Square computes (c0 + c1·s)² in Fp4 = Fp2[s]/(s² − ξ): the building
// block of Granger–Scott cyclotomic squaring.
func fp4Square(d0, d1, c0, c1 *fe2) {
	var t0, t1, t2 fe2
	t0.square(c0)
	t1.square(c1)
	t2.mulByNonResidue(&t1)
	d0.add(&t2, &t0)
	t2.add(c0, c1)
	t2.square(&t2)
	t2.sub(&t2, &t0)
	d1.sub(&t2, &t1)
}

// cyclotomicSquare sets z = x² for x in the cyclotomic subgroup
// (x^{(p⁶−1)(p²+1)} = something the easy final exponentiation produced):
// 9 fe2 multiplications against a generic square's 18 (Granger–Scott 2010).
func (z *fe12) cyclotomicSquare(x *fe12) {
	var t0, t1, t2, t3, t4, t5 fe2
	fp4Square(&t0, &t1, &x.a0.b0, &x.a1.b1)
	fp4Square(&t2, &t3, &x.a1.b0, &x.a0.b2)
	fp4Square(&t4, &t5, &x.a0.b1, &x.a1.b2)
	t5.mulByNonResidue(&t5)

	// z.a0 components: 3(t) − 2(x)
	var u fe2
	u.sub(&t0, &x.a0.b0)
	u.double(&u)
	z.a0.b0.add(&u, &t0)
	u.sub(&t2, &x.a0.b1)
	u.double(&u)
	z.a0.b1.add(&u, &t2)
	u.sub(&t4, &x.a0.b2)
	u.double(&u)
	z.a0.b2.add(&u, &t4)

	// z.a1 components: 3(t) + 2(x)
	u.add(&t5, &x.a1.b0)
	u.double(&u)
	z.a1.b0.add(&u, &t5)
	u.add(&t1, &x.a1.b1)
	u.double(&u)
	z.a1.b1.add(&u, &t1)
	u.add(&t3, &x.a1.b2)
	u.double(&u)
	z.a1.b2.add(&u, &t3)
}

// blsX is |x| = 0xd201000000010000, the absolute value of the BLS12-381
// curve parameter (x itself is negative).
const blsX uint64 = 0xd201000000010000

// blsXBitLen is the bit length of |x|.
const blsXBitLen = 64

// expByX sets z = x^t where t is the (negative) curve parameter, valid only
// for cyclotomic-subgroup inputs: square-and-multiply over |x| with
// cyclotomic squarings, then conjugate for the sign.
func (z *fe12) expByX(x *fe12) {
	out := *x // top bit of |x| consumed by starting at the base
	for i := blsXBitLen - 2; i >= 0; i-- {
		out.cyclotomicSquare(&out)
		if blsX>>uint(i)&1 == 1 {
			out.mul(&out, x)
		}
	}
	out.conj(&out) // x < 0
	*z = out
}
