package bls

// fp_limb.go implements the BLS12-381 base field Fp with a fixed 6×uint64
// Montgomery representation. Every hot-path operation (add, sub, mul,
// square, inverse, square root) runs on raw limbs with math/bits carry
// chains — no math/big, no allocation. Elements are kept in Montgomery form
// (a·R mod p, R = 2^384) from creation to serialization.

import (
	"encoding/binary"
	"math/bits"
	"sync"
)

// fe is an Fp element in Montgomery form, little-endian limbs.
type fe [6]uint64

// pLimbs is the base-field modulus
// p = 0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab.
var pLimbs = fe{
	0xb9feffffffffaaab, 0x1eabfffeb153ffff, 0x6730d2a0f6b0f624,
	0x64774b84f38512bf, 0x4b1ba7b6434bacd7, 0x1a0111ea397fe69a,
}

// montInv = -p⁻¹ mod 2^64, the Montgomery reduction factor.
const montInv uint64 = 0x89f3fffcfffcfffd

// feR is R = 2^384 mod p: the Montgomery form of 1.
var feR = fe{
	0x760900000002fffd, 0xebf4000bc40c0002, 0x5f48985753c758ba,
	0x77ce585370525745, 0x5c071a97a256ec6d, 0x15f65ec3fa80e493,
}

// feR2 is R² mod p, used to convert into Montgomery form.
var feR2 = fe{
	0xf4df1f341c341746, 0x0a76e6a609d104f1, 0x8de5476c4c95b6d5,
	0x67eb88a9939d83c0, 0x9a793e85b519952d, 0x11988fe592cae3aa,
}

// feR3 = R³ mod p, for reducing 512-bit hash outputs. Derived at init so the
// only trusted constants are p, montInv, R, and R².
var feR3 fe

// feRawOne is the plain integer 1 (NOT Montgomery form); multiplying by it
// with feMul performs a Montgomery reduction out of Montgomery form.
var feRawOne = fe{1, 0, 0, 0, 0, 0}

// Fixed exponents, derived from p at init with pure limb arithmetic.
var (
	pMinus2Limbs     [6]uint64  // p − 2, for inversion by Fermat
	pPlus1Over4Limbs [6]uint64  // (p+1)/4, for sqrt (p ≡ 3 mod 4)
	pMinus3Over4     [6]uint64  // (p−3)/4, for Fp2 sqrt
	pMinus1Over2     [6]uint64  // (p−1)/2, for Fp2 sqrt and sign ordering
	pMinus1Over6     [6]uint64  // (p−1)/6, for Frobenius constants
	pSqMinus1Over6   [12]uint64 // (p²−1)/6, for Frobenius² constants
)

// initFieldConstants derives the exponent tables above. It must run before
// any other file's package initialization touches them — Go runs init()
// functions in file-name order and variable initializers earlier still, so
// every consumer calls this explicitly (it is idempotent) instead of
// relying on ordering.
var fieldConstantsOnce sync.Once

func initFieldConstants() { fieldConstantsOnce.Do(deriveFieldConstants) }

func init() { initFieldConstants() }

func deriveFieldConstants() {
	feMul(&feR3, &feR2, &feR2)

	copy(pMinus2Limbs[:], pLimbs[:])
	pMinus2Limbs[0] -= 2 // p[0] ends ...aaab, no borrow

	// (p+1)/4: add 1 (no carry out of limb 0), shift right twice.
	var pp [6]uint64
	copy(pp[:], pLimbs[:])
	pp[0]++
	copy(pPlus1Over4Limbs[:], pp[:])
	shiftRight1(pPlus1Over4Limbs[:])
	shiftRight1(pPlus1Over4Limbs[:])

	// (p−3)/4 = (p+1)/4 − 1, used as the Fp2 sqrt exponent.
	copy(pMinus3Over4[:], pPlus1Over4Limbs[:])
	var borrow uint64
	pMinus3Over4[0], borrow = bits.Sub64(pMinus3Over4[0], 1, 0)
	for i := 1; i < 6 && borrow != 0; i++ {
		pMinus3Over4[i], borrow = bits.Sub64(pMinus3Over4[i], 0, borrow)
	}

	// (p−1)/6 by long division; p ≡ 1 (mod 6) so the remainder is 0.
	var pm1 [6]uint64
	copy(pm1[:], pLimbs[:])
	pm1[0]-- // p[0] is odd, no borrow

	// (p−1)/2 for the Euler criterion and lexicographic sign ordering.
	copy(pMinus1Over2[:], pm1[:])
	shiftRight1(pMinus1Over2[:])
	if divBySmall(pMinus1Over6[:], pm1[:], 6) != 0 {
		panic("bls: p-1 not divisible by 6")
	}

	// (p²−1)/6 over 12 limbs.
	var psq [12]uint64
	mulWide(psq[:], pLimbs[:], pLimbs[:])
	psq[0]-- // p² is odd
	if divBySmall(pSqMinus1Over6[:], psq[:], 6) != 0 {
		panic("bls: p²-1 not divisible by 6")
	}
}

// shiftRight1 shifts a little-endian limb vector right by one bit.
func shiftRight1(x []uint64) {
	for i := 0; i < len(x); i++ {
		x[i] >>= 1
		if i+1 < len(x) {
			x[i] |= x[i+1] << 63
		}
	}
}

// divBySmall divides a little-endian limb vector by a small divisor,
// writing the quotient to q and returning the remainder.
func divBySmall(q, x []uint64, d uint64) uint64 {
	var rem uint64
	for i := len(x) - 1; i >= 0; i-- {
		q[i], rem = bits.Div64(rem, x[i], d)
	}
	return rem
}

// mulWide computes the full 2n-limb product of two n-limb vectors.
func mulWide(out, x, y []uint64) {
	for i := range out {
		out[i] = 0
	}
	for i := range x {
		var carry uint64
		for j := range y {
			hi, lo := bits.Mul64(x[i], y[j])
			var c uint64
			lo, c = bits.Add64(lo, out[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			out[i+j] = lo
			carry = hi
		}
		out[i+len(y)] += carry
	}
}

// --- core Montgomery arithmetic ---

// feMulLoop is the looped CIOS Montgomery multiplication
// (z = x·y·R⁻¹ mod p). It is the retained differential oracle for the
// unrolled straight-line feMul (fp_unrolled.go), which replaced it on the
// hot path: the loop's per-iteration carry bookkeeping defeats the
// compiler's add-carry fusion. Same contract as feMul: x may be any
// 384-bit value; y must be < p; the result is fully reduced.
func feMulLoop(z, x, y *fe) {
	var t [8]uint64
	for i := 0; i < 6; i++ {
		// t += x · y[i]
		var c uint64
		for j := 0; j < 6; j++ {
			hi, lo := bits.Mul64(x[j], y[i])
			var cr uint64
			lo, cr = bits.Add64(lo, t[j], 0)
			hi += cr
			lo, cr = bits.Add64(lo, c, 0)
			hi += cr
			t[j] = lo
			c = hi
		}
		var cr uint64
		t[6], cr = bits.Add64(t[6], c, 0)
		t[7] = cr

		// Montgomery reduction step: fold out t[0].
		m := t[0] * montInv
		hi, lo := bits.Mul64(m, pLimbs[0])
		_, cr = bits.Add64(lo, t[0], 0)
		c = hi + cr
		for j := 1; j < 6; j++ {
			hi, lo := bits.Mul64(m, pLimbs[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j-1] = lo
			c = hi
		}
		t[5], cr = bits.Add64(t[6], c, 0)
		t[6] = t[7] + cr
	}
	// Result < 2p: one conditional subtraction.
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t[0], pLimbs[0], 0)
	r[1], b = bits.Sub64(t[1], pLimbs[1], b)
	r[2], b = bits.Sub64(t[2], pLimbs[2], b)
	r[3], b = bits.Sub64(t[3], pLimbs[3], b)
	r[4], b = bits.Sub64(t[4], pLimbs[4], b)
	r[5], b = bits.Sub64(t[5], pLimbs[5], b)
	_, b = bits.Sub64(t[6], 0, b)
	if b == 0 {
		*z = r
	} else {
		copy(z[:], t[:6])
	}
}

// feSquareLoop sets z = x² with a dedicated symmetric squaring: the 15
// off-diagonal products x_i·x_j (i < j) are computed once and doubled by a
// one-bit shift, then the 6 diagonal squares are folded in — 21 wide
// multiplications against feMul's 36 — followed by a separate 6-step
// Montgomery reduction of the 12-limb square (SOS). x must be < p; the
// result is fully reduced. Every point doubling in the wNAF/GLV/MSM paths
// bottoms out here, which is why the ~15% it saves over feMul(z, x, x) is
// now worth the extra trusted code (BenchmarkFeSquare vs BenchmarkFeMul).
// Like feMulLoop it is the retained differential oracle for the unrolled
// feSquare in fp_unrolled.go.
func feSquareLoop(z, x *fe) {
	var t [12]uint64

	// Off-diagonal partial products: t[i+j] += x[i]·x[j] for i < j.
	for i := 0; i < 5; i++ {
		var c uint64
		for j := i + 1; j < 6; j++ {
			hi, lo := bits.Mul64(x[i], x[j])
			var cr uint64
			lo, cr = bits.Add64(lo, t[i+j], 0)
			hi += cr
			lo, cr = bits.Add64(lo, c, 0)
			hi += cr
			t[i+j] = lo
			c = hi
		}
		t[i+6] = c
	}

	// Double the cross products (they occupy t[1..10]; x < 2^381 so the
	// shifted value still fits 12 limbs).
	for i := 11; i > 0; i-- {
		t[i] = t[i]<<1 | t[i-1]>>63
	}
	t[0] = 0

	// Fold in the diagonal squares x[i]² at t[2i], t[2i+1].
	var c uint64
	for i := 0; i < 6; i++ {
		hi, lo := bits.Mul64(x[i], x[i])
		var cr uint64
		t[2*i], cr = bits.Add64(t[2*i], lo, c)
		hi += cr
		t[2*i+1], c = bits.Add64(t[2*i+1], hi, 0)
	}

	// Montgomery reduction of the 12-limb square: six steps, each folding
	// out the lowest live limb (x² < p² and Σ mᵢ·p·2^{64i} < 2^384·p keep
	// the running value under 2^766, so no carry escapes t[11]).
	for i := 0; i < 6; i++ {
		m := t[i] * montInv
		hi, lo := bits.Mul64(m, pLimbs[0])
		_, cr := bits.Add64(lo, t[i], 0)
		carry := hi + cr
		for j := 1; j < 6; j++ {
			hi, lo := bits.Mul64(m, pLimbs[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[i+j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, carry, 0)
			hi += cc
			t[i+j] = lo
			carry = hi
		}
		t[i+6], cr = bits.Add64(t[i+6], carry, 0)
		for j := i + 7; j < 12 && cr != 0; j++ {
			t[j], cr = bits.Add64(t[j], 0, cr)
		}
	}

	// Result t[6..11] < 2p: one conditional subtraction.
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t[6], pLimbs[0], 0)
	r[1], b = bits.Sub64(t[7], pLimbs[1], b)
	r[2], b = bits.Sub64(t[8], pLimbs[2], b)
	r[3], b = bits.Sub64(t[9], pLimbs[3], b)
	r[4], b = bits.Sub64(t[10], pLimbs[4], b)
	r[5], b = bits.Sub64(t[11], pLimbs[5], b)
	if b == 0 {
		*z = r
	} else {
		copy(z[:], t[6:])
	}
}

// feAdd sets z = x + y mod p.
func feAdd(z, x, y *fe) {
	var t fe
	var c uint64
	t[0], c = bits.Add64(x[0], y[0], 0)
	t[1], c = bits.Add64(x[1], y[1], c)
	t[2], c = bits.Add64(x[2], y[2], c)
	t[3], c = bits.Add64(x[3], y[3], c)
	t[4], c = bits.Add64(x[4], y[4], c)
	t[5], _ = bits.Add64(x[5], y[5], c) // x+y < 2p < 2^384: no carry out
	feReduce(z, &t)
}

// feDouble sets z = 2x mod p.
func feDouble(z, x *fe) { feAdd(z, x, x) }

// feReduce sets z = t − p if t ≥ p, else z = t.
func feReduce(z, t *fe) {
	var r fe
	var b uint64
	r[0], b = bits.Sub64(t[0], pLimbs[0], 0)
	r[1], b = bits.Sub64(t[1], pLimbs[1], b)
	r[2], b = bits.Sub64(t[2], pLimbs[2], b)
	r[3], b = bits.Sub64(t[3], pLimbs[3], b)
	r[4], b = bits.Sub64(t[4], pLimbs[4], b)
	r[5], b = bits.Sub64(t[5], pLimbs[5], b)
	if b == 0 {
		*z = r
	} else {
		*z = *t
	}
}

// feSub sets z = x − y mod p.
func feSub(z, x, y *fe) {
	var t fe
	var b uint64
	t[0], b = bits.Sub64(x[0], y[0], 0)
	t[1], b = bits.Sub64(x[1], y[1], b)
	t[2], b = bits.Sub64(x[2], y[2], b)
	t[3], b = bits.Sub64(x[3], y[3], b)
	t[4], b = bits.Sub64(x[4], y[4], b)
	t[5], b = bits.Sub64(x[5], y[5], b)
	if b != 0 {
		var c uint64
		t[0], c = bits.Add64(t[0], pLimbs[0], 0)
		t[1], c = bits.Add64(t[1], pLimbs[1], c)
		t[2], c = bits.Add64(t[2], pLimbs[2], c)
		t[3], c = bits.Add64(t[3], pLimbs[3], c)
		t[4], c = bits.Add64(t[4], pLimbs[4], c)
		t[5], _ = bits.Add64(t[5], pLimbs[5], c)
	}
	*z = t
}

// feNeg sets z = −x mod p.
func feNeg(z, x *fe) {
	if x.isZero() {
		*z = fe{}
		return
	}
	var b uint64
	z[0], b = bits.Sub64(pLimbs[0], x[0], 0)
	z[1], b = bits.Sub64(pLimbs[1], x[1], b)
	z[2], b = bits.Sub64(pLimbs[2], x[2], b)
	z[3], b = bits.Sub64(pLimbs[3], x[3], b)
	z[4], b = bits.Sub64(pLimbs[4], x[4], b)
	z[5], _ = bits.Sub64(pLimbs[5], x[5], b)
}

func (x *fe) isZero() bool {
	return x[0]|x[1]|x[2]|x[3]|x[4]|x[5] == 0
}

func (x *fe) equal(y *fe) bool { return *x == *y }

func (x *fe) isOne() bool { return *x == feR }

// feExp sets z = x^e for a little-endian limb exponent (square-and-multiply,
// not constant time — acceptable: exponents here are public constants).
//
//spin:vartime
func feExp(z, x *fe, e []uint64) {
	out := feR // 1 in Montgomery form
	base := *x
	started := false
	for i := len(e) - 1; i >= 0; i-- {
		for b := 63; b >= 0; b-- {
			if started {
				feSquare(&out, &out)
			}
			if e[i]>>uint(b)&1 == 1 {
				if started {
					feMul(&out, &out, &base)
				} else {
					out = base
					started = true
				}
			}
		}
	}
	*z = out
}

// feInv sets z = x⁻¹ = x^{p−2}; z = 0 for x = 0.
func feInv(z, x *fe) {
	feExp(z, x, pMinus2Limbs[:])
}

// feSqrt sets z to a square root of x (z = x^{(p+1)/4}, valid as p ≡ 3 mod
// 4) and reports whether x is a quadratic residue.
func feSqrt(z, x *fe) bool {
	var c, sq fe
	feExp(&c, x, pPlus1Over4Limbs[:])
	feSquare(&sq, &c)
	if !sq.equal(x) {
		return false
	}
	*z = c
	return true
}

// --- conversions ---

// feFromUint64 sets z to the Montgomery form of a small integer.
func feFromUint64(z *fe, v uint64) {
	t := fe{v}
	feMul(z, &t, &feR2)
}

// feFromBytes decodes a 48-byte big-endian value into Montgomery form. The
// value must be < p (callers range-check); no reduction is performed beyond
// the Montgomery conversion.
func feFromBytes(z *fe, b []byte) {
	var t fe
	for i := 0; i < 6; i++ {
		t[i] = binary.BigEndian.Uint64(b[(5-i)*8 : (6-i)*8])
	}
	feMul(z, &t, &feR2)
}

// feToBytes encodes z (Montgomery form) as 48 big-endian bytes.
func feToBytes(b []byte, z *fe) {
	var t fe
	feMul(&t, z, &feRawOne) // out of Montgomery form
	for i := 0; i < 6; i++ {
		binary.BigEndian.PutUint64(b[(5-i)*8:(6-i)*8], t[i])
	}
}

// feValidBytes reports whether the 48-byte big-endian value is < p.
func feValidBytes(b []byte) bool {
	var t fe
	for i := 0; i < 6; i++ {
		t[i] = binary.BigEndian.Uint64(b[(5-i)*8 : (6-i)*8])
	}
	var borrow uint64
	for i := 0; i < 6; i++ {
		_, borrow = bits.Sub64(t[i], pLimbs[i], borrow)
	}
	return borrow != 0 // t − p borrows ⇔ t < p
}

// feReduceWide reduces a 64-byte big-endian value modulo p into Montgomery
// form: v = hi·2^384 + lo ⇒ v·R = lo·R + hi·R·2^384, computed as
// mont(lo, R²) + mont(hi, R³).
func feReduceWide(z *fe, b []byte) {
	if len(b) != 64 {
		panic("bls: feReduceWide wants 64 bytes")
	}
	var limbs [8]uint64
	for i := 0; i < 8; i++ {
		limbs[i] = binary.BigEndian.Uint64(b[(7-i)*8 : (8-i)*8])
	}
	var lo, hi, t fe
	copy(lo[:], limbs[:6])
	hi[0], hi[1] = limbs[6], limbs[7]
	feMul(z, &lo, &feR2) // lo·R mod p (feMul tolerates lo ≥ p)
	feMul(&t, &hi, &feR3)
	feAdd(z, z, &t)
}
