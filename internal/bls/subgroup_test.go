package bls

// Differential tests for the endomorphism-based subgroup membership checks
// against the retained full r-multiplication oracle, across the three
// input classes the checks must separate: genuine subgroup points, points
// on the curve (torsion-carrying) but outside the order-r subgroup, and
// invalid encodings.

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// offSubgroupG1 finds a curve point outside the order-r subgroup by
// try-and-increment over x without cofactor clearing (the overwhelming
// majority of curve points carry h-torsion).
func offSubgroupG1(t *testing.T) G1 {
	x := new(big.Int).Set(big.NewInt(7))
	for i := 0; i < 1000; i++ {
		rhs := fpAdd(fpMul(fpMul(x, x), x), big4)
		y := new(big.Int).Exp(rhs, sqrtExp, pMod)
		if fpMul(y, y).Cmp(rhs) == 0 {
			var fx, fy fe
			feFromBig(&fx, x)
			feFromBig(&fy, y)
			p := g1FromAffine(fx, fy)
			if p.OnCurve() && !p.inSubgroupNaive() {
				return p
			}
		}
		x.Add(x, big.NewInt(1))
	}
	t.Fatal("no off-subgroup G1 point found")
	return G1{}
}

// offSubgroupG2 finds a twist point outside the order-r subgroup: a random
// x whose curve equation has a root lands in E'(Fp2), whose cofactor is
// ~2^381, so the point is off-subgroup with overwhelming probability.
func offSubgroupG2(t *testing.T) G2 {
	for i := 0; i < 1000; i++ {
		x := randFe2(t)
		var rhs, y fe2
		rhs.square(&x)
		rhs.mul(&rhs, &x)
		rhs.add(&rhs, &fe2B)
		if !fe2Sqrt(&y, &rhs) {
			continue
		}
		p := g2FromAffine(x, y)
		if p.OnCurve() && !p.inSubgroupNaive() {
			return p
		}
	}
	t.Fatal("no off-subgroup G2 point found")
	return G2{}
}

func TestG1SubgroupEndoMatchesNaive(t *testing.T) {
	// Genuine subgroup points, including the identity and the generator.
	cases := []G1{g1Infinity(), G1Generator()}
	for i := 0; i < 16; i++ {
		cases = append(cases, G1Generator().Mul(randScalar(t)))
	}
	for i, p := range cases {
		if !p.inSubgroupEndo() || !p.inSubgroupNaive() {
			t.Fatalf("case %d: subgroup point rejected (endo=%v naive=%v)",
				i, p.inSubgroupEndo(), p.inSubgroupNaive())
		}
	}
	// Torsion-carrying curve points must be rejected by both. Walk a few
	// multiples: every multiple of an off-subgroup point that is not in
	// the subgroup must keep failing, and both checks must keep agreeing.
	q := offSubgroupG1(t)
	for i := 1; i < 8; i++ {
		m := q.mulRaw(big.NewInt(int64(i)))
		endo, naive := m.inSubgroupEndo(), m.inSubgroupNaive()
		if endo != naive {
			t.Fatalf("×%d: endo=%v naive=%v disagree", i, endo, naive)
		}
	}
	if q.inSubgroupEndo() {
		t.Fatal("off-subgroup G1 point passed the endomorphism check")
	}
}

func TestG2SubgroupPsiMatchesNaive(t *testing.T) {
	cases := []G2{g2Infinity(), G2Generator()}
	for i := 0; i < 16; i++ {
		cases = append(cases, G2Generator().Mul(randScalar(t)))
	}
	for i, p := range cases {
		if !p.inSubgroupPsi() || !p.inSubgroupNaive() {
			t.Fatalf("case %d: subgroup point rejected (psi=%v naive=%v)",
				i, p.inSubgroupPsi(), p.inSubgroupNaive())
		}
	}
	q := offSubgroupG2(t)
	for i := 1; i < 8; i++ {
		m := q.mulRaw(big.NewInt(int64(i)))
		psi, naive := m.inSubgroupPsi(), m.inSubgroupNaive()
		if psi != naive {
			t.Fatalf("×%d: psi=%v naive=%v disagree", i, psi, naive)
		}
	}
	if q.inSubgroupPsi() {
		t.Fatal("off-subgroup G2 point passed the ψ check")
	}
}

// TestFromBytesSubgroupFuzz mutates valid encodings and checks that the
// parsers (now running the endomorphism checks) accept exactly the inputs
// the naive oracle accepts.
func TestFromBytesSubgroupFuzz(t *testing.T) {
	g1 := G1Generator().Mul(randScalar(t)).Bytes()
	g2 := G2Generator().Mul(randScalar(t)).Bytes()
	buf := make([]byte, len(g2))
	for i := 0; i < 64; i++ {
		// G1: flip a random byte of a valid encoding.
		copy(buf[:len(g1)], g1)
		idx := 1 + i%(len(g1)-1)
		buf[idx] ^= byte(1 << (i % 8))
		p, err := G1FromBytes(buf[:len(g1)])
		if err == nil && !p.inSubgroupNaive() {
			t.Fatal("G1FromBytes accepted a point the naive check rejects")
		}
		// G2 likewise.
		copy(buf, g2)
		idx = 1 + i%(len(g2)-1)
		buf[idx] ^= byte(1 << (i % 8))
		q, err := G2FromBytes(buf)
		if err == nil && !q.inSubgroupNaive() {
			t.Fatal("G2FromBytes accepted a point the naive check rejects")
		}
	}
	// Off-subgroup points serialized through Bytes must be rejected by
	// the parsers outright.
	if _, err := G1FromBytes(offSubgroupG1(t).Bytes()); err == nil {
		t.Fatal("G1FromBytes accepted an off-subgroup encoding")
	}
	if _, err := G2FromBytes(offSubgroupG2(t).Bytes()); err == nil {
		t.Fatal("G2FromBytes accepted an off-subgroup encoding")
	}
	if _, err := G2FromCompressedBytes(offSubgroupG2(t).BytesCompressed()); err == nil {
		t.Fatal("G2FromCompressedBytes accepted an off-subgroup encoding")
	}
	// Invalid encodings stay invalid.
	bad := make([]byte, G2Size)
	bad[0] = 0x07
	if _, err := G2FromBytes(bad); err == nil {
		t.Fatal("bad tag accepted")
	}
	over := G2Generator().Bytes()
	copy(over[1:], pMod.FillBytes(make([]byte, fpSize))) // coordinate = p
	if _, err := G2FromBytes(over); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
}

func randG2Bytes(b *testing.B) []byte {
	k, err := rand.Int(rand.Reader, rOrder)
	if err != nil {
		b.Fatal(err)
	}
	return G2Generator().Mul(k).Bytes()
}

func BenchmarkG1FromBytes(b *testing.B) {
	enc := G1Generator().Mul(randScalar(b)).Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := G1FromBytes(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG2FromBytes(b *testing.B) {
	enc := randG2Bytes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := G2FromBytes(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG2FromCompressedBytes(b *testing.B) {
	k, _ := rand.Int(rand.Reader, rOrder)
	enc := G2Generator().Mul(k).BytesCompressed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := G2FromCompressedBytes(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// The two membership checks in isolation: the "subgroup check ≥ 3×"
// acceptance numbers come from this pair (and its G1 sibling).
func BenchmarkG2SubgroupEndo(b *testing.B) {
	p := G2Generator().Mul(randScalar(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.inSubgroupPsi() {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkG2SubgroupNaive(b *testing.B) {
	p := G2Generator().Mul(randScalar(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.inSubgroupNaive() {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkG1SubgroupEndo(b *testing.B) {
	p := G1Generator().Mul(randScalar(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.inSubgroupEndo() {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkG1SubgroupNaive(b *testing.B) {
	p := G1Generator().Mul(randScalar(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.inSubgroupNaive() {
			b.Fatal("rejected")
		}
	}
}
