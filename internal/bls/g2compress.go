package bls

// g2compress.go implements the IETF/zcash 96-byte compressed encoding of G2
// points: x = x0 + x1·u is serialized as x1 ‖ x0 (48 big-endian bytes
// each), with three flag bits folded into the top of the first byte —
// 0x80 "compressed", 0x40 "infinity", 0x20 "y is the lexicographically
// larger root". Decompression solves y² = x³ + 4(u+1) with an Fp2 square
// root (p ≡ 3 mod 4) and picks the root matching the sign flag.
//
// The legacy uncompressed 193-byte format (curve.go) is unchanged; both
// parse, so rosters written by older deployments stay readable while new
// ones ship at roughly half the bytes.

import (
	"errors"
	"fmt"
)

// G2CompressedSize is the encoded size of a compressed G2 point.
const G2CompressedSize = 2 * fpSize

// Flag bits of the zcash point-serialization format.
const (
	g2FlagCompressed = 0x80
	g2FlagInfinity   = 0x40
	g2FlagLargestY   = 0x20
)

// feRawGreaterHalf reports whether x (taken out of Montgomery form) exceeds
// (p−1)/2 — i.e. x is the "negative" (lexicographically larger) of the pair
// {x, −x}.
func feRawGreaterHalf(x *fe) bool {
	var t fe
	feMul(&t, x, &feRawOne) // out of Montgomery form
	for i := 5; i >= 0; i-- {
		if t[i] != pMinus1Over2[i] {
			return t[i] > pMinus1Over2[i]
		}
	}
	return false // exactly (p−1)/2 is the smaller root's maximum
}

// fe2LexLargest reports whether y is the lexicographically larger of
// {y, −y}: the c1 coordinate decides, with ties broken by c0 (the zcash
// ordering for Fp2).
func fe2LexLargest(y *fe2) bool {
	if !y.c1.isZero() {
		return feRawGreaterHalf(&y.c1)
	}
	return feRawGreaterHalf(&y.c0)
}

// fe2Sqrt sets z to a square root of x and reports whether one exists,
// using the p ≡ 3 (mod 4) two-exponentiation algorithm: with
// a1 = x^((p−3)/4), the candidate is either i·a1·x (when x^((p−1)/2) = −1)
// or (1 + x^((p−1)/2))^((p−1)/2)·a1·x. z must not alias x.
func fe2Sqrt(z, x *fe2) bool {
	if x.isZero() {
		z.setZero()
		return true
	}
	var a1, alpha, x0, t fe2
	a1.exp(x, pMinus3Over4[:])
	alpha.square(&a1)
	alpha.mul(&alpha, x) // x^((p−1)/2), the Euler criterion value
	x0.mul(&a1, x)       // x^((p+1)/4)

	var negOne fe2
	negOne.setOne()
	negOne.neg(&negOne)
	if alpha.equal(&negOne) {
		// z = i·x0 = (−x0.c1) + x0.c0·u.
		feNeg(&z.c0, &x0.c1)
		z.c1 = x0.c0
	} else {
		var one fe2
		one.setOne()
		alpha.add(&alpha, &one)
		alpha.exp(&alpha, pMinus1Over2[:])
		z.mul(&alpha, &x0)
	}
	t.square(z)
	return t.equal(x)
}

// compressAffine encodes an affine (or infinity) point; the shared tail of
// the single and batch serialization paths.
func compressAffine(ax, ay *fe2, inf bool) []byte {
	out := make([]byte, G2CompressedSize)
	if inf {
		out[0] = g2FlagCompressed | g2FlagInfinity
		return out
	}
	feToBytes(out[:fpSize], &ax.c1)
	feToBytes(out[fpSize:], &ax.c0)
	out[0] |= g2FlagCompressed
	if fe2LexLargest(ay) {
		out[0] |= g2FlagLargestY
	}
	return out
}

// BytesCompressed encodes the point in the 96-byte zcash format.
func (p G2) BytesCompressed() []byte {
	ax, ay, inf := p.affine()
	return compressAffine(&ax, &ay, inf)
}

// G2BatchBytesCompressed compresses a whole roster with one shared field
// inversion: the points are batch-normalized (msm.go) before the per-point
// encoding, so serializing n points costs one feInv instead of n.
func G2BatchBytesCompressed(ps []G2) [][]byte {
	work := make([]G2, len(ps))
	copy(work, ps)
	g2NormalizeBatch(work)
	out := make([][]byte, len(work))
	for i := range work {
		out[i] = compressAffine(&work[i].x, &work[i].y, work[i].IsInfinity())
	}
	return out
}

// G2FromCompressedBytes decodes a compressed point, enforcing canonical
// flags plus curve and subgroup membership (the ψ endomorphism check).
func G2FromCompressedBytes(b []byte) (G2, error) {
	p, err := g2Decompress(b)
	if err != nil {
		return G2{}, err
	}
	if !p.inSubgroupPsi() {
		return G2{}, errors.New("bls: G2 point not in subgroup")
	}
	return p, nil
}

// g2Decompress decodes the zcash format onto the twist without the
// subgroup check — split out so benchmarks can price the membership test
// separately from the square root.
func g2Decompress(b []byte) (G2, error) {
	if len(b) != G2CompressedSize {
		return G2{}, fmt.Errorf("bls: compressed G2 encoding must be %d bytes, got %d",
			G2CompressedSize, len(b))
	}
	if b[0]&g2FlagCompressed == 0 {
		return G2{}, errors.New("bls: compression flag not set")
	}
	largest := b[0]&g2FlagLargestY != 0
	c1raw := append([]byte(nil), b[:fpSize]...)
	c1raw[0] &^= g2FlagCompressed | g2FlagInfinity | g2FlagLargestY
	if b[0]&g2FlagInfinity != 0 {
		if largest {
			return G2{}, errors.New("bls: infinity with sign flag set")
		}
		for _, v := range c1raw {
			if v != 0 {
				return G2{}, errors.New("bls: non-zero infinity encoding")
			}
		}
		for _, v := range b[fpSize:] {
			if v != 0 {
				return G2{}, errors.New("bls: non-zero infinity encoding")
			}
		}
		return g2Infinity(), nil
	}
	if !feValidBytes(c1raw) || !feValidBytes(b[fpSize:]) {
		return G2{}, errors.New("bls: G2 coordinate out of range")
	}
	var x fe2
	feFromBytes(&x.c1, c1raw)
	feFromBytes(&x.c0, b[fpSize:])

	// y² = x³ + 4(u+1) on the twist.
	var rhs, y fe2
	rhs.square(&x)
	rhs.mul(&rhs, &x)
	rhs.add(&rhs, &fe2B)
	if !fe2Sqrt(&y, &rhs) {
		return G2{}, errors.New("bls: compressed x not on curve")
	}
	if fe2LexLargest(&y) != largest {
		y.neg(&y)
	}
	// The successful square root already certifies the curve equation;
	// the caller applies the subgroup check.
	return g2FromAffine(x, y), nil
}
