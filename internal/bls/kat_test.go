package bls

// pairingKAT is the pinned hex serialization of e(G1, G2) in this
// package's GT byte format (12 × 48-byte big-endian Fp coefficients in
// tower order a0.b0.c0 … a1.b2.c1). It is the value of the optimal-ate
// pairing raised to 3·(p⁴−p²+1)/r, cross-validated at generation time
// against the independent legacy math/big engine
// (TestPairingMatchesLegacyOracle) and the bilinearity suite. The leading
// coefficient (0x1250ebd871fc0a92…) matches the e(g1, g2) vector published
// by mainstream BLS12-381 libraries, which use the same cubed hard part.
const pairingKAT = "1250ebd871fc0a92a7b2d83168d0d727272d441befa15c503dd8e90ce98db3e7b6d194f60839c508a84305aaca1789b6" +
	"089a1c5b46e5110b86750ec6a532348868a84045483c92b7af5af689452eafabf1a8943e50439f1d59882a98eaa0170f" +
	"1368bb445c7c2d209703f239689ce34c0378a68e72a6b3b216da0e22a5031b54ddff57309396b38c881c4c849ec23e87" +
	"193502b86edb8857c273fa075a50512937e0794e1e65a7617c90d8bd66065b1fffe51d7a579973b1315021ec3c19934f" +
	"01b2f522473d171391125ba84dc4007cfbf2f8da752f7c74185203fcca589ac719c34dffbbaad8431dad1c1fb597aaa5" +
	"018107154f25a764bd3c79937a45b84546da634b8f6be14a8061e55cceba478b23f7dacaa35c8ca78beae9624045b4b6" +
	"19f26337d205fb469cd6bd15c3d5a04dc88784fbb3d0b2dbdea54d43b2b73f2cbb12d58386a8703e0f948226e47ee89d" +
	"06fba23eb7c5af0d9f80940ca771b6ffd5857baaf222eb95a7d2809d61bfe02e1bfd1b68ff02f0b8102ae1c2d5d5ab1a" +
	"11b8b424cd48bf38fcef68083b0b0ec5c81a93b330ee1a677d0d15ff7b984e8978ef48881e32fac91b93b47333e2ba57" +
	"03350f55a7aefcd3c31b4fcb6ce5771cc6a0e9786ab5973320c806ad360829107ba810c5a09ffdd9be2291a0c25a99a2" +
	"04c581234d086a9902249b64728ffd21a189e87935a954051c7cdba7b3872629a4fafc05066245cb9108f0242d0fe3ef" +
	"0f41e58663bf08cf068672cbd01a7ec73baca4d72ca93544deff686bfd6df543d48eaa24afe47e1efde449383b676631"
