package bls

// Differential tests for the multi-point layer: batch inversion and
// normalization against their one-at-a-time equivalents, the batch-affine
// summation trees against chained Add, and Pippenger multi-exponentiation
// against the naive Σ kᵢ·Pᵢ oracle across the required size ladder
// (including zero scalars, repeated points, and infinities).

import (
	"bytes"
	"math/big"
	"testing"
)

func TestFeBatchInv(t *testing.T) {
	vals := make([]fe, 17)
	want := make([]fe, len(vals))
	for i := range vals {
		if i%5 == 3 {
			continue // leave a few zeros in the batch
		}
		feFromBig(&vals[i], randFeBig(t))
	}
	for i := range vals {
		feInv(&want[i], &vals[i])
	}
	feBatchInv(vals)
	for i := range vals {
		if !vals[i].equal(&want[i]) {
			t.Fatalf("batch inverse %d mismatch", i)
		}
	}
}

func TestFe2BatchInv(t *testing.T) {
	vals := make([]fe2, 17)
	want := make([]fe2, len(vals))
	for i := range vals {
		if i%5 == 3 {
			continue
		}
		vals[i] = randFe2(t)
	}
	for i := range vals {
		want[i].inv(&vals[i])
	}
	fe2BatchInv(vals)
	for i := range vals {
		if !vals[i].equal(&want[i]) {
			t.Fatalf("batch inverse %d mismatch", i)
		}
	}
}

func TestNormalizeBatch(t *testing.T) {
	g1s := make([]G1, 9)
	g2s := make([]G2, 9)
	for i := range g1s {
		if i == 4 {
			continue // an infinity mid-batch
		}
		k := randScalar(t)
		g1s[i] = G1Generator().Mul(k)
		g2s[i] = G2Generator().Mul(k)
	}
	want1 := make([][]byte, len(g1s))
	want2 := make([][]byte, len(g2s))
	for i := range g1s {
		want1[i] = g1s[i].Bytes()
		want2[i] = g2s[i].Bytes()
	}
	g1NormalizeBatch(g1s)
	g2NormalizeBatch(g2s)
	for i := range g1s {
		if !g1s[i].IsInfinity() && !g1s[i].z.equal(&feR) {
			t.Fatalf("G1 %d not normalized", i)
		}
		if !g2s[i].IsInfinity() && !g2s[i].z.isOne() {
			t.Fatalf("G2 %d not normalized", i)
		}
		if !bytes.Equal(g1s[i].Bytes(), want1[i]) || !bytes.Equal(g2s[i].Bytes(), want2[i]) {
			t.Fatalf("normalization changed point %d", i)
		}
	}
}

// sumSizes is the required differential ladder.
var sumSizes = []int{0, 1, 2, 17, 256, 1024}

func TestG2SumMatchesNaive(t *testing.T) {
	for _, n := range sumSizes {
		ps := make([]G2, n)
		acc := g2Infinity()
		base := G2Generator()
		for i := range ps {
			switch {
			case i%7 == 3:
				ps[i] = g2Infinity()
			case i%7 == 5 && i > 0:
				ps[i] = ps[i-1] // repeated point → doubling inside the tree
			case i%7 == 6 && i > 0:
				ps[i] = ps[i-1].Neg() // cancellation inside the tree
			default:
				ps[i] = base.Mul(big.NewInt(int64(i*i + 1)))
			}
			acc = acc.Add(ps[i])
		}
		if got := g2Sum(ps); !got.Equal(acc) {
			t.Fatalf("n=%d: batch-affine G2 sum mismatch", n)
		}
	}
}

func TestG1SumMatchesNaive(t *testing.T) {
	for _, n := range sumSizes {
		ps := make([]G1, n)
		acc := g1Infinity()
		base := G1Generator()
		for i := range ps {
			switch {
			case i%7 == 3:
				ps[i] = g1Infinity()
			case i%7 == 5 && i > 0:
				ps[i] = ps[i-1]
			case i%7 == 6 && i > 0:
				ps[i] = ps[i-1].Neg()
			default:
				ps[i] = base.Mul(big.NewInt(int64(i*i + 1)))
			}
			acc = acc.Add(ps[i])
		}
		if got := g1Sum(ps); !got.Equal(acc) {
			t.Fatalf("n=%d: batch-affine G1 sum mismatch", n)
		}
	}
}

func TestG2MultiExpMatchesNaive(t *testing.T) {
	for _, n := range sumSizes {
		ps := make([]G2, n)
		ks := make([]*big.Int, n)
		acc := g2Infinity()
		for i := range ps {
			switch {
			case i%11 == 4:
				ps[i] = g2Infinity()
				ks[i] = randScalar(t)
			case i%11 == 7:
				ps[i] = G2Generator().Mul(big.NewInt(int64(i + 2)))
				ks[i] = big.NewInt(0) // zero scalar
			case i%11 == 9 && i > 0:
				ps[i] = ps[i-1] // repeated point
				ks[i] = big.NewInt(int64(i))
			default:
				ps[i] = G2Generator().Mul(big.NewInt(int64(3*i + 1)))
				ks[i] = randScalar(t)
			}
			acc = acc.Add(ps[i].Mul(ks[i]))
		}
		got, err := G2MultiExp(ps, ks)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(acc) {
			t.Fatalf("n=%d: G2 multi-exp mismatch", n)
		}
	}
	if _, err := G2MultiExp(make([]G2, 2), make([]*big.Int, 3)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestG1MultiExpMatchesNaive(t *testing.T) {
	for _, n := range sumSizes {
		ps := make([]G1, n)
		ks := make([]*big.Int, n)
		acc := g1Infinity()
		for i := range ps {
			switch {
			case i%11 == 4:
				ps[i] = g1Infinity()
				ks[i] = randScalar(t)
			case i%11 == 7:
				ps[i] = G1Generator().Mul(big.NewInt(int64(i + 2)))
				ks[i] = big.NewInt(0)
			case i%11 == 9 && i > 0:
				ps[i] = ps[i-1]
				ks[i] = big.NewInt(int64(i))
			default:
				ps[i] = G1Generator().Mul(big.NewInt(int64(3*i + 1)))
				ks[i] = randScalar(t)
			}
			acc = acc.Add(ps[i].Mul(ks[i]))
		}
		got, err := G1MultiExp(ps, ks)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(acc) {
			t.Fatalf("n=%d: G1 multi-exp mismatch", n)
		}
	}
	if _, err := G1MultiExp(make([]G1, 3), make([]*big.Int, 2)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestAggregatePublicKeysMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 17, 256} {
		pks := make([]*PublicKey, n)
		for i := range pks {
			pks[i] = &PublicKey{p: G2Generator().Mul(big.NewInt(int64(i + 1)))}
		}
		got, err := AggregatePublicKeys(pks)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(aggregatePublicKeysNaive(pks)) {
			t.Fatalf("n=%d: aggregate key mismatch", n)
		}
	}
}

func TestG2BatchBytesCompressed(t *testing.T) {
	ps := make([]G2, 9)
	for i := range ps {
		if i == 2 {
			continue // infinity
		}
		ps[i] = G2Generator().Mul(randScalar(t))
	}
	snapshot := make([]G2, len(ps))
	copy(snapshot, ps)
	got := G2BatchBytesCompressed(ps)
	for i := range ps {
		if !bytes.Equal(got[i], snapshot[i].BytesCompressed()) {
			t.Fatalf("batch compression %d differs from single-point path", i)
		}
		if !ps[i].Equal(snapshot[i]) {
			t.Fatalf("batch compression mutated input %d", i)
		}
		rt, err := G2FromCompressedBytes(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Equal(snapshot[i]) {
			t.Fatalf("batch compression round-trip %d failed", i)
		}
	}
}

// parsedRoster builds n distinct parsed public keys the way the provider
// sees them (deserialized, hence affine) — the realistic input shape for
// per-epoch roster aggregation.
func parsedRoster(b *testing.B, n int) []*PublicKey {
	pks := make([]*PublicKey, n)
	p := G2Generator()
	step := G2Generator().Mul(big.NewInt(0x9e3779b9))
	for i := range pks {
		p = p.Add(step)
		pk, err := PublicKeyFromBytes(G2{x: p.x, y: p.y, z: p.z}.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		pks[i] = pk
	}
	return pks
}

func BenchmarkAggregatePublicKeys1024(b *testing.B) {
	pks := parsedRoster(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregatePublicKeys(pks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregatePublicKeysNaive1024(b *testing.B) {
	pks := parsedRoster(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = aggregatePublicKeysNaive(pks)
	}
}

// The full per-epoch roster path — parse every key off the wire, then
// aggregate — is what fleet-scale verification actually pays. The roster
// is in the seed's uncompressed format (the baseline wire encoding); the
// new path runs ψ subgroup checks and the batch-affine sum, the naive
// baseline the retained full-r-multiplication checks and the Jacobian
// summation chain.
func uncompressedRoster(b *testing.B, n int) [][]byte {
	out := make([][]byte, n)
	p := G2Generator()
	step := G2Generator().Mul(big.NewInt(0x9e3779b9))
	for i := range out {
		p = p.Add(step)
		out[i] = p.Bytes()
	}
	return out
}

func BenchmarkRosterParseAggregate1024(b *testing.B) {
	enc := uncompressedRoster(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pks := make([]*PublicKey, len(enc))
		for j, e := range enc {
			pk, err := PublicKeyFromBytes(e)
			if err != nil {
				b.Fatal(err)
			}
			pks[j] = pk
		}
		if _, err := AggregatePublicKeys(pks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRosterParseAggregateNaive1024(b *testing.B) {
	enc := uncompressedRoster(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pks := make([]*PublicKey, len(enc))
		for j, e := range enc {
			p, err := g2DecodeUncompressed(e)
			if err != nil {
				b.Fatal(err)
			}
			if !p.inSubgroupNaive() {
				b.Fatal("rejected")
			}
			pks[j] = &PublicKey{p: p}
		}
		_ = aggregatePublicKeysNaive(pks)
	}
}

func BenchmarkG2MultiExp(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(big.NewInt(int64(n)).String(), func(b *testing.B) {
			ps := make([]G2, n)
			ks := make([]*big.Int, n)
			for i := range ps {
				ps[i] = G2Generator().Mul(big.NewInt(int64(2*i + 1)))
				ks[i] = randScalar(b)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := G2MultiExp(ps, ks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkG1MultiExp1024(b *testing.B) {
	n := 1024
	ps := make([]G1, n)
	ks := make([]*big.Int, n)
	for i := range ps {
		ps[i] = G1Generator().Mul(big.NewInt(int64(2*i + 1)))
		ks[i] = randScalar(b)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := G1MultiExp(ps, ks); err != nil {
			b.Fatal(err)
		}
	}
}
