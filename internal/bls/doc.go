// Package bls implements the BLS12-381 pairing-friendly curve and BLS
// multisignatures with proof-of-possession — the aggregate signature scheme
// the distributed-log protocol uses so that each HSM can check one
// constant-size signature instead of N individual ones (§6.2, [16], [14]).
//
// The implementation is performance-oriented:
//
//   - Fp runs on a fixed 6×uint64 Montgomery representation (fp_limb.go)
//     with math/bits carry chains; feMul/feSquare are fully unrolled
//     no-carry CIOS straight-line code (fp_unrolled.go, with the loop
//     versions retained as differential oracles); math/big never appears
//     in field, curve, or pairing arithmetic (only in the
//     scalar-exponent API and in test oracles).
//   - The extension tower Fp2/Fp6/Fp12 (fp2.go, fp6.go, fp12.go) uses
//     Karatsuba multiplication, dedicated squarings (complex squaring in
//     Fp2/Fp12, CH-SQR3 in Fp6), sparse mulBy014/mulBy01 products, and
//     Frobenius maps from coefficients derived at init.
//   - G1/G2 use Jacobian projective coordinates (curve.go): no per-step
//     inversion in Add or scalar multiplication, plus mixed additions
//     (7M+4S) for affine operands and a dedicated limb squaring
//     (fp_limb.go) under every doubling.
//   - The Miller loop runs on the twist with projective
//     Costello–Lange–Naehrig steps and sparse line multiplications; the
//     final exponentiation is Frobenius-based with cyclotomic squarings
//     (Hayashida–Hayasaka–Teruya hard part). PairingCheck is a true
//     multi-pairing: n pairs cost n Miller loops and one shared final
//     exponentiation.
//
// # Scalar multiplication: the endomorphism layer
//
// Variable-base multiplications run on the BLS12-381 endomorphisms rather
// than plain double-and-add, all driven by a shared width-w NAF recoding
// (wnaf.go) with odd-multiple tables:
//
//   - G1.Mul (glv.go): GLV — the cube-root endomorphism φ(x,y) = (βx, y)
//     acts as multiplication by λ = z²−1 on the subgroup, so a 255-bit
//     scalar splits into two signed ~128-bit halves (Babai rounding
//     against the lattice basis (z²−1, −1), (1, z²)) evaluated over one
//     shared half-length doubling chain.
//   - G2.Mul (endomorphism.go): the ψ (untwist–Frobenius–twist)
//     endomorphism acts as multiplication by the curve parameter z, so the
//     scalar splits 4-way, k ≡ a₀ + a₁z + a₂z² + a₃z³, into four signed
//     ~65-bit quarter-scalars over one quarter-length chain.
//   - Fixed-base generator multiplications (fixedbase.go) walk lazily
//     built 4-bit window tables — at most 64 mixed additions, no
//     doublings. Table memory: 64 windows × 15 affine points, 90 KiB for
//     G1 and 180 KiB for G2, built on first use with one batched
//     inversion each. Key generation runs on these tables.
//   - Subgroup membership (the hot half of G1FromBytes/G2FromBytes) uses
//     the endomorphism equations instead of a full 255-bit
//     r-multiplication: [z²]φ(P) = −P on G1 and ψ(P) = [z]P on G2
//     (eprint 2022/352), each a one- or two-word |z| NAF multiplication.
//
// Multi-point operations (msm.go) share field inversions: batch
// Jacobian→affine normalization via Montgomery's trick, pairwise
// batch-affine summation trees behind AggregateSignatures and
// AggregatePublicKeys (each round of independent affine additions costs
// one feInv total), Pippenger bucket-method G1MultiExp/G2MultiExp, and
// one-inversion roster serialization (G2BatchBytesCompressed). The naive
// double-and-add (mulRaw) and full r-multiplication membership checks are
// retained as differential oracles.
//
// # Hashing to G1
//
// Messages are hashed to the curve per RFC 9380 (hash2curve.go): the
// BLS12381G1_XMD:SHA-256_SSWU_RO_ suite — expand_message_xmd, two-element
// hash_to_field, constant-time simplified SWU onto the 11-isogenous curve
// E' (sswu.go), the degree-11 isogeny back to E (isogeny.go), and
// effective-cofactor clearing. The hash layer is branch-free on the data
// being hashed: selections are CMOV, negations are masked, exponentiations
// use public exponents. The pre-standard try-and-increment hash remains
// available as HashLegacy (curve.go) for wire compatibility with logs
// signed by existing deployments; it is pinned byte for byte by
// seed_compat_test.go, and fleets negotiate a common HashMode through the
// transport's fleet-config handshake.
//
// Wire formats and (in legacy mode) every signature byte are identical to
// the original math/big simulator implementation, which is retained in
// legacy_test.go as a differential oracle; see seed_compat_test.go for the
// pinned cross-version vectors. Outside the hash layer the field core
// still takes data-dependent conditional subtractions (feMul/feReduce) —
// acceptable while all signed material (log digests) is public; the full
// constant-time audit is tracked in ROADMAP.md.
package bls
