// Package bls implements the BLS12-381 pairing-friendly curve and BLS
// multisignatures with proof-of-possession — the aggregate signature scheme
// the distributed-log protocol uses so that each HSM can check one
// constant-size signature instead of N individual ones (§6.2, [16], [14]).
//
// The implementation is performance-oriented:
//
//   - Fp runs on a fixed 6×uint64 Montgomery representation (fp_limb.go)
//     with math/bits carry chains; math/big never appears in field,
//     curve, or pairing arithmetic (only in the scalar-exponent API and
//     in test oracles).
//   - The extension tower Fp2/Fp6/Fp12 (fp2.go, fp6.go, fp12.go) uses
//     Karatsuba multiplication, dedicated squarings (complex squaring in
//     Fp2/Fp12, CH-SQR3 in Fp6), sparse mulBy014/mulBy01 products, and
//     Frobenius maps from coefficients derived at init.
//   - G1/G2 use Jacobian projective coordinates (curve.go): no per-step
//     inversion in Add or scalar multiplication.
//   - The Miller loop runs on the twist with projective
//     Costello–Lange–Naehrig steps and sparse line multiplications; the
//     final exponentiation is Frobenius-based with cyclotomic squarings
//     (Hayashida–Hayasaka–Teruya hard part). PairingCheck is a true
//     multi-pairing: n pairs cost n Miller loops and one shared final
//     exponentiation.
//
// # Hashing to G1
//
// Messages are hashed to the curve per RFC 9380 (hash2curve.go): the
// BLS12381G1_XMD:SHA-256_SSWU_RO_ suite — expand_message_xmd, two-element
// hash_to_field, constant-time simplified SWU onto the 11-isogenous curve
// E' (sswu.go), the degree-11 isogeny back to E (isogeny.go), and
// effective-cofactor clearing. The hash layer is branch-free on the data
// being hashed: selections are CMOV, negations are masked, exponentiations
// use public exponents. The pre-standard try-and-increment hash remains
// available as HashLegacy (curve.go) for wire compatibility with logs
// signed by existing deployments; it is pinned byte for byte by
// seed_compat_test.go, and fleets negotiate a common HashMode through the
// transport's fleet-config handshake.
//
// Wire formats and (in legacy mode) every signature byte are identical to
// the original math/big simulator implementation, which is retained in
// legacy_test.go as a differential oracle; see seed_compat_test.go for the
// pinned cross-version vectors. Outside the hash layer the field core
// still takes data-dependent conditional subtractions (feMul/feReduce) —
// acceptable while all signed material (log digests) is public; the full
// constant-time audit is tracked in ROADMAP.md.
package bls
