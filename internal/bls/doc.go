// Package bls implements the BLS12-381 pairing-friendly curve and BLS
// multisignatures with proof-of-possession — the aggregate signature scheme
// the distributed-log protocol uses so that each HSM can check one
// constant-size signature instead of N individual ones (§6.2, [16], [14]).
//
// The implementation is performance-oriented:
//
//   - Fp runs on a fixed 6×uint64 Montgomery representation (fp_limb.go)
//     with math/bits carry chains; math/big never appears in field,
//     curve, or pairing arithmetic (only in the scalar-exponent API and
//     in test oracles).
//   - The extension tower Fp2/Fp6/Fp12 (fp2.go, fp6.go, fp12.go) uses
//     Karatsuba multiplication, dedicated squarings (complex squaring in
//     Fp2/Fp12, CH-SQR3 in Fp6), sparse mulBy014/mulBy01 products, and
//     Frobenius maps from coefficients derived at init.
//   - G1/G2 use Jacobian projective coordinates (curve.go): no per-step
//     inversion in Add or scalar multiplication.
//   - The Miller loop runs on the twist with projective
//     Costello–Lange–Naehrig steps and sparse line multiplications; the
//     final exponentiation is Frobenius-based with cyclotomic squarings
//     (Hayashida–Hayasaka–Teruya hard part). PairingCheck is a true
//     multi-pairing: n pairs cost n Miller loops and one shared final
//     exponentiation.
//
// Wire formats, hashing (try-and-increment HashToG1), and every signature
// byte are identical to the original math/big simulator implementation,
// which is retained in legacy_test.go as a differential oracle; see
// seed_compat_test.go for the pinned cross-version vectors. The code is
// not constant time — acceptable for the simulator, where all signed
// material (log digests) is public.
package bls
