package bls

// sswu.go implements the constant-time simplified Shallue–van de Woestijne–
// Ulas map (RFC 9380 §6.6.2, straight-line version from Appendix F.2) onto
// E': y² = x³ + A'x + B', the curve 11-isogenous to BLS12-381's E used by
// the BLS12381G1_XMD:SHA-256_SSWU_RO_ suite (E itself has j-invariant 0, so
// SSWU cannot apply directly). No instruction depends on the value being
// hashed: the quadratic-residue split, the sign fix-up, and the exceptional
// tv2 = 0 case are all CMOV/mask selections.

import "math/bits"

// E' parameters from RFC 9380 §8.8.1.
var (
	// sswuA is A' of the 11-isogenous curve.
	sswuA fe
	// sswuB is B' of the 11-isogenous curve.
	sswuB fe
	// sswuZ is the SSWU non-square parameter Z = 11.
	sswuZ fe
	// sswuC2 is sqrt(-Z), the sqrt_ratio_3mod4 constant c2 — derived at
	// init from Z so the only trusted inputs are A', B', and Z itself.
	sswuC2 fe
)

func init() {
	initFieldConstants()
	sswuA = mustFe("00144698a3b8e9433d693a02c96d4982b0ea985383ee66a8d8e8981aefd881ac98936f8da0e0f97f5cf428082d584c1d")
	sswuB = mustFe("12e2908d11688030018b12e8753eee3b2016c1f0f24f4070a0b9c14fcef35ef55a23215a316ceaa5d1cc48e98e172be0")
	feFromUint64(&sswuZ, 11)
	var negZ fe
	feNeg(&negZ, &sswuZ)
	if !feSqrt(&sswuC2, &negZ) {
		panic("bls: -Z is not a square; SSWU constants corrupt")
	}
}

// --- constant-time limb helpers ---
//
// These are the masked primitives the hash-to-curve layer is built from.
// Conditions are uint64 0/1; a condition derived from field data must come
// from one of the mask functions below, never from a comparison branch.

// ctMask expands a 0/1 condition to 0x00…0/0xff…f.
func ctMask(cond uint64) uint64 { return -cond }

// ctNonzero64 returns 1 if v != 0, else 0, without branching.
func ctNonzero64(v uint64) uint64 { return (v | -v) >> 63 }

// feCMov sets z = x when cond = 1 and leaves z unchanged when cond = 0.
func feCMov(z, x *fe, cond uint64) {
	m := ctMask(cond)
	for i := range z {
		z[i] ^= m & (z[i] ^ x[i])
	}
}

// feIsZeroMask returns 1 iff x = 0. Field elements are kept fully reduced
// (every producer outputs a canonical value < p), so the limb comparison is
// a value comparison.
func feIsZeroMask(x *fe) uint64 {
	return 1 ^ ctNonzero64(x[0]|x[1]|x[2]|x[3]|x[4]|x[5])
}

// feEqMask returns 1 iff x = y (canonical representations).
func feEqMask(x, y *fe) uint64 {
	return 1 ^ ctNonzero64((x[0]^y[0])|(x[1]^y[1])|(x[2]^y[2])|(x[3]^y[3])|(x[4]^y[4])|(x[5]^y[5]))
}

// feNegCT sets z = −x without the zero-test branch of feNeg: it computes
// p − x and masks the result to zero when x = 0.
func feNegCT(z, x *fe) {
	zm := ctMask(feIsZeroMask(x))
	var b uint64
	var n fe
	n[0], b = bits.Sub64(pLimbs[0], x[0], 0)
	n[1], b = bits.Sub64(pLimbs[1], x[1], b)
	n[2], b = bits.Sub64(pLimbs[2], x[2], b)
	n[3], b = bits.Sub64(pLimbs[3], x[3], b)
	n[4], b = bits.Sub64(pLimbs[4], x[4], b)
	n[5], _ = bits.Sub64(pLimbs[5], x[5], b) // x < p: no final borrow
	for i := range z {
		z[i] = n[i] &^ zm
	}
}

// feCNeg sets z = −x when cond = 1, z = x when cond = 0.
func feCNeg(z, x *fe, cond uint64) {
	var n fe
	feNegCT(&n, x)
	*z = *x
	feCMov(z, &n, cond)
}

// feSgn0 is sgn0(x) from RFC 9380 §4.1: the parity of the canonical
// (non-Montgomery) representation of x.
func feSgn0(x *fe) uint64 {
	var t fe
	feMul(&t, x, &feRawOne) // out of Montgomery form; fully reduced
	return t[0] & 1
}

// sqrtRatio3mod4 is sqrt_ratio(u, v) optimized for p ≡ 3 (mod 4)
// (RFC 9380 Appendix F.2.1.2): it returns y and isQR = 1 when u/v is
// square with y = sqrt(u/v), else isQR = 0 with y = sqrt(Z·u/v). One
// exponentiation by the public constant (p−3)/4 does all the work.
func sqrtRatio3mod4(u, v *fe) (y fe, isQR uint64) {
	var tv1, tv2, tv3, y1, y2 fe
	feSquare(&tv1, v)       // v²
	feMul(&tv2, u, v)       // u·v
	feMul(&tv1, &tv1, &tv2) // u·v³
	feExp(&y1, &tv1, pMinus3Over4[:])
	feMul(&y1, &y1, &tv2)    // y1 = u·v³·(u·v³)^((p−3)/4) · … = candidate sqrt(u/v)
	feMul(&y2, &y1, &sswuC2) // candidate for the non-residue branch
	feSquare(&tv3, &y1)
	feMul(&tv3, &tv3, v) // y1²·v ?= u decides which candidate is real
	isQR = feEqMask(&tv3, u)
	y = y2
	feCMov(&y, &y1, isQR)
	return y, isQR
}

// mapToCurveSSWU maps a field element to an affine point of E'
// (RFC 9380 Appendix F.2 straight-line simplified SWU). The output is
// never the point at infinity: tv4 = A'·CMOV(Z, −tv2, tv2 ≠ 0) is nonzero
// for every u, so the final division is well defined.
func mapToCurveSSWU(u *fe) (x, y fe) {
	var tv1, tv2, tv3, tv4, tv5, tv6 fe
	feSquare(&tv1, u)
	feMul(&tv1, &tv1, &sswuZ) // tv1 = Z·u²
	feSquare(&tv2, &tv1)
	feAdd(&tv2, &tv2, &tv1) // tv2 = tv1² + tv1
	feAdd(&tv3, &tv2, &feR) // tv3 = tv2 + 1
	feMul(&tv3, &tv3, &sswuB)
	// tv4 = CMOV(Z, −tv2, tv2 ≠ 0) — the tv2 = 0 exceptional case.
	var negTv2 fe
	feNegCT(&negTv2, &tv2)
	tv4 = sswuZ
	feCMov(&tv4, &negTv2, 1^feIsZeroMask(&tv2))
	feMul(&tv4, &tv4, &sswuA)
	feSquare(&tv2, &tv3)
	feSquare(&tv6, &tv4)
	feMul(&tv5, &tv6, &sswuA)
	feAdd(&tv2, &tv2, &tv5)
	feMul(&tv2, &tv2, &tv3)
	feMul(&tv6, &tv6, &tv4)
	feMul(&tv5, &tv6, &sswuB)
	feAdd(&tv2, &tv2, &tv5) // tv2 = g(x1)·tv6 numerator pack
	feMul(&x, &tv1, &tv3)   // x-candidate for the non-square branch
	y1, isGx1Square := sqrtRatio3mod4(&tv2, &tv6)
	feMul(&y, &tv1, u)
	feMul(&y, &y, &y1) // y-candidate for the non-square branch
	feCMov(&x, &tv3, isGx1Square)
	feCMov(&y, &y1, isGx1Square)
	// Fix the sign: sgn0(y) must equal sgn0(u).
	e1 := 1 ^ (feSgn0(u) ^ feSgn0(&y)) // 1 when signs already agree
	feCNeg(&y, &y, 1^e1)
	// x = x/tv4 (Fermat inversion: public exponent, nonzero denominator).
	var inv fe
	feInv(&inv, &tv4)
	feMul(&x, &x, &inv)
	return x, y
}
