package bls

// fp2_ct.go lifts the fp_ct.go masked kernels to Fp2: the same Karatsuba
// multiplication and complex squaring as fp2.go, but with every base-field
// operation a constant-time kernel and no data-dependent branch anywhere.
// These back the constant-time G2 fixed-base comb (g2_ct.go) that key
// generation runs on. All intermediate values stay fully reduced, so
// feMulCT's contract (y < p) holds throughout.

// fe2CMov sets z = x when cond = 1 and leaves z unchanged when cond = 0.
func fe2CMov(z, x *fe2, cond uint64) {
	feCMov(&z.c0, &x.c0, cond)
	feCMov(&z.c1, &x.c1, cond)
}

// fe2IsZeroMask returns 1 iff x = 0, without branching.
func fe2IsZeroMask(x *fe2) uint64 {
	return feIsZeroMask(&x.c0) & feIsZeroMask(&x.c1)
}

func fe2AddCT(z, x, y *fe2) {
	feAddCT(&z.c0, &x.c0, &y.c0)
	feAddCT(&z.c1, &x.c1, &y.c1)
}

func fe2DoubleCT(z, x *fe2) { fe2AddCT(z, x, x) }

func fe2SubCT(z, x, y *fe2) {
	feSubCT(&z.c0, &x.c0, &y.c0)
	feSubCT(&z.c1, &x.c1, &y.c1)
}

// fe2MulCT sets z = x·y by Karatsuba over the masked base kernels: the
// three products and the cross-term recombination match fp2.go's mul
// bit for bit (fp2_ct_test.go proves this differentially).
func fe2MulCT(z, x, y *fe2) {
	var t0, t1, t2, t3 fe
	feMulCT(&t0, &x.c0, &y.c0)
	feMulCT(&t1, &x.c1, &y.c1)
	feAddCT(&t2, &x.c0, &x.c1)
	feAddCT(&t3, &y.c0, &y.c1)
	feSubCT(&z.c0, &t0, &t1)
	feMulCT(&t2, &t2, &t3)
	feSubCT(&t2, &t2, &t0)
	feSubCT(&z.c1, &t2, &t1)
}

// fe2SquareCT sets z = x² by complex squaring on the masked kernels.
func fe2SquareCT(z, x *fe2) {
	var t0, t1, t2 fe
	feAddCT(&t0, &x.c0, &x.c1)
	feSubCT(&t1, &x.c0, &x.c1)
	feDoubleCT(&t2, &x.c0)
	feMulCT(&z.c0, &t0, &t1)
	feMulCT(&z.c1, &t2, &x.c1)
}
