package bls

// Micro-benchmarks for the field tower: the satellite instrumentation that
// makes regressions in mul/square/inv formulas visible per layer.

import "testing"

func BenchmarkFeMul(b *testing.B) {
	x, y := randFe2(b).c0, randFe2(b).c1
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feMul(&z, &x, &y)
	}
}

// BenchmarkFeSquare vs BenchmarkFeMul shows the dedicated-squaring delta
// (the satellite win that compounds under every doubling in the wNAF/GLV/
// MSM paths).
func BenchmarkFeSquare(b *testing.B) {
	x := randFe2(b).c0
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feSquare(&z, &x)
	}
}

// The *Loop variants benchmark the retained looped kernels the unrolled
// straight-line code replaced (fp_unrolled.go); the gap is the PR 7 win.
func BenchmarkFeMulLoop(b *testing.B) {
	x, y := randFe2(b).c0, randFe2(b).c1
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feMulLoop(&z, &x, &y)
	}
}

func BenchmarkFeSquareLoop(b *testing.B) {
	x := randFe2(b).c0
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feSquareLoop(&z, &x)
	}
}

func BenchmarkFeInv(b *testing.B) {
	x := randFe2(b).c0
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feInv(&z, &x)
	}
}

func BenchmarkFp2Mul(b *testing.B) {
	x, y := randFe2(b), randFe2(b)
	var z fe2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.mul(&x, &y)
	}
}

func BenchmarkFp2Square(b *testing.B) {
	x := randFe2(b)
	var z fe2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.square(&x)
	}
}

func BenchmarkFp2Inv(b *testing.B) {
	x := randFe2(b)
	var z fe2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.inv(&x)
	}
}

func BenchmarkFp6Mul(b *testing.B) {
	x, y := randFe6(b), randFe6(b)
	var z fe6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.mul(&x, &y)
	}
}

func BenchmarkFp6Square(b *testing.B) {
	x := randFe6(b)
	var z fe6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.square(&x)
	}
}

func BenchmarkFp6Inv(b *testing.B) {
	x := randFe6(b)
	var z fe6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.inv(&x)
	}
}

func BenchmarkFp12Mul(b *testing.B) {
	x, y := randFe12(b), randFe12(b)
	var z fe12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.mul(&x, &y)
	}
}

func BenchmarkFp12Square(b *testing.B) {
	x := randFe12(b)
	var z fe12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.square(&x)
	}
}

func BenchmarkFp12CyclotomicSquare(b *testing.B) {
	x := randCyclotomic(b)
	var z fe12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.cyclotomicSquare(&x)
	}
}

func BenchmarkFp12Inv(b *testing.B) {
	x := randFe12(b)
	var z fe12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.inv(&x)
	}
}

func BenchmarkFp12MulBy014(b *testing.B) {
	x := randFe12(b)
	c0, c1, c4 := randFe2(b), randFe2(b), randFe2(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.mulBy014(&c0, &c1, &c4)
	}
}
