package client

// context_test.go pins the context semantics of the redesigned service
// API: laggard share requests are cancelled (and their goroutines reaped)
// the moment the threshold is met, a hung HSM cannot outlive a caller's
// deadline, and a crashed recovery resumes from its session token without
// consuming a second attempt. Run with -race.

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"safetypin/internal/protocol"
)

// relayGate wraps a Provider, interposing on RelayRecover: per-position
// delays that honour the caller's context (as a network round trip would)
// and an in-flight counter so tests can observe laggards being reaped.
type relayGate struct {
	Provider
	inflight atomic.Int64
	// delayFor decides how long a given share position stalls; nil → no
	// delay. A delay of -1 hangs until the context is cancelled.
	delayFor func(pos int) time.Duration
}

func (g *relayGate) RelayRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	if g.delayFor != nil {
		if d := g.delayFor(req.SharePos); d != 0 {
			var timer <-chan time.Time
			if d > 0 {
				tm := time.NewTimer(d)
				defer tm.Stop()
				timer = tm.C
			}
			select {
			case <-timer: // nil channel when hung: blocks forever
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return g.Provider.RelayRecover(ctx, req)
}

// waitNoInflight polls until the gate has no in-flight relays.
func waitNoInflight(t *testing.T, g *relayGate, within time.Duration) {
	t.Helper()
	deadline := time.After(within)
	for g.inflight.Load() != 0 {
		select {
		case <-deadline:
			t.Fatalf("%d relays still in flight after %v", g.inflight.Load(), within)
		case <-time.After(time.Millisecond):
		}
	}
}

// waitGoroutines polls until the process goroutine count returns to (or
// below) the baseline.
func waitGoroutines(t *testing.T, baseline int, within time.Duration) {
	t.Helper()
	deadline := time.After(within)
	for runtime.NumGoroutine() > baseline {
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func gatedClient(t *testing.T, r *rig, user string, delayFor func(int) time.Duration) (*Client, *relayGate) {
	t.Helper()
	gate := &relayGate{Provider: r.prov, delayFor: delayFor}
	c, err := New(user, "123456", r.params, r.fleet, gate)
	if err != nil {
		t.Fatal(err)
	}
	return c, gate
}

// TestRequestSharesCancelsLaggards: with half the cluster fast and half
// deliberately slow, the early-exit fan-out must return as soon as t fast
// shares arrive AND cancel the slow requests — nothing keeps running in
// the background, no goroutine outlives the call.
func TestRequestSharesCancelsLaggards(t *testing.T) {
	r := newRig(t, 8) // cluster 4, threshold 2
	const slow = 10 * time.Second
	c, gate := gatedClient(t, r, "laggard-user", func(pos int) time.Duration {
		if pos >= 2 {
			return slow // positions 2,3 lag far beyond the test's patience
		}
		return 0
	})
	if err := c.Backup(tctx, []byte("fast enough")); err != nil {
		t.Fatal(err)
	}
	s, err := c.Begin(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	start := time.Now()
	s.RequestShares(tctx)
	if elapsed := time.Since(start); elapsed > slow/2 {
		t.Fatalf("early exit took %v; waited for the laggards", elapsed)
	}
	if s.SharesHeld() < r.params.Threshold() {
		t.Fatalf("held %d shares, need %d", s.SharesHeld(), r.params.Threshold())
	}
	// The laggard requests were cancelled, not abandoned: their contexts
	// fired, so the in-flight count drains and the fan-out goroutines die
	// long before the 10s stall would have elapsed.
	waitNoInflight(t, gate, 2*time.Second)
	waitGoroutines(t, baseline, 2*time.Second)
	got, err := s.Finish(tctx)
	if err != nil || string(got) != "fast enough" {
		t.Fatalf("finish after early exit: %q %v", got, err)
	}
}

// TestRecoverDeadlineWithHungHSM is the acceptance test for the context
// redesign: every HSM hangs, and a deadline-bounded Recover must return
// promptly with the deadline error, leaking zero goroutines.
func TestRecoverDeadlineWithHungHSM(t *testing.T) {
	r := newRig(t, 8)
	c, gate := gatedClient(t, r, "hung-user", func(int) time.Duration {
		return -1 // hang until cancelled
	})
	if err := c.Backup(tctx, []byte("unreachable")); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Recover(ctx, "")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("recovery against a hung fleet succeeded")
	}
	if !errors.Is(err, ErrTooFewShares) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded recovery took %v", elapsed)
	}
	waitNoInflight(t, gate, 2*time.Second)
	waitGoroutines(t, baseline, 2*time.Second)
}

// TestBeginHonoursCancelledContext: an already-cancelled context stops the
// flow at the first provider exchange.
func TestBeginHonoursCancelledContext(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "cancelled-user", "123456")
	if err := c.Backup(tctx, []byte("m")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Begin(ctx, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Begin with cancelled ctx returned %v", err)
	}
}

// TestResumeRecoveryAfterCrash: the §8 crash flow through the session
// API. A device begins a recovery, saves its token, collects a partial
// share set, and dies. The replacement resumes from the token: escrowed
// shares replay, only missing positions are re-fetched, the data comes
// back — and the log shows the SAME attempt, not a second one.
func TestResumeRecoveryAfterCrash(t *testing.T) {
	r := newRig(t, 8) // cluster 4, threshold 2
	c := r.client(t, "crasher", "123456")
	msg := []byte("phone died mid-recovery")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	// Partial progress: one share collected (and punctured at that HSM),
	// then crash — the Session is simply dropped.
	if err := s.RequestShare(tctx, 0); err != nil {
		t.Fatal(err)
	}
	attempt := s.Attempt()
	attemptsBefore, err := r.prov.AttemptCount(tctx, "crasher")
	if err != nil {
		t.Fatal(err)
	}

	// Replacement device: same user, fresh client, only the token.
	c2 := r.client(t, "crasher", "123456")
	s2, err := c2.ResumeRecovery(tctx, token)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Attempt() != attempt {
		t.Fatalf("resume switched attempts: %d → %d", attempt, s2.Attempt())
	}
	if s2.SharesHeld() < 1 {
		t.Fatal("escrowed share not replayed on resume")
	}
	// Only the missing positions are re-fetched (position 0 is punctured —
	// a blind re-request would fail there).
	if errs := s2.RequestAllShares(tctx); len(errs) > 0 {
		t.Fatalf("resumed fan-out failed: %v", errs)
	}
	got, err := s2.Finish(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("resumed recovery returned wrong data")
	}
	attemptsAfter, err := r.prov.AttemptCount(tctx, "crasher")
	if err != nil {
		t.Fatal(err)
	}
	if attemptsAfter != attemptsBefore {
		t.Fatalf("resume consumed an attempt: %d → %d", attemptsBefore, attemptsAfter)
	}
}

// TestResumeRecoveryFullEscrow: if the crashed device had already
// contacted the whole cluster, resume needs no live HSM at all — every
// share comes from escrow (the ciphertext is fully punctured by then).
func TestResumeRecoveryFullEscrow(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "full-escrow", "123456")
	msg := []byte("all shares escrowed")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.RequestAllShares(tctx); len(errs) > 0 {
		t.Fatalf("fan-out: %v", errs)
	}
	// Crash before Finish. The replacement reconstructs purely from
	// escrow.
	c2 := r.client(t, "full-escrow", "123456")
	s2, err := c2.ResumeRecovery(tctx, token)
	if err != nil {
		t.Fatal(err)
	}
	if s2.SharesHeld() < r.params.Threshold() {
		t.Fatalf("escrow replay yielded %d shares, need %d", s2.SharesHeld(), r.params.Threshold())
	}
	got, err := s2.Finish(tctx)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("full-escrow resume: %q %v", got, err)
	}
}

// TestRequestSharesNoopWhenThresholdAlreadyMet: a resumed session whose
// escrow already satisfies the threshold must not contact the remaining
// cluster members at all — even against a fleet that would hang.
func TestRequestSharesNoopWhenThresholdAlreadyMet(t *testing.T) {
	r := newRig(t, 8) // cluster 4, threshold 2
	c := r.client(t, "replete", "123456")
	msg := []byte("already have enough")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < r.params.Threshold(); j++ {
		if err := s.RequestShare(tctx, j); err != nil {
			t.Fatal(err)
		}
	}
	// Resume through a gate where every relay hangs: if the fan-out
	// dispatched anything, it would stall (and puncture) pointlessly.
	gate := &relayGate{Provider: r.prov, delayFor: func(int) time.Duration { return -1 }}
	c2, err := New("replete", "123456", r.params, r.fleet, gate)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.ResumeRecovery(tctx, token)
	if err != nil {
		t.Fatal(err)
	}
	if s2.SharesHeld() < r.params.Threshold() {
		t.Fatalf("escrow replay yielded %d shares", s2.SharesHeld())
	}
	start := time.Now()
	if errs := s2.RequestShares(tctx); len(errs) > 0 {
		t.Fatalf("no-op fan-out reported errors: %v", errs)
	}
	if time.Since(start) > time.Second {
		t.Fatal("threshold-met fan-out still waited on the fleet")
	}
	if n := gate.inflight.Load(); n != 0 {
		t.Fatalf("%d relays dispatched despite threshold met", n)
	}
	got, err := s2.Finish(tctx)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("finish: %q %v", got, err)
	}
}

// failingClearEscrow injects an escrow-cleanup failure.
type failingClearEscrow struct {
	Provider
}

func (f failingClearEscrow) ClearEscrow(context.Context, string) error {
	return errors.New("injected escrow outage")
}

// TestFinishSurvivesClearEscrowFailure: once reconstruction succeeds, a
// failing ClearEscrow RPC must not fail the recovery — the ciphertext is
// already punctured everywhere, so dropping the plaintext here would lose
// the backup forever.
func TestFinishSurvivesClearEscrowFailure(t *testing.T) {
	r := newRig(t, 8)
	c, err := New("outage", "123456", r.params, r.fleet, failingClearEscrow{Provider: r.prov})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("survives the cleanup outage")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(tctx, "")
	if err != nil {
		t.Fatalf("recovery failed on escrow cleanup: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
}

// TestSessionTokenValidation: malformed or misdirected tokens are
// rejected before any provider interaction that could burn state.
func TestSessionTokenValidation(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "tokens", "123456")
	if err := c.Backup(tctx, []byte("m")); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trips through the parser.
	if _, err := parseSessionToken(token); err != nil {
		t.Fatal(err)
	}
	// Wrong user.
	other := r.client(t, "somebody-else", "123456")
	if _, err := other.ResumeRecovery(tctx, token); err == nil {
		t.Fatal("token for another user accepted")
	}
	// Unknown version byte.
	bad := append([]byte(nil), token...)
	bad[0] = 99
	if _, err := c.ResumeRecovery(tctx, bad); err == nil {
		t.Fatal("unknown token version accepted")
	}
	// Truncated.
	if _, err := c.ResumeRecovery(tctx, token[:len(token)/2]); err == nil {
		t.Fatal("truncated token accepted")
	}
	// Trailing garbage.
	if _, err := c.ResumeRecovery(tctx, append(append([]byte(nil), token...), 0xff)); err == nil {
		t.Fatal("token with trailing bytes accepted")
	}
	// Empty.
	if _, err := c.ResumeRecovery(tctx, nil); err == nil {
		t.Fatal("empty token accepted")
	}
}

// TestResumeDetectsSwappedCiphertext: a provider that swaps the stored
// backup after the session began cannot trick the resume path — the
// token's ciphertext hash pins the exact blob the attempt committed to.
func TestResumeDetectsSwappedCiphertext(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "swapped", "123456")
	if err := c.Backup(tctx, []byte("original")); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	// The provider (or the user's own second device) stores a new backup;
	// the session's attempt was committed against the old blob.
	if err := c.Backup(tctx, []byte("replacement backup")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResumeRecovery(tctx, token); err == nil {
		t.Fatal("resume accepted a ciphertext the session never committed to")
	}
}
