package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"testing"

	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/ecgroup"
	"safetypin/internal/hsm"
	"safetypin/internal/lhe"
	"safetypin/internal/provider"
)

var tctx = context.Background()

// rig wires a minimal fleet for client-level tests.
type rig struct {
	prov   *provider.Provider
	params lhe.Params
	fleet  *bfe.Fleet
	hsms   []*hsm.HSM
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	logCfg := dlog.Config{
		NumChunks:     n,
		AuditsPerHSM:  n,
		MinSignerFrac: 0.5,
		Scheme:        aggsig.ECDSAConcat(),
	}
	hsmCfg := hsm.Config{BFE: bfe.Params{M: 128, K: 4}, Log: logCfg, GuessLimit: 4}
	prov := provider.New(logCfg)
	var pubs []*bfe.PublicKey
	var roster []aggsig.PublicKey
	var hsms []*hsm.HSM
	for i := 0; i < n; i++ {
		h, err := hsm.New(i, hsmCfg, prov.OracleFor(i), rand.Reader, nil)
		if err != nil {
			t.Fatal(err)
		}
		hsms = append(hsms, h)
		pubs = append(pubs, h.BFEPublicKey())
		roster = append(roster, h.AggSigPublicKey())
	}
	for _, h := range hsms {
		if err := h.InstallRoster(roster); err != nil {
			t.Fatal(err)
		}
		prov.Register(h)
	}
	params, err := lhe.NewParams(n, n/2, n/4)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{prov: prov, params: params, fleet: bfe.NewFleet(pubs), hsms: hsms}
}

func (r *rig) client(t testing.TB, user, pin string) *Client {
	t.Helper()
	c, err := New(user, pin, r.params, r.fleet, r.prov)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "msg" {
		t.Fatal("mismatch")
	}
}

func TestBeginWithoutBackup(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "ghost", "123456")
	if _, err := c.Begin(tctx, ""); err == nil {
		t.Fatal("Begin succeeded without a stored backup")
	}
}

func TestSaltRotatesAfterRecovery(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	saltBefore := c.Salt()
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(tctx, ""); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(saltBefore, c.Salt()) {
		t.Fatal("salt not refreshed after recovery (§8)")
	}
}

func TestRequestShareOutOfRange(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	s, err := c.Begin(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RequestShare(tctx, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := s.RequestShare(tctx, len(s.Cluster())); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestFinishBelowThreshold(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	s, err := c.Begin(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(tctx); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("want ErrTooFewShares, got %v", err)
	}
}

func TestCompleteFromEscrowRequiresEscrow(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	kp, err := ecgroup.GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompleteFromEscrow(tctx, kp); err == nil {
		t.Fatal("escrow completion without escrow succeeded")
	}
}

func TestCompleteFromEscrowWrongKey(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	s, err := c.Begin(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	for j := range s.Cluster() {
		if err := s.RequestShare(tctx, j); err != nil {
			t.Fatal(err)
		}
	}
	// Replacement device with the WRONG ephemeral key cannot read the
	// escrowed replies.
	wrong, err := ecgroup.GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompleteFromEscrow(tctx, wrong); err == nil {
		t.Fatal("escrow decrypted under wrong ephemeral key")
	}
	// The right key works.
	got, err := c.CompleteFromEscrow(tctx, s.ReplyKey)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "msg" {
		t.Fatal("escrow recovery mismatch")
	}
}

func TestIncrementalWrongKeyFails(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	master, err := c.EnableIncrementalBackups(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.IncrementalBackup(tctx, master, []byte("delta")); err != nil {
		t.Fatal(err)
	}
	bogus := make([]byte, len(master))
	if _, err := c.FetchIncremental(tctx, bogus); err == nil {
		t.Fatal("incremental blob decrypted under wrong master key")
	}
	got, err := c.FetchIncremental(tctx, master)
	if err != nil || string(got) != "delta" {
		t.Fatalf("incremental fetch broken: %q %v", got, err)
	}
}

func TestMultipleBackupsLatestWins(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Backup(tctx, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Backup(tctx, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recover(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v3" {
		t.Fatalf("recovered %q, want v3", got)
	}
}

func TestUserAccessor(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if c.User() != "alice" {
		t.Fatal("User() wrong")
	}
	if len(c.Salt()) != lhe.SaltSize {
		t.Fatal("Salt() wrong size")
	}
}

func TestSaltProtection(t *testing.T) {
	// §8/§6.3: the salt lives under a null-PIN LHE layer; fetches are
	// logged; the device detects whether PIN re-use is safe.
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProtectSalt(tctx); err != nil {
		t.Fatal(err)
	}
	if mustSaltFetches(t, c) != 0 {
		t.Fatal("no fetches should be logged yet")
	}
	// New device: recover the salt (one logged fetch), then the backup.
	c2 := r.client(t, "alice", "123456")
	salt, err := c2.RecoverSalt(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(salt, c.Salt()) && len(salt) != lhe.SaltSize {
		t.Fatal("recovered salt malformed")
	}
	got, err := c2.Recover(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "msg" {
		t.Fatal("backup recovery after salt recovery failed")
	}
	// The device performed exactly one salt fetch: PIN re-use is safe.
	if safe, err := c2.PINReuseSafe(tctx, 1); err != nil || !safe {
		t.Fatalf("own fetch flagged as attack (%v)", err)
	}
	// An attacker (insider) also fetches the salt... but the vault is
	// punctured, so their recovery fails — yet the *attempt* is logged,
	// which is exactly what tips the user off if it had succeeded earlier.
	attacker := r.client(t, "alice", "123456")
	_, attackErr := attacker.RecoverSalt(tctx)
	if attackErr == nil {
		t.Fatal("punctured salt vault served a second recovery")
	}
	if safe, _ := c2.PINReuseSafe(tctx, 1); safe {
		t.Fatal("extra salt-fetch attempt not detected")
	}
}

func TestSaltRecoveryWrongVaultFails(t *testing.T) {
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	// No protected salt stored.
	if _, err := c.RecoverSalt(tctx); err == nil {
		t.Fatal("salt recovery without a vault succeeded")
	}
}

// mustSaltFetches fetches the salt-recovery count, failing the test on a
// provider error.
func mustSaltFetches(t testing.TB, c *Client) int {
	t.Helper()
	n, err := c.SaltFetchCount(tctx)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
