package client

// Concurrency tests for the client↔provider↔HSM stack, meant for -race:
// concurrent backups and recoveries of distinct and identical users, and
// the parallel share fan-out.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentBackupsAndRecoveriesDistinctUsers(t *testing.T) {
	r := newRig(t, 8)
	const users = 6
	clients := make([]*Client, users)
	for i := range clients {
		clients[i] = r.client(t, fmt.Sprintf("user-%d", i), "123456")
	}
	// Concurrent backups.
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if err := c.Backup(tctx, []byte(fmt.Sprintf("disk-%d", i))); err != nil {
				t.Errorf("backup %d: %v", i, err)
			}
		}(i, c)
	}
	wg.Wait()
	// Concurrent recoveries: every Begin's log insertion batches through
	// the shared epoch scheduler; every share fan-out runs in parallel.
	got := make([][]byte, users)
	errs := make([]error, users)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			got[i], errs[i] = c.Recover(tctx, "")
		}(i, c)
	}
	wg.Wait()
	for i := range clients {
		if errs[i] != nil {
			t.Fatalf("recover %d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("disk-%d", i); string(got[i]) != want {
			t.Fatalf("recover %d: got %q want %q", i, got[i], want)
		}
	}
}

func TestConcurrentBeginSameUserDistinctAttempts(t *testing.T) {
	// The attempt-number race: two concurrent Begin calls for one user
	// must reserve distinct attempt indices (and therefore distinct log
	// identifiers) via ReserveAttempt.
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	const n = 3 // GuessLimit in the rig is 4
	sessions := make([]*Session, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sessions[i], errs[i] = c.Begin(tctx, "")
		}(i)
	}
	wg.Wait()
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("begin %d: %v", i, errs[i])
		}
		a := sessions[i].attempt
		if seen[a] {
			t.Fatalf("attempt %d reserved twice", a)
		}
		seen[a] = true
	}
}

func TestConcurrentRecoverySameUser(t *testing.T) {
	// Two devices racing to recover the same backup: punctures split the
	// cluster's shares between them, so at most the threshold arithmetic
	// decides who wins — but nothing may race, wedge, or corrupt state,
	// and any success must return the true plaintext.
	r := newRig(t, 8)
	c1 := r.client(t, "alice", "123456")
	if err := c1.Backup(tctx, []byte("the disk image")); err != nil {
		t.Fatal(err)
	}
	c2 := r.client(t, "alice", "123456")

	var wg sync.WaitGroup
	results := make([][]byte, 2)
	errs := make([]error, 2)
	for i, c := range []*Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			results[i], errs[i] = c.Recover(tctx, "")
		}(i, c)
	}
	wg.Wait()
	for i := range results {
		if errs[i] == nil && !bytes.Equal(results[i], []byte("the disk image")) {
			t.Fatalf("racer %d recovered wrong plaintext %q", i, results[i])
		}
	}
	if errs[0] != nil && errs[1] != nil {
		// Both may lose only by splitting shares below threshold; with
		// threshold n/4 = 2 of cluster 4, at least one racer must reach it.
		t.Fatalf("both racers failed: %v / %v", errs[0], errs[1])
	}
}

func TestRequestSharesEarlyExit(t *testing.T) {
	// The concurrent fan-out returns as soon as the threshold is met;
	// reconstruction succeeds from whatever subset arrived first.
	r := newRig(t, 8)
	c := r.client(t, "alice", "123456")
	if err := c.Backup(tctx, []byte("resilient")); err != nil {
		t.Fatal(err)
	}
	s, err := c.Begin(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	errs := s.RequestShares(tctx)
	if s.SharesHeld() < r.params.Threshold() {
		t.Fatalf("held %d shares, need %d (errors: %v)", s.SharesHeld(), r.params.Threshold(), errs)
	}
	got, err := s.Finish(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "resilient" {
		t.Fatalf("recovered %q", got)
	}
}
