// Package client implements the SafetyPin client: the mobile device that
// backs up a disk image under its PIN (Figure 3 Ê) and later recovers it by
// interacting with the service provider and its hidden cluster of HSMs
// (Figure 3 Ë–Ð).
//
// The client trusts only its own PIN and the authenticity of the HSM public
// keys it holds; the provider is untrusted. Extensions of §8 are included:
// per-recovery ephemeral keys with provider-side escrow (crash during
// recovery), salt reuse across backups (one puncture revokes all prior
// ciphertexts), post-recovery salt refresh, and incremental backups under a
// SafetyPin-protected master key.
//
// # The service API
//
// The client sees the provider through three small role-scoped interfaces —
// BackupStore (ciphertext storage), LogService (the distributed log), and
// RecoveryService (the HSM relay and crash escrow) — composed into
// Provider. Every method takes a context.Context: deadlines and
// cancellation propagate from the caller through the provider into each
// in-flight per-HSM exchange, so an abandoning user cancels the laggard
// share requests instead of leaking them, and a stuck epoch can be walked
// away from without leaking a waiter.
//
// Recovery itself is a long-lived, resumable session rather than one
// blocking call: BeginRecovery returns a RecoverySession whose
// SessionToken serializes everything a replacement process needs —
// the reserved attempt number, commitment opening, and the per-recovery
// ephemeral key — so a device that crashes mid-recovery resumes with
// ResumeRecovery against the provider's (user, attempt) escrow instead of
// burning a second guess.
package client
