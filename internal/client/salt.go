package client

import (
	"context"
	"fmt"
)

// §8 "Preventing post-recovery PIN leakage" / §6.3 "PIN re-use": during
// recovery, a network observer learns which HSMs the client contacted —
// a salted function of the PIN — enabling an offline dictionary attack if
// the salt is public. The mitigation: the salt itself is stored under a
// *second* round of location-hiding encryption with a null PIN, spread over
// its own random HSM set. An attacker must first extract the salt from
// those HSMs (a logged, punctured recovery) before PIN grinding; and
// because salt fetches are logged, a device that recovers its backup can
// check whether anyone else ever fetched the salt — if not, it is safe for
// the user to keep the same PIN. The paper describes this extension but
// reports it unimplemented; here it is.

// nullPIN is the PIN under which protected salts are encrypted: security
// rests entirely on the hidden location of the salt's cluster.
const nullPIN = ""

// saltUser namespaces a user's protected salt at the provider.
func (c *Client) saltUser() string { return c.user + "/salt" }

// ProtectSalt stores the client's current backup salt under a null-PIN
// location-hiding backup of its own. Call once after New (or after a salt
// rotation); the salt then never needs to live in cleartext at the
// provider.
func (c *Client) ProtectSalt(ctx context.Context) (*Client, error) {
	vault, err := New(c.saltUser(), nullPIN, c.params, c.fleet, c.provider)
	if err != nil {
		return nil, err
	}
	if err := vault.Backup(ctx, c.salt); err != nil {
		return nil, fmt.Errorf("client: protecting salt: %w", err)
	}
	return vault, nil
}

// RecoverSalt retrieves the protected salt onto a fresh device. This is a
// full logged recovery: it consumes an attempt for the salt vault, shows up
// in the public log, and punctures the salt ciphertext (so it must be
// re-protected afterwards). The recovered salt is installed as the client's
// current salt.
func (c *Client) RecoverSalt(ctx context.Context) ([]byte, error) {
	vault, err := New(c.saltUser(), nullPIN, c.params, c.fleet, c.provider)
	if err != nil {
		return nil, err
	}
	salt, err := vault.Recover(ctx, nullPIN)
	if err != nil {
		return nil, fmt.Errorf("client: recovering salt: %w", err)
	}
	c.salt = append([]byte(nil), salt...)
	return c.Salt(), nil
}

// SaltFetchCount reports how many salt recoveries the public log records
// for this user. Anyone can compute this from the log; the client uses it
// for PINReuseSafe.
func (c *Client) SaltFetchCount(ctx context.Context) (int, error) {
	return c.provider.AttemptCount(ctx, c.saltUser())
}

// PINReuseSafe reports whether it is safe for the user to keep their PIN
// after a recovery: true iff the log shows exactly the salt fetches this
// device performed itself (expectedFetches). Any extra fetch means someone
// else extracted the salt and may be grinding PINs offline — the user
// should pick a fresh PIN (§6.3).
func (c *Client) PINReuseSafe(ctx context.Context, expectedFetches int) (bool, error) {
	n, err := c.SaltFetchCount(ctx)
	if err != nil {
		return false, err
	}
	return n <= expectedFetches, nil
}
