// Package client implements the SafetyPin client: the mobile device that
// backs up a disk image under its PIN (Figure 3 Ê) and later recovers it by
// interacting with the service provider and its hidden cluster of HSMs
// (Figure 3 Ë–Ð).
//
// The client trusts only its own PIN and the authenticity of the HSM public
// keys it holds; the provider is untrusted. Extensions of §8 are included:
// per-recovery ephemeral keys with provider-side escrow (crash during
// recovery), salt reuse across backups (one puncture revokes all prior
// ciphertexts), post-recovery salt refresh, and incremental backups under a
// SafetyPin-protected master key.
package client

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"safetypin/internal/aead"
	"safetypin/internal/ecgroup"
	"safetypin/internal/elgamal"
	"safetypin/internal/lhe"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/shamir"
)

// ProviderAPI is the client's view of the service provider. The in-process
// provider and the TCP transport both satisfy it.
//
// Recovery attempts are allocated with ReserveAttempt (atomic, so two
// concurrent recoveries of one user never collide on an attempt index) and
// committed to the log by the provider's epoch scheduler: the client
// appends with LogRecoveryAttempt and blocks on WaitForCommit, sharing an
// epoch with every other recovery in flight (the paper's ~10-minute
// batching, §6.2).
type ProviderAPI interface {
	StoreCiphertext(user string, ct []byte) error
	FetchCiphertext(user string) ([]byte, error)
	AttemptCount(user string) int
	ReserveAttempt(user string) (int, error)
	LogRecoveryAttempt(user string, attempt int, commitment []byte) error
	WaitForCommit() error
	FetchInclusionProof(user string, attempt int, commitment []byte) (*logtree.Trace, error)
	RelayRecover(req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error)
	FetchEscrowedReplies(user string) []*protocol.RecoveryReply
	ClearEscrow(user string)
}

// Client is one user's device.
type Client struct {
	user     string
	pin      string
	params   lhe.Params
	fleet    lhe.Encryptor
	provider ProviderAPI
	rng      io.Reader
	salt     []byte
}

// New creates a client with a fresh random salt. fleet must hold the
// authentic public keys of all N HSMs (the trust anchor of §2).
func New(user, pin string, params lhe.Params, fleet lhe.Encryptor, p ProviderAPI) (*Client, error) {
	c := &Client{user: user, pin: pin, params: params, fleet: fleet, provider: p, rng: rand.Reader}
	if err := c.refreshSalt(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) refreshSalt() error {
	salt := make([]byte, lhe.SaltSize)
	if _, err := io.ReadFull(c.rng, salt); err != nil {
		return fmt.Errorf("client: sampling salt: %w", err)
	}
	c.salt = salt
	return nil
}

// User returns the client's username.
func (c *Client) User() string { return c.user }

// Salt returns the client's current backup salt (public).
func (c *Client) Salt() []byte { return append([]byte(nil), c.salt...) }

// Backup encrypts msg under the client's PIN and uploads the recovery
// ciphertext. Successive backups reuse the same salt so they share one
// cluster and die together on puncture (§8).
func (c *Client) Backup(msg []byte) error {
	ct, err := c.params.EncryptWithSalt(c.fleet, c.user, c.pin, c.salt, msg, c.rng)
	if err != nil {
		return err
	}
	return c.provider.StoreCiphertext(c.user, ct.Bytes())
}

// Session carries the state of one in-flight recovery so that tests (and
// the crash-recovery flow) can exercise partial executions. All fields
// except shares are immutable after Begin; shares is guarded by mu so
// RequestShares can fan out to the cluster concurrently.
type Session struct {
	client   *Client
	ct       *lhe.Ciphertext
	ctBlob   []byte
	cluster  []int
	attempt  int
	nonce    []byte
	trace    *logtree.Trace
	ReplyKey ecgroup.KeyPair

	mu     sync.Mutex
	shares []lhe.DecryptedShare
}

// ErrTooFewShares is returned when fewer than t HSMs produced usable
// shares.
var ErrTooFewShares = errors.New("client: too few shares recovered")

// Begin runs steps Ë–Î of Figure 3: fetch the ciphertext, derive the
// cluster from the PIN, log the recovery attempt, and obtain the inclusion
// proof. pin overrides the client's stored PIN when non-empty (modelling a
// user typing a guess on a fresh device).
func (c *Client) Begin(pin string) (*Session, error) {
	if pin == "" {
		pin = c.pin
	}
	blob, err := c.provider.FetchCiphertext(c.user)
	if err != nil {
		return nil, err
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		return nil, err
	}
	cluster, err := c.params.Select(ct.Salt, pin)
	if err != nil {
		return nil, err
	}
	replyKP, err := ecgroup.GenerateKeyPair(c.rng)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, protocol.CommitNonceSize)
	if _, err := io.ReadFull(c.rng, nonce); err != nil {
		return nil, err
	}
	attempt, err := c.provider.ReserveAttempt(c.user)
	if err != nil {
		return nil, fmt.Errorf("client: reserving attempt: %w", err)
	}
	commit := protocol.Commitment(c.user, ct.Salt, protocol.HashCiphertext(blob), cluster, nonce)
	if err := c.provider.LogRecoveryAttempt(c.user, attempt, commit); err != nil {
		return nil, err
	}
	// The provider batches insertions from all concurrent recoveries and
	// runs the log-update protocol on its epoch schedule (every ~10
	// minutes in the paper); we block until the epoch holding our
	// insertion commits.
	if err := c.provider.WaitForCommit(); err != nil {
		return nil, fmt.Errorf("client: log epoch failed: %w", err)
	}
	trace, err := c.provider.FetchInclusionProof(c.user, attempt, commit)
	if err != nil {
		return nil, err
	}
	return &Session{
		client:   c,
		ct:       ct,
		ctBlob:   blob,
		cluster:  cluster,
		attempt:  attempt,
		nonce:    nonce,
		trace:    trace,
		ReplyKey: replyKP,
	}, nil
}

// Cluster returns the HSM indices this session will contact.
func (s *Session) Cluster() []int { return append([]int(nil), s.cluster...) }

// BuildRequest assembles the recovery request for cluster position j;
// exposed so transports and fault-injection tests can manipulate requests
// before relaying them.
func (s *Session) BuildRequest(j int) *protocol.RecoveryRequest {
	return s.request(j)
}

// request builds the recovery request for cluster position j.
func (s *Session) request(j int) *protocol.RecoveryRequest {
	return &protocol.RecoveryRequest{
		User:        s.client.user,
		Salt:        s.ct.Salt,
		Attempt:     s.attempt,
		SharePos:    j,
		Cluster:     s.cluster,
		CommitNonce: s.nonce,
		CtHash:      protocol.HashCiphertext(s.ctBlob),
		ShareCt:     s.ct.Shares[j],
		LogTrace:    s.trace,
		ReplyPK:     s.ReplyKey.PK,
	}
}

// RequestShare contacts the cluster member at position j (step Ï) and
// stores the decrypted share on success.
func (s *Session) RequestShare(j int) error {
	if j < 0 || j >= len(s.cluster) {
		return fmt.Errorf("client: share position %d out of range", j)
	}
	ds, err := s.fetchShare(j)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.shares = append(s.shares, ds)
	s.mu.Unlock()
	return nil
}

// fetchShare performs the relay round trip and reply decryption for one
// cluster position without touching session state.
func (s *Session) fetchShare(j int) (lhe.DecryptedShare, error) {
	reply, err := s.client.provider.RelayRecover(s.request(j))
	if err != nil {
		return lhe.DecryptedShare{}, err
	}
	return s.client.decryptReply(s.ReplyKey, s.ct.Salt, reply)
}

// ShareError records the failure of one cluster position during a share
// fan-out.
type ShareError struct {
	Pos int
	Err error
}

func (e ShareError) Error() string {
	return fmt.Sprintf("client: share position %d: %v", e.Pos, e.Err)
}

// RequestShares contacts every cluster member concurrently (step Ï at
// datacenter speed: n parallel HSM round trips instead of n sequential
// ones) and returns once the session holds at least t shares — the
// early-exit path for latency-critical recoveries. Per-position failures
// are collected and returned; they are not fatal as long as t shares come
// back (Property 3, fault tolerance). On early exit the laggard requests
// complete in the background and their replies stay escrowed at the
// provider, but they are not added to the session.
func (s *Session) RequestShares() []ShareError {
	return s.fanOut(true)
}

// RequestAllShares contacts every cluster member concurrently and waits for
// all of them to answer, so every reachable HSM has punctured by the time
// it returns (the paper's forward-secrecy guarantee is immediate, not
// eventual). Recover uses this.
func (s *Session) RequestAllShares() []ShareError {
	return s.fanOut(false)
}

// fanOut runs the parallel share collection; earlyExit stops waiting once
// the threshold is met.
func (s *Session) fanOut(earlyExit bool) []ShareError {
	type result struct {
		pos int
		ds  lhe.DecryptedShare
		err error
	}
	n := len(s.cluster)
	results := make(chan result, n)
	for j := 0; j < n; j++ {
		go func(j int) {
			ds, err := s.fetchShare(j)
			results <- result{pos: j, ds: ds, err: err}
		}(j)
	}
	need := s.client.params.Threshold()
	var errs []ShareError
	for seen := 0; seen < n; seen++ {
		r := <-results
		if r.err != nil {
			errs = append(errs, ShareError{Pos: r.pos, Err: r.err})
			continue
		}
		s.mu.Lock()
		s.shares = append(s.shares, r.ds)
		held := len(s.shares)
		s.mu.Unlock()
		if earlyExit && held >= need {
			break
		}
	}
	return errs
}

// decryptReply opens one escrowable HSM reply with the ephemeral key.
func (c *Client) decryptReply(kp ecgroup.KeyPair, salt []byte, reply *protocol.RecoveryReply) (lhe.DecryptedShare, error) {
	box, err := elgamal.CiphertextFromBytes(reply.Box)
	if err != nil {
		return lhe.DecryptedShare{}, err
	}
	pt, err := elgamal.Decrypt(kp.SK, kp.PK, box, protocol.ReplyAD(c.user, salt, reply.SharePos))
	if err != nil {
		return lhe.DecryptedShare{}, fmt.Errorf("client: opening HSM reply: %w", err)
	}
	share, err := shamir.ShareFromBytes(pt)
	if err != nil {
		return lhe.DecryptedShare{}, err
	}
	return lhe.DecryptedShare{Pos: reply.SharePos, Share: share}, nil
}

// SharesHeld returns how many usable shares the session has collected.
func (s *Session) SharesHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shares)
}

// Finish reconstructs the backed-up message from the collected shares
// (step Ð + Reconstruct), clears the escrow, and rotates the client's salt
// so future backups select a fresh cluster (§8).
func (s *Session) Finish() ([]byte, error) {
	s.mu.Lock()
	shares := append([]lhe.DecryptedShare(nil), s.shares...)
	s.mu.Unlock()
	if len(shares) < s.client.params.Threshold() {
		return nil, fmt.Errorf("%w: have %d, need %d",
			ErrTooFewShares, len(shares), s.client.params.Threshold())
	}
	msg, err := s.client.params.Reconstruct(s.client.user, s.ct, shares)
	if err != nil {
		return nil, err
	}
	s.client.provider.ClearEscrow(s.client.user)
	if err := s.client.refreshSalt(); err != nil {
		return nil, err
	}
	return msg, nil
}

// Recover runs the complete recovery flow: Begin, contact the whole
// cluster in parallel, Finish. Individual HSM failures are tolerated as
// long as t shares come back (Property 3, fault tolerance).
func (c *Client) Recover(pin string) ([]byte, error) {
	s, err := c.Begin(pin)
	if err != nil {
		return nil, err
	}
	errs := s.RequestAllShares()
	msg, err := s.Finish()
	if err != nil {
		if len(errs) > 0 {
			return nil, fmt.Errorf("%w (last HSM error: %v)", err, errs[len(errs)-1].Err)
		}
		return nil, err
	}
	return msg, nil
}

// CompleteFromEscrow finishes an interrupted recovery on a replacement
// device (§8): given the recovered ephemeral keypair (itself restored via a
// nested SafetyPin backup), decrypt the provider-escrowed HSM replies and
// reconstruct. The original ciphertext is already punctured, so this is the
// only remaining path to the data.
func (c *Client) CompleteFromEscrow(replyKP ecgroup.KeyPair) ([]byte, error) {
	blob, err := c.provider.FetchCiphertext(c.user)
	if err != nil {
		return nil, err
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		return nil, err
	}
	replies := c.provider.FetchEscrowedReplies(c.user)
	if len(replies) == 0 {
		return nil, errors.New("client: no escrowed replies")
	}
	var shares []lhe.DecryptedShare
	for _, r := range replies {
		ds, err := c.decryptReply(replyKP, ct.Salt, r)
		if err != nil {
			continue
		}
		shares = append(shares, ds)
	}
	if len(shares) < c.params.Threshold() {
		return nil, fmt.Errorf("%w: escrow yielded %d of %d",
			ErrTooFewShares, len(shares), c.params.Threshold())
	}
	msg, err := c.params.Reconstruct(c.user, ct, shares)
	if err != nil {
		return nil, err
	}
	c.provider.ClearEscrow(c.user)
	return msg, nil
}

// --- incremental backups (§8) ---

// incrUser namespaces a user's incremental blobs at the provider.
func (c *Client) incrUser() string { return c.user + "/incremental" }

// EnableIncrementalBackups creates a master AES key, protects it with a
// full SafetyPin backup, and returns it for local use.
func (c *Client) EnableIncrementalBackups() ([]byte, error) {
	key, err := aead.NewKey(c.rng)
	if err != nil {
		return nil, err
	}
	if err := c.Backup(key); err != nil {
		return nil, err
	}
	return key, nil
}

// IncrementalBackup encrypts one incremental image under the master key and
// uploads it. No HSM interaction occurs.
func (c *Client) IncrementalBackup(masterKey, data []byte) error {
	blob, err := aead.Seal(masterKey, data, []byte("safetypin/incremental/v1|"+c.user))
	if err != nil {
		return err
	}
	return c.provider.StoreCiphertext(c.incrUser(), blob)
}

// FetchIncremental decrypts the latest incremental blob with the (possibly
// just-recovered) master key.
func (c *Client) FetchIncremental(masterKey []byte) ([]byte, error) {
	blob, err := c.provider.FetchCiphertext(c.incrUser())
	if err != nil {
		return nil, err
	}
	return aead.Open(masterKey, blob, []byte("safetypin/incremental/v1|"+c.user))
}
