package client

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"safetypin/internal/aead"
	"safetypin/internal/ecgroup"
	"safetypin/internal/elgamal"
	"safetypin/internal/lhe"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/shamir"
)

// BackupStore is the ciphertext-storage role of the service provider: the
// only part of the API a device needs at backup time (no HSM ever runs).
type BackupStore interface {
	StoreCiphertext(ctx context.Context, user string, ct []byte) error
	FetchCiphertext(ctx context.Context, user string) ([]byte, error)
}

// LogService is the distributed-log role of the service provider (§6).
//
// Recovery attempts are allocated with ReserveAttempt (atomic, so two
// concurrent recoveries of one user never collide on an attempt index) and
// committed to the log by the provider's epoch scheduler: the client
// appends with LogRecoveryAttempt and blocks on WaitForCommit, sharing an
// epoch with every other recovery in flight (the paper's ~10-minute
// batching, §6.2). WaitForCommit honours cancellation: a caller that gives
// up on a wedged epoch is unsubscribed and leaks nothing.
type LogService interface {
	AttemptCount(ctx context.Context, user string) (int, error)
	ReserveAttempt(ctx context.Context, user string) (int, error)
	LogRecoveryAttempt(ctx context.Context, user string, attempt int, commitment []byte) error
	WaitForCommit(ctx context.Context) error
	FetchInclusionProof(ctx context.Context, user string, attempt int, commitment []byte) (*logtree.Trace, error)
}

// RecoveryService is the recovery-relay role of the service provider: it
// forwards share requests to HSMs and escrows the sealed replies keyed by
// (user, attempt) for crash recovery (§8). Cancelling the context on
// RelayRecover aborts the in-flight HSM exchange end to end.
type RecoveryService interface {
	RelayRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error)
	FetchEscrowedReplies(ctx context.Context, user string) ([]*protocol.RecoveryReply, error)
	ClearEscrow(ctx context.Context, user string) error
}

// Provider is the client's complete view of the service provider. The
// in-process provider and the TCP transport both satisfy it. Code that
// only stores backups, or only drives recoveries, should accept the
// narrower role interface instead.
type Provider interface {
	BackupStore
	LogService
	RecoveryService
}

// Client is one user's device.
type Client struct {
	user     string
	pin      string //spin:secret
	params   lhe.Params
	fleet    lhe.Encryptor
	provider Provider
	rng      io.Reader
	salt     []byte
}

// New creates a client with a fresh random salt. fleet must hold the
// authentic public keys of all N HSMs (the trust anchor of §2).
//
//spin:secret pin
func New(user, pin string, params lhe.Params, fleet lhe.Encryptor, p Provider) (*Client, error) {
	c := &Client{user: user, pin: pin, params: params, fleet: fleet, provider: p, rng: rand.Reader}
	if err := c.refreshSalt(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) refreshSalt() error {
	salt := make([]byte, lhe.SaltSize)
	if _, err := io.ReadFull(c.rng, salt); err != nil {
		return fmt.Errorf("client: sampling salt: %w", err)
	}
	c.salt = salt
	return nil
}

// User returns the client's username.
func (c *Client) User() string { return c.user }

// Salt returns the client's current backup salt (public).
func (c *Client) Salt() []byte { return append([]byte(nil), c.salt...) }

// Backup encrypts msg under the client's PIN and uploads the recovery
// ciphertext. Successive backups reuse the same salt so they share one
// cluster and die together on puncture (§8).
func (c *Client) Backup(ctx context.Context, msg []byte) error {
	ct, err := c.params.EncryptWithSalt(c.fleet, c.user, c.pin, c.salt, msg, c.rng)
	if err != nil {
		return err
	}
	return c.provider.StoreCiphertext(ctx, c.user, ct.Bytes())
}

// Session carries the state of one in-flight recovery so that tests (and
// the crash-recovery flow) can exercise partial executions. All fields
// except the share set are immutable after Begin; shares/held are guarded
// by mu so RequestShares can fan out to the cluster concurrently.
type Session struct {
	client   *Client
	ct       *lhe.Ciphertext
	ctBlob   []byte
	cluster  []int
	attempt  int
	nonce    []byte
	trace    *logtree.Trace
	ReplyKey ecgroup.KeyPair

	mu     sync.Mutex
	shares []lhe.DecryptedShare
	held   map[int]bool // cluster positions already collected
}

// ErrTooFewShares is returned when fewer than t HSMs produced usable
// shares.
var ErrTooFewShares = errors.New("client: too few shares recovered")

// Begin runs steps Ë–Î of Figure 3: fetch the ciphertext, derive the
// cluster from the PIN, log the recovery attempt, and obtain the inclusion
// proof. pin overrides the client's stored PIN when non-empty (modelling a
// user typing a guess on a fresh device). Cancelling ctx aborts whichever
// provider exchange is in flight — including the epoch wait, from which
// the client is unsubscribed cleanly.
//
//spin:secret pin
func (c *Client) Begin(ctx context.Context, pin string) (*Session, error) {
	//spinlint:ignore ctsecret empty-string sentinel check: compares length only, not PIN content
	if pin == "" {
		pin = c.pin
	}
	blob, err := c.provider.FetchCiphertext(ctx, c.user)
	if err != nil {
		return nil, err
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		return nil, err
	}
	cluster, err := c.params.Select(ct.Salt, pin)
	if err != nil {
		return nil, err
	}
	replyKP, err := ecgroup.GenerateKeyPair(c.rng)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, protocol.CommitNonceSize)
	if _, err := io.ReadFull(c.rng, nonce); err != nil {
		return nil, err
	}
	attempt, err := c.provider.ReserveAttempt(ctx, c.user)
	if err != nil {
		return nil, fmt.Errorf("client: reserving attempt: %w", err)
	}
	commit := protocol.Commitment(c.user, ct.Salt, protocol.HashCiphertext(blob), cluster, nonce)
	if err := c.provider.LogRecoveryAttempt(ctx, c.user, attempt, commit); err != nil {
		return nil, err
	}
	// The provider batches insertions from all concurrent recoveries and
	// runs the log-update protocol on its epoch schedule (every ~10
	// minutes in the paper); we block until the epoch holding our
	// insertion commits.
	if err := c.provider.WaitForCommit(ctx); err != nil {
		return nil, fmt.Errorf("client: log epoch failed: %w", err)
	}
	trace, err := c.provider.FetchInclusionProof(ctx, c.user, attempt, commit)
	if err != nil {
		return nil, err
	}
	return &Session{
		client:   c,
		ct:       ct,
		ctBlob:   blob,
		cluster:  cluster,
		attempt:  attempt,
		nonce:    nonce,
		trace:    trace,
		ReplyKey: replyKP,
		held:     make(map[int]bool),
	}, nil
}

// Cluster returns the HSM indices this session will contact.
func (s *Session) Cluster() []int { return append([]int(nil), s.cluster...) }

// Attempt returns the log attempt index this session reserved.
func (s *Session) Attempt() int { return s.attempt }

// BuildRequest assembles the recovery request for cluster position j;
// exposed so transports and fault-injection tests can manipulate requests
// before relaying them.
func (s *Session) BuildRequest(j int) *protocol.RecoveryRequest {
	return s.request(j)
}

// request builds the recovery request for cluster position j.
func (s *Session) request(j int) *protocol.RecoveryRequest {
	return &protocol.RecoveryRequest{
		User:        s.client.user,
		Salt:        s.ct.Salt,
		Attempt:     s.attempt,
		SharePos:    j,
		Cluster:     s.cluster,
		CommitNonce: s.nonce,
		CtHash:      protocol.HashCiphertext(s.ctBlob),
		ShareCt:     s.ct.Shares[j],
		LogTrace:    s.trace,
		ReplyPK:     s.ReplyKey.PK,
	}
}

// RequestShare contacts the cluster member at position j (step Ï) and
// stores the decrypted share on success.
func (s *Session) RequestShare(ctx context.Context, j int) error {
	if j < 0 || j >= len(s.cluster) {
		return fmt.Errorf("client: share position %d out of range", j)
	}
	ds, err := s.fetchShare(ctx, j)
	if err != nil {
		return err
	}
	s.addShare(j, ds)
	return nil
}

// addShare records a decrypted share, deduplicating by cluster position
// (a resumed session may race its escrowed copy against a live fetch).
func (s *Session) addShare(pos int, ds lhe.DecryptedShare) {
	s.mu.Lock()
	if !s.held[pos] {
		s.held[pos] = true
		s.shares = append(s.shares, ds)
	}
	s.mu.Unlock()
}

// fetchShare performs the relay round trip and reply decryption for one
// cluster position without touching session state.
func (s *Session) fetchShare(ctx context.Context, j int) (lhe.DecryptedShare, error) {
	reply, err := s.client.provider.RelayRecover(ctx, s.request(j))
	if err != nil {
		return lhe.DecryptedShare{}, err
	}
	return s.client.decryptReply(s.ReplyKey, s.ct.Salt, reply)
}

// ShareError records the failure of one cluster position during a share
// fan-out.
type ShareError struct {
	Pos int
	Err error
}

func (e ShareError) Error() string {
	return fmt.Sprintf("client: share position %d: %v", e.Pos, e.Err)
}

// RequestShares contacts every not-yet-collected cluster member
// concurrently (step Ï at datacenter speed: parallel HSM round trips
// instead of sequential ones) and returns once the session holds at least
// t shares — the early-exit path for latency-critical recoveries. The
// moment the threshold is met the remaining laggard requests are
// cancelled: their contexts propagate through the provider to the
// in-flight HSM exchanges, so nothing keeps running (or punctures keys)
// for a recovery that is already decided. Per-position failures are
// collected and returned; they are not fatal as long as t shares come
// back (Property 3, fault tolerance).
func (s *Session) RequestShares(ctx context.Context) []ShareError {
	return s.fanOut(ctx, true)
}

// RequestAllShares contacts every not-yet-collected cluster member
// concurrently and waits for all of them to answer, so every reachable HSM
// has punctured by the time it returns (the paper's forward-secrecy
// guarantee is immediate, not eventual). Recover uses this.
func (s *Session) RequestAllShares(ctx context.Context) []ShareError {
	return s.fanOut(ctx, false)
}

// fanOut runs the parallel share collection; earlyExit stops waiting — and
// cancels the laggards — once the threshold is met.
func (s *Session) fanOut(ctx context.Context, earlyExit bool) []ShareError {
	need := s.client.params.Threshold()
	if earlyExit && s.SharesHeld() >= need {
		return nil // e.g. a resumed session whose escrow already met t
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // early exit or return: abort every in-flight laggard
	type result struct {
		pos int
		ds  lhe.DecryptedShare
		err error
	}
	s.mu.Lock()
	todo := make([]int, 0, len(s.cluster))
	for j := range s.cluster {
		if !s.held[j] {
			todo = append(todo, j)
		}
	}
	s.mu.Unlock()
	results := make(chan result, len(todo))
	for _, j := range todo {
		go func(j int) {
			ds, err := s.fetchShare(ctx, j)
			results <- result{pos: j, ds: ds, err: err}
		}(j)
	}
	var errs []ShareError
	for range todo {
		r := <-results
		if r.err != nil {
			errs = append(errs, ShareError{Pos: r.pos, Err: r.err})
		} else {
			s.addShare(r.pos, r.ds)
		}
		// Checked after failures too: a session that already holds t
		// (escrow replay, earlier partial run) must not wait out — or
		// keep burning punctures at — the remaining laggards.
		if earlyExit && s.SharesHeld() >= need {
			break // deferred cancel() reaps the laggards
		}
	}
	return errs
}

// decryptReply opens one escrowable HSM reply with the ephemeral key.
func (c *Client) decryptReply(kp ecgroup.KeyPair, salt []byte, reply *protocol.RecoveryReply) (lhe.DecryptedShare, error) {
	box, err := elgamal.CiphertextFromBytes(reply.Box)
	if err != nil {
		return lhe.DecryptedShare{}, err
	}
	pt, err := elgamal.Decrypt(kp.SK, kp.PK, box, protocol.ReplyAD(c.user, salt, reply.SharePos))
	if err != nil {
		return lhe.DecryptedShare{}, fmt.Errorf("client: opening HSM reply: %w", err)
	}
	share, err := shamir.ShareFromBytes(pt)
	if err != nil {
		return lhe.DecryptedShare{}, err
	}
	return lhe.DecryptedShare{Pos: reply.SharePos, Share: share}, nil
}

// SharesHeld returns how many usable shares the session has collected.
func (s *Session) SharesHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shares)
}

// Finish reconstructs the backed-up message from the collected shares
// (step Ð + Reconstruct), clears the escrow, and rotates the client's salt
// so future backups select a fresh cluster (§8). Escrow cleanup is
// best-effort: once reconstruction succeeds the plaintext is returned even
// if the ClearEscrow RPC fails — every HSM has already punctured, so
// failing the recovery over a cleanup error would lose the data forever
// (the provider's escrow bound evicts the leftovers on the next attempt).
func (s *Session) Finish(ctx context.Context) ([]byte, error) {
	s.mu.Lock()
	shares := append([]lhe.DecryptedShare(nil), s.shares...)
	s.mu.Unlock()
	if len(shares) < s.client.params.Threshold() {
		return nil, fmt.Errorf("%w: have %d, need %d",
			ErrTooFewShares, len(shares), s.client.params.Threshold())
	}
	msg, err := s.client.params.Reconstruct(s.client.user, s.ct, shares)
	if err != nil {
		return nil, err
	}
	// Rotate the salt before touching the escrow: if the rotation fails
	// the escrow is still intact, so the caller can always fall back to
	// CompleteFromEscrow — no failure ordering here can strand the data.
	if err := s.client.refreshSalt(); err != nil {
		return nil, err
	}
	_ = s.client.provider.ClearEscrow(ctx, s.client.user)
	return msg, nil
}

// Recover runs the complete recovery flow: Begin, contact the whole
// cluster in parallel, Finish. Individual HSM failures are tolerated as
// long as t shares come back (Property 3, fault tolerance). The context
// bounds the whole flow; use BeginRecovery for a resumable session.
//
//spin:secret pin
func (c *Client) Recover(ctx context.Context, pin string) ([]byte, error) {
	s, err := c.Begin(ctx, pin)
	if err != nil {
		return nil, err
	}
	errs := s.RequestAllShares(ctx)
	msg, err := s.Finish(ctx)
	if err != nil {
		if len(errs) > 0 {
			return nil, fmt.Errorf("%w (last HSM error: %v)", err, errs[len(errs)-1].Err)
		}
		return nil, err
	}
	return msg, nil
}

// CompleteFromEscrow finishes an interrupted recovery on a replacement
// device (§8): given the recovered ephemeral keypair (itself restored via a
// nested SafetyPin backup), decrypt the provider-escrowed HSM replies and
// reconstruct. The original ciphertext is already punctured, so this is the
// only remaining path to the data. ResumeRecovery is the structured
// version of this flow for devices that kept a session token.
func (c *Client) CompleteFromEscrow(ctx context.Context, replyKP ecgroup.KeyPair) ([]byte, error) {
	blob, err := c.provider.FetchCiphertext(ctx, c.user)
	if err != nil {
		return nil, err
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		return nil, err
	}
	replies, err := c.provider.FetchEscrowedReplies(ctx, c.user)
	if err != nil {
		return nil, err
	}
	if len(replies) == 0 {
		return nil, errors.New("client: no escrowed replies")
	}
	var shares []lhe.DecryptedShare
	for _, r := range replies {
		ds, err := c.decryptReply(replyKP, ct.Salt, r)
		if err != nil {
			continue
		}
		shares = append(shares, ds)
	}
	if len(shares) < c.params.Threshold() {
		return nil, fmt.Errorf("%w: escrow yielded %d of %d",
			ErrTooFewShares, len(shares), c.params.Threshold())
	}
	msg, err := c.params.Reconstruct(c.user, ct, shares)
	if err != nil {
		return nil, err
	}
	// Best-effort, as in Finish: the data outranks escrow hygiene.
	_ = c.provider.ClearEscrow(ctx, c.user)
	return msg, nil
}

// --- incremental backups (§8) ---

// incrUser namespaces a user's incremental blobs at the provider.
func (c *Client) incrUser() string { return c.user + "/incremental" }

// EnableIncrementalBackups creates a master AES key, protects it with a
// full SafetyPin backup, and returns it for local use.
func (c *Client) EnableIncrementalBackups(ctx context.Context) ([]byte, error) {
	key, err := aead.NewKey(c.rng)
	if err != nil {
		return nil, err
	}
	if err := c.Backup(ctx, key); err != nil {
		return nil, err
	}
	return key, nil
}

// IncrementalBackup encrypts one incremental image under the master key and
// uploads it. No HSM interaction occurs.
func (c *Client) IncrementalBackup(ctx context.Context, masterKey, data []byte) error {
	blob, err := aead.Seal(masterKey, data, []byte("safetypin/incremental/v1|"+c.user))
	if err != nil {
		return err
	}
	return c.provider.StoreCiphertext(ctx, c.incrUser(), blob)
}

// FetchIncremental decrypts the latest incremental blob with the (possibly
// just-recovered) master key.
func (c *Client) FetchIncremental(ctx context.Context, masterKey []byte) ([]byte, error) {
	blob, err := c.provider.FetchCiphertext(ctx, c.incrUser())
	if err != nil {
		return nil, err
	}
	return aead.Open(masterKey, blob, []byte("safetypin/incremental/v1|"+c.user))
}
