package client

// session.go gives recovery the shape real deployments need (§8 "failure
// during recovery"): a long-lived, resumable session instead of one
// blocking call. BeginRecovery reserves the attempt and returns a
// RecoverySession; SessionToken serializes the session's identity — the
// (user, attempt) escrow key, the commitment opening, and the per-recovery
// ephemeral keypair — so a device that crashes mid-fan-out can hand the
// token to its replacement (typically via a nested SafetyPin backup) and
// ResumeRecovery there: escrowed replies are replayed, only the missing
// cluster positions are re-requested, and no second attempt is reserved —
// a crash costs zero additional guesses.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"safetypin/internal/ecgroup"
	"safetypin/internal/lhe"
	"safetypin/internal/protocol"
)

// RecoverySession is a resumable recovery handle: a Session plus the
// serialization that lets a replacement device pick it up.
type RecoverySession struct {
	*Session
}

// BeginRecovery starts a resumable recovery: Begin (reserving an attempt
// and logging it) wrapped in a RecoverySession whose token survives a
// crash. pin overrides the stored PIN when non-empty.
func (c *Client) BeginRecovery(ctx context.Context, pin string) (*RecoverySession, error) {
	s, err := c.Begin(ctx, pin)
	if err != nil {
		return nil, err
	}
	return &RecoverySession{Session: s}, nil
}

// tokenVersion tags the session-token serialization so future layouts can
// coexist with stored tokens.
const tokenVersion byte = 1

// SessionToken serializes everything a replacement process needs to resume
// this recovery: user, attempt index, commitment nonce, ciphertext hash,
// cluster opening, and the ephemeral reply keypair. The token contains the
// recovery cluster (a salted function of the PIN) and the reply secret
// key, so it must be protected like the device's other secrets — the §8
// flow nests it inside another SafetyPin backup.
func (s *RecoverySession) SessionToken() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte(tokenVersion)
	writeBytes(&b, []byte(s.client.user))
	writeUvarint(&b, uint64(s.attempt))
	writeBytes(&b, s.nonce)
	ctHash := protocol.HashCiphertext(s.ctBlob)
	b.Write(ctHash[:])
	writeUvarint(&b, uint64(len(s.cluster)))
	for _, idx := range s.cluster {
		writeUvarint(&b, uint64(idx))
	}
	writeBytes(&b, s.ReplyKey.SK.Bytes())
	writeBytes(&b, s.ReplyKey.PK.Bytes())
	return b.Bytes(), nil
}

// sessionToken is the parsed form.
type sessionToken struct {
	user    string
	attempt int
	nonce   []byte
	ctHash  protocol.CtHash
	cluster []int
	reply   ecgroup.KeyPair
}

func parseSessionToken(tok []byte) (*sessionToken, error) {
	r := bytes.NewReader(tok)
	v, err := r.ReadByte()
	if err != nil {
		return nil, errors.New("client: empty session token")
	}
	if v != tokenVersion {
		return nil, fmt.Errorf("client: unknown session token version %d", v)
	}
	user, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("client: session token user: %w", err)
	}
	attempt, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("client: session token attempt: %w", err)
	}
	nonce, err := readBytes(r)
	if err != nil || len(nonce) != protocol.CommitNonceSize {
		return nil, errors.New("client: session token nonce malformed")
	}
	var ctHash protocol.CtHash
	if _, err := io.ReadFull(r, ctHash[:]); err != nil {
		return nil, errors.New("client: session token ciphertext hash malformed")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil || n > 1<<16 {
		return nil, errors.New("client: session token cluster malformed")
	}
	cluster := make([]int, n)
	for i := range cluster {
		idx, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, errors.New("client: session token cluster malformed")
		}
		cluster[i] = int(idx)
	}
	skBytes, err := readBytes(r)
	if err != nil {
		return nil, errors.New("client: session token reply key malformed")
	}
	sk, err := ecgroup.ScalarFromBytes(skBytes)
	if err != nil {
		return nil, fmt.Errorf("client: session token reply key: %w", err)
	}
	pkBytes, err := readBytes(r)
	if err != nil {
		return nil, errors.New("client: session token reply key malformed")
	}
	pk, err := ecgroup.PointFromBytes(pkBytes)
	if err != nil {
		return nil, fmt.Errorf("client: session token reply key: %w", err)
	}
	if r.Len() != 0 {
		return nil, errors.New("client: trailing bytes in session token")
	}
	return &sessionToken{
		user:    string(user),
		attempt: int(attempt),
		nonce:   nonce,
		ctHash:  ctHash,
		cluster: cluster,
		reply:   ecgroup.KeyPair{SK: sk, PK: pk},
	}, nil
}

// ResumeRecovery reconstructs a crashed recovery from its session token
// without reserving (or burning) a new attempt. It re-fetches the
// ciphertext (verifying it is the one the session committed to),
// re-derives the inclusion proof for the already-logged attempt, replays
// whatever shares the provider escrowed under (user, attempt), and returns
// a session positioned exactly where the crashed one stopped: call
// RequestShares for the missing positions (already-held ones are skipped)
// and Finish to reconstruct.
func (c *Client) ResumeRecovery(ctx context.Context, token []byte) (*RecoverySession, error) {
	tok, err := parseSessionToken(token)
	if err != nil {
		return nil, err
	}
	if tok.user != c.user {
		return nil, fmt.Errorf("client: session token is for user %q, client is %q", tok.user, c.user)
	}
	blob, err := c.provider.FetchCiphertext(ctx, c.user)
	if err != nil {
		return nil, err
	}
	if protocol.HashCiphertext(blob) != tok.ctHash {
		return nil, errors.New("client: stored ciphertext changed since the session began")
	}
	ct, err := lhe.CiphertextFromBytes(blob)
	if err != nil {
		return nil, err
	}
	for _, pos := range tok.cluster {
		if pos < 0 || pos >= c.params.Total() {
			return nil, errors.New("client: session token cluster out of range")
		}
	}
	if len(tok.cluster) != len(ct.Shares) {
		return nil, errors.New("client: session token cluster does not match ciphertext")
	}
	// The attempt was logged (and its epoch committed) before the token
	// could exist, so the inclusion proof is served from the committed log.
	commit := protocol.Commitment(c.user, ct.Salt, tok.ctHash, tok.cluster, tok.nonce)
	trace, err := c.provider.FetchInclusionProof(ctx, c.user, tok.attempt, commit)
	if err != nil {
		return nil, fmt.Errorf("client: resuming attempt %d: %w", tok.attempt, err)
	}
	s := &Session{
		client:   c,
		ct:       ct,
		ctBlob:   blob,
		cluster:  tok.cluster,
		attempt:  tok.attempt,
		nonce:    tok.nonce,
		trace:    trace,
		ReplyKey: tok.reply,
		held:     make(map[int]bool),
	}
	// Replay the escrow: shares the crashed device already extracted (each
	// HSM has punctured for them — they can never be re-fetched live).
	replies, err := c.provider.FetchEscrowedReplies(ctx, c.user)
	if err != nil {
		return nil, err
	}
	for _, r := range replies {
		if r.SharePos < 0 || r.SharePos >= len(s.cluster) {
			continue
		}
		ds, err := c.decryptReply(s.ReplyKey, ct.Salt, r)
		if err != nil {
			continue // escrow from another attempt/key: not ours
		}
		s.addShare(r.SharePos, ds)
	}
	return &RecoverySession{Session: s}, nil
}

// --- token encoding helpers ---

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeBytes(b *bytes.Buffer, p []byte) {
	writeUvarint(b, uint64(len(p)))
	b.Write(p)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, errors.New("length prefix exceeds input")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}
