package client

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// fleetPunctures sums puncture counters across the rig's HSMs: the
// ground truth for "how many shares were ever decrypted".
func (r *rig) fleetPunctures() int64 {
	var n int64
	for _, h := range r.hsms {
		n += h.Punctures()
	}
	return n
}

// TestConcurrentResumeSameToken is the session-resume abuse regression:
// many devices resuming the same session token at once must not
// double-replay escrowed shares into fresh HSM decryptions, and must
// not burn a second attempt. Each cluster position may be punctured at
// most once for the whole storm, no matter how the resumes interleave.
// Run under -race: the point is the interleaving, not the happy path.
func TestConcurrentResumeSameToken(t *testing.T) {
	r := newRig(t, 8) // cluster 4, threshold 2
	c := r.client(t, "stormed", "123456")
	msg := []byte("resume storm payload")
	if err := c.Backup(tctx, msg); err != nil {
		t.Fatal(err)
	}
	s, err := c.BeginRecovery(tctx, "")
	if err != nil {
		t.Fatal(err)
	}
	token, err := s.SessionToken()
	if err != nil {
		t.Fatal(err)
	}
	// Partial progress before the crash: one share escrowed.
	if err := s.RequestShare(tctx, 0); err != nil {
		t.Fatal(err)
	}
	attemptsBefore, err := r.prov.AttemptCount(tctx, "stormed")
	if err != nil {
		t.Fatal(err)
	}

	const devices = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		recovered int
	)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c2 := r.client(t, "stormed", "123456")
			s2, err := c2.ResumeRecovery(tctx, token)
			if err != nil {
				t.Errorf("resume: %v", err)
				return
			}
			s2.RequestAllShares(tctx) // punctured positions fail; that's fine
			got, err := s2.Finish(tctx)
			if err != nil {
				// A racer that saw only already-cleared escrow and fully
				// punctured HSMs legitimately comes up short — but it must
				// fail closed, not reconstruct garbage.
				if !errors.Is(err, ErrTooFewShares) {
					t.Errorf("finish failed oddly: %v", err)
				}
				return
			}
			if !bytes.Equal(got, msg) {
				t.Error("concurrent resume reconstructed wrong plaintext")
				return
			}
			mu.Lock()
			recovered++
			mu.Unlock()
		}()
	}
	wg.Wait()

	if recovered == 0 {
		t.Fatal("no resuming device reconstructed the backup")
	}
	// No double replay: every cluster position decrypted (and punctured)
	// at most once across the entire storm.
	if p := r.fleetPunctures(); p > int64(r.params.ClusterSize()) {
		t.Fatalf("storm drove %d punctures across a cluster of %d: escrowed shares were re-fetched live", p, r.params.ClusterSize())
	}
	// No second attempt: resumption is free only in the sense that it
	// re-uses the already-burned guess.
	attemptsAfter, err := r.prov.AttemptCount(tctx, "stormed")
	if err != nil {
		t.Fatal(err)
	}
	if attemptsAfter != attemptsBefore {
		t.Fatalf("resume storm burned attempts: %d → %d", attemptsBefore, attemptsAfter)
	}
}
