package experiments

// setup.go measures fleet construction time: what it costs the provider
// to provision an N-HSM deployment from nothing. The paper's evaluation
// treats the fleet as given; at datacenter scale (§9 sketches N = 10^4
// and beyond) provisioning is itself a workload — N BLS signing keypairs,
// N puncturable BFE keys of M curve points each, N secure-deletion trees,
// and an N-entry signing roster installed on every HSM. This experiment
// sweeps fleet sizes and provisioning-pool widths so the batch-keygen and
// parallel-provisioning work is visible as a number rather than a claim:
// on a multi-core host the pool approaches core-count speedup (HSM
// provisioning is embarrassingly parallel); on a single-core host the two
// columns coincide and the batch amortizations (one Montgomery inversion
// per key batch, bulk securestore entropy) are the whole win.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"safetypin"
	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
)

// SetupConfig parameterizes a fleet-construction sweep.
type SetupConfig struct {
	// Fleets is the list of fleet sizes N to construct (default 64, 256).
	Fleets []int
	// Workers lists the provisioning pool widths to compare (default
	// {1, 0}: sequential baseline vs GOMAXPROCS pool).
	Workers []int
	// BFE sizes each HSM's puncturable key (default M=256, K=4 — small
	// enough that the sweep measures provisioning machinery, not only
	// P-256 multiplications).
	BFE bfe.Params
	// Scheme is the signing scheme (default BLS, the paper's choice and
	// the batch-keygen beneficiary).
	Scheme aggsig.Scheme
}

func (c SetupConfig) withDefaults() SetupConfig {
	if len(c.Fleets) == 0 {
		c.Fleets = []int{64, 256}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 0}
	}
	if c.BFE.M == 0 {
		c.BFE = bfe.Params{M: 256, K: 4}
	}
	if c.Scheme == nil {
		c.Scheme = aggsig.BLS()
	}
	return c
}

// SetupPoint is one (fleet size, pool width) construction measurement.
type SetupPoint struct {
	NumHSMs int `json:"num_hsms"`
	// Workers is the configured pool width; 0 means GOMAXPROCS
	// (EffectiveWorkers records what that resolved to).
	Workers          int     `json:"workers"`
	EffectiveWorkers int     `json:"effective_workers"`
	ConstructSeconds float64 `json:"construct_seconds"`
	PerHSMMillis     float64 `json:"per_hsm_ms"`
}

// SetupReport is the machine-readable record of a construction sweep.
type SetupReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	BFEM       int          `json:"bfe_m"`
	BFEK       int          `json:"bfe_k"`
	Points     []SetupPoint `json:"points"`
}

// JSON renders the report indented.
func (r SetupReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FleetSetup constructs a deployment per (fleet, workers) pair and times
// it. Deployments are closed as soon as they are measured; only the
// timings survive.
func FleetSetup(cfg SetupConfig) (SetupReport, error) {
	cfg = cfg.withDefaults()
	rep := SetupReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BFEM:       cfg.BFE.M,
		BFEK:       cfg.BFE.K,
	}
	for _, n := range cfg.Fleets {
		cluster := 8
		if cluster > n/2 {
			cluster = n / 2
		}
		if cluster < 1 {
			cluster = 1
		}
		for _, w := range cfg.Workers {
			start := time.Now()
			d, err := safetypin.NewDeployment(safetypin.Params{
				NumHSMs:          n,
				ClusterSize:      cluster,
				Threshold:        (cluster + 1) / 2,
				BFE:              cfg.BFE,
				MinSignerFrac:    0.5,
				Scheme:           cfg.Scheme,
				ProvisionWorkers: w,
			})
			if err != nil {
				return rep, fmt.Errorf("setup N=%d workers=%d: %w", n, w, err)
			}
			elapsed := time.Since(start)
			d.Close()
			eff := w
			if eff <= 0 {
				eff = rep.GOMAXPROCS
			}
			if eff > n {
				eff = n
			}
			rep.Points = append(rep.Points, SetupPoint{
				NumHSMs:          n,
				Workers:          w,
				EffectiveWorkers: eff,
				ConstructSeconds: elapsed.Seconds(),
				PerHSMMillis:     elapsed.Seconds() * 1e3 / float64(n),
			})
		}
	}
	return rep, nil
}

// RenderSetup renders a construction sweep as a human-readable table.
func RenderSetup(rep SetupReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet construction time (BFE M=%d K=%d, GOMAXPROCS=%d)\n",
		rep.BFEM, rep.BFEK, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%8s %8s %12s %12s\n", "N", "workers", "construct", "per-HSM")
	for _, p := range rep.Points {
		w := fmt.Sprintf("%d", p.EffectiveWorkers)
		if p.Workers == 0 {
			w += "*"
		}
		fmt.Fprintf(&b, "%8d %8s %12s %12s\n", p.NumHSMs, w,
			(time.Duration(p.ConstructSeconds * float64(time.Second))).Round(time.Millisecond),
			(time.Duration(p.PerHSMMillis * float64(time.Millisecond))).Round(10*time.Microsecond))
	}
	b.WriteString("(* pool width defaulted to GOMAXPROCS)\n")
	return b.String()
}
