package experiments

import (
	"context"
	"time"

	"safetypin/internal/adversary"
)

// AdversaryConfig shapes the `experiments -only adversary` run: the
// security-invariant sweep rather than a performance measurement.
type AdversaryConfig struct {
	// Dist is the -pin-dist flag value: "skewed" (default), "uniform",
	// "uniform4", or a path to a JSON distribution file.
	Dist string
	// Rate throttles each guesser (guesses/sec; 0 → closed loop).
	Rate float64
	// Duration bounds each scenario's hammering phase (0 → the driver
	// default, 3s).
	Duration time.Duration
	// Quick shrinks the run for CI smoke: fewer guessers, shorter
	// hammering.
	Quick bool
}

// Adversary runs the full adversarial sweep — every scenario on both
// storage engines — and returns the invariant report. A non-OK report
// is not an error: the caller decides how loudly to fail.
func Adversary(ctx context.Context, cfg AdversaryConfig) (*adversary.Report, error) {
	dist, err := adversary.LoadDist(cfg.Dist)
	if err != nil {
		return nil, err
	}
	acfg := adversary.Config{
		Dist:     dist,
		Rate:     cfg.Rate,
		Duration: cfg.Duration,
	}
	if cfg.Quick {
		acfg.Guessers = 4
		if acfg.Duration == 0 {
			acfg.Duration = 500 * time.Millisecond
		}
	}
	return adversary.Run(ctx, acfg)
}
