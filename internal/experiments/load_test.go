package experiments

import (
	"testing"
	"time"

	"safetypin/internal/bfe"
)

func TestMultiUserLoadSmoke(t *testing.T) {
	res, err := MultiUserLoad(LoadConfig{
		NumHSMs:     12,
		ClusterSize: 4,
		Threshold:   2,
		BFE:         bfe.Params{M: 256, K: 4},
		Users:       4,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveriesPerSec <= 0 {
		t.Fatalf("bad throughput: %+v", res)
	}
	if res.MeanLatency <= 0 || res.MaxLatency < res.MeanLatency {
		t.Fatalf("bad latency accounting: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRecoveryLatencyParallelBeatsSerial(t *testing.T) {
	// In the paper's regime recovery is HSM-latency-bound; with a modeled
	// per-HSM delay the concurrent fan-out must beat the serial loop even
	// on a single-core host (the sleeps overlap, the crypto does not).
	cmp, err := RecoveryLatencyComparison(LoadConfig{
		NumHSMs:     16,
		ClusterSize: 8,
		Threshold:   4,
		BFE:         bfe.Params{M: 256, K: 4},
		HSMLatency:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() < 1.5 {
		t.Fatalf("parallel fan-out not faster: %v", cmp)
	}
}

func TestLoadSweepRenders(t *testing.T) {
	out, err := LoadSweep([]int{8}, []int{1, 4}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty sweep")
	}
}
