package experiments

import (
	"crypto/rand"
	"fmt"
	"strings"
	"time"

	"safetypin/internal/aggsig"
	"safetypin/internal/baseline"
	"safetypin/internal/bfe"
	"safetypin/internal/dlog"
	"safetypin/internal/ecgroup"
	"safetypin/internal/elgamal"
	"safetypin/internal/meter"
	"safetypin/internal/securestore"
	"safetypin/internal/simtime"
)

// MeasureHostRates benchmarks this host's crypto primitives for Table 7.
func MeasureHostRates() *HostRates {
	kp, _ := ecgroup.GenerateKeyPair(rand.Reader)
	s, _ := ecgroup.RandomScalar(rand.Reader)
	elCT, _ := elgamal.Encrypt(kp.PK, make([]byte, 32), nil, rand.Reader)
	key := make([]byte, 16)
	msg32 := make([]byte, 32)
	return &HostRates{
		ECMulPerSec: timeRate(func() { ecgroup.BaseMul(s) }),
		ElGamalDecPerSec: timeRate(func() {
			if _, err := elgamal.Decrypt(kp.SK, kp.PK, elCT, nil); err != nil {
				panic(err)
			}
		}),
		PairingPerSec:   measurePairingRate(),
		G1MulPerSec:     measureG1MulRate(),
		RosterAggPerSec: measureRosterAggRate(),
		HMACPerSec:      timeRate(func() { _ = hmacOnce(msg32) }),
		AES32PerSec:     timeRate(func() { _ = aesOnce(key, msg32) }),
	}
}

// --- Figure 8: log-audit time vs data-center size ---

// Fig8Point is one measured point: with N HSMs sharing the audit, how long
// one HSM spends auditing an epoch of `inserts` insertions (λ = 128 chunks
// audited, 1/N of the insertions per chunk).
type Fig8Point struct {
	DataCenterSize int
	AuditSeconds   float64 // simulated SoloKey time, at the materialized depth
	AuditSecondsAt float64 // extrapolated to the paper's ~100M-entry log depth
}

// Fig8Config sizes the experiment.
type Fig8Config struct {
	BaseLogSize int   // pre-existing committed entries (paper: ~100M)
	Inserts     int   // new insertions this epoch (paper: 10K)
	Lambda      int   // chunks audited per HSM (paper: 128)
	Sizes       []int // data-center sizes to sweep
}

// DefaultFig8Config mirrors the paper at a materializable base-log size.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		BaseLogSize: 1 << 17,
		Inserts:     10000,
		Lambda:      128,
		Sizes:       []int{2500, 5000, 7500, 10000},
	}
}

// Fig8 measures per-HSM log-audit time as the fleet grows: each HSM audits
// λ chunks of I/N insertions each, so its work shrinks as 1/N — the
// scalability claim of §6.2.
func Fig8(cfg Fig8Config) ([]Fig8Point, error) {
	scheme := aggsig.ECDSAConcat() // signature scheme doesn't affect audit cost shape
	signer, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		return nil, err
	}
	roster := []aggsig.PublicKey{signer.PublicKey()}

	var out []Fig8Point
	for _, n := range cfg.Sizes {
		numChunks := n
		if numChunks > cfg.Inserts {
			numChunks = cfg.Inserts
		}
		dcfg := dlog.Config{
			NumChunks:     numChunks,
			AuditsPerHSM:  cfg.Lambda,
			MinSignerFrac: 0.01,
			Scheme:        scheme,
		}
		p := dlog.NewProvider(dcfg)
		m := meter.New()
		auditor, err := dlog.NewAuditor(dcfg, 0, roster, signer, m)
		if err != nil {
			return nil, err
		}
		// Commit the base log in one cheap epoch (audit 1 chunk).
		baseCfg := dcfg
		baseCfg.AuditsPerHSM = 1
		baseProvider := p
		for i := 0; i < cfg.BaseLogSize; i++ {
			if err := baseProvider.Append([]byte(fmt.Sprintf("base-%d", i)), []byte("v")); err != nil {
				return nil, err
			}
		}
		baseAuditor, err := dlog.NewAuditor(baseCfg, 0, roster, signer, nil)
		if err != nil {
			return nil, err
		}
		if err := runOneEpoch(baseProvider, baseAuditor); err != nil {
			return nil, err
		}
		// Sync the measured auditor to the committed digest by replaying
		// the same commit path (the base epoch is not what we measure).
		// Simplest: hand it the digest via a fresh auditor trick — instead
		// we run the measured epoch against a fresh auditor primed by
		// committing the base epoch through it too, unmetered.
		if err := primeAuditor(auditor, baseAuditor); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Inserts; i++ {
			if err := p.Append([]byte(fmt.Sprintf("epoch-%d", i)), []byte("v")); err != nil {
				return nil, err
			}
		}
		m.Reset()
		if err := runOneEpoch(p, auditor); err != nil {
			return nil, err
		}
		b := simtime.Cost(m, simtime.SoloKey())
		// Depth extrapolation: trace length grows with log2 of the log
		// size; symmetric and I/O audit costs scale with it.
		measuredDepth := log2ceil(cfg.BaseLogSize)
		paperDepth := log2ceil(100_000_000)
		scale := float64(paperDepth) / float64(measuredDepth)
		extrap := simtime.Breakdown{
			PublicKey: b.PublicKey,
			Symmetric: b.Symmetric * scale,
			IO:        b.IO * scale,
		}
		out = append(out, Fig8Point{
			DataCenterSize: n,
			AuditSeconds:   b.Total(),
			AuditSecondsAt: extrap.Total(),
		})
	}
	return out, nil
}

func log2ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}

// primeAuditor fast-forwards a to b's digest state by replaying a trivial
// commit: both auditors share the same key, so we simply copy the digest by
// running HandleCommit on an epoch both would accept. dlog keeps digests
// private, so we reuse GarbageCollect+manual path: instead, prime by
// construction — a is created fresh, so we replay the base epoch into it.
func primeAuditor(dst, src *dlog.Auditor) error {
	// Both auditors started at the empty digest; the base epoch was
	// committed through src only. Rather than replay (the staged epoch is
	// gone), we exploit that dlog exposes digests: dst must equal src.
	if dst.Digest() == src.Digest() {
		return nil
	}
	return dst.SyncDigestForTest(src.Digest())
}

// runOneEpoch drives build→choose→audit→commit for a single auditor.
func runOneEpoch(p *dlog.Provider, a *dlog.Auditor) error {
	hdr, err := p.BuildEpoch()
	if err != nil {
		return err
	}
	chunks, err := a.ChooseChunks(hdr)
	if err != nil {
		return err
	}
	pkg, err := p.AuditPackageFor(chunks)
	if err != nil {
		return err
	}
	sig, err := a.HandleAudit(pkg)
	if err != nil {
		return err
	}
	cm, err := p.Commit([][]byte{sig}, []int{0})
	if err != nil {
		return err
	}
	return a.HandleCommit(cm)
}

// --- Figure 9: decrypt+puncture vs puncture budget ---

// Fig9Point is one measured decrypt-and-puncture cost at a given key size.
type Fig9Point struct {
	Punctures      int // recoveries before key rotation (x axis)
	SecretKeyBytes int
	Cost           simtime.Breakdown
}

// Fig9 measures a single HSM's decrypt+puncture cost as the puncturable key
// grows (Figure 9): I/O and symmetric work grow logarithmically with the
// key; public-key work is constant.
func Fig9(budgets []int) ([]Fig9Point, error) {
	var out []Fig9Point
	for _, p := range budgets {
		params := bfe.ParamsForPunctures(p, 4)
		m := meter.New()
		oracle := securestore.NewMemOracle()
		sk, err := bfe.KeyGenSecretOnly(params, oracle, rand.Reader, m)
		if err != nil {
			return nil, err
		}
		// Build one ciphertext against lazily derived public keys.
		tag := make([]byte, bfe.TagSize)
		if _, err := rand.Read(tag); err != nil {
			return nil, err
		}
		pub := &bfe.PublicKey{Params: params}
		pub.Points = make([]ecgroup.Point, params.M)
		pos, err := bfe.PositionsForTag(params, tag)
		if err != nil {
			return nil, err
		}
		for _, i := range pos {
			pt, err := sk.PublicKeyAt(i)
			if err != nil {
				return nil, err
			}
			pub.Points[i] = pt
		}
		ct, err := pub.EncryptWithTag(tag, []byte("0123456789abcdef0123456789abcdef0123"), []byte("fig9"), rand.Reader)
		if err != nil {
			return nil, err
		}
		m.Reset()
		if _, err := sk.DecryptAndPuncture(ct, []byte("fig9")); err != nil {
			return nil, err
		}
		out = append(out, Fig9Point{
			Punctures:      p,
			SecretKeyBytes: params.SecretKeyBytes(),
			Cost:           simtime.Cost(m, simtime.SoloKey()),
		})
	}
	return out, nil
}

// RenderFig9 formats the series.
func RenderFig9(points []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: decrypt+puncture time vs punctures before rotation (SoloKey time)\n")
	fmt.Fprintf(&b, "%-12s %-10s %10s %10s %10s %10s\n",
		"punctures", "key size", "total", "io", "sym", "pub")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12d %-10s %10s %10s %10s %10s\n",
			p.Punctures, fmtBytes(p.SecretKeyBytes),
			fmtDur(p.Cost.Total()), fmtDur(p.Cost.IO), fmtDur(p.Cost.Symmetric), fmtDur(p.Cost.PublicKey))
	}
	return b.String()
}

// RenderFig8 formats the series.
func RenderFig8(points []Fig8Point, cfg Fig8Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: per-HSM log-audit time, %d insertions, λ=%d audited chunks\n",
		cfg.Inserts, cfg.Lambda)
	fmt.Fprintf(&b, "%-18s %22s %22s\n", "data center size", fmt.Sprintf("at %d entries", cfg.BaseLogSize), "extrapolated to 100M")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18d %22s %22s\n", p.DataCenterSize,
			fmtDur(p.AuditSeconds), fmtDur(p.AuditSecondsAt))
	}
	return b.String()
}

// --- baseline measurement for Figure 10 ---

// BaselineCosts measures the §9.2 baseline: save is one client-side
// encryption, recovery is one HSM ElGamal decryption plus a hash check.
type BaselineCosts struct {
	SaveWall    time.Duration
	RecoverCost simtime.Breakdown
}

// MeasureBaseline runs the baseline system once, metered.
func MeasureBaseline() (*BaselineCosts, error) {
	m := meter.New()
	c, err := baseline.NewCluster(baseline.ClusterSize, 10, rand.Reader, []*meter.Meter{m})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ct, err := baseline.Backup(c.PublicKey(), "alice", "123456", make([]byte, 16), rand.Reader)
	if err != nil {
		return nil, err
	}
	saveWall := time.Since(start)
	if _, err := c.Recover("alice", "123456", ct); err != nil {
		return nil, err
	}
	return &BaselineCosts{
		SaveWall:    saveWall,
		RecoverCost: simtime.Cost(m, simtime.SoloKey()),
	}, nil
}
