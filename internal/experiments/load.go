package experiments

// load.go is the multi-user datacenter load experiment behind the
// concurrent-engine work (§9's evaluation regime: thousands of recoveries
// against a 100-HSM fleet with epochs batched every ~10 minutes). It
// measures real wall-clock throughput of the in-process stack — sharded
// provider, epoch scheduler, parallel share fan-out — at varying fleet
// size and client concurrency.
//
// Recovery in the paper's deployment is HSM-latency-bound (a SoloKey
// spends ~0.85s per recovery op), not host-CPU-bound, so LoadConfig can
// inject a per-relay device latency to reproduce that regime: with it the
// serial-vs-parallel comparison reflects the datacenter, not the host's
// core count.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"safetypin"
	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/client"
	"safetypin/internal/protocol"
	"safetypin/internal/provider"
	"safetypin/internal/storage"
)

// LoadConfig parameterizes one multi-user load run.
type LoadConfig struct {
	NumHSMs     int
	ClusterSize int
	Threshold   int
	BFE         bfe.Params
	// Users is how many distinct clients back up and then recover.
	Users int
	// Concurrency is how many recoveries run simultaneously.
	Concurrency int
	// HSMLatency, when non-zero, is added to every relayed HSM request,
	// modeling device/network time (the paper's SoloKeys cost ~0.85s per
	// recovery op; 0 measures raw host speed).
	HSMLatency time.Duration
	// Scheme defaults to the cheap ECDSA ablation so the measurement
	// isolates the system layer rather than pairing time.
	Scheme aggsig.Scheme
	// DataDir, when non-empty, journals all provider state through the
	// WAL+snapshot file engine rooted there, measuring the durable
	// provider's steady-state cost against the in-memory baseline.
	DataDir string
	// ProvisionWorkers bounds NewDeployment's provisioning pool
	// (0 → GOMAXPROCS, 1 → sequential); see safetypin.Params.
	ProvisionWorkers int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.NumHSMs == 0 {
		c.NumHSMs = 24
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 8
	}
	if c.Threshold == 0 {
		c.Threshold = c.ClusterSize / 2
	}
	if c.BFE.M == 0 {
		// Size the filters so Users recoveries fit without rotation.
		c.BFE = bfe.Params{M: 2048, K: 4}
	}
	if c.Users == 0 {
		c.Users = 8
	}
	if c.Concurrency == 0 {
		c.Concurrency = c.Users
	}
	if c.Scheme == nil {
		c.Scheme = aggsig.ECDSAConcat()
	}
	return c
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Config           LoadConfig
	Elapsed          time.Duration
	RecoveriesPerSec float64
	MeanLatency      time.Duration
	MaxLatency       time.Duration
}

func (r LoadResult) String() string {
	return fmt.Sprintf("N=%d n=%d users=%d conc=%d: %.1f recoveries/sec, mean latency %v, max %v",
		r.Config.NumHSMs, r.Config.ClusterSize, r.Config.Users, r.Config.Concurrency,
		r.RecoveriesPerSec, r.MeanLatency.Round(time.Microsecond), r.MaxLatency.Round(time.Microsecond))
}

// latencyAPI wraps a provider, adding a fixed device latency to every
// relayed HSM request. The sleep honours the caller's context, exactly as
// a network round trip would: a cancelled share request returns
// immediately instead of finishing in the background.
type latencyAPI struct {
	client.Provider
	delay time.Duration
}

func (l latencyAPI) RelayRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	if l.delay > 0 {
		t := time.NewTimer(l.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return l.Provider.RelayRecover(ctx, req)
}

// loadDeployment builds the fleet and enrolled clients for a load run.
func loadDeployment(cfg LoadConfig) (*safetypin.Deployment, []*client.Client, error) {
	params := safetypin.Params{
		NumHSMs:          cfg.NumHSMs,
		ClusterSize:      cfg.ClusterSize,
		Threshold:        cfg.Threshold,
		BFE:              cfg.BFE,
		MinSignerFrac:    0.5,
		GuessLimit:       1 << 20,
		Scheme:           cfg.Scheme,
		ProvisionWorkers: cfg.ProvisionWorkers,
	}
	if cfg.DataDir != "" {
		eng, err := storage.OpenFile(cfg.DataDir)
		if err != nil {
			return nil, nil, err
		}
		params.Engine = provider.EngineConfig{Storage: eng, SnapshotEvery: -1}
	}
	d, err := safetypin.NewDeployment(params)
	if err != nil {
		return nil, nil, err
	}
	clients := make([]*client.Client, cfg.Users)
	for i := range clients {
		var api client.Provider = d.Provider
		if cfg.HSMLatency > 0 {
			api = latencyAPI{Provider: d.Provider, delay: cfg.HSMLatency}
		}
		c, err := client.New(fmt.Sprintf("load-user-%d", i), "123456", d.LHEParams(), d.Fleet(), api)
		if err != nil {
			return nil, nil, err
		}
		clients[i] = c
	}
	return d, clients, nil
}

// MultiUserLoad backs up Users clients, then recovers them all with
// Concurrency simultaneous devices, measuring wall-clock throughput and
// per-recovery latency. Every concurrent Begin batches its log insertion
// through the provider's epoch scheduler, so throughput reflects shared
// epochs, striped provider state, and parallel share fan-out together.
func MultiUserLoad(cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	_, clients, err := loadDeployment(cfg)
	if err != nil {
		return LoadResult{}, err
	}
	for i, c := range clients {
		if err := c.Backup(context.Background(), []byte(fmt.Sprintf("disk-image-%d", i))); err != nil {
			return LoadResult{}, err
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	latencies := make([]time.Duration, len(clients))
	errs := make([]error, len(clients))
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c *client.Client) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			_, errs[i] = c.Recover(context.Background(), "")
			latencies[i] = time.Since(t0)
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var sum, max time.Duration
	for i, err := range errs {
		if err != nil {
			return LoadResult{}, fmt.Errorf("load user %d: %w", i, err)
		}
		sum += latencies[i]
		if latencies[i] > max {
			max = latencies[i]
		}
	}
	return LoadResult{
		Config:           cfg,
		Elapsed:          elapsed,
		RecoveriesPerSec: float64(len(clients)) / elapsed.Seconds(),
		MeanLatency:      sum / time.Duration(len(clients)),
		MaxLatency:       max,
	}, nil
}

// LatencyComparison reports one serial and one parallel recovery of the
// same shape.
type LatencyComparison struct {
	Config   LoadConfig
	Serial   time.Duration
	Parallel time.Duration
}

// Speedup is the serial/parallel latency ratio.
func (c LatencyComparison) Speedup() float64 {
	if c.Parallel <= 0 {
		return 0
	}
	return float64(c.Serial) / float64(c.Parallel)
}

func (c LatencyComparison) String() string {
	return fmt.Sprintf("n=%d cluster, HSM latency %v: serial %v, parallel %v (%.1f× faster)",
		c.Config.ClusterSize, c.Config.HSMLatency,
		c.Serial.Round(time.Microsecond), c.Parallel.Round(time.Microsecond), c.Speedup())
}

// RecoveryLatencyComparison measures one recovery with the serial
// share-by-share loop against one with the concurrent fan-out, on the same
// fleet. With a 40-HSM cluster and any realistic per-HSM latency the
// fan-out wins by roughly the cluster size.
func RecoveryLatencyComparison(cfg LoadConfig) (LatencyComparison, error) {
	cfg = cfg.withDefaults()
	cfg.Users = 2
	_, clients, err := loadDeployment(cfg)
	if err != nil {
		return LatencyComparison{}, err
	}
	for i, c := range clients {
		if err := c.Backup(context.Background(), []byte(fmt.Sprintf("disk-image-%d", i))); err != nil {
			return LatencyComparison{}, err
		}
	}
	// Serial baseline: the pre-engine client loop, one HSM at a time.
	s, err := clients[0].Begin(context.Background(), "")
	if err != nil {
		return LatencyComparison{}, err
	}
	t0 := time.Now()
	for j := range s.Cluster() {
		if err := s.RequestShare(context.Background(), j); err != nil {
			return LatencyComparison{}, err
		}
	}
	serial := time.Since(t0)
	if _, err := s.Finish(context.Background()); err != nil {
		return LatencyComparison{}, err
	}
	// Parallel fan-out.
	s2, err := clients[1].Begin(context.Background(), "")
	if err != nil {
		return LatencyComparison{}, err
	}
	t0 = time.Now()
	if errs := s2.RequestAllShares(context.Background()); len(errs) > 0 {
		return LatencyComparison{}, fmt.Errorf("parallel fan-out: %v", errs[0])
	}
	parallel := time.Since(t0)
	if _, err := s2.Finish(context.Background()); err != nil {
		return LatencyComparison{}, err
	}
	return LatencyComparison{Config: cfg, Serial: serial, Parallel: parallel}, nil
}

// LoadSweep runs MultiUserLoad across fleet sizes and concurrency levels
// and renders a table (the cmd/experiments "load" experiment).
func LoadSweep(fleets, concurrencies []int, users int, hsmLatency time.Duration) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-user recovery load (users=%d, per-HSM latency %v)\n", users, hsmLatency)
	fmt.Fprintf(&b, "%8s %8s %8s %14s %14s\n", "N", "cluster", "conc", "rec/sec", "mean-latency")
	for _, n := range fleets {
		cluster := 8
		if cluster > n/2 {
			cluster = n / 2
		}
		for _, conc := range concurrencies {
			res, err := MultiUserLoad(LoadConfig{
				NumHSMs:     n,
				ClusterSize: cluster,
				Threshold:   cluster / 2,
				Users:       users,
				Concurrency: conc,
				HSMLatency:  hsmLatency,
			})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%8d %8d %8d %14.1f %14v\n",
				n, cluster, conc, res.RecoveriesPerSec, res.MeanLatency.Round(time.Microsecond))
		}
	}
	return b.String(), nil
}
