package experiments

import (
	"crypto/aes"
	"crypto/hmac"
	"crypto/sha256"
	"math/big"

	"safetypin/internal/bls"
)

// hostbench.go holds the tiny primitive wrappers MeasureHostRates times.

var hmacKey = make([]byte, 32)

func hmacOnce(msg []byte) []byte {
	mac := hmac.New(sha256.New, hmacKey)
	mac.Write(msg)
	return mac.Sum(nil)
}

func aesOnce(key, msg32 []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err)
	}
	var out [32]byte
	block.Encrypt(out[:16], msg32[:16])
	block.Encrypt(out[16:], msg32[16:])
	return out[:]
}

// measurePairingRate times our from-scratch BLS12-381 pairing (a few ms
// per operation on the limb-based engine, so timeRate's 50 ms budget still
// only fits a couple of dozen iterations).
func measurePairingRate() float64 {
	p, q := bls.G1Generator(), bls.G2Generator()
	return timeRate(func() {
		if _, err := bls.Pair(p, q); err != nil {
			panic(err)
		}
	})
}

// measureG1MulRate times a variable-base G1 scalar multiplication (the GLV
// path signing runs on).
func measureG1MulRate() float64 {
	k := new(big.Int).Rsh(bls.Order(), 1)
	p := bls.G1Generator().Mul(big.NewInt(0xb5))
	return timeRate(func() { p.Mul(k) })
}

// measureRosterAggRate times bls.AggregatePublicKeys over a 256-key roster
// and reports per-key throughput.
func measureRosterAggRate() float64 {
	const n = 256
	pks := make([]*bls.PublicKey, n)
	for i := range pks {
		pk, err := bls.PublicKeyFromBytes(rosterPoint(i))
		if err != nil {
			panic(err)
		}
		pks[i] = pk
	}
	aggs := timeRate(func() {
		if _, err := bls.AggregatePublicKeys(pks); err != nil {
			panic(err)
		}
	})
	return aggs * n
}

// rosterPoint deterministically builds the i-th distinct G2 key encoding.
func rosterPoint(i int) []byte {
	p := bls.G2Generator().Mul(big.NewInt(int64(2*i + 3)))
	return p.Bytes()
}
