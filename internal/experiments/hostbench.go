package experiments

import (
	"crypto/aes"
	"crypto/hmac"
	"crypto/sha256"

	"safetypin/internal/bls"
)

// hostbench.go holds the tiny primitive wrappers MeasureHostRates times.

var hmacKey = make([]byte, 32)

func hmacOnce(msg []byte) []byte {
	mac := hmac.New(sha256.New, hmacKey)
	mac.Write(msg)
	return mac.Sum(nil)
}

func aesOnce(key, msg32 []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err)
	}
	var out [32]byte
	block.Encrypt(out[:16], msg32[:16])
	block.Encrypt(out[16:], msg32[16:])
	return out[:]
}

// measurePairingRate times our from-scratch BLS12-381 pairing (a few ms
// per operation on the limb-based engine, so timeRate's 50 ms budget still
// only fits a couple of dozen iterations).
func measurePairingRate() float64 {
	p, q := bls.G1Generator(), bls.G2Generator()
	return timeRate(func() {
		if _, err := bls.Pair(p, q); err != nil {
			panic(err)
		}
	})
}
