package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zero")
	}
	// 1..1000µs uniform: quantiles must land within the 3.2% bucket error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		errFrac := float64(got-tc.want) / float64(tc.want)
		if errFrac < 0 {
			errFrac = -errFrac
		}
		if errFrac > 0.04 {
			t.Fatalf("q%.2f = %v, want ≈%v (%.1f%% off)", tc.q, got, tc.want, errFrac*100)
		}
	}
	if h.Max() != 1000*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Quantile(1) > h.Max() {
		t.Fatal("quantile exceeded observed max")
	}

	// Merge preserves totals and extrema.
	h2 := NewHistogram()
	h2.Record(5 * time.Millisecond)
	h2.Merge(h)
	if h2.Count() != 1001 || h2.Max() != 5*time.Millisecond {
		t.Fatalf("merge: count=%d max=%v", h2.Count(), h2.Max())
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's midpoint must map back into the same bucket, and
	// indexes must stay in range for the full int64 span.
	for _, v := range []int64{0, 1, 31, 32, 33, 1000, 1 << 20, 1<<62 + 12345, 1<<63 - 1} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		mid := bucketMid(i)
		if bucketIndex(mid) != i {
			t.Fatalf("bucketMid(%d) = %d maps to bucket %d", i, mid, bucketIndex(mid))
		}
		if v >= 32 {
			// Relative bucket error ≤ 1/32.
			lo, hi := mid-v, v-mid
			if lo < 0 {
				lo = -lo
			}
			if hi < 0 {
				hi = -hi
			}
			if lo > v/16 && hi > v/16 {
				t.Fatalf("bucket mid %d too far from %d", mid, v)
			}
		}
	}
}

// TestOpenLoopSmoke drives a short mixed-traffic open-loop run on a tiny
// fleet and sanity-checks the accounting identities.
func TestOpenLoopSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop run takes a couple of wall-clock seconds")
	}
	cfg := OpenLoopConfig{
		Load:     LoadConfig{NumHSMs: 6, ClusterSize: 4, Threshold: 2, Users: 6},
		Rate:     40,
		Duration: 1500 * time.Millisecond,
		Poisson:  true,
		Seed:     7,
	}
	res, err := OpenLoopRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Issued == 0 {
		t.Fatalf("no arrivals issued: %+v", res)
	}
	if res.Issued != res.Completed+res.Errors+res.Busy {
		t.Fatalf("issued %d != completed %d + errors %d + busy %d",
			res.Issued, res.Completed, res.Errors, res.Busy)
	}
	if res.Offered != res.Issued+res.Dropped {
		t.Fatalf("offered %d != issued %d + dropped %d", res.Offered, res.Issued, res.Dropped)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if got := res.Overall.Count; got != res.Completed {
		t.Fatalf("histogram count %d != completed %d", got, res.Completed)
	}
	if res.Overall.P50 <= 0 || res.Overall.P99 < res.Overall.P50 {
		t.Fatalf("implausible quantiles: %+v", res.Overall)
	}
	if res.Errors > res.Issued/4 {
		t.Fatalf("error rate too high: %d of %d", res.Errors, res.Issued)
	}

	// The renderers must mention the fleet and parse back.
	table := RenderOpenLoop([]OpenLoopResult{res})
	if !strings.Contains(table, "p99") {
		t.Fatal("table missing quantile header")
	}
	csv := OpenLoopCSV([]OpenLoopResult{res})
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 2 {
		t.Fatal("CSV should have header + one row")
	}
	rep := OpenLoopReport{Mode: "poisson", Fleets: []OpenLoopFleetReport{{NumHSMs: 6, Sweep: []OpenLoopResult{res}}}}
	blob, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back OpenLoopReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Fleets) != 1 || back.Fleets[0].Sweep[0].NumHSMs != 6 {
		t.Fatal("JSON round trip lost fleet data")
	}
}

// BenchmarkOpenLoopSmoke is the bench-guard smoke shape: a short
// fixed-rate open-loop burst on a small fleet. ns/op is dominated by the
// configured duration plus deployment setup, so the guard catches only
// gross regressions (setup blow-ups, drain hangs), which is the point.
func BenchmarkOpenLoopSmoke(b *testing.B) {
	cfg := OpenLoopConfig{
		Load:     LoadConfig{NumHSMs: 6, ClusterSize: 4, Threshold: 2, Users: 4},
		Rate:     50,
		Duration: 500 * time.Millisecond,
		Seed:     11,
	}
	for i := 0; i < b.N; i++ {
		res, err := OpenLoopRun(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("no completions")
		}
	}
}

// TestOpenLoopDeterministicArrivals pins the open-loop property the
// harness exists for: the arrival schedule depends only on rate and
// seed, never on completions, so two runs at the same rate offer the
// same arrival count even though service times differ.
func TestOpenLoopArrivalAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop run takes wall-clock time")
	}
	cfg := OpenLoopConfig{
		Load:     LoadConfig{NumHSMs: 6, ClusterSize: 4, Threshold: 2, Users: 4},
		Rate:     30,
		Duration: time.Second,
		Seed:     3,
	}
	res, err := OpenLoopRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-rate arrivals over 1s at 30/s: rate·duration scheduled
	// arrivals (±1 for interval rounding) regardless of how long
	// operations took — the schedule must not depend on completions.
	if res.Offered < 30 || res.Offered > 31 {
		t.Fatalf("offered %d arrivals, want 30±1 (open-loop schedule must not depend on completions)", res.Offered)
	}
}
