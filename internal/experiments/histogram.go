package experiments

// histogram.go is an HDR-style latency histogram: log-bucketed with a
// fixed number of linear sub-buckets per power of two, so quantiles are
// accurate to ~3% relative error across nanoseconds-to-minutes without
// storing individual samples. The open-loop load harness records every
// operation's latency here; storing raw samples at thousands of
// arrivals per second would perturb the very tail it is measuring.

import (
	"fmt"
	"math/bits"
	"time"
)

const (
	// histSubBits linear sub-buckets per power of two: 2^5 = 32 gives a
	// worst-case relative error of 1/32 ≈ 3.1% per recorded value.
	histSubBits = 5
	histSubs    = 1 << histSubBits
	// histBuckets covers exact values below histSubs plus 32 sub-buckets
	// for each exponent from histSubBits through 63.
	histBuckets = histSubs + (64-histSubBits)*histSubs
)

// Histogram is a log-bucketed latency histogram. Not safe for
// concurrent use; the harness merges per-worker histograms or guards
// Record with its own lock.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    uint64 // nanoseconds
	max    int64
	min    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: -1} }

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubs {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // top set bit, ≥ histSubBits
	sub := (v >> (uint(e) - histSubBits)) & (histSubs - 1)
	return histSubs + (e-histSubBits)*histSubs + int(sub)
}

// bucketMid is the representative (midpoint) value of bucket i.
func bucketMid(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	e := uint((i-histSubs)/histSubs) + histSubBits
	sub := int64((i - histSubs) % histSubs)
	lo := (int64(1) << e) + sub<<(e-histSubBits)
	return lo + (int64(1)<<(e-histSubBits))/2
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	if h.min < 0 || v < h.min {
		h.min = v
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	if o.min >= 0 && (h.min < 0 || o.min < h.min) {
		h.min = o.min
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Max returns the largest sample (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the latency at quantile q ∈ [0, 1]: the bucket
// midpoint at the q·total-th ranked sample.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			mid := bucketMid(i)
			if mid > h.max {
				mid = h.max // never report beyond the observed max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max)
}

// LatencySummary is the JSON-friendly quantile digest of one histogram.
type LatencySummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary digests the histogram into the standard quantile set.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v p99.9=%v max=%v",
		s.Count, s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.P999.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
