package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"safetypin"
	"safetypin/internal/aggsig"
	"safetypin/internal/bfe"
	"safetypin/internal/client"
	"safetypin/internal/lhe"
	"safetypin/internal/meter"
	"safetypin/internal/simtime"
)

// RecoveryComponents attributes one recovery's per-HSM cost to the paper's
// Figure 10 slices.
type RecoveryComponents struct {
	Log            simtime.Breakdown // log-inclusion verification
	LocationHiding simtime.Breakdown // share handling + reply sealing
	Puncturable    simtime.Breakdown // BFE decrypt + secure deletion
}

// Total sums the slices.
func (c RecoveryComponents) Total() float64 {
	return c.Log.Total() + c.LocationHiding.Total() + c.Puncturable.Total()
}

// splitComponents attributes a meter snapshot to components.
func splitComponents(counts map[meter.Op]int64) RecoveryComponents {
	pick := func(ops ...meter.Op) map[meter.Op]int64 {
		out := make(map[meter.Op]int64)
		for _, op := range ops {
			if v, ok := counts[op]; ok {
				out[op] = v
			}
		}
		return out
	}
	d := simtime.SoloKey()
	return RecoveryComponents{
		Log: simtime.CostOf(pick(meter.OpHMAC), d),
		LocationHiding: simtime.CostOf(pick(meter.OpECMul, meter.OpECDSASign,
			meter.OpECDSAVerify, meter.OpPairing, meter.OpMillerLoop,
			meter.OpFinalExp, meter.OpBLSSign), d),
		Puncturable: simtime.CostOf(pick(meter.OpElGamalDecrypt, meter.OpAES32,
			meter.OpFlashRead32, meter.OpIORoundTrip, meter.OpIOByte), d),
	}
}

// RecoveryMeasurement is one full save+recover execution, metered and
// priced in SoloKey time.
type RecoveryMeasurement struct {
	NumHSMs         int
	ClusterSize     int
	SaveWall        time.Duration // client-side backup wall time (host)
	CiphertextBytes int
	// PerHSMMax is the busiest cluster member's cost (HSMs work in
	// parallel, so this bounds the compute critical path).
	PerHSMMax simtime.Breakdown
	// Components attributes the busiest member's cost.
	Components RecoveryComponents
	// ClusterIOSeconds is the summed I/O of all cluster members: on the
	// paper's testbed every HSM shares one USB fabric, so I/O serializes
	// across the cluster while computation parallelizes.
	ClusterIOSeconds float64
	// SecurityLossBits annotates the Theorem 10 bound at (N, n).
	SecurityLossBits float64
}

// PerShareOverheadSeconds is the client-side cost of handling one HSM's
// share: opening the sealed reply, plus transport scheduling. The value is
// calibrated to the paper's testbed (Figure 11's slope of ~4 ms per extra
// cluster member); our host does this work in microseconds, so the constant
// stands in for the Pixel 4 + USB-fabric costs we cannot measure here. See
// EXPERIMENTS.md.
const PerShareOverheadSeconds = 0.004

// RecoverySeconds is the modeled end-to-end recovery time: the cluster HSMs
// compute and transfer in parallel (each SoloKey hangs off its own USB
// port), so the critical path is the busiest HSM plus the client's serial
// per-share handling.
func (r *RecoveryMeasurement) RecoverySeconds() float64 {
	return r.PerHSMMax.Total() + float64(r.ClusterSize)*PerShareOverheadSeconds
}

// Load converts the measurement into the fleet-planning RecoveryLoad, using
// the paper-scale rotation schedule.
func (r *RecoveryMeasurement) Load() simtime.RecoveryLoad {
	return simtime.RecoveryLoad{
		PerHSMSeconds:   r.PerHSMMax.Total(),
		ClusterSize:     r.ClusterSize,
		RotationSeconds: PaperRotationLoad().Total(),
		RotationEvery:   PaperBFEParams.MaxPunctures(),
	}
}

// MeasureConfig sizes a recovery measurement.
type MeasureConfig struct {
	NumHSMs     int
	ClusterSize int
	BFE         bfe.Params
}

// DefaultMeasureConfig mirrors the paper's 100-HSM testbed with n = 40.
func DefaultMeasureConfig() MeasureConfig {
	return MeasureConfig{NumHSMs: 100, ClusterSize: 40, BFE: bfe.Params{M: 1024, K: 4}}
}

// measureDeployment builds a metered deployment for recovery measurements.
func measureDeployment(cfg MeasureConfig) (*safetypin.Deployment, error) {
	return safetypin.NewDeployment(safetypin.Params{
		NumHSMs:       cfg.NumHSMs,
		ClusterSize:   cfg.ClusterSize,
		Threshold:     cfg.ClusterSize / 2,
		BFE:           cfg.BFE,
		MinSignerFrac: 0.01, // measurement isolates recovery, not quorum policy
		GuessLimit:    16,
		Scheme:        aggsig.ECDSAConcat(),
		Metered:       true,
	})
}

// MeasureRecovery runs one backup + recovery on a metered deployment and
// prices the HSM-side work.
func MeasureRecovery(cfg MeasureConfig) (*RecoveryMeasurement, error) {
	d, err := measureDeployment(cfg)
	if err != nil {
		return nil, err
	}
	return measureOn(d, cfg.ClusterSize, "alice")
}

// measureOn runs one measurement against an existing deployment, with a
// cluster size that may differ from the deployment default (Figure 11's
// sweep reuses one fleet).
func measureOn(d *safetypin.Deployment, clusterSize int, user string) (*RecoveryMeasurement, error) {
	params := d.LHEParams()
	if clusterSize != params.ClusterSize() {
		var err error
		params, err = lheParamsFor(d, clusterSize)
		if err != nil {
			return nil, err
		}
	}
	c, err := client.New(user, "123456", params, d.Fleet(), d.Provider)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := c.Backup(context.Background(), []byte("0123456789abcdef")); err != nil {
		return nil, err
	}
	saveWall := time.Since(start)
	blob, err := d.Provider.FetchCiphertext(context.Background(), user)
	if err != nil {
		return nil, err
	}
	s, err := c.Begin(context.Background(), "")
	if err != nil {
		return nil, err
	}
	d.ResetMeters() // exclude provisioning and the log epoch build
	for j := range s.Cluster() {
		if err := s.RequestShare(context.Background(), j); err != nil {
			return nil, err
		}
	}
	if _, err := s.Finish(context.Background()); err != nil {
		return nil, err
	}
	m := &RecoveryMeasurement{
		NumHSMs:          d.Params().NumHSMs,
		ClusterSize:      clusterSize,
		SaveWall:         saveWall,
		CiphertextBytes:  len(blob),
		SecurityLossBits: simtime.SecurityLossBits(d.Params().NumHSMs, clusterSize),
	}
	for _, idx := range s.Cluster() {
		mm := d.Meter(idx)
		if mm == nil {
			continue
		}
		cost := simtime.Cost(mm, simtime.SoloKey())
		m.ClusterIOSeconds += cost.IO
		if cost.Total() > m.PerHSMMax.Total() {
			m.PerHSMMax = cost
			m.Components = splitComponents(mm.Snapshot())
		}
	}
	return m, nil
}

// lheParamsFor builds cluster-size-override parameters on a deployment.
func lheParamsFor(d *safetypin.Deployment, n int) (lhe.Params, error) {
	t := n / 2
	if t < 1 {
		t = 1
	}
	return lhe.NewParams(d.Params().NumHSMs, n, t)
}

// Fig11Point is one cluster-size sweep entry.
type Fig11Point struct {
	ClusterSize      int
	RecoverySeconds  float64
	Components       RecoveryComponents
	SecurityLossBits float64
}

// Fig11 sweeps the cluster size over one fleet (Figure 11): recovery time
// grows slowly (serialized I/O), while the Theorem 10 security-loss bound
// falls.
func Fig11(cfg MeasureConfig, sizes []int) ([]Fig11Point, error) {
	d, err := measureDeployment(cfg)
	if err != nil {
		return nil, err
	}
	var out []Fig11Point
	for i, n := range sizes {
		d.ResetMeters()
		m, err := measureOn(d, n, fmt.Sprintf("user-%d", i))
		if err != nil {
			return nil, err
		}
		out = append(out, Fig11Point{
			ClusterSize:      n,
			RecoverySeconds:  m.RecoverySeconds(),
			Components:       m.Components,
			SecurityLossBits: m.SecurityLossBits,
		})
	}
	return out, nil
}

// RenderFig11 formats the sweep.
func RenderFig11(points []Fig11Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: recovery time and security-loss bound vs cluster size\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "n", "recovery", "loss (bits)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %12s %12.2f\n", p.ClusterSize, fmtDur(p.RecoverySeconds), p.SecurityLossBits)
	}
	return b.String()
}

// Fig10Report is the save/recover breakdown table.
type Fig10Report struct {
	SafetyPin *RecoveryMeasurement
	Baseline  *BaselineCosts
}

// Fig10 measures SafetyPin and the baseline side by side.
func Fig10(cfg MeasureConfig) (*Fig10Report, error) {
	sp, err := MeasureRecovery(cfg)
	if err != nil {
		return nil, err
	}
	bl, err := MeasureBaseline()
	if err != nil {
		return nil, err
	}
	return &Fig10Report{SafetyPin: sp, Baseline: bl}, nil
}

// Render formats the report.
func (r *Fig10Report) Render() string {
	var b strings.Builder
	sp := r.SafetyPin
	fmt.Fprintf(&b, "Figure 10: save and recovery cost breakdown (N=%d, n=%d)\n",
		sp.NumHSMs, sp.ClusterSize)
	fmt.Fprintf(&b, "save (client wall time):       SafetyPin %v, baseline %v\n",
		sp.SaveWall.Round(time.Millisecond), r.Baseline.SaveWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "recovery ciphertext size:      %s (baseline ~130B)\n", fmtBytes(sp.CiphertextBytes))
	fmt.Fprintf(&b, "recovery, SafetyPin (SoloKey): %s total\n", fmtDur(sp.RecoverySeconds()))
	fmt.Fprintf(&b, "  log check:                   %s\n", fmtDur(sp.Components.Log.Total()))
	fmt.Fprintf(&b, "  location-hiding encryption:  %s\n", fmtDur(sp.Components.LocationHiding.Total()))
	fmt.Fprintf(&b, "  puncturable encryption:      %s\n", fmtDur(sp.Components.Puncturable.Total()))
	fmt.Fprintf(&b, "recovery, baseline (SoloKey):  %s\n", fmtDur(r.Baseline.RecoverCost.Total()))
	return b.String()
}
