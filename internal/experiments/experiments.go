package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"safetypin/internal/bfe"
	"safetypin/internal/meter"
	"safetypin/internal/simtime"
)

// PaperBFEParams reproduces the paper's puncturable-encryption deployment
// numbers: M = 2^21 positions × 32 B = 64 MB secret keys, rotation after
// M/(2K) = 2^18 decryptions, and a key-generation cost of M point
// multiplications ≈ 2^21/7.69 ≈ 75 hours on a SoloKey (§9.1).
var PaperBFEParams = bfe.Params{M: 1 << 21, K: 4}

// DefaultBFEParams is the scaled-down filter used when actually
// materializing keys in experiments (same K as the paper configuration, so
// ciphertext sizes match; smaller M, with store depth reported).
var DefaultBFEParams = bfe.Params{M: 4096, K: 4}

// PaperN and PaperClusterSize are the deployment constants of §9.2.
const (
	PaperN           = 3100
	PaperClusterSize = 40
	PaperFSecret     = 1.0 / 16
	PaperFLive       = 1.0 / 64
	RecoveriesPerYr  = 1e9
)

// PaperRotationLoad prices one paper-scale key rotation in SoloKey time:
// M keypair generations plus re-provisioning the outsourced store.
func PaperRotationLoad() simtime.Breakdown {
	counts := map[meter.Op]int64{
		meter.OpECMul:       int64(PaperBFEParams.M),
		meter.OpAES32:       int64(4 * PaperBFEParams.M), // 2M tree nodes, seal in+out
		meter.OpIORoundTrip: int64(2 * PaperBFEParams.M),
		meter.OpIOByte:      int64(2 * PaperBFEParams.M * 76),
	}
	return simtime.CostOf(counts, simtime.SoloKey())
}

// fmtDur renders seconds compactly.
func fmtDur(s float64) string {
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fm", s/60)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.0fms", s*1000)
	}
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// --- Table 2 ---

// Table2 renders the HSM capability table.
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: hardware security modules (paper-measured rates)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %6s\n", "Device", "Price", "g^x/sec", "Storage", "FIPS")
	for _, d := range append(simtime.Devices(), simtime.IntelCPU()) {
		storage := "n/a"
		if d.StorageKB > 0 {
			storage = fmt.Sprintf("%d KB", d.StorageKB)
		}
		fips := ""
		if d.FIPS {
			fips = "yes"
		}
		fmt.Fprintf(&b, "%-22s %10s %10.2f %10s %6s\n",
			d.Name, fmt.Sprintf("$%.0f", d.PriceUSD), d.GxPerSec, storage, fips)
	}
	return b.String()
}

// --- Table 7 ---

// HostRates measures this host's throughput for the same primitives, giving
// the "CPU vs HSM" contrast of Tables 2/7.
type HostRates struct {
	ECMulPerSec      float64
	ElGamalDecPerSec float64
	PairingPerSec    float64
	HMACPerSec       float64
	AES32PerSec      float64
	// G1MulPerSec is the GLV variable-base BLS12-381 G1 multiplication
	// rate (the signing-side scalar work after the endomorphism overhaul).
	G1MulPerSec float64
	// RosterAggPerSec is per-key throughput of batch-affine G2 roster
	// aggregation (bls.AggregatePublicKeys at n = 256).
	RosterAggPerSec float64
}

// Table7 renders the SoloKey microbenchmark constants, plus host-measured
// rates when measure is non-nil.
func Table7(host *HostRates) string {
	d := simtime.SoloKey()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: microbenchmarks (ops/sec)\n")
	row := func(name string, solo float64, host float64) {
		h := ""
		if host > 0 {
			h = fmt.Sprintf("%14.0f", host)
		}
		fmt.Fprintf(&b, "%-22s %12.2f %s\n", name, solo, h)
	}
	fmt.Fprintf(&b, "%-22s %12s %14s\n", "Operation", "SoloKey", "this host")
	var hr HostRates
	if host != nil {
		hr = *host
	}
	row("Pairing", d.PairingPerSec, hr.PairingPerSec)
	row("G1 scalar mul (GLV)", d.G1MulPerSec(), hr.G1MulPerSec)
	row("Roster agg (per key)", d.G2AddPerSec(), hr.RosterAggPerSec)
	row("ECDSA verify", d.ECDSAVerifyPerSec, 0)
	row("ElGamal decrypt", d.ElGamalDecPerSec, hr.ElGamalDecPerSec)
	row("g^x (P-256)", d.GxPerSec, hr.ECMulPerSec)
	row("HMAC-SHA256", d.HMACPerSec, hr.HMACPerSec)
	row("AES-128 (32B)", d.AES32PerSec, hr.AES32PerSec)
	row("RTT, CDC (32B)", d.IORoundTripPerSec, 0)
	row("Flash read (32B)", d.FlashRead32PerSec, 0)
	return b.String()
}

// timeRate runs fn repeatedly for ~50ms and returns ops/sec.
func timeRate(fn func()) float64 {
	// warm up
	fn()
	start := time.Now()
	n := 0
	for time.Since(start) < 50*time.Millisecond {
		fn()
		n++
	}
	return float64(n) / time.Since(start).Seconds()
}

// --- Figure 11 annotation / security model ---

// SecurityLossRow pairs a cluster size with its Theorem 10 loss bound.
type SecurityLossRow struct {
	ClusterSize int
	LossBits    float64
}

// SecurityLossSeries computes the Figure 11 annotation row.
func SecurityLossSeries(totalHSMs int, sizes []int) []SecurityLossRow {
	out := make([]SecurityLossRow, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, SecurityLossRow{n, simtime.SecurityLossBits(totalHSMs, n)})
	}
	return out
}

// --- Figure 12 ---

// Fig12Point is one point of the throughput-vs-cost curve.
type Fig12Point struct {
	CostUSD           float64
	RecoveriesPerYear float64
}

// Fig12Series sweeps fleet budgets for one device.
type Fig12Series struct {
	Device string
	Points []Fig12Point
}

// Fig12 computes recoveries/year vs retail cost for each HSM model
// (Figure 12), given the measured per-recovery load in SoloKey seconds.
func Fig12(load simtime.RecoveryLoad, maxBudget float64, steps int) []Fig12Series {
	var out []Fig12Series
	for _, d := range simtime.Devices() {
		scale := simtime.SoloKey().GxPerSec / d.GxPerSec
		scaled := simtime.RecoveryLoad{
			PerHSMSeconds:   load.PerHSMSeconds * scale,
			ClusterSize:     load.ClusterSize,
			RotationSeconds: load.RotationSeconds * scale,
			RotationEvery:   load.RotationEvery,
		}
		s := Fig12Series{Device: d.Name}
		for i := 1; i <= steps; i++ {
			budget := maxBudget * float64(i) / float64(steps)
			n := int(budget / d.PriceUSD)
			if n < load.ClusterSize {
				s.Points = append(s.Points, Fig12Point{budget, 0})
				continue
			}
			s.Points = append(s.Points, Fig12Point{budget, scaled.FleetRecoveriesPerYear(n)})
		}
		out = append(out, s)
	}
	return out
}

// RenderFig12 formats the series.
func RenderFig12(series []Fig12Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: recoveries/year vs HSM retail cost\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%s:\n", s.Device)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  $%-10.0f %8.2f B recoveries/yr\n", p.CostUSD, p.RecoveriesPerYear/1e9)
		}
	}
	return b.String()
}

// --- Figure 13 ---

// Fig13Point is one (request rate → fleet size) point.
type Fig13Point struct {
	RequestsPerYear float64
	DataCenterSize  int
	Infeasible      bool
}

// Fig13Series holds one latency constraint's curve.
type Fig13Series struct {
	ConstraintSeconds float64 // +Inf = throughput-only
	Points            []Fig13Point
}

// Fig13 computes data-center sizes for request rates under p99 constraints
// (Figure 13).
func Fig13(load simtime.RecoveryLoad, maxRate float64, steps int) []Fig13Series {
	constraints := []float64{30, 60, 300, math.Inf(1)}
	var out []Fig13Series
	for _, c := range constraints {
		s := Fig13Series{ConstraintSeconds: c}
		for i := 1; i <= steps; i++ {
			rate := maxRate * float64(i) / float64(steps)
			n, err := load.DataCenterSizeForLatency(rate, c)
			s.Points = append(s.Points, Fig13Point{rate, n, err != nil})
		}
		out = append(out, s)
	}
	return out
}

// RenderFig13 formats the series.
func RenderFig13(series []Fig13Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: data-center size vs request rate under p99 latency constraints\n")
	for _, s := range series {
		label := "infinite"
		if !math.IsInf(s.ConstraintSeconds, 1) {
			label = fmtDur(s.ConstraintSeconds)
		}
		fmt.Fprintf(&b, "p99 ≤ %s:\n", label)
		for _, p := range s.Points {
			if p.Infeasible {
				fmt.Fprintf(&b, "  %6.2fB req/yr  infeasible\n", p.RequestsPerYear/1e9)
				continue
			}
			fmt.Fprintf(&b, "  %6.2fB req/yr  N = %d\n", p.RequestsPerYear/1e9, p.DataCenterSize)
		}
	}
	return b.String()
}

// --- Table 14 ---

// Table14 renders the deployment-cost table for 1B recoveries/year.
func Table14(load simtime.RecoveryLoad) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 14: deployment cost for %.0fB recoveries/year\n", RecoveriesPerYr/1e9)
	fmt.Fprintf(&b, "%-22s %8s %9s %7s %12s\n", "HSM", "Qty", "f_secret", "N_evil", "Cost")
	type variant struct {
		device   simtime.DeviceProfile
		fSecret  float64
		minFleet int
	}
	rows := []variant{
		{simtime.SoloKey(), 1.0 / 16, 0},
		{simtime.YubiHSM2(), 1.0 / 16, 0},
		{simtime.SafeNetA700(), 1.0 / 20, PaperClusterSize},
		{simtime.SafeNetA700(), 1.0 / 32, 320}, // “10 evil HSMs” row
		{simtime.SafeNetA700(), 1.0 / 16, 800}, // “50 evil HSMs” row
	}
	for _, v := range rows {
		d := simtime.PlanDeployment(v.device, load, RecoveriesPerYr, v.fSecret, v.minFleet)
		name := v.device.Name
		if v.minFleet > 0 && v.device.Name == "SafeNet A700" && v.minFleet != PaperClusterSize {
			name = fmt.Sprintf("%s (N≥%d)", v.device.Name, v.minFleet)
		}
		fmt.Fprintf(&b, "%-22s %8d %9.4f %7d %12s\n",
			name, d.Quantity, d.FSecret, d.EvilHSMsTolerated,
			fmt.Sprintf("$%.1fK", d.HardwareCostUSD/1000))
	}
	fmt.Fprintf(&b, "Estimated cost of storing 4GB × 10^9 users/year: $%.0fM\n",
		simtime.StorageCostPerYearUSD(1e9, 4)/1e6)
	return b.String()
}

// --- client bandwidth (§9.2 narrative numbers) ---

// BandwidthReport renders the client key-material costs, for both our
// pairing-free BFE public keys (M points each — the variant's documented
// cost, §9: it "increases the size of the HSMs' public keys") and the
// compact pairing-based keys the paper's bandwidth accounting assumes.
func BandwidthReport(totalHSMs, clusterSize int, p bfe.Params, rotationEvery int) string {
	var b strings.Builder
	render := func(label string, pkBytes int64) {
		bw := simtime.EstimateClientBandwidth(totalHSMs, clusterSize, pkBytes, rotationEvery, RecoveriesPerYr)
		fmt.Fprintf(&b, "Client bandwidth (§9.2), N=%d, n=%d, %s pk=%s:\n",
			totalHSMs, clusterSize, label, fmtBytes(int(pkBytes)))
		fmt.Fprintf(&b, "  initial download: %s\n", fmtBytes(int(bw.InitialDownloadBytes)))
		fmt.Fprintf(&b, "  daily download:   %s\n", fmtBytes(int(bw.DailyDownloadBytes)))
		fmt.Fprintf(&b, "  cluster storage:  %s\n", fmtBytes(int(bw.ClusterStorageBytes)))
	}
	render("pairing-free", int64(8+p.M*33))
	// The paper reports 11.5 MB for all N keys → ~3.7 KB per HSM.
	render("pairing-based (paper accounting)", 3700)
	return b.String()
}
