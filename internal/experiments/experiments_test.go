package experiments

import (
	"math"
	"strings"
	"testing"

	"safetypin/internal/bfe"
	"safetypin/internal/simtime"
)

func TestTablesRender(t *testing.T) {
	if !strings.Contains(Table2(), "SoloKey") {
		t.Fatal("Table2 missing SoloKey row")
	}
	if !strings.Contains(Table7(nil), "ElGamal decrypt") {
		t.Fatal("Table7 missing rows")
	}
	host := &HostRates{ECMulPerSec: 1000}
	if !strings.Contains(Table7(host), "1000") {
		t.Fatal("Table7 missing host rates")
	}
}

func TestPaperRotationMatchesPaper(t *testing.T) {
	// §9.1: key rotation takes roughly 75 hours on a SoloKey.
	got := PaperRotationLoad().Total() / 3600
	if got < 60 || got > 100 {
		t.Fatalf("rotation estimate %f hours, paper says ~75", got)
	}
	if PaperBFEParams.SecretKeyBytes() != 64<<20 {
		t.Fatalf("paper secret key should be 64MB, got %d", PaperBFEParams.SecretKeyBytes())
	}
	if PaperBFEParams.MaxPunctures() != 1<<18 {
		t.Fatalf("paper puncture budget should be 2^18, got %d", PaperBFEParams.MaxPunctures())
	}
}

func TestFig8ShrinksWithFleet(t *testing.T) {
	cfg := Fig8Config{
		BaseLogSize: 4096,
		Inserts:     1024,
		Lambda:      16,
		Sizes:       []int{64, 256, 1024},
	}
	points, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 points, got %d", len(points))
	}
	// The paper's scalability claim: per-HSM audit time falls as N grows.
	for i := 1; i < len(points); i++ {
		if points[i].AuditSeconds >= points[i-1].AuditSeconds {
			t.Fatalf("audit time did not shrink: %+v", points)
		}
	}
	// Extrapolated numbers scale the non-public components up.
	for _, p := range points {
		if p.AuditSecondsAt < p.AuditSeconds {
			t.Fatal("depth extrapolation shrank the estimate")
		}
	}
	if !strings.Contains(RenderFig8(points, cfg), "Figure 8") {
		t.Fatal("render broken")
	}
}

func TestFig9GrowsLogarithmically(t *testing.T) {
	points, err := Fig9([]int{16, 256, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatal("missing points")
	}
	// Cost grows with key size...
	if points[2].Cost.Total() <= points[0].Cost.Total() {
		t.Fatalf("decrypt+puncture cost flat across key sizes: %+v", points)
	}
	// ...but far slower than linearly (log depth): 256× the budget must
	// cost well under 64× as much.
	ratio := points[2].Cost.Total() / points[0].Cost.Total()
	if ratio > 64 {
		t.Fatalf("cost scaling looks linear: ratio %f", ratio)
	}
	// Public-key slice is constant (K decryptions regardless of M).
	if math.Abs(points[2].Cost.PublicKey-points[0].Cost.PublicKey) > 0.05 {
		t.Fatalf("public-key slice should be flat: %+v", points)
	}
	if !strings.Contains(RenderFig9(points), "Figure 9") {
		t.Fatal("render broken")
	}
}

func smallMeasureConfig() MeasureConfig {
	return MeasureConfig{NumHSMs: 24, ClusterSize: 8, BFE: bfe.Params{M: 256, K: 4}}
}

func TestFig10Shapes(t *testing.T) {
	rep, err := Fig10(smallMeasureConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp, bl := rep.SafetyPin, rep.Baseline
	// SafetyPin recovery costs more than the baseline (the paper's 1.01s
	// vs 0.17s), and the puncturable-encryption slice dominates.
	if sp.RecoverySeconds() <= bl.RecoverCost.Total() {
		t.Fatalf("SafetyPin (%f) should cost more than baseline (%f)",
			sp.RecoverySeconds(), bl.RecoverCost.Total())
	}
	if sp.Components.Puncturable.Total() <= sp.Components.Log.Total() {
		t.Fatalf("puncturable slice should dominate log slice: %+v", sp.Components)
	}
	if sp.CiphertextBytes < 1000 {
		t.Fatalf("implausible ciphertext size %d", sp.CiphertextBytes)
	}
	if !strings.Contains(rep.Render(), "Figure 10") {
		t.Fatal("render broken")
	}
}

func TestFig11Shapes(t *testing.T) {
	points, err := Fig11(smallMeasureConfig(), []int{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Security loss falls with n; recovery time must not fall.
	for i := 1; i < len(points); i++ {
		if points[i].SecurityLossBits >= points[i-1].SecurityLossBits {
			t.Fatal("security loss should fall with n")
		}
		if points[i].RecoverySeconds < points[i-1].RecoverySeconds*0.9 {
			t.Fatalf("recovery time fell sharply with n: %+v", points)
		}
	}
	if !strings.Contains(RenderFig11(points), "Figure 11") {
		t.Fatal("render broken")
	}
}

func TestFig12And13AndTable14(t *testing.T) {
	load := simRecoveryLoad()
	series := Fig12(load, 5e6, 5)
	if len(series) != 3 {
		t.Fatal("Fig12 should have one series per device")
	}
	// More budget → more throughput, and SafeNet (fast) beats SoloKey at
	// equal spend? (paper Figure 12 shows SoloKey winning per dollar; check
	// monotonicity only).
	for _, s := range series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].RecoveriesPerYear < s.Points[i-1].RecoveriesPerYear {
				t.Fatalf("%s: throughput not monotone in budget", s.Device)
			}
		}
	}
	f13 := Fig13(load, 1.5e9, 3)
	if len(f13) != 4 {
		t.Fatal("Fig13 should have 4 constraint series")
	}
	// Tighter constraints need at least as many HSMs.
	for i := range f13[0].Points {
		if !f13[0].Points[i].Infeasible && !f13[3].Points[i].Infeasible {
			if f13[0].Points[i].DataCenterSize < f13[3].Points[i].DataCenterSize {
				t.Fatal("30s constraint sized below the unconstrained bound")
			}
		}
	}
	t14 := Table14(load)
	if !strings.Contains(t14, "SoloKey") || !strings.Contains(t14, "SafeNet") {
		t.Fatal("Table14 missing devices")
	}
	if !strings.Contains(RenderFig12(series), "Figure 12") ||
		!strings.Contains(RenderFig13(f13), "Figure 13") {
		t.Fatal("render broken")
	}
}

// simRecoveryLoad is a fixed plausible load so model tests don't depend on
// measurement.
func simRecoveryLoad() simtime.RecoveryLoad {
	return simtime.RecoveryLoad{
		PerHSMSeconds:   0.6,
		ClusterSize:     40,
		RotationSeconds: PaperRotationLoad().Total(),
		RotationEvery:   PaperBFEParams.MaxPunctures(),
	}
}

func TestBandwidthReportRenders(t *testing.T) {
	s := BandwidthReport(PaperN, PaperClusterSize, PaperBFEParams, PaperBFEParams.MaxPunctures())
	if !strings.Contains(s, "initial download") {
		t.Fatal("bandwidth report broken")
	}
}

func TestSecurityLossSeries(t *testing.T) {
	rows := SecurityLossSeries(PaperN, []int{40, 50, 60})
	if len(rows) != 3 {
		t.Fatal("wrong row count")
	}
	if rows[0].LossBits <= rows[2].LossBits {
		t.Fatal("loss not decreasing")
	}
}
