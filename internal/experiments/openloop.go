package experiments

// openloop.go is the open-loop (arrival-rate-controlled) load harness.
// The closed-loop driver in load.go keeps a fixed number of virtual
// users in flight, so under overload it silently self-throttles: each
// user waits for its previous operation before issuing the next, and
// the measured latency stays flat while throughput caps out — the
// classic coordinated-omission blind spot. The open-loop generator
// instead schedules arrivals on a fixed or Poisson clock independent of
// completions, timestamps every operation from its *scheduled* arrival
// (so generator lag shows up as queueing delay rather than vanishing),
// and records latencies into HDR-style histograms (histogram.go). A
// rate sweep then locates the saturation knee: the highest offered rate
// the deployment sustains with its completion rate within tolerance.
//
// Traffic is a weighted mix of the three provider-facing operations:
//   backup  — a fresh virtual user enrolls and stores a ciphertext
//             (write path: log insertion + epoch batching)
//   recover — a preloaded user runs the full recovery protocol
//             (hot path: attempt reservation, log commit wait, share
//             fan-out across its HSM cluster) and then re-enrolls,
//             since recovery punctures the single-shot backup
//   audit   — a read-path probe (FetchCiphertext + AttemptCount), the
//             monitoring traffic a deployment sees between recoveries
//
// The virtual-user pool is unbounded in the open-loop sense: arrivals
// never wait for a free worker. MaxInFlight only bounds goroutines to
// keep the harness itself from melting the host; arrivals beyond it are
// counted as drops, which is itself a saturation signal.

import (
	"context"
	"encoding/json"
	"fmt"
	mrand "math/rand"
	"strings"
	"sync"
	"time"

	"safetypin/internal/bfe"
	"safetypin/internal/client"
	"safetypin/internal/lhe"
)

// OpMix weights the traffic mix; weights need not sum to 1.
type OpMix struct {
	Backup  float64 `json:"backup"`
	Recover float64 `json:"recover"`
	Audit   float64 `json:"audit"`
}

// OpenLoopConfig parameterizes one open-loop run.
type OpenLoopConfig struct {
	// Load gives the fleet shape; Load.Users is the preloaded
	// recover/audit population.
	Load LoadConfig
	// Rate is the offered arrival rate in operations per second.
	Rate float64
	// Duration is how long the generator offers load.
	Duration time.Duration
	// Poisson draws exponential inter-arrival gaps instead of fixed ones.
	Poisson bool
	// Mix weights backup/recover/audit traffic (default 0.2/0.5/0.3).
	Mix OpMix
	// Seed fixes the arrival process and target selection.
	Seed int64
	// MaxInFlight bounds concurrently executing operations (0 → 1024).
	// Arrivals past the bound are counted as drops, not queued.
	MaxInFlight int
}

func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	bfeSet := c.Load.BFE.M != 0
	c.Load = c.Load.withDefaults()
	if !bfeSet {
		// Recover-heavy open-loop runs puncture BFE filters far faster
		// than the closed-loop defaults anticipate (MaxPunctures = M/2K);
		// size generously so filter exhaustion doesn't masquerade as
		// saturation. An explicitly configured Load.BFE is respected:
		// fleet-scale smokes (N=10000) must cap per-HSM keygen at a small
		// filter, or construction alone costs N×M point multiplications.
		c.Load.BFE = bfe.Params{M: 1 << 14, K: 4}
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Mix.Backup == 0 && c.Mix.Recover == 0 && c.Mix.Audit == 0 {
		c.Mix = OpMix{Backup: 0.2, Recover: 0.5, Audit: 0.3}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	return c
}

// OpStats is the per-operation-type slice of a run.
type OpStats struct {
	Issued  uint64         `json:"issued"`
	Errors  uint64         `json:"errors"`
	Latency LatencySummary `json:"latency"`
}

// OpenLoopResult summarizes one open-loop run.
type OpenLoopResult struct {
	NumHSMs     int           `json:"num_hsms"`
	ClusterSize int           `json:"cluster_size"`
	Rate        float64       `json:"offered_rate"`
	Poisson     bool          `json:"poisson"`
	Duration    time.Duration `json:"duration_ns"`
	Elapsed     time.Duration `json:"elapsed_ns"`

	// ConstructSeconds is the wall-clock cost of provisioning this run's
	// fleet (NewDeployment: batch keygen + parallel HSM provisioning),
	// measured before any load is offered.
	ConstructSeconds float64 `json:"construct_seconds"`

	Offered   uint64 `json:"offered"`   // scheduled arrivals
	Issued    uint64 `json:"issued"`    // dispatched (pool had room)
	Dropped   uint64 `json:"dropped"`   // pool exhausted at arrival
	Busy      uint64 `json:"busy"`      // recover target already mid-recovery
	Completed uint64 `json:"completed"` // finished without error
	Errors    uint64 `json:"errors"`

	OfferedRate   float64 `json:"offered_per_sec"`
	CompletedRate float64 `json:"completed_per_sec"`

	Overall LatencySummary `json:"overall"`
	Backup  OpStats        `json:"backup"`
	Recover OpStats        `json:"recover"`
	Audit   OpStats        `json:"audit"`
}

// Sustained reports whether the run kept up with its offered load:
// completions within 10% of arrivals and (nearly) nothing dropped or
// skipped. Busy skips count against sustainability — they mean every
// virtual user was simultaneously mid-recovery, i.e. the recovery
// pipeline could not drain at the offered rate.
func (r OpenLoopResult) Sustained() bool {
	if r.Offered == 0 {
		return false
	}
	good := r.Completed >= r.Offered-r.Offered/10
	return good && r.Dropped+r.Busy <= r.Offered/100
}

func (r OpenLoopResult) String() string {
	return fmt.Sprintf("N=%d rate=%.0f/s: completed %.1f/s (err=%d drop=%d busy=%d) %s",
		r.NumHSMs, r.Rate, r.CompletedRate, r.Errors, r.Dropped, r.Busy, r.Overall)
}

const (
	opBackup = iota
	opRecover
	opAudit
)

// openLoopRun is the mutable state shared by the dispatcher and its
// operation goroutines.
type openLoopRun struct {
	cfg     OpenLoopConfig
	api     client.Provider
	lhe     lhe.Params
	fleet   *bfe.Fleet
	clients []*client.Client
	busy    []sync.Mutex // per preloaded client: recovery in progress

	mu    sync.Mutex
	hists [3]*Histogram
	all   *Histogram
	errs  [3]uint64
	done  [3]uint64
}

func (s *openLoopRun) record(op int, lat time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errs[op]++
		return
	}
	s.done[op]++
	s.hists[op].Record(lat)
	s.all.Record(lat)
}

// pickOp draws an operation type from the weighted mix.
func pickOp(rng *mrand.Rand, m OpMix) int {
	v := rng.Float64() * (m.Backup + m.Recover + m.Audit)
	switch {
	case v < m.Backup:
		return opBackup
	case v < m.Backup+m.Recover:
		return opRecover
	default:
		return opAudit
	}
}

// OpenLoopRun preloads Load.Users recoverable users, then offers
// Rate arrivals/sec of mixed traffic for Duration, never waiting on
// completions. Latency is measured from each operation's scheduled
// arrival time, so a generator running behind schedule reports the
// backlog as queueing delay instead of omitting it.
func OpenLoopRun(cfg OpenLoopConfig) (OpenLoopResult, error) {
	cfg = cfg.withDefaults()
	buildStart := time.Now()
	d, clients, err := loadDeployment(cfg.Load)
	if err != nil {
		return OpenLoopResult{}, err
	}
	construct := time.Since(buildStart)
	for i, c := range clients {
		if err := c.Backup(context.Background(), []byte(fmt.Sprintf("disk-image-%d", i))); err != nil {
			return OpenLoopResult{}, fmt.Errorf("preloading user %d: %w", i, err)
		}
	}
	var api client.Provider = d.Provider
	if cfg.Load.HSMLatency > 0 {
		api = latencyAPI{Provider: d.Provider, delay: cfg.Load.HSMLatency}
	}
	run := &openLoopRun{
		cfg:     cfg,
		api:     api,
		lhe:     d.LHEParams(),
		fleet:   d.Fleet(),
		clients: clients,
		busy:    make([]sync.Mutex, len(clients)),
		all:     NewHistogram(),
	}
	for i := range run.hists {
		run.hists[i] = NewHistogram()
	}

	rng := mrand.New(mrand.NewSource(cfg.Seed))
	res := OpenLoopResult{
		NumHSMs:          cfg.Load.NumHSMs,
		ClusterSize:      cfg.Load.ClusterSize,
		Rate:             cfg.Rate,
		Poisson:          cfg.Poisson,
		Duration:         cfg.Duration,
		ConstructSeconds: construct.Seconds(),
	}
	inflight := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var busyCount uint64
	var busyMu sync.Mutex

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	backupSeq := 0
	for next.Before(deadline) {
		if gap := time.Until(next); gap > 0 {
			time.Sleep(gap)
		}
		res.Offered++
		op := pickOp(rng, cfg.Mix)
		target := rng.Intn(len(clients))
		seq := backupSeq
		backupSeq++
		arrival := next
		select {
		case inflight <- struct{}{}:
			res.Issued++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-inflight }()
				err := run.execute(op, target, seq)
				if err == errTargetBusy {
					busyMu.Lock()
					busyCount++
					busyMu.Unlock()
					return
				}
				run.record(op, time.Since(arrival), err)
			}()
		default:
			res.Dropped++
		}
		if cfg.Poisson {
			next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		} else {
			next = next.Add(time.Duration(float64(time.Second) / cfg.Rate))
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Busy = busyCount

	run.mu.Lock()
	res.Overall = run.all.Summary()
	res.Backup = OpStats{Issued: run.done[opBackup] + run.errs[opBackup], Errors: run.errs[opBackup], Latency: run.hists[opBackup].Summary()}
	res.Recover = OpStats{Issued: run.done[opRecover] + run.errs[opRecover], Errors: run.errs[opRecover], Latency: run.hists[opRecover].Summary()}
	res.Audit = OpStats{Issued: run.done[opAudit] + run.errs[opAudit], Errors: run.errs[opAudit], Latency: run.hists[opAudit].Summary()}
	res.Completed = run.done[opBackup] + run.done[opRecover] + run.done[opAudit]
	res.Errors = run.errs[opBackup] + run.errs[opRecover] + run.errs[opAudit]
	run.mu.Unlock()

	res.OfferedRate = float64(res.Offered) / res.Elapsed.Seconds()
	res.CompletedRate = float64(res.Completed) / res.Elapsed.Seconds()
	return res, nil
}

// errTargetBusy marks a recover arrival that found every preloaded user
// already mid-recovery: the virtual-user pool is exhausted, which is a
// saturation signal, not an error.
var errTargetBusy = fmt.Errorf("experiments: open-loop recover pool exhausted")

func (s *openLoopRun) execute(op, target, seq int) error {
	ctx := context.Background()
	switch op {
	case opBackup:
		c, err := client.New(fmt.Sprintf("ol-user-%d-%d", s.cfg.Seed, seq), "123456",
			s.lhe, s.fleet, s.api)
		if err != nil {
			return err
		}
		return c.Backup(ctx, []byte("open-loop-backup"))
	case opRecover:
		// Find a user not already mid-recovery, scanning from the random
		// start: two concurrent recoveries of one user contend on the
		// attempt counter by design, so each virtual user is one device.
		// Only a fully busy pool — every preloaded user in recovery at
		// once, a genuine saturation signal — skips the arrival.
		locked := -1
		for i := 0; i < len(s.clients); i++ {
			t := (target + i) % len(s.clients)
			if s.busy[t].TryLock() {
				locked = t
				break
			}
		}
		if locked < 0 {
			return errTargetBusy
		}
		target = locked
		defer s.busy[target].Unlock()
		if _, err := s.clients[target].Recover(ctx, ""); err != nil {
			return err
		}
		// Recovery punctures the backup's BFE ciphertext — SafetyPin
		// backups are single-recovery by design — so the cycle re-enrolls
		// the user to keep the population recoverable. The re-backup is
		// part of the measured operation: it is what a real device does
		// immediately after a successful recovery.
		return s.clients[target].Backup(ctx, []byte("open-loop-reenroll"))
	default: // opAudit
		user := fmt.Sprintf("load-user-%d", target)
		if _, err := s.api.FetchCiphertext(ctx, user); err != nil {
			return err
		}
		_, err := s.api.AttemptCount(ctx, user)
		return err
	}
}

// OpenLoopSweep runs the same deployment shape at each offered rate and
// returns the per-rate results plus the saturation knee: the highest
// swept rate the deployment sustained. A knee of 0 means even the
// lowest rate overloaded it; a knee equal to the highest rate means the
// sweep never found saturation.
func OpenLoopSweep(cfg OpenLoopConfig, rates []float64) ([]OpenLoopResult, float64, error) {
	var results []OpenLoopResult
	knee := 0.0
	for _, r := range rates {
		c := cfg
		c.Rate = r
		res, err := OpenLoopRun(c)
		if err != nil {
			return nil, 0, fmt.Errorf("open-loop rate %.0f/s: %w", r, err)
		}
		results = append(results, res)
		if res.Sustained() && r > knee {
			knee = r
		}
	}
	return results, knee, nil
}

// OpenLoopFleetReport is the machine-readable record of one fleet's
// sweep — what cmd/experiments -out writes and BENCH_7.json embeds.
type OpenLoopFleetReport struct {
	NumHSMs        int     `json:"num_hsms"`
	SaturationRate float64 `json:"saturation_rate_per_sec"`
	// ConstructSeconds is the fleet's provisioning time (first sweep
	// point's deployment construction).
	ConstructSeconds float64          `json:"construct_seconds"`
	Sweep            []OpenLoopResult `json:"sweep"`
}

// OpenLoopReport is the top-level JSON document for a multi-fleet run.
type OpenLoopReport struct {
	Mode   string                `json:"mode"` // "fixed" or "poisson"
	Fleets []OpenLoopFleetReport `json:"fleets"`
}

// JSON renders the report indented.
func (r OpenLoopReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderOpenLoop renders sweep results as a human-readable table.
func RenderOpenLoop(results []OpenLoopResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %10s %10s %6s %6s %10s %10s %10s %10s\n",
		"N", "rate/s", "done/s", "err", "drop", "busy", "p50", "p95", "p99", "p99.9")
	for _, r := range results {
		fmt.Fprintf(&b, "%6d %8.0f %10.1f %10d %6d %6d %10v %10v %10v %10v\n",
			r.NumHSMs, r.Rate, r.CompletedRate, r.Errors, r.Dropped, r.Busy,
			r.Overall.P50.Round(time.Microsecond), r.Overall.P95.Round(time.Microsecond),
			r.Overall.P99.Round(time.Microsecond), r.Overall.P999.Round(time.Microsecond))
	}
	return b.String()
}

// OpenLoopCSV renders sweep results as CSV (one row per rate).
func OpenLoopCSV(results []OpenLoopResult) string {
	var b strings.Builder
	b.WriteString("num_hsms,offered_rate,completed_rate,errors,dropped,busy,p50_ns,p95_ns,p99_ns,p999_ns,max_ns\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%d,%.2f,%.2f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.NumHSMs, r.Rate, r.CompletedRate, r.Errors, r.Dropped, r.Busy,
			r.Overall.P50, r.Overall.P95, r.Overall.P99, r.Overall.P999, r.Overall.Max)
	}
	return b.String()
}
