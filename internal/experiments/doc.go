// Package experiments regenerates every table and figure of the paper's
// evaluation (§9). Each generator runs the real implementation — metered via
// package meter — and prices the observed operation sequence in SoloKey time
// (package simtime), exactly mirroring the paper's methodology of measuring
// per-operation device rates and deriving system costs from them.
//
// Absolute numbers depend on implementation details (our reply encryption,
// proof encodings, and trie depths differ from the authors' C firmware); the
// claims under reproduction are the *shapes*: who wins, by what factor, and
// where the curves bend. EXPERIMENTS.md records paper-vs-measured for every
// experiment.
package experiments
