package provider

import (
	"errors"
	"testing"

	"safetypin/internal/storage"
)

// TestAttemptLimitEnforced pins the front-door budget: with AttemptLimit
// k, exactly k reservations are granted (with distinct indices) and the
// k+1-th fails with ErrAttemptLimit.
func TestAttemptLimitEnforced(t *testing.T) {
	p := NewWithEngine(logCfg(), EngineConfig{AttemptLimit: 3})
	for want := 0; want < 3; want++ {
		n, err := p.ReserveAttempt(tctx, "alice")
		if err != nil || n != want {
			t.Fatalf("reservation %d: got (%d, %v)", want, n, err)
		}
	}
	if _, err := p.ReserveAttempt(tctx, "alice"); !errors.Is(err, ErrAttemptLimit) {
		t.Fatalf("k+1-th reservation: got %v, want ErrAttemptLimit", err)
	}
	// Other users are unaffected by alice's exhaustion.
	if n, err := p.ReserveAttempt(tctx, "bob"); err != nil || n != 0 {
		t.Fatalf("bob's first reservation: got (%d, %v)", n, err)
	}
	// Zero limit means unlimited (the provider alone cannot know k).
	q := New(logCfg())
	for i := 0; i < 10; i++ {
		if _, err := q.ReserveAttempt(tctx, "alice"); err != nil {
			t.Fatalf("unlimited provider rejected reservation %d: %v", i, err)
		}
	}
}

// TestAttemptRejectSurvivesCrash pins the satellite fix: a rejected
// (over-limit) reservation is journaled and synced before it is served,
// so a power loss right after the client observes the rejection cannot
// resurrect the guess budget — even when the records that advanced the
// counter were themselves in the unsynced journal tail.
func TestAttemptRejectSurvivesCrash(t *testing.T) {
	mem := storage.NewMem()
	p, err := Open(logCfg(), EngineConfig{Storage: mem, SnapshotEvery: -1, AttemptLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Burn the budget through LogRecoveryAttempt — the path that journals
	// the counter advance WITHOUT syncing (the insertion only becomes
	// durable at the epoch barrier, which this test never reaches).
	for i := 0; i < 2; i++ {
		if err := p.LogRecoveryAttempt(tctx, "mallory", i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.ReserveAttempt(tctx, "mallory"); !errors.Is(err, ErrAttemptLimit) {
		t.Fatalf("over-limit reservation: got %v, want ErrAttemptLimit", err)
	}
	// Power loss: only synced journal state survives.
	clone := mem.CrashClone()
	q, err := Open(logCfg(), EngineConfig{Storage: clone, SnapshotEvery: -1, AttemptLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := q.AttemptCount(tctx, "mallory"); n < 2 {
		t.Fatalf("crash resurrected the budget: counter %d, want >= 2", n)
	}
	if _, err := q.ReserveAttempt(tctx, "mallory"); !errors.Is(err, ErrAttemptLimit) {
		t.Fatalf("post-crash reservation: got %v, want ErrAttemptLimit", err)
	}
}

// TestAttemptRejectReplayIdempotent re-opens the same journal twice:
// replaying a rejection record a second time must not change state.
func TestAttemptRejectReplayIdempotent(t *testing.T) {
	mem := storage.NewMem()
	p, err := Open(logCfg(), EngineConfig{Storage: mem, SnapshotEvery: -1, AttemptLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReserveAttempt(tctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReserveAttempt(tctx, "alice"); !errors.Is(err, ErrAttemptLimit) {
		t.Fatalf("second reservation: got %v, want ErrAttemptLimit", err)
	}
	open := func() *Provider {
		q, err := Open(logCfg(), EngineConfig{Storage: mem.CrashClone(), SnapshotEvery: -1, AttemptLimit: 1})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	a, b := open(), open()
	if da, db := a.StateDigest(), b.StateDigest(); da != db {
		t.Fatalf("replay not idempotent: digests %x vs %x", da, db)
	}
	if n, _ := a.AttemptCount(tctx, "alice"); n != 1 {
		t.Fatalf("replayed counter %d, want 1", n)
	}
}
