package provider

import (
	"crypto/rand"
	"testing"

	"safetypin/internal/aggsig"
	"safetypin/internal/dlog"
	"safetypin/internal/storage"
)

// rosterFixtureKeys generates BLS roster entries keyed by the given
// (deliberately non-contiguous) HSM IDs, returning the entries plus the
// parsed public keys by ID for from-scratch oracle aggregation.
func rosterFixtureKeys(t *testing.T, ids []int) ([]RosterEntry, map[int]aggsig.PublicKey) {
	t.Helper()
	sc := aggsig.BLS()
	entries := make([]RosterEntry, 0, len(ids))
	byID := make(map[int]aggsig.PublicKey, len(ids))
	for _, id := range ids {
		s, err := sc.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pk := s.PublicKey()
		entries = append(entries, RosterEntry{ID: id, Addr: "hsm", AggPub: pk.Bytes()})
		byID[id] = pk
	}
	return entries, byID
}

// aggregateOracle aggregates keys from scratch — the differential oracle
// for the provider's cached fleet aggregate.
func aggregateOracle(t *testing.T, pks []aggsig.PublicKey) []byte {
	t.Helper()
	agg, ok := aggsig.BLS().(aggsig.KeyAggregator)
	if !ok {
		t.Fatal("BLS scheme must aggregate keys")
	}
	full, err := agg.AggregateKeys(pks)
	if err != nil {
		t.Fatal(err)
	}
	return full.Bytes()
}

func openRosterProvider(t *testing.T, mem *storage.MemEngine) *Provider {
	t.Helper()
	p, err := Open(dlog.Config{Scheme: aggsig.BLS()}, EngineConfig{Storage: mem, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRosterAggregateMidStreamRegistration pins the cache-invalidation
// rule: a registration that lands AFTER the fleet aggregate was built
// must bump the roster generation and force the next aggregate to
// include the new key.
func TestRosterAggregateMidStreamRegistration(t *testing.T) {
	ids := []int{7, 3, 11, 5}
	entries, byID := rosterFixtureKeys(t, append(ids, 20))
	p := openRosterProvider(t, storage.NewMem())
	defer p.Close()

	if _, _, err := p.RosterAggregate(); err == nil {
		t.Fatal("empty roster should not aggregate")
	}
	for _, e := range entries[:4] {
		if err := p.JournalRoster(e); err != nil {
			t.Fatal(err)
		}
	}
	gen := p.RosterGeneration()
	if gen == 0 {
		t.Fatal("registrations did not advance the roster generation")
	}
	_, before, err := p.RosterAggregate()
	if err != nil {
		t.Fatal(err)
	}
	want := aggregateOracle(t, []aggsig.PublicKey{byID[3], byID[5], byID[7], byID[11]})
	if string(before) != string(want) {
		t.Fatal("fleet aggregate differs from from-scratch aggregation")
	}

	// The mid-stream registration: entry 20 lands after the build.
	if err := p.JournalRoster(entries[4]); err != nil {
		t.Fatal(err)
	}
	if p.RosterGeneration() <= gen {
		t.Fatal("mid-stream registration did not bump the roster generation")
	}
	_, after, err := p.RosterAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if string(after) == string(before) {
		t.Fatal("stale fleet aggregate served after mid-stream registration")
	}
	want = aggregateOracle(t, []aggsig.PublicKey{byID[3], byID[5], byID[7], byID[11], byID[20]})
	if string(after) != string(want) {
		t.Fatal("rebuilt fleet aggregate differs from from-scratch aggregation")
	}

	// Quorum keys address HSMs by ID, not position, and match from-scratch
	// aggregation of the subset.
	qk, err := p.QuorumKey([]int{3, 11, 20})
	if err != nil {
		t.Fatal(err)
	}
	want = aggregateOracle(t, []aggsig.PublicKey{byID[3], byID[11], byID[20]})
	if string(qk.Bytes()) != string(want) {
		t.Fatal("quorum key differs from from-scratch subset aggregation")
	}
	if _, err := p.QuorumKey([]int{3, 4}); err == nil {
		t.Fatal("quorum key accepted an HSM ID outside the roster")
	}
}

// TestRosterAggregateSurvivesReopen pins invalidation across recovery:
// replayed registrations advance the generation, the reopened provider
// serves the same aggregate, and a post-reopen registration invalidates
// it just like a live one.
func TestRosterAggregateSurvivesReopen(t *testing.T) {
	entries, byID := rosterFixtureKeys(t, []int{2, 9, 4, 6})
	mem := storage.NewMem()
	p := openRosterProvider(t, mem)
	for _, e := range entries[:3] {
		if err := p.JournalRoster(e); err != nil {
			t.Fatal(err)
		}
	}
	_, before, err := p.RosterAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Close marked the engine closed; recovery replays the crash clone
	// (everything synced up to the shutdown snapshot).
	p2 := openRosterProvider(t, mem.CrashClone())
	defer p2.Close()
	if p2.RosterGeneration() == 0 {
		t.Fatal("replayed registrations did not advance the roster generation")
	}
	_, recovered, err := p2.RosterAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if string(recovered) != string(before) {
		t.Fatal("reopened provider serves a different fleet aggregate")
	}

	// A registration landing after recovery must invalidate the aggregate
	// the reopened provider just rebuilt.
	gen := p2.RosterGeneration()
	if err := p2.JournalRoster(entries[3]); err != nil {
		t.Fatal(err)
	}
	if p2.RosterGeneration() <= gen {
		t.Fatal("post-reopen registration did not bump the roster generation")
	}
	_, after, err := p2.RosterAggregate()
	if err != nil {
		t.Fatal(err)
	}
	want := aggregateOracle(t, []aggsig.PublicKey{byID[2], byID[4], byID[6], byID[9]})
	if string(after) != string(want) {
		t.Fatal("post-reopen aggregate differs from from-scratch aggregation")
	}
}
