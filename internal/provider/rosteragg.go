package provider

import (
	"errors"
	"fmt"
	"sort"

	"safetypin/internal/aggsig"
)

// Fleet aggregate-key cache. The journaled roster changes only when an
// HSM registers (live via JournalRoster, or replayed during Open), so
// the aggregate verification key over the whole fleet is cached in an
// aggsig.RosterCache and rebuilt only when the provider's roster
// generation moves. Per-epoch quorum keys then cost O(missing) group
// subtractions instead of an O(fleet) multi-scalar multiplication.

// RosterGeneration returns the provider's roster mutation counter. It
// advances on every registration — including those replayed from the
// journal on Open — so equal generations imply an identical roster.
func (p *Provider) RosterGeneration() uint64 {
	p.fleetMu.RLock()
	defer p.fleetMu.RUnlock()
	return p.rosterGen
}

// rosterCacheLocked returns the fleet aggregate cache, rebuilding it
// when the roster generation moved since the last build (a registration
// landed after the previous aggregate was computed). Caller holds
// fleetMu for writing.
func (p *Provider) rosterCacheLocked() (*aggsig.RosterCache, map[int]int, error) {
	if p.rcache != nil && p.rcacheGen == p.rosterGen {
		return p.rcache, p.rcacheIDs, nil
	}
	if len(p.roster) == 0 {
		return nil, nil, errors.New("provider: no journaled roster entries")
	}
	ids := make([]int, 0, len(p.roster))
	for id := range p.roster {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pks := make([]aggsig.PublicKey, len(ids))
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pk, err := p.scheme.ParsePublicKey(p.roster[id].AggPub)
		if err != nil {
			return nil, nil, fmt.Errorf("provider: roster entry %d aggregate key: %w", id, err)
		}
		pks[i] = pk
		pos[id] = i
	}
	c := aggsig.NewRosterCache(p.scheme)
	if c == nil {
		return nil, nil, fmt.Errorf("provider: scheme %s does not support key aggregation", p.scheme.Name())
	}
	c.SetRoster(pks)
	p.rcache, p.rcacheIDs, p.rcacheGen = c, pos, p.rosterGen
	return c, pos, nil
}

// RosterAggregate returns the aggregate verification key over every
// journaled roster entry plus its serialized form, cached per roster
// generation.
func (p *Provider) RosterAggregate() (aggsig.PublicKey, []byte, error) {
	p.fleetMu.Lock()
	c, _, err := p.rosterCacheLocked()
	p.fleetMu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return c.FullAggregate()
}

// QuorumKey returns the aggregate verification key for the given HSM IDs
// (a subset of the journaled roster), derived by subtracting the missing
// members from the cached fleet aggregate.
func (p *Provider) QuorumKey(hsmIDs []int) (aggsig.PublicKey, error) {
	p.fleetMu.Lock()
	c, pos, err := p.rosterCacheLocked()
	p.fleetMu.Unlock()
	if err != nil {
		return nil, err
	}
	signers := make([]int, len(hsmIDs))
	for i, id := range hsmIDs {
		j, ok := pos[id]
		if !ok {
			return nil, fmt.Errorf("provider: HSM %d not in journaled roster", id)
		}
		signers[i] = j
	}
	return c.QuorumKey(signers)
}
