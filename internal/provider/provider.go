package provider

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/securestore"
)

// HSMHandle is the provider's view of one HSM: its message interface only.
// Every exchange takes a context so the epoch fan-out and the recovery
// relay can cancel in-flight work (locally or over a transport) when a
// deadline passes or the caller goes away.
type HSMHandle interface {
	ID() int
	LogChooseChunks(ctx context.Context, hdr dlog.EpochHeader) ([]int, error)
	LogHandleAudit(ctx context.Context, pkg *dlog.AuditPackage) ([]byte, error)
	LogHandleCommit(ctx context.Context, cm *dlog.CommitMessage) error
	HandleRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error)
}

// EngineConfig tunes the provider's concurrency machinery. The zero value
// gives test-friendly defaults; a production deployment would raise
// BatchWindow (or set EpochInterval) toward the paper's ~10-minute epoch
// cadence.
type EngineConfig struct {
	// Shards is the number of lock stripes for per-user state (0 → 32).
	Shards int
	// BatchWindow is how long the epoch scheduler gathers concurrent log
	// insertions before committing them as one epoch (0 → 2ms; the paper
	// runs ~10 minutes).
	BatchWindow time.Duration
	// MaxBatch commits an epoch early once this many insertions are
	// pending (0 → 256).
	MaxBatch int
	// EpochWorkers bounds the audit fan-out worker pool (0 → min(16, fleet)).
	EpochWorkers int
	// AuditTimeout caps how long the epoch waits on any single HSM's audit
	// or commit before skipping it (0 → 30s). A hung HSM therefore delays
	// an epoch by at most this much instead of wedging it.
	AuditTimeout time.Duration
	// EpochInterval, when non-zero, runs a standing timer that commits
	// pending log insertions on this cadence even when no WaitForCommit
	// waiter is blocked — the daemon mode for the paper's true 10-minute
	// epochs with idle-trickle LogRecoveryAttempt traffic. Stop it with
	// Provider.Close.
	EpochInterval time.Duration
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Shards <= 0 {
		c.Shards = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.AuditTimeout <= 0 {
		c.AuditTimeout = 30 * time.Second
	}
	return c
}

// escrowBox holds the escrowed replies of one user's newest recovery
// attempt. Replies from older attempts are dropped and replies are keyed by
// share position, so a crash-looping client holds at most one cluster's
// worth of provider memory.
type escrowBox struct {
	attempt int
	replies map[int]*protocol.RecoveryReply // share position → reply
	order   []int                           // positions in arrival order
}

// shard is one lock stripe of per-user state.
type shard struct {
	mu       sync.Mutex
	cts      map[string][][]byte
	escrow   map[string]*escrowBox
	attempts map[string]int
}

// Provider is the data-center state.
type Provider struct {
	log    *dlog.Provider
	sched  *epochScheduler
	engine EngineConfig

	shards []*shard

	fleetMu sync.RWMutex
	hsms    map[int]HSMHandle
	oracles map[int]*securestore.MemOracle
}

// New creates an empty provider around a distributed-log configuration with
// default engine settings.
func New(logCfg dlog.Config) *Provider {
	return NewWithEngine(logCfg, EngineConfig{})
}

// NewWithEngine creates a provider with explicit concurrency settings.
func NewWithEngine(logCfg dlog.Config, engine EngineConfig) *Provider {
	engine = engine.withDefaults()
	p := &Provider{
		log:     dlog.NewProvider(logCfg),
		engine:  engine,
		shards:  make([]*shard, engine.Shards),
		hsms:    make(map[int]HSMHandle),
		oracles: make(map[int]*securestore.MemOracle),
	}
	for i := range p.shards {
		p.shards[i] = &shard{
			cts:      make(map[string][][]byte),
			escrow:   make(map[string]*escrowBox),
			attempts: make(map[string]int),
		}
	}
	p.sched = newEpochScheduler(p)
	return p
}

// Close stops the provider's background machinery (the standing epoch
// timer, when EngineConfig.EpochInterval enabled one). Safe to call more
// than once; a provider without a standing timer needs no Close.
func (p *Provider) Close() error {
	p.sched.close()
	return nil
}

// shardFor returns the lock stripe owning a user's state (inline FNV-1a:
// this sits on every per-user hot path and must not allocate).
func (p *Provider) shardFor(user string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= 16777619
	}
	return p.shards[h%uint32(len(p.shards))]
}

// OracleFor returns (creating on demand) the outsourced block store hosted
// for one HSM.
func (p *Provider) OracleFor(hsmID int) *securestore.MemOracle {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	o, ok := p.oracles[hsmID]
	if !ok {
		o = securestore.NewMemOracle()
		p.oracles[hsmID] = o
	}
	return o
}

// ReplaceOracle installs a fresh store for an HSM key rotation.
func (p *Provider) ReplaceOracle(hsmID int) *securestore.MemOracle {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	o := securestore.NewMemOracle()
	p.oracles[hsmID] = o
	return o
}

// Register attaches an HSM handle to the fleet.
func (p *Provider) Register(h HSMHandle) {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	p.hsms[h.ID()] = h
}

// FleetSize returns the number of registered HSMs.
func (p *Provider) FleetSize() int {
	p.fleetMu.RLock()
	defer p.fleetMu.RUnlock()
	return len(p.hsms)
}

// handles snapshots the registered fleet.
func (p *Provider) handles() []HSMHandle {
	p.fleetMu.RLock()
	defer p.fleetMu.RUnlock()
	out := make([]HSMHandle, 0, len(p.hsms))
	for _, h := range p.hsms {
		out = append(out, h)
	}
	return out
}

// --- ciphertext storage (client.BackupStore) ---

// StoreCiphertext saves a client's recovery ciphertext.
func (p *Provider) StoreCiphertext(ctx context.Context, user string, ct []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if user == "" {
		return errors.New("provider: empty user")
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cts[user] = append(s.cts[user], append([]byte(nil), ct...))
	return nil
}

// FetchCiphertext returns the client's latest recovery ciphertext.
func (p *Provider) FetchCiphertext(ctx context.Context, user string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.cts[user]
	if len(list) == 0 {
		return nil, fmt.Errorf("provider: no backup for user %q", user)
	}
	return append([]byte(nil), list[len(list)-1]...), nil
}

// CiphertextCount returns how many backups a user has stored.
func (p *Provider) CiphertextCount(user string) int {
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cts[user])
}

// --- distributed log (client.LogService) ---

// AttemptCount returns the number of recovery attempts already reserved or
// logged for a user (the next free attempt number).
func (p *Provider) AttemptCount(ctx context.Context, user string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts[user], nil
}

// ReserveAttempt atomically allocates the next attempt number for a user.
// Two concurrent recoveries of the same user receive distinct indices, so
// their log insertions never collide.
func (p *Provider) ReserveAttempt(ctx context.Context, user string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.attempts[user]
	s.attempts[user] = n + 1
	return n, nil
}

// LogRecoveryAttempt inserts (LogID(user, attempt) → commitment) into the
// pending log batch for the next scheduled epoch.
func (p *Provider) LogRecoveryAttempt(ctx context.Context, user string, attempt int, commitment []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := p.log.Append(protocol.LogID(user, attempt), commitment); err != nil {
		return err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	// Direct callers may log attempt numbers they chose themselves; keep
	// the counter ahead of any observed index (ReserveAttempt already
	// advanced it for the client path).
	if attempt >= s.attempts[user] {
		s.attempts[user] = attempt + 1
	}
	s.mu.Unlock()
	p.sched.notePending(p.log.PendingLen())
	return nil
}

// RunEpoch forces one log-update epoch over everything currently pending
// (Figure 5): build, audit at every reachable HSM in parallel, aggregate,
// commit. HSMs that fail mid-protocol are skipped; the epoch succeeds if a
// quorum signs. Cancelling ctx abandons the wait (the epoch still runs for
// other subscribers). Tests and administrative tools call this directly;
// clients wait on the scheduler via WaitForCommit instead.
func (p *Provider) RunEpoch(ctx context.Context) error {
	return p.sched.commitNow(ctx)
}

// WaitForCommit blocks until every log insertion appended before the call
// has been committed by an epoch (or the epoch attempt failed). Many
// concurrent callers share one epoch — this is the paper's batching,
// compressed from ten minutes to the engine's BatchWindow. A caller whose
// ctx is cancelled is unsubscribed from the round and returns ctx.Err();
// the shared epoch is unaffected.
func (p *Provider) WaitForCommit(ctx context.Context) error {
	return p.sched.waitForCommit(ctx)
}

// PendingLogLen returns queued-but-uncommitted log insertions.
func (p *Provider) PendingLogLen() int { return p.log.PendingLen() }

// FetchInclusionProof serves a log-inclusion proof for a committed entry.
func (p *Provider) FetchInclusionProof(ctx context.Context, user string, attempt int, commitment []byte) (*logtree.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.log.ProveInclusion(protocol.LogID(user, attempt), commitment)
}

// LogEntries exposes the committed log for external auditors (§6.3).
func (p *Provider) LogEntries() []logtree.Entry { return p.log.Entries() }

// Get returns the committed log value for an identifier.
func (p *Provider) Get(id []byte) ([]byte, bool) { return p.log.Get(id) }

// LogDigest returns the provider's committed digest.
func (p *Provider) LogDigest() logtree.Digest { return p.log.Digest() }

// GarbageCollectLog clears the log state (HSMs must consent via their own
// bounded-budget GarbageCollect).
func (p *Provider) GarbageCollectLog() {
	p.log.GarbageCollect()
	for _, s := range p.shards {
		s.mu.Lock()
		s.attempts = make(map[string]int)
		s.mu.Unlock()
	}
}

// --- recovery relay (client.RecoveryService) ---

// RelayRecover forwards a recovery request to the addressed HSM and escrows
// the sealed reply so a replacement device can finish an interrupted
// recovery (§8). The reply is encrypted under the client's ephemeral key,
// so escrow reveals nothing to the provider. Escrow is keyed by
// (user, attempt): a reply for a newer attempt evicts older ones, and
// replies for attempts older than the newest seen are dropped, bounding
// per-user escrow memory at one cluster of replies. The context propagates
// into the HSM exchange: a client that cancels (say, because it already
// holds a threshold of shares) aborts the in-flight HSM request rather
// than leaking it.
func (p *Provider) RelayRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	if req.SharePos < 0 || req.SharePos >= len(req.Cluster) {
		return nil, errors.New("provider: malformed cluster opening")
	}
	target := req.Cluster[req.SharePos]
	p.fleetMu.RLock()
	h, ok := p.hsms[target]
	p.fleetMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("provider: no HSM %d registered", target)
	}
	reply, err := h.HandleRecover(ctx, req)
	if err != nil {
		return nil, err
	}
	s := p.shardFor(req.User)
	s.mu.Lock()
	box := s.escrow[req.User]
	switch {
	case box == nil || req.Attempt > box.attempt:
		box = &escrowBox{attempt: req.Attempt, replies: make(map[int]*protocol.RecoveryReply)}
		s.escrow[req.User] = box
	case req.Attempt < box.attempt:
		// Stale attempt: serve the reply but do not escrow it.
		s.mu.Unlock()
		return reply, nil
	}
	if _, seen := box.replies[req.SharePos]; !seen {
		box.order = append(box.order, req.SharePos)
	}
	box.replies[req.SharePos] = reply
	s.mu.Unlock()
	return reply, nil
}

// FetchEscrowedReplies returns the sealed replies of a user's latest
// recovery attempt for a replacement device.
func (p *Provider) FetchEscrowedReplies(ctx context.Context, user string) ([]*protocol.RecoveryReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	box := s.escrow[user]
	if box == nil {
		return nil, nil
	}
	out := make([]*protocol.RecoveryReply, 0, len(box.order))
	for _, pos := range box.order {
		out = append(out, box.replies[pos])
	}
	return out, nil
}

// EscrowedAttempt reports which attempt a user's escrow currently holds
// (-1 when empty); exposed for escrow-bounding tests.
func (p *Provider) EscrowedAttempt(user string) int {
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	if box := s.escrow[user]; box != nil {
		return box.attempt
	}
	return -1
}

// ClearEscrow drops a user's escrowed replies (after a completed recovery).
func (p *Provider) ClearEscrow(ctx context.Context, user string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.escrow, user)
	return nil
}
