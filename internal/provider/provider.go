// Package provider implements the SafetyPin service provider: the untrusted
// data-center side that stores recovery ciphertexts, hosts the HSMs'
// outsourced key storage, maintains the distributed log, relays recovery
// traffic between clients and HSMs, and escrows HSM replies for
// crash-during-recovery handling (§8).
//
// Nothing in this package is trusted: every security property is enforced
// by the clients and HSMs on the other side of its interfaces. A test that
// swaps in a misbehaving provider must fail closed, not open.
package provider

import (
	"errors"
	"fmt"
	"sync"

	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/securestore"
)

// HSMHandle is the provider's view of one HSM: its message interface only.
type HSMHandle interface {
	ID() int
	LogChooseChunks(hdr dlog.EpochHeader) ([]int, error)
	LogHandleAudit(pkg *dlog.AuditPackage) ([]byte, error)
	LogHandleCommit(cm *dlog.CommitMessage) error
	HandleRecover(req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error)
}

// Provider is the data-center state.
type Provider struct {
	mu sync.Mutex

	log  *dlog.Provider
	hsms map[int]HSMHandle

	// ciphertext store: user → serialized recovery ciphertexts, newest
	// last (clients back up repeatedly; §8 "multiple recovery
	// ciphertexts").
	cts map[string][][]byte

	// per-HSM outsourced block stores.
	oracles map[int]*securestore.MemOracle

	// escrowed recovery replies: user → replies of the latest recovery.
	escrow map[string][]*protocol.RecoveryReply

	attempts map[string]int // user → consumed log attempts
}

// New creates an empty provider around a distributed-log configuration.
func New(logCfg dlog.Config) *Provider {
	return &Provider{
		log:      dlog.NewProvider(logCfg),
		hsms:     make(map[int]HSMHandle),
		cts:      make(map[string][][]byte),
		oracles:  make(map[int]*securestore.MemOracle),
		escrow:   make(map[string][]*protocol.RecoveryReply),
		attempts: make(map[string]int),
	}
}

// OracleFor returns (creating on demand) the outsourced block store hosted
// for one HSM.
func (p *Provider) OracleFor(hsmID int) *securestore.MemOracle {
	p.mu.Lock()
	defer p.mu.Unlock()
	o, ok := p.oracles[hsmID]
	if !ok {
		o = securestore.NewMemOracle()
		p.oracles[hsmID] = o
	}
	return o
}

// ReplaceOracle installs a fresh store for an HSM key rotation.
func (p *Provider) ReplaceOracle(hsmID int) *securestore.MemOracle {
	p.mu.Lock()
	defer p.mu.Unlock()
	o := securestore.NewMemOracle()
	p.oracles[hsmID] = o
	return o
}

// Register attaches an HSM handle to the fleet.
func (p *Provider) Register(h HSMHandle) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hsms[h.ID()] = h
}

// FleetSize returns the number of registered HSMs.
func (p *Provider) FleetSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.hsms)
}

// --- ciphertext storage ---

// StoreCiphertext saves a client's recovery ciphertext.
func (p *Provider) StoreCiphertext(user string, ct []byte) error {
	if user == "" {
		return errors.New("provider: empty user")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cts[user] = append(p.cts[user], append([]byte(nil), ct...))
	return nil
}

// FetchCiphertext returns the client's latest recovery ciphertext.
func (p *Provider) FetchCiphertext(user string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.cts[user]
	if len(list) == 0 {
		return nil, fmt.Errorf("provider: no backup for user %q", user)
	}
	return append([]byte(nil), list[len(list)-1]...), nil
}

// CiphertextCount returns how many backups a user has stored.
func (p *Provider) CiphertextCount(user string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cts[user])
}

// --- distributed log ---

// AttemptCount returns the number of recovery attempts already logged for a
// user (the next free attempt number).
func (p *Provider) AttemptCount(user string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempts[user]
}

// LogRecoveryAttempt inserts (LogID(user, attempt) → commitment) into the
// pending log batch.
func (p *Provider) LogRecoveryAttempt(user string, attempt int, commitment []byte) error {
	if err := p.log.Append(protocol.LogID(user, attempt), commitment); err != nil {
		return err
	}
	p.mu.Lock()
	if attempt >= p.attempts[user] {
		p.attempts[user] = attempt + 1
	}
	p.mu.Unlock()
	return nil
}

// RunEpoch drives one log-update epoch across the registered fleet
// (Figure 5): build, audit at every reachable HSM, aggregate, commit. HSMs
// that fail mid-protocol are skipped; the epoch succeeds if a quorum signs.
func (p *Provider) RunEpoch() error {
	hdr, err := p.log.BuildEpoch()
	if err != nil {
		return err
	}
	p.mu.Lock()
	handles := make([]HSMHandle, 0, len(p.hsms))
	for _, h := range p.hsms {
		handles = append(handles, h)
	}
	p.mu.Unlock()

	var sigs [][]byte
	var signers []int
	var firstErr error
	for _, h := range handles {
		chunks, err := h.LogChooseChunks(hdr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pkg, err := p.log.AuditPackageFor(chunks)
		if err != nil {
			p.log.Abort()
			return err
		}
		sig, err := h.LogHandleAudit(pkg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sigs = append(sigs, sig)
		signers = append(signers, h.ID())
	}
	if len(sigs) == 0 {
		p.log.Abort()
		if firstErr != nil {
			return fmt.Errorf("provider: epoch gathered no signatures: %w", firstErr)
		}
		return errors.New("provider: epoch gathered no signatures")
	}
	cm, err := p.log.Commit(sigs, signers)
	if err != nil {
		return err
	}
	var commitErr error
	for _, h := range handles {
		if err := h.LogHandleCommit(cm); err != nil && commitErr == nil {
			commitErr = err
		}
	}
	return commitErr
}

// PendingLogLen returns queued-but-uncommitted log insertions.
func (p *Provider) PendingLogLen() int { return p.log.PendingLen() }

// FetchInclusionProof serves a log-inclusion proof for a committed entry.
func (p *Provider) FetchInclusionProof(user string, attempt int, commitment []byte) (*logtree.Trace, error) {
	return p.log.ProveInclusion(protocol.LogID(user, attempt), commitment)
}

// LogEntries exposes the committed log for external auditors (§6.3).
func (p *Provider) LogEntries() []logtree.Entry { return p.log.Entries() }

// Get returns the committed log value for an identifier.
func (p *Provider) Get(id []byte) ([]byte, bool) { return p.log.Get(id) }

// LogDigest returns the provider's committed digest.
func (p *Provider) LogDigest() logtree.Digest { return p.log.Digest() }

// GarbageCollectLog clears the log state (HSMs must consent via their own
// bounded-budget GarbageCollect).
func (p *Provider) GarbageCollectLog() {
	p.log.GarbageCollect()
	p.mu.Lock()
	p.attempts = make(map[string]int)
	p.mu.Unlock()
}

// --- recovery relay ---

// RelayRecover forwards a recovery request to the addressed HSM and escrows
// the sealed reply so a replacement device can finish an interrupted
// recovery (§8). The reply is encrypted under the client's ephemeral key,
// so escrow reveals nothing to the provider.
func (p *Provider) RelayRecover(req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	if req.SharePos < 0 || req.SharePos >= len(req.Cluster) {
		return nil, errors.New("provider: malformed cluster opening")
	}
	target := req.Cluster[req.SharePos]
	p.mu.Lock()
	h, ok := p.hsms[target]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("provider: no HSM %d registered", target)
	}
	reply, err := h.HandleRecover(req)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.escrow[req.User] = append(p.escrow[req.User], reply)
	p.mu.Unlock()
	return reply, nil
}

// FetchEscrowedReplies returns the sealed replies of a user's latest
// recovery for a replacement device.
func (p *Provider) FetchEscrowedReplies(user string) []*protocol.RecoveryReply {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*protocol.RecoveryReply(nil), p.escrow[user]...)
}

// ClearEscrow drops a user's escrowed replies (after a completed recovery).
func (p *Provider) ClearEscrow(user string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.escrow, user)
}
