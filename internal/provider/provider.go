package provider

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"safetypin/internal/aggsig"
	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/securestore"
	"safetypin/internal/storage"
)

// HSMHandle is the provider's view of one HSM: its message interface only.
// Every exchange takes a context so the epoch fan-out and the recovery
// relay can cancel in-flight work (locally or over a transport) when a
// deadline passes or the caller goes away.
type HSMHandle interface {
	ID() int
	LogChooseChunks(ctx context.Context, hdr dlog.EpochHeader) ([]int, error)
	LogHandleAudit(ctx context.Context, pkg *dlog.AuditPackage) ([]byte, error)
	LogHandleCommit(ctx context.Context, cm *dlog.CommitMessage) error
	HandleRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error)
}

// EngineConfig tunes the provider's concurrency machinery. The zero value
// gives test-friendly defaults; a production deployment would raise
// BatchWindow (or set EpochInterval) toward the paper's ~10-minute epoch
// cadence.
type EngineConfig struct {
	// Shards is the number of lock stripes for per-user state (0 → 32).
	Shards int
	// BatchWindow is how long the epoch scheduler gathers concurrent log
	// insertions before committing them as one epoch (0 → 2ms; the paper
	// runs ~10 minutes).
	BatchWindow time.Duration
	// MaxBatch commits an epoch early once this many insertions are
	// pending (0 → 256).
	MaxBatch int
	// EpochWorkers bounds the audit fan-out worker pool (0 → min(16, fleet)).
	EpochWorkers int
	// AuditTimeout caps how long the epoch waits on any single HSM's audit
	// or commit before skipping it (0 → 30s). A hung HSM therefore delays
	// an epoch by at most this much instead of wedging it.
	AuditTimeout time.Duration
	// EpochInterval, when non-zero, runs a standing timer that commits
	// pending log insertions on this cadence even when no WaitForCommit
	// waiter is blocked — the daemon mode for the paper's true 10-minute
	// epochs with idle-trickle LogRecoveryAttempt traffic. Stop it with
	// Provider.Close.
	EpochInterval time.Duration
	// Storage, when non-nil, journals every durable state change —
	// attempt reservations, ciphertexts, log insertions and commits,
	// escrow, oracle blocks, roster — so Open can rebuild the provider
	// after a crash. Nil keeps all state in RAM (the pre-durability
	// behavior, still the default for tests). Construct with Open when
	// set: recovery can fail, and Open reports it.
	Storage storage.Engine
	// SnapshotEvery compacts the journal into a snapshot after every
	// N successful epoch commits (0 → 8; negative disables periodic
	// compaction — a snapshot is still written on Close).
	SnapshotEvery int
	// ExchangeRetries is how many times a transient HSM exchange
	// failure (connection reset, timeout-free I/O error) is retried
	// inside the epoch fan-out before the HSM is skipped, with capped
	// exponential backoff between tries (0 → 2; negative disables).
	// Protocol errors — an HSM rejecting an audit — are never retried,
	// and AuditTimeout stays the outer bound on the whole exchange.
	ExchangeRetries int
	// RetryBaseDelay is the first backoff step (0 → 25ms).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff growth (0 → 1s).
	RetryMaxDelay time.Duration
	// AttemptLimit caps recovery-attempt reservations per user:
	// ReserveAttempt fails with ErrAttemptLimit once a user's counter
	// reaches it. This is the provider-side half of the paper's k-guess
	// budget — the HSMs independently refuse over-limit attempts, so a
	// malicious provider gains nothing by ignoring it, but an honest
	// provider rejecting at the front door keeps over-limit guessing
	// traffic off the fleet. 0 or negative → unlimited (the provider
	// alone cannot know k; deployments wire it from Params.GuessLimit).
	AttemptLimit int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Shards <= 0 {
		c.Shards = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.AuditTimeout <= 0 {
		c.AuditTimeout = 30 * time.Second
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 8
	}
	if c.ExchangeRetries == 0 {
		c.ExchangeRetries = 2
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 25 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = time.Second
	}
	return c
}

// escrowBox holds the escrowed replies of one user's newest recovery
// attempt. Replies from older attempts are dropped and replies are keyed by
// share position, so a crash-looping client holds at most one cluster's
// worth of provider memory.
type escrowBox struct {
	attempt int
	replies map[int]*protocol.RecoveryReply // share position → reply
	order   []int                           // positions in arrival order
}

// shard is one lock stripe of per-user state.
type shard struct {
	mu       sync.Mutex
	cts      map[string][][]byte   //spin:guardedby mu
	escrow   map[string]*escrowBox //spin:guardedby mu
	attempts map[string]int        //spin:guardedby mu
}

// Provider is the data-center state.
type Provider struct {
	log    *dlog.Provider
	sched  *epochScheduler
	engine EngineConfig

	shards []*shard

	fleetMu sync.RWMutex
	hsms    map[int]HSMHandle       //spin:guardedby fleetMu
	oracles map[int]*providerOracle //spin:guardedby fleetMu
	roster  map[int]RosterEntry     //spin:guardedby fleetMu

	// rosterGen counts roster mutations — live registrations AND journal
	// replays — so the cached fleet aggregate below can tell whether a
	// registration landed after it was built. Guarded by fleetMu.
	rosterGen uint64 //spin:guardedby fleetMu
	scheme    aggsig.Scheme
	rcache    *aggsig.RosterCache //spin:guardedby fleetMu
	// rcacheIDs maps HSM ID → cache roster position at rcacheGen.
	rcacheIDs map[int]int //spin:guardedby fleetMu
	rcacheGen uint64      //spin:guardedby fleetMu

	// store is the durability journal (nil = volatile provider).
	store storage.Engine
	// durMu guards lastCommit and snapshot construction ordering.
	durMu      sync.Mutex
	lastCommit *dlog.CommitMessage //spin:guardedby durMu

	closeOnce sync.Once
	closeErr  error
}

// New creates an empty provider around a distributed-log configuration with
// default engine settings.
func New(logCfg dlog.Config) *Provider {
	return NewWithEngine(logCfg, EngineConfig{})
}

// NewWithEngine creates a provider with explicit concurrency settings. It
// panics if engine.Storage is set and replaying it fails — callers wiring
// durable storage should use Open, which reports recovery errors.
func NewWithEngine(logCfg dlog.Config, engine EngineConfig) *Provider {
	p, err := Open(logCfg, engine)
	if err != nil {
		panic(fmt.Sprintf("provider: NewWithEngine over durable storage: %v (use Open)", err))
	}
	return p
}

// Open creates a provider, replaying engine.Storage first when set: the
// journal rebuilds attempt counters, ciphertexts, the committed log and
// its epoch counter, escrow, hosted oracle blocks, and the HSM roster.
// Uncommitted pending log insertions are dropped (their clients were
// never acknowledged) and the drop itself is journaled so later replays
// stay aligned. After recovery the journal hooks are enabled and the
// epoch scheduler starts.
func Open(logCfg dlog.Config, engine EngineConfig) (*Provider, error) {
	engine = engine.withDefaults()
	scheme := logCfg.Scheme
	if scheme == nil {
		scheme = aggsig.BLS() // mirror dlog.Config's default
	}
	p := &Provider{
		log:     dlog.NewProvider(logCfg),
		engine:  engine,
		shards:  make([]*shard, engine.Shards),
		hsms:    make(map[int]HSMHandle),
		oracles: make(map[int]*providerOracle),
		roster:  make(map[int]RosterEntry),
		scheme:  scheme,
		store:   engine.Storage,
	}
	for i := range p.shards {
		p.shards[i] = &shard{
			cts:      make(map[string][][]byte),
			escrow:   make(map[string]*escrowBox),
			attempts: make(map[string]int),
		}
	}
	if p.store != nil {
		if err := p.recover(); err != nil {
			return nil, err
		}
		p.log.SetJournal(p.journalLogInsert, p.journalEpochCommit)
	}
	p.sched = newEpochScheduler(p)
	return p, nil
}

// Close stops the provider's background machinery, wakes every blocked
// WaitForCommit waiter with ErrProviderClosed, and — when durable
// storage is attached — writes a final snapshot and closes the engine,
// so a clean shutdown needs no WAL replay on the next Open. Safe to
// call more than once.
func (p *Provider) Close() error {
	p.closeOnce.Do(func() {
		p.sched.close()
		if p.store != nil {
			// commitMu drains any in-flight epoch (which journals through
			// the store) before the final snapshot and engine close; rounds
			// started after close() never take commitMu.
			p.sched.commitMu.Lock()
			defer p.sched.commitMu.Unlock()
			if err := p.SnapshotNow(); err != nil {
				p.closeErr = err
			}
			if err := p.store.Close(); err != nil && p.closeErr == nil {
				p.closeErr = err
			}
		}
	})
	return p.closeErr
}

// shardFor returns the lock stripe owning a user's state (inline FNV-1a:
// this sits on every per-user hot path and must not allocate).
func (p *Provider) shardFor(user string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= 16777619
	}
	return p.shards[h%uint32(len(p.shards))]
}

// OracleFor returns (creating on demand) the outsourced block store hosted
// for one HSM. The handle journals every block write, so a recovered
// provider serves back the blocks the HSM last stored.
func (p *Provider) OracleFor(hsmID int) securestore.Oracle {
	return p.oracleHandle(hsmID)
}

func (p *Provider) oracleHandle(hsmID int) *providerOracle {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	o, ok := p.oracles[hsmID]
	if !ok {
		o = &providerOracle{p: p, hsmID: hsmID, mem: securestore.NewMemOracle()}
		p.oracles[hsmID] = o
	}
	return o
}

// ReplaceOracle empties the HSM's hosted store for a key rotation and
// returns the handle (same handle, fresh contents — live references keep
// working).
func (p *Provider) ReplaceOracle(hsmID int) securestore.Oracle {
	o := p.oracleHandle(hsmID)
	o.mu.Lock()
	defer o.mu.Unlock()
	// Best-effort: if the clear fails to journal, the fresh KeyGen's
	// block writes (which go through the same broken engine) will fail
	// and abort the rotation anyway.
	_ = p.journalSync(&storage.OracleClearRecord{HSMID: uint32(hsmID)})
	o.mem = securestore.NewMemOracle()
	return o
}

// Register attaches an HSM handle to the fleet.
func (p *Provider) Register(h HSMHandle) {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	p.hsms[h.ID()] = h
}

// FleetSize returns the number of registered HSMs.
func (p *Provider) FleetSize() int {
	p.fleetMu.RLock()
	defer p.fleetMu.RUnlock()
	return len(p.hsms)
}

// handles snapshots the registered fleet.
func (p *Provider) handles() []HSMHandle {
	p.fleetMu.RLock()
	defer p.fleetMu.RUnlock()
	out := make([]HSMHandle, 0, len(p.hsms))
	for _, h := range p.hsms {
		out = append(out, h)
	}
	return out
}

// --- ciphertext storage (client.BackupStore) ---

// StoreCiphertext saves a client's recovery ciphertext.
func (p *Provider) StoreCiphertext(ctx context.Context, user string, ct []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if user == "" {
		return errors.New("provider: empty user")
	}
	s := p.shardFor(user)
	s.mu.Lock()
	if err := p.journal(&storage.CiphertextRecord{
		User:  user,
		Index: uint32(len(s.cts[user])),
		Blob:  ct,
	}); err != nil {
		s.mu.Unlock()
		return err
	}
	s.cts[user] = append(s.cts[user], append([]byte(nil), ct...))
	s.mu.Unlock()
	// Durable before the client is told its backup exists.
	return p.syncStore()
}

// FetchCiphertext returns the client's latest recovery ciphertext.
func (p *Provider) FetchCiphertext(ctx context.Context, user string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.cts[user]
	if len(list) == 0 {
		return nil, fmt.Errorf("provider: no backup for user %q", user)
	}
	return append([]byte(nil), list[len(list)-1]...), nil
}

// CiphertextCount returns how many backups a user has stored.
func (p *Provider) CiphertextCount(user string) int {
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cts[user])
}

// --- distributed log (client.LogService) ---

// AttemptCount returns the number of recovery attempts already reserved or
// logged for a user (the next free attempt number).
func (p *Provider) AttemptCount(ctx context.Context, user string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts[user], nil
}

// ErrAttemptLimit reports a recovery-attempt reservation refused because
// the user's guess budget (EngineConfig.AttemptLimit) is exhausted.
var ErrAttemptLimit = errors.New("provider: attempt limit reached")

// ReserveAttempt atomically allocates the next attempt number for a user.
// Two concurrent recoveries of the same user receive distinct indices, so
// their log insertions never collide. When EngineConfig.AttemptLimit is
// set, an exhausted user gets ErrAttemptLimit instead of an index — and
// the rejection itself is journaled and synced before it is served, so
// the counter that justified it can never regress across a crash (the
// counter may have been advanced by records still in the unsynced
// journal tail, e.g. the LogRecoveryAttempt path).
func (p *Provider) ReserveAttempt(ctx context.Context, user string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	n := s.attempts[user]
	if lim := p.engine.AttemptLimit; lim > 0 && n >= lim {
		err := p.journal(&storage.AttemptRejectRecord{User: user, Attempt: uint32(n)})
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
		if err := p.syncStore(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("%w: user %q burned %d of %d guesses", ErrAttemptLimit, user, n, lim)
	}
	if err := p.journal(&storage.AttemptRecord{User: user, Attempt: uint32(n)}); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.attempts[user] = n + 1
	s.mu.Unlock()
	// The reservation must hit stable storage before the client learns
	// its attempt number: a kill -9 after the ack can never un-burn the
	// guess. (If the sync fails the counter stays advanced in RAM —
	// erring toward fewer guesses, never more.)
	if err := p.syncStore(); err != nil {
		return 0, err
	}
	return n, nil
}

// LogRecoveryAttempt inserts (LogID(user, attempt) → commitment) into the
// pending log batch for the next scheduled epoch.
func (p *Provider) LogRecoveryAttempt(ctx context.Context, user string, attempt int, commitment []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := p.log.Append(protocol.LogID(user, attempt), commitment); err != nil {
		return err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	// Direct callers may log attempt numbers they chose themselves; keep
	// the counter ahead of any observed index (ReserveAttempt already
	// advanced it for the client path). The advance is journaled but not
	// synced — the insertion itself only becomes visible at the epoch
	// barrier, which is the sync point.
	if attempt >= s.attempts[user] {
		if err := p.journal(&storage.AttemptRecord{User: user, Attempt: uint32(attempt)}); err != nil {
			s.mu.Unlock()
			return err
		}
		s.attempts[user] = attempt + 1
	}
	s.mu.Unlock()
	p.sched.notePending(p.log.PendingLen())
	return nil
}

// RunEpoch forces one log-update epoch over everything currently pending
// (Figure 5): build, audit at every reachable HSM in parallel, aggregate,
// commit. HSMs that fail mid-protocol are skipped; the epoch succeeds if a
// quorum signs. Cancelling ctx abandons the wait (the epoch still runs for
// other subscribers). Tests and administrative tools call this directly;
// clients wait on the scheduler via WaitForCommit instead.
func (p *Provider) RunEpoch(ctx context.Context) error {
	return p.sched.commitNow(ctx)
}

// WaitForCommit blocks until every log insertion appended before the call
// has been committed by an epoch (or the epoch attempt failed). Many
// concurrent callers share one epoch — this is the paper's batching,
// compressed from ten minutes to the engine's BatchWindow. A caller whose
// ctx is cancelled is unsubscribed from the round and returns ctx.Err();
// the shared epoch is unaffected.
func (p *Provider) WaitForCommit(ctx context.Context) error {
	return p.sched.waitForCommit(ctx)
}

// PendingLogLen returns queued-but-uncommitted log insertions.
func (p *Provider) PendingLogLen() int { return p.log.PendingLen() }

// FetchInclusionProof serves a log-inclusion proof for a committed entry.
func (p *Provider) FetchInclusionProof(ctx context.Context, user string, attempt int, commitment []byte) (*logtree.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.log.ProveInclusion(protocol.LogID(user, attempt), commitment)
}

// LogEntries exposes the committed log for external auditors (§6.3).
func (p *Provider) LogEntries() []logtree.Entry { return p.log.Entries() }

// Get returns the committed log value for an identifier.
func (p *Provider) Get(id []byte) ([]byte, bool) { return p.log.Get(id) }

// LogDigest returns the provider's committed digest.
func (p *Provider) LogDigest() logtree.Digest { return p.log.Digest() }

// GarbageCollectLog clears the log state (HSMs must consent via their own
// bounded-budget GarbageCollect).
func (p *Provider) GarbageCollectLog() {
	// Journal first: replay must reset at the same point in the record
	// stream, before any post-GC insertions.
	_ = p.journalSync(&storage.GCRecord{})
	p.log.GarbageCollect()
	for _, s := range p.shards {
		s.mu.Lock()
		s.attempts = make(map[string]int)
		s.mu.Unlock()
	}
}

// --- recovery relay (client.RecoveryService) ---

// RelayRecover forwards a recovery request to the addressed HSM and escrows
// the sealed reply so a replacement device can finish an interrupted
// recovery (§8). The reply is encrypted under the client's ephemeral key,
// so escrow reveals nothing to the provider. Escrow is keyed by
// (user, attempt): a reply for a newer attempt evicts older ones, and
// replies for attempts older than the newest seen are dropped, bounding
// per-user escrow memory at one cluster of replies. The context propagates
// into the HSM exchange: a client that cancels (say, because it already
// holds a threshold of shares) aborts the in-flight HSM request rather
// than leaking it.
func (p *Provider) RelayRecover(ctx context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	if req.SharePos < 0 || req.SharePos >= len(req.Cluster) {
		return nil, errors.New("provider: malformed cluster opening")
	}
	target := req.Cluster[req.SharePos]
	p.fleetMu.RLock()
	h, ok := p.hsms[target]
	p.fleetMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("provider: no HSM %d registered", target)
	}
	reply, err := h.HandleRecover(ctx, req)
	if err != nil {
		return nil, err
	}
	s := p.shardFor(req.User)
	s.mu.Lock()
	box := s.escrow[req.User]
	if box != nil && req.Attempt < box.attempt {
		// Stale attempt: serve the reply but do not escrow it.
		s.mu.Unlock()
		return reply, nil
	}
	// Journal before mutating so a storage failure leaves RAM and
	// journal agreeing; replay re-applies the same eviction rule.
	if err := p.journal(&storage.EscrowRecord{
		User:     req.User,
		Attempt:  uint32(req.Attempt),
		HSMIndex: uint32(reply.HSMIndex),
		SharePos: uint32(reply.SharePos),
		Box:      reply.Box,
	}); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if box == nil || req.Attempt > box.attempt {
		box = &escrowBox{attempt: req.Attempt, replies: make(map[int]*protocol.RecoveryReply)}
		s.escrow[req.User] = box
	}
	if _, seen := box.replies[req.SharePos]; !seen {
		box.order = append(box.order, req.SharePos)
	}
	box.replies[req.SharePos] = reply
	s.mu.Unlock()
	// Write-only, not synced: the record reaches the OS before the reply
	// is served, so it survives a process kill; full power-loss
	// durability arrives with the next epoch barrier. The client holding
	// the in-flight reply covers the sliver in between — escrow exists
	// for the CLIENT's crash, and syncing here would put an fsync on
	// every relayed share (the hot path the epoch barrier exists to
	// protect).
	return reply, nil
}

// FetchEscrowedReplies returns the sealed replies of a user's latest
// recovery attempt for a replacement device.
func (p *Provider) FetchEscrowedReplies(ctx context.Context, user string) ([]*protocol.RecoveryReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	box := s.escrow[user]
	if box == nil {
		return nil, nil
	}
	out := make([]*protocol.RecoveryReply, 0, len(box.order))
	for _, pos := range box.order {
		out = append(out, box.replies[pos])
	}
	return out, nil
}

// EscrowedAttempt reports which attempt a user's escrow currently holds
// (-1 when empty); exposed for escrow-bounding tests.
func (p *Provider) EscrowedAttempt(user string) int {
	s := p.shardFor(user)
	s.mu.Lock()
	defer s.mu.Unlock()
	if box := s.escrow[user]; box != nil {
		return box.attempt
	}
	return -1
}

// ClearEscrow drops a user's escrowed replies (after a completed recovery).
func (p *Provider) ClearEscrow(ctx context.Context, user string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s := p.shardFor(user)
	s.mu.Lock()
	if err := p.journal(&storage.EscrowClearRecord{User: user}); err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.escrow, user)
	s.mu.Unlock()
	// Write-only: losing an escrow clear to a power cut merely leaves
	// stale (already-punctured, undecryptable) replies behind, so the
	// clear rides the next epoch barrier rather than forcing its own
	// fsync on every completed recovery.
	return nil
}
