package provider

// durable.go is the provider's side of the durability contract with
// internal/storage: which state changes are journaled, how the journal
// is replayed into a fresh provider (Open), and how live state is
// compacted into snapshots.
//
// Two invariants carry the whole design:
//
//  1. Journal order equals state-mutation order. Every journal append
//     happens under the same lock as the mutation it describes (shard
//     mutex, dlog mutex, oracle-handle mutex), so replaying records in
//     sequence reproduces the exact interleaving — which matters
//     because an epoch-commit record consumes the first NumEntries
//     pending log insertions by position.
//
//  2. Record application is idempotent. A snapshot's BaseSeq is
//     captured *before* state is read, so a record can be reflected in
//     both the snapshot and the WAL tail; applying it twice must be a
//     no-op. Attempt counters use max, ciphertexts carry explicit
//     indices, escrow is keyed by (user, attempt, position), oracle
//     blocks by address, and epoch commits by epoch number.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"safetypin/internal/dlog"
	"safetypin/internal/logtree"
	"safetypin/internal/protocol"
	"safetypin/internal/securestore"
	"safetypin/internal/storage"
)

// RosterEntry is one journaled fleet registration: enough for a
// restarted provider daemon to re-dial and re-register its HSMs without
// waiting for them to reconnect first.
type RosterEntry struct {
	ID     int
	Addr   string
	BFEPub []byte
	AggPub []byte
}

// providerOracle is the journaling wrapper around one HSM's hosted
// block store. Writes are journaled in the write-only durability class:
// appended immediately (ordering) but only forced to disk at the next
// epoch barrier — a securestore rekey touches ~2·height blocks per
// puncture, and per-block fsyncs would destroy the hot path.
type providerOracle struct {
	p     *Provider
	hsmID int
	mu    sync.Mutex // orders journal appends against mem writes and swaps
	mem   *securestore.MemOracle
}

// Get implements securestore.Oracle.
func (o *providerOracle) Get(addr uint64) ([]byte, error) {
	o.mu.Lock()
	mem := o.mem
	o.mu.Unlock()
	return mem.Get(addr)
}

// Put implements securestore.Oracle.
func (o *providerOracle) Put(addr uint64, block []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.p.journal(&storage.OraclePutRecord{
		HSMID: uint32(o.hsmID),
		Addr:  addr,
		Block: block,
	}); err != nil {
		return err
	}
	return o.mem.Put(addr, block)
}

// --- journal helpers ---------------------------------------------------

// journal appends one record; a nil store (volatile provider) is a
// no-op.
func (p *Provider) journal(rec storage.Record) error {
	if p.store == nil {
		return nil
	}
	_, err := p.store.Append(rec)
	return err
}

// syncStore is the durability barrier.
func (p *Provider) syncStore() error {
	if p.store == nil {
		return nil
	}
	return p.store.Sync()
}

// journalSync appends and immediately syncs (the synced-before-ack
// class).
func (p *Provider) journalSync(rec storage.Record) error {
	if err := p.journal(rec); err != nil {
		return err
	}
	return p.syncStore()
}

// journalLogInsert is the dlog onAppend hook (runs under the dlog
// mutex).
func (p *Provider) journalLogInsert(id, val []byte) error {
	return p.journal(&storage.LogInsertRecord{ID: id, Val: val, Pending: true})
}

// journalEpochCommit is the dlog onCommit hook (runs under the dlog
// mutex, before the tree swap). The full commit message is journaled so
// a reopened provider can re-deliver it to HSMs that missed the fan-out.
func (p *Provider) journalEpochCommit(cm *dlog.CommitMessage, numEntries int) error {
	signers := make([]uint32, len(cm.Signers))
	for i, s := range cm.Signers {
		signers[i] = uint32(s)
	}
	if err := p.journal(&storage.EpochCommitRecord{
		Epoch:      cm.Header.Epoch,
		NumEntries: uint32(numEntries),
		OldDigest:  [32]byte(cm.Header.OldDigest),
		NewDigest:  [32]byte(cm.Header.NewDigest),
		Root:       cm.Header.Root,
		NumChunks:  uint32(cm.Header.NumChunks),
		NumEntry:   uint32(cm.Header.NumEntry),
		AggSig:     cm.AggSig,
		Signers:    signers,
	}); err != nil {
		return err
	}
	p.setLastCommit(cm)
	return nil
}

func (p *Provider) setLastCommit(cm *dlog.CommitMessage) {
	p.durMu.Lock()
	p.lastCommit = cm
	p.durMu.Unlock()
}

// --- recovery ----------------------------------------------------------

// recover replays the journal into the freshly constructed provider,
// then drops whatever pending log insertions survived — their clients
// were never acknowledged (WaitForCommit had not returned), and a
// half-gathered batch must not leak into the next epoch. The drop is
// itself journaled and synced: without that, a later replay would feed
// the dropped insertions into subsequent epoch-commit records and
// diverge.
func (p *Provider) recover() error {
	if _, err := p.store.Replay(p.applyRecord); err != nil {
		return fmt.Errorf("provider: journal replay: %w", err)
	}
	if n := p.log.DropPending(); n > 0 {
		if err := p.journal(&storage.PendingDropRecord{Count: uint32(n)}); err != nil {
			return fmt.Errorf("provider: journaling pending drop: %w", err)
		}
	}
	if err := p.store.Sync(); err != nil {
		return fmt.Errorf("provider: recovery sync: %w", err)
	}
	return nil
}

// applyRecord applies one journal record to provider state. seq is 0
// for snapshot records, which matters only for epoch commits: a
// snapshot's entries are restored directly into the committed tree, so
// its commit marker just sets the epoch counter and verifies the
// digest, while a WAL commit consumes pending insertions.
func (p *Provider) applyRecord(seq uint64, rec storage.Record) error {
	switch r := rec.(type) {
	case *storage.AttemptRecord:
		s := p.shardFor(r.User)
		s.mu.Lock()
		if int(r.Attempt)+1 > s.attempts[r.User] {
			s.attempts[r.User] = int(r.Attempt) + 1
		}
		s.mu.Unlock()

	case *storage.AttemptRejectRecord:
		// A rejection was served when the counter stood at Attempt; the
		// replayed counter must be at least that, even if the records
		// that advanced it were lost in the unsynced tail.
		s := p.shardFor(r.User)
		s.mu.Lock()
		if int(r.Attempt) > s.attempts[r.User] {
			s.attempts[r.User] = int(r.Attempt)
		}
		s.mu.Unlock()

	case *storage.CiphertextRecord:
		s := p.shardFor(r.User)
		s.mu.Lock()
		list := s.cts[r.User]
		for len(list) <= int(r.Index) {
			list = append(list, nil)
		}
		list[r.Index] = append([]byte(nil), r.Blob...)
		s.cts[r.User] = list
		s.mu.Unlock()

	case *storage.LogInsertRecord:
		if r.Pending {
			return p.log.RestoreAppend(r.ID, r.Val)
		}
		return p.log.RestoreCommitted(r.ID, r.Val)

	case *storage.EpochCommitRecord:
		if seq == 0 {
			p.log.SetEpoch(r.Epoch)
			if got := p.log.Digest(); got != logtree.Digest(r.NewDigest) {
				return fmt.Errorf("provider: snapshot log digest mismatch at epoch %d", r.Epoch)
			}
		} else if err := p.log.RestoreCommit(int(r.NumEntries), r.Epoch, logtree.Digest(r.NewDigest)); err != nil {
			return err
		}
		if len(r.AggSig) > 0 {
			p.setLastCommit(commitMessageFromRecord(r))
		}

	case *storage.EscrowRecord:
		s := p.shardFor(r.User)
		s.mu.Lock()
		box := s.escrow[r.User]
		att := int(r.Attempt)
		switch {
		case box == nil || att > box.attempt:
			box = &escrowBox{attempt: att, replies: make(map[int]*protocol.RecoveryReply)}
			s.escrow[r.User] = box
		case att < box.attempt:
			s.mu.Unlock()
			return nil
		}
		pos := int(r.SharePos)
		if _, seen := box.replies[pos]; !seen {
			box.order = append(box.order, pos)
		}
		box.replies[pos] = &protocol.RecoveryReply{
			HSMIndex: int(r.HSMIndex),
			SharePos: pos,
			Box:      append([]byte(nil), r.Box...),
		}
		s.mu.Unlock()

	case *storage.EscrowClearRecord:
		s := p.shardFor(r.User)
		s.mu.Lock()
		delete(s.escrow, r.User)
		s.mu.Unlock()

	case *storage.OraclePutRecord:
		o := p.oracleHandle(int(r.HSMID))
		o.mu.Lock()
		err := o.mem.Put(r.Addr, r.Block)
		o.mu.Unlock()
		return err

	case *storage.OracleClearRecord:
		o := p.oracleHandle(int(r.HSMID))
		o.mu.Lock()
		o.mem = securestore.NewMemOracle()
		o.mu.Unlock()

	case *storage.RosterRecord:
		p.fleetMu.Lock()
		p.roster[int(r.ID)] = RosterEntry{
			ID:     int(r.ID),
			Addr:   r.Addr,
			BFEPub: append([]byte(nil), r.BFEPub...),
			AggPub: append([]byte(nil), r.AggPub...),
		}
		p.rosterGen++ // replayed registrations invalidate like live ones
		p.fleetMu.Unlock()

	case *storage.GCRecord:
		p.log.GarbageCollect()
		for _, s := range p.shards {
			s.mu.Lock()
			s.attempts = make(map[string]int)
			s.mu.Unlock()
		}

	case *storage.PendingDropRecord:
		p.log.DropPendingN(int(r.Count))

	default:
		return fmt.Errorf("provider: unhandled journal record %T", rec)
	}
	return nil
}

func commitMessageFromRecord(r *storage.EpochCommitRecord) *dlog.CommitMessage {
	signers := make([]int, len(r.Signers))
	for i, s := range r.Signers {
		signers[i] = int(s)
	}
	return &dlog.CommitMessage{
		Header: dlog.EpochHeader{
			Epoch:     r.Epoch,
			OldDigest: logtree.Digest(r.OldDigest),
			NewDigest: logtree.Digest(r.NewDigest),
			Root:      r.Root,
			NumChunks: int(r.NumChunks),
			NumEntry:  int(r.NumEntry),
		},
		AggSig:  append([]byte(nil), r.AggSig...),
		Signers: signers,
	}
}

// --- snapshots ---------------------------------------------------------

// buildSnapshot renders current provider state as a flat record list.
// BaseSeq is captured before any state is read: a record journaled
// concurrently may then appear both here and in the WAL tail, which
// idempotent application absorbs; the reverse (a record in neither)
// cannot happen. Iteration orders are sorted so the encoding — and
// therefore StateDigest — is deterministic.
func (p *Provider) buildSnapshot() *storage.Snapshot {
	snap := &storage.Snapshot{}
	if p.store != nil {
		snap.BaseSeq = p.store.LastSeq()
	}

	// Fleet roster and oracle handles.
	p.fleetMu.RLock()
	roster := make(map[int]RosterEntry, len(p.roster))
	rosterIDs := make([]int, 0, len(p.roster))
	for id, e := range p.roster {
		roster[id] = e
		rosterIDs = append(rosterIDs, id)
	}
	oracleIDs := make([]int, 0, len(p.oracles))
	oracleHandles := make(map[int]*providerOracle, len(p.oracles))
	for id, o := range p.oracles {
		oracleIDs = append(oracleIDs, id)
		oracleHandles[id] = o
	}
	p.fleetMu.RUnlock()
	sort.Ints(rosterIDs)
	sort.Ints(oracleIDs)
	for _, id := range rosterIDs {
		e := roster[id]
		snap.Records = append(snap.Records, &storage.RosterRecord{
			ID: uint32(id), Addr: e.Addr, BFEPub: e.BFEPub, AggPub: e.AggPub,
		})
	}

	// Log: committed entries, epoch marker, pending batch.
	committed, pending, epoch, digest := p.log.SnapshotState()
	for _, e := range committed {
		snap.Records = append(snap.Records, &storage.LogInsertRecord{ID: e.ID, Val: e.Val})
	}
	if epoch > 0 {
		marker := &storage.EpochCommitRecord{Epoch: epoch, NewDigest: [32]byte(digest)}
		p.durMu.Lock()
		if cm := p.lastCommit; cm != nil && cm.Header.Epoch == epoch {
			marker.OldDigest = [32]byte(cm.Header.OldDigest)
			marker.Root = cm.Header.Root
			marker.NumChunks = uint32(cm.Header.NumChunks)
			marker.NumEntry = uint32(cm.Header.NumEntry)
			marker.AggSig = cm.AggSig
			for _, s := range cm.Signers {
				marker.Signers = append(marker.Signers, uint32(s))
			}
		}
		p.durMu.Unlock()
		snap.Records = append(snap.Records, marker)
	}
	for _, e := range pending {
		snap.Records = append(snap.Records, &storage.LogInsertRecord{ID: e.ID, Val: e.Val, Pending: true})
	}

	// Per-user state, globally sorted by user for determinism.
	type userState struct {
		attempts int
		cts      [][]byte
		escrow   *escrowBox
	}
	users := make(map[string]*userState)
	get := func(u string) *userState {
		st, ok := users[u]
		if !ok {
			st = &userState{}
			users[u] = st
		}
		return st
	}
	for _, s := range p.shards {
		s.mu.Lock()
		for u, n := range s.attempts {
			get(u).attempts = n
		}
		for u, list := range s.cts {
			cp := make([][]byte, len(list))
			for i, b := range list {
				cp[i] = append([]byte(nil), b...)
			}
			get(u).cts = cp
		}
		for u, box := range s.escrow {
			cp := &escrowBox{
				attempt: box.attempt,
				replies: make(map[int]*protocol.RecoveryReply, len(box.replies)),
				order:   append([]int(nil), box.order...),
			}
			for pos, r := range box.replies {
				cp.replies[pos] = r
			}
			get(u).escrow = cp
		}
		s.mu.Unlock()
	}
	names := make([]string, 0, len(users))
	for u := range users {
		names = append(names, u)
	}
	sort.Strings(names)
	for _, u := range names {
		st := users[u]
		if st.attempts > 0 {
			snap.Records = append(snap.Records, &storage.AttemptRecord{
				User: u, Attempt: uint32(st.attempts - 1),
			})
		}
		for i, blob := range st.cts {
			if blob == nil {
				continue
			}
			snap.Records = append(snap.Records, &storage.CiphertextRecord{
				User: u, Index: uint32(i), Blob: blob,
			})
		}
		if box := st.escrow; box != nil {
			for _, pos := range box.order {
				r := box.replies[pos]
				snap.Records = append(snap.Records, &storage.EscrowRecord{
					User:     u,
					Attempt:  uint32(box.attempt),
					HSMIndex: uint32(r.HSMIndex),
					SharePos: uint32(r.SharePos),
					Box:      r.Box,
				})
			}
		}
	}

	// Hosted oracle blocks, sorted by (HSM, address).
	for _, id := range oracleIDs {
		o := oracleHandles[id]
		o.mu.Lock()
		blocks := o.mem.Blocks()
		o.mu.Unlock()
		addrs := make([]uint64, 0, len(blocks))
		for a := range blocks {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			snap.Records = append(snap.Records, &storage.OraclePutRecord{
				HSMID: uint32(id), Addr: a, Block: blocks[a],
			})
		}
	}
	return snap
}

// SnapshotNow compacts the journal into a fresh snapshot. The scheduler
// calls it every SnapshotEvery epoch commits; Close calls it for a
// clean shutdown; administrative tooling may call it at will. No-op for
// a volatile provider.
func (p *Provider) SnapshotNow() error {
	if p.store == nil {
		return nil
	}
	return p.store.WriteSnapshot(p.buildSnapshot())
}

// StateDigest hashes the provider's durable state — the canonical
// encoding of a freshly built snapshot. Recovering a provider twice
// from the same journal must yield identical digests (the replay
// idempotence property the crash tests assert).
func (p *Provider) StateDigest() [32]byte {
	h := sha256.New()
	for _, rec := range p.buildSnapshot().Records {
		h.Write(storage.EncodeRecord(rec))
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// --- roster + commit resend -------------------------------------------

// JournalRoster records an HSM's registration durably (synced before
// returning: a daemon acks registration only once it would survive a
// crash).
func (p *Provider) JournalRoster(e RosterEntry) error {
	p.fleetMu.Lock()
	p.roster[e.ID] = e
	p.rosterGen++ // invalidates any fleet aggregate built before this entry
	p.fleetMu.Unlock()
	return p.journalSync(&storage.RosterRecord{
		ID:     uint32(e.ID),
		Addr:   e.Addr,
		BFEPub: e.BFEPub,
		AggPub: e.AggPub,
	})
}

// RecoveredRoster returns the journaled fleet roster sorted by HSM ID —
// what a restarted daemon uses to re-dial its fleet.
func (p *Provider) RecoveredRoster() []RosterEntry {
	p.fleetMu.RLock()
	out := make([]RosterEntry, 0, len(p.roster))
	for _, e := range p.roster {
		out = append(out, e)
	}
	p.fleetMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ResendLastCommit re-delivers the most recent committed epoch's commit
// message to every registered HSM, returning how many accepted it. A
// provider that crashed between the durable commit and the commit
// fan-out leaves HSMs one digest behind — they would reject the next
// epoch's OldDigest — so reopening ends with this best-effort resend.
// HSMs already at the new digest reject the duplicate harmlessly.
func (p *Provider) ResendLastCommit(ctx context.Context) int {
	p.durMu.Lock()
	cm := p.lastCommit
	p.durMu.Unlock()
	if cm == nil || len(cm.AggSig) == 0 {
		return 0
	}
	handles := p.handles()
	if len(handles) == 0 {
		return 0
	}
	delivered := 0
	for _, r := range fanOut(ctx, handles, p.engine.EpochWorkers, func(ctx context.Context, h HSMHandle) hsmResult {
		return hsmResult{id: h.ID(), err: p.commitOne(ctx, h, cm)}
	}) {
		if r.err == nil {
			delivered++
		}
	}
	return delivered
}
