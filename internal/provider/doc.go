// Package provider implements the SafetyPin service provider: the untrusted
// data-center side that stores recovery ciphertexts, hosts the HSMs'
// outsourced key storage, maintains the distributed log, relays recovery
// traffic between clients and HSMs, and escrows HSM replies for
// crash-during-recovery handling (§8).
//
// The provider is built as a concurrent engine: per-user state lives in
// striped shards so thousands of clients can back up and recover in
// parallel, and log insertions from concurrent recoveries accumulate into
// shared epochs driven by the scheduler in scheduler.go (the paper's
// ~10-minute batching, §6.2/§9).
//
// Every service method takes a context.Context: *Provider satisfies the
// client package's role-scoped Provider interface directly, so callers get
// identical cancellation and deadline semantics whether they talk to the
// in-process engine or to providerd over TCP. Cancellation propagates all
// the way down — a cancelled WaitForCommit is unsubscribed from its epoch
// round, and a cancelled RelayRecover aborts the per-HSM exchange.
//
// Nothing in this package is trusted: every security property is enforced
// by the clients and HSMs on the other side of its interfaces. A test that
// swaps in a misbehaving provider must fail closed, not open.
package provider
