package provider

// scheduler.go implements the provider's epoch scheduler: the batching and
// fan-out engine behind the distributed log (Figure 5, §6.2).
//
// The paper commits log updates every ~10 minutes, so thousands of
// concurrent recoveries share one epoch's audit cost. The scheduler models
// that: log insertions accumulate while a round gathers (BatchWindow, or
// until MaxBatch insertions are pending), then one leader goroutine runs
// the epoch for every waiter at once. Callers block on WaitForCommit
// instead of driving epochs themselves.
//
// Epoch execution fans the choose/audit/commit exchanges out to the fleet
// through a bounded worker pool, aggregating signatures as they arrive. A
// slow or hung HSM is skipped after AuditTimeout, so it delays an epoch by
// at most that much; the epoch still commits if a quorum signs.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"safetypin/internal/dlog"
)

// epochRound is one gathering window: every waiter that joins before the
// round fires shares the same epoch execution and result.
type epochRound struct {
	fire  chan struct{} // closed to trigger the commit early
	done  chan struct{} // closed once the epoch attempt finished
	fired bool          // guarded by epochScheduler.mu
	err   error         // valid after done is closed
}

// epochScheduler batches log insertions into shared epochs.
type epochScheduler struct {
	p  *Provider
	mu sync.Mutex
	// cur is the round currently gathering waiters; nil when none. A
	// round is detached (cur = nil) before its epoch builds, so any
	// insertion appended while a round is joinable is guaranteed to be
	// included in that round's epoch.
	cur *epochRound
	// commitMu serializes epoch executions: the dlog stages exactly one
	// epoch at a time.
	commitMu sync.Mutex
}

func newEpochScheduler(p *Provider) *epochScheduler {
	return &epochScheduler{p: p}
}

// waitForCommit joins the current round (starting one if needed) and blocks
// until its epoch attempt finishes. "Nothing pending" is success here: it
// means an earlier epoch already committed everything this caller appended.
func (s *epochScheduler) waitForCommit() error {
	r := s.join()
	<-r.done
	if errors.Is(r.err, dlog.ErrNoPending) {
		return nil
	}
	return r.err
}

// join returns the gathering round, creating and leading a fresh one when
// none is open.
func (s *epochScheduler) join() *epochRound {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		r := &epochRound{fire: make(chan struct{}), done: make(chan struct{})}
		s.cur = r
		go s.lead(r)
	}
	return s.cur
}

// notePending fires the gathering round early once the pending batch is
// large enough (the size trigger; the timer is the time trigger).
func (s *epochScheduler) notePending(pending int) {
	if pending < s.p.engine.MaxBatch {
		return
	}
	s.mu.Lock()
	if r := s.cur; r != nil && !r.fired {
		r.fired = true
		close(r.fire)
	}
	s.mu.Unlock()
}

// commitNow forces an epoch over everything currently pending: it fires the
// gathering round (or starts one) and waits for the result, errors
// included. Provider.RunEpoch is this.
func (s *epochScheduler) commitNow() error {
	s.mu.Lock()
	r := s.cur
	if r == nil {
		r = &epochRound{fire: make(chan struct{}), done: make(chan struct{})}
		s.cur = r
		go s.lead(r)
	}
	if !r.fired {
		r.fired = true
		close(r.fire)
	}
	s.mu.Unlock()
	<-r.done
	return r.err
}

// lead waits out the gathering window (or an early fire), detaches the
// round, and executes its epoch.
func (s *epochScheduler) lead(r *epochRound) {
	t := time.NewTimer(s.p.engine.BatchWindow)
	select {
	case <-t.C:
	case <-r.fire:
		t.Stop()
	}
	s.mu.Lock()
	if s.cur == r {
		s.cur = nil
	}
	s.mu.Unlock()
	s.commitMu.Lock()
	r.err = s.p.runEpochNow()
	s.commitMu.Unlock()
	close(r.done)
}

// hsmResult is one HSM's contribution to an epoch phase (sig is nil for
// the commit phase).
type hsmResult struct {
	id  int
	sig []byte
	err error
}

// fanOut runs fn against every handle through a pool of at most workers
// goroutines and returns the results in completion order. Both epoch
// phases (audit, commit) go through here so the bounding and skip
// semantics live in one place.
func fanOut(handles []HSMHandle, workers int, fn func(HSMHandle) hsmResult) []hsmResult {
	if workers <= 0 {
		workers = 16
	}
	if workers > len(handles) {
		workers = len(handles)
	}
	jobs := make(chan HSMHandle)
	results := make(chan hsmResult, len(handles))
	for w := 0; w < workers; w++ {
		go func() {
			for h := range jobs {
				results <- fn(h)
			}
		}()
	}
	go func() {
		for _, h := range handles {
			jobs <- h
		}
		close(jobs)
	}()
	out := make([]hsmResult, 0, len(handles))
	for range handles {
		out = append(out, <-results)
	}
	return out
}

// runEpochNow executes one epoch over the current pending batch: build,
// fan out the audit to the fleet, aggregate, commit, fan out the commit.
// The caller (scheduler) serializes invocations.
func (p *Provider) runEpochNow() error {
	hdr, err := p.log.BuildEpoch()
	if err != nil {
		return err
	}
	handles := p.handles()
	if len(handles) == 0 {
		p.log.Abort()
		return errors.New("provider: epoch gathered no signatures")
	}

	// Audit fan-out: gather signatures from every reachable HSM.
	var sigs [][]byte
	var signers []int
	var firstErr error
	for _, r := range fanOut(handles, p.engine.EpochWorkers, func(h HSMHandle) hsmResult {
		sig, err := p.auditOne(h, hdr)
		return hsmResult{id: h.ID(), sig: sig, err: err}
	}) {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		sigs = append(sigs, r.sig)
		signers = append(signers, r.id)
	}
	if len(sigs) == 0 {
		p.log.Abort()
		if firstErr != nil {
			return fmt.Errorf("provider: epoch gathered no signatures: %w", firstErr)
		}
		return errors.New("provider: epoch gathered no signatures")
	}
	cm, err := p.log.Commit(sigs, signers)
	if err != nil {
		return err
	}

	// Commit fan-out: every HSM learns the new digest. The provider's log
	// has already committed; an unreachable HSM just misses the digest
	// (and will refuse stale-digest work until re-synced), so delivery
	// failures are fatal only when every delivery failed — one dead HSM
	// must not fail every recovery batched into this epoch.
	var commitErr error
	delivered := 0
	for _, r := range fanOut(handles, p.engine.EpochWorkers, func(h HSMHandle) hsmResult {
		return hsmResult{id: h.ID(), err: p.commitOne(h, cm)}
	}) {
		if r.err != nil {
			if commitErr == nil {
				commitErr = r.err
			}
		} else {
			delivered++
		}
	}
	if delivered == 0 && commitErr != nil {
		return fmt.Errorf("provider: no HSM accepted the epoch commit: %w", commitErr)
	}
	return nil
}

// auditOne runs the choose-chunks/audit exchange with one HSM, bounded by
// the engine's audit timeout so a hung HSM cannot wedge the pool's worker.
func (p *Provider) auditOne(h HSMHandle, hdr dlog.EpochHeader) ([]byte, error) {
	type out struct {
		sig []byte
		err error
	}
	ch := make(chan out, 1)
	go func() {
		chunks, err := h.LogChooseChunks(hdr)
		if err != nil {
			ch <- out{err: err}
			return
		}
		pkg, err := p.log.AuditPackageFor(chunks)
		if err != nil {
			ch <- out{err: err}
			return
		}
		sig, err := h.LogHandleAudit(pkg)
		ch <- out{sig: sig, err: err}
	}()
	t := time.NewTimer(p.engine.AuditTimeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.sig, o.err
	case <-t.C:
		return nil, fmt.Errorf("provider: HSM %d audit timed out", h.ID())
	}
}

// commitOne delivers the commit message to one HSM under the audit timeout.
func (p *Provider) commitOne(h HSMHandle, cm *dlog.CommitMessage) error {
	ch := make(chan error, 1)
	go func() { ch <- h.LogHandleCommit(cm) }()
	t := time.NewTimer(p.engine.AuditTimeout)
	defer t.Stop()
	select {
	case err := <-ch:
		return err
	case <-t.C:
		return fmt.Errorf("provider: HSM %d commit timed out", h.ID())
	}
}
