package provider

// scheduler.go implements the provider's epoch scheduler: the batching and
// fan-out engine behind the distributed log (Figure 5, §6.2).
//
// The paper commits log updates every ~10 minutes, so thousands of
// concurrent recoveries share one epoch's audit cost. The scheduler models
// that: log insertions accumulate while a round gathers (BatchWindow, or
// until MaxBatch insertions are pending), then one leader goroutine runs
// the epoch for every waiter at once. Callers block on WaitForCommit(ctx)
// instead of driving epochs themselves; a caller whose context is cancelled
// is unsubscribed from the round immediately — the shared epoch still runs
// for the remaining waiters, but nothing holds a reference to the
// abandoned one.
//
// Two triggers fire a round: the gathering window and the batch-size
// limit. A third, optional standing timer (EngineConfig.EpochInterval)
// commits pending insertions on a fixed cadence even when no WaitForCommit
// waiter is blocked — the daemon configuration for the paper's true
// 10-minute epochs, where raw LogRecoveryAttempt traffic trickles in
// without anyone waiting on it.
//
// Epoch execution fans the choose/audit/commit exchanges out to the fleet
// through a bounded worker pool, aggregating signatures as they arrive.
// Each per-HSM exchange runs under a context bounded by AuditTimeout, so a
// slow or hung HSM is skipped (and, over a context-aware transport, its
// in-flight RPC cancelled) after at most that long; the epoch still
// commits if a quorum signs.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"safetypin/internal/dlog"
)

// ErrProviderClosed is delivered to every in-flight WaitForCommit waiter
// when the provider shuts down, and returned by later waits. A waiter
// must never block forever on a provider that will not run another
// epoch.
var ErrProviderClosed = errors.New("provider: closed")

// waiter is one WaitForCommit subscription: the round's result is delivered
// on ch (buffered, so the leader never blocks on a slow receiver).
type waiter struct {
	ch chan error
}

// epochRound is one gathering window: every waiter subscribed before the
// round fires shares the same epoch execution and result.
type epochRound struct {
	fire    chan struct{}        // closed to trigger the commit early
	fired   bool                 // guarded by epochScheduler.mu
	waiters map[*waiter]struct{} // guarded by epochScheduler.mu
}

// epochScheduler batches log insertions into shared epochs.
type epochScheduler struct {
	p  *Provider
	mu sync.Mutex
	// cur is the round currently gathering waiters; nil when none. A
	// round is detached (cur = nil) before its epoch builds, so any
	// insertion appended while a round is joinable is guaranteed to be
	// included in that round's epoch.
	cur *epochRound
	// rounds tracks every round whose result has not yet been delivered,
	// including the detached one an epoch is running for — close must be
	// able to wake its waiters too. Guarded by mu.
	rounds map[*epochRound]struct{}
	// closed rejects new rounds after close. Guarded by mu.
	closed bool
	// commitMu serializes epoch executions: the dlog stages exactly one
	// epoch at a time.
	commitMu sync.Mutex
	// commits counts successful epochs for the snapshot cadence. Guarded
	// by commitMu.
	commits int

	stop     chan struct{}
	stopOnce sync.Once
}

func newEpochScheduler(p *Provider) *epochScheduler {
	s := &epochScheduler{p: p, rounds: make(map[*epochRound]struct{}), stop: make(chan struct{})}
	if p.engine.EpochInterval > 0 {
		go s.standingTimer(p.engine.EpochInterval)
	}
	return s
}

// close stops the standing timer, rejects future rounds, and wakes every
// waiter of every undelivered round with ErrProviderClosed (idempotent).
// Leaders still in flight find their round's waiter list already nil and
// deliver to no one.
func (s *epochScheduler) close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.mu.Lock()
		s.closed = true
		s.cur = nil
		var orphaned []map[*waiter]struct{}
		for r := range s.rounds {
			if !r.fired {
				r.fired = true
				close(r.fire)
			}
			orphaned = append(orphaned, r.waiters)
			r.waiters = nil
		}
		s.rounds = make(map[*epochRound]struct{})
		s.mu.Unlock()
		for _, ws := range orphaned {
			for w := range ws {
				w.ch <- ErrProviderClosed
			}
		}
	})
}

// standingTimer commits pending insertions on a fixed cadence even when no
// waiter is blocked — the daemon mode for the paper's 10-minute epochs.
func (s *epochScheduler) standingTimer(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.p.log.PendingLen() > 0 {
				_ = s.commitNow(context.Background())
			}
		case <-s.stop:
			return
		}
	}
}

// waitForCommit subscribes to the current round (starting one if needed)
// and blocks until its epoch attempt finishes or ctx is cancelled. A
// cancelled waiter is removed from the round's subscription list before
// returning. "Nothing pending" is success here: it means an earlier epoch
// already committed everything this caller appended.
func (s *epochScheduler) waitForCommit(ctx context.Context) error {
	w := &waiter{ch: make(chan error, 1)}
	s.mu.Lock()
	r := s.openRoundLocked()
	if r == nil {
		s.mu.Unlock()
		return ErrProviderClosed
	}
	r.waiters[w] = struct{}{}
	s.mu.Unlock()
	select {
	case err := <-w.ch:
		if errors.Is(err, dlog.ErrNoPending) {
			return nil
		}
		return err
	case <-ctx.Done():
		s.unsubscribe(r, w)
		return ctx.Err()
	}
}

// openRoundLocked returns the gathering round, creating and leading a fresh
// one when none is open. It returns nil after close. Callers hold s.mu.
func (s *epochScheduler) openRoundLocked() *epochRound {
	if s.closed {
		return nil
	}
	if s.cur == nil {
		r := &epochRound{fire: make(chan struct{}), waiters: make(map[*waiter]struct{})}
		s.cur = r
		s.rounds[r] = struct{}{}
		go s.lead(r)
	}
	return s.cur
}

// unsubscribe removes a cancelled waiter from a round's subscription list.
// After the round delivered its result the list is nil and this is a no-op.
func (s *epochScheduler) unsubscribe(r *epochRound, w *waiter) {
	s.mu.Lock()
	delete(r.waiters, w)
	s.mu.Unlock()
}

// waiterCount reports the current round's live subscriptions (0 when no
// round is gathering); exposed inside the package for leak tests.
func (s *epochScheduler) waiterCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return 0
	}
	return len(s.cur.waiters)
}

// notePending fires the gathering round early once the pending batch is
// large enough (the size trigger; the timer is the time trigger).
func (s *epochScheduler) notePending(pending int) {
	if pending < s.p.engine.MaxBatch {
		return
	}
	s.mu.Lock()
	if r := s.cur; r != nil && !r.fired {
		r.fired = true
		close(r.fire)
	}
	s.mu.Unlock()
}

// commitNow forces an epoch over everything currently pending: it fires the
// gathering round (or starts one) and waits for the result, errors
// included. Provider.RunEpoch is this. Cancelling ctx abandons the wait
// (the epoch itself still runs for any other subscriber).
func (s *epochScheduler) commitNow(ctx context.Context) error {
	w := &waiter{ch: make(chan error, 1)}
	s.mu.Lock()
	r := s.openRoundLocked()
	if r == nil {
		s.mu.Unlock()
		return ErrProviderClosed
	}
	r.waiters[w] = struct{}{}
	if !r.fired {
		r.fired = true
		close(r.fire)
	}
	s.mu.Unlock()
	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		s.unsubscribe(r, w)
		return ctx.Err()
	}
}

// lead waits out the gathering window (or an early fire), detaches the
// round, executes its epoch, and delivers the result to every waiter still
// subscribed.
func (s *epochScheduler) lead(r *epochRound) {
	t := time.NewTimer(s.p.engine.BatchWindow)
	select {
	case <-t.C:
	case <-r.fire:
		t.Stop()
	}
	s.mu.Lock()
	if s.cur == r {
		s.cur = nil
	}
	closed := s.closed
	s.mu.Unlock()
	var err error
	if closed {
		err = ErrProviderClosed
	} else {
		s.commitMu.Lock()
		err = s.p.runEpochNow(context.Background())
		if err == nil || errors.Is(err, dlog.ErrNoPending) {
			s.commits++
			if every := s.p.engine.SnapshotEvery; every > 0 && s.commits%every == 0 {
				// Best-effort compaction: a failed snapshot leaves the
				// journal longer, not the state wrong.
				_ = s.p.SnapshotNow()
			}
		}
		s.commitMu.Unlock()
	}
	s.mu.Lock()
	ws := r.waiters
	r.waiters = nil // late unsubscribes become no-ops
	delete(s.rounds, r)
	s.mu.Unlock()
	for w := range ws {
		w.ch <- err
	}
}

// hsmResult is one HSM's contribution to an epoch phase (sig is nil for
// the commit phase).
type hsmResult struct {
	id  int
	sig []byte
	err error
}

// fanOut runs fn against every handle through a pool of at most workers
// goroutines and returns the results in completion order. Both epoch
// phases (audit, commit) go through here so the bounding and skip
// semantics live in one place.
func fanOut(ctx context.Context, handles []HSMHandle, workers int, fn func(context.Context, HSMHandle) hsmResult) []hsmResult {
	if workers <= 0 {
		workers = 16
	}
	if workers > len(handles) {
		workers = len(handles)
	}
	jobs := make(chan HSMHandle)
	results := make(chan hsmResult, len(handles))
	for w := 0; w < workers; w++ {
		go func() {
			for h := range jobs {
				results <- fn(ctx, h)
			}
		}()
	}
	go func() {
		for _, h := range handles {
			jobs <- h
		}
		close(jobs)
	}()
	out := make([]hsmResult, 0, len(handles))
	for range handles {
		out = append(out, <-results)
	}
	return out
}

// runEpochNow executes one epoch over the current pending batch: build,
// fan out the audit to the fleet, aggregate, commit, fan out the commit.
// The caller (scheduler) serializes invocations.
func (p *Provider) runEpochNow(ctx context.Context) error {
	hdr, err := p.log.BuildEpoch()
	if err != nil {
		return err
	}
	handles := p.handles()
	if len(handles) == 0 {
		p.log.Abort()
		return errors.New("provider: epoch gathered no signatures")
	}

	// Audit fan-out: gather signatures from every reachable HSM.
	var sigs [][]byte
	var signers []int
	var firstErr error
	for _, r := range fanOut(ctx, handles, p.engine.EpochWorkers, func(ctx context.Context, h HSMHandle) hsmResult {
		sig, err := p.auditOne(ctx, h, hdr)
		return hsmResult{id: h.ID(), sig: sig, err: err}
	}) {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		sigs = append(sigs, r.sig)
		signers = append(signers, r.id)
	}
	if len(sigs) == 0 {
		p.log.Abort()
		if firstErr != nil {
			return fmt.Errorf("provider: epoch gathered no signatures: %w", firstErr)
		}
		return errors.New("provider: epoch gathered no signatures")
	}
	cm, err := p.log.Commit(sigs, signers)
	if err != nil {
		return err
	}
	// The epoch barrier: the commit record (journaled by the dlog hook
	// inside Commit) and every insertion it consumed must be on stable
	// storage before any HSM or waiter learns the epoch exists. One fsync
	// covers the whole batch.
	if err := p.syncStore(); err != nil {
		return fmt.Errorf("provider: epoch durability barrier: %w", err)
	}

	// Commit fan-out: every HSM learns the new digest. The provider's log
	// has already committed; an unreachable HSM just misses the digest
	// (and will refuse stale-digest work until re-synced), so delivery
	// failures are fatal only when every delivery failed — one dead HSM
	// must not fail every recovery batched into this epoch.
	var commitErr error
	delivered := 0
	for _, r := range fanOut(ctx, handles, p.engine.EpochWorkers, func(ctx context.Context, h HSMHandle) hsmResult {
		return hsmResult{id: h.ID(), err: p.commitOne(ctx, h, cm)}
	}) {
		if r.err != nil {
			if commitErr == nil {
				commitErr = r.err
			}
		} else {
			delivered++
		}
	}
	if delivered == 0 && commitErr != nil {
		return fmt.Errorf("provider: no HSM accepted the epoch commit: %w", commitErr)
	}
	return nil
}

// auditOne runs the choose-chunks/audit exchange with one HSM under a
// context bounded by the engine's audit timeout, so a hung HSM cannot
// wedge the pool's worker — and over a context-aware transport the
// in-flight RPC itself is cancelled at the deadline.
func (p *Provider) auditOne(ctx context.Context, h HSMHandle, hdr dlog.EpochHeader) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, p.engine.AuditTimeout)
	defer cancel()
	type out struct {
		sig []byte
		err error
	}
	ch := make(chan out, 1)
	go func() {
		// Retry the whole choose/audit sequence on transient failures: a
		// reconnected HSM must re-choose its chunks, not resume half an
		// exchange. Protocol rejections fail fast.
		var sig []byte
		err := p.withRetry(ctx, func() error {
			chunks, err := h.LogChooseChunks(ctx, hdr)
			if err != nil {
				return err
			}
			pkg, err := p.log.AuditPackageFor(chunks)
			if err != nil {
				return err
			}
			sig, err = h.LogHandleAudit(ctx, pkg)
			return err
		})
		ch <- out{sig: sig, err: err}
	}()
	select {
	case o := <-ch:
		return o.sig, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("provider: HSM %d audit timed out: %w", h.ID(), ctx.Err())
	}
}

// commitOne delivers the commit message to one HSM under the audit timeout.
func (p *Provider) commitOne(ctx context.Context, h HSMHandle, cm *dlog.CommitMessage) error {
	ctx, cancel := context.WithTimeout(ctx, p.engine.AuditTimeout)
	defer cancel()
	ch := make(chan error, 1)
	go func() {
		ch <- p.withRetry(ctx, func() error { return h.LogHandleCommit(ctx, cm) })
	}()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return fmt.Errorf("provider: HSM %d commit timed out: %w", h.ID(), ctx.Err())
	}
}
