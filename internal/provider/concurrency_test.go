package provider

// Concurrency tests for the sharded provider and the epoch scheduler. All
// of these are meant to run under -race: they exercise the exact
// interleavings the engine exists for — many recoveries sharing one epoch,
// relays racing epochs, and slow HSMs stalling the audit pool.

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync"
	"testing"
	"time"

	"safetypin/internal/aggsig"
	"safetypin/internal/dlog"
	"safetypin/internal/protocol"
)

// buildStubs provisions n auditing stub HSMs without registering them.
func buildStubs(t *testing.T, cfg dlog.Config, n int) []*stubHSM {
	t.Helper()
	roster := make([]aggsig.PublicKey, n)
	signers := make([]aggsig.Signer, n)
	for i := 0; i < n; i++ {
		s, err := cfg.Scheme.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		signers[i] = s
		roster[i] = s.PublicKey()
	}
	var out []*stubHSM
	for i := 0; i < n; i++ {
		a, err := dlog.NewAuditor(cfg, i, roster, signers[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &stubHSM{id: i, signer: signers[i], auditor: a})
	}
	return out
}

func TestReserveAttemptAtomic(t *testing.T) {
	p := New(logCfg())
	const workers = 32
	got := make([]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = p.ReserveAttempt(tctx, "alice")
		}(i)
	}
	wg.Wait()
	seen := make(map[int]bool)
	for _, a := range got {
		if a < 0 || a >= workers {
			t.Fatalf("attempt %d out of range", a)
		}
		if seen[a] {
			t.Fatalf("attempt %d handed out twice", a)
		}
		seen[a] = true
	}
	if n, _ := p.AttemptCount(tctx, "alice"); n != workers {
		t.Fatalf("AttemptCount = %d, want %d", n, workers)
	}
}

// countingHSM counts epoch commits so batching is observable.
type countingHSM struct {
	*stubHSM
	mu      sync.Mutex
	commits int
}

func (c *countingHSM) LogHandleCommit(ctx context.Context, cm *dlog.CommitMessage) error {
	c.mu.Lock()
	c.commits++
	c.mu.Unlock()
	return c.stubHSM.LogHandleCommit(ctx, cm)
}

func (c *countingHSM) Commits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits
}

func TestConcurrentWaitersShareOneEpoch(t *testing.T) {
	// Many concurrent recoveries logging attempts must batch into far
	// fewer epochs than insertions — ideally one per gathering window.
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: 100 * time.Millisecond})
	stubs := buildStubs(t, cfg, 3)
	counters := make([]*countingHSM, len(stubs))
	for i, s := range stubs {
		counters[i] = &countingHSM{stubHSM: s}
		p.Register(counters[i])
	}
	const users = 16
	var wg sync.WaitGroup
	errs := make([]error, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", i)
			a, _ := p.ReserveAttempt(tctx, user)
			if err := p.LogRecoveryAttempt(tctx, user, a, []byte{byte(i)}); err != nil {
				errs[i] = err
				return
			}
			errs[i] = p.WaitForCommit(tctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	for i := 0; i < users; i++ {
		if _, ok := p.Get(protocol.LogID(fmt.Sprintf("user-%d", i), 0)); !ok {
			t.Fatalf("user-%d insertion missing from committed log", i)
		}
	}
	// All 16 insertions landed, but through a handful of epochs at most
	// (one per 100ms window; allow slack for scheduler skew on slow CI).
	if c := counters[0].Commits(); c > 4 {
		t.Fatalf("%d insertions took %d epochs; batching is not happening", users, c)
	}
}

func TestConcurrentRunEpochAndRelayRecover(t *testing.T) {
	cfg := logCfg()
	p := New(cfg)
	for _, s := range buildStubs(t, cfg, 4) {
		p.Register(s)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Relay traffic hammering the fleet...
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := &protocol.RecoveryRequest{
					User:    fmt.Sprintf("relay-user-%d", w),
					Attempt: i,
					Cluster: []int{w},
				}
				if _, err := p.RelayRecover(tctx, req); err != nil {
					t.Errorf("relay: %v", err)
					return
				}
			}
		}(w)
	}
	// ...while epochs run concurrently.
	for e := 0; e < 8; e++ {
		user := fmt.Sprintf("epoch-user-%d", e)
		if err := p.LogRecoveryAttempt(tctx, user, 0, []byte{byte(e)}); err != nil {
			t.Fatal(err)
		}
		if err := p.RunEpoch(tctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEscrowKeyedByAttemptAndBounded(t *testing.T) {
	p := New(logCfg())
	for _, s := range buildStubs(t, logCfg(), 2) {
		p.Register(s)
	}
	relay := func(attempt, pos int) {
		t.Helper()
		req := &protocol.RecoveryRequest{
			User:     "alice",
			Attempt:  attempt,
			SharePos: pos,
			Cluster:  []int{pos % 2, (pos + 1) % 2},
		}
		if _, err := p.RelayRecover(tctx, req); err != nil {
			t.Fatal(err)
		}
	}
	// A crash-looping client retries attempt 0 forever: the escrow must
	// not grow past one reply per share position.
	for retry := 0; retry < 10; retry++ {
		relay(0, 0)
		relay(0, 1)
	}
	if replies, _ := p.FetchEscrowedReplies(tctx, "alice"); len(replies) != 2 {
		t.Fatalf("escrow holds %d replies after retries, want 2", len(replies))
	}
	// A newer attempt evicts the old one...
	relay(3, 0)
	if got := p.EscrowedAttempt("alice"); got != 3 {
		t.Fatalf("escrowed attempt %d, want 3", got)
	}
	if replies, _ := p.FetchEscrowedReplies(tctx, "alice"); len(replies) != 1 {
		t.Fatalf("escrow holds %d replies after new attempt, want 1", len(replies))
	}
	// ...and a stale attempt's reply is served but not stored.
	relay(1, 1)
	if got := p.EscrowedAttempt("alice"); got != 3 {
		t.Fatalf("stale attempt overwrote escrow (attempt %d)", got)
	}
	if replies, _ := p.FetchEscrowedReplies(tctx, "alice"); len(replies) != 1 {
		t.Fatalf("stale reply escrowed (%d replies)", len(replies))
	}
}

// laggardHSM delays (or hangs until release) its audit participation.
type laggardHSM struct {
	*stubHSM
	delay   time.Duration
	release chan struct{} // non-nil: block until closed instead of sleeping
}

func (l *laggardHSM) LogChooseChunks(ctx context.Context, hdr dlog.EpochHeader) ([]int, error) {
	if l.release != nil {
		<-l.release
	} else {
		time.Sleep(l.delay)
	}
	return l.stubHSM.LogChooseChunks(ctx, hdr)
}

func TestSlowHSMDelaysButDoesNotWedgeEpoch(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{
		BatchWindow:  time.Millisecond,
		AuditTimeout: 100 * time.Millisecond,
	})
	stubs := buildStubs(t, cfg, 4)
	hung := make(chan struct{})
	defer close(hung)
	for i, s := range stubs {
		switch i {
		case 0:
			// Hung forever (released only at test teardown).
			p.Register(&laggardHSM{stubHSM: s, release: hung})
		case 1:
			// Slow but within the timeout: delays, then participates.
			p.Register(&laggardHSM{stubHSM: s, delay: 20 * time.Millisecond})
		default:
			p.Register(s)
		}
	}
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.RunEpoch(tctx); err != nil {
		t.Fatalf("epoch failed despite quorum: %v", err)
	}
	elapsed := time.Since(start)
	if p.PendingLogLen() != 0 {
		t.Fatal("epoch did not commit")
	}
	if _, ok := p.Get(protocol.LogID("alice", 0)); !ok {
		t.Fatal("entry missing after commit")
	}
	// The hung HSM cost at most ~AuditTimeout, not forever.
	if elapsed > 2*time.Second {
		t.Fatalf("epoch took %v; hung HSM wedged the pool", elapsed)
	}
	// A second epoch still works with the HSM still hung.
	if err := p.LogRecoveryAttempt(tctx, "bob", 0, []byte("h2")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunEpoch(tctx); err != nil {
		t.Fatalf("second epoch failed: %v", err)
	}
}

// TestWaitForCommitAfterEpochAlreadyCommitted pins the "nothing pending is
// success" semantics of the scheduler.
func TestWaitForCommitAfterEpochAlreadyCommitted(t *testing.T) {
	// A waiter whose insertion was committed by an earlier forced epoch
	// must return success even though nothing is pending anymore.
	cfg := logCfg()
	p := New(cfg)
	for _, s := range buildStubs(t, cfg, 2) {
		p.Register(s)
	}
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunEpoch(tctx); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitForCommit(tctx); err != nil {
		t.Fatalf("WaitForCommit with nothing pending: %v", err)
	}
}
