package provider

// scheduler_test.go pins the epoch scheduler's context semantics: a
// cancelled waiter is removed from the round's subscription list (no
// leak), a cancelled waiter does not disturb the shared epoch (the log
// stays consistent for everyone else), and the standing timer commits
// pending insertions with no waiter at all. All meant for -race.

import (
	"context"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	"safetypin/internal/protocol"
)

// TestWaitForCommitCancelledWaiterUnsubscribed: a waiter whose context is
// cancelled must be removed from the scheduler's subscription list
// immediately, not retained until the round fires.
func TestWaitForCommitCancelledWaiterUnsubscribed(t *testing.T) {
	cfg := logCfg()
	// A long gathering window keeps the round open while we inspect it.
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: 30 * time.Second})
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.WaitForCommit(ctx) }()
	// Wait until the waiter is subscribed, then cancel it.
	deadline := time.After(5 * time.Second)
	for p.sched.waiterCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never subscribed")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	for p.sched.waiterCount() != 0 {
		select {
		case <-deadline:
			t.Fatalf("cancelled waiter still subscribed (%d)", p.sched.waiterCount())
		case <-time.After(time.Millisecond):
		}
	}
	// The round is still gathering; flush it so the insertion commits.
	if err := p.RunEpoch(tctx); err != nil {
		t.Fatal(err)
	}
}

// TestMidEpochCancellationLeavesLogConsistent: one of two concurrent
// waiters abandons the epoch mid-flight; the shared epoch still commits
// both insertions and the survivor sees success.
func TestMidEpochCancellationLeavesLogConsistent(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: 50 * time.Millisecond})
	newStubFleet(t, p, 3, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("ha")); err != nil {
		t.Fatal(err)
	}
	if err := p.LogRecoveryAttempt(tctx, "bob", 0, []byte("hb")); err != nil {
		t.Fatal(err)
	}
	quitter, cancel := context.WithCancel(context.Background())
	quitterDone := make(chan error, 1)
	survivorDone := make(chan error, 1)
	go func() { quitterDone <- p.WaitForCommit(quitter) }()
	go func() { survivorDone <- p.WaitForCommit(tctx) }()
	cancel()
	if err := <-quitterDone; err != context.Canceled {
		t.Fatalf("quitter returned %v", err)
	}
	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor failed after peer cancelled: %v", err)
	}
	// Both insertions — including the quitter's — are committed.
	for _, user := range []string{"alice", "bob"} {
		if _, ok := p.Get(protocol.LogID(user, 0)); !ok {
			t.Fatalf("%s's insertion missing after epoch", user)
		}
	}
}

// TestStandingTimerCommitsWithoutWaiters: EpochInterval drives epochs on a
// fixed cadence even when nothing blocks on WaitForCommit — raw
// LogRecoveryAttempt traffic alone must reach the committed log.
func TestStandingTimerCommitsWithoutWaiters(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{
		BatchWindow:   time.Hour, // the gathering window never fires on its own
		EpochInterval: 10 * time.Millisecond,
	})
	defer p.Close()
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "idle-user", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := p.Get(protocol.LogID("idle-user", 0)); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("standing timer never committed the pending insertion")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if p.PendingLogLen() != 0 {
		t.Fatal("pending batch left behind")
	}
}

// TestStandingTimerStopsOnClose: Close stops the ticker; insertions after
// Close stay pending (no background commits from a closed provider).
func TestStandingTimerStopsOnClose(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{
		BatchWindow:   time.Hour,
		EpochInterval: 5 * time.Millisecond,
	})
	newStubFleet(t, p, 2, nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := p.LogRecoveryAttempt(tctx, "late-user", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if p.PendingLogLen() != 1 {
		t.Fatal("closed provider still running standing epochs")
	}
}

// TestCloseWakesBlockedWaiters: waiters blocked in WaitForCommit when the
// provider shuts down must all receive ErrProviderClosed — never hang on
// a round whose epoch will no longer run. Meant for -race.
func TestCloseWakesBlockedWaiters(t *testing.T) {
	cfg := logCfg()
	// The gathering window never fires on its own; only Close can end the
	// round the waiters subscribe to.
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: time.Hour})
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	done := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() { done <- p.WaitForCommit(tctx) }()
	}
	deadline := time.After(5 * time.Second)
	for p.sched.waiterCount() < waiters {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d waiters subscribed", p.sched.waiterCount(), waiters)
		case <-time.After(time.Millisecond):
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-done:
			if err != ErrProviderClosed {
				t.Fatalf("waiter %d returned %v, want ErrProviderClosed", i, err)
			}
		case <-deadline:
			t.Fatalf("waiter %d still blocked after Close", i)
		}
	}
	// Waits after Close fail immediately with the same terminal error.
	if err := p.WaitForCommit(tctx); err != ErrProviderClosed {
		t.Fatalf("post-Close WaitForCommit returned %v", err)
	}
	if err := p.RunEpoch(tctx); err != ErrProviderClosed {
		t.Fatalf("post-Close RunEpoch returned %v", err)
	}
}

// TestTransientClassification pins which failures the epoch fan-out
// retries: marked/connection errors yes, protocol and context errors no.
func TestTransientClassification(t *testing.T) {
	if !IsTransient(MarkTransient(context.Canceled)) {
		// Marking overrides even a context error buried underneath: the
		// transport declared the failure connection-level.
		t.Error("explicitly marked error not transient")
	}
	if IsTransient(nil) {
		t.Error("nil transient")
	}
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Error("context errors must not be retried")
	}
	if IsTransient(errProtocol) {
		t.Error("protocol rejection must not be retried")
	}
	if !IsTransient(io.ErrUnexpectedEOF) || !IsTransient(syscall.ECONNRESET) {
		t.Error("torn-connection I/O errors should be retried")
	}
}

var errProtocol = errors.New("hsm: audit rejected")

// TestWithRetryRecoversTransientFailure: an HSM whose exchange fails
// transiently a bounded number of times still contributes its signature.
func TestWithRetryRecoversTransientFailure(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{
		ExchangeRetries: 3,
		RetryBaseDelay:  time.Microsecond,
		RetryMaxDelay:   10 * time.Microsecond,
	})
	calls := 0
	err := p.withRetry(tctx, func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("conn reset"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("withRetry: err=%v calls=%d", err, calls)
	}
	// Non-transient errors are never retried.
	calls = 0
	err = p.withRetry(tctx, func() error { calls++; return errProtocol })
	if err != errProtocol || calls != 1 {
		t.Fatalf("protocol error retried: err=%v calls=%d", err, calls)
	}
	// The retry budget is finite.
	calls = 0
	err = p.withRetry(tctx, func() error { calls++; return MarkTransient(errProtocol) })
	if !IsTransient(err) || calls != 4 {
		t.Fatalf("budget: err=%v calls=%d, want 4 tries", err, calls)
	}
}

// TestRunEpochCancelledCallerStillCommits: RunEpoch with a cancelled
// context abandons the *wait*, not the epoch — the epoch it fired still
// commits for the log's sake.
func TestRunEpochCancelledCallerStillCommits(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: time.Hour})
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.RunEpoch(cancelled); err != context.Canceled {
		t.Fatalf("RunEpoch with cancelled ctx returned %v", err)
	}
	// The fired epoch still runs to completion in the background.
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := p.Get(protocol.LogID("alice", 0)); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("epoch abandoned because its caller cancelled")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
