package provider

// scheduler_test.go pins the epoch scheduler's context semantics: a
// cancelled waiter is removed from the round's subscription list (no
// leak), a cancelled waiter does not disturb the shared epoch (the log
// stays consistent for everyone else), and the standing timer commits
// pending insertions with no waiter at all. All meant for -race.

import (
	"context"
	"testing"
	"time"

	"safetypin/internal/protocol"
)

// TestWaitForCommitCancelledWaiterUnsubscribed: a waiter whose context is
// cancelled must be removed from the scheduler's subscription list
// immediately, not retained until the round fires.
func TestWaitForCommitCancelledWaiterUnsubscribed(t *testing.T) {
	cfg := logCfg()
	// A long gathering window keeps the round open while we inspect it.
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: 30 * time.Second})
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.WaitForCommit(ctx) }()
	// Wait until the waiter is subscribed, then cancel it.
	deadline := time.After(5 * time.Second)
	for p.sched.waiterCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never subscribed")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	for p.sched.waiterCount() != 0 {
		select {
		case <-deadline:
			t.Fatalf("cancelled waiter still subscribed (%d)", p.sched.waiterCount())
		case <-time.After(time.Millisecond):
		}
	}
	// The round is still gathering; flush it so the insertion commits.
	if err := p.RunEpoch(tctx); err != nil {
		t.Fatal(err)
	}
}

// TestMidEpochCancellationLeavesLogConsistent: one of two concurrent
// waiters abandons the epoch mid-flight; the shared epoch still commits
// both insertions and the survivor sees success.
func TestMidEpochCancellationLeavesLogConsistent(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: 50 * time.Millisecond})
	newStubFleet(t, p, 3, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("ha")); err != nil {
		t.Fatal(err)
	}
	if err := p.LogRecoveryAttempt(tctx, "bob", 0, []byte("hb")); err != nil {
		t.Fatal(err)
	}
	quitter, cancel := context.WithCancel(context.Background())
	quitterDone := make(chan error, 1)
	survivorDone := make(chan error, 1)
	go func() { quitterDone <- p.WaitForCommit(quitter) }()
	go func() { survivorDone <- p.WaitForCommit(tctx) }()
	cancel()
	if err := <-quitterDone; err != context.Canceled {
		t.Fatalf("quitter returned %v", err)
	}
	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor failed after peer cancelled: %v", err)
	}
	// Both insertions — including the quitter's — are committed.
	for _, user := range []string{"alice", "bob"} {
		if _, ok := p.Get(protocol.LogID(user, 0)); !ok {
			t.Fatalf("%s's insertion missing after epoch", user)
		}
	}
}

// TestStandingTimerCommitsWithoutWaiters: EpochInterval drives epochs on a
// fixed cadence even when nothing blocks on WaitForCommit — raw
// LogRecoveryAttempt traffic alone must reach the committed log.
func TestStandingTimerCommitsWithoutWaiters(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{
		BatchWindow:   time.Hour, // the gathering window never fires on its own
		EpochInterval: 10 * time.Millisecond,
	})
	defer p.Close()
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "idle-user", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := p.Get(protocol.LogID("idle-user", 0)); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("standing timer never committed the pending insertion")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if p.PendingLogLen() != 0 {
		t.Fatal("pending batch left behind")
	}
}

// TestStandingTimerStopsOnClose: Close stops the ticker; insertions after
// Close stay pending (no background commits from a closed provider).
func TestStandingTimerStopsOnClose(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{
		BatchWindow:   time.Hour,
		EpochInterval: 5 * time.Millisecond,
	})
	newStubFleet(t, p, 2, nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := p.LogRecoveryAttempt(tctx, "late-user", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if p.PendingLogLen() != 1 {
		t.Fatal("closed provider still running standing epochs")
	}
}

// TestRunEpochCancelledCallerStillCommits: RunEpoch with a cancelled
// context abandons the *wait*, not the epoch — the epoch it fired still
// commits for the log's sake.
func TestRunEpochCancelledCallerStillCommits(t *testing.T) {
	cfg := logCfg()
	p := NewWithEngine(cfg, EngineConfig{BatchWindow: time.Hour})
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.RunEpoch(cancelled); err != context.Canceled {
		t.Fatalf("RunEpoch with cancelled ctx returned %v", err)
	}
	// The fired epoch still runs to completion in the background.
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := p.Get(protocol.LogID("alice", 0)); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("epoch abandoned because its caller cancelled")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
