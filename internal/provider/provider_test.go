package provider

import (
	"context"
	"crypto/rand"
	"errors"
	"testing"

	"safetypin/internal/aggsig"
	"safetypin/internal/dlog"
	"safetypin/internal/protocol"
)

var tctx = context.Background()

func logCfg() dlog.Config {
	return dlog.Config{
		NumChunks:     2,
		AuditsPerHSM:  2,
		MinSignerFrac: 0.5,
		Scheme:        aggsig.ECDSAConcat(),
	}
}

func TestCiphertextStore(t *testing.T) {
	p := New(logCfg())
	if err := p.StoreCiphertext(tctx, "", []byte("x")); err == nil {
		t.Fatal("empty user accepted")
	}
	if _, err := p.FetchCiphertext(tctx, "ghost"); err == nil {
		t.Fatal("fetch for unknown user succeeded")
	}
	if err := p.StoreCiphertext(tctx, "alice", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := p.StoreCiphertext(tctx, "alice", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := p.FetchCiphertext(tctx, "alice")
	if err != nil || string(got) != "v2" {
		t.Fatalf("latest fetch wrong: %q %v", got, err)
	}
	if p.CiphertextCount("alice") != 2 {
		t.Fatal("count wrong")
	}
	// Returned slices are copies.
	got[0] = 'X'
	again, _ := p.FetchCiphertext(tctx, "alice")
	if string(again) != "v2" {
		t.Fatal("internal state aliased to caller")
	}
}

func TestAttemptAccounting(t *testing.T) {
	p := New(logCfg())
	if n, _ := p.AttemptCount(tctx, "alice"); n != 0 {
		t.Fatal("fresh user should have zero attempts")
	}
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h0")); err != nil {
		t.Fatal(err)
	}
	if n, _ := p.AttemptCount(tctx, "alice"); n != 1 {
		t.Fatal("attempt not counted")
	}
	// Duplicate (user, attempt) is a duplicate log identifier.
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h1")); err == nil {
		t.Fatal("duplicate attempt id accepted")
	}
}

func TestRunEpochNoParticipants(t *testing.T) {
	p := New(logCfg())
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunEpoch(tctx); err == nil {
		t.Fatal("epoch without HSMs should fail")
	}
	// Pending entries survive for a retry.
	if p.PendingLogLen() != 1 {
		t.Fatal("pending batch lost after failed epoch")
	}
}

// stubHSM implements HSMHandle for provider-level tests.
type stubHSM struct {
	id      int
	failing bool
	signer  aggsig.Signer
	auditor *dlog.Auditor
}

func (s *stubHSM) ID() int { return s.id }
func (s *stubHSM) LogChooseChunks(_ context.Context, hdr dlog.EpochHeader) ([]int, error) {
	if s.failing {
		return nil, errors.New("down")
	}
	return s.auditor.ChooseChunks(hdr)
}
func (s *stubHSM) LogHandleAudit(_ context.Context, pkg *dlog.AuditPackage) ([]byte, error) {
	if s.failing {
		return nil, errors.New("down")
	}
	return s.auditor.HandleAudit(pkg)
}
func (s *stubHSM) LogHandleCommit(_ context.Context, cm *dlog.CommitMessage) error {
	if s.failing {
		return errors.New("down")
	}
	return s.auditor.HandleCommit(cm)
}
func (s *stubHSM) HandleRecover(_ context.Context, req *protocol.RecoveryRequest) (*protocol.RecoveryReply, error) {
	if s.failing {
		return nil, errors.New("down")
	}
	return &protocol.RecoveryReply{HSMIndex: s.id, SharePos: req.SharePos, Box: []byte("box")}, nil
}

func newStubFleet(t *testing.T, p *Provider, n int, failing map[int]bool) []*stubHSM {
	t.Helper()
	cfg := logCfg()
	roster := make([]aggsig.PublicKey, n)
	signers := make([]aggsig.Signer, n)
	for i := 0; i < n; i++ {
		s, err := cfg.Scheme.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		signers[i] = s
		roster[i] = s.PublicKey()
	}
	var out []*stubHSM
	for i := 0; i < n; i++ {
		a, err := dlog.NewAuditor(cfg, i, roster, signers[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		h := &stubHSM{id: i, failing: failing[i], signer: signers[i], auditor: a}
		out = append(out, h)
		p.Register(h)
	}
	return out
}

func TestRunEpochToleratesFailures(t *testing.T) {
	p := New(logCfg())
	newStubFleet(t, p, 4, map[int]bool{3: true})
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunEpoch(tctx); err != nil && !errors.Is(err, errStubDown) {
		// The failing HSM's commit error may surface; the epoch itself must
		// have committed, which we verify via the digest.
	}
	if p.PendingLogLen() != 0 {
		t.Fatal("epoch did not commit despite quorum")
	}
	if _, ok := p.Get(protocol.LogID("alice", 0)); !ok {
		t.Fatal("entry missing after commit")
	}
}

var errStubDown = errors.New("down")

func TestRelayRecoverRouting(t *testing.T) {
	p := New(logCfg())
	newStubFleet(t, p, 4, nil)
	req := &protocol.RecoveryRequest{User: "alice", SharePos: 0, Cluster: []int{2}}
	reply, err := p.RelayRecover(tctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if reply.HSMIndex != 2 {
		t.Fatal("routed to wrong HSM")
	}
	// Escrowed for crash recovery.
	if got, _ := p.FetchEscrowedReplies(tctx, "alice"); len(got) != 1 {
		t.Fatalf("escrow has %d replies", len(got))
	}
	p.ClearEscrow(tctx, "alice")
	if got, _ := p.FetchEscrowedReplies(tctx, "alice"); len(got) != 0 {
		t.Fatal("escrow not cleared")
	}
}

func TestRelayRecoverValidation(t *testing.T) {
	p := New(logCfg())
	if _, err := p.RelayRecover(tctx, &protocol.RecoveryRequest{SharePos: 0, Cluster: nil}); err == nil {
		t.Fatal("malformed cluster accepted")
	}
	if _, err := p.RelayRecover(tctx, &protocol.RecoveryRequest{SharePos: 0, Cluster: []int{7}}); err == nil {
		t.Fatal("unknown HSM accepted")
	}
}

func TestGarbageCollectResetsAttempts(t *testing.T) {
	p := New(logCfg())
	newStubFleet(t, p, 2, nil)
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunEpoch(tctx); err != nil {
		t.Fatal(err)
	}
	p.GarbageCollectLog()
	if n, _ := p.AttemptCount(tctx, "alice"); n != 0 {
		t.Fatal("attempts not reset by GC")
	}
	if len(p.LogEntries()) != 0 {
		t.Fatal("log not cleared by GC")
	}
	// Same id is insertable again.
	if err := p.LogRecoveryAttempt(tctx, "alice", 0, []byte("h2")); err != nil {
		t.Fatal(err)
	}
}

func TestOracleLifecycle(t *testing.T) {
	p := New(logCfg())
	o1 := p.OracleFor(0)
	if o1 != p.OracleFor(0) {
		t.Fatal("oracle not stable per HSM")
	}
	if err := o1.Put(1, []byte("block")); err != nil {
		t.Fatal(err)
	}
	o2 := p.ReplaceOracle(0)
	if _, err := o2.Get(1); err == nil {
		t.Fatal("fresh oracle should be empty")
	}
	// Replace keeps the handle stable — live references held by an HSM
	// observe the emptied store rather than a stale one.
	if _, err := o1.Get(1); err == nil {
		t.Fatal("old reference should see the emptied store")
	}
}
