package provider

// retry.go classifies HSM exchange failures and retries the transient
// ones inside the epoch fan-out. The distinction matters: a connection
// reset mid-audit says nothing about the log, so retrying is free and
// keeps one flaky link from costing an HSM its epoch signature — but an
// HSM *rejecting* an audit is a protocol verdict, and retrying it would
// only re-ask a question that was already answered. AuditTimeout stays
// the outer bound on the whole exchange, retries included.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// ErrTransient marks an exchange failure as retryable. Transports wrap
// connection-level failures with MarkTransient; anything else reaching
// the fan-out is treated as a protocol error and fails fast.
var ErrTransient = errors.New("transient exchange failure")

// MarkTransient tags err as transient for IsTransient. Nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether an exchange failure is worth retrying:
// explicitly marked errors, network errors, and torn-connection I/O
// errors are; context cancellation/expiry and protocol rejections are
// not.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	// An explicit mark wins even over a wrapped context error: the
	// transport declared the failure connection-level, and withRetry
	// checks its *own* context separately before retrying.
	if errors.Is(err, ErrTransient) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED)
}

// withRetry runs op up to ExchangeRetries+1 times, sleeping a capped
// exponential backoff with jitter between tries. Non-transient errors
// and context expiry return immediately; the last transient error is
// returned when the budget runs out.
func (p *Provider) withRetry(ctx context.Context, op func() error) error {
	tries := p.engine.ExchangeRetries + 1
	if tries < 1 {
		tries = 1
	}
	var err error
	for i := 0; i < tries; i++ {
		if i > 0 {
			d := p.engine.RetryBaseDelay << (i - 1)
			if d > p.engine.RetryMaxDelay {
				d = p.engine.RetryMaxDelay
			}
			// Up to 50% jitter so a fleet-wide blip doesn't resynchronize
			// every retry into the same instant.
			d += time.Duration(rand.Int63n(int64(d)/2 + 1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return err
			}
		}
		err = op()
		if err == nil || !IsTransient(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}
