package simtime

// DeviceProfile holds a hardware security module's per-operation throughput
// and price. Rates are operations per second.
type DeviceProfile struct {
	Name     string
	PriceUSD float64
	FIPS     bool
	// StorageKB is the device's internal storage (Table 2).
	StorageKB int

	// Public-key operation rates (Table 7, SoloKey column; other devices
	// scaled by their g^x rate as the paper does for Figure 12).
	PairingPerSec     float64 // BLS12-381 pairing
	ECDSAVerifyPerSec float64
	ElGamalDecPerSec  float64
	GxPerSec          float64 // P-256 point multiplication

	// Symmetric operation rates.
	HMACPerSec  float64
	AES32PerSec float64 // AES-128 over a 32-byte chunk

	// I/O rates (USB CDC class after the paper's firmware rewrite).
	IORoundTripPerSec float64 // 32-byte request/response round trips
	FlashRead32PerSec float64
}

// IOBytesPerSec derives bulk throughput from the 32-byte round-trip rate.
func (d DeviceProfile) IOBytesPerSec() float64 { return d.IORoundTripPerSec * 32 }

// A full pairing is one Miller loop plus one final exponentiation. The
// split below was re-derived from this repo's limb-based pairing engine
// (BenchmarkMillerLoop ≈ 0.92 ms vs BenchmarkFinalExp ≈ 1.18 ms on the
// reference host: 44% / 56% of their sum) and is applied to each device's
// published whole-pairing rate. Multi-pairing verification shares the
// final exponentiation, which is what makes its cost nearly independent of
// the pair count.
const (
	millerLoopFraction = 0.44
	finalExpFraction   = 1 - millerLoopFraction
)

// MillerLoopPerSec derives the device's Miller-loop rate from its pairing
// rate.
func (d DeviceProfile) MillerLoopPerSec() float64 {
	return d.PairingPerSec / millerLoopFraction
}

// FinalExpPerSec derives the device's final-exponentiation rate from its
// pairing rate.
func (d DeviceProfile) FinalExpPerSec() float64 {
	return d.PairingPerSec / finalExpFraction
}

// The scalar-arithmetic op costs below are pairing fractions re-derived
// from this repo's limb engine after the endomorphism overhaul (PR 5
// reference host: pairing 2.22 ms, batch-affine G2 roster addition 2.2 µs,
// ψ-based G2 subgroup check 156 µs, GLV G1 variable-base multiplication
// 196 µs), applied to each device's published whole-pairing rate.
const (
	// g2AddsPerPairing: batch-affine roster additions per pairing.
	g2AddsPerPairing = 1000
	// subgroupChecksPerPairing: endomorphism membership checks per
	// pairing. The op the meter charges is the aggregate-signature parse
	// — a G1 check ([z²]φ(P) = −P, 117 µs on the reference host); the G2
	// ψ check is ~1.3× that.
	subgroupChecksPerPairing = 19
	// g1MulsPerPairing: GLV variable-base G1 multiplications per pairing.
	g1MulsPerPairing = 11
)

// G2AddPerSec derives the device's roster-aggregation addition rate.
func (d DeviceProfile) G2AddPerSec() float64 {
	return d.PairingPerSec * g2AddsPerPairing
}

// SubgroupCheckPerSec derives the device's wire-parse subgroup-check rate.
func (d DeviceProfile) SubgroupCheckPerSec() float64 {
	return d.PairingPerSec * subgroupChecksPerPairing
}

// G1MulPerSec derives the device's variable-base G1 multiplication rate.
func (d DeviceProfile) G1MulPerSec() float64 {
	return d.PairingPerSec * g1MulsPerPairing
}

// SoloKey is the paper's evaluation device (Tables 2 and 7).
func SoloKey() DeviceProfile {
	return DeviceProfile{
		Name:              "SoloKey",
		PriceUSD:          20,
		FIPS:              false,
		StorageKB:         256,
		PairingPerSec:     0.43,
		ECDSAVerifyPerSec: 5.85,
		ElGamalDecPerSec:  6.67,
		GxPerSec:          7.69,
		HMACPerSec:        2173.91,
		AES32PerSec:       3703.70,
		IORoundTripPerSec: 2277.90,
		FlashRead32PerSec: 166000,
	}
}

// scaled builds a profile for a device for which only price and g^x rate
// are published, scaling every other rate proportionally — the methodology
// the paper uses for Figure 12 and Table 14.
func scaled(name string, price, gx float64, storageKB int, fips bool) DeviceProfile {
	base := SoloKey()
	f := gx / base.GxPerSec
	return DeviceProfile{
		Name:              name,
		PriceUSD:          price,
		FIPS:              fips,
		StorageKB:         storageKB,
		PairingPerSec:     base.PairingPerSec * f,
		ECDSAVerifyPerSec: base.ECDSAVerifyPerSec * f,
		ElGamalDecPerSec:  base.ElGamalDecPerSec * f,
		GxPerSec:          gx,
		HMACPerSec:        base.HMACPerSec * f,
		AES32PerSec:       base.AES32PerSec * f,
		IORoundTripPerSec: base.IORoundTripPerSec * f,
		FlashRead32PerSec: base.FlashRead32PerSec * f,
	}
}

// YubiHSM2 per Table 2.
func YubiHSM2() DeviceProfile { return scaled("YubiHSM 2", 650, 14, 126, false) }

// SafeNetA700 per Table 2.
func SafeNetA700() DeviceProfile { return scaled("SafeNet A700", 18468, 2000, 2048, true) }

// IntelCPU is the non-HSM reference row of Table 2.
func IntelCPU() DeviceProfile {
	return scaled("Intel i7-8569U (CPU)", 431, 22338, 0, false)
}

// Devices returns the Table 2 HSM rows in order.
func Devices() []DeviceProfile {
	return []DeviceProfile{SoloKey(), YubiHSM2(), SafeNetA700()}
}
