package simtime

import (
	"fmt"
	"sort"

	"safetypin/internal/meter"
)

// Breakdown is simulated device time split the way Figures 9 and 10 report
// it: public-key operations, symmetric-key operations, and I/O.
type Breakdown struct {
	PublicKey float64 // seconds
	Symmetric float64
	IO        float64
}

// Total returns the summed seconds.
func (b Breakdown) Total() float64 { return b.PublicKey + b.Symmetric + b.IO }

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		PublicKey: b.PublicKey + o.PublicKey,
		Symmetric: b.Symmetric + o.Symmetric,
		IO:        b.IO + o.IO,
	}
}

// Scale returns the breakdown multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{PublicKey: b.PublicKey * f, Symmetric: b.Symmetric * f, IO: b.IO * f}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total %.3fs (pub %.3fs, sym %.3fs, io %.3fs)",
		b.Total(), b.PublicKey, b.Symmetric, b.IO)
}

// Cost prices a meter snapshot on a device.
func Cost(m *meter.Meter, d DeviceProfile) Breakdown {
	return CostOf(m.Snapshot(), d)
}

// CostOf prices raw operation counts on a device.
func CostOf(counts map[meter.Op]int64, d DeviceProfile) Breakdown {
	var b Breakdown
	for op, n := range counts {
		sec := float64(n) * secondsPerOp(op, d)
		switch opClass(op) {
		case classPublic:
			b.PublicKey += sec
		case classSymmetric:
			b.Symmetric += sec
		case classIO:
			b.IO += sec
		}
	}
	return b
}

type class int

const (
	classPublic class = iota
	classSymmetric
	classIO
)

func opClass(op meter.Op) class {
	switch op {
	case meter.OpECMul, meter.OpECDSAVerify, meter.OpECDSASign,
		meter.OpElGamalDecrypt, meter.OpPairing, meter.OpMillerLoop,
		meter.OpFinalExp, meter.OpBLSSign, meter.OpG2Add,
		meter.OpSubgroupCheck:
		return classPublic
	case meter.OpAES32, meter.OpHMAC, meter.OpFlashRead32:
		return classSymmetric
	case meter.OpIORoundTrip, meter.OpIOByte:
		return classIO
	default:
		return classSymmetric
	}
}

// secondsPerOp maps one operation to device seconds.
func secondsPerOp(op meter.Op, d DeviceProfile) float64 {
	switch op {
	case meter.OpECMul, meter.OpECDSASign:
		return 1 / d.GxPerSec
	case meter.OpECDSAVerify:
		return 1 / d.ECDSAVerifyPerSec
	case meter.OpElGamalDecrypt:
		return 1 / d.ElGamalDecPerSec
	case meter.OpPairing:
		return 1 / d.PairingPerSec
	case meter.OpMillerLoop:
		return 1 / d.MillerLoopPerSec()
	case meter.OpFinalExp:
		return 1 / d.FinalExpPerSec()
	case meter.OpG2Add:
		return 1 / d.G2AddPerSec()
	case meter.OpSubgroupCheck:
		return 1 / d.SubgroupCheckPerSec()
	case meter.OpBLSSign:
		// A G1 hash-and-multiply over the ~2.5× wider BLS12-381 base field;
		// costed as two P-256 point multiplications.
		return 2 / d.GxPerSec
	case meter.OpAES32:
		return 1 / d.AES32PerSec
	case meter.OpHMAC:
		return 1 / d.HMACPerSec
	case meter.OpFlashRead32:
		return 1 / d.FlashRead32PerSec
	case meter.OpIORoundTrip:
		return 1 / d.IORoundTripPerSec
	case meter.OpIOByte:
		return 1 / d.IOBytesPerSec()
	default:
		return 0
	}
}

// Report renders a deterministic per-op cost table for documentation
// output.
func Report(counts map[meter.Op]int64, d DeviceProfile) string {
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	out := ""
	for _, op := range ops {
		n := counts[meter.Op(op)]
		out += fmt.Sprintf("  %-16s ×%-8d %.4fs\n", op, n,
			float64(n)*secondsPerOp(meter.Op(op), d))
	}
	return out
}
