package simtime

import (
	"math"
	"strings"
	"testing"

	"safetypin/internal/meter"
)

func TestSoloKeyProfileMatchesTable7(t *testing.T) {
	d := SoloKey()
	if d.PairingPerSec != 0.43 || d.ElGamalDecPerSec != 6.67 || d.GxPerSec != 7.69 {
		t.Fatal("SoloKey public-key rates drifted from Table 7")
	}
	if d.AES32PerSec != 3703.70 || d.HMACPerSec != 2173.91 {
		t.Fatal("SoloKey symmetric rates drifted from Table 7")
	}
	if d.IORoundTripPerSec != 2277.90 || d.FlashRead32PerSec != 166000 {
		t.Fatal("SoloKey I/O rates drifted from Table 7")
	}
	if d.PriceUSD != 20 {
		t.Fatal("SoloKey price drifted from Table 2")
	}
}

func TestScaledProfiles(t *testing.T) {
	y := YubiHSM2()
	s := SoloKey()
	wantRatio := y.GxPerSec / s.GxPerSec
	gotRatio := y.ElGamalDecPerSec / s.ElGamalDecPerSec
	if math.Abs(wantRatio-gotRatio) > 1e-9 {
		t.Fatal("scaled profile rates not proportional to g^x rate")
	}
	if SafeNetA700().GxPerSec != 2000 || SafeNetA700().PriceUSD != 18468 {
		t.Fatal("SafeNet profile drifted from Table 2")
	}
}

func TestCostClassification(t *testing.T) {
	m := meter.New()
	m.Add(meter.OpElGamalDecrypt, 1)
	m.Add(meter.OpAES32, 100)
	m.Add(meter.OpIORoundTrip, 10)
	b := Cost(m, SoloKey())
	if b.PublicKey <= 0 || b.Symmetric <= 0 || b.IO <= 0 {
		t.Fatalf("missing component: %+v", b)
	}
	// One ElGamal decryption at 6.67/s is ~0.15 s.
	if math.Abs(b.PublicKey-1/6.67) > 1e-9 {
		t.Fatalf("ElGamal pricing wrong: %v", b.PublicKey)
	}
	if math.Abs(b.Total()-(b.PublicKey+b.Symmetric+b.IO)) > 1e-12 {
		t.Fatal("Total != sum")
	}
}

func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{PublicKey: 1, Symmetric: 2, IO: 3}
	b := a.Add(a).Scale(0.5)
	if b != a {
		t.Fatalf("Add/Scale algebra wrong: %+v", b)
	}
	if !strings.Contains(a.String(), "total") {
		t.Fatal("String() missing total")
	}
}

func TestSecurityLossBits(t *testing.T) {
	// Monotone decreasing in n; ~log2(50/40) bits between adjacent paper
	// points.
	l40 := SecurityLossBits(3100, 40)
	l50 := SecurityLossBits(3100, 50)
	l100 := SecurityLossBits(3100, 100)
	if !(l40 > l50 && l50 > l100) {
		t.Fatal("security loss not decreasing in n")
	}
	if math.Abs((l40-l50)-math.Log2(50.0/40.0)) > 1e-9 {
		t.Fatal("loss delta shape wrong")
	}
	if got := MinClusterSize(3100, l40); got != 40 {
		t.Fatalf("MinClusterSize inverse wrong: %d", got)
	}
}

func testLoad() RecoveryLoad {
	return RecoveryLoad{
		PerHSMSeconds:   0.5,
		ClusterSize:     40,
		RotationSeconds: 75 * 3600,
		RotationEvery:   1 << 18,
	}
}

func TestRotationAmortization(t *testing.T) {
	l := testLoad()
	eff := l.EffectivePerHSMSeconds()
	if eff <= l.PerHSMSeconds {
		t.Fatal("rotation overhead not charged")
	}
	want := l.PerHSMSeconds + 75*3600/float64(1<<18)
	if math.Abs(eff-want) > 1e-9 {
		t.Fatalf("amortization wrong: %v vs %v", eff, want)
	}
	duty := l.RotationDutyFraction()
	if duty <= 0 || duty >= 1 {
		t.Fatalf("duty fraction out of range: %v", duty)
	}
	// With the paper's 75-hour rotations the duty cycle should be a large
	// constant fraction (it reports ~56%).
	if duty < 0.3 || duty > 0.8 {
		t.Fatalf("duty fraction implausible vs paper: %v", duty)
	}
	noRot := RecoveryLoad{PerHSMSeconds: 0.5, ClusterSize: 40}
	if noRot.EffectivePerHSMSeconds() != 0.5 || noRot.RotationDutyFraction() != 0 {
		t.Fatal("zero-rotation load mishandled")
	}
}

func TestFleetSizing(t *testing.T) {
	l := testLoad()
	n := l.FleetSizeFor(1e9)
	if n <= 0 {
		t.Fatal("fleet size not positive")
	}
	// Shape vs the paper: a SoloKey fleet for 1B recoveries/year is a few
	// thousand devices.
	if n < 500 || n > 50000 {
		t.Fatalf("fleet size implausible: %d", n)
	}
	// Feeding the fleet size back should meet the volume.
	if l.FleetRecoveriesPerYear(n) < 1e9 {
		t.Fatalf("sized fleet under-delivers: %v", l.FleetRecoveriesPerYear(n))
	}
}

func TestMM1Model(t *testing.T) {
	l := testLoad()
	relaxed, err := l.DataCenterSizeForLatency(1e9, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := l.DataCenterSizeForLatency(1e9, 30)
	if err != nil {
		t.Fatal(err)
	}
	if tight < relaxed {
		t.Fatalf("tighter latency needs fewer HSMs: %d < %d", tight, relaxed)
	}
	// Infeasible constraint: p99 below the bare service time.
	if _, err := l.DataCenterSizeForLatency(1e9, l.EffectivePerHSMSeconds()/100); err == nil {
		t.Fatal("impossible latency target accepted")
	}
	// P99 at the sized fleet respects the constraint.
	p99 := l.P99LatencySeconds(tight, 1e9)
	if p99 > 30+1e-6 {
		t.Fatalf("sized fleet misses p99: %v", p99)
	}
	if !math.IsInf(l.P99LatencySeconds(1, 1e9), 1) {
		t.Fatal("saturated fleet should have infinite latency")
	}
}

func TestMM1Monotonicity(t *testing.T) {
	l := testLoad()
	prev := 0
	for _, rate := range []float64{1e8, 5e8, 1e9, 1.5e9} {
		n, err := l.DataCenterSizeForLatency(rate, 60)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("fleet size not monotone in load: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestPlanDeployment(t *testing.T) {
	load := testLoad()
	solo := PlanDeployment(SoloKey(), load, 1e9, 1.0/16, 0)
	yubi := PlanDeployment(YubiHSM2(), load, 1e9, 1.0/16, 0)
	safenet := PlanDeployment(SafeNetA700(), load, 1e9, 1.0/16, 40)
	if solo.Quantity <= yubi.Quantity || yubi.Quantity <= safenet.Quantity {
		t.Fatalf("faster devices should need fewer units: %d, %d, %d",
			solo.Quantity, yubi.Quantity, safenet.Quantity)
	}
	// Table 14 shape: SoloKey fleet is the cheapest option.
	if solo.HardwareCostUSD >= yubi.HardwareCostUSD {
		t.Fatal("SoloKey fleet should cost less than YubiHSM fleet")
	}
	if solo.EvilHSMsTolerated != solo.Quantity/16 {
		t.Fatal("evil-HSM tolerance wrong")
	}
	// minFleet floor respected (SafeNet needs ≥ cluster size).
	if safenet.Quantity < 40 {
		t.Fatal("minimum fleet floor ignored")
	}
}

func TestStorageCost(t *testing.T) {
	// Paper: 4GB × 1B users ≈ $600M/year.
	got := StorageCostPerYearUSD(1e9, 4)
	if got < 5e8 || got > 7e8 {
		t.Fatalf("storage cost off paper scale: %v", got)
	}
}

func TestClientBandwidth(t *testing.T) {
	// Paper scale: 3,100 HSMs, 11.5MB initial download, ~2MB/day, 9.02KB
	// cluster storage. Our pk sizes differ; check shape and arithmetic.
	bw := EstimateClientBandwidth(3100, 40, 3700, 1<<18, 1e9)
	if bw.InitialDownloadBytes != 3100*3700 {
		t.Fatal("initial download arithmetic wrong")
	}
	if bw.ClusterStorageBytes != 40*3700 {
		t.Fatal("cluster storage arithmetic wrong")
	}
	if bw.DailyDownloadBytes <= 0 {
		t.Fatal("daily download should be positive")
	}
}

func TestReportDeterministic(t *testing.T) {
	m := meter.New()
	m.Add(meter.OpAES32, 3)
	m.Add(meter.OpECMul, 2)
	a := Report(m.Snapshot(), SoloKey())
	b := Report(m.Snapshot(), SoloKey())
	if a != b || !strings.Contains(a, "aes_32b") {
		t.Fatal("report not deterministic or missing ops")
	}
}
