// Package simtime converts metered operation counts (package meter) into
// simulated device time using the paper's measured per-operation rates
// (Tables 2 and 7), and implements the analytic models behind the
// evaluation: M/M/1 tail latency (Figure 13), fleet sizing and dollar cost
// (Figure 12, Table 14), key-rotation duty cycles (§9.1), client bandwidth
// (§9.2), and the Theorem 10 security-loss bound (Figure 11).
package simtime
