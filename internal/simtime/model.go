package simtime

import (
	"errors"
	"math"
)

// This file holds the evaluation's analytic models. The paper computes
// Figures 12 and 13 and Table 14 from microbenchmarks rather than running a
// billion-user deployment; we do the same, parameterized by the measured
// per-recovery Breakdown of our own implementation.

// SecurityLossBits returns the Theorem 10 bound on the attacker's advantage
// over PIN guessing, in bits: log2 of the ratio between the dominant
// 3N/(n·|P|) term and the baseline 1/|P|. Figure 11 annotates cluster sizes
// with this value. (The paper's printed values appear to use a slightly
// smaller constant; the shape — decreasing in n, ~0.3 bits per 25% increase
// in n — is identical. See EXPERIMENTS.md.)
func SecurityLossBits(totalHSMs, clusterSize int) float64 {
	return math.Log2(3 * float64(totalHSMs) / float64(clusterSize))
}

// MinClusterSize returns the smallest cluster size n for which the
// Theorem 10 analysis keeps the security loss under the given bits, i.e.
// 3N/n ≤ 2^bits.
func MinClusterSize(totalHSMs int, maxLossBits float64) int {
	n := int(math.Ceil(3*float64(totalHSMs)/math.Pow(2, maxLossBits) - 1e-9))
	if n < 1 {
		n = 1
	}
	return n
}

// RecoveryLoad describes what one recovery costs the fleet.
type RecoveryLoad struct {
	// PerHSMSeconds is the busy time each of the n cluster HSMs spends on
	// one recovery (share decrypt + puncture + log work).
	PerHSMSeconds float64
	// ClusterSize is n, the number of HSMs touched per recovery.
	ClusterSize int
	// RotationSeconds is the cost of one full key rotation.
	RotationSeconds float64
	// RotationEvery is the number of decrypt+punctures a key survives
	// before rotation.
	RotationEvery int
}

// EffectivePerHSMSeconds is the per-recovery HSM time including the
// amortized key-rotation overhead (§9.1's 56%-of-cycles effect).
func (l RecoveryLoad) EffectivePerHSMSeconds() float64 {
	if l.RotationEvery <= 0 {
		return l.PerHSMSeconds
	}
	return l.PerHSMSeconds + l.RotationSeconds/float64(l.RotationEvery)
}

// RotationDutyFraction is the fraction of HSM cycles spent rotating keys.
func (l RecoveryLoad) RotationDutyFraction() float64 {
	eff := l.EffectivePerHSMSeconds()
	if eff == 0 {
		return 0
	}
	return (eff - l.PerHSMSeconds) / eff
}

// RecoveriesPerHSMHour is the steady-state rate at which one HSM can serve
// recovery shares, rotation included (the paper reports 1503.9 for the
// SoloKey).
func (l RecoveryLoad) RecoveriesPerHSMHour() float64 {
	return 3600 / l.EffectivePerHSMSeconds()
}

// FleetRecoveriesPerYear is the total recovery throughput of an N-HSM fleet:
// each recovery occupies ClusterSize HSMs.
func (l RecoveryLoad) FleetRecoveriesPerYear(totalHSMs int) float64 {
	perHSMPerYear := 365.25 * 24 * 3600 / l.EffectivePerHSMSeconds()
	return perHSMPerYear * float64(totalHSMs) / float64(l.ClusterSize)
}

// FleetSizeFor returns the number of HSMs needed to serve the given annual
// recovery volume at full utilization (no latency headroom).
func (l RecoveryLoad) FleetSizeFor(recoveriesPerYear float64) int {
	perHSMPerYear := 365.25 * 24 * 3600 / l.EffectivePerHSMSeconds()
	n := math.Ceil(recoveriesPerYear * float64(l.ClusterSize) / perHSMPerYear)
	return int(n)
}

// ErrInfeasible indicates no fleet size satisfies the constraint.
var ErrInfeasible = errors.New("simtime: constraint infeasible")

// DataCenterSizeForLatency returns the minimum fleet size N such that, with
// Poisson arrivals at the given annual rate and per-HSM M/M/1 service, the
// 99th-percentile sojourn time stays below p99Seconds (Figure 13).
// p99Seconds = +Inf gives the pure-throughput bound (utilization < 1).
func (l RecoveryLoad) DataCenterSizeForLatency(recoveriesPerYear, p99Seconds float64) (int, error) {
	mu := 1 / l.EffectivePerHSMSeconds() // per-HSM service rate (recoveries/s)
	lambdaTotal := recoveriesPerYear / (365.25 * 24 * 3600)
	// Each recovery generates ClusterSize jobs spread over N HSMs:
	// per-HSM arrival rate λ(N) = lambdaTotal·n/N. For M/M/1, the sojourn
	// time is Exp(μ−λ), so P99 = ln(100)/(μ−λ) ≤ T ⇔ λ ≤ μ − ln(100)/T.
	slack := 0.0
	if !math.IsInf(p99Seconds, 1) {
		slack = math.Log(100) / p99Seconds
	}
	maxLambda := mu - slack
	if maxLambda <= 0 {
		return 0, ErrInfeasible
	}
	n := math.Ceil(lambdaTotal * float64(l.ClusterSize) / maxLambda)
	if n < float64(l.ClusterSize) {
		n = float64(l.ClusterSize)
	}
	return int(n), nil
}

// P99LatencySeconds returns the 99th-percentile recovery sojourn time for a
// fleet of the given size under the given annual load, or +Inf if the fleet
// saturates.
func (l RecoveryLoad) P99LatencySeconds(totalHSMs int, recoveriesPerYear float64) float64 {
	mu := 1 / l.EffectivePerHSMSeconds()
	lambda := recoveriesPerYear / (365.25 * 24 * 3600) * float64(l.ClusterSize) / float64(totalHSMs)
	if lambda >= mu {
		return math.Inf(1)
	}
	return math.Log(100) / (mu - lambda)
}

// Deployment is one Table 14 row: a fleet of a given device sized for a
// workload.
type Deployment struct {
	Device            DeviceProfile
	Quantity          int
	FSecret           float64 // fraction of compromised HSMs tolerated
	EvilHSMsTolerated int
	HardwareCostUSD   float64
}

// PlanDeployment sizes a fleet of the device for the workload and reports
// its cost and compromise tolerance (Table 14). load must be expressed in
// SoloKey seconds; it is rescaled by the device's relative speed.
func PlanDeployment(d DeviceProfile, loadOnSoloKey RecoveryLoad, recoveriesPerYear, fSecret float64, minFleet int) Deployment {
	scale := SoloKey().GxPerSec / d.GxPerSec // device seconds per SoloKey second
	load := RecoveryLoad{
		PerHSMSeconds:   loadOnSoloKey.PerHSMSeconds * scale,
		ClusterSize:     loadOnSoloKey.ClusterSize,
		RotationSeconds: loadOnSoloKey.RotationSeconds * scale,
		RotationEvery:   loadOnSoloKey.RotationEvery,
	}
	qty := load.FleetSizeFor(recoveriesPerYear)
	if qty < minFleet {
		qty = minFleet
	}
	return Deployment{
		Device:            d,
		Quantity:          qty,
		FSecret:           fSecret,
		EvilHSMsTolerated: int(fSecret * float64(qty)),
		HardwareCostUSD:   float64(qty) * d.PriceUSD,
	}
}

// StorageCostPerYearUSD estimates the provider's disk-image storage bill:
// the paper's $600M/year figure for 4 GB × 10⁹ users on S3 infrequent
// access at $0.0125/GB/month.
func StorageCostPerYearUSD(users float64, gbPerUser float64) float64 {
	return users * gbPerUser * 0.0125 * 12
}

// ClientBandwidth models §9.2's client key-download costs.
type ClientBandwidth struct {
	InitialDownloadBytes int64 // all HSMs' public keys on first join
	DailyDownloadBytes   int64 // rotated keys per day
	ClusterStorageBytes  int64 // what the client must persist (its n keys)
}

// EstimateClientBandwidth computes the key-material traffic for a fleet of
// totalHSMs whose per-HSM public key occupies pkBytes and rotates every
// rotationEvery recoveries, under the given annual recovery volume.
func EstimateClientBandwidth(totalHSMs, clusterSize int, pkBytes int64, rotationEvery int, recoveriesPerYear float64) ClientBandwidth {
	rotationsPerDay := recoveriesPerYear / 365.25 / float64(rotationEvery) * float64(clusterSize)
	return ClientBandwidth{
		InitialDownloadBytes: int64(totalHSMs) * pkBytes,
		DailyDownloadBytes:   int64(rotationsPerDay * float64(pkBytes)),
		ClusterStorageBytes:  int64(clusterSize) * pkBytes,
	}
}
