package prg

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// PRG is a deterministic stream of pseudorandom bytes derived from a seed and
// a domain-separation label. It implements io.Reader and never returns an
// error.
type PRG struct {
	key     []byte // HMAC key: SHA-256(label || seed)
	block   [sha256.Size]byte
	used    int    // bytes of block already consumed
	counter uint64 // next block index
}

// New returns a PRG seeded with seed under the given domain-separation label.
// Two PRGs agree on their output streams iff both label and seed match.
func New(label string, seed []byte) *PRG {
	h := sha256.New()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write(seed)
	g := &PRG{key: h.Sum(nil)}
	g.used = len(g.block) // force refill on first read
	return g
}

// refill computes the next HMAC block.
func (g *PRG) refill() {
	mac := hmac.New(sha256.New, g.key)
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], g.counter)
	mac.Write(ctr[:])
	mac.Sum(g.block[:0])
	g.counter++
	g.used = 0
}

// Read fills p with pseudorandom bytes. It always returns len(p), nil.
func (g *PRG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if g.used == len(g.block) {
			g.refill()
		}
		c := copy(p, g.block[g.used:])
		g.used += c
		p = p[c:]
	}
	return n, nil
}

// Uint64 returns the next 8 bytes of the stream as a big-endian uint64.
func (g *PRG) Uint64() uint64 {
	var b [8]byte
	g.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a uniform value in [0, n) by rejection sampling, so the
// distribution is exactly uniform for every n > 0.
func (g *PRG) Intn(n int) int {
	if n <= 0 {
		panic("prg: Intn called with non-positive n")
	}
	max := uint64(n)
	// Largest multiple of max that fits in a uint64; values at or above it
	// are rejected to avoid modulo bias.
	limit := (^uint64(0) / max) * max
	for {
		v := g.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Indices deterministically samples n distinct indices in [0, total) from the
// PRG stream, in sampling order. It is the Select() primitive of
// location-hiding encryption: the same (label, seed) always yields the same
// cluster.
//
// The paper samples a list in [N]^n with replacement; sampling without
// replacement strictly improves fault tolerance (no HSM holds two shares) and
// the covering analysis of Lemma 8 still applies. See DESIGN.md.
func Indices(label string, seed []byte, n, total int) ([]int, error) {
	if n > total {
		return nil, fmt.Errorf("prg: cannot sample %d distinct indices from %d", n, total)
	}
	if n < 0 {
		return nil, fmt.Errorf("prg: negative sample count %d", n)
	}
	g := New(label, seed)
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for len(out) < n {
		v := g.Intn(total)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// Bytes returns length pseudorandom bytes derived from (label, seed).
func Bytes(label string, seed []byte, length int) []byte {
	b := make([]byte, length)
	New(label, seed).Read(b)
	return b
}

var _ io.Reader = (*PRG)(nil)
