package prg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := Bytes("test", []byte("seed"), 1024)
	b := Bytes("test", []byte("seed"), 1024)
	if !bytes.Equal(a, b) {
		t.Fatal("same label+seed produced different streams")
	}
}

func TestLabelSeparation(t *testing.T) {
	a := Bytes("label-a", []byte("seed"), 64)
	b := Bytes("label-b", []byte("seed"), 64)
	if bytes.Equal(a, b) {
		t.Fatal("different labels produced identical streams")
	}
}

func TestSeedSeparation(t *testing.T) {
	a := Bytes("label", []byte("seed-1"), 64)
	b := Bytes("label", []byte("seed-2"), 64)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestReadChunkingInvariance(t *testing.T) {
	// Reading the stream in different chunk sizes must yield the same bytes.
	whole := Bytes("chunk", []byte("s"), 257)
	g := New("chunk", []byte("s"))
	var got []byte
	for _, sz := range []int{1, 2, 3, 5, 7, 11, 13, 31, 64, 120} {
		buf := make([]byte, sz)
		g.Read(buf)
		got = append(got, buf...)
	}
	if !bytes.Equal(whole[:len(got)], got) {
		t.Fatal("chunked reads diverge from contiguous read")
	}
}

func TestIntnBounds(t *testing.T) {
	g := New("bounds", []byte("s"))
	for _, n := range []int{1, 2, 3, 10, 100, 1 << 20} {
		for i := 0; i < 100; i++ {
			v := g.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New("p", nil).Intn(0)
}

func TestIndicesDistinctAndInRange(t *testing.T) {
	err := quick.Check(func(seed []byte, nRaw, totalRaw uint8) bool {
		total := int(totalRaw%100) + 1
		n := int(nRaw) % (total + 1)
		idx, err := Indices("quick", seed, n, total)
		if err != nil {
			return false
		}
		if len(idx) != n {
			return false
		}
		seen := map[int]bool{}
		for _, v := range idx {
			if v < 0 || v >= total || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndicesDeterministic(t *testing.T) {
	a, _ := Indices("sel", []byte("pin+salt"), 40, 3100)
	b, _ := Indices("sel", []byte("pin+salt"), 40, 3100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("index selection not deterministic")
		}
	}
}

func TestIndicesErrors(t *testing.T) {
	if _, err := Indices("e", nil, 5, 4); err == nil {
		t.Fatal("expected error when n > total")
	}
	if _, err := Indices("e", nil, -1, 4); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestIndicesFullRange(t *testing.T) {
	idx, err := Indices("full", []byte("x"), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range idx {
		seen[v] = true
	}
	if len(seen) != 16 {
		t.Fatalf("expected a permutation of 16 indices, got %d distinct", len(seen))
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish check: each bucket of Intn(8) should receive
	// roughly 1/8 of the draws.
	g := New("uniform", []byte("s"))
	const draws = 80000
	var counts [8]int
	for i := 0; i < draws; i++ {
		counts[g.Intn(8)]++
	}
	for b, c := range counts {
		if c < draws/8-draws/80 || c > draws/8+draws/80 {
			t.Fatalf("bucket %d count %d deviates from expected %d", b, c, draws/8)
		}
	}
}

func BenchmarkPRGRead1K(b *testing.B) {
	g := New("bench", []byte("seed"))
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		g.Read(buf)
	}
}

func BenchmarkIndices40of3100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Indices("bench", []byte("seed"), 40, 3100); err != nil {
			b.Fatal(err)
		}
	}
}
