// Package prg implements a deterministic pseudorandom generator built from
// HMAC-SHA256 in counter mode (the expand stage of HKDF, RFC 5869).
//
// SafetyPin uses the PRG in two places where determinism is essential:
//
//   - Select(salt, pin): the client derives the identity of its recovery
//     cluster from Hash(salt, pin). Backup and recovery must arrive at the
//     same cluster, so index sampling must be a pure function of the seed.
//   - Deterministic log auditing (Appendix B.3): each HSM derives the set of
//     log chunks it audits from PRF(R, hsmID) so that any HSM can recompute
//     which chunks a failed peer was responsible for.
//
// The PRG is modelled as a random oracle in the paper's analysis; HMAC-SHA256
// is the standard instantiation.
package prg
